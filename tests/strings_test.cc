#include "common/strings.h"

#include <gtest/gtest.h>

namespace dbsherlock::common {
namespace {

TEST(SplitTest, Basic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputGivesOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, RemovesWhitespace) {
  EXPECT_EQ(Trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("no args"), "no args");
}

TEST(StrFormatTest, LongOutput) {
  std::string long_str(500, 'a');
  EXPECT_EQ(StrFormat("%s", long_str.c_str()).size(), 500u);
}

TEST(ParseDoubleTest, Valid) {
  auto r = ParseDouble("3.25");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("  -1e3 "), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64(" 1000000000000 "), 1000000000000LL);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("x").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("hello", "world"));
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
  EXPECT_EQ(ToLower(""), "");
}

}  // namespace
}  // namespace dbsherlock::common
