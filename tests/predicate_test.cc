#include "core/predicate.h"

#include <gtest/gtest.h>

namespace dbsherlock::core {
namespace {

tsdata::Dataset MakeDataset() {
  tsdata::Dataset d(tsdata::Schema(
      {{"cpu", tsdata::AttributeKind::kNumeric},
       {"mode", tsdata::AttributeKind::kCategorical}}));
  // t:    0     1     2     3
  // cpu:  10    20    80    90
  // mode: idle  idle  busy  busy
  EXPECT_TRUE(d.AppendRow(0, {10.0, std::string("idle")}).ok());
  EXPECT_TRUE(d.AppendRow(1, {20.0, std::string("idle")}).ok());
  EXPECT_TRUE(d.AppendRow(2, {80.0, std::string("busy")}).ok());
  EXPECT_TRUE(d.AppendRow(3, {90.0, std::string("busy")}).ok());
  return d;
}

TEST(PredicateTest, LessThanSemantics) {
  Predicate p{"cpu", PredicateType::kLessThan, 0.0, 50.0, {}};
  EXPECT_TRUE(p.MatchesNumeric(49.9));
  EXPECT_FALSE(p.MatchesNumeric(50.0));
}

TEST(PredicateTest, GreaterThanSemantics) {
  Predicate p{"cpu", PredicateType::kGreaterThan, 50.0, 0.0, {}};
  EXPECT_TRUE(p.MatchesNumeric(50.0));  // inclusive lower bound
  EXPECT_TRUE(p.MatchesNumeric(51.0));
  EXPECT_FALSE(p.MatchesNumeric(49.9));
}

TEST(PredicateTest, RangeSemantics) {
  Predicate p{"cpu", PredicateType::kRange, 10.0, 20.0, {}};
  EXPECT_TRUE(p.MatchesNumeric(10.0));
  EXPECT_TRUE(p.MatchesNumeric(19.9));
  EXPECT_FALSE(p.MatchesNumeric(20.0));
  EXPECT_FALSE(p.MatchesNumeric(9.9));
}

TEST(PredicateTest, InSetSemantics) {
  Predicate p{"mode", PredicateType::kInSet, 0.0, 0.0, {"busy", "odd"}};
  EXPECT_TRUE(p.MatchesCategory("busy"));
  EXPECT_TRUE(p.MatchesCategory("odd"));
  EXPECT_FALSE(p.MatchesCategory("idle"));
  EXPECT_FALSE(p.MatchesNumeric(1.0));  // numeric eval of a set predicate
}

TEST(PredicateTest, MatchesRowNumericAndCategorical) {
  tsdata::Dataset d = MakeDataset();
  Predicate cpu_high{"cpu", PredicateType::kGreaterThan, 50.0, 0.0, {}};
  EXPECT_FALSE(cpu_high.MatchesRow(d, 0));
  EXPECT_TRUE(cpu_high.MatchesRow(d, 2));

  Predicate busy{"mode", PredicateType::kInSet, 0.0, 0.0, {"busy"}};
  EXPECT_FALSE(busy.MatchesRow(d, 1));
  EXPECT_TRUE(busy.MatchesRow(d, 3));
}

TEST(PredicateTest, MatchesRowMissingOrWrongKindAttribute) {
  tsdata::Dataset d = MakeDataset();
  Predicate missing{"nope", PredicateType::kGreaterThan, 0.0, 0.0, {}};
  EXPECT_FALSE(missing.MatchesRow(d, 0));
  // Numeric predicate against a categorical column.
  Predicate wrong_kind{"mode", PredicateType::kGreaterThan, 0.0, 0.0, {}};
  EXPECT_FALSE(wrong_kind.MatchesRow(d, 0));
  // Set predicate against a numeric column.
  Predicate wrong_kind2{"cpu", PredicateType::kInSet, 0.0, 0.0, {"x"}};
  EXPECT_FALSE(wrong_kind2.MatchesRow(d, 0));
}

TEST(PredicateTest, ToStringForms) {
  EXPECT_EQ((Predicate{"cpu", PredicateType::kGreaterThan, 42.5, 0, {}})
                .ToString(),
            "cpu > 42.5");
  EXPECT_EQ(
      (Predicate{"cpu", PredicateType::kLessThan, 0, 7.0, {}}).ToString(),
      "cpu < 7");
  EXPECT_EQ(
      (Predicate{"cpu", PredicateType::kRange, 1.0, 2.0, {}}).ToString(),
      "1 < cpu < 2");
  EXPECT_EQ((Predicate{"mode", PredicateType::kInSet, 0, 0, {"a", "b"}})
                .ToString(),
            "mode IN {a, b}");
}

TEST(SeparationPowerTest, PerfectSeparator) {
  tsdata::Dataset d = MakeDataset();
  tsdata::LabeledRows rows;
  rows.normal = {0, 1};
  rows.abnormal = {2, 3};
  Predicate p{"cpu", PredicateType::kGreaterThan, 50.0, 0.0, {}};
  EXPECT_DOUBLE_EQ(SeparationPower(p, d, rows), 1.0);
}

TEST(SeparationPowerTest, InverseSeparatorIsNegative) {
  tsdata::Dataset d = MakeDataset();
  tsdata::LabeledRows rows;
  rows.normal = {0, 1};
  rows.abnormal = {2, 3};
  Predicate p{"cpu", PredicateType::kLessThan, 0.0, 50.0, {}};
  EXPECT_DOUBLE_EQ(SeparationPower(p, d, rows), -1.0);
}

TEST(SeparationPowerTest, PartialSeparation) {
  tsdata::Dataset d = MakeDataset();
  tsdata::LabeledRows rows;
  rows.normal = {0, 1};
  rows.abnormal = {2, 3};
  // Matches rows 1,2,3 -> abnormal ratio 1.0, normal ratio 0.5.
  Predicate p{"cpu", PredicateType::kGreaterThan, 15.0, 0.0, {}};
  EXPECT_DOUBLE_EQ(SeparationPower(p, d, rows), 0.5);
}

TEST(SeparationPowerTest, EmptyRegionGivesZero) {
  tsdata::Dataset d = MakeDataset();
  tsdata::LabeledRows rows;
  rows.abnormal = {2, 3};
  Predicate p{"cpu", PredicateType::kGreaterThan, 50.0, 0.0, {}};
  EXPECT_DOUBLE_EQ(SeparationPower(p, d, rows), 0.0);
}

TEST(ConjunctTest, AllMustMatch) {
  tsdata::Dataset d = MakeDataset();
  std::vector<Predicate> conjunct = {
      {"cpu", PredicateType::kGreaterThan, 50.0, 0.0, {}},
      {"mode", PredicateType::kInSet, 0.0, 0.0, {"busy"}},
  };
  EXPECT_TRUE(ConjunctMatchesRow(conjunct, d, 2));
  EXPECT_FALSE(ConjunctMatchesRow(conjunct, d, 1));
}

TEST(ConjunctTest, EmptyConjunctMatchesNothing) {
  tsdata::Dataset d = MakeDataset();
  EXPECT_FALSE(ConjunctMatchesRow({}, d, 0));
}

}  // namespace
}  // namespace dbsherlock::core
