// Invariants of the emitted telemetry that the paper's domain-knowledge
// rules (Section 5) presuppose — e.g. the complement relationships between
// os_allocated_pages/os_free_pages and os_cpu_usage/os_cpu_idle. If the
// simulator broke these, the Table 2 / Appendix F experiments would be
// testing rules with false premises.

#include <gtest/gtest.h>

#include <cmath>

#include "core/domain_knowledge.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::simulator {
namespace {

class TelemetryInvariants
    : public ::testing::TestWithParam<AnomalyKind> {
 protected:
  GeneratedDataset Run() {
    DatasetGenOptions options;
    options.seed = 4000 + static_cast<uint64_t>(GetParam());
    return GenerateAnomalyDataset(options, GetParam(), 60.0);
  }

  static double Get(const GeneratedDataset& run, const char* attr,
                    size_t row) {
    auto col = run.data.ColumnByName(attr);
    EXPECT_TRUE(col.ok());
    return (*col)->numeric(row);
  }
};

TEST_P(TelemetryInvariants, CpuSharesSumBelowHundred) {
  GeneratedDataset run = Run();
  for (size_t row = 0; row < run.data.num_rows(); row += 7) {
    double usage = Get(run, "os_cpu_usage", row);
    double idle = Get(run, "os_cpu_idle", row);
    double iowait = Get(run, "os_cpu_iowait", row);
    EXPECT_GE(usage, 0.0);
    EXPECT_GE(idle, 0.0);
    EXPECT_GE(iowait, 0.0);
    // usage + iowait + idle covers the CPU second (idle is derived as the
    // exact remainder; the noisy terms can overshoot only slightly).
    EXPECT_LE(usage + idle + iowait, 135.0);
  }
}

TEST_P(TelemetryInvariants, DbmsCpuNeverExceedsOsCpuMaterially) {
  // Premise of rule 1 (dbms_cpu_usage -> os_cpu_usage): the DBMS is a
  // component of total CPU. Allow noise headroom.
  GeneratedDataset run = Run();
  for (size_t row = 0; row < run.data.num_rows(); row += 7) {
    EXPECT_LE(Get(run, "dbms_cpu_usage", row),
              Get(run, "os_cpu_usage", row) + 35.0);
  }
}

TEST_P(TelemetryInvariants, MemoryPagesComplementary) {
  // Premise of rule 2: allocated + free = total (free is derived exactly).
  GeneratedDataset run = Run();
  ServerConfig config;
  for (size_t row = 0; row < run.data.num_rows(); row += 7) {
    double allocated = Get(run, "os_allocated_pages", row);
    double free_pages = Get(run, "os_free_pages", row);
    EXPECT_NEAR(allocated + free_pages, config.total_pages,
                0.01 * config.total_pages);
  }
}

TEST_P(TelemetryInvariants, SwapComplementary) {
  GeneratedDataset run = Run();
  for (size_t row = 0; row < run.data.num_rows(); row += 7) {
    double used = Get(run, "os_used_swap_kb", row);
    double free_swap = Get(run, "os_free_swap_kb", row);
    EXPECT_NEAR(used + free_swap, 2.0 * 1024.0 * 1024.0, 1024.0);
  }
}

TEST_P(TelemetryInvariants, CountersNonNegativeAndFinite) {
  GeneratedDataset run = Run();
  for (size_t attr = 0; attr < run.data.num_attributes(); ++attr) {
    const tsdata::Column& col = run.data.column(attr);
    if (col.kind() != tsdata::AttributeKind::kNumeric) continue;
    for (size_t row = 0; row < run.data.num_rows(); row += 11) {
      double v = col.numeric(row);
      EXPECT_TRUE(std::isfinite(v))
          << run.data.schema().attribute(attr).name;
      EXPECT_GE(v, 0.0) << run.data.schema().attribute(attr).name;
    }
  }
}

TEST_P(TelemetryInvariants, ServerProfileIsInvariant) {
  // Section 2.4: invariants must never look like explanations. The
  // server_profile column is constant, so no predicate can use it.
  GeneratedDataset run = Run();
  auto col = run.data.ColumnByName("server_profile");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->num_categories(), 1u);
}

TEST_P(TelemetryInvariants, ComplementRulesAreDataDependentInPractice) {
  // The kappa test must find the complement pairs dependent on real runs
  // (otherwise rule pruning would never fire).
  GeneratedDataset run = Run();
  core::IndependenceTestOptions options;
  double kappa = core::DomainKnowledge::ComputeKappa(
      run.data, "os_allocated_pages", "os_free_pages", options);
  EXPECT_GE(kappa, options.kappa_threshold)
      << "allocated/free should test dependent";
}

INSTANTIATE_TEST_SUITE_P(AllAnomalies, TelemetryInvariants,
                         ::testing::ValuesIn(AllAnomalyKinds()));

}  // namespace
}  // namespace dbsherlock::simulator
