#include "core/streaming_monitor.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/metrics.h"
#include "common/random.h"

namespace dbsherlock::core {
namespace {

tsdata::Schema MonitorSchema() {
  return tsdata::Schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
}

/// Feeds `monitor` rows [from, to): abnormal inside [ab_start, ab_end).
/// Returns all alerts raised.
std::vector<StreamingMonitor::Alert> Feed(StreamingMonitor* monitor,
                                          int from, int to, int ab_start,
                                          int ab_end, common::Pcg32* rng) {
  std::vector<StreamingMonitor::Alert> alerts;
  for (int t = from; t < to; ++t) {
    bool ab = t >= ab_start && t < ab_end;
    double latency = (ab ? 90.0 : 10.0) + rng->NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng->NextGaussian(0.0, 2.0);
    auto alert = monitor->Append(t, {latency, cpu});
    if (alert.has_value()) alerts.push_back(*alert);
  }
  return alerts;
}

TEST(StreamingMonitorTest, QuietStreamNeverAlerts) {
  StreamingMonitor monitor(MonitorSchema(), {});
  common::Pcg32 rng(1);
  auto alerts = Feed(&monitor, 0, 400, 0, 0, &rng);
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(monitor.rows_seen(), 400u);
}

TEST(StreamingMonitorTest, AlertsOnceOnAnomaly) {
  StreamingMonitor monitor(MonitorSchema(), {});
  common::Pcg32 rng(2);
  // 300 normal seconds, 40 abnormal, 160 normal again.
  auto alerts = Feed(&monitor, 0, 500, 300, 340, &rng);
  ASSERT_GE(alerts.size(), 1u);
  // All alerts point into the true anomaly (an ongoing anomaly may re-alert
  // as its detected region grows, but never for normal stretches).
  for (const auto& alert : alerts) {
    EXPECT_GE(alert.region.start, 290.0);
    EXPECT_LE(alert.region.start, 345.0);
    EXPECT_GE(alert.raised_at, alert.region.start);
  }
  // The first alert fires while the anomaly is live or shortly after.
  EXPECT_LE(alerts[0].raised_at, 360.0);
  // Its explanation names the shifted attributes.
  ASSERT_FALSE(alerts[0].explanation.predicates.empty());
  bool saw_latency = false;
  for (const auto& d : alerts[0].explanation.predicates) {
    if (d.predicate.attribute == "latency") saw_latency = true;
  }
  EXPECT_TRUE(saw_latency);
}

TEST(StreamingMonitorTest, SecondIncidentAlertsAgain) {
  StreamingMonitor::Options options;
  StreamingMonitor monitor(MonitorSchema(), options);
  common::Pcg32 rng(3);
  auto first = Feed(&monitor, 0, 400, 250, 280, &rng);
  ASSERT_GE(first.size(), 1u);
  auto second = Feed(&monitor, 400, 800, 600, 640, &rng);
  ASSERT_GE(second.size(), 1u);
  EXPECT_GT(second[0].region.start, 590.0);
}

TEST(StreamingMonitorTest, WindowStaysBounded) {
  StreamingMonitor::Options options;
  options.window_rows = 100;
  options.warmup_rows = 50;
  StreamingMonitor monitor(MonitorSchema(), options);
  common::Pcg32 rng(4);
  Feed(&monitor, 0, 500, 0, 0, &rng);
  // Bounded by window_rows plus the trim hysteresis slack.
  EXPECT_LE(monitor.window_size(), 100u + 64u);
  EXPECT_EQ(monitor.rows_seen(), 500u);
}

TEST(StreamingMonitorTest, NoDetectionBeforeWarmup) {
  StreamingMonitor::Options options;
  options.warmup_rows = 200;
  StreamingMonitor monitor(MonitorSchema(), options);
  common::Pcg32 rng(5);
  // An anomaly right at the start of the stream, before warmup completes.
  auto alerts = Feed(&monitor, 0, 150, 100, 130, &rng);
  EXPECT_TRUE(alerts.empty());
}

TEST(StreamingMonitorTest, BadRowIsIgnored) {
  StreamingMonitor monitor(MonitorSchema(), {});
  EXPECT_FALSE(monitor.Append(0.0, {1.0}).has_value());  // arity mismatch
  EXPECT_EQ(monitor.rows_seen(), 0u);
  EXPECT_FALSE(
      monitor.Append(0.0, {1.0, std::string("x")}).has_value());  // kind
  EXPECT_EQ(monitor.rows_seen(), 0u);
}

TEST(StreamingMonitorTest, DropCountersLandInMetricsSnapshot) {
  // The per-instance drop accessors mirror into the process-wide
  // `streaming_monitor.*` registry counters (what --metrics-out exports).
  // Registry counters are shared by every monitor in this binary, so
  // compare deltas, not absolute values.
  common::MetricsRegistry& reg = common::MetricsRegistry::Global();
  uint64_t late0 =
      reg.GetCounter("streaming_monitor.rows_dropped_late")->value();
  uint64_t dup0 =
      reg.GetCounter("streaming_monitor.rows_dropped_duplicate")->value();
  uint64_t nan0 =
      reg.GetCounter("streaming_monitor.rows_dropped_non_finite")->value();

  StreamingMonitor monitor(MonitorSchema(), {});
  EXPECT_FALSE(monitor.Append(10.0, {1.0, 1.0}).has_value());
  monitor.Append(5.0, {1.0, 1.0});    // late
  monitor.Append(10.0, {1.0, 1.0});   // duplicate of the newest timestamp
  monitor.Append(std::numeric_limits<double>::quiet_NaN(), {1.0, 1.0});
  monitor.Append(std::numeric_limits<double>::infinity(), {1.0, 1.0});
  EXPECT_EQ(monitor.late_rows_dropped(), 1u);
  EXPECT_EQ(monitor.duplicate_rows_dropped(), 1u);
  EXPECT_EQ(monitor.non_finite_rows_dropped(), 2u);

  EXPECT_EQ(reg.GetCounter("streaming_monitor.rows_dropped_late")->value(),
            late0 + 1);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.rows_dropped_duplicate")->value(),
      dup0 + 1);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.rows_dropped_non_finite")->value(),
      nan0 + 2);

  // And the snapshot JSON carries them under "counters".
  common::JsonValue snapshot = reg.SnapshotJson();
  const common::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("streaming_monitor.rows_dropped_late"), nullptr);
  EXPECT_GE(
      counters->Find("streaming_monitor.rows_dropped_late")->as_number(),
      1.0);
}

TEST(StreamingMonitorTest, LabeledInstancesNeverDoubleCountTheAggregate) {
  // Two monitors in one process (the multi-tenant service case): the
  // aggregate `streaming_monitor.*` counters must count each event exactly
  // once, while the `streaming_monitor.instance.<label>.*` mirrors keep
  // the two pipelines apart.
  common::MetricsRegistry& reg = common::MetricsRegistry::Global();
  uint64_t appended0 =
      reg.GetCounter("streaming_monitor.rows_appended")->value();
  uint64_t late0 =
      reg.GetCounter("streaming_monitor.rows_dropped_late")->value();

  StreamingMonitor::Options a_options;
  a_options.metric_label = "ten_a";
  StreamingMonitor::Options b_options;
  b_options.metric_label = "ten_b";
  StreamingMonitor a(MonitorSchema(), a_options);
  StreamingMonitor b(MonitorSchema(), b_options);
  for (int t = 0; t < 10; ++t) a.Append(t, {1.0, 1.0});
  for (int t = 0; t < 4; ++t) b.Append(t, {1.0, 1.0});
  b.Append(1.0, {1.0, 1.0});  // late: dropped, attributed to b only

  EXPECT_EQ(reg.GetCounter("streaming_monitor.rows_appended")->value(),
            appended0 + 14);
  EXPECT_EQ(reg.GetCounter("streaming_monitor.rows_dropped_late")->value(),
            late0 + 1);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.instance.ten_a.rows_appended")
          ->value(),
      10u);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.instance.ten_b.rows_appended")
          ->value(),
      4u);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.instance.ten_a.rows_dropped_late")
          ->value(),
      0u);
  EXPECT_EQ(
      reg.GetCounter("streaming_monitor.instance.ten_b.rows_dropped_late")
          ->value(),
      1u);
}

TEST(StreamingMonitorTest, UnlabeledMonitorRegistersNoInstanceMirror) {
  StreamingMonitor monitor(MonitorSchema(), {});
  monitor.Append(0.0, {1.0, 1.0});
  common::JsonValue snapshot =
      common::MetricsRegistry::Global().SnapshotJson();
  const common::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->Find("streaming_monitor.instance..rows_appended"),
            nullptr);
}

TEST(StreamingMonitorTest, PreloadedModelsNameTheCause) {
  StreamingMonitor monitor(MonitorSchema(), {});
  CausalModel model;
  model.cause = "CPU hog";
  model.predicates = {
      Predicate{"cpu", PredicateType::kGreaterThan, 70.0, 0.0, {}},
      Predicate{"latency", PredicateType::kGreaterThan, 50.0, 0.0, {}}};
  monitor.explainer().repository().AddUnmerged(model);

  common::Pcg32 rng(6);
  auto alerts = Feed(&monitor, 0, 450, 300, 340, &rng);
  ASSERT_GE(alerts.size(), 1u);
  ASSERT_FALSE(alerts[0].explanation.causes.empty());
  EXPECT_EQ(alerts[0].explanation.causes[0].cause, "CPU hog");
}

// --- Restart rehydration (Hydrate) ------------------------------------

tsdata::Dataset Tail(int from, int to) {
  tsdata::Dataset d(MonitorSchema());
  for (int t = from; t < to; ++t) {
    EXPECT_TRUE(d.AppendRow(t, {10.0, 40.0}).ok());
  }
  return d;
}

TEST(StreamingMonitorTest, HydratePrefillsWindowWithoutDetection) {
  StreamingMonitor monitor(MonitorSchema(), {});
  ASSERT_TRUE(monitor.Hydrate(Tail(0, 200)).ok());
  EXPECT_EQ(monitor.window_size(), 200u);
  EXPECT_EQ(monitor.rows_seen(), 200u);
  EXPECT_TRUE(monitor.alerts().empty());
  // Live appends continue after the hydrated span.
  auto alert = monitor.Append(200.0, {10.0, 40.0});
  EXPECT_FALSE(alert.has_value());
  EXPECT_TRUE(monitor.last_append_status().ok());
  EXPECT_EQ(monitor.window_size(), 201u);
}

TEST(StreamingMonitorTest, HydrateRespectsWindowBound) {
  StreamingMonitor::Options options;
  options.window_rows = 50;
  StreamingMonitor monitor(MonitorSchema(), options);
  ASSERT_TRUE(monitor.Hydrate(Tail(0, 200)).ok());
  EXPECT_EQ(monitor.window_size(), 50u);
  EXPECT_DOUBLE_EQ(monitor.window().timestamp(0), 150.0);
}

TEST(StreamingMonitorTest, HydrateRejectsSchemaMismatch) {
  StreamingMonitor monitor(MonitorSchema(), {});
  tsdata::Dataset wrong(tsdata::Schema(
      {{"other", tsdata::AttributeKind::kNumeric}}));
  ASSERT_TRUE(wrong.AppendRow(0.0, {1.0}).ok());
  EXPECT_FALSE(monitor.Hydrate(wrong).ok());
  EXPECT_EQ(monitor.window_size(), 0u);
}

TEST(StreamingMonitorTest, HydrateRejectsRowsNotNewerThanBuffered) {
  StreamingMonitor monitor(MonitorSchema(), {});
  ASSERT_TRUE(monitor.Hydrate(Tail(0, 10)).ok());
  // A second hydration overlapping the first is rejected whole.
  EXPECT_FALSE(monitor.Hydrate(Tail(5, 15)).ok());
  EXPECT_EQ(monitor.window_size(), 10u);
  // But a strictly-newer tail extends it.
  EXPECT_TRUE(monitor.Hydrate(Tail(10, 15)).ok());
  EXPECT_EQ(monitor.window_size(), 15u);
}

TEST(StreamingMonitorTest, HydrateSuppressesAlertsForHydratedSpan) {
  // An anomaly that lives entirely inside the hydrated tail must not
  // re-alert after restart: the pre-crash monitor already raised it.
  StreamingMonitor::Options options;
  StreamingMonitor reference(MonitorSchema(), options);
  common::Pcg32 rng(17);
  auto pre_crash = Feed(&reference, 0, 400, 300, 340, &rng);
  ASSERT_GE(pre_crash.size(), 1u);  // the anomaly is detectable

  StreamingMonitor restarted(MonitorSchema(), options);
  // Rehydrate from the reference's window (what the store's tail holds).
  ASSERT_TRUE(restarted.Hydrate(reference.window()).ok());
  // Stream quiet rows: nothing new is anomalous, so no alert may fire
  // even though the hydrated window still contains the old anomaly.
  common::Pcg32 rng2(18);
  auto post = Feed(&restarted, 400, 500, 0, 0, &rng2);
  EXPECT_TRUE(post.empty());
}

}  // namespace
}  // namespace dbsherlock::core
