#include "baselines/perfaugur.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::baselines {
namespace {

tsdata::Dataset LatencySeries(size_t n, size_t ab_start, size_t ab_end,
                              uint64_t seed) {
  tsdata::Dataset d(tsdata::Schema(
      {{"avg_latency_ms", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(seed);
  for (size_t t = 0; t < n; ++t) {
    bool ab = t >= ab_start && t < ab_end;
    double v = (ab ? 80.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
    EXPECT_TRUE(d.AppendRow(static_cast<double>(t), {v}).ok());
  }
  return d;
}

TEST(PerfAugurTest, FindsElevatedInterval) {
  tsdata::Dataset d = LatencySeries(300, 120, 170, 1);
  auto result = PerfAugurDetect(d, {});
  ASSERT_TRUE(result.ok());
  // The detected interval should overlap the injected one substantially.
  EXPECT_LE(result->first_row, 130u);
  EXPECT_GE(result->first_row, 110u);
  EXPECT_LE(result->last_row, 180u);
  EXPECT_GE(result->last_row, 160u);
  EXPECT_GT(result->score, 0.0);
  ASSERT_EQ(result->abnormal.ranges().size(), 1u);
}

TEST(PerfAugurTest, RegionMatchesRows) {
  tsdata::Dataset d = LatencySeries(300, 120, 170, 2);
  auto result = PerfAugurDetect(d, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->abnormal.Contains(
      d.timestamp(result->first_row)));
  EXPECT_TRUE(result->abnormal.Contains(d.timestamp(result->last_row)));
  EXPECT_FALSE(result->abnormal.Contains(
      d.timestamp(result->first_row) - 1.0));
}

TEST(PerfAugurTest, RespectsMaxFraction) {
  // Anomaly longer than max_fraction: the best admissible interval is
  // capped in length.
  tsdata::Dataset d = LatencySeries(200, 0, 150, 3);
  PerfAugurOptions options;
  options.max_fraction = 0.25;
  auto result = PerfAugurDetect(d, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->last_row - result->first_row + 1, 50u);
}

TEST(PerfAugurTest, MissingIndicatorFails) {
  tsdata::Dataset d(tsdata::Schema(
      {{"other", tsdata::AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {1.0}).ok());
  EXPECT_FALSE(PerfAugurDetect(d, {}).ok());
}

TEST(PerfAugurTest, TooShortSeriesFails) {
  tsdata::Dataset d = LatencySeries(3, 0, 0, 4);
  EXPECT_FALSE(PerfAugurDetect(d, {}).ok());
}

TEST(PerfAugurTest, CustomIndicatorAttribute) {
  tsdata::Dataset d(tsdata::Schema(
      {{"p99", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(5);
  for (size_t t = 0; t < 100; ++t) {
    double v = (t >= 40 && t < 60 ? 50.0 : 5.0) + rng.NextGaussian();
    ASSERT_TRUE(d.AppendRow(static_cast<double>(t), {v}).ok());
  }
  PerfAugurOptions options;
  options.indicator_attribute = "p99";
  auto result = PerfAugurDetect(d, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->first_row, 35u);
  EXPECT_LE(result->last_row, 65u);
}

TEST(PerfAugurTest, FlatSeriesStillReturnsSomething) {
  // No real anomaly: the search still returns its best-scoring interval
  // (score near zero), mirroring PerfAugur's always-answer behaviour.
  tsdata::Dataset d = LatencySeries(100, 0, 0, 6);
  auto result = PerfAugurDetect(d, {});
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->score, 0.0);
}

}  // namespace
}  // namespace dbsherlock::baselines
