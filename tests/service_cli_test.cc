// Daemon integration tests: boots a real `dbsherlockd serve` subprocess
// on an ephemeral port (parsing the "LISTENING <port>" handshake from its
// stdout), drives it with the real `dbsherlock client` subcommand, and
// checks clean SIGTERM shutdown plus WAL recovery across a restart.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunCommand(const std::string& command_in) {
  std::string command = command_in + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunClient(const std::string& args) {
  return RunCommand(std::string(DBSHERLOCK_CLI_PATH) + " client " + args);
}

/// A live `dbsherlockd serve` child. Start() blocks on the LISTENING
/// handshake; Terminate() sends SIGTERM and reaps the exit code.
class Daemon {
 public:
  ~Daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (out_ != nullptr) fclose(out_);
  }

  bool Start(const std::string& wal_dir) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      // Child: stdout -> pipe (the LISTENING line); stderr inherited so
      // daemon logs land in the test output.
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      execl(DBSHERLOCK_DAEMON_PATH, "dbsherlockd", "serve", "--port", "0",
            "--wal-dir", wal_dir.c_str(), static_cast<char*>(nullptr));
      _exit(127);
    }
    close(fds[1]);
    out_ = fdopen(fds[0], "r");
    if (out_ == nullptr) return false;
    char line[256];
    while (fgets(line, sizeof(line), out_) != nullptr) {
      if (sscanf(line, "LISTENING %d", &port_) == 1) return true;
    }
    return false;
  }

  /// SIGTERM the daemon and reap its exit code.
  int Terminate() {
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  int port() const { return port_; }

 private:
  pid_t pid_ = -1;
  FILE* out_ = nullptr;
  int port_ = 0;
};

std::string WalDir() {
  return testing::TempDir() + "/dbsherlockd_cli_" + std::to_string(getpid());
}

TEST(ServiceCliTest, DaemonWithoutArgsPrintsUsage) {
  RunResult r = RunCommand(std::string(DBSHERLOCK_DAEMON_PATH));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(ServiceCliTest, ClientWithoutDaemonFailsWithIoError) {
  // Port 1 is never listening; the exit code is the CLI's kIoError slot.
  RunResult r = RunClient("--connect 127.0.0.1:1 --ping");
  EXPECT_EQ(r.exit_code, 7);
}

TEST(ServiceCliTest, ServeIngestTeachStatsAndCleanShutdown) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(WalDir()));
  std::string connect =
      "--connect 127.0.0.1:" + std::to_string(daemon.port());

  RunResult ping = RunClient(connect + " --ping");
  EXPECT_EQ(ping.exit_code, 0) << ping.output;
  EXPECT_NE(ping.output.find("pong"), std::string::npos);

  EXPECT_EQ(RunClient(connect + " --raw 'HELLO t0 cpu:num'").exit_code, 0);
  RunResult append = RunClient(connect + " --raw 'APPEND t0 1 5'");
  EXPECT_EQ(append.exit_code, 0) << append.output;
  EXPECT_NE(append.output.find("OK 1"), std::string::npos);

  RunResult teach = RunClient(
      connect +
      " --raw 'TEACH {\"cause\":\"Test\",\"predicates\":"
      "[{\"attribute\":\"cpu\",\"type\":\"gt\",\"low\":3}]}'");
  EXPECT_EQ(teach.exit_code, 0) << teach.output;

  RunResult stats = RunClient(connect + " --stats");
  EXPECT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("\"acked\""), std::string::npos);
  EXPECT_NE(stats.output.find("\"store\""), std::string::npos);

  // A malformed line comes back as a server ERR, which the client maps
  // onto the CLI's per-StatusCode exit codes (3 = invalid argument).
  RunResult bad = RunClient(connect + " --raw 'FROB x'");
  EXPECT_EQ(bad.exit_code, 3) << bad.output;
  EXPECT_NE(bad.output.find("error"), std::string::npos);

  EXPECT_EQ(daemon.Terminate(), 0);  // SIGTERM drains and exits 0
}

TEST(ServiceCliTest, RestartedDaemonServesRecoveredModels) {
  std::string wal_dir = WalDir() + "_restart";
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(wal_dir));
    std::string connect =
        "--connect 127.0.0.1:" + std::to_string(daemon.port());
    RunResult teach = RunClient(
        connect +
        " --raw 'TEACH {\"cause\":\"Recovered\",\"predicates\":"
        "[{\"attribute\":\"cpu\",\"type\":\"gt\",\"low\":3}]}'");
    ASSERT_EQ(teach.exit_code, 0) << teach.output;
    ASSERT_EQ(daemon.Terminate(), 0);
  }
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(wal_dir));
  RunResult models = RunClient(
      "--connect 127.0.0.1:" + std::to_string(daemon.port()) + " --models");
  EXPECT_EQ(models.exit_code, 0) << models.output;
  EXPECT_NE(models.output.find("Recovered"), std::string::npos);
  EXPECT_EQ(daemon.Terminate(), 0);
}

}  // namespace
