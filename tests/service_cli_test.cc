// Daemon integration tests: boots a real `dbsherlockd serve` subprocess
// on an ephemeral port (parsing the "LISTENING <port>" handshake from its
// stdout), drives it with the real `dbsherlock client` subcommand, and
// checks clean SIGTERM shutdown plus WAL recovery across a restart.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunCommand(const std::string& command_in) {
  std::string command = command_in + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

RunResult RunClient(const std::string& args) {
  return RunCommand(std::string(DBSHERLOCK_CLI_PATH) + " client " + args);
}

/// A live `dbsherlockd serve` child. Start() blocks on the LISTENING
/// handshake; Terminate() sends SIGTERM and reaps the exit code.
class Daemon {
 public:
  ~Daemon() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
    }
    if (out_ != nullptr) fclose(out_);
  }

  bool Start(const std::string& wal_dir,
             const std::vector<std::string>& extra_args = {}) {
    int fds[2];
    if (pipe(fds) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      // Child: stdout -> pipe (the LISTENING line); stderr inherited so
      // daemon logs land in the test output.
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      std::vector<const char*> argv = {DBSHERLOCK_DAEMON_PATH, "serve",
                                       "--port", "0", "--wal-dir",
                                       wal_dir.c_str()};
      for (const std::string& arg : extra_args) argv.push_back(arg.c_str());
      argv.push_back(nullptr);
      execv(DBSHERLOCK_DAEMON_PATH, const_cast<char* const*>(argv.data()));
      _exit(127);
    }
    close(fds[1]);
    out_ = fdopen(fds[0], "r");
    if (out_ == nullptr) return false;
    char line[256];
    while (fgets(line, sizeof(line), out_) != nullptr) {
      if (sscanf(line, "LISTENING %d", &port_) == 1) return true;
    }
    return false;
  }

  /// SIGTERM the daemon and reap its exit code.
  int Terminate() {
    kill(pid_, SIGTERM);
    int status = 0;
    waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  /// kill -9: no drain, no seal, no goodbye — the crash-recovery case.
  void Kill9() {
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
  }

  int port() const { return port_; }

 private:
  pid_t pid_ = -1;
  FILE* out_ = nullptr;
  int port_ = 0;
};

std::string WalDir() {
  return testing::TempDir() + "/dbsherlockd_cli_" + std::to_string(getpid());
}

TEST(ServiceCliTest, DaemonWithoutArgsPrintsUsage) {
  RunResult r = RunCommand(std::string(DBSHERLOCK_DAEMON_PATH));
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(ServiceCliTest, ClientWithoutDaemonFailsWithIoError) {
  // Port 1 is never listening; the exit code is the CLI's kIoError slot.
  RunResult r = RunClient("--connect 127.0.0.1:1 --ping");
  EXPECT_EQ(r.exit_code, 7);
}

TEST(ServiceCliTest, ServeIngestTeachStatsAndCleanShutdown) {
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(WalDir()));
  std::string connect =
      "--connect 127.0.0.1:" + std::to_string(daemon.port());

  RunResult ping = RunClient(connect + " --ping");
  EXPECT_EQ(ping.exit_code, 0) << ping.output;
  EXPECT_NE(ping.output.find("pong"), std::string::npos);

  EXPECT_EQ(RunClient(connect + " --raw 'HELLO t0 cpu:num'").exit_code, 0);
  RunResult append = RunClient(connect + " --raw 'APPEND t0 1 5'");
  EXPECT_EQ(append.exit_code, 0) << append.output;
  EXPECT_NE(append.output.find("OK 1"), std::string::npos);

  RunResult teach = RunClient(
      connect +
      " --raw 'TEACH {\"cause\":\"Test\",\"predicates\":"
      "[{\"attribute\":\"cpu\",\"type\":\"gt\",\"low\":3}]}'");
  EXPECT_EQ(teach.exit_code, 0) << teach.output;

  RunResult stats = RunClient(connect + " --stats");
  EXPECT_EQ(stats.exit_code, 0) << stats.output;
  EXPECT_NE(stats.output.find("\"acked\""), std::string::npos);
  EXPECT_NE(stats.output.find("\"store\""), std::string::npos);

  // A malformed line comes back as a server ERR, which the client maps
  // onto the CLI's per-StatusCode exit codes (3 = invalid argument).
  RunResult bad = RunClient(connect + " --raw 'FROB x'");
  EXPECT_EQ(bad.exit_code, 3) << bad.output;
  EXPECT_NE(bad.output.find("error"), std::string::npos);

  EXPECT_EQ(daemon.Terminate(), 0);  // SIGTERM drains and exits 0
}

/// Writes a tiny telemetry CSV (one `cpu` column, rows t = 0..rows-1).
std::string WriteCsv(const std::string& name, int rows) {
  std::string path = testing::TempDir() + "/dbsherlockd_cli_" +
                     std::to_string(getpid()) + "_" + name + ".csv";
  std::ofstream f(path);
  f << "timestamp,cpu\n";
  for (int t = 0; t < rows; ++t) f << t << "," << (40 + t % 5) << "\n";
  return path;
}

TEST(ServiceCliTest, QueryAndStoreInspectOverTheHistoryStore) {
  std::string root = WalDir() + "_hist";
  (void)RunCommand("rm -rf '" + root + "' && mkdir -p '" + root + "'");
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(root + "/wal",
                           {"--store-dir", root + "/store", "--seal-rows",
                            "10"}));
  std::string connect =
      "--connect 127.0.0.1:" + std::to_string(daemon.port());
  std::string csv = WriteCsv("query", 25);
  RunResult append =
      RunClient(connect + " --append-csv " + csv + " --tenant t0");
  ASSERT_EQ(append.exit_code, 0) << append.output;
  EXPECT_NE(append.output.find("appended 25 row(s)"), std::string::npos);
  ASSERT_EQ(RunClient(connect + " --flush --tenant t0").exit_code, 0);

  RunResult query =
      RunClient(connect + " --query 5:15 --tenant t0 --csv-out");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  EXPECT_NE(query.output.find("timestamp,cpu"), std::string::npos);
  EXPECT_NE(query.output.find("\n5,40"), std::string::npos);
  EXPECT_NE(query.output.find("\n14,44"), std::string::npos);
  EXPECT_EQ(query.output.find("\n15,"), std::string::npos);

  EXPECT_EQ(daemon.Terminate(), 0);
  // store-inspect reads the sealed segments straight off disk (the clean
  // shutdown sealed the 5-row active tail too).
  RunResult inspect = RunCommand(std::string(DBSHERLOCK_CLI_PATH) +
                                 " store-inspect --dir " + root +
                                 "/store/t0");
  EXPECT_EQ(inspect.exit_code, 0) << inspect.output;
  EXPECT_NE(inspect.output.find("25 sealed row(s)"), std::string::npos);
  EXPECT_NE(inspect.output.find("cpu:num"), std::string::npos);
  RunResult dump = RunCommand(std::string(DBSHERLOCK_CLI_PATH) +
                              " store-inspect --dir " + root +
                              "/store/t0 --dump");
  EXPECT_EQ(dump.exit_code, 0) << dump.output;
  EXPECT_NE(dump.output.find("\n24,44"), std::string::npos);
}

TEST(ServiceCliTest, Kill9LosesAtMostTheUnsealedTail) {
  std::string root = WalDir() + "_kill9";
  (void)RunCommand("rm -rf '" + root + "' && mkdir -p '" + root + "'");
  std::vector<std::string> flags = {"--store-dir", root + "/store",
                                    "--seal-rows", "10"};
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(root + "/wal", flags));
    std::string connect =
        "--connect 127.0.0.1:" + std::to_string(daemon.port());
    std::string csv = WriteCsv("kill9", 37);
    ASSERT_EQ(
        RunClient(connect + " --append-csv " + csv + " --tenant t0")
            .exit_code,
        0);
    // Flush guarantees every acked row reached the store before the kill;
    // 30 rows are sealed (3 x 10), 7 sit in the active segment.
    ASSERT_EQ(RunClient(connect + " --flush --tenant t0").exit_code, 0);
    daemon.Kill9();
  }
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(root + "/wal", flags));
  std::string connect =
      "--connect 127.0.0.1:" + std::to_string(daemon.port());
  // HELLO re-attaches the tenant to its on-disk history (and rehydrates
  // the monitor window from it).
  ASSERT_EQ(
      RunClient(connect + " --hello --tenant t0 --schema cpu:num").exit_code,
      0);
  RunResult query =
      RunClient(connect + " --query 0:1000 --tenant t0 --csv-out");
  EXPECT_EQ(query.exit_code, 0) << query.output;
  // Every sealed row survived; only the unsealed active tail is gone.
  EXPECT_NE(query.output.find("\n29,44"), std::string::npos);
  EXPECT_EQ(query.output.find("\n30,"), std::string::npos);
  // Ingest resumes where the sealed history ends: a duplicate of the
  // last sealed timestamp is dropped, the next one is accepted.
  RunResult stats = RunClient(connect + " --stats");
  EXPECT_NE(stats.output.find("\"sealed_rows\": 30"), std::string::npos)
      << stats.output;
  EXPECT_EQ(daemon.Terminate(), 0);
}

/// Telemetry CSV with an injected cpu plateau over [30, 45).
std::string WriteAnomalyCsv(const std::string& name) {
  std::string path = testing::TempDir() + "/dbsherlockd_cli_" +
                     std::to_string(getpid()) + "_" + name + ".csv";
  std::ofstream f(path);
  f << "timestamp,cpu\n";
  for (int t = 0; t < 60; ++t) {
    f << t << "," << ((t >= 30 && t < 45) ? 95 : 40 + t % 5) << "\n";
  }
  return path;
}

TEST(ServiceCliTest, ExplainQueryRendersIncidentReport) {
  std::string root = WalDir() + "_dql";
  (void)RunCommand("rm -rf '" + root + "' && mkdir -p '" + root + "'");
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(root + "/wal",
                           {"--store-dir", root + "/store", "--seal-rows",
                            "10"}));
  std::string connect =
      "--connect 127.0.0.1:" + std::to_string(daemon.port());
  std::string csv = WriteAnomalyCsv("explain");
  ASSERT_EQ(RunClient(connect + " --append-csv " + csv + " --tenant t0")
                .exit_code,
            0);
  ASSERT_EQ(RunClient(connect + " --flush --tenant t0").exit_code, 0);
  RunResult teach = RunClient(
      connect +
      " --raw 'TEACH {\"cause\":\"CPU hog\",\"suggested_action\":"
      "\"throttle the batch job\",\"predicates\":"
      "[{\"attribute\":\"cpu\",\"type\":\"gt\",\"low\":70}]}'");
  ASSERT_EQ(teach.exit_code, 0) << teach.output;

  // Markdown report (the default --report md).
  RunResult md = RunClient(
      connect +
      " --explain 'EXPLAIN WHERE cpu > 70 BETWEEN 0 60 TOP 3'"
      " --tenant t0");
  EXPECT_EQ(md.exit_code, 0) << md.output;
  EXPECT_NE(md.output.find("# Incident report"), std::string::npos)
      << md.output;
  EXPECT_NE(md.output.find("CPU hog"), std::string::npos) << md.output;
  EXPECT_NE(md.output.find("throttle the batch job"), std::string::npos)
      << md.output;

  // JSON report carries the machine-readable finding.
  RunResult json = RunClient(
      connect +
      " --explain 'EXPLAIN WHERE cpu > 70 BETWEEN 0 60 TOP 3'"
      " --tenant t0 --report json");
  EXPECT_EQ(json.exit_code, 0) << json.output;
  EXPECT_NE(json.output.find("\"kind\": \"explain_where\""),
            std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"CPU hog\""), std::string::npos)
      << json.output;

  // A syntax error surfaces the server's caret diagnostic through the
  // client's error path with a non-zero exit.
  RunResult bad = RunClient(connect +
                            " --explain 'EXPLAIN WHERE cpu >' --tenant t0");
  EXPECT_NE(bad.exit_code, 0);
  EXPECT_NE(bad.output.find("^"), std::string::npos) << bad.output;

  EXPECT_EQ(daemon.Terminate(), 0);
}

TEST(ServiceCliTest, RestartedDaemonServesRecoveredModels) {
  std::string wal_dir = WalDir() + "_restart";
  {
    Daemon daemon;
    ASSERT_TRUE(daemon.Start(wal_dir));
    std::string connect =
        "--connect 127.0.0.1:" + std::to_string(daemon.port());
    RunResult teach = RunClient(
        connect +
        " --raw 'TEACH {\"cause\":\"Recovered\",\"predicates\":"
        "[{\"attribute\":\"cpu\",\"type\":\"gt\",\"low\":3}]}'");
    ASSERT_EQ(teach.exit_code, 0) << teach.output;
    ASSERT_EQ(daemon.Terminate(), 0);
  }
  Daemon daemon;
  ASSERT_TRUE(daemon.Start(wal_dir));
  RunResult models = RunClient(
      "--connect 127.0.0.1:" + std::to_string(daemon.port()) + " --models");
  EXPECT_EQ(models.exit_code, 0) << models.output;
  EXPECT_NE(models.output.find("Recovered"), std::string::npos);
  EXPECT_EQ(daemon.Terminate(), 0);
}

}  // namespace
