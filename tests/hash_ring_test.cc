// Consistent-hash ring (fleet/hash_ring.h): deterministic placement,
// bounded remap fraction when the fleet grows, virtual-node balance, and
// the down-shard skip overload.

#include "fleet/hash_ring.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace dbsherlock::fleet {
namespace {

std::vector<std::string> Shards(size_t n) {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i)
    out.push_back("10.0.0." + std::to_string(i) + ":7379");
  return out;
}

std::vector<std::string> Tenants(size_t n) {
  std::vector<std::string> out;
  for (size_t i = 0; i < n; ++i) out.push_back("t" + std::to_string(i));
  return out;
}

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing a(Shards(4));
  HashRing b(Shards(4));
  for (const std::string& tenant : Tenants(500)) {
    EXPECT_EQ(a.ShardFor(tenant), b.ShardFor(tenant)) << tenant;
  }
}

TEST(HashRingTest, StableUnderRepeatedLookups) {
  HashRing ring(Shards(3));
  for (const std::string& tenant : Tenants(100)) {
    size_t first = ring.ShardFor(tenant);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(first, ring.ShardFor(tenant));
  }
}

TEST(HashRingTest, HashIsFnv1a64WithFmix64) {
  // Known-answer vectors pin the function (FNV-1a 64 folded through the
  // murmur3 fmix64 finalizer): routers on different builds must agree on
  // placement byte-for-byte.
  EXPECT_EQ(HashRing::Hash(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(HashRing::Hash("a"), 0x82a2a958a9bece5bull);
  EXPECT_EQ(HashRing::Hash("foobar"), 0x2c22194922d1672bull);
}

TEST(HashRingTest, BenchStyleAddressesStayBalanced) {
  // Regression for the raw-FNV collapse: same-host shards differing only
  // in port (exactly what `dbsherlockd route --shards` sees on one box)
  // once starved two of four shards completely (0/0/10/190 over 200
  // tenants). Every shard must own a sane share.
  HashRing ring({"127.0.0.1:36365", "127.0.0.1:37803", "127.0.0.1:37629",
                 "127.0.0.1:35821"});
  std::map<size_t, size_t> counts;
  const size_t kTenants = 2000;
  for (const std::string& tenant : Tenants(kTenants)) {
    ++counts[ring.ShardFor(tenant)];
  }
  ASSERT_EQ(counts.size(), 4u) << "some shard owns no tenants";
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, kTenants / 4 / 3) << "shard " << shard;
    EXPECT_LT(count, kTenants * 3 / 4) << "shard " << shard;
  }
}

TEST(HashRingTest, EveryShardOwnsTenants) {
  const size_t kShards = 4;
  HashRing ring(Shards(kShards));
  std::map<size_t, size_t> counts;
  const size_t kTenants = 2000;
  for (const std::string& tenant : Tenants(kTenants)) {
    ++counts[ring.ShardFor(tenant)];
  }
  ASSERT_EQ(counts.size(), kShards) << "some shard owns no tenants";
  for (const auto& [shard, count] : counts) {
    // With 64 vnodes/shard the arc share concentrates near 1/N; accept a
    // generous band so the test is not flaky to vnode-layout tweaks.
    EXPECT_GT(count, kTenants / kShards / 3)
        << "shard " << shard << " badly underloaded";
    EXPECT_LT(count, kTenants * 3 / kShards)
        << "shard " << shard << " badly overloaded";
  }
}

TEST(HashRingTest, AddingShardRemapsBoundedFraction) {
  const size_t kTenants = 5000;
  HashRing before(Shards(4));
  std::vector<std::string> grown = Shards(4);
  grown.push_back("10.0.0.9:7379");
  HashRing after(std::move(grown));
  size_t moved = 0;
  for (const std::string& tenant : Tenants(kTenants)) {
    size_t src = before.ShardFor(tenant);
    size_t dst = after.ShardFor(tenant);
    if (src != dst) {
      ++moved;
      // Consistent hashing only moves keys TO the new shard.
      EXPECT_EQ(dst, 4u) << tenant;
    }
  }
  // Ideal remap fraction is 1/(N+1) = 1/5; require <= 2/N = 1/2 with a
  // comfortable margin (the ISSUE's bound), and that some keys did move.
  EXPECT_GT(moved, 0u);
  EXPECT_LE(moved, kTenants * 2 / 4);
  // Tighter expectation: within 2x of ideal.
  EXPECT_LE(moved, kTenants * 2 / 5);
}

TEST(HashRingTest, DownShardSkipsToNextOwner) {
  HashRing ring(Shards(3));
  std::vector<bool> down(3, false);
  for (const std::string& tenant : Tenants(200)) {
    size_t owner = ring.ShardFor(tenant);
    down.assign(3, false);
    down[owner] = true;
    size_t fallback = ring.ShardFor(tenant, down);
    EXPECT_NE(fallback, owner) << tenant;
    // With the owner back up the original placement returns.
    down[owner] = false;
    EXPECT_EQ(ring.ShardFor(tenant, down), owner) << tenant;
  }
}

TEST(HashRingTest, AllDownFallsBackDeterministically) {
  HashRing ring(Shards(3));
  std::vector<bool> down(3, true);
  for (const std::string& tenant : Tenants(50)) {
    EXPECT_EQ(ring.ShardFor(tenant, down), ring.ShardFor(tenant));
  }
}

TEST(HashRingTest, SingleShardTakesEverything) {
  HashRing ring(Shards(1));
  for (const std::string& tenant : Tenants(50)) {
    EXPECT_EQ(ring.ShardFor(tenant), 0u);
  }
}

TEST(HashRingTest, VnodeCountControlsGranularity) {
  // More vnodes -> tighter balance. Compare worst-case shard share.
  auto worst_share = [](size_t vnodes) {
    HashRing ring(Shards(4), vnodes);
    std::map<size_t, size_t> counts;
    for (const std::string& tenant : Tenants(4000))
      ++counts[ring.ShardFor(tenant)];
    size_t worst = 0;
    for (const auto& [shard, count] : counts) worst = std::max(worst, count);
    return worst;
  };
  EXPECT_LE(worst_share(128), worst_share(1) + 1000);
}

}  // namespace
}  // namespace dbsherlock::fleet
