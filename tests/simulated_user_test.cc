#include "eval/simulated_user.h"

#include <gtest/gtest.h>

#include "core/domain_knowledge.h"

namespace dbsherlock::eval {
namespace {

struct Fixture {
  Corpus corpus;
  core::ModelRepository repo;
  core::PredicateGenOptions options;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    simulator::DatasetGenOptions gen;
    gen.seed = 99;
    f->corpus = GenerateCorpus(gen);
    f->options.normalized_diff_threshold = 0.05;
    for (size_t c = 0; c < f->corpus.num_classes(); ++c) {
      for (size_t i = 0; i < 5; ++i) {
        f->repo.Add(BuildCausalModel(f->corpus.by_class[c][i],
                                     f->corpus.ClassName(c), f->options));
      }
    }
    return f;
  }();
  return *fixture;
}

UserStudyQuestion MakeQuestion(const Fixture& f, size_t klass) {
  UserStudyQuestion q;
  q.dataset = &f.corpus.by_class[klass][8];
  q.correct = f.corpus.ClassName(klass);
  q.choices = {q.correct, f.corpus.ClassName((klass + 1) % 10),
               f.corpus.ClassName((klass + 2) % 10),
               f.corpus.ClassName((klass + 3) % 10)};
  return q;
}

TEST(SimulatedUserTest, NoiselessUserFollowsEvidence) {
  const Fixture& f = SharedFixture();
  SimulatedUserOptions options;
  options.noise_research = 0.0;  // perfect evidence reader
  common::Pcg32 rng(1);
  size_t correct = 0;
  for (size_t klass = 0; klass < 10; ++klass) {
    if (AnswerQuestion(MakeQuestion(f, klass), f.repo, f.options,
                       UserTier::kResearchOrDba, options, &rng)) {
      ++correct;
    }
  }
  EXPECT_GE(correct, 8u);  // evidence is strong for nearly every class
}

TEST(SimulatedUserTest, ExtremeNoiseApproachesRandom) {
  const Fixture& f = SharedFixture();
  SimulatedUserOptions options;
  options.noise_preliminary = 1e6;  // evidence drowned out
  common::Pcg32 rng(2);
  size_t correct = 0;
  const size_t trials = 400;
  for (size_t t = 0; t < trials; ++t) {
    if (AnswerQuestion(MakeQuestion(f, t % 10), f.repo, f.options,
                       UserTier::kPreliminaryKnowledge, options, &rng)) {
      ++correct;
    }
  }
  double rate = static_cast<double>(correct) / trials;
  EXPECT_GT(rate, 0.15);  // ~uniform over 4 choices
  EXPECT_LT(rate, 0.40);
}

TEST(SimulatedUserTest, MoreNoiseNeverHelps) {
  const Fixture& f = SharedFixture();
  common::Pcg32 rng(3);
  size_t low_noise_correct = 0, high_noise_correct = 0;
  const size_t trials = 200;
  for (size_t t = 0; t < trials; ++t) {
    SimulatedUserOptions low;
    low.noise_research = 5.0;
    SimulatedUserOptions high;
    high.noise_research = 120.0;
    if (AnswerQuestion(MakeQuestion(f, t % 10), f.repo, f.options,
                       UserTier::kResearchOrDba, low, &rng)) {
      ++low_noise_correct;
    }
    if (AnswerQuestion(MakeQuestion(f, t % 10), f.repo, f.options,
                       UserTier::kResearchOrDba, high, &rng)) {
      ++high_noise_correct;
    }
  }
  EXPECT_GE(low_noise_correct, high_noise_correct);
}

TEST(SimulatedUserTest, TierNames) {
  EXPECT_EQ(UserTierName(UserTier::kPreliminaryKnowledge),
            "Preliminary DB Knowledge");
  EXPECT_EQ(UserTierName(UserTier::kUsageExperience), "DB Usage Experience");
  EXPECT_EQ(UserTierName(UserTier::kResearchOrDba),
            "DB Research or DBA Experience");
}

}  // namespace
}  // namespace dbsherlock::eval
