#include "simulator/dataset_gen.h"

#include <gtest/gtest.h>

#include "simulator/metric_schema.h"

namespace dbsherlock::simulator {
namespace {

TEST(DatasetGenTest, SingleAnomalyLayout) {
  DatasetGenOptions options;
  options.seed = 1;
  GeneratedDataset run =
      GenerateAnomalyDataset(options, AnomalyKind::kIoSaturation, 45.0);
  // Two minutes of normal + 45 s anomaly.
  EXPECT_EQ(run.data.num_rows(), 165u);
  ASSERT_EQ(run.regions.abnormal.ranges().size(), 1u);
  EXPECT_DOUBLE_EQ(run.regions.abnormal.ranges()[0].start, 60.0);
  EXPECT_DOUBLE_EQ(run.regions.abnormal.ranges()[0].end, 105.0);
  EXPECT_TRUE(run.regions.normal.empty());  // implicit normal
  EXPECT_EQ(run.label, "I/O Saturation");
  ASSERT_EQ(run.events.size(), 1u);
  EXPECT_EQ(run.events[0].kind, AnomalyKind::kIoSaturation);
}

TEST(DatasetGenTest, SchemaMatchesMetricSchema) {
  DatasetGenOptions options;
  GeneratedDataset run =
      GenerateAnomalyDataset(options, AnomalyKind::kWorkloadSpike, 30.0);
  EXPECT_TRUE(run.data.schema() == MetricSchema());
  EXPECT_EQ(run.data.num_attributes(), NumNumericMetrics() + 2);
}

TEST(DatasetGenTest, TimestampsStartAtZeroPerSecond) {
  DatasetGenOptions options;
  GeneratedDataset run =
      GenerateAnomalyDataset(options, AnomalyKind::kWorkloadSpike, 30.0);
  EXPECT_DOUBLE_EQ(run.data.timestamp(0), 0.0);
  EXPECT_DOUBLE_EQ(run.data.timestamp(1), 1.0);
  EXPECT_DOUBLE_EQ(run.data.timestamp(run.data.num_rows() - 1),
                   static_cast<double>(run.data.num_rows() - 1));
}

TEST(DatasetGenTest, SeriesHasElevenDatasetsWithPaperDurations) {
  DatasetGenOptions options;
  options.seed = 3;
  std::vector<GeneratedDataset> series =
      GenerateAnomalySeries(options, AnomalyKind::kDatabaseBackup);
  ASSERT_EQ(series.size(), 11u);
  for (size_t i = 0; i < series.size(); ++i) {
    double expected_duration = 30.0 + 5.0 * static_cast<double>(i);
    EXPECT_DOUBLE_EQ(series[i].events[0].duration_sec, expected_duration);
    EXPECT_EQ(series[i].data.num_rows(),
              static_cast<size_t>(120 + expected_duration));
  }
}

TEST(DatasetGenTest, SeriesDatasetsDiffer) {
  DatasetGenOptions options;
  options.seed = 4;
  std::vector<GeneratedDataset> series =
      GenerateAnomalySeries(options, AnomalyKind::kCpuSaturation);
  // Different seeds + magnitudes: first rows differ across the series.
  EXPECT_NE(series[0].data.column(0).numeric(0),
            series[1].data.column(0).numeric(0));
  EXPECT_NE(series[0].events[0].magnitude, series[10].events[0].magnitude);
}

TEST(DatasetGenTest, CompoundDatasetUnionsRegions) {
  DatasetGenOptions options;
  options.seed = 5;
  GeneratedDataset run = GenerateCompoundDataset(
      options,
      {AnomalyKind::kWorkloadSpike, AnomalyKind::kNetworkCongestion}, 50.0);
  EXPECT_EQ(run.events.size(), 2u);
  EXPECT_EQ(run.label, "Workload Spike + Network Congestion");
  // Both events share the same window here, so the union equals it.
  EXPECT_TRUE(run.regions.abnormal.Contains(80.0));
  EXPECT_FALSE(run.regions.abnormal.Contains(20.0));
}

TEST(DatasetGenTest, ScheduleWithDisjointEvents) {
  DatasetGenOptions options;
  options.seed = 6;
  AnomalyEvent a{AnomalyKind::kCpuSaturation, 30.0, 20.0};
  AnomalyEvent b{AnomalyKind::kIoSaturation, 100.0, 20.0};
  GeneratedDataset run = GenerateWithSchedule(options, {a, b}, 180.0);
  EXPECT_EQ(run.data.num_rows(), 180u);
  EXPECT_TRUE(run.regions.abnormal.Contains(35.0));
  EXPECT_FALSE(run.regions.abnormal.Contains(70.0));
  EXPECT_TRUE(run.regions.abnormal.Contains(110.0));
}

TEST(DatasetGenTest, CompoundLabelFormatting) {
  EXPECT_EQ(CompoundLabel({AnomalyKind::kCpuSaturation}), "CPU Saturation");
  EXPECT_EQ(CompoundLabel({AnomalyKind::kCpuSaturation,
                           AnomalyKind::kIoSaturation,
                           AnomalyKind::kNetworkCongestion}),
            "CPU Saturation + I/O Saturation + Network Congestion");
}

TEST(DatasetGenTest, AnomalyKindNamesRoundTrip) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    EXPECT_FALSE(AnomalyKindName(kind).empty());
    EXPECT_FALSE(AnomalyKindId(kind).empty());
    EXPECT_EQ(AnomalyKindId(kind).find(' '), std::string::npos);
  }
  EXPECT_EQ(AllAnomalyKinds().size(), 10u);
}

}  // namespace
}  // namespace dbsherlock::simulator
