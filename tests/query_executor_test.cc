// DQL executor (DESIGN.md §16): WHERE discovery must ride the zone-map
// pushdown (fewer segments decoded than a full scan — the PR's acceptance
// bar), find the injected anomaly, rank the taught cause top-1 with
// confidence margins, degrade budget overruns into report notes, and
// render sparkline context. DESCRIBE and REGION paths ride along.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/explainer.h"
#include "query/compiler.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/report.h"
#include "store/tenant_store.h"

namespace dbsherlock::query {
namespace {

using store::TenantStore;
using tsdata::AttributeKind;
using tsdata::Schema;

Schema TwoNumeric() {
  return Schema({{"latency", AttributeKind::kNumeric},
                 {"cpu", AttributeKind::kNumeric}});
}

std::string StoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_qexec_" +
                    std::to_string(getpid()) + "_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

/// A store with 2000 deterministic rows: latency ~N(10, 1.5) / cpu
/// ~N(40, 2) except a [1000, 1060) anomaly at ~N(90, 1.5) / ~N(95, 2).
std::unique_ptr<TenantStore> AnomalyStore(const std::string& name) {
  TenantStore::Options options;
  options.dir = StoreDir(name);
  options.schema = TwoNumeric();
  options.seal_rows = 64;
  options.fsync_on_seal = false;
  auto open = TenantStore::Open(std::move(options));
  EXPECT_TRUE(open.ok()) << open.status().ToString();
  auto store = std::move(*open);
  common::Pcg32 rng(7);
  for (int t = 0; t < 2000; ++t) {
    bool ab = t >= 1000 && t < 1060;
    double latency = (ab ? 90.0 : 10.0) + rng.NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng.NextGaussian(0.0, 2.0);
    EXPECT_TRUE(store->Append(t, {latency, cpu}).ok());
  }
  EXPECT_TRUE(store->Seal().ok());
  return store;
}

/// An explainer that knows one cause matching the injected anomaly.
core::Explainer TaughtExplainer() {
  core::Explainer explainer;
  core::CausalModel model;
  model.cause = "CPU hog";
  model.suggested_action = "throttle the batch job";
  model.predicates = {
      core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}},
      core::Predicate{
          "latency", core::PredicateType::kGreaterThan, 50.0, 0.0, {}}};
  explainer.repository().Add(std::move(model));
  return explainer;
}

IncidentReport MustExecute(const std::string& text, const Schema& schema,
                           const TenantStore* history,
                           const core::Explainer& explainer,
                           ExecutorOptions options = {}) {
  auto parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  CompileContext compile_context;
  compile_context.schema = &schema;
  compile_context.history = history;
  auto compiled = Compile(*parsed, text, compile_context);
  EXPECT_TRUE(compiled.ok()) << compiled.status().message();
  ExecutionContext context;
  context.schema = &schema;
  context.history = history;
  context.explainer = &explainer;
  auto report = Execute(*compiled, context, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : IncidentReport{};
}

TEST(QueryExecutorTest, ExplainWhereFindsInjectedAnomalyTopOne) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("top1");
  core::Explainer explainer = TaughtExplainer();
  IncidentReport report = MustExecute(
      "EXPLAIN WHERE latency > p95 BETWEEN 950 1100 RANK BY confidence TOP 3",
      schema, store.get(), explainer);

  EXPECT_EQ(report.percentiles_resolved, 1u);
  EXPECT_GE(report.matched_rows, 60u);
  ASSERT_GE(report.findings.size(), 1u);
  // The largest finding overlaps the injected [1000, 1060) region and
  // names the taught cause first, with a positive margin over lambda.
  const RegionFinding* best = &report.findings[0];
  for (const RegionFinding& f : report.findings) {
    if (f.abnormal_rows > best->abnormal_rows) best = &f;
  }
  EXPECT_LT(best->region.start, 1060.0);
  EXPECT_GT(best->region.end, 1000.0);
  ASSERT_FALSE(best->causes.empty());
  EXPECT_EQ(best->causes[0].cause, "CPU hog");
  EXPECT_GT(best->causes[0].confidence, 20.0);
  EXPECT_GT(best->causes[0].margin, 0.0);
  EXPECT_EQ(best->causes[0].suggested_action, "throttle the batch job");
  EXPECT_FALSE(best->predicates.empty());
  // Sparkline context charts the queried attribute with a marker line.
  ASSERT_FALSE(best->context.empty());
  EXPECT_EQ(best->context[0].attribute, "latency");
  EXPECT_NE(best->context[0].marker.find('^'), std::string::npos);
}

TEST(QueryExecutorTest, DiscoveryDecodesFewerSegmentsThanFullScan) {
  // Full time range, selective value bound: zone maps must prune the
  // ~30 all-normal segments, so discovery decodes only the anomaly's
  // neighborhood — strictly fewer segments than a full scan would.
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("prune");
  core::Explainer explainer = TaughtExplainer();
  IncidentReport report =
      MustExecute("EXPLAIN WHERE latency >= 80 BETWEEN 0 2000", schema,
                  store.get(), explainer);
  EXPECT_GT(report.discovery.segments_total, 20u);
  EXPECT_GT(report.discovery.segments_skipped_zone, 0u);
  EXPECT_LT(report.discovery.segments_decoded, report.discovery.segments_total);
  ASSERT_GE(report.findings.size(), 1u);
  ASSERT_FALSE(report.findings[0].causes.empty());
  EXPECT_EQ(report.findings[0].causes[0].cause, "CPU hog");
}

TEST(QueryExecutorTest, ExplainRegionDiagnosesMarkedRange) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("region");
  core::Explainer explainer = TaughtExplainer();
  IncidentReport report = MustExecute("EXPLAIN REGION 1000 1060 TOP 1",
                                      schema, store.get(), explainer);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].region.start, 1000.0);
  EXPECT_EQ(report.findings[0].region.end, 1060.0);
  ASSERT_EQ(report.findings[0].causes.size(), 1u);  // TOP 1 applied
  EXPECT_EQ(report.findings[0].causes[0].cause, "CPU hog");
}

TEST(QueryExecutorTest, NoMatchesBecomesNoteNotError) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("nomatch");
  core::Explainer explainer = TaughtExplainer();
  IncidentReport report = MustExecute(
      "EXPLAIN WHERE latency > 100000 BETWEEN 0 2000", schema, store.get(),
      explainer);
  EXPECT_TRUE(report.findings.empty());
  ASSERT_FALSE(report.notes.empty());
  EXPECT_NE(report.notes[0].find("no rows matched"), std::string::npos);
}

TEST(QueryExecutorTest, RowBudgetOverrunBecomesNote) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("budget");
  core::Explainer explainer = TaughtExplainer();
  ExecutorOptions options;
  options.max_rows = 40;  // discovery over 2000 candidate rows must clip
  IncidentReport report =
      MustExecute("EXPLAIN WHERE latency > 0 BETWEEN 0 2000", schema,
                  store.get(), explainer, options);
  EXPECT_TRUE(report.discovery.truncated);
  bool noted = false;
  for (const std::string& note : report.notes) {
    if (note.find("row budget") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << RenderMarkdown(report);
}

TEST(QueryExecutorTest, MarginRankingAndLambdaFloor) {
  // Two causes: the margin of #1 is its lead over #2; the last cause's
  // margin is its lead over lambda (confidence_threshold = 20).
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("margin");
  core::Explainer explainer = TaughtExplainer();
  core::CausalModel other;
  other.cause = "Mild suspect";
  // Matches the anomaly only loosely: high cpu but absurd latency bar.
  other.predicates = {
      core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}},
      core::Predicate{
          "latency", core::PredicateType::kGreaterThan, 200.0, 0.0, {}}};
  explainer.repository().Add(std::move(other));
  IncidentReport report = MustExecute(
      "EXPLAIN WHERE latency > p95 BETWEEN 950 1100 RANK BY margin",
      schema, store.get(), explainer);
  ASSERT_GE(report.findings.size(), 1u);
  const std::vector<RankedCauseEntry>& causes = report.findings[0].causes;
  ASSERT_FALSE(causes.empty());
  for (size_t i = 0; i + 1 < causes.size(); ++i) {
    EXPECT_GE(causes[i].margin, causes[i + 1].margin) << "RANK BY margin";
  }
  for (const RankedCauseEntry& c : causes) {
    EXPECT_GE(c.margin, 0.0);
    EXPECT_GE(c.confidence, 20.0) << "below-lambda cause shown";
  }
}

TEST(QueryExecutorTest, DescribeReportsStoreShape) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("describe");
  core::Explainer explainer;
  ExecutionContext context;
  context.schema = &schema;
  context.history = store.get();
  context.explainer = &explainer;
  context.models = 5;
  context.diagnoses = 2;
  auto parsed = Parse("DESCRIBE");
  ASSERT_TRUE(parsed.ok());
  CompileContext compile_context;
  compile_context.schema = &schema;
  auto compiled = Compile(*parsed, "DESCRIBE", compile_context);
  ASSERT_TRUE(compiled.ok());
  auto report = Execute(*compiled, context, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const DescribeInfo& d = report->describe;
  EXPECT_TRUE(d.has_history);
  EXPECT_EQ(d.num_attributes, 2u);
  EXPECT_EQ(d.numeric_attributes, 2u);
  EXPECT_EQ(d.attributes, (std::vector<std::string>{"latency", "cpu"}));
  EXPECT_GT(d.segments, 0u);
  EXPECT_EQ(d.sealed_rows, 2000u);
  EXPECT_TRUE(d.has_extent);
  EXPECT_EQ(d.min_ts, 0.0);
  EXPECT_EQ(d.models, 5u);
  EXPECT_EQ(d.diagnoses, 2u);
}

TEST(QueryExecutorTest, MissingHistoryIsFailedPrecondition) {
  Schema schema = TwoNumeric();
  core::Explainer explainer;
  auto parsed = Parse("EXPLAIN REGION 0 1");
  ASSERT_TRUE(parsed.ok());
  CompileContext compile_context;
  compile_context.schema = &schema;
  auto compiled = Compile(*parsed, "EXPLAIN REGION 0 1", compile_context);
  ASSERT_TRUE(compiled.ok());
  ExecutionContext context;
  context.schema = &schema;
  context.explainer = &explainer;
  auto report = Execute(*compiled, context, {});
  EXPECT_EQ(report.status().code(),
            common::StatusCode::kFailedPrecondition);
}

// --- Sparkline -----------------------------------------------------------

TEST(SparklineTest, BucketsLevelsAndMarker) {
  std::vector<double> values;
  std::vector<double> ts;
  for (int i = 0; i < 80; ++i) {
    ts.push_back(i);
    values.push_back(i < 40 ? 0.0 : 100.0);
  }
  SparklineRow row = RenderSparkline("x", values, ts, {40.0, 80.0}, 8);
  EXPECT_EQ(row.attribute, "x");
  // 8 levels over a step function: low buckets then high buckets.
  EXPECT_NE(row.cells.find("▁"), std::string::npos);
  EXPECT_NE(row.cells.find("█"), std::string::npos);
  EXPECT_NE(row.marker.find('^'), std::string::npos);
  EXPECT_EQ(row.min, 0.0);
  EXPECT_EQ(row.max, 100.0);
}

TEST(SparklineTest, FlatAndEmptySeries) {
  std::vector<double> flat(10, 5.0);
  std::vector<double> ts;
  for (int i = 0; i < 10; ++i) ts.push_back(i);
  SparklineRow row = RenderSparkline("flat", flat, ts, {100.0, 200.0}, 5);
  EXPECT_FALSE(row.cells.empty());
  EXPECT_EQ(row.marker.find('^'), std::string::npos);  // region outside

  SparklineRow empty = RenderSparkline("none", {}, {}, {0.0, 1.0}, 5);
  EXPECT_TRUE(empty.cells.empty());
}

// --- Rendering smoke (exact bytes are pinned by the golden suite) --------

TEST(QueryReportTest, MarkdownAndJsonCarryTheStory) {
  Schema schema = TwoNumeric();
  auto store = AnomalyStore("render");
  core::Explainer explainer = TaughtExplainer();
  IncidentReport report = MustExecute(
      "EXPLAIN WHERE latency > p95 BETWEEN 950 1100 TOP 3", schema,
      store.get(), explainer);
  report.tenant = "t0";

  std::string md = RenderMarkdown(report);
  EXPECT_NE(md.find("CPU hog"), std::string::npos);
  EXPECT_NE(md.find("Finding"), std::string::npos);
  EXPECT_NE(md.find("latency"), std::string::npos);

  common::JsonValue json = ReportToJson(report);
  EXPECT_EQ(json.GetString("tenant").ValueOr(""), "t0");
  EXPECT_EQ(json.GetString("kind").ValueOr(""), "explain_where");
  auto findings = json.GetArray("findings");
  ASSERT_TRUE(findings.ok());
  ASSERT_FALSE((*findings)->as_array().empty());
  auto causes = (*findings)->as_array().front().GetArray("causes");
  ASSERT_TRUE(causes.ok());
  EXPECT_EQ(
      (*causes)->as_array().front().GetString("cause").ValueOr(""),
      "CPU hog");
}

}  // namespace
}  // namespace dbsherlock::query
