// DQL lexer/parser tests (DESIGN.md §16): grammar coverage, span-accurate
// caret diagnostics, the canonical-print round-trip property
// (Parse(Print(q)).Print() == Print(q)), and a seeded byte/token-mutation
// fuzz loop asserting the parser never crashes and every error span lands
// inside the input. Fuzz iteration count is tunable via
// DBSHERLOCK_QUERY_FUZZ_ITERS for the bounded CI job.

#include <cstdlib>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "query/diagnostic.h"
#include "query/lexer.h"
#include "query/parser.h"

namespace dbsherlock::query {
namespace {

Query MustParse(const std::string& text) {
  auto parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << text << "\n" << parsed.status().message();
  return parsed.ok() ? *parsed : Query{};
}

std::string FailMessage(const std::string& text) {
  Diagnostic diag;
  auto parsed = Parse(text, &diag);
  EXPECT_FALSE(parsed.ok()) << text;
  return parsed.ok() ? "" : parsed.status().message();
}

TEST(QueryLexerTest, TokenizesOperatorsNumbersAndPercentiles) {
  auto tokens = Lex("latency >= p99 AND cpu < 12.5e1");
  ASSERT_EQ(tokens.size(), 8u);  // incl. terminal kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "latency");
  EXPECT_EQ(tokens[1].kind, TokenKind::kOp);
  EXPECT_EQ(tokens[1].op, CompareOp::kGe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPercentile);
  EXPECT_DOUBLE_EQ(tokens[2].number, 99.0);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);  // AND is just an ident here
  EXPECT_EQ(tokens[6].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(tokens[6].number, 125.0);
  EXPECT_EQ(tokens[7].kind, TokenKind::kEnd);
}

TEST(QueryLexerTest, PercentileNeedsAllDigits) {
  // p99_latency_ms is an attribute name, not the 99th percentile.
  auto tokens = Lex("p99_latency_ms p99 p12.5");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kPercentile);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPercentile);
  EXPECT_DOUBLE_EQ(tokens[2].number, 12.5);
}

TEST(QueryLexerTest, SpansCoverExactBytes) {
  const std::string text = "cpu  >= 10";
  auto tokens = Lex(text);
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(text.substr(tokens[0].span.begin, tokens[0].span.length()), "cpu");
  EXPECT_EQ(text.substr(tokens[1].span.begin, tokens[1].span.length()), ">=");
  EXPECT_EQ(text.substr(tokens[2].span.begin, tokens[2].span.length()), "10");
  EXPECT_EQ(tokens[3].kind, TokenKind::kEnd);
  EXPECT_EQ(tokens[3].span.begin, text.size());
}

TEST(QueryLexerTest, GarbageBecomesErrorTokenNotCrash) {
  auto tokens = Lex("@@@ cpu # $%");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(QueryParserTest, ParsesFullExplainWhere) {
  Query q = MustParse(
      "explain where latency > p99 and cpu <= 80 between 100 200 "
      "rank by margin top 5");
  EXPECT_EQ(q.kind, QueryKind::kExplainWhere);
  ASSERT_EQ(q.conditions.size(), 2u);
  EXPECT_EQ(q.conditions[0].attribute, "latency");
  EXPECT_EQ(q.conditions[0].op, CompareOp::kGt);
  EXPECT_TRUE(q.conditions[0].threshold.is_percentile);
  EXPECT_DOUBLE_EQ(q.conditions[0].threshold.percentile, 99.0);
  EXPECT_EQ(q.conditions[1].attribute, "cpu");
  EXPECT_EQ(q.conditions[1].op, CompareOp::kLe);
  EXPECT_FALSE(q.conditions[1].threshold.is_percentile);
  EXPECT_DOUBLE_EQ(q.conditions[1].threshold.value, 80.0);
  EXPECT_DOUBLE_EQ(q.t0, 100.0);
  EXPECT_DOUBLE_EQ(q.t1, 200.0);
  EXPECT_TRUE(q.has_rank);
  EXPECT_EQ(q.rank_key, RankKey::kMargin);
  EXPECT_TRUE(q.has_top);
  EXPECT_EQ(q.top_k, 5u);
}

TEST(QueryParserTest, ParsesExplainRegion) {
  Query q = MustParse("EXPLAIN REGION 10 20 TOP 1");
  EXPECT_EQ(q.kind, QueryKind::kExplainRegion);
  EXPECT_TRUE(q.conditions.empty());
  EXPECT_DOUBLE_EQ(q.t0, 10.0);
  EXPECT_DOUBLE_EQ(q.t1, 20.0);
  EXPECT_EQ(q.top_k, 1u);
}

TEST(QueryParserTest, ParsesDescribe) {
  Query q = MustParse("DESCRIBE");
  EXPECT_EQ(q.kind, QueryKind::kDescribe);
  EXPECT_TRUE(q.tenant.empty());

  Query named = MustParse("describe tenant-07.prod");
  EXPECT_EQ(named.kind, QueryKind::kDescribe);
  EXPECT_EQ(named.tenant, "tenant-07.prod");
}

TEST(QueryParserTest, RejectsEmptyTimeRangeWithJoinedSpan) {
  Diagnostic diag;
  auto parsed = Parse("EXPLAIN WHERE cpu > 1 BETWEEN 50 50", &diag);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("empty time range"),
            std::string::npos);
  // The span covers both numbers.
  EXPECT_EQ(diag.span.begin, std::string("EXPLAIN WHERE cpu > 1 BETWEEN ")
                                 .size());
}

TEST(QueryParserTest, RejectsBadPercentile) {
  EXPECT_NE(FailMessage("EXPLAIN WHERE cpu > p101 BETWEEN 0 1").find("p101"),
            std::string::npos);
}

TEST(QueryParserTest, RejectsKeywordAsAttribute) {
  FailMessage("EXPLAIN WHERE BETWEEN > 1 BETWEEN 0 1");
}

TEST(QueryParserTest, RejectsDuplicateClauses) {
  FailMessage("EXPLAIN REGION 0 1 TOP 2 TOP 3");
  FailMessage("EXPLAIN REGION 0 1 RANK BY margin RANK BY confidence");
}

TEST(QueryParserTest, RejectsTrailingGarbage) {
  FailMessage("DESCRIBE t extra");
  FailMessage("EXPLAIN REGION 0 1 banana");
}

TEST(QueryParserTest, CaretPointsAtOffendingToken) {
  const std::string text = "EXPLAIN WHERE cpu >> 1 BETWEEN 0 1";
  Diagnostic diag;
  auto parsed = Parse(text, &diag);
  ASSERT_FALSE(parsed.ok());
  // Span must land inside the input, on or after the second '>'.
  EXPECT_LE(diag.span.begin, text.size());
  EXPECT_LE(diag.span.begin, diag.span.end);
  EXPECT_LE(diag.span.end, text.size() + 1);
  // Rendered message embeds the source line and a caret line.
  EXPECT_NE(parsed.status().message().find(text), std::string::npos);
  EXPECT_NE(parsed.status().message().find('^'), std::string::npos);
}

TEST(QueryParserTest, DiagnosticRendererHandlesMultilineInput) {
  Diagnostic diag;
  diag.message = "boom";
  diag.span = Span(8, 11);
  std::string rendered = FormatDiagnostic("line one\nbad line", diag);
  EXPECT_NE(rendered.find("bad"), std::string::npos);
  EXPECT_NE(rendered.find('^'), std::string::npos);
}

// --- Round-trip property -------------------------------------------------

// Print() is documented as a parse fixed point: parsing the canonical form
// and printing again must reproduce it byte-for-byte.
void CheckRoundTrip(const std::string& text) {
  Query q = MustParse(text);
  std::string canonical = q.Print();
  auto reparsed = Parse(canonical);
  ASSERT_TRUE(reparsed.ok())
      << "canonical form failed to parse: " << canonical << "\n"
      << reparsed.status().message();
  EXPECT_EQ(reparsed->Print(), canonical) << "not a fixed point: " << text;
}

TEST(QueryPrintTest, RoundTripFixedPointOnHandwrittenQueries) {
  const char* kQueries[] = {
      "EXPLAIN WHERE latency > p99 BETWEEN 100 160",
      "explain where a >= 0.5 and b < 1e-3 and c = 12 between -5 5.25",
      "EXPLAIN WHERE x <= p50 BETWEEN 0 1 RANK BY confidence",
      "EXPLAIN WHERE x > 2 BETWEEN 0 1 RANK BY margin TOP 10",
      "EXPLAIN REGION 12.5 99.75",
      "EXPLAIN REGION 0 1 TOP 1",
      "DESCRIBE",
      "describe my-tenant.03",
  };
  for (const char* text : kQueries) CheckRoundTrip(text);
}

Query RandomQuery(common::Pcg32& rng) {
  Query q;
  int kind = rng.NextInt(0, 2);
  if (kind == 2) {
    q.kind = QueryKind::kDescribe;
    if (rng.NextInt(0, 1) == 1) q.tenant = "t" + std::to_string(rng.NextInt(0, 99));
    return q;
  }
  q.t0 = rng.NextInt(-1000, 1000) * 0.25;
  q.t1 = q.t0 + 0.5 + rng.NextInt(0, 400) * 0.125;
  if (kind == 1) {
    q.kind = QueryKind::kExplainRegion;
  } else {
    q.kind = QueryKind::kExplainWhere;
    int conds = rng.NextInt(1, 3);
    for (int i = 0; i < conds; ++i) {
      Condition c;
      c.attribute = "attr_" + std::to_string(rng.NextInt(0, 9));
      c.op = static_cast<CompareOp>(rng.NextInt(0, 4));
      if (rng.NextInt(0, 1) == 1) {
        c.threshold.is_percentile = true;
        c.threshold.percentile = rng.NextInt(0, 100);
      } else {
        c.threshold.value = rng.NextDouble(-1e6, 1e6);
      }
      q.conditions.push_back(c);
    }
  }
  if (rng.NextInt(0, 1) == 1) {
    q.has_rank = true;
    q.rank_key = rng.NextInt(0, 1) == 1 ? RankKey::kMargin : RankKey::kConfidence;
  }
  if (rng.NextInt(0, 1) == 1) {
    q.has_top = true;
    q.top_k = static_cast<uint64_t>(rng.NextInt(1, 50));
  }
  return q;
}

TEST(QueryPrintTest, RoundTripFixedPointOnRandomQueries) {
  common::Pcg32 rng(20260808, 1);
  for (int i = 0; i < 500; ++i) {
    Query q = RandomQuery(rng);
    std::string canonical = q.Print();
    auto parsed = Parse(canonical);
    ASSERT_TRUE(parsed.ok())
        << canonical << "\n" << parsed.status().message();
    EXPECT_EQ(parsed->Print(), canonical);
  }
}

// --- Fuzz ----------------------------------------------------------------

size_t FuzzIters(size_t fallback) {
  const char* env = std::getenv("DBSHERLOCK_QUERY_FUZZ_ITERS");
  if (env == nullptr) return fallback;
  long parsed = std::atol(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

// Every outcome is acceptable except a crash or an out-of-input span.
void FuzzOne(const std::string& text) {
  Diagnostic diag;
  diag.span = Span(0, 0);
  auto parsed = Parse(text, &diag);
  if (!parsed.ok()) {
    EXPECT_LE(diag.span.begin, text.size()) << "span past input: " << text;
    EXPECT_LE(diag.span.begin, diag.span.end);
    // kEnd's span points one past the last byte; allow it.
    EXPECT_LE(diag.span.end, text.size() + 1) << "span past input: " << text;
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

TEST(QueryFuzzTest, ByteMutationsNeverCrash) {
  common::Pcg32 rng(0xDB5, 7);
  const std::string seeds[] = {
      "EXPLAIN WHERE latency > p99 AND cpu <= 80 BETWEEN 100 200 "
      "RANK BY confidence TOP 3",
      "EXPLAIN REGION 10 20",
      "DESCRIBE tenant-1",
  };
  size_t iters = FuzzIters(2000);
  for (size_t i = 0; i < iters; ++i) {
    std::string text = seeds[rng.NextBounded(3)];
    int mutations = rng.NextInt(1, 6);
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      size_t pos = rng.NextBounded(static_cast<uint32_t>(text.size()));
      switch (rng.NextInt(0, 3)) {
        case 0:  // flip to random byte (printable-biased, some raw)
          text[pos] = static_cast<char>(rng.NextInt(1, 255));
          break;
        case 1:  // delete
          text.erase(pos, 1);
          break;
        case 2:  // duplicate
          text.insert(pos, 1, text[pos]);
          break;
        default:  // truncate
          text.resize(pos);
          break;
      }
    }
    FuzzOne(text);
  }
}

TEST(QueryFuzzTest, TokenShufflesNeverCrash) {
  common::Pcg32 rng(0xF12E, 11);
  const std::vector<std::string> vocab = {
      "EXPLAIN", "WHERE",  "REGION", "DESCRIBE", "BETWEEN", "AND",
      "RANK",    "BY",     "TOP",    "confidence", "margin", "latency",
      "cpu",     ">",      ">=",     "<",        "<=",      "=",
      "p99",     "p0",     "p101",   "100",      "200",     "-1e308",
      "nan",     "inf",    "0.0",    "@@",       "привет",  "",
  };
  size_t iters = FuzzIters(2000);
  for (size_t i = 0; i < iters; ++i) {
    std::string text;
    int tokens = rng.NextInt(0, 12);
    for (int t = 0; t < tokens; ++t) {
      if (!text.empty()) text += ' ';
      text += vocab[rng.NextBounded(static_cast<uint32_t>(vocab.size()))];
    }
    FuzzOne(text);
  }
}

TEST(QueryFuzzTest, PathologicalInputs) {
  FuzzOne("");
  FuzzOne(" ");
  FuzzOne("\t\t\t");
  FuzzOne(std::string(1, '\0'));
  FuzzOne(std::string(100000, 'A'));
  FuzzOne(std::string(5000, '>'));
  FuzzOne("EXPLAIN " + std::string(10000, '('));
  std::string many_ands = "EXPLAIN WHERE a > 1";
  for (int i = 0; i < 2000; ++i) many_ands += " AND a > 1";
  many_ands += " BETWEEN 0 1";
  FuzzOne(many_ands);
  EXPECT_TRUE(Parse(many_ands).ok());
}

}  // namespace
}  // namespace dbsherlock::query
