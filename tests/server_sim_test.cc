#include "simulator/server_sim.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::simulator {
namespace {

/// Averages one numeric metric over [from, to) of a generated dataset.
double AvgMetric(const GeneratedDataset& run, const std::string& name,
                 double from, double to) {
  auto col = run.data.ColumnByName(name);
  EXPECT_TRUE(col.ok());
  std::vector<double> vals;
  for (size_t row : run.data.RowsInTimeRange(from, to)) {
    vals.push_back((*col)->numeric(row));
  }
  return common::Mean(vals);
}

struct Window {
  double normal_from, normal_to, ab_from, ab_to;
};

Window WindowsOf(const GeneratedDataset& run) {
  const tsdata::TimeRange& r = run.regions.abnormal.ranges()[0];
  return {0.0, r.start, r.start + 10.0, r.end};  // skip the onset ramp
}

GeneratedDataset Generate(AnomalyKind kind, uint64_t seed = 77) {
  DatasetGenOptions options;
  options.seed = seed;
  return GenerateAnomalyDataset(options, kind, 60.0);
}

TEST(ServerSimTest, DeterministicForSameSeed) {
  DatasetGenOptions options;
  options.seed = 5;
  GeneratedDataset a =
      GenerateAnomalyDataset(options, AnomalyKind::kWorkloadSpike, 40.0);
  GeneratedDataset b =
      GenerateAnomalyDataset(options, AnomalyKind::kWorkloadSpike, 40.0);
  ASSERT_EQ(a.data.num_rows(), b.data.num_rows());
  for (size_t row = 0; row < a.data.num_rows(); row += 17) {
    EXPECT_DOUBLE_EQ(a.data.column(0).numeric(row),
                     b.data.column(0).numeric(row));
  }
}

TEST(ServerSimTest, NormalOperationIsModerate) {
  GeneratedDataset run = Generate(AnomalyKind::kCpuSaturation);
  Window w = WindowsOf(run);
  double cpu = AvgMetric(run, "os_cpu_usage", w.normal_from, w.normal_to);
  double latency =
      AvgMetric(run, "avg_latency_ms", w.normal_from, w.normal_to);
  EXPECT_GT(cpu, 5.0);
  EXPECT_LT(cpu, 85.0);
  EXPECT_GT(latency, 0.5);
  EXPECT_LT(latency, 100.0);
}

TEST(ServerSimTest, EveryAnomalyRaisesLatency) {
  for (AnomalyKind kind : AllAnomalyKinds()) {
    GeneratedDataset run = Generate(kind, 200 + static_cast<uint64_t>(kind));
    Window w = WindowsOf(run);
    double normal =
        AvgMetric(run, "avg_latency_ms", w.normal_from, w.normal_to);
    double abnormal = AvgMetric(run, "avg_latency_ms", w.ab_from, w.ab_to);
    EXPECT_GT(abnormal, 1.3 * normal) << AnomalyKindName(kind);
  }
}

// --- Per-class signature checks: the attribute DBSeer/DBSherlock would key
// on must move in the documented direction.

TEST(SignatureTest, PoorlyWrittenQueryScansRows) {
  GeneratedDataset run = Generate(AnomalyKind::kPoorlyWrittenQuery);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "logical_reads", w.ab_from, w.ab_to),
            3.0 * AvgMetric(run, "logical_reads", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "dbms_cpu_usage", w.ab_from, w.ab_to),
            1.5 * AvgMetric(run, "dbms_cpu_usage", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "full_table_scans", w.ab_from, w.ab_to), 2.0);
}

TEST(SignatureTest, PoorPhysicalDesignWritesIndexPages) {
  GeneratedDataset run = Generate(AnomalyKind::kPoorPhysicalDesign);
  Window w = WindowsOf(run);
  EXPECT_GT(
      AvgMetric(run, "index_pages_written", w.ab_from, w.ab_to),
      3.0 * AvgMetric(run, "index_pages_written", w.normal_from, w.normal_to));
}

TEST(SignatureTest, WorkloadSpikeRaisesThroughputAndThreads) {
  GeneratedDataset run = Generate(AnomalyKind::kWorkloadSpike);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "throughput_tps", w.ab_from, w.ab_to),
            1.8 * AvgMetric(run, "throughput_tps", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "running_threads", w.ab_from, w.ab_to),
            2.0 * AvgMetric(run, "running_threads", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "lock_waits", w.ab_from, w.ab_to),
            AvgMetric(run, "lock_waits", w.normal_from, w.normal_to));
}

TEST(SignatureTest, IoSaturationFillsDiskQueue) {
  GeneratedDataset run = Generate(AnomalyKind::kIoSaturation);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "disk_write_iops", w.ab_from, w.ab_to),
            3.0 * AvgMetric(run, "disk_write_iops", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "disk_util", w.ab_from, w.ab_to),
            2.0 * AvgMetric(run, "disk_util", w.normal_from, w.normal_to));
}

TEST(SignatureTest, DatabaseBackupStreamsOverNetwork) {
  GeneratedDataset run = Generate(AnomalyKind::kDatabaseBackup);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "disk_read_kb", w.ab_from, w.ab_to),
            3.0 * AvgMetric(run, "disk_read_kb", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "net_send_kb", w.ab_from, w.ab_to),
            3.0 * AvgMetric(run, "net_send_kb", w.normal_from, w.normal_to));
  // The scan pollutes the buffer pool.
  EXPECT_LT(AvgMetric(run, "buffer_pool_hit_rate", w.ab_from, w.ab_to),
            AvgMetric(run, "buffer_pool_hit_rate", w.normal_from,
                      w.normal_to));
}

TEST(SignatureTest, TableRestoreIngestsRows) {
  GeneratedDataset run = Generate(AnomalyKind::kTableRestore);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "net_recv_kb", w.ab_from, w.ab_to),
            3.0 * AvgMetric(run, "net_recv_kb", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "rows_written", w.ab_from, w.ab_to),
            2.0 * AvgMetric(run, "rows_written", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "log_kb_written", w.ab_from, w.ab_to),
            2.0 * AvgMetric(run, "log_kb_written", w.normal_from, w.normal_to));
}

TEST(SignatureTest, CpuSaturationPinsCpuButNotDbms) {
  GeneratedDataset run = Generate(AnomalyKind::kCpuSaturation);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "os_cpu_usage", w.ab_from, w.ab_to), 85.0);
  EXPECT_LT(AvgMetric(run, "os_cpu_idle", w.ab_from, w.ab_to),
            0.5 * AvgMetric(run, "os_cpu_idle", w.normal_from, w.normal_to));
  // The DBMS itself gets squeezed, not busier.
  EXPECT_LT(AvgMetric(run, "dbms_cpu_usage", w.ab_from, w.ab_to),
            1.5 * AvgMetric(run, "dbms_cpu_usage", w.normal_from, w.normal_to));
}

TEST(SignatureTest, FlushLogTableFlushesPages) {
  GeneratedDataset run = Generate(AnomalyKind::kFlushLogTable);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "pages_flushed", w.ab_from, w.ab_to),
            1.5 * AvgMetric(run, "pages_flushed", w.normal_from, w.normal_to));
  EXPECT_LT(AvgMetric(run, "buffer_pool_hit_rate", w.ab_from, w.ab_to),
            AvgMetric(run, "buffer_pool_hit_rate", w.normal_from,
                      w.normal_to));
}

TEST(SignatureTest, NetworkCongestionLowersTrafficAndCpu) {
  GeneratedDataset run = Generate(AnomalyKind::kNetworkCongestion);
  Window w = WindowsOf(run);
  // The paper's introduction: "a lower than usual number of network
  // packets sent or received", with clients waiting and little CPU.
  EXPECT_LT(AvgMetric(run, "net_send_kb", w.ab_from, w.ab_to),
            0.5 * AvgMetric(run, "net_send_kb", w.normal_from, w.normal_to));
  EXPECT_LT(AvgMetric(run, "os_cpu_usage", w.ab_from, w.ab_to),
            0.8 * AvgMetric(run, "os_cpu_usage", w.normal_from, w.normal_to));
  EXPECT_GT(AvgMetric(run, "client_wait_time_ms", w.ab_from, w.ab_to),
            2.0 * AvgMetric(run, "client_wait_time_ms", w.normal_from,
                            w.normal_to));
}

TEST(SignatureTest, LockContentionInflatesLockWaits) {
  GeneratedDataset run = Generate(AnomalyKind::kLockContention);
  Window w = WindowsOf(run);
  EXPECT_GT(AvgMetric(run, "lock_wait_time_ms", w.ab_from, w.ab_to),
            5.0 * AvgMetric(run, "lock_wait_time_ms", w.normal_from,
                            w.normal_to));
  EXPECT_LT(AvgMetric(run, "throughput_tps", w.ab_from, w.ab_to),
            0.8 * AvgMetric(run, "throughput_tps", w.normal_from, w.normal_to));
}

// Parameterized: every anomaly class produces a dataset whose DBSherlock-
// ground-truth region is non-trivially distinguishable (at least a few
// attributes shift by more than the threshold).
class AnomalyClassSweep : public ::testing::TestWithParam<AnomalyKind> {};

TEST_P(AnomalyClassSweep, ProducesDistinguishableTelemetry) {
  GeneratedDataset run = Generate(GetParam(), 900);
  Window w = WindowsOf(run);
  size_t moved = 0;
  for (const auto& name : NumericMetricNames()) {
    double normal = AvgMetric(run, name, w.normal_from, w.normal_to);
    double abnormal = AvgMetric(run, name, w.ab_from, w.ab_to);
    double denom = std::max(std::abs(normal), 1e-9);
    if (std::abs(abnormal - normal) / denom > 0.5) ++moved;
  }
  EXPECT_GE(moved, 3u) << AnomalyKindName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllClasses, AnomalyClassSweep,
                         ::testing::ValuesIn(AllAnomalyKinds()));

TEST(ComputeEffectsTest, InactiveEventHasNoEffect) {
  AnomalyEvent ev;
  ev.kind = AnomalyKind::kCpuSaturation;
  ev.start_sec = 100.0;
  ev.duration_sec = 10.0;
  TickEffects fx = ComputeEffects({ev}, 50.0);
  EXPECT_DOUBLE_EQ(fx.extra_external_cpu_ms, 0.0);
  EXPECT_DOUBLE_EQ(fx.tps_multiplier, 1.0);
}

TEST(ComputeEffectsTest, EffectsRampUp) {
  AnomalyEvent ev;
  ev.kind = AnomalyKind::kCpuSaturation;
  ev.start_sec = 0.0;
  ev.duration_sec = 60.0;
  ev.ramp_sec = 8.0;
  TickEffects early = ComputeEffects({ev}, 0.0);
  TickEffects late = ComputeEffects({ev}, 30.0);
  EXPECT_GT(early.extra_external_cpu_ms, 0.0);
  EXPECT_GT(late.extra_external_cpu_ms, 2.0 * early.extra_external_cpu_ms);
}

TEST(ComputeEffectsTest, CompoundEffectsCombine) {
  AnomalyEvent spike;
  spike.kind = AnomalyKind::kWorkloadSpike;
  spike.start_sec = 0.0;
  spike.duration_sec = 60.0;
  AnomalyEvent net;
  net.kind = AnomalyKind::kNetworkCongestion;
  net.start_sec = 0.0;
  net.duration_sec = 60.0;
  TickEffects fx = ComputeEffects({spike, net}, 30.0);
  EXPECT_GT(fx.tps_multiplier, 2.0);
  EXPECT_GT(fx.extra_rtt_ms, 100.0);
  EXPECT_EQ(fx.extra_terminals, 128);
}

TEST(EffectiveMagnitudeTest, FloorAndPlateau) {
  AnomalyEvent ev;
  ev.start_sec = 0.0;
  ev.duration_sec = 100.0;
  ev.magnitude = 2.0;
  ev.ramp_sec = 8.0;
  EXPECT_GE(ev.EffectiveMagnitude(0.0), 0.5);   // floor: 0.25 * magnitude
  EXPECT_DOUBLE_EQ(ev.EffectiveMagnitude(50.0), 2.0);  // plateau
  EXPECT_LT(ev.EffectiveMagnitude(99.5), 2.0);  // tail ramp-down
  EXPECT_DOUBLE_EQ(ev.EffectiveMagnitude(150.0), 0.0);  // inactive
}

}  // namespace
}  // namespace dbsherlock::simulator
