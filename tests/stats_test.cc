#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace dbsherlock::common {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), std::sqrt(2.0));
}

TEST(StatsTest, EmptyInputsAreZero) {
  std::vector<double> xs;
  EXPECT_DOUBLE_EQ(Mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
  EXPECT_DOUBLE_EQ(Median(xs), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Min(xs), 0.0);
  EXPECT_DOUBLE_EQ(Max(xs), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  std::vector<double> odd{5, 1, 3};
  EXPECT_DOUBLE_EQ(Median(odd), 3.0);
  std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(Median(even), 2.5);
  std::vector<double> single{7};
  EXPECT_DOUBLE_EQ(Median(single), 7.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.125), 5.0);
}

TEST(StatsTest, QuantileClampsQ) {
  std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(Quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 2.0), 3.0);
}

TEST(StatsTest, MinMax) {
  std::vector<double> xs{3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(NormalizeTest, ScalarAndVector) {
  EXPECT_DOUBLE_EQ(MinMaxNormalize(5.0, 0.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(MinMaxNormalize(0.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(MinMaxNormalize(10.0, 0.0, 10.0), 1.0);
  // Degenerate range maps to 0 (a constant attribute cannot separate).
  EXPECT_DOUBLE_EQ(MinMaxNormalize(5.0, 5.0, 5.0), 0.0);

  std::vector<double> xs{2, 4, 6};
  std::vector<double> n = MinMaxNormalize(xs);
  EXPECT_DOUBLE_EQ(n[0], 0.0);
  EXPECT_DOUBLE_EQ(n[1], 0.5);
  EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(SlidingMedianTest, Basic) {
  std::vector<double> xs{1, 2, 3, 10, 3, 2, 1};
  std::vector<double> med = SlidingMedian(xs, 3);
  ASSERT_EQ(med.size(), 5u);
  EXPECT_DOUBLE_EQ(med[0], 2.0);
  EXPECT_DOUBLE_EQ(med[1], 3.0);
  EXPECT_DOUBLE_EQ(med[2], 3.0);
  EXPECT_DOUBLE_EQ(med[3], 3.0);
  EXPECT_DOUBLE_EQ(med[4], 2.0);
}

TEST(SlidingMedianTest, WindowLargerThanInput) {
  std::vector<double> xs{1, 2};
  EXPECT_TRUE(SlidingMedian(xs, 3).empty());
  EXPECT_TRUE(SlidingMedian(xs, 0).empty());
}

TEST(HistogramTest, BinningAndCounts) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.5);   // bin 0
  h.Add(9.5);   // bin 4
  h.Add(10.0);  // clamps to bin 4
  h.Add(-3.0);  // clamps to bin 0
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, EntropyUniformVsPoint) {
  Histogram uniform(0.0, 4.0, 4);
  for (double v : {0.5, 1.5, 2.5, 3.5}) uniform.Add(v);
  EXPECT_NEAR(uniform.Entropy(), std::log(4.0), 1e-12);

  Histogram point(0.0, 4.0, 4);
  for (int i = 0; i < 4; ++i) point.Add(0.5);
  EXPECT_DOUBLE_EQ(point.Entropy(), 0.0);
}

TEST(JointHistogramTest, IndependentVariablesHaveLowKappa) {
  Pcg32 rng(99);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.NextDouble());
    ys.push_back(rng.NextDouble());
  }
  double kappa = IndependenceFactor(xs, ys, 20);
  EXPECT_LT(kappa, 0.05);
}

TEST(JointHistogramTest, IdenticalVariablesHaveKappaNearOne) {
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(static_cast<double>(i % 97));
  double kappa = IndependenceFactor(xs, xs, 20);
  EXPECT_GT(kappa, 0.9);
}

TEST(JointHistogramTest, LinearDependenceHasHighKappa) {
  Pcg32 rng(7);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.NextDouble();
    xs.push_back(x);
    ys.push_back(3.0 * x + 1.0);
  }
  EXPECT_GT(IndependenceFactor(xs, ys, 20), 0.8);
}

TEST(JointHistogramTest, MismatchedSizesGiveZero) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> ys{1, 2};
  EXPECT_DOUBLE_EQ(IndependenceFactor(xs, ys, 10), 0.0);
}

TEST(JointHistogramTest, ConstantAttributeGivesZeroKappa) {
  std::vector<double> xs(100, 5.0);
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) ys.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(IndependenceFactor(xs, ys, 10), 0.0);
}

TEST(JointHistogramTest, MutualInformationNonNegative) {
  JointHistogram jh(0, 1, 4, 0, 1, 4);
  jh.Add(0.1, 0.9);
  jh.Add(0.9, 0.1);
  EXPECT_GE(jh.MutualInformation(), 0.0);
}

TEST(BinaryClassificationTest, PerfectClassifier) {
  BinaryClassificationCounts c;
  for (int i = 0; i < 10; ++i) c.Add(true, true);
  for (int i = 0; i < 20; ++i) c.Add(false, false);
  EXPECT_DOUBLE_EQ(c.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(c.F1(), 1.0);
}

TEST(BinaryClassificationTest, MixedCounts) {
  BinaryClassificationCounts c;
  c.true_positives = 6;
  c.false_positives = 2;
  c.false_negatives = 4;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.6);
  EXPECT_NEAR(c.F1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
}

TEST(BinaryClassificationTest, DegenerateDenominators) {
  BinaryClassificationCounts c;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.F1(), 0.0);
}

}  // namespace
}  // namespace dbsherlock::common
