#include "core/domain_knowledge.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

TEST(DomainKnowledgeTest, AddRuleBasics) {
  DomainKnowledge dk;
  EXPECT_TRUE(dk.AddRule({"a", "b"}).ok());
  EXPECT_EQ(dk.rules().size(), 1u);
  EXPECT_FALSE(dk.empty());
}

TEST(DomainKnowledgeTest, RejectsSelfRule) {
  DomainKnowledge dk;
  EXPECT_FALSE(dk.AddRule({"a", "a"}).ok());
}

TEST(DomainKnowledgeTest, RejectsDuplicate) {
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"a", "b"}).ok());
  EXPECT_FALSE(dk.AddRule({"a", "b"}).ok());
}

TEST(DomainKnowledgeTest, RejectsReversedRule) {
  // Condition (ii) of Section 5: i->j and j->i cannot coexist.
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"a", "b"}).ok());
  EXPECT_FALSE(dk.AddRule({"b", "a"}).ok());
  EXPECT_EQ(dk.rules().size(), 1u);
}

TEST(DomainKnowledgeTest, MySqlDefaultsHasFourRules) {
  DomainKnowledge dk = DomainKnowledge::MySqlLinuxDefaults();
  ASSERT_EQ(dk.rules().size(), 4u);
  EXPECT_EQ(dk.rules()[0].cause_attribute, "dbms_cpu_usage");
  EXPECT_EQ(dk.rules()[0].effect_attribute, "os_cpu_usage");
}

// --- Kappa over datasets -----------------------------------------------------

tsdata::Dataset DependentPair() {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric},
       {"y", tsdata::AttributeKind::kNumeric},
       {"z", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(11);
  for (int t = 0; t < 2000; ++t) {
    double x = rng.NextDouble(0.0, 100.0);
    double y = 2.0 * x + rng.NextGaussian();  // strongly dependent on x
    double z = rng.NextDouble(0.0, 100.0);    // independent
    EXPECT_TRUE(d.AppendRow(t, {x, y, z}).ok());
  }
  return d;
}

TEST(KappaTest, DependentAttributesExceedThreshold) {
  tsdata::Dataset d = DependentPair();
  IndependenceTestOptions options;
  double kappa = DomainKnowledge::ComputeKappa(d, "x", "y", options);
  EXPECT_GE(kappa, options.kappa_threshold);
}

TEST(KappaTest, IndependentAttributesBelowThreshold) {
  tsdata::Dataset d = DependentPair();
  IndependenceTestOptions options;
  double kappa = DomainKnowledge::ComputeKappa(d, "x", "z", options);
  EXPECT_LT(kappa, options.kappa_threshold);
}

TEST(KappaTest, MissingAttributeGivesZero) {
  tsdata::Dataset d = DependentPair();
  EXPECT_DOUBLE_EQ(DomainKnowledge::ComputeKappa(d, "x", "nope", {}), 0.0);
}

TEST(KappaTest, CategoricalAttributesSupported) {
  tsdata::Dataset d(tsdata::Schema(
      {{"c1", tsdata::AttributeKind::kCategorical},
       {"c2", tsdata::AttributeKind::kCategorical}}));
  common::Pcg32 rng(13);
  for (int t = 0; t < 1000; ++t) {
    std::string v = rng.NextBernoulli(0.5) ? "a" : "b";
    // c2 copies c1 -> fully dependent.
    EXPECT_TRUE(d.AppendRow(t, {v, v}).ok());
  }
  EXPECT_GT(DomainKnowledge::ComputeKappa(d, "c1", "c2", {}), 0.5);
}

// --- Pruning ------------------------------------------------------------------

AttributeDiagnosis DiagnosisFor(const std::string& attr) {
  AttributeDiagnosis d;
  d.predicate.attribute = attr;
  d.predicate.type = PredicateType::kGreaterThan;
  d.predicate.low = 1.0;
  return d;
}

TEST(PruneTest, PrunesDependentEffect) {
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"x", "y"}).ok());
  std::vector<AttributeDiagnosis> diagnoses = {DiagnosisFor("x"),
                                               DiagnosisFor("y")};
  auto out = dk.PruneSecondarySymptoms(d, diagnoses, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].predicate.attribute, "x");
}

TEST(PruneTest, KeepsIndependentEffect) {
  // Rule x -> z exists but the data shows independence: the rule does not
  // apply (the safeguard against wrong domain knowledge).
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"x", "z"}).ok());
  std::vector<AttributeDiagnosis> diagnoses = {DiagnosisFor("x"),
                                               DiagnosisFor("z")};
  auto out = dk.PruneSecondarySymptoms(d, diagnoses, {});
  EXPECT_EQ(out.size(), 2u);
}

TEST(PruneTest, NoDecisionWithoutBothPredicates) {
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"x", "y"}).ok());
  // Only the effect has a predicate -> nothing pruned.
  std::vector<AttributeDiagnosis> diagnoses = {DiagnosisFor("y")};
  auto out = dk.PruneSecondarySymptoms(d, diagnoses, {});
  EXPECT_EQ(out.size(), 1u);
}

TEST(PruneTest, EmptyRulesPassThrough) {
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  std::vector<AttributeDiagnosis> diagnoses = {DiagnosisFor("x")};
  EXPECT_EQ(dk.PruneSecondarySymptoms(d, diagnoses, {}).size(), 1u);
}

TEST(PruneTest, PreservesInputOrder) {
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"x", "y"}).ok());
  std::vector<AttributeDiagnosis> diagnoses = {
      DiagnosisFor("z"), DiagnosisFor("y"), DiagnosisFor("x")};
  auto out = dk.PruneSecondarySymptoms(d, diagnoses, {});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].predicate.attribute, "z");
  EXPECT_EQ(out[1].predicate.attribute, "x");
}

// Threshold sweep: a higher kappa_t makes pruning stricter (monotonically
// fewer pruned attributes).
class KappaThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(KappaThresholdSweep, HigherThresholdPrunesNoMore) {
  tsdata::Dataset d = DependentPair();
  DomainKnowledge dk;
  ASSERT_TRUE(dk.AddRule({"x", "y"}).ok());
  ASSERT_TRUE(dk.AddRule({"x", "z"}).ok());
  std::vector<AttributeDiagnosis> diagnoses = {
      DiagnosisFor("x"), DiagnosisFor("y"), DiagnosisFor("z")};
  IndependenceTestOptions base;
  base.kappa_threshold = GetParam();
  IndependenceTestOptions higher = base;
  higher.kappa_threshold = GetParam() + 0.2;
  size_t pruned_base =
      diagnoses.size() - dk.PruneSecondarySymptoms(d, diagnoses, base).size();
  size_t pruned_higher =
      diagnoses.size() -
      dk.PruneSecondarySymptoms(d, diagnoses, higher).size();
  EXPECT_LE(pruned_higher, pruned_base);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, KappaThresholdSweep,
                         ::testing::Values(0.0, 0.05, 0.15, 0.3, 0.6));

}  // namespace
}  // namespace dbsherlock::core
