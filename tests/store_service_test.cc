// Service <-> TenantStore integration: the ingest tee into per-tenant
// history, QUERY/DIAGNOSE_RANGE over rows that already left the sliding
// window, STATS reporting, HELLO RETAIN, and restart rehydration.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "service/service.h"

namespace dbsherlock::service {
namespace {

using common::StatusCode;

tsdata::Schema TwoNumeric() {
  return tsdata::Schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
}

std::unique_ptr<DurableModelStore> VolatileStore() {
  auto store = DurableModelStore::Open({});
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

std::string HistoryRoot(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_hist_" +
                    std::to_string(getpid()) + "_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

Service::Options StoreOptions(DurableModelStore* store,
                              const std::string& root) {
  Service::Options options;
  options.store = store;
  options.tenants.store.dir = root;
  options.tenants.store.seal_rows = 32;
  options.tenants.store.fsync_on_seal = false;
  return options;
}

void AppendBlocking(Service* service, const std::string& tenant, double ts,
                    std::vector<tsdata::Cell> cells) {
  for (;;) {
    auto outcome = service->Append(tenant, ts, cells);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->accepted) return;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(outcome->retry_after_ms));
  }
}

TEST(StoreServiceTest, IngestTeesIntoHistoryAndQueryReadsItBack) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("tee"));
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 100; ++t) {
    AppendBlocking(&service, "t0", t, {10.0 + t, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());

  auto rows = service.QueryJson("t0", 20.0, 30.0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->GetNumber("rows").ValueOr(-1.0), 10.0);
  std::string csv = rows->GetString("csv").ValueOr("");
  EXPECT_NE(csv.find("latency"), std::string::npos);
  EXPECT_NE(csv.find("\n20,30,40"), std::string::npos);
  EXPECT_EQ(rows->Find("truncated"), nullptr);
  service.Stop();
}

TEST(StoreServiceTest, QueryWithoutStoreDirFailsCleanly) {
  auto model_store = VolatileStore();
  Service::Options options;
  options.store = model_store.get();  // no store.dir
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  EXPECT_EQ(service.QueryJson("t0", 0.0, 1.0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.DiagnoseRangeJson("t0", 0.0, 1.0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.QueryJson("ghost", 0.0, 1.0).status().code(),
            StatusCode::kNotFound);
  service.Stop();
}

TEST(StoreServiceTest, QueryTruncatesOversizedRanges) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("trunc"));
  options.max_query_rows = 25;
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 100; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  auto rows = service.QueryJson("t0", 0.0, 1000.0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->GetNumber("rows").ValueOr(-1.0), 25.0);
  ASSERT_NE(rows->Find("truncated"), nullptr);
  service.Stop();
}

TEST(StoreServiceTest, StatsReportHistoryBlock) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("stats"));
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 80; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  common::JsonValue stats = service.StatsJson();
  const common::JsonValue* tenant = stats.Find("tenants")->Find("t0");
  ASSERT_NE(tenant, nullptr);
  const common::JsonValue* history = tenant->Find("history");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->GetNumber("segments").ValueOr(-1.0), 2.0);  // 80/32
  EXPECT_EQ(history->GetNumber("sealed_rows").ValueOr(-1.0), 64.0);
  EXPECT_EQ(history->GetNumber("active_rows").ValueOr(-1.0), 16.0);
  EXPECT_GT(history->GetNumber("compression_ratio").ValueOr(0.0), 0.0);
  EXPECT_LT(history->GetNumber("compression_ratio").ValueOr(2.0), 1.0);
  service.Stop();
}

TEST(StoreServiceTest, DiagnoseRangeFindsCauseAfterRowsLeftTheWindow) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("range"));
  // Small window: the anomaly at t in [300, 340) will be long gone by
  // t = 1000 — only the history store still has it.
  options.tenants.monitor.window_rows = 100;
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());

  core::CausalModel model;
  model.cause = "CPU hog";
  model.suggested_action = "throttle the batch job";
  model.predicates = {
      core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}},
      core::Predicate{
          "latency", core::PredicateType::kGreaterThan, 50.0, 0.0, {}}};
  ASSERT_TRUE(service.Teach(model).ok());

  common::Pcg32 rng(42);
  for (int t = 0; t < 1000; ++t) {
    bool ab = t >= 300 && t < 340;
    double latency = (ab ? 90.0 : 10.0) + rng.NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng.NextGaussian(0.0, 2.0);
    AppendBlocking(&service, "t0", t, {latency, cpu});
  }
  ASSERT_TRUE(service.Flush("t0").ok());

  // The live window is [900, 1000): prove the anomaly left it.
  auto diagnosis = service.DiagnoseRangeJson("t0", 300.0, 340.0);
  ASSERT_TRUE(diagnosis.ok()) << diagnosis.status().ToString();
  auto causes = diagnosis->GetArray("causes");
  ASSERT_TRUE(causes.ok());
  ASSERT_FALSE((*causes)->as_array().empty());
  EXPECT_EQ((*causes)->as_array().front().GetString("cause").ValueOr(""),
            "CPU hog");
  EXPECT_EQ((*causes)->as_array().front().GetString("action").ValueOr(""),
            "throttle the batch job");
  service.Stop();
}

TEST(StoreServiceTest, DiagnoseRangeRejectsEmptyRegions) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("rangeedge"));
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 50; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  // No stored rows inside the region.
  EXPECT_EQ(service.DiagnoseRangeJson("t0", 5000.0, 5100.0).status().code(),
            StatusCode::kNotFound);
  service.Stop();
}

TEST(StoreServiceTest, RestartRehydratesWindowAndHistorySurvives) {
  auto model_store = VolatileStore();
  std::string root = HistoryRoot("restart");
  {
    Service service(StoreOptions(model_store.get(), root));
    ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
    for (int t = 0; t < 100; ++t) {
      AppendBlocking(&service, "t0", t, {10.0 + t, 40.0});
    }
    service.Stop();  // clean shutdown seals the active tail
  }
  Service service(StoreOptions(model_store.get(), root));
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  // The monitor window was pre-filled from history (safe to peek: no
  // drain is in flight before the first append).
  auto tenant = service.tenants().Find("t0");
  ASSERT_TRUE(tenant.ok());
  EXPECT_EQ((*tenant)->monitor->window_size(), 100u);
  // All 100 pre-restart rows are queryable.
  auto rows = service.QueryJson("t0", 0.0, 1000.0);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->GetNumber("rows").ValueOr(-1.0), 100.0);
  // Ingest continues seamlessly after the recovered history...
  AppendBlocking(&service, "t0", 100.0, {110.0, 40.0});
  ASSERT_TRUE(service.Flush("t0").ok());
  auto more = service.QueryJson("t0", 0.0, 1000.0);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(more->GetNumber("rows").ValueOr(-1.0), 101.0);
  // ...and a stale (pre-restart) timestamp is dropped by the monitor
  // without landing in history.
  AppendBlocking(&service, "t0", 50.0, {1.0, 1.0});
  ASSERT_TRUE(service.Flush("t0").ok());
  auto after = service.QueryJson("t0", 0.0, 1000.0);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->GetNumber("rows").ValueOr(-1.0), 101.0);
  service.Stop();
}

TEST(StoreServiceTest, HelloRetainConfiguresRetention) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("retain"));
  options.tenants.store.seal_rows = 10;
  Service service(options);
  TenantManager::Retention retain;
  retain.bytes = 0;
  retain.age_sec = 25.0;
  ASSERT_TRUE(service.Hello("t0", TwoNumeric(), retain).ok());
  for (int t = 0; t < 100; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  common::JsonValue stats = service.StatsJson();
  const common::JsonValue* history =
      stats.Find("tenants")->Find("t0")->Find("history");
  ASSERT_NE(history, nullptr);
  EXPECT_GT(history->GetNumber("retention_deletes").ValueOr(0.0), 0.0);
  // Old rows are gone; recent ones remain.
  auto old_rows = service.QueryJson("t0", 0.0, 10.0);
  ASSERT_TRUE(old_rows.ok());
  EXPECT_EQ(old_rows->GetNumber("rows").ValueOr(-1.0), 0.0);
  auto recent = service.QueryJson("t0", 90.0, 100.0);
  ASSERT_TRUE(recent.ok());
  EXPECT_EQ(recent->GetNumber("rows").ValueOr(-1.0), 10.0);
  service.Stop();
}

/// Regression: DIAGNOSE_RANGE had no row cap — one hostile range inflated
/// the whole history into memory. An oversized window is now refused with
/// ResourceExhausted before decoding it all.
TEST(StoreServiceTest, DiagnoseRangeRefusesOversizedWindows) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("rangecap"));
  options.max_range_rows = 30;
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 200; ++t) {
    AppendBlocking(&service, "t0", t, {10.0 + (t % 7), 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());

  // [50, 150) plus 8x context on each side covers all 200 stored rows.
  auto refused = service.DiagnoseRangeJson("t0", 50.0, 150.0);
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(refused.status().message().find("max-range-rows"),
            std::string::npos);

  // A region narrow enough that region + context fits the cap still
  // diagnoses (26 rows <= 30).
  auto narrow = service.DiagnoseRangeJson("t0", 100.0, 101.5);
  ASSERT_TRUE(narrow.ok()) << narrow.status().ToString();
  ASSERT_NE(narrow->Find("scan"), nullptr);
  service.Stop();
}

/// QUERY WHERE bounds ride through Service::QueryJson into the store scan:
/// rows come back filtered, and the response's "scan" block reports what
/// the zone maps pruned.
TEST(StoreServiceTest, QueryWhereBoundsFilterRowsEndToEnd) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("where"));
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 100; ++t) {
    AppendBlocking(&service, "t0", t, {10.0 + t, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());

  std::vector<store::AttributeBound> bounds(1);
  bounds[0].attribute = "latency";
  bounds[0].lo = 60.0;
  bounds[0].hi = 69.0;  // latency = 10 + t, so t in [50, 59]
  auto rows = service.QueryJson("t0", 0.0, 1000.0, bounds);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->GetNumber("rows").ValueOr(-1.0), 10.0);
  std::string csv = rows->GetString("csv").ValueOr("");
  EXPECT_NE(csv.find("\n50,60,40"), std::string::npos);
  EXPECT_EQ(csv.find("\n49,59,40"), std::string::npos);
  const common::JsonValue* scan = rows->Find("scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_GT(scan->GetNumber("segments").ValueOr(0.0), 0.0);
  // latency is monotone in t: the 32-row segments outside [60, 69] are
  // zone-pruned without being decoded.
  EXPECT_GT(scan->GetNumber("segments_skipped_zone").ValueOr(0.0), 0.0);
  EXPECT_GE(scan->GetNumber("segments_decoded").ValueOr(-1.0), 1.0);

  // Bounds over an unknown attribute are rejected, not ignored.
  bounds[0].attribute = "no_such_attr";
  EXPECT_EQ(service.QueryJson("t0", 0.0, 1000.0, bounds).status().code(),
            StatusCode::kInvalidArgument);
  service.Stop();
}

TEST(StoreServiceTest, StatsReportScanPushdownCounters) {
  auto model_store = VolatileStore();
  Service::Options options =
      StoreOptions(model_store.get(), HistoryRoot("scanstats"));
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 100; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  // A narrow time window over 3 sealed segments: at most one decodes.
  ASSERT_TRUE(service.QueryJson("t0", 10.0, 20.0).ok());
  common::JsonValue stats = service.StatsJson();
  const common::JsonValue* history =
      stats.Find("tenants")->Find("t0")->Find("history");
  ASSERT_NE(history, nullptr);
  EXPECT_GE(history->GetNumber("scans").ValueOr(0.0), 1.0);
  EXPECT_GE(history->GetNumber("scan_segments_skipped").ValueOr(-1.0), 2.0);
  EXPECT_GE(history->GetNumber("scan_segments_decoded").ValueOr(-1.0), 1.0);
  EXPECT_EQ(history->GetNumber("scan_retries").ValueOr(-1.0), 0.0);
  service.Stop();
}

}  // namespace
}  // namespace dbsherlock::service
