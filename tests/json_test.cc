#include "common/json.h"

#include <gtest/gtest.h>

namespace dbsherlock::common {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->as_bool(), true);
  EXPECT_EQ(ParseJson("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("42")->as_number(), 42.0);
  EXPECT_DOUBLE_EQ(ParseJson("-3.5e2")->as_number(), -350.0);
  EXPECT_EQ(ParseJson("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, ArraysAndObjects) {
  auto v = ParseJson(R"([1, "two", [3], {"k": 4}, null])");
  ASSERT_TRUE(v.ok());
  const auto& a = v->as_array();
  ASSERT_EQ(a.size(), 5u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_EQ(a[1].as_string(), "two");
  EXPECT_DOUBLE_EQ(a[2].as_array()[0].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(a[3].Find("k")->as_number(), 4.0);
  EXPECT_TRUE(a[4].is_null());
}

TEST(JsonParseTest, NestedObject) {
  auto v = ParseJson(R"({"a": {"b": {"c": true}}})");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->Find("a")->Find("b")->Find("c")->as_bool());
}

TEST(JsonParseTest, WhitespaceTolerated) {
  auto v = ParseJson("  {\n \"x\" :\t[ 1 , 2 ]\r\n}  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("x")->as_array().size(), 2u);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\/d\ne\tfA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\ne\tfA");
}

TEST(JsonParseTest, UnicodeEscapeUtf8) {
  auto v = ParseJson(R"("é中")");  // é, 中
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParseTest, Malformed) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("truth").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());          // trailing garbage
  EXPECT_FALSE(ParseJson("{'a': 1}").ok());     // single quotes
  EXPECT_FALSE(ParseJson("\"bad\\q\"").ok());   // invalid escape
  EXPECT_FALSE(ParseJson("\"\\u12\"").ok());    // truncated \u
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(JsonParseTest, ControlCharacterRejected) {
  std::string text = "\"a\nb\"";
  EXPECT_FALSE(ParseJson(text).ok());
}

TEST(JsonParseTest, DeepNestingCapped) {
  std::string text(200, '[');
  text += std::string(200, ']');
  EXPECT_FALSE(ParseJson(text).ok());
}

TEST(JsonDumpTest, CompactRoundTrip) {
  JsonValue::Object obj;
  obj["name"] = "x\"y";
  obj["value"] = 1.5;
  obj["ints"] = JsonValue(JsonValue::Array{1, 2, 3});
  obj["flag"] = true;
  obj["nothing"] = JsonValue();
  JsonValue v{std::move(obj)};
  auto parsed = ParseJson(v.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == v);
}

TEST(JsonDumpTest, IntegersPrintWithoutFraction) {
  EXPECT_EQ(JsonValue(42.0).Dump(), "42");
  EXPECT_EQ(JsonValue(-7).Dump(), "-7");
}

TEST(JsonDumpTest, DoublesRoundTrip) {
  double value = 0.1234567890123456789;
  auto parsed = ParseJson(JsonValue(value).Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->as_number(), value);
}

TEST(JsonDumpTest, PrettyPrintParses) {
  JsonValue::Object obj;
  obj["a"] = JsonValue(JsonValue::Array{1, JsonValue(JsonValue::Object{
                                               {"b", JsonValue(2)}})});
  JsonValue v{std::move(obj)};
  std::string pretty = v.Dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = ParseJson(pretty);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == v);
}

TEST(JsonDumpTest, EmptyContainers) {
  EXPECT_EQ(JsonValue(JsonValue::Array{}).Dump(2), "[]");
  EXPECT_EQ(JsonValue(JsonValue::Object{}).Dump(2), "{}");
}

TEST(JsonAccessTest, FindAndTypedGetters) {
  auto v = ParseJson(R"({"n": 5, "s": "str", "a": [1]})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(*v->GetNumber("n"), 5.0);
  EXPECT_EQ(*v->GetString("s"), "str");
  EXPECT_EQ((*v->GetArray("a"))->as_array().size(), 1u);
  EXPECT_FALSE(v->GetNumber("s").ok());
  EXPECT_FALSE(v->GetString("n").ok());
  EXPECT_FALSE(v->GetArray("missing").ok());
}

TEST(JsonAccessTest, FindOnNonObjectIsNull) {
  JsonValue v(5.0);
  EXPECT_EQ(v.Find("x"), nullptr);
}

TEST(JsonEqualityTest, DistinguishesTypesAndValues) {
  EXPECT_TRUE(JsonValue(1.0) == JsonValue(1));
  EXPECT_FALSE(JsonValue(1.0) == JsonValue("1"));
  EXPECT_FALSE(JsonValue(true) == JsonValue(1.0));
  EXPECT_TRUE(JsonValue() == JsonValue());
}

}  // namespace
}  // namespace dbsherlock::common
