// Client retry pacing (service/client.h BackoffSleepMs): jitter band,
// geometric growth, pre-jitter cap, and the anti-lockstep regression —
// two clients sleeping on the same RETRY_AFTER hint must not retry in
// perfect sync (the herd that collided once would collide forever).

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "service/client.h"

namespace {

using dbsherlock::common::Pcg32;
using dbsherlock::service::BackoffSleepMs;
using dbsherlock::service::RetryPolicy;

TEST(BackoffSleepMsTest, CenterOfTheJitterBandIsTheHint) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  policy.backoff_factor = 1.5;
  // attempt 0, uniform 0.5 => factor exactly 1.0: the server's hint.
  EXPECT_EQ(BackoffSleepMs(policy, 0, 100, 0.5), 100);
}

TEST(BackoffSleepMsTest, JitterSpansTheDocumentedBand) {
  RetryPolicy policy;
  policy.jitter = 0.25;
  policy.backoff_factor = 1.0;
  EXPECT_EQ(BackoffSleepMs(policy, 0, 100, 0.0), 75);    // 1 - jitter
  EXPECT_EQ(BackoffSleepMs(policy, 0, 100, 0.999), 124);  // ~1 + jitter
  for (double u : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    int sleep = BackoffSleepMs(policy, 3, 100, u);
    EXPECT_GE(sleep, 75);
    EXPECT_LE(sleep, 125);
  }
}

TEST(BackoffSleepMsTest, GrowsGeometricallyAndCapsPreJitter) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  policy.backoff_factor = 2.0;
  policy.max_sleep_ms = 500;
  EXPECT_EQ(BackoffSleepMs(policy, 0, 50, 0.5), 50);
  EXPECT_EQ(BackoffSleepMs(policy, 1, 50, 0.5), 100);
  EXPECT_EQ(BackoffSleepMs(policy, 2, 50, 0.5), 200);
  // 50 * 2^4 = 800 caps at 500; the cap applies pre-jitter so the band
  // stays centered under max_sleep_ms.
  EXPECT_EQ(BackoffSleepMs(policy, 4, 50, 0.5), 500);
  policy.jitter = 0.25;
  EXPECT_LE(BackoffSleepMs(policy, 10, 50, 0.999), 625);
}

TEST(BackoffSleepMsTest, NeverSleepsBelowOneMs) {
  RetryPolicy policy;
  policy.jitter = 1.0;
  EXPECT_GE(BackoffSleepMs(policy, 0, 0, 0.0), 1);
  EXPECT_GE(BackoffSleepMs(policy, 0, -5, 0.0), 1);
}

TEST(BackoffSleepMsTest, SubUnityFactorDoesNotShrink) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  policy.backoff_factor = 0.5;  // clamped to 1.0: retries never speed up
  EXPECT_EQ(BackoffSleepMs(policy, 5, 40, 0.5), 40);
}

// The lockstep regression: with the old fixed sleep, two clients that
// shed together retried together forever. With jittered pacing their
// sleep sequences must diverge.
TEST(BackoffSleepMsTest, TwoSeededClientsDesynchronize) {
  RetryPolicy policy;  // defaults: jitter 0.25
  Pcg32 rng_a(policy.seed, 77);
  Pcg32 rng_b(policy.seed + 1, 77);
  int identical = 0;
  const int kRounds = 32;
  for (int attempt = 0; attempt < kRounds; ++attempt) {
    int a = BackoffSleepMs(policy, attempt, 20, rng_a.NextDouble());
    int b = BackoffSleepMs(policy, attempt, 20, rng_b.NextDouble());
    if (a == b) ++identical;
  }
  EXPECT_LT(identical, kRounds / 2);
}

TEST(BackoffSleepMsTest, DeterministicForAFixedSeed) {
  RetryPolicy policy;
  auto sequence = [&policy] {
    Pcg32 rng(policy.seed, 77);
    std::vector<int> sleeps;
    for (int attempt = 0; attempt < 16; ++attempt) {
      sleeps.push_back(BackoffSleepMs(policy, attempt, 20, rng.NextDouble()));
    }
    return sleeps;
  };
  EXPECT_EQ(sequence(), sequence());
}

}  // namespace
