// Golden incident reports (DESIGN.md §16): full DQL pipeline over
// simulator datasets for two of the paper's anomaly causes, rendered as
// markdown and JSON and compared byte-for-byte against tests/golden/.
// Reports are golden-stable by construction — no wall-clock fields, all
// floats rounded to 1e-4 in JSON and short-printed in markdown — and
// every input is seeded, so a mismatch means the report pipeline changed.
// Regenerate intentionally with DBSHERLOCK_UPDATE_GOLDEN=1.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/explainer.h"
#include "query/compiler.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/report.h"
#include "simulator/dataset_gen.h"
#include "store/tenant_store.h"

#ifndef DBSHERLOCK_GOLDEN_DIR
#error "build must define DBSHERLOCK_GOLDEN_DIR"
#endif

namespace dbsherlock::query {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(DBSHERLOCK_GOLDEN_DIR) + "/" + name;
}

bool UpdateGolden() {
  const char* env = std::getenv("DBSHERLOCK_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CompareToGolden(const std::string& name, const std::string& got) {
  std::string path = GoldenPath(name);
  if (UpdateGolden()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    return;
  }
  std::string want = ReadFileOrEmpty(path);
  ASSERT_FALSE(want.empty())
      << path << " missing — regenerate with DBSHERLOCK_UPDATE_GOLDEN=1";
  EXPECT_EQ(got, want)
      << name << " drifted; if the change is intentional, regenerate with "
      << "DBSHERLOCK_UPDATE_GOLDEN=1\n--- got ---\n"
      << got;
}

std::string StoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_qgolden_" +
                    std::to_string(getpid()) + "_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

/// Loads one simulator dataset into a fresh TenantStore (the same row
/// shapes the daemon would have ingested and sealed).
std::unique_ptr<store::TenantStore> StoreFrom(
    const tsdata::Dataset& data, const std::string& name) {
  store::TenantStore::Options options;
  options.dir = StoreDir(name);
  options.schema = data.schema();
  options.seal_rows = 64;
  options.fsync_on_seal = false;
  auto open = store::TenantStore::Open(std::move(options));
  EXPECT_TRUE(open.ok()) << open.status().ToString();
  auto store = std::move(*open);
  for (size_t row = 0; row < data.num_rows(); ++row) {
    std::vector<tsdata::Cell> cells;
    cells.reserve(data.schema().num_attributes());
    for (size_t a = 0; a < data.schema().num_attributes(); ++a) {
      const tsdata::Column& column = data.column(a);
      if (column.kind() == tsdata::AttributeKind::kNumeric) {
        cells.emplace_back(column.numeric(row));
      } else {
        cells.emplace_back(column.CategoryName(column.code(row)));
      }
    }
    EXPECT_TRUE(store->Append(data.timestamp(row), cells).ok());
  }
  EXPECT_TRUE(store->Seal().ok());
  return store;
}

/// An explainer taught the paper's causes from independent training runs
/// (seed differs from the evaluation dataset's).
core::Explainer TrainExplainer() {
  core::Explainer explainer;
  for (simulator::AnomalyKind kind :
       {simulator::AnomalyKind::kCpuSaturation,
        simulator::AnomalyKind::kLockContention,
        simulator::AnomalyKind::kIoSaturation}) {
    simulator::DatasetGenOptions options;
    options.seed = 1000 + static_cast<uint64_t>(kind);
    simulator::GeneratedDataset train =
        simulator::GenerateAnomalyDataset(options, kind, 60.0);
    core::Explanation ex = explainer.Diagnose(train.data, train.regions);
    explainer.AcceptDiagnosis(simulator::AnomalyKindName(kind), ex);
  }
  return explainer;
}

IncidentReport RunQuery(const std::string& text,
                        const tsdata::Schema& schema,
                        const store::TenantStore* history,
                        const core::Explainer& explainer) {
  auto parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  CompileContext compile_context;
  compile_context.schema = &schema;
  compile_context.history = history;
  auto compiled = Compile(*parsed, text, compile_context);
  EXPECT_TRUE(compiled.ok()) << compiled.status().message();
  ExecutionContext context;
  context.schema = &schema;
  context.history = history;
  context.explainer = &explainer;
  auto report = Execute(*compiled, context, {});
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  IncidentReport out = report.ok() ? *report : IncidentReport{};
  out.tenant = "golden";
  return out;
}

TEST(QueryGoldenTest, CpuSaturationExplainWhere) {
  simulator::DatasetGenOptions options;
  options.seed = 7;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kCpuSaturation, 60.0);
  auto store = StoreFrom(run.data, "cpu_sat");
  core::Explainer explainer = TrainExplainer();
  // `cpu` resolves through the alias table to os_cpu_usage; p90 lands in
  // the normal tail so the saturated plateau matches.
  IncidentReport report = RunQuery(
      "EXPLAIN WHERE cpu > p90 BETWEEN 0 200 RANK BY confidence TOP 3",
      run.data.schema(), store.get(), explainer);
  ASSERT_FALSE(report.findings.empty());
  ASSERT_FALSE(report.findings[0].causes.empty());
  EXPECT_EQ(report.findings[0].causes[0].cause, "CPU Saturation");
  CompareToGolden("cpu_saturation_explain.md", RenderMarkdown(report));
  CompareToGolden("cpu_saturation_explain.json",
                  ReportToJson(report).Dump(2) + "\n");
}

TEST(QueryGoldenTest, LockContentionExplainRegion) {
  simulator::DatasetGenOptions options;
  options.seed = 8;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kLockContention, 60.0);
  auto store = StoreFrom(run.data, "lock_cont");
  core::Explainer explainer = TrainExplainer();
  ASSERT_FALSE(run.regions.abnormal.ranges().empty());
  tsdata::TimeRange truth = run.regions.abnormal.ranges().front();
  std::string text = "EXPLAIN REGION " + FormatNumber(truth.start) + " " +
                     FormatNumber(truth.end) + " TOP 3";
  IncidentReport report =
      RunQuery(text, run.data.schema(), store.get(), explainer);
  ASSERT_FALSE(report.findings.empty());
  ASSERT_FALSE(report.findings[0].causes.empty());
  EXPECT_EQ(report.findings[0].causes[0].cause, "Lock Contention");
  CompareToGolden("lock_contention_region.md", RenderMarkdown(report));
  CompareToGolden("lock_contention_region.json",
                  ReportToJson(report).Dump(2) + "\n");
}

TEST(QueryGoldenTest, DescribeTenant) {
  simulator::DatasetGenOptions options;
  options.seed = 7;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kCpuSaturation, 60.0);
  auto store = StoreFrom(run.data, "describe");
  core::Explainer explainer;
  auto parsed = Parse("DESCRIBE");
  ASSERT_TRUE(parsed.ok());
  CompileContext compile_context;
  tsdata::Schema schema = run.data.schema();
  compile_context.schema = &schema;
  auto compiled = Compile(*parsed, "DESCRIBE", compile_context);
  ASSERT_TRUE(compiled.ok());
  ExecutionContext context;
  context.schema = &schema;
  context.history = store.get();
  context.explainer = &explainer;
  context.models = 3;
  context.diagnoses = 1;
  auto report = Execute(*compiled, context, {});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  report->tenant = "golden";
  CompareToGolden("describe.md", RenderMarkdown(*report));
  CompareToGolden("describe.json", ReportToJson(*report).Dump(2) + "\n");
}

}  // namespace
}  // namespace dbsherlock::query
