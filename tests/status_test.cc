#include "common/status.h"

#include <gtest/gtest.h>

namespace dbsherlock::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 5u);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::IoError("disk gone"); };
  auto outer = [&]() -> Status {
    DBSHERLOCK_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto inner = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    DBSHERLOCK_RETURN_NOT_OK(inner());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dbsherlock::common
