// Fleet end-to-end: a real `dbsherlockd route` subprocess in front of
// real `dbsherlockd serve` shards. Covers the ISSUE's failure drill —
// kill -9 one shard mid-replay and require the idempotent resume
// protocol to land every row on the survivor — plus MODELSYNC
// convergence between peered shards, and the same kill drill under an
// injected short-I/O fault schedule.

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "eval/chaos.h"
#include "fleet/fleet_replay.h"
#include "service/client.h"
#include "tsdata/schema.h"

namespace dbsherlock::fleet {
namespace {

using eval::DaemonProcess;

std::string Addr(const DaemonProcess& daemon) {
  return common::StrFormat("127.0.0.1:%d", daemon.port());
}

DaemonProcess::Options ShardOptions(std::vector<std::string> extra = {}) {
  DaemonProcess::Options options;
  options.binary = DBSHERLOCK_DAEMON_PATH;
  options.command = "serve";
  options.args = {"--port", "0",  "--io-mode",     "epoll",
                  "--handler-threads", "2", "--max-tenants", "64",
                  "--max-connections", "64",
                  // Slow the drain so the kill below lands while every
                  // tenant is provably mid-stream (a fast machine would
                  // otherwise finish the whole replay first).
                  "--process-delay-us", "1000", "--queue-capacity", "4",
                  "--retry-after-ms", "5", "--ingest-workers", "2"};
  options.args.insert(options.args.end(), extra.begin(), extra.end());
  return options;
}

DaemonProcess::Options RouterOptions(const std::string& shards,
                                     std::vector<std::string> extra = {}) {
  DaemonProcess::Options options;
  options.binary = DBSHERLOCK_DAEMON_PATH;
  options.command = "route";
  options.args = {"--port", "0", "--shards", shards,
                  "--handler-threads", "24", "--max-connections", "64",
                  // Fail over quickly: the drill wants the ERR surfaced to
                  // the writer, not three 5s connect timeouts per request.
                  "--upstream-deadline-ms", "2000", "--upstream-attempts",
                  "2", "--down-cooldown-ms", "500"};
  options.args.insert(options.args.end(), extra.begin(), extra.end());
  return options;
}

/// Streams `tenants`x`rows` through the router, kill -9s one shard once
/// every tenant is provably mid-stream, and asserts that the replay
/// completes with zero failed rows and that the SURVIVOR holds every
/// tenant's full history (the resume protocol rewinds a moved tenant to
/// row 1, so rows acked by the dead shard are re-landed, not lost).
void RunKillDrill(const std::vector<std::string>& shard_extra_args) {
  DaemonProcess shard_a, shard_b;
  ASSERT_TRUE(shard_a.Start(ShardOptions(shard_extra_args)).ok());
  ASSERT_TRUE(shard_b.Start(ShardOptions(shard_extra_args)).ok());
  DaemonProcess router;
  ASSERT_TRUE(
      router.Start(RouterOptions(Addr(shard_a) + "," + Addr(shard_b))).ok());

  FleetReplayOptions replay_options;
  replay_options.port = router.port();
  // One worker per tenant: all tenants stream in lockstep, so at the
  // kill point every tenant is mid-replay and none has retired to the
  // doomed shard for good.
  replay_options.tenants = 16;
  replay_options.client_threads = 16;
  replay_options.rows_per_tenant = 300;
  replay_options.deadline_ms = 4000;

  common::Result<FleetReplayResult> result =
      common::Status::Internal("replay never ran");
  std::thread replay(
      [&] { result = RunFleetReplay(replay_options); });
  // ~500ms in, each tenant has landed a few dozen of its 300 rows (the
  // whole run takes seconds on one core).
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  shard_b.Kill9();
  replay.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_failed, 0u);
  // Rewound rows ack once per send, so acks can exceed the row count —
  // but never undershoot it.
  EXPECT_GE(result->rows_acked,
            replay_options.tenants * replay_options.rows_per_tenant);
  EXPECT_GT(result->rehellos, 0u) << "no tenant ever failed over?";

  // Every tenant's complete history must now live on the survivor: after
  // a per-tenant FLUSH, the survivor has drained exactly `rows_per_tenant`
  // distinct rows for every tenant (seq replay-detection dedupes resends,
  // so an over-count here would mean double-ingest, an under-count a lost
  // acked row).
  auto client = service::Client::Connect("127.0.0.1", shard_a.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t t = 0; t < replay_options.tenants; ++t) {
    std::string tenant = common::StrFormat("t%zu", t);
    // A flush can race one last writer retry; settle, don't flake.
    common::Status flushed = common::Status::Internal("never ran");
    for (int attempt = 0; attempt < 5; ++attempt) {
      flushed = (*client)->Flush(tenant);
      if (flushed.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    ASSERT_TRUE(flushed.ok()) << tenant << ": " << flushed.ToString();
  }
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const common::JsonValue* tenants_json = stats->Find("tenants");
  ASSERT_NE(tenants_json, nullptr);
  for (size_t t = 0; t < replay_options.tenants; ++t) {
    std::string tenant = common::StrFormat("t%zu", t);
    const common::JsonValue* entry = tenants_json->Find(tenant);
    ASSERT_NE(entry, nullptr) << tenant << " missing from the survivor";
    EXPECT_EQ(entry->GetNumber("processed").ValueOr(-1),
              static_cast<double>(replay_options.rows_per_tenant))
        << tenant << " lost or double-ingested acked rows";
  }
  (void)(*client)->Quit();
}

TEST(FleetRouterE2eTest, ShardKillMidReplayLandsEveryRowOnSurvivor) {
  RunKillDrill({});
}

TEST(FleetRouterE2eTest, ShardKillDrillSurvivesShortIoFaultSchedule) {
  // Same drill with injected short reads/writes on every shard's socket
  // path: partial-I/O loops plus failover must still lose nothing.
  RunKillDrill({"--fault-schedule",
                "seed=13;srv.recv=short@0.05;srv.send=short@0.05"});
}

TEST(FleetRouterE2eTest, ModelSyncConvergesFromPeerShard) {
  DaemonProcess shard_a;
  ASSERT_TRUE(shard_a.Start(ShardOptions()).ok());
  // B pulls from A every 100ms.
  DaemonProcess shard_b;
  ASSERT_TRUE(shard_b
                  .Start(ShardOptions({"--peers", Addr(shard_a),
                                       "--modelsync-interval-ms", "100"}))
                  .ok());

  core::CausalModel model;
  model.cause = "Network Contention";
  model.suggested_action = "move the backup window";
  model.predicates = {core::Predicate{
      "m0", core::PredicateType::kGreaterThan, 42.0, 0.0, {}}};

  auto teach = service::Client::Connect("127.0.0.1", shard_a.port());
  ASSERT_TRUE(teach.ok()) << teach.status().ToString();
  ASSERT_TRUE((*teach)->Teach(model).ok());
  (void)(*teach)->Quit();

  // The taught model replicates to B without B ever being told directly.
  auto reader = service::Client::Connect("127.0.0.1", shard_b.port());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  bool converged = false;
  for (int attempt = 0; attempt < 100 && !converged; ++attempt) {
    auto models = (*reader)->Models();
    ASSERT_TRUE(models.ok()) << models.status().ToString();
    converged = models->Dump().find("Network Contention") != std::string::npos;
    if (!converged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(converged) << "MODELSYNC never replicated the taught model";
  (void)(*reader)->Quit();
}

std::string ShardStoreDir(const std::string& name) {
  std::string dir = common::StrFormat("%s/dbsherlock_fleet_dql_%d_%s",
                                      testing::TempDir().c_str(),
                                      static_cast<int>(getpid()),
                                      name.c_str());
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

TEST(FleetRouterE2eTest, ExplainQueryRoutesToOwningShard) {
  // Shards need a history store for DQL discovery scans; small seal
  // batches so the BETWEEN scan has real segments to prune.
  DaemonProcess shard_a, shard_b;
  ASSERT_TRUE(shard_a
                  .Start(ShardOptions({"--store-dir", ShardStoreDir("a"),
                                       "--seal-rows", "32"}))
                  .ok());
  ASSERT_TRUE(shard_b
                  .Start(ShardOptions({"--store-dir", ShardStoreDir("b"),
                                       "--seal-rows", "32"}))
                  .ok());
  DaemonProcess router;
  ASSERT_TRUE(
      router.Start(RouterOptions(Addr(shard_a) + "," + Addr(shard_b))).ok());

  tsdata::Schema schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
  const std::vector<std::string> tenants = {"alpha", "bravo", "charlie",
                                            "delta", "echo",  "foxtrot"};
  auto via_router = service::Client::Connect("127.0.0.1", router.port());
  ASSERT_TRUE(via_router.ok()) << via_router.status().ToString();
  for (const std::string& tenant : tenants) {
    ASSERT_TRUE((*via_router)->Hello(tenant, schema).ok()) << tenant;
    for (int i = 0; i < 240; ++i) {
      bool anomalous = i >= 120 && i < 180;
      double latency = anomalous ? 90.0 : 10.0;
      double cpu = anomalous ? 95.0 : 40.0;
      ASSERT_TRUE((*via_router)
                      ->AppendRetrying(tenant, static_cast<double>(i),
                                       {latency, cpu})
                      .ok())
          << tenant << " row " << i;
    }
    ASSERT_TRUE((*via_router)->Flush(tenant).ok()) << tenant;
  }

  // The same DQL statement through the router must come back with the
  // injected region for every tenant, regardless of which shard owns it.
  const std::string statement = "EXPLAIN WHERE latency > 50 BETWEEN 0 240";
  for (const std::string& tenant : tenants) {
    auto report = (*via_router)->Explain(tenant, statement);
    ASSERT_TRUE(report.ok()) << tenant << ": " << report.status().ToString();
    EXPECT_EQ(report->GetString("tenant").ValueOr(""), tenant);
    const common::JsonValue* discovery = report->Find("discovery");
    ASSERT_NE(discovery, nullptr) << tenant;
    EXPECT_EQ(discovery->GetNumber("matched_rows").ValueOr(-1), 60.0)
        << tenant;
    auto findings = report->GetArray("findings");
    ASSERT_TRUE(findings.ok()) << tenant;
    ASSERT_FALSE((*findings)->as_array().empty()) << tenant;
    const common::JsonValue& finding = (*findings)->as_array().front();
    const common::JsonValue* region = finding.Find("region");
    ASSERT_NE(region, nullptr) << tenant;
    double start = region->GetNumber("start").ValueOr(-1);
    double end = region->GetNumber("end").ValueOr(-1);
    EXPECT_LT(start, 180.0) << tenant;
    EXPECT_GT(end, 120.0) << tenant;
  }

  // Placement proof: each tenant's history lives on exactly one shard, so
  // the same EXPLAINQ sent directly must succeed on the owner and fail
  // NotFound on the other — yet every tenant answered via the router.
  auto direct_a = service::Client::Connect("127.0.0.1", shard_a.port());
  auto direct_b = service::Client::Connect("127.0.0.1", shard_b.port());
  ASSERT_TRUE(direct_a.ok()) << direct_a.status().ToString();
  ASSERT_TRUE(direct_b.ok()) << direct_b.status().ToString();
  size_t owned_a = 0, owned_b = 0;
  for (const std::string& tenant : tenants) {
    bool on_a = (*direct_a)->Explain(tenant, statement).ok();
    bool on_b = (*direct_b)->Explain(tenant, statement).ok();
    EXPECT_NE(on_a, on_b)
        << tenant << " should live on exactly one shard (a=" << on_a
        << " b=" << on_b << ")";
    owned_a += on_a ? 1 : 0;
    owned_b += on_b ? 1 : 0;
  }
  // The ring spreads six tenants across both shards (deterministic for
  // these fixed names); a one-sided split would make this test vacuous.
  EXPECT_GT(owned_a, 0u);
  EXPECT_GT(owned_b, 0u);
  (void)(*direct_a)->Quit();
  (void)(*direct_b)->Quit();
  (void)(*via_router)->Quit();
}

}  // namespace
}  // namespace dbsherlock::fleet
