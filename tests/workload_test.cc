#include "simulator/workload.h"

#include <gtest/gtest.h>

namespace dbsherlock::simulator {
namespace {

TEST(WorkloadTest, TpccMixStructure) {
  WorkloadSpec w = MakeTpccWorkload();
  EXPECT_EQ(w.name, "tpcc");
  ASSERT_EQ(w.transactions.size(), 5u);
  EXPECT_EQ(w.transactions[0].name, "NewOrder");
  // NewOrder + Payment dominate the TPC-C mix (~88%).
  double no_payment_weight =
      w.transactions[0].mix_weight + w.transactions[1].mix_weight;
  EXPECT_GT(no_payment_weight / w.TotalWeight(), 0.8);
}

TEST(WorkloadTest, TotalWeightSumsMix) {
  WorkloadSpec w = MakeTpccWorkload();
  double sum = 0.0;
  for (const auto& t : w.transactions) sum += t.mix_weight;
  EXPECT_DOUBLE_EQ(w.TotalWeight(), sum);
}

TEST(WorkloadTest, MixAverageIsWeighted) {
  WorkloadSpec w;
  TransactionProfile a;
  a.mix_weight = 1.0;
  a.cpu_ms = 1.0;
  TransactionProfile b;
  b.mix_weight = 3.0;
  b.cpu_ms = 5.0;
  w.transactions = {a, b};
  EXPECT_DOUBLE_EQ(w.MixAverage(&TransactionProfile::cpu_ms), 4.0);
}

TEST(WorkloadTest, EmptyMixAverageIsZero) {
  WorkloadSpec w;
  EXPECT_DOUBLE_EQ(w.MixAverage(&TransactionProfile::cpu_ms), 0.0);
  EXPECT_DOUBLE_EQ(w.TotalWeight(), 0.0);
}

TEST(WorkloadTest, TpceIsReadHeavierThanTpcc) {
  WorkloadSpec tpcc = MakeTpccWorkload();
  WorkloadSpec tpce = MakeTpceWorkload();
  double tpcc_writes =
      tpcc.MixAverage(&TransactionProfile::rows_written);
  double tpcc_reads = tpcc.MixAverage(&TransactionProfile::logical_reads);
  double tpce_writes =
      tpce.MixAverage(&TransactionProfile::rows_written);
  double tpce_reads = tpce.MixAverage(&TransactionProfile::logical_reads);
  // Appendix A's premise: TPC-E reads much more per row written.
  EXPECT_GT(tpce_reads / std::max(tpce_writes, 1e-9),
            2.0 * tpcc_reads / std::max(tpcc_writes, 1e-9));
}

TEST(WorkloadTest, TpceHasMilderHotspot) {
  EXPECT_LT(MakeTpceWorkload().hotspot_fraction,
            MakeTpccWorkload().hotspot_fraction);
}

}  // namespace
}  // namespace dbsherlock::simulator
