#include "core/model_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

Predicate Gt(const std::string& attr, double low) {
  return Predicate{attr, PredicateType::kGreaterThan, low, 0.0, {}};
}
Predicate Lt(const std::string& attr, double high) {
  return Predicate{attr, PredicateType::kLessThan, 0.0, high, {}};
}
Predicate Range(const std::string& attr, double low, double high) {
  return Predicate{attr, PredicateType::kRange, low, high, {}};
}
Predicate InSet(const std::string& attr, std::vector<std::string> cats) {
  return Predicate{attr, PredicateType::kInSet, 0.0, 0.0, std::move(cats)};
}

CausalModel SampleModel() {
  CausalModel model;
  model.cause = "Log Rotation";
  model.num_sources = 3;
  model.suggested_action = "enable adaptive flushing";
  model.predicates = {Gt("cpu_wait", 50.0), Lt("throughput", 120.5),
                      Range("latency_ms", 100.0, 900.0),
                      InSet("mode", {"a", "b"})};
  return model;
}

TEST(ModelIoTest, PredicateRoundTripAllTypes) {
  for (const Predicate& original :
       {Gt("x", 1.5), Lt("y", -3.0), Range("z", 0.0, 10.0),
        InSet("c", {"one", "two"})}) {
    auto round = PredicateFromJson(PredicateToJson(original));
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round->attribute, original.attribute);
    EXPECT_EQ(round->type, original.type);
    EXPECT_DOUBLE_EQ(round->low, original.low);
    EXPECT_DOUBLE_EQ(round->high, original.high);
    EXPECT_EQ(round->categories, original.categories);
  }
}

TEST(ModelIoTest, ModelRoundTrip) {
  CausalModel original = SampleModel();
  auto round = CausalModelFromJson(CausalModelToJson(original));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->cause, original.cause);
  EXPECT_EQ(round->num_sources, original.num_sources);
  EXPECT_EQ(round->suggested_action, original.suggested_action);
  ASSERT_EQ(round->predicates.size(), original.predicates.size());
  EXPECT_EQ(round->predicates[3].categories, original.predicates[3].categories);
}

TEST(ModelIoTest, RepositoryRoundTripThroughText) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  CausalModel second;
  second.cause = "Network Congestion";
  second.predicates = {Lt("net_send_kb", 10.0)};
  repo.AddUnmerged(second);

  std::string text = RepositoryToJson(repo).Dump(2);
  auto parsed = common::ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  auto loaded = RepositoryFromJson(*parsed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const CausalModel* m = loaded->Find("Log Rotation");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->predicates.size(), 4u);
  EXPECT_EQ(m->suggested_action, "enable adaptive flushing");
}

TEST(ModelIoTest, GoldenDocumentParses) {
  // The documented stable format must keep loading.
  const char* golden = R"({
    "version": 1,
    "models": [
      {
        "cause": "Log Rotation",
        "num_sources": 2,
        "predicates": [
          {"attribute": "cpu_wait", "type": "gt", "low": 50.0},
          {"attribute": "latency_ms", "type": "range",
           "low": 100.0, "high": 900.0},
          {"attribute": "mode", "type": "in", "categories": ["a", "b"]}
        ]
      }
    ]
  })";
  auto json = common::ParseJson(golden);
  ASSERT_TRUE(json.ok());
  auto repo = RepositoryFromJson(*json);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  const CausalModel* m = repo->Find("Log Rotation");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->num_sources, 2);
  EXPECT_TRUE(m->suggested_action.empty());
  EXPECT_EQ(m->predicates[0].type, PredicateType::kGreaterThan);
}

TEST(ModelIoTest, RejectsBadDocuments) {
  auto reject = [](const char* text) {
    auto json = common::ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    EXPECT_FALSE(RepositoryFromJson(*json).ok()) << text;
  };
  reject(R"({"models": []})");                       // missing version
  reject(R"({"version": 99, "models": []})");        // unknown version
  reject(R"({"version": 1})");                       // missing models
  reject(R"({"version": 1, "models": [{"cause": ""}]})");  // empty cause
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "teleport"}]}]})");  // bad type
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "gt"}]}]})");  // missing bound
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "range", "low": 5, "high": 1}]}]})");
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "in", "categories": []}]}]})");
}

TEST(ModelIoTest, FileRoundTrip) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  std::string path = testing::TempDir() + "/dbsherlock_models_test.json";
  ASSERT_TRUE(SaveRepository(repo, path).ok());
  auto loaded = LoadRepository(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadRepository("/no/such/models.json").ok());
}

/// Fuzz: random byte mutations of a serialized repository must load
/// cleanly or fail with a Status — never crash, and anything that loads
/// must honor the repository invariants (the WAL recovery path feeds
/// arbitrary disk bytes through this parser).
TEST(ModelIoTest, ByteMutationFuzzNeverCrashes) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  CausalModel second;
  second.cause = "Network Slowdown";
  second.predicates = {Gt("net_send", 12.5), InSet("mode", {"slow"})};
  repo.AddUnmerged(second);
  const std::string base = RepositoryToJson(repo).Dump(0);

  common::Pcg32 fuzz_rng(0xbeef, 5);
  size_t parsed_count = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = base;
    size_t num_edits = 1 + fuzz_rng.NextBounded(4);
    for (size_t e = 0; e < num_edits && !mutated.empty(); ++e) {
      size_t pos =
          fuzz_rng.NextBounded(static_cast<uint32_t>(mutated.size()));
      switch (fuzz_rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(fuzz_rng.NextBounded(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        case 2:
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    auto json = common::ParseJson(mutated);
    if (!json.ok()) continue;
    auto loaded = RepositoryFromJson(*json);
    if (!loaded.ok()) continue;
    ++parsed_count;
    for (const CausalModel& model : loaded->models()) {
      EXPECT_FALSE(model.cause.empty());
      EXPECT_GE(model.num_sources, 1);
    }
  }
  // Some mutations (digit tweaks, action-text edits) must survive, or the
  // fuzz only exercised the error path.
  EXPECT_GT(parsed_count, 0u);
}

TEST(ModelIoTest, TruncatedFileNeverCrashesLoad) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  std::string path = testing::TempDir() + "/dbsherlock_models_trunc_" +
                     std::to_string(getpid()) + ".json";
  ASSERT_TRUE(SaveRepository(repo, path).ok());

  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string full(1 << 16, '\0');
  full.resize(fread(full.data(), 1, full.size(), f));
  std::fclose(f);
  ASSERT_FALSE(full.empty());

  for (size_t len = 0; len < full.size(); len += 7) {
    FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(fwrite(full.data(), 1, len, out), len);
    std::fclose(out);
    // Every proper prefix is malformed JSON or a malformed document; the
    // load must fail with a Status, not crash or succeed partially.
    EXPECT_FALSE(LoadRepository(path).ok()) << "prefix length " << len;
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, DefaultNumSourcesIsOne) {
  auto json = common::ParseJson(
      R"({"cause": "x", "predicates": []})");
  ASSERT_TRUE(json.ok());
  auto model = CausalModelFromJson(*json);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_sources, 1);
}

}  // namespace
}  // namespace dbsherlock::core
