#include "core/model_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dbsherlock::core {
namespace {

Predicate Gt(const std::string& attr, double low) {
  return Predicate{attr, PredicateType::kGreaterThan, low, 0.0, {}};
}
Predicate Lt(const std::string& attr, double high) {
  return Predicate{attr, PredicateType::kLessThan, 0.0, high, {}};
}
Predicate Range(const std::string& attr, double low, double high) {
  return Predicate{attr, PredicateType::kRange, low, high, {}};
}
Predicate InSet(const std::string& attr, std::vector<std::string> cats) {
  return Predicate{attr, PredicateType::kInSet, 0.0, 0.0, std::move(cats)};
}

CausalModel SampleModel() {
  CausalModel model;
  model.cause = "Log Rotation";
  model.num_sources = 3;
  model.suggested_action = "enable adaptive flushing";
  model.predicates = {Gt("cpu_wait", 50.0), Lt("throughput", 120.5),
                      Range("latency_ms", 100.0, 900.0),
                      InSet("mode", {"a", "b"})};
  return model;
}

TEST(ModelIoTest, PredicateRoundTripAllTypes) {
  for (const Predicate& original :
       {Gt("x", 1.5), Lt("y", -3.0), Range("z", 0.0, 10.0),
        InSet("c", {"one", "two"})}) {
    auto round = PredicateFromJson(PredicateToJson(original));
    ASSERT_TRUE(round.ok()) << round.status().ToString();
    EXPECT_EQ(round->attribute, original.attribute);
    EXPECT_EQ(round->type, original.type);
    EXPECT_DOUBLE_EQ(round->low, original.low);
    EXPECT_DOUBLE_EQ(round->high, original.high);
    EXPECT_EQ(round->categories, original.categories);
  }
}

TEST(ModelIoTest, ModelRoundTrip) {
  CausalModel original = SampleModel();
  auto round = CausalModelFromJson(CausalModelToJson(original));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->cause, original.cause);
  EXPECT_EQ(round->num_sources, original.num_sources);
  EXPECT_EQ(round->suggested_action, original.suggested_action);
  ASSERT_EQ(round->predicates.size(), original.predicates.size());
  EXPECT_EQ(round->predicates[3].categories, original.predicates[3].categories);
}

TEST(ModelIoTest, RepositoryRoundTripThroughText) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  CausalModel second;
  second.cause = "Network Congestion";
  second.predicates = {Lt("net_send_kb", 10.0)};
  repo.AddUnmerged(second);

  std::string text = RepositoryToJson(repo).Dump(2);
  auto parsed = common::ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  auto loaded = RepositoryFromJson(*parsed);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  const CausalModel* m = loaded->Find("Log Rotation");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->predicates.size(), 4u);
  EXPECT_EQ(m->suggested_action, "enable adaptive flushing");
}

TEST(ModelIoTest, GoldenDocumentParses) {
  // The documented stable format must keep loading.
  const char* golden = R"({
    "version": 1,
    "models": [
      {
        "cause": "Log Rotation",
        "num_sources": 2,
        "predicates": [
          {"attribute": "cpu_wait", "type": "gt", "low": 50.0},
          {"attribute": "latency_ms", "type": "range",
           "low": 100.0, "high": 900.0},
          {"attribute": "mode", "type": "in", "categories": ["a", "b"]}
        ]
      }
    ]
  })";
  auto json = common::ParseJson(golden);
  ASSERT_TRUE(json.ok());
  auto repo = RepositoryFromJson(*json);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  const CausalModel* m = repo->Find("Log Rotation");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->num_sources, 2);
  EXPECT_TRUE(m->suggested_action.empty());
  EXPECT_EQ(m->predicates[0].type, PredicateType::kGreaterThan);
}

TEST(ModelIoTest, RejectsBadDocuments) {
  auto reject = [](const char* text) {
    auto json = common::ParseJson(text);
    ASSERT_TRUE(json.ok()) << text;
    EXPECT_FALSE(RepositoryFromJson(*json).ok()) << text;
  };
  reject(R"({"models": []})");                       // missing version
  reject(R"({"version": 99, "models": []})");        // unknown version
  reject(R"({"version": 1})");                       // missing models
  reject(R"({"version": 1, "models": [{"cause": ""}]})");  // empty cause
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "teleport"}]}]})");  // bad type
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "gt"}]}]})");  // missing bound
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "range", "low": 5, "high": 1}]}]})");
  reject(R"({"version": 1, "models": [
      {"cause": "x", "predicates": [
        {"attribute": "a", "type": "in", "categories": []}]}]})");
}

TEST(ModelIoTest, FileRoundTrip) {
  ModelRepository repo;
  repo.AddUnmerged(SampleModel());
  std::string path = testing::TempDir() + "/dbsherlock_models_test.json";
  ASSERT_TRUE(SaveRepository(repo, path).ok());
  auto loaded = LoadRepository(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadRepository("/no/such/models.json").ok());
}

TEST(ModelIoTest, DefaultNumSourcesIsOne) {
  auto json = common::ParseJson(
      R"({"cause": "x", "predicates": []})");
  ASSERT_TRUE(json.ok());
  auto model = CausalModelFromJson(*json);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_sources, 1);
}

}  // namespace
}  // namespace dbsherlock::core
