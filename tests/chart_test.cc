#include "viz/chart.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::viz {
namespace {

struct ChartData {
  tsdata::Dataset dataset;
  tsdata::RegionSpec abnormal;
};

ChartData MakeData(int rows = 200) {
  tsdata::Dataset d(tsdata::Schema(
      {{"latency", tsdata::AttributeKind::kNumeric},
       {"cpu", tsdata::AttributeKind::kNumeric},
       {"mode", tsdata::AttributeKind::kCategorical}}));
  common::Pcg32 rng(1);
  for (int t = 0; t < rows; ++t) {
    bool ab = t >= 100 && t < 150;
    EXPECT_TRUE(d.AppendRow(t, {(ab ? 80.0 : 10.0) + rng.NextGaussian(),
                                40.0 + rng.NextGaussian(),
                                std::string("x")})
                    .ok());
  }
  ChartData out{std::move(d), {}};
  out.abnormal.Add(100.0, 150.0);
  return out;
}

TEST(AsciiChartTest, RendersGridWithMarkers) {
  ChartData data = MakeData();
  AsciiChartOptions options;
  options.width = 80;
  options.height = 12;
  options.title = "Average latency";
  auto chart = RenderAsciiChart(data.dataset, "latency", data.abnormal,
                                options);
  ASSERT_TRUE(chart.ok()) << chart.status().ToString();
  EXPECT_NE(chart->find("Average latency"), std::string::npos);
  EXPECT_NE(chart->find('#'), std::string::npos);  // abnormal columns
  EXPECT_NE(chart->find('*'), std::string::npos);  // normal columns
  EXPECT_NE(chart->find('^'), std::string::npos);  // marker line
  // Height: title + top axis + 12 rows + bottom axis + marker + footer.
  size_t newlines = static_cast<size_t>(
      std::count(chart->begin(), chart->end(), '\n'));
  EXPECT_EQ(newlines, 17u);
}

TEST(AsciiChartTest, NoAbnormalRegionNoHashes) {
  ChartData data = MakeData();
  auto chart =
      RenderAsciiChart(data.dataset, "cpu", tsdata::RegionSpec{}, {});
  ASSERT_TRUE(chart.ok());
  EXPECT_EQ(chart->find('#'), std::string::npos);
}

TEST(AsciiChartTest, MissingAttributeFails) {
  ChartData data = MakeData();
  EXPECT_FALSE(
      RenderAsciiChart(data.dataset, "nope", data.abnormal, {}).ok());
}

TEST(AsciiChartTest, CategoricalAttributeFails) {
  ChartData data = MakeData();
  EXPECT_FALSE(
      RenderAsciiChart(data.dataset, "mode", data.abnormal, {}).ok());
}

TEST(AsciiChartTest, EmptyDatasetFails) {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  EXPECT_FALSE(RenderAsciiChart(d, "x", tsdata::RegionSpec{}, {}).ok());
}

TEST(AsciiChartTest, TinyOptionsClampToUsableSize) {
  ChartData data = MakeData();
  AsciiChartOptions options;
  options.width = 1;
  options.height = 1;
  auto chart = RenderAsciiChart(data.dataset, "latency", data.abnormal,
                                options);
  ASSERT_TRUE(chart.ok());
  EXPECT_FALSE(chart->empty());
}

TEST(SvgChartTest, StructureContainsExpectedElements) {
  ChartData data = MakeData();
  SvgChartOptions options;
  options.title = "Incident 42";
  auto svg = RenderSvgChart(data.dataset,
                            {{"latency", "#d62728"}, {"cpu", "#1f77b4"}},
                            data.abnormal, options);
  ASSERT_TRUE(svg.ok()) << svg.status().ToString();
  EXPECT_NE(svg->find("<svg "), std::string::npos);
  EXPECT_NE(svg->find("</svg>"), std::string::npos);
  EXPECT_NE(svg->find("Incident 42"), std::string::npos);
  EXPECT_NE(svg->find("abnormal-region"), std::string::npos);
  // Two polylines, one per series.
  size_t first = svg->find("<polyline");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(svg->find("<polyline", first + 1), std::string::npos);
  EXPECT_NE(svg->find("#d62728"), std::string::npos);
  // Legend carries the series value ranges.
  EXPECT_NE(svg->find("latency ["), std::string::npos);
}

TEST(SvgChartTest, NoRegionNoBand) {
  ChartData data = MakeData();
  auto svg = RenderSvgChart(data.dataset, {{"latency"}},
                            tsdata::RegionSpec{}, {});
  ASSERT_TRUE(svg.ok());
  EXPECT_EQ(svg->find("abnormal-region"), std::string::npos);
}

TEST(SvgChartTest, PolylineHasOnePointPerRow) {
  ChartData data = MakeData(50);
  auto svg = RenderSvgChart(data.dataset, {{"latency"}}, data.abnormal, {});
  ASSERT_TRUE(svg.ok());
  size_t points_begin = svg->find("points=\"");
  ASSERT_NE(points_begin, std::string::npos);
  size_t points_end = svg->find('"', points_begin + 8);
  std::string points =
      svg->substr(points_begin + 8, points_end - points_begin - 8);
  size_t commas = static_cast<size_t>(
      std::count(points.begin(), points.end(), ','));
  EXPECT_EQ(commas, 50u);
}

TEST(SvgChartTest, FailsOnBadInput) {
  ChartData data = MakeData();
  EXPECT_FALSE(
      RenderSvgChart(data.dataset, {}, data.abnormal, {}).ok());
  EXPECT_FALSE(
      RenderSvgChart(data.dataset, {{"missing"}}, data.abnormal, {}).ok());
  tsdata::Dataset single(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  ASSERT_TRUE(single.AppendRow(0, {1.0}).ok());
  EXPECT_FALSE(
      RenderSvgChart(single, {{"x"}}, tsdata::RegionSpec{}, {}).ok());
}

}  // namespace
}  // namespace dbsherlock::viz
