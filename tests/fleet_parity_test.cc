// Epoll/thread server parity (fleet/event_loop.h behind Server's
// --io-mode): the same wire conversation must produce byte-identical
// responses in both modes — including pipelined scripts, requests split
// across many small writes, a half-closed (EOF-drain) peer, a slow-loris
// client that must not stall anyone else, accept-shed past
// max_connections, and a short-read/short-write fault schedule.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/faultenv.h"
#include "service/model_store.h"
#include "service/server.h"
#include "service/service.h"

namespace dbsherlock::service {
namespace {

/// A raw TCP client: exact bytes out, exact bytes in. The Client class
/// would hide the framing this test is about.
class RawConn {
 public:
  ~RawConn() { Close(); }

  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }

  bool SendAll(const std::string& bytes) {
    size_t done = 0;
    while (done < bytes.size()) {
      ssize_t w = ::send(fd_, bytes.data() + done, bytes.size() - done,
                         MSG_NOSIGNAL);
      if (w <= 0) return false;
      done += static_cast<size_t>(w);
    }
    return true;
  }

  void ShutdownWrite() { ::shutdown(fd_, SHUT_WR); }

  /// Reads until EOF or `timeout_ms` of silence; returns the bytes seen.
  std::string ReadToEof(int timeout_ms = 5000) {
    std::string out;
    char chunk[4096];
    for (;;) {
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) break;
      ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) break;
      out.append(chunk, static_cast<size_t>(r));
    }
    return out;
  }

  /// Reads until `n` newline-terminated lines have arrived (or timeout).
  std::string ReadLines(size_t n, int timeout_ms = 5000) {
    std::string out;
    char chunk[4096];
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (static_cast<size_t>(
               std::count(out.begin(), out.end(), '\n')) < n) {
      int left = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count());
      if (left <= 0) break;
      pollfd p{fd_, POLLIN, 0};
      if (::poll(&p, 1, left) <= 0) break;
      ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (r <= 0) break;
      out.append(chunk, static_cast<size_t>(r));
    }
    return out;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// One self-contained daemon stack (volatile store + service + server)
/// in the requested I/O mode. Identical knobs except io_mode, so any
/// response difference is the event loop's fault.
struct Stack {
  std::unique_ptr<DurableModelStore> store;
  std::unique_ptr<Service> service;
  std::unique_ptr<Server> server;

  static Stack Start(IoMode mode, size_t max_connections = 16) {
    Stack s;
    auto store = DurableModelStore::Open({});
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    s.store = std::move(*store);
    Service::Options service_options;
    service_options.store = s.store.get();
    service_options.ingest_workers = 1;
    service_options.diagnosis_workers = 1;
    s.service = std::make_unique<Service>(service_options);
    Server::Options server_options;
    server_options.service = s.service.get();
    server_options.io_mode = mode;
    server_options.handler_threads = 2;
    server_options.max_connections = max_connections;
    auto server = Server::Start(server_options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    s.server = std::move(*server);
    return s;
  }

  int port() const { return server->port(); }

  void Stop() {
    if (server != nullptr) server->Stop();
    if (service != nullptr) service->Stop();
  }
};

/// A deterministic conversation: HELLO, fresh APPENDSEQs, FLUSH (so the
/// replays below observe a settled durable state), a resumed HELLO, an
/// idempotent replay, a parse error, and QUIT. Every response line is a
/// pure function of the script, so the two modes must match bytewise.
const char kScript[] =
    "PING\n"
    "HELLO t0 m0:num,m1:num\n"
    "APPENDSEQ t0 1 1 4,8\n"
    "APPENDSEQ t0 2 2 5,9\n"
    "APPENDSEQ t0 3 3 6,10\n"
    "FLUSH t0\n"
    "HELLO t0 m0:num,m1:num\n"
    "APPENDSEQ t0 2 2 5,9\n"
    "NO_SUCH_VERB at all\n"
    "FLUSH t0\n"
    "QUIT\n";
const size_t kScriptResponses = 11;

/// Sends `segments` (with optional pauses between them) and returns all
/// response bytes until the server closes or goes quiet.
std::string Converse(int port,
                     const std::vector<std::pair<std::string, int>>& segments) {
  RawConn conn;
  EXPECT_TRUE(conn.Connect(port));
  for (const auto& [bytes, sleep_ms] : segments) {
    EXPECT_TRUE(conn.SendAll(bytes));
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }
  std::string out = conn.ReadLines(kScriptResponses);
  out += conn.ReadToEof(200);
  return out;
}

TEST(FleetParityTest, PipelinedScriptIsByteIdenticalAcrossModes) {
  Stack threads = Stack::Start(IoMode::kThreads);
  Stack epoll = Stack::Start(IoMode::kEpoll);
  std::string a = Converse(threads.port(), {{kScript, 0}});
  std::string b = Converse(epoll.port(), {{kScript, 0}});
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("OK pong"), std::string::npos);
  EXPECT_NE(a.find("replayed"), std::string::npos);
  EXPECT_NE(a.find("ERR"), std::string::npos) << "parse error missing";
  threads.Stop();
  epoll.Stop();
}

TEST(FleetParityTest, PartialLineWritesReassembleIdentically) {
  // The same script dribbled in awkward fragments — splits mid-verb,
  // mid-number, and between the '\r'-less line end and the next verb.
  Stack threads = Stack::Start(IoMode::kThreads);
  Stack epoll = Stack::Start(IoMode::kEpoll);
  std::string script(kScript);
  std::vector<std::pair<std::string, int>> segments;
  const size_t kFragment = 7;
  for (size_t at = 0; at < script.size(); at += kFragment) {
    segments.emplace_back(script.substr(at, kFragment), 2);
  }
  std::string whole = Converse(threads.port(), {{script, 0}});
  std::string dribbled = Converse(epoll.port(), segments);
  EXPECT_EQ(whole, dribbled);
  threads.Stop();
  epoll.Stop();
}

TEST(FleetParityTest, HalfClosedPeerStillGetsPipelinedAnswers) {
  // shutdown(SHUT_WR) right after the script: both modes must drain the
  // buffered requests and answer them all before closing (EOF is not an
  // abort).
  for (IoMode mode : {IoMode::kThreads, IoMode::kEpoll}) {
    Stack stack = Stack::Start(mode);
    RawConn conn;
    ASSERT_TRUE(conn.Connect(stack.port()));
    ASSERT_TRUE(conn.SendAll("PING\nPING\nPING\n"));
    conn.ShutdownWrite();
    EXPECT_EQ(conn.ReadToEof(), "OK pong\nOK pong\nOK pong\n")
        << "mode " << static_cast<int>(mode);
    stack.Stop();
  }
}

TEST(FleetParityTest, SlowLorisDoesNotStallOtherClients) {
  // A client dribbling one byte at a time holds a connection open for
  // seconds. In epoll mode that must cost an fd, not a thread: a normal
  // client running alongside finishes its requests at full speed.
  Stack stack = Stack::Start(IoMode::kEpoll);
  std::atomic<bool> loris_ok{false};
  std::thread loris([&] {
    RawConn conn;
    if (!conn.Connect(stack.port())) return;
    const std::string line = "PING\n";
    for (char c : line) {
      if (!conn.SendAll(std::string(1, c))) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    loris_ok = conn.ReadLines(1) == "OK pong\n";
  });

  auto started = std::chrono::steady_clock::now();
  RawConn fast;
  ASSERT_TRUE(fast.Connect(stack.port()));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fast.SendAll("PING\n"));
    ASSERT_EQ(fast.ReadLines(1), "OK pong\n") << "iteration " << i;
  }
  double fast_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  // The loris needs ~750ms just to spell PING; 50 sequential round-trips
  // beside it finish far sooner unless it wedged a handler.
  EXPECT_LT(fast_ms, 500.0);
  loris.join();
  EXPECT_TRUE(loris_ok) << "slow-loris request was dropped, not served";
  stack.Stop();
}

TEST(FleetParityTest, AcceptShedBeyondMaxConnectionsInBothModes) {
  for (IoMode mode : {IoMode::kThreads, IoMode::kEpoll}) {
    Stack stack = Stack::Start(mode, /*max_connections=*/2);
    RawConn a, b;
    ASSERT_TRUE(a.Connect(stack.port()));
    ASSERT_TRUE(a.SendAll("PING\n"));
    ASSERT_EQ(a.ReadLines(1), "OK pong\n");
    ASSERT_TRUE(b.Connect(stack.port()));
    ASSERT_TRUE(b.SendAll("PING\n"));
    ASSERT_EQ(b.ReadLines(1), "OK pong\n");

    // Third connection: shed with a RETRY_AFTER hint and closed, no
    // thread spawned, no silent hang.
    RawConn c;
    ASSERT_TRUE(c.Connect(stack.port()));
    std::string shed = c.ReadToEof();
    EXPECT_NE(shed.find("RETRY_AFTER"), std::string::npos)
        << "mode " << static_cast<int>(mode) << " got: " << shed;

    // Closing a live connection frees its slot — the gauge must track
    // closes, or this accept is shed too and the fleet never recovers.
    a.Close();
    for (int attempt = 0;; ++attempt) {
      RawConn d;
      ASSERT_TRUE(d.Connect(stack.port()));
      ASSERT_TRUE(d.SendAll("PING\n"));
      std::string got = d.ReadLines(1);
      if (got == "OK pong\n") break;
      ASSERT_LT(attempt, 50) << "slot never freed after close: " << got;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stack.Stop();
  }
}

TEST(FleetParityTest, ShortReadWriteFaultScheduleKeepsParity) {
  // Short reads and short writes exercise both modes' partial-I/O loops;
  // the conversation must still come out byte-identical.
  ASSERT_TRUE(common::faultenv::InstallSchedule(
                  "seed=11;srv.recv=short@0.4;srv.send=short@0.4")
                  .ok());
  Stack threads = Stack::Start(IoMode::kThreads);
  Stack epoll = Stack::Start(IoMode::kEpoll);
  std::string a = Converse(threads.port(), {{kScript, 0}});
  std::string b = Converse(epoll.port(), {{kScript, 0}});
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  threads.Stop();
  epoll.Stop();
  ASSERT_TRUE(common::faultenv::InstallSchedule("").ok());
}

}  // namespace
}  // namespace dbsherlock::service
