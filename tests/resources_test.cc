#include "simulator/resources.h"

#include <gtest/gtest.h>

namespace dbsherlock::simulator {
namespace {

ServerConfig DefaultConfig() { return ServerConfig{}; }

TEST(CpuModelTest, IdleWhenNoDemand) {
  CpuState s = SolveCpu(DefaultConfig(), {});
  EXPECT_DOUBLE_EQ(s.total_util, 0.0);
  EXPECT_DOUBLE_EQ(s.idle_frac, 1.0);
  EXPECT_DOUBLE_EQ(s.delay_factor, 1.0);
}

TEST(CpuModelTest, HalfLoad) {
  CpuDemand d;
  d.db_ms = 2000.0;  // 2 of 4 cores
  CpuState s = SolveCpu(DefaultConfig(), d);
  EXPECT_NEAR(s.total_util, 0.5, 1e-9);
  EXPECT_NEAR(s.dbms_util, 0.5, 1e-9);
  EXPECT_NEAR(s.delay_factor, 2.0, 1e-9);
}

TEST(CpuModelTest, OvercommitSplitsProportionally) {
  CpuDemand d;
  d.db_ms = 4000.0;
  d.external_ms = 4000.0;  // 2x overcommit
  CpuState s = SolveCpu(DefaultConfig(), d);
  EXPECT_DOUBLE_EQ(s.total_util, 1.0);
  EXPECT_NEAR(s.dbms_util, 0.5, 1e-9);
  EXPECT_NEAR(s.external_util, 0.5, 1e-9);
  EXPECT_GT(s.delay_factor, 10.0);  // saturated
}

TEST(CpuModelTest, ExternalHogSqueezesDbms) {
  CpuDemand d;
  d.db_ms = 1000.0;
  d.external_ms = 3400.0;  // stress-ng taking 3.4 cores
  CpuState s = SolveCpu(DefaultConfig(), d);
  EXPECT_LT(s.dbms_util, 0.25);  // DBMS cannot get its full core
  EXPECT_GT(s.delay_factor, 5.0);
}

TEST(CpuModelTest, MonotonicDelayInDemand) {
  double prev = 0.0;
  for (double demand : {500.0, 1000.0, 2000.0, 3000.0, 3900.0}) {
    CpuDemand d;
    d.db_ms = demand;
    CpuState s = SolveCpu(DefaultConfig(), d);
    EXPECT_GT(s.delay_factor, prev);
    prev = s.delay_factor;
  }
}

TEST(DiskModelTest, IdleDisk) {
  DiskState s = SolveDisk(DefaultConfig(), {});
  EXPECT_DOUBLE_EQ(s.util, 0.0);
  EXPECT_DOUBLE_EQ(s.delay_factor, 1.0);
  EXPECT_GT(s.io_latency_ms, 0.0);
}

TEST(DiskModelTest, IopsBoundVsBandwidthBound) {
  ServerConfig config = DefaultConfig();
  DiskDemand iops_heavy;
  iops_heavy.read_iops = config.disk_max_iops * 0.9;  // tiny I/Os
  DiskState s1 = SolveDisk(config, iops_heavy);
  EXPECT_NEAR(s1.util, 0.9, 1e-9);

  DiskDemand bw_heavy;
  bw_heavy.write_kb = config.disk_max_kb_per_sec * 0.8;
  bw_heavy.write_iops = 10.0;
  DiskState s2 = SolveDisk(config, bw_heavy);
  EXPECT_NEAR(s2.util, 0.8, 1e-9);
}

TEST(DiskModelTest, QueueGrowsNonlinearlyNearSaturation) {
  ServerConfig config = DefaultConfig();
  DiskDemand half;
  half.read_iops = config.disk_max_iops * 0.5;
  DiskDemand nearly;
  nearly.read_iops = config.disk_max_iops * 0.97;
  double q_half = SolveDisk(config, half).queue_depth;
  double q_nearly = SolveDisk(config, nearly).queue_depth;
  EXPECT_GT(q_nearly, 5.0 * q_half);
}

TEST(NetModelTest, BaseRttWhenIdle) {
  ServerConfig config = DefaultConfig();
  NetState s = SolveNet(config, {});
  EXPECT_DOUBLE_EQ(s.rtt_ms, config.net_base_rtt_ms);
}

TEST(NetModelTest, ExtraRttAdds) {
  NetDemand d;
  d.extra_rtt_ms = 300.0;  // tc netem, the Network Congestion anomaly
  NetState s = SolveNet(DefaultConfig(), d);
  EXPECT_GT(s.rtt_ms, 300.0);
}

TEST(NetModelTest, CongestionInflatesRtt) {
  ServerConfig config = DefaultConfig();
  NetDemand d;
  d.send_kb = config.net_max_kb_per_sec * 0.9;
  NetState s = SolveNet(config, d);
  EXPECT_NEAR(s.util, 0.9, 1e-9);
  EXPECT_GT(s.rtt_ms, 5.0 * config.net_base_rtt_ms);
}

TEST(LockModelTest, NoContentionWithoutLoad) {
  LockState s = SolveLocks({});
  EXPECT_DOUBLE_EQ(s.waits_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(s.wait_ms_per_txn, 0.0);
}

TEST(LockModelTest, SingleTransactionNeverConflicts) {
  LockDemand d;
  d.tps = 100.0;
  d.locks_per_txn = 10.0;
  d.hold_ms = 1.0;
  d.hotspot_fraction = 0.9;
  d.concurrency = 1.0;
  LockState s = SolveLocks(d);
  EXPECT_DOUBLE_EQ(s.waits_per_sec, 0.0);
}

TEST(LockModelTest, HotspotDrivesContention) {
  LockDemand mild;
  mild.tps = 900.0;
  mild.locks_per_txn = 10.0;
  mild.hold_ms = 1.0;
  mild.hotspot_fraction = 0.02;
  mild.concurrency = 10.0;
  LockDemand hot = mild;
  hot.hotspot_fraction = 0.3;
  EXPECT_GT(SolveLocks(hot).wait_ms_per_txn,
            20.0 * SolveLocks(mild).wait_ms_per_txn);
}

TEST(LockModelTest, ConcurrencyDrivesContention) {
  LockDemand low;
  low.tps = 900.0;
  low.locks_per_txn = 10.0;
  low.hold_ms = 1.0;
  low.hotspot_fraction = 0.1;
  low.concurrency = 5.0;
  LockDemand high = low;
  high.concurrency = 100.0;
  EXPECT_GT(SolveLocks(high).wait_ms_per_txn,
            SolveLocks(low).wait_ms_per_txn);
}

TEST(LockModelTest, DeadlocksRareAndQuadratic) {
  LockDemand d;
  d.tps = 900.0;
  d.locks_per_txn = 14.0;
  d.hold_ms = 1.2;
  d.hotspot_fraction = 0.25;
  d.concurrency = 50.0;
  LockState s = SolveLocks(d);
  EXPECT_GT(s.deadlocks_per_sec, 0.0);
  EXPECT_LT(s.deadlocks_per_sec, s.waits_per_sec);
}

TEST(BufferPoolTest, SteadyStateModerateMissRate) {
  BufferPoolModel pool(DefaultConfig());
  BufferPoolModel::TickInput in;
  in.logical_reads = 50000.0;
  in.pages_dirtied = 1000.0;
  BufferPoolModel::TickOutput out;
  for (int i = 0; i < 20; ++i) out = pool.Update(in);
  EXPECT_GT(out.hit_rate, 0.5);
  EXPECT_LT(out.hit_rate, 1.0);
  EXPECT_GT(out.pages_read, 0.0);
}

TEST(BufferPoolTest, ScanPollutionRaisesMissRate) {
  BufferPoolModel pool(DefaultConfig());
  BufferPoolModel::TickInput in;
  in.logical_reads = 50000.0;
  in.pages_dirtied = 500.0;
  BufferPoolModel::TickOutput before;
  for (int i = 0; i < 10; ++i) before = pool.Update(in);
  // A mysqldump-style sequential scan floods the pool.
  BufferPoolModel::TickInput scan = in;
  scan.scan_pages = 60000.0;
  BufferPoolModel::TickOutput during;
  for (int i = 0; i < 5; ++i) during = pool.Update(scan);
  EXPECT_GT(during.miss_rate, before.miss_rate);
  // Pollution decays after the scan stops.
  BufferPoolModel::TickOutput after;
  for (int i = 0; i < 40; ++i) after = pool.Update(in);
  EXPECT_LT(after.miss_rate, during.miss_rate);
}

TEST(BufferPoolTest, DirtyPagesDrainedByFlusher) {
  BufferPoolModel pool(DefaultConfig());
  BufferPoolModel::TickInput heavy;
  heavy.logical_reads = 1000.0;
  heavy.pages_dirtied = 10000.0;
  for (int i = 0; i < 50; ++i) pool.Update(heavy);
  double peak = pool.dirty_pages();
  BufferPoolModel::TickInput quiet;
  quiet.logical_reads = 1000.0;
  quiet.pages_dirtied = 0.0;
  for (int i = 0; i < 100; ++i) pool.Update(quiet);
  EXPECT_LT(pool.dirty_pages(), peak);
}

TEST(BufferPoolTest, ForceFlushDrainsFast) {
  BufferPoolModel pool(DefaultConfig());
  BufferPoolModel::TickInput in;
  in.pages_dirtied = 20000.0;
  for (int i = 0; i < 10; ++i) pool.Update(in);
  BufferPoolModel::TickInput flush;
  flush.force_flush = true;
  BufferPoolModel::TickOutput out = pool.Update(flush);
  EXPECT_GT(out.pages_flushed,
            DefaultConfig().max_flush_pages_per_sec * 1.5);
}

TEST(RedoLogTest, AccumulatesAndReportsFlushes) {
  RedoLogModel log(DefaultConfig());
  RedoLogModel::TickOutput out = log.Update(3200.0, false);
  EXPECT_DOUBLE_EQ(out.kb_written, 3200.0);
  EXPECT_GE(out.flushes, 1.0);
  EXPECT_FALSE(out.rotated);
  EXPECT_GT(out.pending_kb, 0.0);
}

TEST(RedoLogTest, ForcedRotationStalls) {
  RedoLogModel log(DefaultConfig());
  log.Update(1000.0, false);
  RedoLogModel::TickOutput out = log.Update(1000.0, true);
  EXPECT_TRUE(out.rotated);
  EXPECT_GT(out.stall_ms, 0.0);
  EXPECT_DOUBLE_EQ(out.pending_kb, 0.0);
}

TEST(RedoLogTest, FullLogRotatesOnItsOwn) {
  ServerConfig config = DefaultConfig();
  config.redo_log_kb = 1000.0;
  RedoLogModel log(config);
  bool rotated = false;
  for (int i = 0; i < 20 && !rotated; ++i) {
    rotated = log.Update(100.0, false).rotated;
  }
  EXPECT_TRUE(rotated);
}

TEST(RedoLogTest, NoWritesNoFlushes) {
  RedoLogModel log(DefaultConfig());
  EXPECT_DOUBLE_EQ(log.Update(0.0, false).flushes, 0.0);
}

}  // namespace
}  // namespace dbsherlock::simulator
