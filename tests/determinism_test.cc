// The parallel diagnosis engine must be bit-identical to the serial path:
// ParallelMap merges in index order and every per-attribute / per-model
// computation is independent, so thread count may change wall-clock time
// but never a diagnosis. These tests pin that contract across seeds.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model_repository.h"
#include "core/predicate_generator.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock {
namespace {

const std::vector<uint64_t>& Seeds() {
  static const std::vector<uint64_t> seeds = {42, 7, 1234};
  return seeds;
}

simulator::GeneratedDataset MakeDataset(uint64_t seed,
                                        simulator::AnomalyKind kind) {
  simulator::DatasetGenOptions gen;
  gen.seed = seed;
  return simulator::GenerateAnomalyDataset(gen, kind, 60.0);
}

void ExpectSameDiagnoses(const core::PredicateGenResult& a,
                         const core::PredicateGenResult& b) {
  ASSERT_EQ(a.predicates.size(), b.predicates.size());
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    const core::AttributeDiagnosis& da = a.predicates[i];
    const core::AttributeDiagnosis& db = b.predicates[i];
    EXPECT_EQ(da.predicate.attribute, db.predicate.attribute) << i;
    EXPECT_EQ(da.predicate.type, db.predicate.type) << i;
    EXPECT_EQ(da.predicate.low, db.predicate.low) << i;
    EXPECT_EQ(da.predicate.high, db.predicate.high) << i;
    EXPECT_EQ(da.predicate.categories, db.predicate.categories) << i;
    // Exact equality on purpose: the parallel path must not even reorder
    // floating-point accumulation.
    EXPECT_EQ(da.separation_power, db.separation_power) << i;
    EXPECT_EQ(da.partition_separation_power, db.partition_separation_power)
        << i;
    EXPECT_EQ(da.normalized_mean_diff, db.normalized_mean_diff) << i;
  }
}

TEST(DeterminismTest, GeneratePredicatesIdenticalAcrossParallelism) {
  const std::vector<simulator::AnomalyKind> kinds = {
      simulator::AnomalyKind::kWorkloadSpike,
      simulator::AnomalyKind::kIoSaturation,
      simulator::AnomalyKind::kLockContention,
  };
  for (uint64_t seed : Seeds()) {
    for (simulator::AnomalyKind kind : kinds) {
      simulator::GeneratedDataset ds = MakeDataset(seed, kind);
      core::PredicateGenOptions serial;
      serial.parallelism = 1;
      core::PredicateGenResult base =
          core::GeneratePredicates(ds.data, ds.regions, serial);
      EXPECT_FALSE(base.predicates.empty())
          << "seed " << seed << " produced no predicates; test is vacuous";
      for (size_t lanes : {size_t{4}, size_t{0}, size_t{13}}) {
        core::PredicateGenOptions parallel = serial;
        parallel.parallelism = lanes;
        core::PredicateGenResult out =
            core::GeneratePredicates(ds.data, ds.regions, parallel);
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " lanes=" + std::to_string(lanes));
        ExpectSameDiagnoses(base, out);
      }
    }
  }
}

TEST(DeterminismTest, RankIdenticalAcrossParallelism) {
  for (uint64_t seed : Seeds()) {
    // A repository over every anomaly class, two instances each, unmerged:
    // maximal attribute overlap between models, i.e. maximal cache sharing.
    core::ModelRepository repo;
    core::PredicateGenOptions options;
    options.parallelism = 1;
    for (uint64_t round = 0; round < 2; ++round) {
      for (simulator::AnomalyKind kind : simulator::AllAnomalyKinds()) {
        simulator::GeneratedDataset train = MakeDataset(seed + round, kind);
        repo.AddUnmerged(eval::BuildCausalModel(
            train, simulator::AnomalyKindName(kind), options));
      }
    }

    simulator::GeneratedDataset test =
        MakeDataset(seed + 99, simulator::AnomalyKind::kNetworkCongestion);
    tsdata::LabeledRows rows = SplitRows(test.data, test.regions);

    std::vector<core::RankedCause> base =
        repo.Rank(test.data, rows, options, -1e9);
    EXPECT_FALSE(base.empty());
    for (size_t lanes : {size_t{4}, size_t{0}}) {
      core::PredicateGenOptions parallel = options;
      parallel.parallelism = lanes;
      std::vector<core::RankedCause> out =
          repo.Rank(test.data, rows, parallel, -1e9);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " lanes=" + std::to_string(lanes));
      ASSERT_EQ(base.size(), out.size());
      for (size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].cause, out[i].cause) << i;
        EXPECT_EQ(base[i].confidence, out[i].confidence) << i;
        EXPECT_EQ(base[i].suggested_action, out[i].suggested_action) << i;
      }
    }
  }
}

}  // namespace
}  // namespace dbsherlock
