#include "viz/incident_report.h"

#include <gtest/gtest.h>

#include "core/explainer.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::viz {
namespace {

struct Fixture {
  simulator::GeneratedDataset run;
  core::Explanation explanation;
};

const Fixture& SharedFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    simulator::DatasetGenOptions options;
    options.seed = 60;
    f->run = simulator::GenerateAnomalyDataset(
        options, simulator::AnomalyKind::kIoSaturation, 60.0);
    core::Explainer sherlock;
    core::Explanation first =
        sherlock.Diagnose(f->run.data, f->run.regions);
    sherlock.AcceptDiagnosis("I/O Saturation", first, "kill stress job");
    f->explanation = sherlock.Diagnose(f->run.data, f->run.regions);
    return f;
  }();
  return *fixture;
}

TEST(IncidentReportTest, ContainsAllSections) {
  const Fixture& f = SharedFixture();
  auto html = RenderIncidentReport(f.run.data, f.run.regions, f.explanation);
  ASSERT_TRUE(html.ok()) << html.status().ToString();
  EXPECT_NE(html->find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html->find("Abnormal region"), std::string::npos);
  EXPECT_NE(html->find("Explanatory predicates"), std::string::npos);
  EXPECT_NE(html->find("Likely causes"), std::string::npos);
  EXPECT_NE(html->find("I/O Saturation"), std::string::npos);
  EXPECT_NE(html->find("kill stress job"), std::string::npos);
  // Headline chart plus at least one attribute chart, as inline SVG.
  size_t first_svg = html->find("<svg ");
  ASSERT_NE(first_svg, std::string::npos);
  EXPECT_NE(html->find("<svg ", first_svg + 1), std::string::npos);
  EXPECT_NE(html->find("abnormal-region"), std::string::npos);
}

TEST(IncidentReportTest, PredicateRowsPresent) {
  const Fixture& f = SharedFixture();
  auto html = RenderIncidentReport(f.run.data, f.run.regions, f.explanation);
  ASSERT_TRUE(html.ok());
  ASSERT_FALSE(f.explanation.predicates.empty());
  // The top predicate's attribute appears in a table cell.
  EXPECT_NE(
      html->find(f.explanation.predicates[0].predicate.attribute),
      std::string::npos);
}

TEST(IncidentReportTest, MaxPredicatesRespected) {
  const Fixture& f = SharedFixture();
  IncidentReportOptions options;
  options.max_predicates = 2;
  auto html =
      RenderIncidentReport(f.run.data, f.run.regions, f.explanation, options);
  ASSERT_TRUE(html.ok());
  size_t count = 0;
  for (size_t pos = html->find("<code>"); pos != std::string::npos;
       pos = html->find("<code>", pos + 1)) {
    ++count;
  }
  EXPECT_LE(count, 2u);
}

TEST(IncidentReportTest, EscapesUserStrings) {
  const Fixture& f = SharedFixture();
  core::Explanation hostile = f.explanation;
  hostile.causes.clear();
  hostile.causes.push_back(
      {"<script>alert(1)</script>", 55.0, "use <b>bold</b> fixes"});
  auto html = RenderIncidentReport(f.run.data, f.run.regions, hostile);
  ASSERT_TRUE(html.ok());
  EXPECT_EQ(html->find("<script>"), std::string::npos);
  EXPECT_NE(html->find("&lt;script&gt;"), std::string::npos);
  EXPECT_EQ(html->find("<b>bold</b>"), std::string::npos);
}

TEST(IncidentReportTest, MissingHeadlineAttributeSkipsChart) {
  const Fixture& f = SharedFixture();
  IncidentReportOptions options;
  options.headline_attribute = "no_such_metric";
  auto html =
      RenderIncidentReport(f.run.data, f.run.regions, f.explanation, options);
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html->find("<svg "), std::string::npos);  // predicate charts
}

TEST(IncidentReportTest, TinyDatasetFails) {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {1.0}).ok());
  EXPECT_FALSE(RenderIncidentReport(d, {}, {}).ok());
}

TEST(IncidentReportTest, EmptyExplanationStillRenders) {
  const Fixture& f = SharedFixture();
  auto html = RenderIncidentReport(f.run.data, f.run.regions, {});
  ASSERT_TRUE(html.ok());
  EXPECT_NE(html->find("No attribute separates"), std::string::npos);
}

}  // namespace
}  // namespace dbsherlock::viz
