// Fuzzed parity suite for zone-map pushdown scans (DESIGN.md §14): over
// random time ranges and attribute-bound predicates — against histories
// mixing sealed segments, an active tail, NaN and ±Inf cells — a pruned
// scan must return bit-identical rows to the prune-free full decode, at
// every decode parallelism, and a row-capped scan must be an exact
// prefix of the uncapped one with an exact `truncated` flag.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "store/tenant_store.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {
namespace {

using tsdata::AttributeKind;
using tsdata::Dataset;
using tsdata::Schema;

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Schema FuzzSchema() {
  return Schema({{"cpu", AttributeKind::kNumeric},
                 {"io", AttributeKind::kNumeric},
                 {"spike", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectBitIdentical(const Dataset& a, const Dataset& b,
                        const std::string& context) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << context;
  for (size_t row = 0; row < a.num_rows(); ++row) {
    ASSERT_TRUE(BitEqual(a.timestamp(row), b.timestamp(row)))
        << context << " timestamp row " << row;
    for (size_t col = 0; col < a.schema().num_attributes(); ++col) {
      if (a.schema().attribute(col).kind == AttributeKind::kNumeric) {
        ASSERT_TRUE(BitEqual(a.column(col).numeric(row),
                             b.column(col).numeric(row)))
            << context << " col " << col << " row " << row;
      } else {
        const tsdata::Column& ca = a.column(col);
        const tsdata::Column& cb = b.column(col);
        ASSERT_EQ(ca.CategoryName(ca.code(row)),
                  cb.CategoryName(cb.code(row)))
            << context << " col " << col << " row " << row;
      }
    }
  }
}

/// Builds a hostile history: ~seal_rows-sized sealed segments plus an
/// unsealed active tail; per-segment value regimes (so zones actually
/// discriminate), NaN runs, and whole all-NaN / all-Inf stretches.
std::unique_ptr<TenantStore> BuildStore(const std::string& dir,
                                        uint64_t seed, size_t rows,
                                        double* first_ts, double* last_ts) {
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  TenantStore::Options options;
  options.dir = dir;
  options.schema = FuzzSchema();
  options.seal_rows = 16;
  options.fsync_on_seal = false;
  auto opened = TenantStore::Open(options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  auto store = std::move(*opened);

  common::Pcg32 rng(seed);
  static const char* kModes[] = {"read", "write", "idle"};
  double ts = rng.NextDouble(0.0, 10.0);
  double regime = 0.0;  // shifts every segment so zones differ
  for (size_t i = 0; i < rows; ++i) {
    if (i % options.seal_rows == 0) regime = rng.NextDouble(0.0, 1000.0);
    ts += rng.NextDouble(0.1, 2.0);
    double cpu = regime + rng.NextDouble(0.0, 50.0);
    double io = rng.NextBernoulli(0.1) ? kInf : rng.NextGaussian(0.0, 10.0);
    double spike = rng.NextBernoulli(0.5) ? kNaN : rng.NextDouble(-5.0, 5.0);
    if ((i / options.seal_rows) % 5 == 3) spike = kNaN;  // all-NaN segment
    if ((i / options.seal_rows) % 7 == 4) io = kInf;     // all-Inf segment
    EXPECT_TRUE(store
                    ->Append(ts, {cpu, io, spike,
                                  std::string(kModes[rng.NextInt(0, 2)])})
                    .ok());
    if (i == 0) *first_ts = ts;
  }
  *last_ts = ts;
  return store;
}

ScanOptions RandomScan(common::Pcg32* rng, double first_ts, double last_ts) {
  ScanOptions options;
  double span = last_ts - first_ts;
  // Time range: infinite, empty-ish, or a random window (possibly past
  // either end of the history).
  if (!rng->NextBernoulli(0.3)) {
    double a = first_ts + span * rng->NextDouble(-0.2, 1.2);
    double b = a + span * rng->NextDouble(0.001, 0.6);
    options.t0 = a;
    options.t1 = b;
  }
  // 0-2 attribute bounds over the numeric columns.
  static const char* kAttrs[] = {"cpu", "io", "spike"};
  int nbounds = rng->NextInt(0, 2);
  for (int b = 0; b < nbounds; ++b) {
    AttributeBound bound;
    bound.attribute = kAttrs[rng->NextInt(0, 2)];
    switch (rng->NextInt(0, 3)) {
      case 0:  // one-sided lower
        bound.lo = rng->NextDouble(-20.0, 1000.0);
        break;
      case 1:  // one-sided upper
        bound.hi = rng->NextDouble(-20.0, 1000.0);
        break;
      case 2: {  // closed interval
        double lo = rng->NextDouble(-20.0, 1000.0);
        bound.lo = lo;
        bound.hi = lo + rng->NextDouble(0.0, 200.0);
        break;
      }
      default:  // interval reaching +Inf, so all-Inf columns stay matched
        bound.lo = rng->NextDouble(0.0, 1000.0);
        bound.hi = kInf;
        break;
    }
    options.bounds.push_back(bound);
  }
  return options;
}

TEST(StorePushdownFuzzTest, PrunedScansAreBitIdenticalToFullDecode) {
  double first_ts = 0.0, last_ts = 0.0;
  auto store =
      BuildStore(testing::TempDir() + "/dbsherlock_pushfuzz_parity",
                 /*seed=*/1234, /*rows=*/200, &first_ts, &last_ts);
  common::Pcg32 rng(77);
  for (int trial = 0; trial < 150; ++trial) {
    ScanOptions pruned_opts = RandomScan(&rng, first_ts, last_ts);
    std::string context = "trial " + std::to_string(trial);
    ScanStats pruned_stats;
    auto pruned = store->ScanWithOptions(pruned_opts, &pruned_stats);
    ASSERT_TRUE(pruned.ok()) << context << ": "
                             << pruned.status().ToString();
    ScanOptions full_opts = pruned_opts;
    full_opts.prune = false;
    ScanStats full_stats;
    auto full = store->ScanWithOptions(full_opts, &full_stats);
    ASSERT_TRUE(full.ok()) << context;
    ExpectBitIdentical(*full, *pruned, context);
    // Pruning never decodes more than the full scan, and every sealed
    // segment is accounted for exactly once.
    EXPECT_LE(pruned_stats.segments_decoded, full_stats.segments_decoded)
        << context;
    EXPECT_EQ(pruned_stats.segments_total,
              pruned_stats.segments_skipped_time +
                  pruned_stats.segments_skipped_zone +
                  pruned_stats.segments_decoded)
        << context;
    EXPECT_EQ(full_stats.segments_decoded, full_stats.segments_total)
        << context;
  }
}

TEST(StorePushdownFuzzTest, ScansAreBitIdenticalAcrossParallelism) {
  double first_ts = 0.0, last_ts = 0.0;
  auto store =
      BuildStore(testing::TempDir() + "/dbsherlock_pushfuzz_threads",
                 /*seed=*/4321, /*rows=*/200, &first_ts, &last_ts);
  common::Pcg32 rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    ScanOptions serial_opts = RandomScan(&rng, first_ts, last_ts);
    serial_opts.parallelism = 1;
    ScanStats serial_stats;
    auto serial = store->ScanWithOptions(serial_opts, &serial_stats);
    ASSERT_TRUE(serial.ok()) << trial;
    for (size_t lanes : {2u, 8u}) {
      ScanOptions par_opts = serial_opts;
      par_opts.parallelism = lanes;
      ScanStats par_stats;
      auto parallel = store->ScanWithOptions(par_opts, &par_stats);
      ASSERT_TRUE(parallel.ok()) << trial;
      ExpectBitIdentical(*serial, *parallel,
                         "trial " + std::to_string(trial) + " lanes " +
                             std::to_string(lanes));
      EXPECT_EQ(serial_stats.segments_decoded, par_stats.segments_decoded);
    }
  }
}

TEST(StorePushdownFuzzTest, CappedScansArePrefixesWithExactTruncation) {
  double first_ts = 0.0, last_ts = 0.0;
  auto store =
      BuildStore(testing::TempDir() + "/dbsherlock_pushfuzz_cap",
                 /*seed=*/555, /*rows=*/150, &first_ts, &last_ts);
  common::Pcg32 rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    ScanOptions opts = RandomScan(&rng, first_ts, last_ts);
    ScanStats uncapped_stats;
    auto uncapped = store->ScanWithOptions(opts, &uncapped_stats);
    ASSERT_TRUE(uncapped.ok()) << trial;
    EXPECT_FALSE(uncapped_stats.truncated) << trial;
    ScanOptions capped_opts = opts;
    capped_opts.max_rows =
        static_cast<size_t>(rng.NextInt(1, 40));
    ScanStats capped_stats;
    auto capped = store->ScanWithOptions(capped_opts, &capped_stats);
    ASSERT_TRUE(capped.ok()) << trial;
    size_t expect_rows =
        std::min(capped_opts.max_rows, uncapped->num_rows());
    ASSERT_EQ(capped->num_rows(), expect_rows) << trial;
    EXPECT_EQ(capped_stats.truncated,
              uncapped->num_rows() > capped_opts.max_rows)
        << trial;
    for (size_t i = 0; i < expect_rows; ++i) {
      ASSERT_TRUE(BitEqual(capped->timestamp(i), uncapped->timestamp(i)))
          << "trial " << trial << " row " << i;
    }
  }
}

}  // namespace
}  // namespace dbsherlock::store
