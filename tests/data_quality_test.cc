#include "tsdata/data_quality.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace dbsherlock::tsdata {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

Dataset CleanDataset(size_t rows = 20) {
  Dataset d(Schema({{"cpu", AttributeKind::kNumeric},
                    {"mode", AttributeKind::kCategorical}}));
  for (size_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(d.AppendRow(static_cast<double>(i),
                            {0.5 + 0.01 * static_cast<double>(i % 7),
                             std::string(i % 2 == 0 ? "a" : "b")})
                    .ok());
  }
  return d;
}

TEST(DataQualityTest, CleanDatasetAuditsClean) {
  auto report = AuditDataset(CleanDataset());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean());
  EXPECT_TRUE(report->timestamps_monotonic);
  EXPECT_EQ(report->UnusableAttributes().size(), 0u);
}

TEST(DataQualityTest, AuditCountsBadCells) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {1.0}).ok());
  ASSERT_TRUE(d.AppendRow(1, {kNan}).ok());
  ASSERT_TRUE(d.AppendRow(2, {kInf}).ok());
  ASSERT_TRUE(d.AppendRow(3, {-kInf}).ok());
  ASSERT_TRUE(d.AppendRow(4, {2.0}).ok());
  auto report = AuditDataset(d);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->attributes.size(), 1u);
  const AttributeQuality& q = report->attributes[0];
  EXPECT_EQ(q.nan_count, 1u);
  EXPECT_EQ(q.inf_count, 2u);
  EXPECT_DOUBLE_EQ(q.finite_fraction, 2.0 / 5.0);
  EXPECT_FALSE(q.usable);  // 40% finite < default 75%
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->UnusableAttributes(), std::vector<std::string>{"v"});
}

TEST(DataQualityTest, AuditDetectsStuckRuns) {
  QualityOptions options;
  options.stuck_run_threshold = 5;
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.AppendRow(i, {static_cast<double>(i)}).ok());
  }
  for (int i = 4; i < 12; ++i) {
    ASSERT_TRUE(d.AppendRow(i, {3.25}).ok());  // frozen for 8 rows
  }
  auto report = AuditDataset(d, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->attributes[0].stuck_count, 8u);
  EXPECT_EQ(report->attributes[0].longest_stuck_run, 8u);
}

TEST(DataQualityTest, AuditDetectsTimestampDisorder) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRowUnchecked(5, {1.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(3, {1.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(3, {1.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(kNan, {1.0}).ok());
  auto report = AuditDataset(d);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->timestamps_monotonic);
  EXPECT_EQ(report->out_of_order_timestamps, 1u);
  EXPECT_EQ(report->duplicate_timestamps, 1u);
  EXPECT_EQ(report->non_finite_timestamps, 1u);
}

TEST(DataQualityTest, RepairOfCleanDatasetIsIdentity) {
  Dataset d = CleanDataset();
  auto repaired = RepairDataset(d);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(repaired->summary.total_changes(), 0u);
  ASSERT_EQ(repaired->data.num_rows(), d.num_rows());
  for (size_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(repaired->data.timestamp(r), d.timestamp(r));
    EXPECT_EQ(repaired->data.column(0).numeric(r), d.column(0).numeric(r));
    EXPECT_EQ(repaired->data.column(1).code(r), d.column(1).code(r));
  }
}

TEST(DataQualityTest, RepairSortsDedupesAndDropsBadTimestamps) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRowUnchecked(2, {20.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(0, {0.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(1, {10.0}).ok());
  ASSERT_TRUE(d.AppendRowUnchecked(1, {99.0}).ok());  // duplicate, loses
  ASSERT_TRUE(d.AppendRowUnchecked(kNan, {5.0}).ok());
  auto repaired = RepairDataset(d);
  ASSERT_TRUE(repaired.ok());
  ASSERT_EQ(repaired->data.num_rows(), 3u);
  EXPECT_TRUE(repaired->data.TimestampsSorted());
  EXPECT_EQ(repaired->data.timestamp(0), 0.0);
  EXPECT_EQ(repaired->data.column(0).numeric(1), 10.0);  // first wins
  EXPECT_EQ(repaired->data.column(0).numeric(2), 20.0);
  EXPECT_EQ(repaired->summary.rows_dropped_non_finite_ts, 1u);
  EXPECT_EQ(repaired->summary.rows_dropped_duplicate_ts, 1u);
  EXPECT_GT(repaired->summary.rows_reordered, 0u);
}

TEST(DataQualityTest, RepairInterpolatesShortGapsAndMasksInf) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {1.0}).ok());
  ASSERT_TRUE(d.AppendRow(1, {kNan}).ok());
  ASSERT_TRUE(d.AppendRow(2, {kInf}).ok());
  ASSERT_TRUE(d.AppendRow(3, {4.0}).ok());
  auto repaired = RepairDataset(d);
  ASSERT_TRUE(repaired.ok());
  const Column& v = repaired->data.column(0);
  EXPECT_DOUBLE_EQ(v.numeric(1), 2.0);  // linear bridge 1 -> 4
  EXPECT_DOUBLE_EQ(v.numeric(2), 3.0);
  EXPECT_EQ(repaired->summary.cells_masked_inf, 1u);
  EXPECT_EQ(repaired->summary.cells_interpolated, 2u);
}

TEST(DataQualityTest, RepairLeavesLongGapsNanAndHoldsEdges) {
  QualityOptions options;
  options.max_interpolate_gap = 2;
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {kNan}).ok());  // leading edge: hold
  ASSERT_TRUE(d.AppendRow(1, {5.0}).ok());
  ASSERT_TRUE(d.AppendRow(2, {kNan}).ok());
  ASSERT_TRUE(d.AppendRow(3, {kNan}).ok());
  ASSERT_TRUE(d.AppendRow(4, {kNan}).ok());  // gap of 3 > limit 2
  ASSERT_TRUE(d.AppendRow(5, {9.0}).ok());
  auto repaired = RepairDataset(d, options);
  ASSERT_TRUE(repaired.ok());
  const Column& v = repaired->data.column(0);
  EXPECT_DOUBLE_EQ(v.numeric(0), 5.0);  // edge held at nearest finite
  EXPECT_TRUE(std::isnan(v.numeric(2)));
  EXPECT_TRUE(std::isnan(v.numeric(3)));
  EXPECT_TRUE(std::isnan(v.numeric(4)));
  EXPECT_EQ(repaired->summary.cells_left_nan, 3u);
}

TEST(DataQualityTest, RepairMasksIsolatedSpikesButKeepsEpisodes) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int i = 0; i < 40; ++i) {
    double v = (i % 2 == 0) ? 10.0 : 11.0;  // noisy baseline, MAD > 0
    if (i == 10) v = 5000.0;                // isolated collector spike
    if (i >= 20 && i < 28) v = 5000.0;      // genuine 8-sample episode
    ASSERT_TRUE(d.AppendRow(i, {v}).ok());
  }
  QualityOptions despike;  // spike masking is opt-in
  despike.max_spike_run = 2;
  auto repaired = RepairDataset(d, despike);
  ASSERT_TRUE(repaired.ok());
  const Column& v = repaired->data.column(0);
  // The spike was masked and bridged by its neighbors; the episode — a
  // real anomaly holding its level — survived repair untouched.
  EXPECT_LT(v.numeric(10), 100.0);
  for (int i = 20; i < 28; ++i) {
    EXPECT_DOUBLE_EQ(v.numeric(i), 5000.0);
  }
  EXPECT_EQ(repaired->summary.cells_masked_spike, 1u);
  EXPECT_EQ(repaired->summary.cells_interpolated, 1u);

  // Default options never de-spike: repair stays invariant-restoring and
  // the wild-but-genuine sample survives bit-identically.
  auto untouched = RepairDataset(d);
  ASSERT_TRUE(untouched.ok());
  EXPECT_DOUBLE_EQ(untouched->data.column(0).numeric(10), 5000.0);
  EXPECT_EQ(untouched->summary.cells_masked_spike, 0u);
  EXPECT_EQ(untouched->summary.total_changes(), 0u);
}

TEST(DataQualityTest, InvalidOptionsAreRejectedNotThrown) {
  QualityOptions bad;
  bad.min_usable_fraction = 1.5;
  EXPECT_EQ(AuditDataset(CleanDataset(), bad).status().code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(RepairDataset(CleanDataset(), bad).status().code(),
            common::StatusCode::kInvalidArgument);
  QualityOptions bad2;
  bad2.outlier_zscore = 0.0;
  EXPECT_FALSE(AuditDataset(CleanDataset(), bad2).ok());
}

TEST(DataQualityTest, ReportSerializesToJson) {
  auto report = AuditDataset(CleanDataset());
  ASSERT_TRUE(report.ok());
  common::JsonValue json = report->ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_TRUE(json.Find("clean")->as_bool());
  EXPECT_EQ(json.Find("attributes")->as_array().size(), 2u);
}

}  // namespace
}  // namespace dbsherlock::tsdata
