// Randomized property tests over the partition-space pipeline and the
// serialization layers: invariants that must hold for *any* input, checked
// across many seeded random instances.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/csv.h"
#include "common/json.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/partition_space.h"
#include "core/predicate_generator.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock {
namespace {

using core::PartitionLabel;
using core::PartitionSpace;

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

PartitionSpace RandomLabeledSpace(common::Pcg32* rng, size_t size) {
  PartitionSpace space =
      PartitionSpace::Numeric(0.0, static_cast<double>(size), size);
  for (size_t j = 0; j < size; ++j) {
    switch (rng->NextBounded(3)) {
      case 0:
        space.set_label(j, PartitionLabel::kEmpty);
        break;
      case 1:
        space.set_label(j, PartitionLabel::kNormal);
        break;
      default:
        space.set_label(j, PartitionLabel::kAbnormal);
        break;
    }
  }
  return space;
}

TEST_P(SeededProperty, FilteringOnlyEverBlanksPartitions) {
  common::Pcg32 rng(GetParam(), 1);
  for (int trial = 0; trial < 20; ++trial) {
    size_t size = 3 + rng.NextBounded(60);
    PartitionSpace space = RandomLabeledSpace(&rng, size);
    std::vector<PartitionLabel> before = space.labels();
    FilterPartitions(&space);
    for (size_t j = 0; j < size; ++j) {
      // A partition either keeps its label or becomes Empty — filtering
      // never invents Normal/Abnormal labels and never flips them.
      EXPECT_TRUE(space.label(j) == before[j] ||
                  space.label(j) == PartitionLabel::kEmpty);
    }
  }
}

TEST_P(SeededProperty, RepeatedFilteringIsMonotoneAndTerminates) {
  // The paper applies filtering exactly once (Section 4.3 explicitly
  // rejects incremental application because blanking exposes new
  // conflicting neighbors and the cascade would eat whole runs). The true
  // invariant of re-application is monotonicity: each extra pass can only
  // blank further partitions, and a fixpoint is reached within |space|
  // passes.
  common::Pcg32 rng(GetParam(), 2);
  for (int trial = 0; trial < 10; ++trial) {
    size_t size = 4 + rng.NextBounded(40);
    PartitionSpace space = RandomLabeledSpace(&rng, size);
    size_t prev_nonempty = size + 1;
    for (size_t pass = 0; pass <= size; ++pass) {
      size_t nonempty =
          size - space.CountWithLabel(PartitionLabel::kEmpty);
      ASSERT_LT(nonempty, prev_nonempty + 1);  // never grows
      if (nonempty == prev_nonempty) break;    // fixpoint
      prev_nonempty = nonempty;
      FilterPartitions(&space);
    }
    size_t final_nonempty =
        size - space.CountWithLabel(PartitionLabel::kEmpty);
    EXPECT_LE(final_nonempty, prev_nonempty);
  }
}

TEST_P(SeededProperty, GapFillingLeavesNoEmptiesWhenAnchored) {
  common::Pcg32 rng(GetParam(), 3);
  for (int trial = 0; trial < 20; ++trial) {
    size_t size = 3 + rng.NextBounded(60);
    PartitionSpace space = RandomLabeledSpace(&rng, size);
    bool had_nonempty =
        space.CountWithLabel(PartitionLabel::kNormal) > 0 ||
        space.CountWithLabel(PartitionLabel::kAbnormal) > 0;
    double delta = rng.NextDouble(0.1, 10.0);
    double anchor = rng.NextDouble(0.0, static_cast<double>(size));
    FillPartitionGaps(&space, delta, anchor);
    if (had_nonempty) {
      EXPECT_EQ(space.CountWithLabel(PartitionLabel::kEmpty), 0u);
    } else {
      EXPECT_EQ(space.CountWithLabel(PartitionLabel::kEmpty), size);
    }
  }
}

TEST_P(SeededProperty, GapFillingPreservesNonEmptyLabels) {
  common::Pcg32 rng(GetParam(), 4);
  for (int trial = 0; trial < 20; ++trial) {
    size_t size = 3 + rng.NextBounded(60);
    PartitionSpace space = RandomLabeledSpace(&rng, size);
    std::vector<PartitionLabel> before = space.labels();
    bool has_normal = space.CountWithLabel(PartitionLabel::kNormal) > 0;
    FillPartitionGaps(&space, rng.NextDouble(0.1, 10.0), std::nullopt);
    for (size_t j = 0; j < size; ++j) {
      if (before[j] == PartitionLabel::kEmpty) continue;
      // Pre-labeled partitions never change... except the Section 4.4
      // anchor, which only fires when no Normal partition existed.
      if (has_normal || before[j] == PartitionLabel::kNormal) {
        EXPECT_EQ(space.label(j), before[j]);
      }
    }
  }
}

TEST_P(SeededProperty, LargerDeltaNeverGrowsTheAbnormalSide) {
  common::Pcg32 rng(GetParam(), 5);
  for (int trial = 0; trial < 10; ++trial) {
    size_t size = 5 + rng.NextBounded(50);
    PartitionSpace base = RandomLabeledSpace(&rng, size);
    PartitionSpace small = base;
    PartitionSpace large = base;
    FillPartitionGaps(&small, 0.5, 0.0);
    FillPartitionGaps(&large, 8.0, 0.0);
    EXPECT_LE(large.CountWithLabel(PartitionLabel::kAbnormal),
              small.CountWithLabel(PartitionLabel::kAbnormal));
  }
}

TEST_P(SeededProperty, GeneratedPredicatesAlwaysHavePositivePower) {
  common::Pcg32 rng(GetParam(), 6);
  // Random dataset: some attributes shift, some don't, arbitrary noise.
  tsdata::Schema schema;
  const size_t num_attrs = 4;
  for (size_t a = 0; a < num_attrs; ++a) {
    ASSERT_TRUE(schema
                    .AddAttribute({common::StrFormat("attr%zu", a),
                                   tsdata::AttributeKind::kNumeric})
                    .ok());
  }
  tsdata::Dataset d(schema);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(60, 100);
  std::vector<double> shift(num_attrs);
  std::vector<double> noise(num_attrs);
  for (size_t a = 0; a < num_attrs; ++a) {
    shift[a] = rng.NextDouble(-100.0, 100.0);
    noise[a] = rng.NextDouble(0.5, 20.0);
  }
  for (int t = 0; t < 160; ++t) {
    bool ab = t >= 60 && t < 100;
    std::vector<tsdata::Cell> cells;
    for (size_t a = 0; a < num_attrs; ++a) {
      cells.emplace_back((ab ? shift[a] : 0.0) +
                         rng.NextGaussian(0.0, noise[a]));
    }
    ASSERT_TRUE(d.AppendRow(t, cells).ok());
  }
  core::PredicateGenResult result =
      core::GeneratePredicates(d, regions, {});
  tsdata::LabeledRows rows = SplitRows(d, regions);
  for (const auto& diag : result.predicates) {
    // Whatever was extracted must genuinely separate in the right
    // direction, both on tuples and in its partition space.
    EXPECT_GT(diag.separation_power, 0.0) << diag.predicate.ToString();
    EXPECT_GT(diag.partition_separation_power, 0.0)
        << diag.predicate.ToString();
    EXPECT_GT(diag.normalized_mean_diff, 0.2);
  }
}

TEST_P(SeededProperty, CsvRoundTripRandomTables) {
  common::Pcg32 rng(GetParam(), 7);
  const char pool[] = "abc\",\n\r 'x=%";
  auto random_field = [&]() {
    std::string f;
    size_t len = rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) {
      f += pool[rng.NextBounded(sizeof(pool) - 1)];
    }
    return f;
  };
  for (int trial = 0; trial < 10; ++trial) {
    common::CsvTable table;
    size_t cols = 1 + rng.NextBounded(6);
    for (size_t c = 0; c < cols; ++c) {
      table.header.push_back(common::StrFormat("c%zu", c));
    }
    size_t rows = rng.NextBounded(20);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < cols; ++c) row.push_back(random_field());
      table.rows.push_back(std::move(row));
    }
    auto parsed = common::ParseCsv(common::WriteCsv(table));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->header, table.header);
    EXPECT_EQ(parsed->rows, table.rows);
  }
}

TEST_P(SeededProperty, JsonRoundTripRandomDocuments) {
  common::Pcg32 rng(GetParam(), 8);
  // Random JSON value generator, depth-bounded.
  std::function<common::JsonValue(int)> gen = [&](int depth) {
    uint32_t pick = rng.NextBounded(depth > 3 ? 4u : 6u);
    switch (pick) {
      case 0:
        return common::JsonValue();
      case 1:
        return common::JsonValue(rng.NextBernoulli(0.5));
      case 2:
        return common::JsonValue(rng.NextDouble(-1e6, 1e6));
      case 3: {
        std::string s;
        size_t len = rng.NextBounded(10);
        for (size_t i = 0; i < len; ++i) {
          s += static_cast<char>(32 + rng.NextBounded(95));
        }
        return common::JsonValue(std::move(s));
      }
      case 4: {
        common::JsonValue::Array a;
        size_t len = rng.NextBounded(5);
        for (size_t i = 0; i < len; ++i) a.push_back(gen(depth + 1));
        return common::JsonValue(std::move(a));
      }
      default: {
        common::JsonValue::Object o;
        size_t len = rng.NextBounded(5);
        for (size_t i = 0; i < len; ++i) {
          o[common::StrFormat("k%zu", i)] = gen(depth + 1);
        }
        return common::JsonValue(std::move(o));
      }
    }
  };
  for (int trial = 0; trial < 20; ++trial) {
    common::JsonValue v = gen(0);
    for (int indent : {-1, 2}) {
      auto parsed = common::ParseJson(v.Dump(indent));
      ASSERT_TRUE(parsed.ok()) << v.Dump(indent);
      EXPECT_TRUE(*parsed == v);
    }
  }
}

TEST_P(SeededProperty, DatasetCsvRoundTripRandom) {
  common::Pcg32 rng(GetParam(), 9);
  tsdata::Schema schema;
  ASSERT_TRUE(
      schema.AddAttribute({"num", tsdata::AttributeKind::kNumeric}).ok());
  ASSERT_TRUE(
      schema.AddAttribute({"cat", tsdata::AttributeKind::kCategorical}).ok());
  tsdata::Dataset d(schema);
  size_t rows = 1 + rng.NextBounded(50);
  const char* cats[] = {"a", "b,with comma", "c\"quote", ""};
  for (size_t r = 0; r < rows; ++r) {
    ASSERT_TRUE(d.AppendRow(static_cast<double>(r),
                            {rng.NextDouble(-1e9, 1e9),
                             std::string(cats[rng.NextBounded(4)])})
                    .ok());
  }
  auto round = tsdata::DatasetFromCsv(tsdata::DatasetToCsv(d));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  ASSERT_EQ(round->num_rows(), rows);
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_DOUBLE_EQ(round->column(0).numeric(r), d.column(0).numeric(r));
    EXPECT_EQ(round->column(1).CategoryName(round->column(1).code(r)),
              d.column(1).CategoryName(d.column(1).code(r)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace dbsherlock
