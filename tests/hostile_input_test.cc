// Malformed-input hardening of the CSV ingest path: a hostile file must
// produce a clean Status (never a crash, never a half-built dataset with
// broken invariants), and a mini fuzz loop over random byte mutations of a
// valid file asserts the same for inputs nobody thought to enumerate.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock::tsdata {
namespace {

std::string ValidCsv() {
  return "timestamp,cpu,mode@cat\n"
         "0,0.5,idle\n"
         "1,0.7,busy\n"
         "2,0.9,busy\n"
         "3,0.4,idle\n";
}

struct MalformedCase {
  const char* name;
  std::string text;
  /// Expected parse outcome without allow_unsorted.
  bool ok;
};

TEST(HostileInputTest, MalformedCsvTable) {
  const std::vector<MalformedCase> cases = {
      {"empty_file", "", false},
      {"header_only", "timestamp,cpu\n", true},
      {"missing_timestamp_column", "cpu,mem\n1,2\n", false},
      {"truncated_row", "timestamp,cpu,mem\n0,1,2\n1,3\n", false},
      {"extra_field_row", "timestamp,cpu\n0,1\n1,2,3\n", false},
      {"non_numeric_cell", "timestamp,cpu\n0,fast\n", false},
      {"empty_numeric_cell", "timestamp,cpu\n0,\n", false},
      {"duplicate_columns", "timestamp,cpu,cpu\n0,1,2\n", false},
      {"duplicate_after_cat_strip", "timestamp,cpu,cpu@cat\n0,1,x\n", false},
      {"duplicate_timestamp", "timestamp,cpu\n0,1\n0,2\n", false},
      {"decreasing_timestamp", "timestamp,cpu\n5,1\n3,2\n", false},
      {"nan_timestamp", "timestamp,cpu\nnan,1\n", false},
      {"inf_timestamp", "timestamp,cpu\ninf,1\n", false},
      // NaN/Inf *cells* are data-quality issues, not parse errors: ingest
      // accepts them and the audit/repair pipeline deals with them.
      {"nan_cell", "timestamp,cpu\n0,nan\n1,2\n", true},
      {"inf_cell", "timestamp,cpu\n0,inf\n1,-inf\n", true},
      {"utf8_bom", "\xEF\xBB\xBFtimestamp,cpu\n0,1\n", true},
      {"crlf_line_endings", "timestamp,cpu\r\n0,1\r\n1,2\r\n", true},
      {"quoted_categorical", "timestamp,m@cat\n0,\"a,b\"\n", true},
      {"unterminated_quote", "timestamp,m@cat\n0,\"abc\n", false},
  };
  for (const MalformedCase& c : cases) {
    auto r = DatasetFromCsv(c.text);
    EXPECT_EQ(r.ok(), c.ok) << c.name << ": "
                            << (r.ok() ? "parsed" : r.status().ToString());
  }
}

TEST(HostileInputTest, RejectionsNameTheRow) {
  auto dup = DatasetFromCsv("timestamp,cpu\n0,1\n0,2\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(dup.status().message().find("row 1"), std::string::npos)
      << dup.status().ToString();

  auto cols = DatasetFromCsv("timestamp,cpu,cpu\n");
  ASSERT_FALSE(cols.ok());
  EXPECT_EQ(cols.status().code(), common::StatusCode::kInvalidArgument);
  EXPECT_NE(cols.status().message().find("column 2"), std::string::npos)
      << cols.status().ToString();
}

TEST(HostileInputTest, AllowUnsortedIngestsBrokenTimestamps) {
  const std::string text =
      "timestamp,cpu\n5,1\n3,2\n3,3\nnan,4\n";
  EXPECT_FALSE(DatasetFromCsv(text).ok());

  DatasetCsvOptions options;
  options.allow_unsorted = true;
  auto r = DatasetFromCsv(text, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->num_rows(), 4u);
  EXPECT_FALSE(r->TimestampsSorted());
  EXPECT_TRUE(std::isnan(r->timestamp(3)));
}

TEST(HostileInputTest, NanLiteralsRoundTripThroughCsv) {
  DatasetCsvOptions options;
  options.allow_unsorted = true;
  auto r = DatasetFromCsv("timestamp,v\n0,nan\n1,inf\n2,-inf\n", options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(std::isnan(r->column(0).numeric(0)));
  EXPECT_TRUE(std::isinf(r->column(0).numeric(1)));
  auto again = DatasetFromCsv(DatasetToCsv(*r), options);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(std::isnan(again->column(0).numeric(0)));
  EXPECT_EQ(again->column(0).numeric(2), r->column(0).numeric(2));
}

/// Fuzz: random single/multi-byte mutations of a valid CSV must always
/// yield either a parsed dataset or a clean error Status — never a crash,
/// hang, or sanitizer report (this test is part of the ASan/UBSan sweep).
TEST(HostileInputTest, ByteMutationFuzz) {
  const std::string base = ValidCsv();
  common::Pcg32 fuzz_rng(0xf00d, 7);
  DatasetCsvOptions unsorted;
  unsorted.allow_unsorted = true;
  size_t parsed_count = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = base;
    size_t num_edits = 1 + fuzz_rng.NextBounded(4);
    for (size_t e = 0; e < num_edits; ++e) {
      size_t pos = fuzz_rng.NextBounded(
          static_cast<uint32_t>(mutated.size()));
      switch (fuzz_rng.NextBounded(3)) {
        case 0:  // overwrite with a random byte (any value, incl. NUL)
          mutated[pos] = static_cast<char>(fuzz_rng.NextBounded(256));
          break;
        case 1:  // delete a byte
          mutated.erase(pos, 1);
          break;
        case 2:  // duplicate a byte
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
      if (mutated.empty()) break;
    }
    auto strict = DatasetFromCsv(mutated);
    auto lax = DatasetFromCsv(mutated, unsorted);
    // A dataset that parsed must honor its own invariants.
    if (strict.ok()) {
      ++parsed_count;
      EXPECT_TRUE(strict->TimestampsSorted());
    }
    if (lax.ok()) {
      EXPECT_EQ(lax->num_attributes(), lax->schema().num_attributes());
    }
  }
  // Sanity: some mutations must survive parsing (e.g. digit tweaks),
  // otherwise the fuzz is only exercising the error path.
  EXPECT_GT(parsed_count, 0u);
}

}  // namespace
}  // namespace dbsherlock::tsdata
