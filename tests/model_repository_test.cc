#include "core/model_repository.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

Predicate Gt(const std::string& attr, double low) {
  return Predicate{attr, PredicateType::kGreaterThan, low, 0.0, {}};
}
Predicate Lt(const std::string& attr, double high) {
  return Predicate{attr, PredicateType::kLessThan, 0.0, high, {}};
}

TEST(ModelRepositoryTest, AddMergesSameCause) {
  ModelRepository repo;
  repo.Add({"net", {Gt("a", 10.0), Gt("b", 5.0)}, 1, ""});
  repo.Add({"net", {Gt("a", 20.0)}, 1, ""});
  ASSERT_EQ(repo.size(), 1u);
  const CausalModel* m = repo.Find("net");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->predicates.size(), 1u);  // only "a" is common
  EXPECT_DOUBLE_EQ(m->predicates[0].low, 10.0);
  EXPECT_EQ(m->num_sources, 2);
}

TEST(ModelRepositoryTest, DegenerateMergeKeepsNewModel) {
  ModelRepository repo;
  repo.Add({"net", {Gt("a", 10.0)}, 1, ""});
  // No common attribute: merge would be empty, so the new model replaces.
  repo.Add({"net", {Gt("b", 3.0)}, 1, ""});
  const CausalModel* m = repo.Find("net");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->predicates.size(), 1u);
  EXPECT_EQ(m->predicates[0].attribute, "b");
}

TEST(ModelRepositoryTest, AddUnmergedKeepsDuplicates) {
  ModelRepository repo;
  repo.AddUnmerged({"net", {Gt("a", 10.0)}, 1, ""});
  repo.AddUnmerged({"net", {Gt("a", 20.0)}, 1, ""});
  EXPECT_EQ(repo.size(), 2u);
}

TEST(ModelRepositoryTest, FindMissingReturnsNull) {
  ModelRepository repo;
  EXPECT_EQ(repo.Find("nope"), nullptr);
  EXPECT_TRUE(repo.empty());
}

struct RankData {
  tsdata::Dataset dataset;
  tsdata::LabeledRows rows;
};

RankData MakeRankData() {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(21);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool ab = t >= 100 && t < 150;
    EXPECT_TRUE(
        d.AppendRow(t, {(ab ? 100.0 : 10.0) + rng.NextGaussian()}).ok());
  }
  RankData out{std::move(d), {}};
  out.rows = SplitRows(out.dataset, regions);
  return out;
}

TEST(ModelRepositoryTest, RankOrdersByConfidence) {
  RankData data = MakeRankData();
  ModelRepository repo;
  repo.Add({"correct", {Gt("x", 50.0)}, 1, ""});
  repo.Add({"wrong", {Lt("x", 50.0)}, 1, ""});
  auto ranked = repo.Rank(data.dataset, data.rows, {}, -1e9);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].cause, "correct");
  EXPECT_GT(ranked[0].confidence, ranked[1].confidence);
}

TEST(ModelRepositoryTest, RankAppliesLambdaThreshold) {
  RankData data = MakeRankData();
  ModelRepository repo;
  repo.Add({"correct", {Gt("x", 50.0)}, 1, ""});
  repo.Add({"wrong", {Lt("x", 50.0)}, 1, ""});
  // The paper's lambda: only causes above the threshold are shown.
  auto ranked = repo.Rank(data.dataset, data.rows, {}, 20.0);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].cause, "correct");
}

TEST(ModelRepositoryTest, RankTakesMaxOverUnmergedModels) {
  RankData data = MakeRankData();
  ModelRepository repo;
  repo.AddUnmerged({"cause", {Gt("x", 50.0)}, 1, ""});   // strong
  repo.AddUnmerged({"cause", {Lt("x", 50.0)}, 1, ""});   // weak/negative
  auto ranked = repo.Rank(data.dataset, data.rows, {}, -1e9);
  ASSERT_EQ(ranked.size(), 1u);  // one entry per cause
  EXPECT_GT(ranked[0].confidence, 50.0);
}

TEST(ModelRepositoryTest, RankEmptyRepository) {
  RankData data = MakeRankData();
  ModelRepository repo;
  EXPECT_TRUE(repo.Rank(data.dataset, data.rows, {}, 0.0).empty());
}

}  // namespace
}  // namespace dbsherlock::core
