#include "simulator/fault_injector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

namespace dbsherlock::simulator {
namespace {

tsdata::Dataset MakeTelemetry(size_t rows = 300) {
  tsdata::Dataset d(
      tsdata::Schema({{"cpu", tsdata::AttributeKind::kNumeric},
                      {"latency", tsdata::AttributeKind::kNumeric},
                      {"iops", tsdata::AttributeKind::kNumeric},
                      {"mode", tsdata::AttributeKind::kCategorical}}));
  for (size_t i = 0; i < rows; ++i) {
    double t = static_cast<double>(i);
    EXPECT_TRUE(d.AppendRow(t, {0.3 + 0.1 * std::sin(t / 10.0),
                                5.0 + 0.01 * t,
                                100.0 + static_cast<double>(i % 13),
                                std::string(i % 3 == 0 ? "read" : "write")})
                    .ok());
  }
  return d;
}

bool BitIdentical(const tsdata::Dataset& a, const tsdata::Dataset& b) {
  if (a.num_rows() != b.num_rows()) return false;
  for (size_t r = 0; r < a.num_rows(); ++r) {
    // Compare bit patterns so NaN == NaN and +0 != -0.
    double ta = a.timestamp(r), tb = b.timestamp(r);
    if (std::memcmp(&ta, &tb, sizeof(double)) != 0) return false;
    for (size_t c = 0; c < a.num_attributes(); ++c) {
      if (a.column(c).kind() == tsdata::AttributeKind::kNumeric) {
        double va = a.column(c).numeric(r), vb = b.column(c).numeric(r);
        if (std::memcmp(&va, &vb, sizeof(double)) != 0) return false;
      } else if (a.column(c).code(r) != b.column(c).code(r)) {
        return false;
      }
    }
  }
  return true;
}

TEST(FaultInjectorTest, RateZeroIsIdentity) {
  tsdata::Dataset input = MakeTelemetry();
  FaultInjectorConfig config;
  config.corruption_rate = 0.0;
  config.seed = 99;
  auto faulted = InjectFaults(input, config);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  EXPECT_EQ(faulted->counts.total(), 0u);
  EXPECT_TRUE(BitIdentical(input, faulted->data));
}

TEST(FaultInjectorTest, SameSeedSameConfigIsBitIdentical) {
  tsdata::Dataset input = MakeTelemetry();
  FaultInjectorConfig config;
  config.corruption_rate = 0.08;
  config.seed = 1234;
  auto a = InjectFaults(input, config);
  auto b = InjectFaults(input, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(a->counts.total(), 0u);
  EXPECT_TRUE(BitIdentical(a->data, b->data));

  config.seed = 1235;
  auto c = InjectFaults(input, config);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(BitIdentical(a->data, c->data));
}

TEST(FaultInjectorTest, AllFaultFamiliesFireAtHighRate) {
  tsdata::Dataset input = MakeTelemetry(600);
  FaultInjectorConfig config;
  config.corruption_rate = 0.3;
  config.seed = 7;
  auto faulted = InjectFaults(input, config);
  ASSERT_TRUE(faulted.ok());
  const FaultCounts& counts = faulted->counts;
  EXPECT_GT(counts.dropped_rows, 0u);
  EXPECT_GT(counts.nan_cells, 0u);
  EXPECT_GT(counts.inf_cells, 0u);
  EXPECT_GT(counts.spike_cells, 0u);
  EXPECT_GT(counts.duplicated_rows, 0u);
  EXPECT_GT(counts.out_of_order_rows, 0u);
  EXPECT_GT(counts.clock_skewed_rows, 0u);
  // Episode faults fire per attribute (3 numeric attrs at rate 0.3 is
  // not guaranteed), so only check they are *possible* via a sweep.
  size_t stuck_or_gone = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    config.seed = seed;
    auto f = InjectFaults(input, config);
    ASSERT_TRUE(f.ok());
    stuck_or_gone +=
        f->counts.stuck_attributes + f->counts.disappeared_attributes;
  }
  EXPECT_GT(stuck_or_gone, 0u);
}

TEST(FaultInjectorTest, CorruptionBreaksOrderingInvariant) {
  tsdata::Dataset input = MakeTelemetry(600);
  FaultInjectorConfig config;
  config.corruption_rate = 0.25;
  config.seed = 3;
  auto faulted = InjectFaults(input, config);
  ASSERT_TRUE(faulted.ok());
  ASSERT_GT(faulted->counts.out_of_order_rows +
                faulted->counts.duplicated_rows,
            0u);
  EXPECT_FALSE(faulted->data.TimestampsSorted());
}

TEST(FaultInjectorTest, DisabledFamiliesNeverFire) {
  tsdata::Dataset input = MakeTelemetry();
  FaultInjectorConfig config;
  config.corruption_rate = 0.5;
  config.drop_rows = false;
  config.duplicate_rows = false;
  config.out_of_order_rows = false;
  config.clock_skew = false;
  config.stuck_attributes = false;
  config.attribute_disappearance = false;
  auto faulted = InjectFaults(input, config);
  ASSERT_TRUE(faulted.ok());
  EXPECT_EQ(faulted->counts.dropped_rows, 0u);
  EXPECT_EQ(faulted->counts.duplicated_rows, 0u);
  EXPECT_EQ(faulted->counts.out_of_order_rows, 0u);
  EXPECT_EQ(faulted->counts.clock_skewed_rows, 0u);
  EXPECT_EQ(faulted->counts.stuck_attributes, 0u);
  EXPECT_EQ(faulted->counts.disappeared_attributes, 0u);
  EXPECT_GT(faulted->counts.nan_cells + faulted->counts.inf_cells +
                faulted->counts.spike_cells,
            0u);
  // Row count unchanged: only cell faults remained.
  EXPECT_EQ(faulted->data.num_rows(), input.num_rows());
  EXPECT_TRUE(faulted->data.TimestampsSorted());
}

TEST(FaultInjectorTest, InvalidRateIsRejected) {
  tsdata::Dataset input = MakeTelemetry(10);
  FaultInjectorConfig config;
  config.corruption_rate = 1.5;
  EXPECT_EQ(InjectFaults(input, config).status().code(),
            common::StatusCode::kInvalidArgument);
  config.corruption_rate = -0.1;
  EXPECT_FALSE(InjectFaults(input, config).ok());
  config.corruption_rate = std::nan("");
  EXPECT_FALSE(InjectFaults(input, config).ok());
}

TEST(FaultInjectorTest, CategoricalColumnsSurviveRoundTrip) {
  tsdata::Dataset input = MakeTelemetry();
  FaultInjectorConfig config;
  config.corruption_rate = 0.1;
  auto faulted = InjectFaults(input, config);
  ASSERT_TRUE(faulted.ok());
  const tsdata::Column& mode = faulted->data.column(3);
  ASSERT_EQ(mode.kind(), tsdata::AttributeKind::kCategorical);
  for (size_t r = 0; r < faulted->data.num_rows(); ++r) {
    std::string name = mode.CategoryName(mode.code(r));
    EXPECT_TRUE(name == "read" || name == "write") << name;
  }
}

}  // namespace
}  // namespace dbsherlock::simulator
