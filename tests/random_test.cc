#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace dbsherlock::common {
namespace {

TEST(Pcg32Test, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(Pcg32Test, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, DifferentStreamsDiffer) {
  Pcg32 a(1, 1), b(1, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32Test, NextBoundedStaysInRange) {
  Pcg32 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Pcg32Test, NextBoundedOneAlwaysZero) {
  Pcg32 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(Pcg32Test, NextBoundedCoversAllValues) {
  Pcg32 rng(5);
  std::set<uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32Test, NextIntInclusiveRange) {
  Pcg32 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32Test, NextDoubleInUnitInterval) {
  Pcg32 rng(11);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32Test, GaussianMomentsRoughlyStandard) {
  Pcg32 rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32Test, GaussianScaled) {
  Pcg32 rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Pcg32Test, PoissonMeanMatches) {
  Pcg32 rng(17);
  for (double mean : {0.5, 4.0, 30.0, 200.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.NextPoisson(mean);
    EXPECT_NEAR(sum / n, mean, 0.05 * mean + 0.05) << "mean=" << mean;
  }
}

TEST(Pcg32Test, PoissonNonPositiveMeanIsZero) {
  Pcg32 rng(17);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-5.0), 0);
}

TEST(Pcg32Test, ShufflePreservesElements) {
  Pcg32 rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Pcg32Test, SampleIndicesDistinctAndBounded) {
  Pcg32 rng(29);
  std::vector<size_t> s = rng.SampleIndices(20, 5);
  ASSERT_EQ(s.size(), 5u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
  for (size_t i : s) EXPECT_LT(i, 20u);
}

TEST(Pcg32Test, SampleIndicesAllWhenKExceedsN) {
  Pcg32 rng(29);
  std::vector<size_t> s = rng.SampleIndices(4, 10);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Pcg32Test, BernoulliExtremes) {
  Pcg32 rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

}  // namespace
}  // namespace dbsherlock::common
