// Graceful degradation under hostile telemetry: the diagnosis engine must
// skip (and report) attributes too corrupted to trust, never crash on
// NaN/Inf cells, drop hostile streaming rows, and — after repair — still
// produce a ranked diagnosis from moderately corrupted data, bit-identical
// at any degree of parallelism.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "core/anomaly_detector.h"
#include "core/predicate_generator.h"
#include "core/streaming_monitor.h"
#include "eval/experiment.h"
#include "simulator/fault_injector.h"
#include "tsdata/data_quality.h"

namespace dbsherlock {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

struct TestData {
  tsdata::Dataset dataset;
  tsdata::DiagnosisRegions regions;
};

/// 200 rows, abnormal window [100, 150): "shifted" carries the anomaly,
/// "mostly_bad" is ~90% NaN, "slightly_bad" carries the same signal with a
/// handful of NaN cells sprinkled in.
TestData MakeNanLacedData() {
  common::Pcg32 rng(11);
  tsdata::Schema schema;
  EXPECT_TRUE(
      schema.AddAttribute({"shifted", tsdata::AttributeKind::kNumeric}).ok());
  EXPECT_TRUE(
      schema.AddAttribute({"mostly_bad", tsdata::AttributeKind::kNumeric})
          .ok());
  EXPECT_TRUE(
      schema.AddAttribute({"slightly_bad", tsdata::AttributeKind::kNumeric})
          .ok());
  TestData out{tsdata::Dataset(schema), {}};
  out.regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool abnormal = t >= 100 && t < 150;
    double signal = (abnormal ? 100.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
    double mostly = (t % 10 == 0) ? signal : kNan;
    double slightly = (t % 25 == 7) ? kNan : signal;
    EXPECT_TRUE(out.dataset.AppendRow(t, {signal, mostly, slightly}).ok());
  }
  return out;
}

TEST(RobustnessTest, LowQualityAttributeIsSkippedWithWarning) {
  TestData data = MakeNanLacedData();
  core::PredicateGenOptions options;
  core::PredicateGenResult result =
      core::GeneratePredicates(data.dataset, data.regions, options);

  // The clean and the slightly-corrupted attribute both carry the step.
  EXPECT_NE(result.Find("shifted"), nullptr);
  EXPECT_NE(result.Find("slightly_bad"), nullptr);
  // The 90%-NaN attribute is skipped, never fed to the partition machinery.
  EXPECT_EQ(result.Find("mostly_bad"), nullptr);

  ASSERT_EQ(result.warnings.size(), 2u);
  EXPECT_EQ(result.warnings[0].attribute, "mostly_bad");
  EXPECT_TRUE(result.warnings[0].skipped);
  EXPECT_GT(result.warnings[0].bad_fraction, 0.8);
  EXPECT_EQ(result.warnings[1].attribute, "slightly_bad");
  EXPECT_FALSE(result.warnings[1].skipped);
  EXPECT_LT(result.warnings[1].bad_fraction, 0.1);
}

TEST(RobustnessTest, QualityGateZeroDisablesSkipping) {
  TestData data = MakeNanLacedData();
  core::PredicateGenOptions options;
  options.min_attribute_quality = 0.0;
  core::PredicateGenResult result =
      core::GeneratePredicates(data.dataset, data.regions, options);
  // With the gate off, the sparse attribute's finite cells still carry the
  // signal, and the warning records that bad cells were masked.
  EXPECT_NE(result.Find("mostly_bad"), nullptr);
  ASSERT_GE(result.warnings.size(), 1u);
  EXPECT_FALSE(result.warnings[0].skipped);
}

TEST(RobustnessTest, DetectorSkipsGarbageAttributesWithoutCrashing) {
  common::Pcg32 rng(5);
  tsdata::Schema schema;
  ASSERT_TRUE(
      schema.AddAttribute({"signal", tsdata::AttributeKind::kNumeric}).ok());
  ASSERT_TRUE(
      schema.AddAttribute({"garbage", tsdata::AttributeKind::kNumeric}).ok());
  ASSERT_TRUE(
      schema.AddAttribute({"patchy", tsdata::AttributeKind::kNumeric}).ok());
  tsdata::Dataset d(schema);
  for (int t = 0; t < 400; ++t) {
    bool anomalous = t >= 200 && t < 260;
    double signal = (anomalous ? 90.0 : 10.0) + rng.NextGaussian(0.0, 1.0);
    double patchy = (t % 20 == 3) ? kNan : signal;
    ASSERT_TRUE(d.AppendRow(t, {signal, kNan, patchy}).ok());
  }
  core::AnomalyDetectorOptions options;
  core::DetectionResult result = core::DetectAnomalies(d, options);
  ASSERT_EQ(result.skipped_attributes.size(), 1u);
  EXPECT_EQ(result.skipped_attributes[0], "garbage");
  // The clean signal still drives detection despite the NaN columns.
  EXPECT_FALSE(result.abnormal_rows.empty());
  tsdata::DiagnosisRegions regions =
      core::DetectionToRegions(result, d, options);
  EXPECT_FALSE(regions.abnormal.empty());
}

TEST(RobustnessTest, StreamingMonitorDropsHostileRows) {
  tsdata::Schema schema;
  ASSERT_TRUE(
      schema.AddAttribute({"v", tsdata::AttributeKind::kNumeric}).ok());
  core::StreamingMonitor::Options options;
  options.warmup_rows = 1000;  // no detection; this test is about Append
  core::StreamingMonitor monitor(schema, options);

  for (double t : {0.0, 1.0, 2.0}) {
    monitor.Append(t, {1.0});
    EXPECT_TRUE(monitor.last_append_status().ok());
  }
  ASSERT_EQ(monitor.window_size(), 3u);

  monitor.Append(2.0, {9.0});  // duplicate of the newest row
  EXPECT_FALSE(monitor.last_append_status().ok());
  monitor.Append(1.5, {9.0});  // late arrival
  EXPECT_FALSE(monitor.last_append_status().ok());
  monitor.Append(kNan, {9.0});
  EXPECT_FALSE(monitor.last_append_status().ok());
  monitor.Append(std::numeric_limits<double>::infinity(), {9.0});

  EXPECT_EQ(monitor.window_size(), 3u);  // nothing hostile got buffered
  EXPECT_EQ(monitor.duplicate_rows_dropped(), 1u);
  EXPECT_EQ(monitor.late_rows_dropped(), 1u);
  EXPECT_EQ(monitor.non_finite_rows_dropped(), 2u);

  monitor.Append(3.0, {1.0});  // the stream recovers
  EXPECT_TRUE(monitor.last_append_status().ok());
  EXPECT_EQ(monitor.window_size(), 4u);
}

TEST(RobustnessTest, ParallelismInvariantOnCorruptedData) {
  simulator::DatasetGenOptions gen;
  gen.normal_duration_sec = 60.0;
  gen.seed = 21;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      gen, simulator::AnomalyKind::kWorkloadSpike, 40.0);

  simulator::FaultInjectorConfig faults;
  faults.corruption_rate = 0.1;
  faults.seed = 77;
  auto faulted = simulator::InjectFaults(run.data, faults);
  ASSERT_TRUE(faulted.ok());
  auto repaired = tsdata::RepairDataset(faulted->data);
  ASSERT_TRUE(repaired.ok());

  core::PredicateGenOptions serial;
  serial.parallelism = 1;
  core::PredicateGenOptions wide;
  wide.parallelism = 4;
  core::PredicateGenResult a =
      core::GeneratePredicates(repaired->data, run.regions, serial);
  core::PredicateGenResult b =
      core::GeneratePredicates(repaired->data, run.regions, wide);

  ASSERT_EQ(a.predicates.size(), b.predicates.size());
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    EXPECT_EQ(a.predicates[i].predicate.attribute,
              b.predicates[i].predicate.attribute);
    EXPECT_EQ(a.predicates[i].predicate.low, b.predicates[i].predicate.low);
    EXPECT_EQ(a.predicates[i].predicate.high, b.predicates[i].predicate.high);
    EXPECT_EQ(a.predicates[i].separation_power,
              b.predicates[i].separation_power);
  }
  ASSERT_EQ(a.warnings.size(), b.warnings.size());
  for (size_t i = 0; i < a.warnings.size(); ++i) {
    EXPECT_EQ(a.warnings[i].attribute, b.warnings[i].attribute);
    EXPECT_EQ(a.warnings[i].reason, b.warnings[i].reason);
    EXPECT_EQ(a.warnings[i].skipped, b.warnings[i].skipped);
  }
}

TEST(RobustnessTest, RepairedCorruptedDataStillYieldsRankedDiagnosis) {
  const std::vector<simulator::AnomalyKind> kinds = {
      simulator::AnomalyKind::kWorkloadSpike,
      simulator::AllAnomalyKinds().back(),
  };
  core::PredicateGenOptions options;

  // Train clean single-dataset models, one per cause.
  core::ModelRepository repository;
  simulator::DatasetGenOptions train_gen;
  train_gen.normal_duration_sec = 60.0;
  train_gen.seed = 1001;
  for (simulator::AnomalyKind kind : kinds) {
    simulator::GeneratedDataset train =
        simulator::GenerateAnomalyDataset(train_gen, kind, 50.0);
    repository.Add(eval::BuildCausalModel(train, train.label, options));
    ++train_gen.seed;
  }

  // Diagnose a fresh instance after 10% corruption + repair.
  simulator::DatasetGenOptions test_gen;
  test_gen.normal_duration_sec = 60.0;
  test_gen.seed = 2002;
  simulator::GeneratedDataset inquiry = simulator::GenerateAnomalyDataset(
      test_gen, simulator::AnomalyKind::kWorkloadSpike, 50.0);
  const std::string correct = inquiry.label;

  simulator::FaultInjectorConfig faults;
  faults.corruption_rate = 0.1;
  faults.seed = 99;
  auto faulted = simulator::InjectFaults(inquiry.data, faults);
  ASSERT_TRUE(faulted.ok());
  ASSERT_GT(faulted->counts.total(), 0u);
  auto repaired = tsdata::RepairDataset(faulted->data);
  ASSERT_TRUE(repaired.ok());
  inquiry.data = std::move(repaired->data);

  eval::RankingOutcome outcome =
      eval::RankAgainst(repository, inquiry, correct, options);
  ASSERT_FALSE(outcome.ranked.empty());
  EXPECT_GE(outcome.correct_rank, 1u);  // the correct cause survived repair
}

}  // namespace
}  // namespace dbsherlock
