// Parameterized sweeps over the Explainer's user-facing knobs: the lambda
// confidence threshold (the paper's interactive sliding bar, Section 6)
// and the theta predicate threshold.

#include <gtest/gtest.h>

#include "core/explainer.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::core {
namespace {

/// Shared fixture: an explainer taught three causes, plus a test dataset.
struct Taught {
  Explainer sherlock;
  simulator::GeneratedDataset test;
};

Taught* BuildTaught() {
  auto* taught = new Taught();
  const simulator::AnomalyKind kinds[] = {
      simulator::AnomalyKind::kLockContention,
      simulator::AnomalyKind::kCpuSaturation,
      simulator::AnomalyKind::kDatabaseBackup,
  };
  for (simulator::AnomalyKind kind : kinds) {
    simulator::DatasetGenOptions options;
    options.seed = 1000 + static_cast<uint64_t>(kind);
    simulator::GeneratedDataset run =
        simulator::GenerateAnomalyDataset(options, kind, 60.0);
    Explanation ex = taught->sherlock.Diagnose(run.data, run.regions);
    taught->sherlock.AcceptDiagnosis(simulator::AnomalyKindName(kind), ex);
  }
  simulator::DatasetGenOptions options;
  options.seed = 2000;
  taught->test = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kLockContention, 50.0);
  return taught;
}

const Taught& SharedTaught() {
  static const Taught* taught = BuildTaught();
  return *taught;
}

class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, HigherLambdaShowsFewerCauses) {
  const Taught& taught = SharedTaught();
  Explainer::Options low_options;
  low_options.confidence_threshold = GetParam();
  Explainer::Options high_options;
  high_options.confidence_threshold = GetParam() + 25.0;

  Explainer low(low_options);
  Explainer high(high_options);
  for (const CausalModel& m : taught.sherlock.repository().models()) {
    low.repository().AddUnmerged(m);
    high.repository().AddUnmerged(m);
  }
  Explanation low_ex = low.Diagnose(taught.test.data, taught.test.regions);
  Explanation high_ex = high.Diagnose(taught.test.data, taught.test.regions);
  EXPECT_GE(low_ex.causes.size(), high_ex.causes.size());
  for (const RankedCause& cause : high_ex.causes) {
    EXPECT_GT(cause.confidence, high_options.confidence_threshold);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, LambdaSweep,
                         ::testing::Values(-100.0, 0.0, 20.0, 50.0, 75.0));

class ThetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(ThetaSweep, HigherThetaYieldsNoMorePredicates) {
  const Taught& taught = SharedTaught();
  Explainer::Options base;
  base.predicate_options.normalized_diff_threshold = GetParam();
  Explainer::Options stricter;
  stricter.predicate_options.normalized_diff_threshold = GetParam() + 0.15;

  Explanation loose =
      Explainer(base).Diagnose(taught.test.data, taught.test.regions);
  Explanation strict =
      Explainer(stricter).Diagnose(taught.test.data, taught.test.regions);
  EXPECT_GE(loose.predicates.size(), strict.predicates.size());
  // Every surviving predicate clears the stricter threshold.
  for (const auto& diag : strict.predicates) {
    if (diag.predicate.is_numeric()) {
      EXPECT_GT(diag.normalized_mean_diff, GetParam() + 0.15);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThetaSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.35));

TEST(ExplainerOptionsTest, CausesSortedDescending) {
  const Taught& taught = SharedTaught();
  Explainer sherlock;
  for (const CausalModel& m : taught.sherlock.repository().models()) {
    sherlock.repository().AddUnmerged(m);
  }
  Explanation ex = sherlock.Diagnose(taught.test.data, taught.test.regions);
  for (size_t i = 1; i < ex.causes.size(); ++i) {
    EXPECT_GE(ex.causes[i - 1].confidence, ex.causes[i].confidence);
  }
}

TEST(ExplainerOptionsTest, PartitionCountAffectsOnlyGranularity) {
  // Coarse and fine partition counts must find the same top attribute for
  // a strong anomaly; only the boundary precision differs.
  const Taught& taught = SharedTaught();
  Explainer::Options coarse;
  coarse.predicate_options.num_partitions = 50;
  Explainer::Options fine;
  fine.predicate_options.num_partitions = 1000;
  Explanation ce =
      Explainer(coarse).Diagnose(taught.test.data, taught.test.regions);
  Explanation fe =
      Explainer(fine).Diagnose(taught.test.data, taught.test.regions);
  ASSERT_FALSE(ce.predicates.empty());
  ASSERT_FALSE(fe.predicates.empty());
  EXPECT_EQ(ce.predicates[0].predicate.attribute,
            fe.predicates[0].predicate.attribute);
}

}  // namespace
}  // namespace dbsherlock::core
