// Crash-chaos harness tests (eval/chaos.h): a real `dbsherlockd serve`
// subprocess is crashed with kill -9 mid-stream and/or run under a
// faultenv schedule, and the crash-safety contract is asserted end to
// end — every streamed row stored exactly once, acked models durable,
// bounded recovery, correct retrospective diagnoses, clean SIGTERM even
// after degradation. Also covers the daemon-level slow-loris guards and
// the HEALTH degraded/recovered transitions over the wire.

#include "eval/chaos.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/causal_model.h"
#include "service/client.h"

namespace {

using dbsherlock::eval::ChaosOptions;
using dbsherlock::eval::ChaosResult;
using dbsherlock::eval::ChaosTenantOutcome;
using dbsherlock::eval::DaemonProcess;
using dbsherlock::eval::RunChaosEpisode;
using dbsherlock::service::Client;

std::string WorkDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_chaos_" + name + "_" +
                    std::to_string(getpid());
  ::mkdir(dir.c_str(), 0755);  // parent for wal/ + store/ (EEXIST is fine)
  return dir;
}

/// Small, fast episode shape shared by the tests (the 25+-schedule sweep
/// lives in the chaos benchmark, not here).
ChaosOptions SmallEpisode(const std::string& name) {
  ChaosOptions options;
  options.daemon_path = DBSHERLOCK_DAEMON_PATH;
  options.work_dir = WorkDir(name);
  options.num_tenants = 2;
  options.kinds = {dbsherlock::simulator::AnomalyKind::kCpuSaturation,
                   dbsherlock::simulator::AnomalyKind::kIoSaturation};
  options.gen.normal_duration_sec = 90.0;
  options.anomaly_duration_sec = 30.0;
  options.train_sets_per_cause = 1;
  options.seal_rows = 16;
  return options;
}

TEST(ServiceChaosTest, Kill9EpisodeLosesNothingAcked) {
  ChaosOptions options = SmallEpisode("kill9");
  options.kills = 2;
  options.seed = 11;
  auto result = RunChaosEpisode(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok) << result->ToJson().Dump(2);
  EXPECT_EQ(result->kills, 2u);
  ASSERT_EQ(result->recovery_ms.size(), 2u);
  for (double ms : result->recovery_ms) {
    EXPECT_GT(ms, 0.0);
    EXPECT_LT(ms, 30000.0);  // bounded recovery
  }
  // Crashes lose the unsealed tail, so the resume protocol must have
  // actually resent something — and stored it exactly once.
  EXPECT_GT(result->resent_rows, 0u);
  for (const ChaosTenantOutcome& tenant : result->tenants) {
    EXPECT_TRUE(tenant.exactly_once) << tenant.tenant;
    EXPECT_TRUE(tenant.top1_correct)
        << tenant.tenant << ": " << tenant.top_cause;
  }
  EXPECT_EQ(result->models_recovered, 2u);
  EXPECT_EQ(result->daemon_exit_code, 0);
}

TEST(ServiceChaosTest, FaultScheduleEpisodeStillExactlyOnce) {
  ChaosOptions options = SmallEpisode("faults");
  options.kills = 1;
  options.seed = 23;
  // Daemon-side chaos: occasional connection resets on send, a few
  // failed segment fsyncs (seal retries), and two torn WAL appends.
  options.fault_schedule =
      "seed=23;srv.send=reset@0.01;seg.fsync=enospc@0.2,limit=3;"
      "wal.write=torn@0.5,limit=2";
  auto result = RunChaosEpisode(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->ok) << result->ToJson().Dump(2);
  for (const ChaosTenantOutcome& tenant : result->tenants) {
    EXPECT_TRUE(tenant.exactly_once) << tenant.tenant;
  }
  EXPECT_EQ(result->daemon_exit_code, 0);
}

TEST(ServiceChaosTest, HealthDegradesAndRecoversOverTheWire) {
  DaemonProcess daemon;
  DaemonProcess::Options dopts;
  dopts.binary = DBSHERLOCK_DAEMON_PATH;
  std::string root = WorkDir("health");
  dopts.args = {"--port", "0", "--wal-dir", root + "/wal",
                // The first WAL append fails once, then the disk "heals".
                "--fault-schedule", "wal.write=eio@1,limit=1"};
  ASSERT_TRUE(daemon.Start(dopts).ok());

  auto client = Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(client.ok());
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->GetString("state").ValueOr(""), "ok");

  dbsherlock::core::CausalModel model;
  model.cause = "ChaosHealth";
  dbsherlock::core::Predicate predicate;
  predicate.attribute = "cpu";
  predicate.type = dbsherlock::core::PredicateType::kGreaterThan;
  predicate.low = 1.0;
  model.predicates.push_back(predicate);
  EXPECT_FALSE((*client)->Teach(model).ok());  // injected EIO surfaces

  health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->GetString("state").ValueOr(""), "degraded");
  EXPECT_NE(health->GetString("reason").ValueOr("").find("model-store"),
            std::string::npos);

  // The fault limit is exhausted: the next write succeeds and the
  // service self-recovers to ok.
  EXPECT_TRUE((*client)->Teach(model).ok());
  health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->GetString("state").ValueOr(""), "ok");

  (void)(*client)->Quit();
  auto exit_code = daemon.Terminate();
  ASSERT_TRUE(exit_code.ok());
  EXPECT_EQ(*exit_code, 0);  // degraded spells never poison shutdown
}

TEST(ServiceChaosTest, SlowLorisConnectionsAreShed) {
  DaemonProcess daemon;
  DaemonProcess::Options dopts;
  dopts.binary = DBSHERLOCK_DAEMON_PATH;
  std::string root = WorkDir("loris");
  dopts.args = {"--port", "0", "--wal-dir", root + "/wal",
                "--idle-timeout-ms", "200", "--max-line-bytes", "64"};
  ASSERT_TRUE(daemon.Start(dopts).ok());

  // Idle guard: a connection that never sends is closed by the server.
  {
    auto idle = Client::Connect("127.0.0.1", daemon.port());
    ASSERT_TRUE(idle.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    EXPECT_FALSE((*idle)->Ping().ok());
  }

  // Line-buffer guard: an oversized request line gets ERR ParseError and
  // the connection is closed; a fresh connection still works.
  {
    auto big = Client::Connect("127.0.0.1", daemon.port());
    ASSERT_TRUE(big.ok());
    auto response = (*big)->Call("PING " + std::string(200, 'x'));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->kind, dbsherlock::service::Response::Kind::kErr);
  }
  auto fresh = Client::Connect("127.0.0.1", daemon.port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE((*fresh)->Ping().ok());
  (void)(*fresh)->Quit();

  auto exit_code = daemon.Terminate();
  ASSERT_TRUE(exit_code.ok());
  EXPECT_EQ(*exit_code, 0);
}

TEST(ServiceChaosTest, ClientDeadlineFiresOnAStalledServer) {
  DaemonProcess daemon;
  DaemonProcess::Options dopts;
  dopts.binary = DBSHERLOCK_DAEMON_PATH;
  std::string root = WorkDir("deadline");
  dopts.args = {"--port", "0", "--wal-dir", root + "/wal",
                // Every request read stalls 30 s — far past the deadline.
                "--fault-schedule", "srv.recv=stall@1,ms=30000"};
  ASSERT_TRUE(daemon.Start(dopts).ok());

  Client::Options copts;
  copts.connect_timeout_ms = 2000;
  copts.deadline_ms = 300;
  auto client = Client::Connect("127.0.0.1", daemon.port(), copts);
  ASSERT_TRUE(client.ok());
  auto t0 = std::chrono::steady_clock::now();
  auto response = (*client)->Call("PING");
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(),
            dbsherlock::common::StatusCode::kDeadlineExceeded)
      << response.status().ToString();
  EXPECT_LT(elapsed, 5000);  // gave up, did not hang for the stall

  daemon.Kill9();  // stalled readers would block a SIGTERM drain
}

}  // namespace
