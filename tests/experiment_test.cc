#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "core/domain_knowledge.h"

namespace dbsherlock::eval {
namespace {

/// A small shared corpus (generated once; corpus generation dominates this
/// suite's runtime otherwise).
const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    simulator::DatasetGenOptions options;
    options.seed = 77;
    return new Corpus(GenerateCorpus(options));
  }();
  return *corpus;
}

TEST(EvaluatePredicatesTest, PerfectConjunct) {
  const auto& ds = SharedCorpus().by_class[0][0];
  // An oracle predicate: latency above the 99.9th percentile of normal.
  core::PredicateGenResult generated =
      core::GeneratePredicates(ds.data, ds.regions, {});
  ASSERT_FALSE(generated.predicates.empty());
  PredicateAccuracy acc = EvaluatePredicates(
      {generated.predicates[0].predicate}, ds.data, ds.regions);
  EXPECT_GT(acc.f1, 0.6);
  EXPECT_LE(acc.precision, 1.0);
  EXPECT_LE(acc.recall, 1.0);
}

TEST(EvaluatePredicatesTest, EmptyConjunctScoresZero) {
  const auto& ds = SharedCorpus().by_class[0][0];
  PredicateAccuracy acc = EvaluatePredicates({}, ds.data, ds.regions);
  EXPECT_DOUBLE_EQ(acc.f1, 0.0);
}

TEST(EvaluateFlagsTest, GroundTruthFlagsArePerfect) {
  const auto& ds = SharedCorpus().by_class[1][0];
  std::vector<bool> flags(ds.data.num_rows());
  for (size_t row = 0; row < flags.size(); ++row) {
    flags[row] = ds.regions.LabelOf(ds.data.timestamp(row)) ==
                 tsdata::RowLabel::kAbnormal;
  }
  PredicateAccuracy acc = EvaluateFlags(flags, ds.data, ds.regions);
  EXPECT_DOUBLE_EQ(acc.precision, 1.0);
  EXPECT_DOUBLE_EQ(acc.recall, 1.0);
  EXPECT_DOUBLE_EQ(acc.f1, 1.0);
}

TEST(CorpusTest, TenClassesElevenDatasets) {
  const Corpus& corpus = SharedCorpus();
  EXPECT_EQ(corpus.num_classes(), 10u);
  for (const auto& series : corpus.by_class) {
    EXPECT_EQ(series.size(), 11u);
  }
  EXPECT_EQ(corpus.ClassName(0), "Poorly Written Query");
  EXPECT_EQ(corpus.ClassName(9), "Lock Contention");
}

TEST(BuildCausalModelTest, ModelCarriesCauseAndPredicates) {
  const auto& ds = SharedCorpus().by_class[3][0];  // I/O Saturation
  core::PredicateGenOptions options;
  core::CausalModel model = BuildCausalModel(ds, "I/O Saturation", options);
  EXPECT_EQ(model.cause, "I/O Saturation");
  EXPECT_FALSE(model.predicates.empty());
}

TEST(BuildCausalModelTest, DomainKnowledgeShrinksModel) {
  const auto& ds = SharedCorpus().by_class[6][0];  // CPU Saturation
  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  core::DomainKnowledge dk = core::DomainKnowledge::MySqlLinuxDefaults();
  core::CausalModel with = BuildCausalModel(ds, "x", options, &dk);
  core::CausalModel without = BuildCausalModel(ds, "x", options, nullptr);
  EXPECT_LE(with.predicates.size(), without.predicates.size());
}

TEST(RankAgainstTest, CorrectModelWinsOnItsOwnClass) {
  const Corpus& corpus = SharedCorpus();
  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  std::vector<std::vector<size_t>> train(corpus.num_classes(),
                                         {0, 1, 2, 3, 4});
  core::ModelRepository repo =
      BuildMergedRepository(corpus, train, options, nullptr);
  EXPECT_EQ(repo.size(), corpus.num_classes());

  size_t correct = 0, total = 0;
  for (size_t c = 0; c < corpus.num_classes(); ++c) {
    RankingOutcome outcome = RankAgainst(repo, corpus.by_class[c][7],
                                         corpus.ClassName(c), options);
    EXPECT_EQ(outcome.ranked.size(), corpus.num_classes());
    if (outcome.CorrectInTopK(2)) ++correct;
    ++total;
  }
  EXPECT_GE(correct, total - 2);  // top-2 nearly always right
}

TEST(RankAgainstTest, MarginSignMatchesRank) {
  const Corpus& corpus = SharedCorpus();
  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  std::vector<std::vector<size_t>> train(corpus.num_classes(),
                                         {0, 2, 4, 6, 8});
  core::ModelRepository repo =
      BuildMergedRepository(corpus, train, options, nullptr);
  for (size_t c = 0; c < corpus.num_classes(); ++c) {
    RankingOutcome outcome = RankAgainst(repo, corpus.by_class[c][9],
                                         corpus.ClassName(c), options);
    if (outcome.correct_rank == 1) {
      EXPECT_GE(outcome.margin, 0.0);
    } else if (outcome.correct_rank > 1) {
      EXPECT_LE(outcome.margin, 0.0);
    }
  }
}

TEST(RankAgainstTest, MissingCorrectCauseGivesRankZero) {
  const Corpus& corpus = SharedCorpus();
  core::ModelRepository repo;  // empty
  RankingOutcome outcome = RankAgainst(repo, corpus.by_class[0][0],
                                       "Poorly Written Query", {});
  EXPECT_EQ(outcome.correct_rank, 0u);
  EXPECT_FALSE(outcome.CorrectInTopK(10));
}

TEST(SplitHelpersTest, RandomTrainSplitShapes) {
  common::Pcg32 rng(5);
  auto split = RandomTrainSplit(10, 11, 5, &rng);
  ASSERT_EQ(split.size(), 10u);
  for (const auto& idx : split) {
    EXPECT_EQ(idx.size(), 5u);
    for (size_t i : idx) EXPECT_LT(i, 11u);
    // Sorted and distinct.
    for (size_t k = 1; k < idx.size(); ++k) EXPECT_LT(idx[k - 1], idx[k]);
  }
}

TEST(SplitHelpersTest, TestIndicesComplement) {
  std::vector<size_t> train = {0, 3, 7};
  std::vector<size_t> test = TestIndices(train, 9);
  EXPECT_EQ(test, (std::vector<size_t>{1, 2, 4, 5, 6, 8}));
}

TEST(ConfidenceOnTest, CorrectClassHigherThanWrongClass) {
  const Corpus& corpus = SharedCorpus();
  core::PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  // Lock Contention model on its own class vs on CPU Saturation data.
  core::CausalModel lock_model = BuildCausalModel(
      corpus.by_class[9][0], "Lock Contention", options);
  double own = ConfidenceOn(lock_model, corpus.by_class[9][5], options);
  double other = ConfidenceOn(lock_model, corpus.by_class[6][5], options);
  EXPECT_GT(own, other);
}

}  // namespace
}  // namespace dbsherlock::eval
