#include "core/dbscan.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

std::vector<std::vector<double>> TwoBlobs(size_t n_per_blob, uint64_t seed) {
  common::Pcg32 rng(seed);
  std::vector<std::vector<double>> points;
  for (size_t i = 0; i < n_per_blob; ++i) {
    points.push_back({rng.NextGaussian(0.0, 0.1), rng.NextGaussian(0.0, 0.1)});
  }
  for (size_t i = 0; i < n_per_blob; ++i) {
    points.push_back(
        {rng.NextGaussian(10.0, 0.1), rng.NextGaussian(10.0, 0.1)});
  }
  return points;
}

TEST(DbscanTest, SeparatesTwoBlobs) {
  auto points = TwoBlobs(50, 1);
  DbscanResult result = Dbscan(points, 1.0, 3);
  EXPECT_EQ(result.num_clusters, 2);
  // All points in the first blob share one id; second blob another.
  for (size_t i = 1; i < 50; ++i) {
    EXPECT_EQ(result.cluster_of[i], result.cluster_of[0]);
  }
  for (size_t i = 51; i < 100; ++i) {
    EXPECT_EQ(result.cluster_of[i], result.cluster_of[50]);
  }
  EXPECT_NE(result.cluster_of[0], result.cluster_of[50]);
}

TEST(DbscanTest, IsolatedPointIsNoise) {
  auto points = TwoBlobs(50, 2);
  points.push_back({100.0, -100.0});
  DbscanResult result = Dbscan(points, 1.0, 3);
  EXPECT_EQ(result.cluster_of.back(), -1);
}

TEST(DbscanTest, ClusterSizes) {
  auto points = TwoBlobs(30, 3);
  points.push_back({-50.0, -50.0});  // noise
  DbscanResult result = Dbscan(points, 1.0, 3);
  std::vector<size_t> sizes = result.ClusterSizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0] + sizes[1], 60u);
}

TEST(DbscanTest, HugeEpsMakesOneCluster) {
  auto points = TwoBlobs(20, 4);
  DbscanResult result = Dbscan(points, 1000.0, 3);
  EXPECT_EQ(result.num_clusters, 1);
}

TEST(DbscanTest, TinyEpsMakesAllNoise) {
  auto points = TwoBlobs(20, 5);
  DbscanResult result = Dbscan(points, 1e-9, 3);
  EXPECT_EQ(result.num_clusters, 0);
  for (int c : result.cluster_of) EXPECT_EQ(c, -1);
}

TEST(DbscanTest, MinPtsOneClustersEverything) {
  std::vector<std::vector<double>> points = {{0.0}, {100.0}};
  DbscanResult result = Dbscan(points, 0.5, 1);
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(DbscanTest, EmptyInput) {
  DbscanResult result = Dbscan(std::vector<std::vector<double>>{}, 1.0, 3);
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.cluster_of.empty());
}

TEST(DbscanTest, BorderPointJoinsCluster) {
  // A dense core of 5 points plus one border point within eps of the core
  // but itself not core.
  std::vector<std::vector<double>> points = {
      {0.0}, {0.1}, {0.2}, {0.3}, {0.4}, {1.2}};
  DbscanResult result = Dbscan(points, 0.9, 4);
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.cluster_of[5], 0);  // border point adopted
}

TEST(KDistancesTest, SimpleLine) {
  std::vector<std::vector<double>> points = {{0.0}, {1.0}, {3.0}};
  std::vector<double> k1 = KDistances(points, 1);
  EXPECT_DOUBLE_EQ(k1[0], 1.0);  // nearest other point of 0 is 1
  EXPECT_DOUBLE_EQ(k1[1], 1.0);
  EXPECT_DOUBLE_EQ(k1[2], 2.0);
  std::vector<double> k2 = KDistances(points, 2);
  EXPECT_DOUBLE_EQ(k2[0], 3.0);
  EXPECT_DOUBLE_EQ(k2[1], 2.0);
  EXPECT_DOUBLE_EQ(k2[2], 3.0);
}

TEST(KDistancesTest, KBeyondSizeClampsToFarthest) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}};
  std::vector<double> k = KDistances(points, 10);
  EXPECT_DOUBLE_EQ(k[0], 5.0);
}

TEST(KDistancesTest, NonPositiveKGivesZeros) {
  std::vector<std::vector<double>> points = {{0.0}, {5.0}};
  std::vector<double> k = KDistances(points, 0);
  EXPECT_DOUBLE_EQ(k[0], 0.0);
}

}  // namespace
}  // namespace dbsherlock::core
