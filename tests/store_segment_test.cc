#include "store/segment.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "simulator/dataset_gen.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock::store {
namespace {

using tsdata::AttributeKind;
using tsdata::Dataset;
using tsdata::Schema;

Schema MixedSchema() {
  return Schema({{"latency", AttributeKind::kNumeric},
                 {"tps", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

/// Bit-exact double comparison: NaN == NaN iff the payloads match, and
/// -0.0 != +0.0. This is the codec's contract — stricter than ==.
bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t row = 0; row < a.num_rows(); ++row) {
    EXPECT_TRUE(BitEqual(a.timestamp(row), b.timestamp(row)))
        << "timestamp row " << row;
    for (size_t col = 0; col < a.schema().num_attributes(); ++col) {
      if (a.schema().attribute(col).kind == AttributeKind::kNumeric) {
        EXPECT_TRUE(BitEqual(a.column(col).numeric(row),
                             b.column(col).numeric(row)))
            << "col " << col << " row " << row;
      } else {
        const tsdata::Column& ca = a.column(col);
        const tsdata::Column& cb = b.column(col);
        EXPECT_EQ(ca.CategoryName(ca.code(row)), cb.CategoryName(cb.code(row)))
            << "col " << col << " row " << row;
      }
    }
  }
}

/// A hostile random dataset: irregular timestamps, NaN/Inf cells, long
/// runs of repeated values, denormals, and categorical churn.
Dataset RandomDataset(uint64_t seed, size_t rows) {
  common::Pcg32 rng(seed);
  Dataset d(MixedSchema());
  double ts = rng.NextDouble(0.0, 100.0);
  double held = 0.0;  // repeated-value run generator
  static const char* kModes[] = {"read", "write", "mixed", "idle"};
  for (size_t i = 0; i < rows; ++i) {
    // Irregular spacing: sub-second jitter, occasional large gaps.
    ts += rng.NextBernoulli(0.05) ? rng.NextDouble(10.0, 1e6)
                                  : rng.NextDouble(1e-6, 2.0);
    double v;
    switch (rng.NextInt(0, 7)) {
      case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v = std::numeric_limits<double>::infinity(); break;
      case 2: v = -0.0; break;
      case 3: v = 5e-324; break;  // smallest denormal
      case 4: v = held; break;    // repeat the previous held value
      default:
        v = rng.NextGaussian(0.0, 1e6);
        held = v;
    }
    double tps = rng.NextBernoulli(0.6) ? held : rng.NextDouble(0.0, 1e4);
    EXPECT_TRUE(
        d.AppendRow(ts, {v, tps, std::string(kModes[rng.NextInt(0, 3)])})
            .ok());
  }
  return d;
}

TEST(SegmentCodecTest, EmptyDatasetRoundTrips) {
  Dataset d(MixedSchema());
  std::string blob = EncodeSegment(d);
  auto back = DecodeSegment(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_TRUE(back->schema() == d.schema());
}

TEST(SegmentCodecTest, SmallRoundTrip) {
  Dataset d(MixedSchema());
  ASSERT_TRUE(d.AppendRow(1.0, {0.5, 100.0, std::string("read")}).ok());
  ASSERT_TRUE(d.AppendRow(2.0, {0.5, 101.0, std::string("write")}).ok());
  ASSERT_TRUE(d.AppendRow(3.5, {-7.25, 101.0, std::string("read")}).ok());
  auto back = DecodeSegment(EncodeSegment(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(d, *back);
}

TEST(SegmentCodecTest, RandomDatasetsRoundTripBitIdentically) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Dataset d = RandomDataset(seed, /*rows=*/257);
    auto back = DecodeSegment(EncodeSegment(d));
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    ExpectBitIdentical(d, *back);
  }
}

TEST(SegmentCodecTest, RegularTimestampsCompressToNearNothing) {
  // The common case: one row per second. Delta-of-delta should spend
  // ~1 bit per timestamp after the first two.
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(d.AppendRow(static_cast<double>(i), {42.0}).ok());
  }
  std::string blob = EncodeSegment(d);
  // 4096 rows x (8B ts + 8B value) = 64 KiB raw; expect a few KiB.
  EXPECT_LT(blob.size(), 8u * 1024u);
}

TEST(SegmentCodecTest, CompressesSimulatorTelemetryBelowRawCsv) {
  simulator::DatasetGenOptions options;
  options.normal_duration_sec = 120.0;
  auto generated = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kLockContention, 40.0);
  const Dataset& d = generated.data;
  ASSERT_GT(d.num_rows(), 100u);
  std::string blob = EncodeSegment(d);
  std::string csv = tsdata::DatasetToCsv(d);
  double ratio = static_cast<double>(blob.size()) /
                 static_cast<double>(csv.size());
  EXPECT_LT(ratio, 1.0) << "compressed " << blob.size() << " raw "
                        << csv.size();
  auto back = DecodeSegment(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(d, *back);
}

TEST(SegmentCodecTest, ReadSegmentMetaMatchesWithoutFullDecode) {
  Dataset d = RandomDataset(7, 100);
  std::string blob = EncodeSegment(d);
  auto meta = ReadSegmentMeta(blob);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->schema == d.schema());
  EXPECT_EQ(meta->rows, 100u);
  EXPECT_TRUE(BitEqual(meta->min_ts, d.timestamp(0)));
  EXPECT_TRUE(BitEqual(meta->max_ts, d.timestamp(99)));
}

TEST(SegmentCodecTest, RejectsBadMagicAndVersion) {
  Dataset d = RandomDataset(3, 10);
  std::string blob = EncodeSegment(d);
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeSegment(bad).ok());
  bad = blob;
  bad[4] ^= 0xFF;  // version word
  EXPECT_FALSE(DecodeSegment(bad).ok());
}

// --- Robustness: no input may crash the decoder -----------------------

TEST(SegmentCodecTest, EveryTruncationFailsCleanly) {
  Dataset d = RandomDataset(11, 64);
  std::string blob = EncodeSegment(d);
  // Every proper prefix must decode to a clean error (CRC framing means
  // no prefix can silently pass as a shorter segment).
  for (size_t len = 0; len < blob.size(); ++len) {
    auto r = DecodeSegment(std::string_view(blob.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SegmentCodecTest, ByteMutationNeverCrashesAndUsuallyFailsCrc) {
  Dataset d = RandomDataset(13, 64);
  std::string blob = EncodeSegment(d);
  common::Pcg32 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = blob;
    size_t pos = static_cast<size_t>(
        rng.NextInt(0, static_cast<int>(blob.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.NextInt(0, 7));
    auto r = DecodeSegment(mutated);
    // A flipped payload bit is caught by the CRC; a flipped length word
    // by the bounds checks. Either way: Status, not UB. (We only assert
    // no crash + no silent wrong data.)
    if (r.ok()) {
      // The mutation must have been in dead framing space for decode to
      // succeed — the data itself must still match.
      ExpectBitIdentical(d, *r);
    }
  }
}

TEST(SegmentCodecTest, RandomGarbageFailsCleanly) {
  common::Pcg32 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<size_t>(rng.NextInt(0, 512)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextInt(0, 255));
    // Valid header prefix on half the trials so block parsing is reached.
    if (trial % 2 == 0 && garbage.size() >= 8) {
      garbage[0] = 'D';
      garbage[1] = 'B';
      garbage[2] = 'S';
      garbage[3] = 'G';
      garbage[4] = 1;
      garbage[5] = garbage[6] = garbage[7] = 0;
    }
    EXPECT_FALSE(DecodeSegment(garbage).ok());
  }
}

// --- Zone-map footer (DESIGN.md §14) -----------------------------------

/// Downgrades a v2 blob to the v1 format: strip the zone footer (framed
/// block + 8-byte trailer) and patch the header version word to 1. This
/// reconstructs byte-for-byte what the pre-footer encoder produced.
std::string MakeV1(const std::string& v2) {
  EXPECT_GE(v2.size(), 8u);
  uint32_t zone_len = 0;
  for (int i = 0; i < 4; ++i) {
    zone_len |= static_cast<uint32_t>(
                    static_cast<uint8_t>(v2[v2.size() - 8 + i]))
                << (8 * i);
  }
  EXPECT_LT(zone_len + 8u, v2.size());
  std::string v1 = v2.substr(0, v2.size() - 8 - zone_len);
  v1[4] = 1;  // little-endian version word: 2 -> 1
  return v1;
}

TEST(SegmentCodecTest, ZoneFooterRoundTripsComputeZoneMap) {
  Dataset d = RandomDataset(17, 200);
  ZoneMap direct = ComputeZoneMap(d);
  auto read = ReadSegmentZoneMap(EncodeSegment(d));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->rows, direct.rows);
  EXPECT_TRUE(BitEqual(read->min_ts, direct.min_ts));
  EXPECT_TRUE(BitEqual(read->max_ts, direct.max_ts));
  ASSERT_EQ(read->attrs.size(), direct.attrs.size());
  for (size_t i = 0; i < direct.attrs.size(); ++i) {
    EXPECT_TRUE(BitEqual(read->attrs[i].min, direct.attrs[i].min)) << i;
    EXPECT_TRUE(BitEqual(read->attrs[i].max, direct.attrs[i].max)) << i;
    EXPECT_EQ(read->attrs[i].non_nan_count, direct.attrs[i].non_nan_count);
    EXPECT_EQ(read->attrs[i].finite_count, direct.attrs[i].finite_count);
  }
}

TEST(SegmentCodecTest, V1BlobStillDecodesButHasNoZoneMap) {
  Dataset d = RandomDataset(19, 64);
  std::string v1 = MakeV1(EncodeSegment(d));
  auto back = DecodeSegment(v1);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(d, *back);
  auto meta = ReadSegmentMeta(v1);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->version, 1u);
  auto zones = ReadSegmentZoneMap(v1);
  ASSERT_FALSE(zones.ok());
  EXPECT_EQ(zones.status().code(), common::StatusCode::kNotFound);
}

TEST(SegmentCodecTest, V2WithoutItsFooterIsCorrupt) {
  Dataset d = RandomDataset(23, 64);
  std::string blob = EncodeSegment(d);
  // Chop the footer but keep the version word at 2: the blob claims a
  // footer it does not have.
  std::string torn = MakeV1(blob);
  torn[4] = 2;
  EXPECT_FALSE(DecodeSegment(torn).ok());
  EXPECT_FALSE(ReadSegmentZoneMap(torn).ok());
  // A v1 blob with trailing junk is equally corrupt.
  std::string junk = MakeV1(blob) + "xx";
  EXPECT_FALSE(DecodeSegment(junk).ok());
}

TEST(SegmentCodecTest, ZoneMapHandlesNaNAndInfColumns) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Dataset d(MixedSchema());
  ASSERT_TRUE(d.AppendRow(1.0, {kNaN, kInf, std::string("a")}).ok());
  ASSERT_TRUE(d.AppendRow(2.0, {kNaN, kInf, std::string("b")}).ok());
  ASSERT_TRUE(d.AppendRow(3.0, {kNaN, 5.0, std::string("a")}).ok());
  ZoneMap zones = ComputeZoneMap(d);
  ASSERT_EQ(zones.attrs.size(), 3u);
  // All-NaN column: no comparable value, every bound prunes it.
  EXPECT_EQ(zones.attrs[0].non_nan_count, 0u);
  EXPECT_TRUE(zones.attrs[0].CannotMatch(-kInf, kInf));
  // ±Inf participates in min/max: a `v >= lo` bound must NOT prune a
  // column holding +Inf values.
  EXPECT_EQ(zones.attrs[1].non_nan_count, 3u);
  EXPECT_EQ(zones.attrs[1].finite_count, 1u);
  EXPECT_DOUBLE_EQ(zones.attrs[1].min, 5.0);
  EXPECT_EQ(zones.attrs[1].max, kInf);
  EXPECT_FALSE(zones.attrs[1].CannotMatch(1e300, kInf));
  EXPECT_TRUE(zones.attrs[1].CannotMatch(-kInf, 4.0));
  // Categorical: present and finite, no numeric range.
  EXPECT_EQ(zones.attrs[2].non_nan_count, 3u);
  EXPECT_GT(zones.attrs[2].min, zones.attrs[2].max);
  // The exact same semantics survive the footer round-trip.
  auto read = ReadSegmentZoneMap(EncodeSegment(d));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->attrs[1].finite_count, 1u);
}

}  // namespace
}  // namespace dbsherlock::store
