#include "store/segment.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "simulator/dataset_gen.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock::store {
namespace {

using tsdata::AttributeKind;
using tsdata::Dataset;
using tsdata::Schema;

Schema MixedSchema() {
  return Schema({{"latency", AttributeKind::kNumeric},
                 {"tps", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

/// Bit-exact double comparison: NaN == NaN iff the payloads match, and
/// -0.0 != +0.0. This is the codec's contract — stricter than ==.
bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

void ExpectBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t row = 0; row < a.num_rows(); ++row) {
    EXPECT_TRUE(BitEqual(a.timestamp(row), b.timestamp(row)))
        << "timestamp row " << row;
    for (size_t col = 0; col < a.schema().num_attributes(); ++col) {
      if (a.schema().attribute(col).kind == AttributeKind::kNumeric) {
        EXPECT_TRUE(BitEqual(a.column(col).numeric(row),
                             b.column(col).numeric(row)))
            << "col " << col << " row " << row;
      } else {
        const tsdata::Column& ca = a.column(col);
        const tsdata::Column& cb = b.column(col);
        EXPECT_EQ(ca.CategoryName(ca.code(row)), cb.CategoryName(cb.code(row)))
            << "col " << col << " row " << row;
      }
    }
  }
}

/// A hostile random dataset: irregular timestamps, NaN/Inf cells, long
/// runs of repeated values, denormals, and categorical churn.
Dataset RandomDataset(uint64_t seed, size_t rows) {
  common::Pcg32 rng(seed);
  Dataset d(MixedSchema());
  double ts = rng.NextDouble(0.0, 100.0);
  double held = 0.0;  // repeated-value run generator
  static const char* kModes[] = {"read", "write", "mixed", "idle"};
  for (size_t i = 0; i < rows; ++i) {
    // Irregular spacing: sub-second jitter, occasional large gaps.
    ts += rng.NextBernoulli(0.05) ? rng.NextDouble(10.0, 1e6)
                                  : rng.NextDouble(1e-6, 2.0);
    double v;
    switch (rng.NextInt(0, 7)) {
      case 0: v = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v = std::numeric_limits<double>::infinity(); break;
      case 2: v = -0.0; break;
      case 3: v = 5e-324; break;  // smallest denormal
      case 4: v = held; break;    // repeat the previous held value
      default:
        v = rng.NextGaussian(0.0, 1e6);
        held = v;
    }
    double tps = rng.NextBernoulli(0.6) ? held : rng.NextDouble(0.0, 1e4);
    EXPECT_TRUE(
        d.AppendRow(ts, {v, tps, std::string(kModes[rng.NextInt(0, 3)])})
            .ok());
  }
  return d;
}

TEST(SegmentCodecTest, EmptyDatasetRoundTrips) {
  Dataset d(MixedSchema());
  std::string blob = EncodeSegment(d);
  auto back = DecodeSegment(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_rows(), 0u);
  EXPECT_TRUE(back->schema() == d.schema());
}

TEST(SegmentCodecTest, SmallRoundTrip) {
  Dataset d(MixedSchema());
  ASSERT_TRUE(d.AppendRow(1.0, {0.5, 100.0, std::string("read")}).ok());
  ASSERT_TRUE(d.AppendRow(2.0, {0.5, 101.0, std::string("write")}).ok());
  ASSERT_TRUE(d.AppendRow(3.5, {-7.25, 101.0, std::string("read")}).ok());
  auto back = DecodeSegment(EncodeSegment(d));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(d, *back);
}

TEST(SegmentCodecTest, RandomDatasetsRoundTripBitIdentically) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Dataset d = RandomDataset(seed, /*rows=*/257);
    auto back = DecodeSegment(EncodeSegment(d));
    ASSERT_TRUE(back.ok()) << "seed " << seed << ": "
                           << back.status().ToString();
    ExpectBitIdentical(d, *back);
  }
}

TEST(SegmentCodecTest, RegularTimestampsCompressToNearNothing) {
  // The common case: one row per second. Delta-of-delta should spend
  // ~1 bit per timestamp after the first two.
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int i = 0; i < 4096; ++i) {
    ASSERT_TRUE(d.AppendRow(static_cast<double>(i), {42.0}).ok());
  }
  std::string blob = EncodeSegment(d);
  // 4096 rows x (8B ts + 8B value) = 64 KiB raw; expect a few KiB.
  EXPECT_LT(blob.size(), 8u * 1024u);
}

TEST(SegmentCodecTest, CompressesSimulatorTelemetryBelowRawCsv) {
  simulator::DatasetGenOptions options;
  options.normal_duration_sec = 120.0;
  auto generated = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kLockContention, 40.0);
  const Dataset& d = generated.data;
  ASSERT_GT(d.num_rows(), 100u);
  std::string blob = EncodeSegment(d);
  std::string csv = tsdata::DatasetToCsv(d);
  double ratio = static_cast<double>(blob.size()) /
                 static_cast<double>(csv.size());
  EXPECT_LT(ratio, 1.0) << "compressed " << blob.size() << " raw "
                        << csv.size();
  auto back = DecodeSegment(blob);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectBitIdentical(d, *back);
}

TEST(SegmentCodecTest, ReadSegmentMetaMatchesWithoutFullDecode) {
  Dataset d = RandomDataset(7, 100);
  std::string blob = EncodeSegment(d);
  auto meta = ReadSegmentMeta(blob);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->schema == d.schema());
  EXPECT_EQ(meta->rows, 100u);
  EXPECT_TRUE(BitEqual(meta->min_ts, d.timestamp(0)));
  EXPECT_TRUE(BitEqual(meta->max_ts, d.timestamp(99)));
}

TEST(SegmentCodecTest, RejectsBadMagicAndVersion) {
  Dataset d = RandomDataset(3, 10);
  std::string blob = EncodeSegment(d);
  std::string bad = blob;
  bad[0] = 'X';
  EXPECT_FALSE(DecodeSegment(bad).ok());
  bad = blob;
  bad[4] ^= 0xFF;  // version word
  EXPECT_FALSE(DecodeSegment(bad).ok());
}

// --- Robustness: no input may crash the decoder -----------------------

TEST(SegmentCodecTest, EveryTruncationFailsCleanly) {
  Dataset d = RandomDataset(11, 64);
  std::string blob = EncodeSegment(d);
  // Every proper prefix must decode to a clean error (CRC framing means
  // no prefix can silently pass as a shorter segment).
  for (size_t len = 0; len < blob.size(); ++len) {
    auto r = DecodeSegment(std::string_view(blob.data(), len));
    EXPECT_FALSE(r.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SegmentCodecTest, ByteMutationNeverCrashesAndUsuallyFailsCrc) {
  Dataset d = RandomDataset(13, 64);
  std::string blob = EncodeSegment(d);
  common::Pcg32 rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = blob;
    size_t pos = static_cast<size_t>(
        rng.NextInt(0, static_cast<int>(blob.size()) - 1));
    mutated[pos] ^= static_cast<char>(1 << rng.NextInt(0, 7));
    auto r = DecodeSegment(mutated);
    // A flipped payload bit is caught by the CRC; a flipped length word
    // by the bounds checks. Either way: Status, not UB. (We only assert
    // no crash + no silent wrong data.)
    if (r.ok()) {
      // The mutation must have been in dead framing space for decode to
      // succeed — the data itself must still match.
      ExpectBitIdentical(d, *r);
    }
  }
}

TEST(SegmentCodecTest, RandomGarbageFailsCleanly) {
  common::Pcg32 rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(static_cast<size_t>(rng.NextInt(0, 512)), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextInt(0, 255));
    // Valid header prefix on half the trials so block parsing is reached.
    if (trial % 2 == 0 && garbage.size() >= 8) {
      garbage[0] = 'D';
      garbage[1] = 'B';
      garbage[2] = 'S';
      garbage[3] = 'G';
      garbage[4] = 1;
      garbage[5] = garbage[6] = garbage[7] = 0;
    }
    EXPECT_FALSE(DecodeSegment(garbage).ok());
  }
}

}  // namespace
}  // namespace dbsherlock::store
