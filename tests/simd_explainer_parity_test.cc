// End-to-end parity for the SIMD kernel layer (DESIGN.md §12): full
// diagnoses must be BIT-identical under forced scalar / SSE2 / AVX2 and
// across --threads, on several simulated anomaly datasets. This is the
// contract that makes runtime dispatch invisible: two hosts with different
// vector units (or thread counts) produce byte-for-byte the same
// explanation. The legacy row-at-a-time path is also A/B-checked against
// the batch path (same predicates and separation powers; its region sums
// accumulate in a different order, so normalized_mean_diff is compared
// approximately there).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/simd/simd.h"
#include "core/explainer.h"
#include "simulator/dataset_gen.h"

namespace dbsherlock::core {
namespace {

namespace simd = dbsherlock::common::simd;

bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

simulator::GeneratedDataset Generate(simulator::AnomalyKind kind,
                                     uint64_t seed) {
  simulator::DatasetGenOptions options;
  options.seed = seed;
  return simulator::GenerateAnomalyDataset(options, kind, 90.0);
}

/// A diagnosis with a small trained repository, so model ranking (the
/// PartitionSpaceCache path) is exercised too.
Explanation DiagnoseWithModels(const simulator::GeneratedDataset& run,
                               size_t parallelism) {
  Explainer::Options options;
  options.predicate_options.parallelism = parallelism;
  options.confidence_threshold = -1000.0;  // rank everything
  Explainer sherlock(options);
  Explanation first = sherlock.Diagnose(run.data, run.regions);
  sherlock.AcceptDiagnosis("training-cause", first, "do the thing");
  return sherlock.Diagnose(run.data, run.regions);
}

void ExpectBitIdentical(const Explanation& a, const Explanation& b,
                        const std::string& label) {
  ASSERT_EQ(a.predicates.size(), b.predicates.size()) << label;
  for (size_t i = 0; i < a.predicates.size(); ++i) {
    const AttributeDiagnosis& da = a.predicates[i];
    const AttributeDiagnosis& db = b.predicates[i];
    EXPECT_EQ(da.predicate.attribute, db.predicate.attribute) << label;
    EXPECT_EQ(da.predicate.type, db.predicate.type) << label;
    EXPECT_TRUE(SameBits(da.predicate.low, db.predicate.low))
        << label << " " << da.predicate.attribute;
    EXPECT_TRUE(SameBits(da.predicate.high, db.predicate.high))
        << label << " " << da.predicate.attribute;
    EXPECT_EQ(da.predicate.categories, db.predicate.categories) << label;
    EXPECT_TRUE(SameBits(da.separation_power, db.separation_power))
        << label << " " << da.predicate.attribute;
    EXPECT_TRUE(SameBits(da.partition_separation_power,
                         db.partition_separation_power))
        << label << " " << da.predicate.attribute;
    EXPECT_TRUE(SameBits(da.normalized_mean_diff, db.normalized_mean_diff))
        << label << " " << da.predicate.attribute;
  }
  ASSERT_EQ(a.causes.size(), b.causes.size()) << label;
  for (size_t i = 0; i < a.causes.size(); ++i) {
    EXPECT_EQ(a.causes[i].cause, b.causes[i].cause) << label;
    EXPECT_TRUE(SameBits(a.causes[i].confidence, b.causes[i].confidence))
        << label << " " << a.causes[i].cause;
  }
  ASSERT_EQ(a.warnings.size(), b.warnings.size()) << label;
}

struct Scenario {
  simulator::AnomalyKind kind;
  uint64_t seed;
};

const Scenario kScenarios[] = {
    {simulator::AnomalyKind::kNetworkCongestion, 7001},
    {simulator::AnomalyKind::kCpuSaturation, 7002},
    {simulator::AnomalyKind::kIoSaturation, 7003},
};

TEST(SimdExplainerParityTest, ExplanationsBitIdenticalAcrossIsas) {
  for (const Scenario& s : kScenarios) {
    simulator::GeneratedDataset run = Generate(s.kind, s.seed);
    simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
    ASSERT_TRUE(scalar.ok());
    Explanation reference = DiagnoseWithModels(run, 1);
    ASSERT_FALSE(reference.predicates.empty());
    for (simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2}) {
      if (!simd::IsaSupported(isa)) continue;
      simd::ScopedIsaOverride forced(isa);
      ASSERT_TRUE(forced.ok());
      Explanation got = DiagnoseWithModels(run, 1);
      ExpectBitIdentical(reference, got,
                         std::string("isa=") + simd::IsaName(isa));
    }
  }
}

TEST(SimdExplainerParityTest, ExplanationsBitIdenticalAcrossThreads) {
  for (const Scenario& s : kScenarios) {
    simulator::GeneratedDataset run = Generate(s.kind, s.seed);
    Explanation serial = DiagnoseWithModels(run, 1);
    for (size_t parallelism : {size_t{0}, size_t{4}}) {
      Explanation parallel = DiagnoseWithModels(run, parallelism);
      ExpectBitIdentical(serial, parallel,
                         "parallelism=" + std::to_string(parallelism));
    }
  }
}

TEST(SimdExplainerParityTest, BatchMatchesRowAtATimePath) {
  for (const Scenario& s : kScenarios) {
    simulator::GeneratedDataset run = Generate(s.kind, s.seed);
    Explainer::Options batch;
    Explainer::Options legacy;
    legacy.predicate_options.use_batch_kernels = false;
    legacy.detector_options.use_batch_kernels = false;
    Explanation a = Explainer(batch).Diagnose(run.data, run.regions);
    Explanation b = Explainer(legacy).Diagnose(run.data, run.regions);
    ASSERT_EQ(a.predicates.size(), b.predicates.size());
    for (size_t i = 0; i < a.predicates.size(); ++i) {
      const AttributeDiagnosis& da = a.predicates[i];
      const AttributeDiagnosis& db = b.predicates[i];
      EXPECT_EQ(da.predicate.attribute, db.predicate.attribute);
      EXPECT_EQ(da.predicate.type, db.predicate.type);
      // Predicate bounds come from the partition space (min/max + labels),
      // which the two paths derive identically.
      EXPECT_TRUE(SameBits(da.predicate.low, db.predicate.low))
          << da.predicate.attribute;
      EXPECT_TRUE(SameBits(da.predicate.high, db.predicate.high))
          << da.predicate.attribute;
      EXPECT_TRUE(SameBits(da.separation_power, db.separation_power))
          << da.predicate.attribute;
      EXPECT_TRUE(SameBits(da.partition_separation_power,
                           db.partition_separation_power))
          << da.predicate.attribute;
      // Region sums accumulate in different orders (lane-disciplined vs
      // sequential): value-approximate, not bit-identical.
      EXPECT_NEAR(da.normalized_mean_diff, db.normalized_mean_diff, 1e-9)
          << da.predicate.attribute;
    }
  }
}

}  // namespace
}  // namespace dbsherlock::core
