#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/json.h"
#include "common/parallel.h"

namespace dbsherlock::common {
namespace {

TEST(MetricsTest, CounterIncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, CounterIsAtomicUnderParallelFor) {
  Counter c;
  constexpr size_t kIterations = 10000;
  ParallelFor(
      kIterations, [&](size_t) { c.Increment(); }, 4);
  EXPECT_EQ(c.value(), kIterations);
}

TEST(MetricsTest, GaugeSetAddAndConcurrentAdd) {
  Gauge g;
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Add(-0.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.Reset();
  // Each addend is exactly representable, so the CAS-loop Add must make
  // the concurrent sum exact, not merely close.
  ParallelFor(
      1000, [&](size_t) { g.Add(0.25); }, 4);
  EXPECT_DOUBLE_EQ(g.value(), 250.0);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusiveUpperBounds) {
  LatencyHistogram h({10.0, 100.0, 1000.0});
  ASSERT_EQ(h.num_buckets(), 4u);  // 3 bounds + overflow
  h.Record(5.0);      // <= 10         -> bucket 0
  h.Record(10.0);     // == first edge -> bucket 0 (inclusive upper bound)
  h.Record(10.5);     // just above    -> bucket 1
  h.Record(100.0);    // == edge       -> bucket 1
  h.Record(1000.0);   // == last edge  -> bucket 2
  h.Record(1000.01);  // above all     -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.0 + 10.0 + 10.5 + 100.0 + 1000.0 + 1000.01);
}

TEST(MetricsTest, HistogramRoutesNonFiniteToOverflow) {
  LatencyHistogram h({10.0});
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 2u);
}

TEST(MetricsTest, HistogramMeanAndReset) {
  LatencyHistogram h({100.0});
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // empty: no division by zero
  h.Record(10.0);
  h.Record(30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("metrics_test.stable");
  Counter* b = reg.GetCounter("metrics_test.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = reg.GetGauge("metrics_test.stable_gauge");
  Gauge* g2 = reg.GetGauge("metrics_test.stable_gauge");
  EXPECT_EQ(g1, g2);
  LatencyHistogram* h1 = reg.GetHistogram("metrics_test.stable_us");
  LatencyHistogram* h2 = reg.GetHistogram("metrics_test.stable_us", {1.0});
  EXPECT_EQ(h1, h2);  // later bounds ignored: first creation wins
  EXPECT_EQ(h1->upper_bounds(), DefaultLatencyBoundsUs());
}

TEST(MetricsTest, RegistryRejectsCrossTypeNameCollision) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  ASSERT_NE(reg.GetCounter("metrics_test.collision"), nullptr);
  EXPECT_EQ(reg.GetGauge("metrics_test.collision"), nullptr);
  EXPECT_EQ(reg.GetHistogram("metrics_test.collision"), nullptr);
}

TEST(MetricsTest, SnapshotJsonHasAllSectionsAndBucketEdges) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("metrics_test.snap_counter")->Increment(7);
  reg.GetGauge("metrics_test.snap_gauge")->Set(2.5);
  LatencyHistogram* h = reg.GetHistogram("metrics_test.snap_us", {10.0, 20.0});
  h->Record(15.0);
  h->Record(99.0);

  JsonValue snapshot = reg.SnapshotJson();
  const JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("metrics_test.snap_counter")->as_number(),
                   7.0);
  const JsonValue* gauges = snapshot.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("metrics_test.snap_gauge")->as_number(), 2.5);
  const JsonValue* hist = snapshot.Find("histograms");
  ASSERT_NE(hist, nullptr);
  const JsonValue* snap = hist->Find("metrics_test.snap_us");
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->Find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(snap->Find("sum")->as_number(), 114.0);
  const JsonValue* buckets = snap->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->as_array().size(), 3u);  // 2 bounds + overflow
  EXPECT_DOUBLE_EQ(buckets->as_array()[1].Find("count")->as_number(), 1.0);
  // Overflow bucket is labeled "inf" so the snapshot stays strict JSON.
  EXPECT_EQ(buckets->as_array()[2].Find("le")->as_string(), "inf");
  EXPECT_DOUBLE_EQ(buckets->as_array()[2].Find("count")->as_number(), 1.0);

  // The snapshot must round-trip through the repo's own JSON parser.
  auto reparsed = ParseJson(snapshot.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

TEST(MetricsTest, SnapshotTextListsInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("metrics_test.text_counter")->Increment(3);
  std::string text = reg.SnapshotText();
  EXPECT_NE(text.find("metrics_test.text_counter"), std::string::npos);
}

TEST(MetricsTest, ResetAllZeroesButKeepsPointersValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("metrics_test.reset_counter");
  Gauge* g = reg.GetGauge("metrics_test.reset_gauge");
  LatencyHistogram* h = reg.GetHistogram("metrics_test.reset_us");
  c->Increment(5);
  g->Set(9.0);
  h->Record(1.0);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  // Same pointer still registered and usable.
  EXPECT_EQ(reg.GetCounter("metrics_test.reset_counter"), c);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsTest, ScopedLatencyRecordsOnceAndNullIsInert) {
  LatencyHistogram h({1e9});
  {
    ScopedLatency timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
  {
    ScopedLatency inert(nullptr);
  }
  EXPECT_EQ(h.count(), 1u);
}

}  // namespace
}  // namespace dbsherlock::common
