#include "common/parallel.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dbsherlock::common {
namespace {

TEST(EffectiveParallelismTest, ZeroMeansHardwareConcurrencyAtLeastOne) {
  EXPECT_GE(EffectiveParallelism(0), 1u);
}

TEST(EffectiveParallelismTest, ExplicitValuesPassThrough) {
  EXPECT_EQ(EffectiveParallelism(1), 1u);
  EXPECT_EQ(EffectiveParallelism(7), 7u);
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SerialPathRunsInIndexOrder) {
  std::vector<size_t> order;
  ParallelFor(16, [&](size_t i) { order.push_back(i); }, 1);
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ParallelForTest, EveryIndexRunsExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](size_t i) { ++hits[i]; }, 4);
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, FewerItemsThanLanes) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](size_t i) { ++hits[i]; }, 8);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, SingleItemRunsOnCaller) {
  std::atomic<int> calls{0};
  ParallelFor(1, [&](size_t) { ++calls; }, 8);
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, PropagatesExceptionSerial) {
  EXPECT_THROW(ParallelFor(
                   4,
                   [&](size_t i) {
                     if (i == 2) throw std::runtime_error("boom");
                   },
                   1),
               std::runtime_error);
}

TEST(ParallelForTest, PropagatesExceptionParallel) {
  EXPECT_THROW(ParallelFor(
                   64,
                   [&](size_t i) {
                     if (i == 11) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestRecordedIndex) {
  // Index 0 always throws before the abandon flag can suppress its chunk,
  // so the deterministic lowest-index rule must surface "0".
  try {
    ParallelFor(
        256, [&](size_t i) { throw std::runtime_error(std::to_string(i)); },
        4);
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "0");
  }
}

TEST(ParallelForTest, PoolSurvivesAFailedRun) {
  EXPECT_THROW(
      ParallelFor(32, [](size_t) { throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
  std::atomic<int> calls{0};
  ParallelFor(32, [&](size_t) { ++calls; }, 4);
  EXPECT_EQ(calls.load(), 32);
}

TEST(ParallelForTest, NestedCallsComplete) {
  std::vector<std::atomic<int>> hits(8 * 8);
  ParallelFor(
      8,
      [&](size_t outer) {
        ParallelFor(8, [&](size_t inner) { ++hits[outer * 8 + inner]; }, 4);
      },
      4);
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelRunnerTest, LanesFollowTheConstructorArgument) {
  EXPECT_GE(ParallelRunner(0).lanes(), 1u);  // hardware concurrency
  EXPECT_EQ(ParallelRunner(1).lanes(), 1u);
  EXPECT_EQ(ParallelRunner(4).lanes(), 4u);
}

TEST(ParallelRunnerTest, ReusedHandleRunsEveryIndexEachTime) {
  ParallelRunner runner(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::atomic<int>> hits(64);
    runner.Run(hits.size(), [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ParallelRunnerTest, SerialRunnerPreservesIndexOrder) {
  ParallelRunner runner(1);
  std::vector<size_t> order;
  runner.Run(16, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelRunnerTest, ExceptionDoesNotPoisonTheHandle) {
  ParallelRunner runner(4);
  EXPECT_THROW(
      runner.Run(32, [](size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> calls{0};
  runner.Run(32, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 32);
}

TEST(ParallelMapTest, ResultsInIndexOrder) {
  std::vector<size_t> out =
      ParallelMap(100, [](size_t i) { return i * i; }, 4);
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMapTest, SerialAndParallelAgree) {
  auto fn = [](size_t i) { return 3.5 * static_cast<double>(i) + 1.0; };
  EXPECT_EQ(ParallelMap(257, fn, 1), ParallelMap(257, fn, 4));
}

TEST(ThreadPoolTest, SubmittedTasksRun) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2u);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { ++done; });
  }
  while (done.load() < 10) std::this_thread::yield();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, EnsureAtLeastGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.EnsureAtLeast(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  pool.EnsureAtLeast(2);
  EXPECT_EQ(pool.num_threads(), 3u);
}

}  // namespace
}  // namespace dbsherlock::common
