#include <gtest/gtest.h>

#include "common/stats.h"
#include "simulator/dataset_gen.h"
#include "simulator/workload.h"

namespace dbsherlock::simulator {
namespace {

TEST(LoadTraceTest, ParsesSingleColumn) {
  auto trace = LoadTraceFromCsv("multiplier\n1.0\n1.5\n0.8\n");
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(*trace, (std::vector<double>{1.0, 1.5, 0.8}));
}

TEST(LoadTraceTest, ParsesTwoColumns) {
  auto trace = LoadTraceFromCsv("second,multiplier\n0,1.0\n1,2.0\n2,0.5\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(*trace, (std::vector<double>{1.0, 2.0, 0.5}));
}

TEST(LoadTraceTest, RejectsBadInput) {
  EXPECT_FALSE(LoadTraceFromCsv("").ok());
  EXPECT_FALSE(LoadTraceFromCsv("multiplier\n").ok());       // no rows
  EXPECT_FALSE(LoadTraceFromCsv("m\n0\n").ok());             // non-positive
  EXPECT_FALSE(LoadTraceFromCsv("m\n-1\n").ok());
  EXPECT_FALSE(LoadTraceFromCsv("m\nabc\n").ok());
  EXPECT_FALSE(LoadTraceFromCsv("a,b,c\n1,2,3\n").ok());     // 3 columns
  EXPECT_FALSE(
      LoadTraceFromCsv("second,m\n0,1.0\n5,2.0\n").ok());    // gap in seconds
}

TEST(LoadTraceTest, SimulatorFollowsTrace) {
  // A trace alternating 50 quiet / 50 busy seconds: the emitted throughput
  // must track it.
  WorkloadSpec workload = MakeTpccWorkload();
  for (int i = 0; i < 50; ++i) workload.load_trace.push_back(0.5);
  for (int i = 0; i < 50; ++i) workload.load_trace.push_back(1.4);

  ServerConfig config;
  config.hiccup_probability = 0.0;  // isolate the trace effect
  ServerSimulator sim(config, workload, 5);
  tsdata::Dataset data(MetricSchema());
  std::vector<AnomalyEvent> no_events;
  for (int t = 0; t < 100; ++t) {
    Metrics m = sim.Tick(no_events);
    ASSERT_TRUE(data.AppendRow(t, MetricsToCells(m)).ok());
  }
  auto col = data.ColumnByName("throughput_tps");
  ASSERT_TRUE(col.ok());
  std::vector<double> quiet, busy;
  for (int t = 5; t < 50; ++t) quiet.push_back((*col)->numeric(t));
  for (int t = 55; t < 100; ++t) busy.push_back((*col)->numeric(t));
  EXPECT_GT(common::Mean(busy), 2.0 * common::Mean(quiet));
}

TEST(LoadTraceTest, TraceRepeatsCyclically) {
  WorkloadSpec workload = MakeTpccWorkload();
  workload.load_trace = {1.0};  // constant; long runs keep working
  ServerConfig config;
  ServerSimulator sim(config, workload, 6);
  std::vector<AnomalyEvent> no_events;
  Metrics first = sim.Tick(no_events);
  for (int t = 0; t < 10; ++t) (void)sim.Tick(no_events);
  Metrics later = sim.Tick(no_events);
  // Same trace slot every second: throughput stays near the base rate.
  EXPECT_NEAR(later.throughput_tps, first.throughput_tps,
              0.4 * first.throughput_tps);
}

}  // namespace
}  // namespace dbsherlock::simulator
