// Cross-module integration tests: simulate -> serialize -> reload ->
// diagnose -> feed back -> re-diagnose, exercising the whole public API
// surface the way a downstream user would.

#include <gtest/gtest.h>

#include "core/explainer.h"
#include "eval/experiment.h"
#include "simulator/dataset_gen.h"
#include "tsdata/dataset_io.h"

namespace dbsherlock {
namespace {

TEST(IntegrationTest, CsvRoundTripPreservesDiagnosis) {
  simulator::DatasetGenOptions options;
  options.seed = 31337;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kIoSaturation, 60.0);

  // Serialize the telemetry to CSV and load it back.
  std::string csv = tsdata::DatasetToCsv(run.data);
  auto reloaded = tsdata::DatasetFromCsv(csv);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  core::Explainer sherlock;
  core::Explanation original = sherlock.Diagnose(run.data, run.regions);
  core::Explanation roundtrip = sherlock.Diagnose(*reloaded, run.regions);

  ASSERT_EQ(original.predicates.size(), roundtrip.predicates.size());
  for (size_t i = 0; i < original.predicates.size(); ++i) {
    EXPECT_EQ(original.predicates[i].predicate.ToString(),
              roundtrip.predicates[i].predicate.ToString());
    EXPECT_NEAR(original.predicates[i].separation_power,
                roundtrip.predicates[i].separation_power, 1e-9);
  }
}

TEST(IntegrationTest, FullWorkflowAcrossAnomalyClasses) {
  // Teach the explainer three causes, then diagnose a fresh instance of
  // each and check it is named first.
  core::Explainer sherlock;
  const simulator::AnomalyKind kinds[] = {
      simulator::AnomalyKind::kCpuSaturation,
      simulator::AnomalyKind::kNetworkCongestion,
      simulator::AnomalyKind::kDatabaseBackup,
  };
  for (int round = 0; round < 2; ++round) {  // two diagnoses each -> merge
    for (simulator::AnomalyKind kind : kinds) {
      simulator::DatasetGenOptions options;
      options.seed = 500 + static_cast<uint64_t>(kind) * 10 +
                     static_cast<uint64_t>(round);
      simulator::GeneratedDataset run =
          simulator::GenerateAnomalyDataset(options, kind, 55.0);
      core::Explanation ex = sherlock.Diagnose(run.data, run.regions);
      sherlock.AcceptDiagnosis(simulator::AnomalyKindName(kind), ex);
    }
  }
  EXPECT_EQ(sherlock.repository().size(), 3u);

  size_t correct = 0;
  for (simulator::AnomalyKind kind : kinds) {
    simulator::DatasetGenOptions options;
    options.seed = 900 + static_cast<uint64_t>(kind);
    simulator::GeneratedDataset run =
        simulator::GenerateAnomalyDataset(options, kind, 40.0);
    core::Explanation ex = sherlock.Diagnose(run.data, run.regions);
    if (!ex.causes.empty() &&
        ex.causes[0].cause == simulator::AnomalyKindName(kind)) {
      ++correct;
    }
  }
  EXPECT_EQ(correct, 3u);
}

TEST(IntegrationTest, SuggestedActionSurfacesWithRanking) {
  core::Explainer sherlock;
  simulator::DatasetGenOptions options;
  options.seed = 4242;
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kFlushLogTable, 60.0);
  core::Explanation ex = sherlock.Diagnose(run.data, run.regions);
  sherlock.AcceptDiagnosis("Flush Log/Table", ex,
                           "re-enable adaptive flushing");

  simulator::DatasetGenOptions next = options;
  next.seed = 4243;
  simulator::GeneratedDataset again = simulator::GenerateAnomalyDataset(
      next, simulator::AnomalyKind::kFlushLogTable, 45.0);
  core::Explanation second = sherlock.Diagnose(again.data, again.regions);
  ASSERT_FALSE(second.causes.empty());
  EXPECT_EQ(second.causes[0].cause, "Flush Log/Table");
  EXPECT_EQ(second.causes[0].suggested_action,
            "re-enable adaptive flushing");
}

TEST(IntegrationTest, ActionSurvivesModelMerge) {
  core::CausalModel a{"cause",
                      {core::Predicate{"x", core::PredicateType::kGreaterThan,
                                       5.0, 0.0, {}}},
                      1,
                      "older action"};
  core::CausalModel b{"cause",
                      {core::Predicate{"x", core::PredicateType::kGreaterThan,
                                       3.0, 0.0, {}}},
                      1,
                      ""};
  auto merged = core::MergeCausalModels(a, b);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->suggested_action, "older action");

  core::CausalModel c{"cause", b.predicates, 1, "newer action"};
  auto merged2 = core::MergeCausalModels(*merged, c);
  ASSERT_TRUE(merged2.ok());
  EXPECT_EQ(merged2->suggested_action, "newer action");
}

TEST(IntegrationTest, ExperimentDatasetsAreReproducible) {
  simulator::DatasetGenOptions options;
  options.seed = 777;
  eval::Corpus a = eval::GenerateCorpus(options);
  eval::Corpus b = eval::GenerateCorpus(options);
  for (size_t c = 0; c < a.num_classes(); ++c) {
    for (size_t i = 0; i < a.by_class[c].size(); ++i) {
      ASSERT_EQ(a.by_class[c][i].data.num_rows(),
                b.by_class[c][i].data.num_rows());
      // Spot-check a column.
      auto col_a = a.by_class[c][i].data.column(0).numeric_values();
      auto col_b = b.by_class[c][i].data.column(0).numeric_values();
      EXPECT_EQ(col_a[col_a.size() / 2], col_b[col_b.size() / 2]);
    }
  }
}

}  // namespace
}  // namespace dbsherlock
