// End-to-end tests for dbsherlockd over the real TCP socket path:
// 8 simulated tenants streaming concurrently with one injected anomaly
// each (every cause must rank top-1 over an overlapping region),
// backpressure under a forced slow consumer without losing acked rows,
// and daemon-restart recovery of every model persisted through the wire.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "eval/service_replay.h"
#include "service/client.h"
#include "service/server.h"

namespace dbsherlock::service {
namespace {

std::unique_ptr<DurableModelStore> MustOpen(
    DurableModelStore::Options options) {
  auto store = DurableModelStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

tsdata::Schema TwoNumeric() {
  return tsdata::Schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
}

/// The ISSUE's acceptance scenario: 8 tenants stream concurrently over
/// the socket, each with one injected anomaly; every tenant must get a
/// diagnosis with the correct cause ranked top-1 over a region that
/// overlaps the injected ground truth.
TEST(ServiceE2eTest, EightTenantsDiagnosedTopOneOverTheSocket) {
  auto store = MustOpen({});
  eval::ServiceReplayOptions options;  // defaults: 8 tenants, all kinds
  auto result = eval::RunServiceReplay(options, store.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tenants.size(), 8u);
  EXPECT_TRUE(result->AllCorrect()) << result->ToJson().Dump(2);
  for (const eval::TenantReplayOutcome& tenant : result->tenants) {
    EXPECT_GT(tenant.rows_sent, 0u) << tenant.tenant;
    EXPECT_GE(tenant.diagnoses, 1u) << tenant.tenant;
  }
  EXPECT_GT(result->rows_acked, 0u);
  EXPECT_GE(result->diagnoses_total, 8u);
  EXPECT_GT(result->models_stored, 0u);
  EXPECT_GT(result->rows_per_sec, 0.0);
  EXPECT_GE(result->p99_append_us, result->mean_append_us * 0.5);
}

TEST(ServiceE2eTest, BackpressureOverTheSocketLosesNoAckedRow) {
  auto store = MustOpen({});
  Service::Options service_options;
  service_options.store = store.get();
  service_options.queue_capacity = 2;
  service_options.ingest_workers = 1;
  service_options.diagnosis_workers = 1;
  service_options.ingest_batch = 1;
  service_options.retry_after_ms = 1;
  service_options.process_delay_us = 3000;  // forced slow consumer
  Service service(service_options);
  Server::Options server_options;
  server_options.service = &service;
  auto server = Server::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Hello("t0", TwoNumeric()).ok());
  size_t retries = 0;
  const int kRows = 60;
  for (int t = 0; t < kRows; ++t) {
    ASSERT_TRUE((*client)
                    ->AppendRetrying("t0", t, {10.0, 40.0},
                                     /*max_retries=*/100000, &retries)
                    .ok());
  }
  EXPECT_GT(retries, 0u) << "queue of 2 never pushed back?";
  ASSERT_TRUE((*client)->Flush("t0").ok());

  // RETRY_AFTER rows were refused, not buffered; every acked row was
  // drained through the monitor.
  EXPECT_EQ(service.total_acked(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(service.total_shed(), retries);
  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const common::JsonValue* tenant = stats->Find("tenants")->Find("t0");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->GetNumber("processed").ValueOr(-1),
            static_cast<double>(kRows));
  (void)(*client)->Quit();
  (*server)->Stop();
  service.Stop();
}

/// The ISSUE's retrospective-diagnosis acceptance scenario: with the
/// default 600-row sliding window, stream 10k+ rows whose only anomaly
/// sits near the start. By the end the anomaly is ~9k rows out of the
/// window — only the tenant's history store still has it. DIAGNOSE_RANGE
/// over the ground-truth region must rank the taught cause top-1.
TEST(ServiceE2eTest, DiagnoseRangeRanksCauseTopOneAfterWindowMovedOn) {
  auto store = MustOpen({});
  std::string root = testing::TempDir() + "/dbsherlock_e2e_hist_" +
                     std::to_string(getpid());
  std::string cleanup = "rm -rf '" + root + "'";
  (void)std::system(cleanup.c_str());

  Service::Options service_options;
  service_options.store = store.get();
  service_options.tenants.monitor.window_rows = 600;
  service_options.tenants.store.dir = root;
  service_options.tenants.store.fsync_on_seal = false;  // test speed
  Service service(service_options);
  Server::Options server_options;
  server_options.service = &service;
  auto server = Server::Start(server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  core::CausalModel model;
  model.cause = "CPU hog";
  model.suggested_action = "throttle the batch job";
  model.predicates = {
      core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}},
      core::Predicate{
          "latency", core::PredicateType::kGreaterThan, 50.0, 0.0, {}}};
  ASSERT_TRUE((*client)->Teach(model).ok());
  ASSERT_TRUE((*client)->Hello("t0", TwoNumeric()).ok());

  common::Pcg32 rng(7);
  const int kRows = 10500;
  const double kAnomalyStart = 1000.0;
  const double kAnomalyEnd = 1060.0;
  for (int t = 0; t < kRows; ++t) {
    bool ab = t >= kAnomalyStart && t < kAnomalyEnd;
    double latency = (ab ? 90.0 : 10.0) + rng.NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng.NextGaussian(0.0, 2.0);
    ASSERT_TRUE((*client)
                    ->AppendRetrying("t0", t, {latency, cpu},
                                     /*max_retries=*/100000)
                    .ok());
  }
  ASSERT_TRUE((*client)->Flush("t0").ok());

  // QUERY proves the anomaly is readable from history over the wire...
  auto rows = (*client)->Query("t0", kAnomalyStart, kAnomalyEnd);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->GetNumber("rows").ValueOr(-1.0),
            kAnomalyEnd - kAnomalyStart);

  // ...and DIAGNOSE_RANGE over the ground-truth region names the cause.
  auto diagnosis = (*client)->DiagnoseRange("t0", kAnomalyStart, kAnomalyEnd);
  ASSERT_TRUE(diagnosis.ok()) << diagnosis.status().ToString();
  auto causes = diagnosis->GetArray("causes");
  ASSERT_TRUE(causes.ok());
  ASSERT_FALSE((*causes)->as_array().empty());
  EXPECT_EQ((*causes)->as_array().front().GetString("cause").ValueOr(""),
            "CPU hog");

  // The ISSUE's DQL acceptance scenario, same live daemon: a declarative
  // EXPLAIN with a percentile threshold must find the anomaly region via
  // pushdown discovery and rank the taught cause top-1.
  auto report = (*client)->Explain(
      "t0",
      "EXPLAIN WHERE latency > p99 BETWEEN 990 1070 RANK BY confidence "
      "TOP 3");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto findings = report->GetArray("findings");
  ASSERT_TRUE(findings.ok()) << report->Dump(2);
  ASSERT_FALSE((*findings)->as_array().empty()) << report->Dump(2);
  // The finding overlapping the injected [1000, 1060) region must rank
  // the taught cause top-1 (a stray normal-tail match may precede it).
  bool found_injected = false;
  for (const common::JsonValue& finding : (*findings)->as_array()) {
    const common::JsonValue* region = finding.Find("region");
    ASSERT_NE(region, nullptr);
    if (region->GetNumber("start").ValueOr(0.0) >= kAnomalyEnd ||
        region->GetNumber("end").ValueOr(0.0) <= kAnomalyStart) {
      continue;
    }
    found_injected = true;
    auto top_causes = finding.GetArray("causes");
    ASSERT_TRUE(top_causes.ok());
    ASSERT_FALSE((*top_causes)->as_array().empty()) << report->Dump(2);
    EXPECT_EQ(
        (*top_causes)->as_array().front().GetString("cause").ValueOr(""),
        "CPU hog");
  }
  EXPECT_TRUE(found_injected) << report->Dump(2);
  // Region discovery rode the zone-map pushdown: strictly fewer segments
  // decoded than a full scan of the store would inflate.
  const common::JsonValue* discovery = report->Find("discovery");
  ASSERT_NE(discovery, nullptr);
  EXPECT_LT(discovery->GetNumber("segments_decoded").ValueOr(1e9),
            discovery->GetNumber("segments").ValueOr(0.0));
  // The report ships a human rendering alongside the structured object.
  std::string markdown = report->GetString("markdown").ValueOr("");
  EXPECT_NE(markdown.find("CPU hog"), std::string::npos);
  EXPECT_NE(markdown.find("Finding 1"), std::string::npos);

  // A malformed statement comes back as ERR with the multi-line caret
  // diagnostic intact across the line protocol (the ERR JSON-string
  // encoding regression this PR fixes).
  auto bad = (*client)->Explain("t0", "EXPLAIN WHERE latency >");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), common::StatusCode::kParseError);
  EXPECT_NE(bad.status().message().find('\n'), std::string::npos);
  EXPECT_NE(bad.status().message().find('^'), std::string::npos);

  (void)(*client)->Quit();
  (*server)->Stop();
  service.Stop();
}

TEST(ServiceE2eTest, RestartRecoversModelsTaughtOverTheWire) {
  DurableModelStore::Options store_options;
  store_options.dir = testing::TempDir() + "/dbsherlock_e2e_wal_" +
                      std::to_string(getpid());
  std::remove((store_options.dir + "/snapshot.json").c_str());
  std::remove((store_options.dir + "/wal.log").c_str());

  {  // First daemon lifetime: teach two models through the socket.
    auto store = MustOpen(store_options);
    Service::Options service_options;
    service_options.store = store.get();
    Service service(service_options);
    Server::Options server_options;
    server_options.service = &service;
    auto server = Server::Start(server_options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    for (const char* cause : {"Lock Contention", "I/O Saturation"}) {
      core::CausalModel model;
      model.cause = cause;
      model.predicates = {core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}}};
      ASSERT_TRUE((*client)->Teach(model).ok());
    }
    auto models = (*client)->Models();
    ASSERT_TRUE(models.ok());
    EXPECT_EQ((*models->GetArray("models"))->as_array().size(), 2u);
    (void)(*client)->Quit();
    (*server)->Stop();
    service.Stop();
  }

  // Second lifetime: everything acked over the wire came back.
  auto store = MustOpen(store_options);
  EXPECT_EQ(store->num_models(), 2u);
  EXPECT_EQ(store->recovery().wal_records_applied, 2u);
  EXPECT_EQ(store->recovery().truncated_bytes, 0u);
}

}  // namespace
}  // namespace dbsherlock::service
