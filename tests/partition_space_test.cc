#include "core/partition_space.h"

#include <gtest/gtest.h>

#include <vector>

namespace dbsherlock::core {
namespace {

using tsdata::LabeledRows;

// Shorthand for building label sequences in expectations.
constexpr PartitionLabel E = PartitionLabel::kEmpty;
constexpr PartitionLabel N = PartitionLabel::kNormal;
constexpr PartitionLabel A = PartitionLabel::kAbnormal;

PartitionSpace SpaceWithLabels(const std::vector<PartitionLabel>& labels) {
  PartitionSpace space = PartitionSpace::Numeric(
      0.0, static_cast<double>(labels.size()), labels.size());
  for (size_t j = 0; j < labels.size(); ++j) space.set_label(j, labels[j]);
  return space;
}

std::vector<PartitionLabel> Labels(const PartitionSpace& space) {
  return space.labels();
}

TEST(PartitionSpaceTest, NumericBoundsAndMembership) {
  PartitionSpace space = PartitionSpace::Numeric(0.0, 100.0, 5);
  EXPECT_EQ(space.size(), 5u);
  EXPECT_DOUBLE_EQ(space.lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(space.upper_bound(0), 20.0);
  EXPECT_DOUBLE_EQ(space.lower_bound(4), 80.0);
  EXPECT_DOUBLE_EQ(space.mid_value(2), 50.0);
  EXPECT_EQ(space.PartitionOf(0.0), 0u);
  EXPECT_EQ(space.PartitionOf(19.999), 0u);
  EXPECT_EQ(space.PartitionOf(20.0), 1u);
  EXPECT_EQ(space.PartitionOf(100.0), 4u);  // max clamps into last
  EXPECT_EQ(space.PartitionOf(-5.0), 0u);
  EXPECT_EQ(space.PartitionOf(1e9), 4u);
}

TEST(PartitionSpaceTest, ZeroPartitionsBecomesOne) {
  PartitionSpace space = PartitionSpace::Numeric(0.0, 1.0, 0);
  EXPECT_EQ(space.size(), 1u);
}

TEST(PartitionSpaceTest, CategoricalConstruction) {
  PartitionSpace space = PartitionSpace::Categorical({"a", "b", "c"});
  EXPECT_FALSE(space.is_numeric());
  EXPECT_EQ(space.size(), 3u);
  EXPECT_EQ(space.category(1), "b");
}

// --- Labeling -------------------------------------------------------------

TEST(LabelingTest, NumericPureAndMixedPartitions) {
  // 10 partitions over [0, 10): values land in the partition of their
  // integer part.
  std::vector<double> values = {0.5, 1.5, 1.6, 2.5, 3.5};
  LabeledRows rows;
  rows.normal = {0, 2};    // values 0.5, 1.6
  rows.abnormal = {1, 3};  // values 1.5, 2.5  (partition 1 is mixed)
  // Row 4 (3.5) belongs to neither region -> its partition stays Empty.
  PartitionSpace space = PartitionSpace::Numeric(0.0, 10.0, 10);
  LabelNumericPartitions(values, rows, &space);
  EXPECT_EQ(space.label(0), N);  // only value 0.5 (normal)
  EXPECT_EQ(space.label(1), E);  // mixed: 1.5 abnormal + 1.6 normal
  EXPECT_EQ(space.label(2), A);  // only 2.5 (abnormal)
  EXPECT_EQ(space.label(3), E);  // 3.5 is an ignored row
  EXPECT_EQ(space.label(4), E);  // no tuples
}

TEST(LabelingTest, CategoricalMajorityRule) {
  std::vector<int32_t> codes = {0, 0, 0, 1, 1, 2, 2};
  LabeledRows rows;
  rows.abnormal = {0, 1, 3, 5};  // codes 0,0,1,2
  rows.normal = {2, 4, 6};       // codes 0,1,2
  PartitionSpace space = PartitionSpace::Categorical({"x", "y", "z"});
  LabelCategoricalPartitions(codes, rows, &space);
  EXPECT_EQ(space.label(0), A);  // 2 abnormal vs 1 normal
  EXPECT_EQ(space.label(1), E);  // tie 1-1
  EXPECT_EQ(space.label(2), E);  // tie 1-1
}

TEST(LabelingTest, CategoricalNormalMajority) {
  std::vector<int32_t> codes = {0, 0, 0};
  LabeledRows rows;
  rows.abnormal = {0};
  rows.normal = {1, 2};
  PartitionSpace space = PartitionSpace::Categorical({"only"});
  LabelCategoricalPartitions(codes, rows, &space);
  EXPECT_EQ(space.label(0), N);
}

// --- Filtering (Figure 5 scenarios) ----------------------------------------

TEST(FilteringTest, Scenario1BothNeighborsSameKeeps) {
  PartitionSpace space = SpaceWithLabels({A, E, A, E, A});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{A, E, A, E, A}));
}

TEST(FilteringTest, Scenario2LeftNeighborDiffersFilters) {
  // N A A: the middle A has left neighbor N -> filtered; the end A has
  // only neighbor A (same, pre-filter labels) -> kept; N has neighbor A
  // -> filtered.
  PartitionSpace space = SpaceWithLabels({N, A, A});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{E, E, A}));
}

TEST(FilteringTest, Scenario3RightNeighborDiffersFilters) {
  PartitionSpace space = SpaceWithLabels({A, A, N});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{A, E, E}));
}

TEST(FilteringTest, Scenario4BothNeighborsDifferFilters) {
  PartitionSpace space = SpaceWithLabels({N, A, N});
  FilterPartitions(&space);
  // A filtered (both neighbors differ); both Ns filtered too (their only
  // neighbor A differs).
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{E, E, E}));
}

TEST(FilteringTest, DecisionsUseOriginalLabelsSimultaneously) {
  // N N A A A N N: boundary partitions are filtered but the middles stay,
  // which proves decisions are not cascaded incrementally.
  PartitionSpace space = SpaceWithLabels({N, N, A, A, A, N, N});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space),
            (std::vector<PartitionLabel>{N, E, E, A, E, E, N}));
}

TEST(FilteringTest, NeighborsSkipEmptyPartitions) {
  // A . N (with a gap): A's nearest non-empty neighbor is N -> both go.
  PartitionSpace space = SpaceWithLabels({A, E, E, N});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{E, E, E, E}));
}

TEST(FilteringTest, LonePartitionIsSignificant) {
  PartitionSpace space = SpaceWithLabels({E, E, A, E});
  FilterPartitions(&space);
  EXPECT_EQ(space.label(2), A);
}

TEST(FilteringTest, IsolatedNoiseInUniformRunRemoved) {
  // A single N inside a long A run is noise; it and its direct victims go.
  PartitionSpace space = SpaceWithLabels({A, A, N, A, A});
  FilterPartitions(&space);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{A, E, E, E, A}));
}

// --- Gap filling ------------------------------------------------------------

TEST(GapFillingTest, NeutralDeltaSplitsByDistance) {
  PartitionSpace space = SpaceWithLabels({A, E, E, E, E, E, N});
  FillPartitionGaps(&space, 1.0, std::nullopt);
  // Positions 1,2 closer to A; 4,5 closer to N; position 3 ties -> Normal.
  EXPECT_EQ(Labels(space),
            (std::vector<PartitionLabel>{A, A, A, N, N, N, N}));
}

TEST(GapFillingTest, LargeDeltaShrinksAbnormal) {
  PartitionSpace space = SpaceWithLabels({A, E, E, E, E, E, N});
  FillPartitionGaps(&space, 10.0, std::nullopt);
  // delta = 10 pushes the abnormal side away: every gap becomes Normal.
  EXPECT_EQ(Labels(space),
            (std::vector<PartitionLabel>{A, N, N, N, N, N, N}));
}

TEST(GapFillingTest, SmallDeltaGrowsAbnormal) {
  PartitionSpace space = SpaceWithLabels({A, E, E, E, E, E, N});
  FillPartitionGaps(&space, 0.1, std::nullopt);
  EXPECT_EQ(Labels(space),
            (std::vector<PartitionLabel>{A, A, A, A, A, A, N}));
}

TEST(GapFillingTest, EdgesTakeNearestLabel) {
  PartitionSpace space = SpaceWithLabels({E, E, A, E, N, E});
  FillPartitionGaps(&space, 1.0, std::nullopt);
  EXPECT_EQ(space.label(0), A);
  EXPECT_EQ(space.label(1), A);
  EXPECT_EQ(space.label(5), N);
}

TEST(GapFillingTest, AllAbnormalUsesNormalAnchor) {
  // Only abnormal partitions remain; the anchor value (7.5 -> partition 7)
  // is forced Normal so a predicate direction exists.
  PartitionSpace space = PartitionSpace::Numeric(0.0, 10.0, 10);
  space.set_label(1, A);
  FillPartitionGaps(&space, 1.0, 7.5);
  EXPECT_EQ(space.label(7), N);
  EXPECT_EQ(space.label(0), A);
  EXPECT_EQ(space.label(9), N);
  // A single contiguous abnormal block must remain on the left.
  auto block = SingleAbnormalBlock(space);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->first, 0u);
}

TEST(GapFillingTest, AnchorNotUsedWhenNormalExists) {
  PartitionSpace space = SpaceWithLabels({A, E, N, E});
  FillPartitionGaps(&space, 1.0, 3.9);  // anchor would hit partition 3
  // Partition 3's label comes from its neighbor N, not from the anchor
  // mechanism (which must not fire when a Normal partition exists).
  EXPECT_EQ(space.label(3), N);
  EXPECT_EQ(space.label(1), N);  // tie at distance 1 -> Normal
}

TEST(GapFillingTest, AllEmptyStaysEmpty) {
  PartitionSpace space = SpaceWithLabels({E, E, E});
  FillPartitionGaps(&space, 10.0, 1.0);
  EXPECT_EQ(Labels(space), (std::vector<PartitionLabel>{E, E, E}));
}

// --- Single abnormal block ---------------------------------------------------

TEST(SingleBlockTest, FindsBlock) {
  PartitionSpace space = SpaceWithLabels({N, A, A, A, N});
  auto block = SingleAbnormalBlock(space);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->first, 1u);
  EXPECT_EQ(block->last, 3u);
}

TEST(SingleBlockTest, RejectsTwoRuns) {
  PartitionSpace space = SpaceWithLabels({A, N, A});
  EXPECT_FALSE(SingleAbnormalBlock(space).has_value());
}

TEST(SingleBlockTest, RejectsRunsSplitByEmpty) {
  PartitionSpace space = SpaceWithLabels({A, E, A});
  EXPECT_FALSE(SingleAbnormalBlock(space).has_value());
}

TEST(SingleBlockTest, NoneWhenNoAbnormal) {
  PartitionSpace space = SpaceWithLabels({N, N, E});
  EXPECT_FALSE(SingleAbnormalBlock(space).has_value());
}

TEST(SingleBlockTest, WholeSpaceBlock) {
  PartitionSpace space = SpaceWithLabels({A, A, A});
  auto block = SingleAbnormalBlock(space);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->first, 0u);
  EXPECT_EQ(block->last, 2u);
}

TEST(PartitionSpaceTest, CountWithLabel) {
  PartitionSpace space = SpaceWithLabels({A, N, E, A});
  EXPECT_EQ(space.CountWithLabel(A), 2u);
  EXPECT_EQ(space.CountWithLabel(N), 1u);
  EXPECT_EQ(space.CountWithLabel(E), 1u);
}

}  // namespace
}  // namespace dbsherlock::core
