#include "core/anomaly_detector.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/stats.h"

namespace dbsherlock::core {
namespace {

TEST(PotentialPowerTest, FlatSeriesIsZeroish) {
  std::vector<double> flat(100, 0.5);
  EXPECT_DOUBLE_EQ(PotentialPower(flat, 20), 0.0);
}

TEST(PotentialPowerTest, StepSeriesIsLarge) {
  std::vector<double> series(100, 0.0);
  for (size_t i = 40; i < 70; ++i) series[i] = 1.0;
  EXPECT_GT(PotentialPower(series, 20), 0.9);
}

TEST(PotentialPowerTest, SingleSpikeIsDampedByMedianFilter) {
  // The median filter ignores a 1-sample spike in a window of 20 — this is
  // why potential power beats max-deviation feature selection on noisy
  // telemetry.
  std::vector<double> series(100, 0.5);
  series[50] = 1.0;
  EXPECT_LT(PotentialPower(series, 20), 0.1);
}

TEST(PotentialPowerTest, ShortSeriesReturnsZero) {
  std::vector<double> series(10, 0.5);
  EXPECT_DOUBLE_EQ(PotentialPower(series, 20), 0.0);
  EXPECT_DOUBLE_EQ(PotentialPower(series, 0), 0.0);
}

/// A dataset with `n` rows where attributes shift inside [start, end).
tsdata::Dataset DetectorData(size_t n, size_t start, size_t end,
                             uint64_t seed) {
  tsdata::Dataset d(tsdata::Schema(
      {{"latency", tsdata::AttributeKind::kNumeric},
       {"cpu", tsdata::AttributeKind::kNumeric},
       {"noise", tsdata::AttributeKind::kNumeric},
       {"mode", tsdata::AttributeKind::kCategorical}}));
  common::Pcg32 rng(seed);
  for (size_t t = 0; t < n; ++t) {
    bool ab = t >= start && t < end;
    double latency = (ab ? 80.0 : 10.0) + rng.NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng.NextGaussian(0.0, 2.0);
    // An uninformative attribute. Gaussian, not uniform: a uniform column
    // would have sliding-window medians wandering past PPt by itself and
    // be (correctly, per the paper's rule) selected as a feature.
    double noise = 50.0 + rng.NextGaussian(0.0, 2.0);
    EXPECT_TRUE(
        d.AppendRow(static_cast<double>(t),
                    {latency, cpu, noise, std::string("steady")})
            .ok());
  }
  return d;
}

TEST(DetectAnomaliesTest, FindsInjectedWindow) {
  tsdata::Dataset d = DetectorData(600, 300, 360, 31);
  DetectionResult result = DetectAnomalies(d, {});
  // The detector selects the shifted attributes...
  ASSERT_GE(result.selected_attributes.size(), 2u);
  EXPECT_EQ(result.selected_attributes[0], "latency");
  EXPECT_EQ(result.selected_attributes[1], "cpu");
  // ...and flags (roughly) the injected rows.
  ASSERT_FALSE(result.abnormal_rows.empty());
  size_t inside = 0;
  for (size_t row : result.abnormal_rows) {
    if (row >= 300 && row < 360) ++inside;
  }
  double precision = static_cast<double>(inside) /
                     static_cast<double>(result.abnormal_rows.size());
  double recall = static_cast<double>(inside) / 60.0;
  EXPECT_GT(precision, 0.9);
  // A few boundary rows land as DBSCAN noise (unreported), so recall is
  // below 1 even on a clean step — the paper's detector has the same
  // property (Table 7: automatic trails manual slightly).
  EXPECT_GT(recall, 0.65);
}

TEST(DetectAnomaliesTest, RegionSpecCoversFlaggedRows) {
  tsdata::Dataset d = DetectorData(600, 300, 360, 32);
  DetectionResult result = DetectAnomalies(d, {});
  for (size_t row : result.abnormal_rows) {
    EXPECT_TRUE(result.abnormal.Contains(d.timestamp(row)));
  }
}

TEST(DetectAnomaliesTest, NoAnomalyMeansNothingSelected) {
  tsdata::Dataset d = DetectorData(600, 0, 0, 33);  // no shift anywhere
  DetectionResult result = DetectAnomalies(d, {});
  EXPECT_TRUE(result.selected_attributes.empty());
  EXPECT_TRUE(result.abnormal_rows.empty());
  EXPECT_TRUE(result.abnormal.empty());
}

TEST(DetectAnomaliesTest, EmptyDataset) {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  DetectionResult result = DetectAnomalies(d, {});
  EXPECT_TRUE(result.abnormal_rows.empty());
}

TEST(DetectAnomaliesTest, LargeAnomalyExceedsClusterCutoff) {
  // When the "anomaly" covers half the data it is no longer a small
  // cluster, so nothing is reported (the paper's <20% assumption).
  tsdata::Dataset d = DetectorData(600, 100, 400, 34);
  DetectionResult result = DetectAnomalies(d, {});
  size_t inside = 0;
  for (size_t row : result.abnormal_rows) {
    if (row >= 100 && row < 400) ++inside;
  }
  EXPECT_LT(inside, 200u);
}

TEST(DetectionToRegionsTest, GuardBandIsIgnored) {
  tsdata::Dataset d = DetectorData(600, 300, 360, 41);
  AnomalyDetectorOptions options;
  DetectionResult result = DetectAnomalies(d, options);
  ASSERT_FALSE(result.abnormal.empty());
  tsdata::DiagnosisRegions regions = DetectionToRegions(result, d, options);
  const tsdata::TimeRange& core = regions.abnormal.ranges()[0];
  // Just inside the detected range: abnormal. Just outside (within the
  // guard): ignored. Far outside: normal.
  EXPECT_EQ(regions.LabelOf(core.start + 1.0), tsdata::RowLabel::kAbnormal);
  EXPECT_EQ(regions.LabelOf(core.start - 2.0), tsdata::RowLabel::kIgnored);
  EXPECT_EQ(regions.LabelOf(core.end + 2.0), tsdata::RowLabel::kIgnored);
  EXPECT_EQ(regions.LabelOf(core.start - options.boundary_guard_sec - 5.0),
            tsdata::RowLabel::kNormal);
  EXPECT_EQ(regions.LabelOf(core.end + options.boundary_guard_sec + 5.0),
            tsdata::RowLabel::kNormal);
}

TEST(DetectionToRegionsTest, ZeroGuardFallsBackToImplicitNormal) {
  tsdata::Dataset d = DetectorData(600, 300, 360, 42);
  AnomalyDetectorOptions options;
  options.boundary_guard_sec = 0.0;
  DetectionResult result = DetectAnomalies(d, options);
  tsdata::DiagnosisRegions regions = DetectionToRegions(result, d, options);
  EXPECT_TRUE(regions.normal.empty());
  EXPECT_FALSE(regions.abnormal.empty());
}

TEST(DetectionToRegionsTest, EmptyDetectionGivesEmptyRegions) {
  tsdata::Dataset d = DetectorData(600, 0, 0, 43);
  AnomalyDetectorOptions options;
  DetectionResult result = DetectAnomalies(d, options);
  tsdata::DiagnosisRegions regions = DetectionToRegions(result, d, options);
  EXPECT_TRUE(regions.abnormal.empty());
  EXPECT_TRUE(regions.normal.empty());
}

TEST(DetectAnomaliesTest, FragmentsBridgedByMergeGap) {
  // Two abnormal windows 3 s apart merge into one region.
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(44);
  for (size_t t = 0; t < 600; ++t) {
    bool ab = (t >= 300 && t < 325) || (t >= 328 && t < 355);
    ASSERT_TRUE(
        d.AppendRow(static_cast<double>(t),
                    {(ab ? 80.0 : 10.0) + rng.NextGaussian(0.0, 1.0)})
            .ok());
  }
  DetectionResult result = DetectAnomalies(d, {});
  ASSERT_EQ(result.abnormal.ranges().size(), 1u);
  EXPECT_LE(result.abnormal.ranges()[0].start, 302.0);
  EXPECT_GE(result.abnormal.ranges()[0].end, 352.0);
}

// Sweep anomaly positions and lengths: detection stays accurate.
struct DetectParam {
  size_t start;
  size_t len;
};
class DetectionSweep : public ::testing::TestWithParam<DetectParam> {};

TEST_P(DetectionSweep, RecoversWindow) {
  DetectParam p = GetParam();
  tsdata::Dataset d =
      DetectorData(600, p.start, p.start + p.len, 100 + p.start + p.len);
  DetectionResult result = DetectAnomalies(d, {});
  ASSERT_FALSE(result.abnormal_rows.empty());
  size_t inside = 0;
  for (size_t row : result.abnormal_rows) {
    if (row >= p.start && row < p.start + p.len) ++inside;
  }
  double recall =
      static_cast<double>(inside) / static_cast<double>(p.len);
  EXPECT_GT(recall, 0.7) << "start=" << p.start << " len=" << p.len;
}

INSTANTIATE_TEST_SUITE_P(
    WindowSweep, DetectionSweep,
    ::testing::Values(DetectParam{50, 40}, DetectParam{200, 60},
                      DetectParam{450, 80}, DetectParam{520, 50},
                      DetectParam{30, 100}));

}  // namespace
}  // namespace dbsherlock::core
