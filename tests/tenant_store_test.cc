// TenantStore: seal/scan/tail stitching, crash recovery (torn tails
// dropped exactly once, intact segments kept), retention by bytes and
// age, and the schema / ordering invariants the service relies on.

#include "store/tenant_store.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/faultenv.h"
#include "store/segment.h"
#include "tsdata/dataset.h"

namespace dbsherlock::store {
namespace {

using tsdata::AttributeKind;
using tsdata::Cell;
using tsdata::Dataset;
using tsdata::Schema;

Schema TestSchema() {
  return Schema({{"cpu", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

/// Per-test directory; wiped so reruns in the same TempDir start clean.
std::string StoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_tstore_" +
                    std::to_string(getpid()) + "_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

std::unique_ptr<TenantStore> MustOpen(TenantStore::Options options) {
  auto store = TenantStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TenantStore::Options SmallOptions(const std::string& dir) {
  TenantStore::Options options;
  options.dir = dir;
  options.schema = TestSchema();
  options.seal_rows = 10;
  options.fsync_on_seal = false;  // tests: speed over durability
  return options;
}

std::vector<Cell> Row(double cpu, const std::string& mode) {
  return {cpu, mode};
}

/// Appends rows t = [from, to) with cpu = t.
void Fill(TenantStore* store, int from, int to) {
  for (int t = from; t < to; ++t) {
    ASSERT_TRUE(
        store->Append(t, Row(t, t % 2 == 0 ? "even" : "odd")).ok());
  }
}

TEST(TenantStoreTest, AppendSealsEverySealRows) {
  auto store = MustOpen(SmallOptions(StoreDir("seal")));
  Fill(store.get(), 0, 25);
  EXPECT_EQ(store->num_segments(), 2u);
  EXPECT_EQ(store->sealed_rows(), 20u);
  EXPECT_EQ(store->active_rows(), 5u);
  ASSERT_TRUE(store->Seal().ok());
  EXPECT_EQ(store->num_segments(), 3u);
  EXPECT_EQ(store->active_rows(), 0u);
  EXPECT_TRUE(store->Seal().ok());  // empty active: no-op
  EXPECT_EQ(store->num_segments(), 3u);
  EXPECT_GT(store->compression_ratio(), 0.0);
}

TEST(TenantStoreTest, ScanStitchesSegmentsAndActiveTail) {
  auto store = MustOpen(SmallOptions(StoreDir("scan")));
  Fill(store.get(), 0, 25);  // 2 sealed segments + 5 active rows
  auto scan = store->Scan(7.0, 23.0);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  ASSERT_EQ(scan->num_rows(), 16u);  // [7, 23)
  for (size_t i = 0; i < scan->num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(scan->timestamp(i), 7.0 + i);
    EXPECT_DOUBLE_EQ(scan->column(0).numeric(i), 7.0 + i);
  }
  EXPECT_TRUE(scan->TimestampsSorted());
  // Categorical cells survive the stitch.
  const tsdata::Column& mode = scan->column(1);
  EXPECT_EQ(mode.CategoryName(mode.code(1)), "even");  // t = 8
}

TEST(TenantStoreTest, ScanOutsideHistoryIsEmptyAndBadRangeRejected) {
  auto store = MustOpen(SmallOptions(StoreDir("scanedge")));
  Fill(store.get(), 0, 12);
  auto empty = store->Scan(100.0, 200.0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_rows(), 0u);
  EXPECT_FALSE(store->Scan(5.0, 5.0).ok());
  EXPECT_FALSE(store->Scan(9.0, 2.0).ok());
}

TEST(TenantStoreTest, ScanTailReturnsNewestRowsAcrossSegments) {
  auto store = MustOpen(SmallOptions(StoreDir("tail")));
  Fill(store.get(), 0, 25);
  auto tail = store->ScanTail(12);
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  ASSERT_EQ(tail->num_rows(), 12u);
  EXPECT_DOUBLE_EQ(tail->timestamp(0), 13.0);
  EXPECT_DOUBLE_EQ(tail->timestamp(11), 24.0);
  // More than stored: everything comes back.
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 25u);
}

TEST(TenantStoreTest, RejectsNonIncreasingTimestamps) {
  auto store = MustOpen(SmallOptions(StoreDir("order")));
  ASSERT_TRUE(store->Append(5.0, Row(1, "even")).ok());
  EXPECT_FALSE(store->Append(5.0, Row(2, "odd")).ok());   // duplicate
  EXPECT_FALSE(store->Append(4.0, Row(3, "even")).ok());  // decreasing
  ASSERT_TRUE(store->Append(6.0, Row(4, "even")).ok());
  // The invariant spans a seal: last sealed ts still fences appends.
  Fill(store.get(), 7, 17);
  ASSERT_GE(store->num_segments(), 1u);
  EXPECT_FALSE(store->Append(3.0, Row(5, "odd")).ok());
}

TEST(TenantStoreTest, ReopenRecoversEverySealedRow) {
  std::string dir = StoreDir("reopen");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 37);
    ASSERT_TRUE(store->Seal().ok());  // persist the 7-row tail
  }
  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 4u);
  EXPECT_EQ(store->recovery().rows_recovered, 37u);
  EXPECT_EQ(store->recovery().segments_dropped, 0u);
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 37u);
  // Appends continue after the recovered history.
  EXPECT_FALSE(store->Append(36.0, Row(0, "even")).ok());
  EXPECT_TRUE(store->Append(37.0, Row(0, "odd")).ok());
}

TEST(TenantStoreTest, AdoptsSchemaFromDiskWhenUnspecified) {
  std::string dir = StoreDir("adopt");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 10);
  }
  TenantStore::Options options;
  options.dir = dir;  // schema left empty
  options.fsync_on_seal = false;
  auto store = MustOpen(std::move(options));
  EXPECT_TRUE(store->schema() == TestSchema());
  EXPECT_EQ(store->sealed_rows(), 10u);
}

TEST(TenantStoreTest, RejectsSchemaMismatchOnReopen) {
  std::string dir = StoreDir("mismatch");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 10);
  }
  TenantStore::Options options = SmallOptions(dir);
  options.schema = Schema({{"other", AttributeKind::kNumeric}});
  auto store = TenantStore::Open(std::move(options));
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(),
            common::StatusCode::kFailedPrecondition);
}

TEST(TenantStoreTest, TornTailIsDroppedExactlyOnce) {
  std::string dir = StoreDir("torn");
  std::string last_path;
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 30);  // 3 sealed segments
    last_path = store->Manifest().back().path;
  }
  // Simulate a crash mid-seal: chop the newest segment file in half.
  struct stat st{};
  ASSERT_EQ(::stat(last_path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(last_path.c_str(), st.st_size / 2), 0);

  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 2u);
  EXPECT_EQ(store->recovery().segments_dropped, 1u);
  EXPECT_GT(store->recovery().bytes_dropped, 0u);
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 20u);  // rows before the corruption survive
  // The torn file is gone from disk: a second reopen drops nothing.
  EXPECT_NE(::access(last_path.c_str(), F_OK), 0);
  auto again = MustOpen(SmallOptions(dir));
  EXPECT_EQ(again->recovery().segments_dropped, 0u);
  EXPECT_EQ(again->recovery().rows_recovered, 20u);
}

TEST(TenantStoreTest, CorruptMiddleSegmentIsDroppedOthersKept) {
  std::string dir = StoreDir("corruptmid");
  std::string mid_path;
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 30);
    mid_path = store->Manifest()[1].path;
  }
  // Flip one payload byte past the header.
  std::fstream f(mid_path,
                 std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(40);
  char byte = 0;
  f.seekg(40);
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(40);
  f.write(&byte, 1);
  f.close();

  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 2u);
  EXPECT_EQ(store->recovery().segments_dropped, 1u);
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 20u);  // segments 1 and 3
  EXPECT_TRUE(all->TimestampsSorted());
}

TEST(TenantStoreTest, RetentionByBytesKeepsNewestSegments) {
  TenantStore::Options options = SmallOptions(StoreDir("retbytes"));
  auto store = MustOpen(options);
  Fill(store.get(), 0, 50);  // 5 segments
  uint64_t five_seg_bytes = store->sealed_bytes();
  ASSERT_EQ(store->num_segments(), 5u);
  // Budget for roughly two segments: older ones must go on next seal.
  store->SetRetention(/*retain_bytes=*/2 * five_seg_bytes / 5 + 64,
                      /*retain_age_sec=*/0.0);
  Fill(store.get(), 50, 60);  // triggers a seal + enforcement
  EXPECT_LT(store->num_segments(), 5u);
  EXPECT_GT(store->retention_deletes(), 0u);
  // Newest data is always intact.
  auto tail = store->ScanTail(10);
  ASSERT_TRUE(tail.ok());
  EXPECT_DOUBLE_EQ(tail->timestamp(9), 59.0);
  // Deleted files are really gone from disk.
  size_t files = 0;
  for (const auto& seg : store->Manifest()) {
    EXPECT_EQ(::access(seg.path.c_str(), F_OK), 0);
    ++files;
  }
  EXPECT_EQ(files, store->num_segments());
}

TEST(TenantStoreTest, RetentionByAgeDropsOldSegments) {
  TenantStore::Options options = SmallOptions(StoreDir("retage"));
  options.retain_age_sec = 25.0;
  auto store = MustOpen(options);
  Fill(store.get(), 0, 60);  // segments end at t=9,19,...,59
  // Segments whose max_ts < 59 - 25 = 34 are dropped: the first three.
  EXPECT_EQ(store->num_segments(), 3u);
  EXPECT_GE(store->retention_deletes(), 3u);
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(all->timestamp(0), 30.0);
}

TEST(TenantStoreTest, RetentionNeverDeletesTheNewestSegment) {
  TenantStore::Options options = SmallOptions(StoreDir("retlast"));
  options.retain_bytes = 1;  // absurd budget
  auto store = MustOpen(options);
  Fill(store.get(), 0, 30);
  EXPECT_EQ(store->num_segments(), 1u);  // still one left
  auto tail = store->ScanTail(10);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->num_rows(), 10u);
}

TEST(TenantStoreTest, OpenRejectsMissingDirAndBadSealRows) {
  TenantStore::Options options;
  options.schema = TestSchema();
  EXPECT_FALSE(TenantStore::Open(options).ok());  // no dir
  options.dir = StoreDir("badseal");
  options.seal_rows = 0;
  EXPECT_FALSE(TenantStore::Open(options).ok());
}

TEST(TenantStoreTest, ForeignFilesInDirAreIgnored) {
  std::string dir = StoreDir("foreign");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 10);
  }
  std::ofstream(dir + "/README.txt") << "not a segment\n";
  std::ofstream(dir + "/seg-junk.dbs") << "bad name, ignored\n";
  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 1u);
  EXPECT_EQ(store->recovery().segments_dropped, 0u);
  EXPECT_EQ(::access((dir + "/README.txt").c_str(), F_OK), 0);
}

/// Installs a faultenv schedule for one test and clears it on exit, so a
/// failing assertion can't leak injected faults into later tests.
struct ScopedSchedule {
  explicit ScopedSchedule(const std::string& spec) {
    EXPECT_TRUE(common::faultenv::InstallSchedule(spec).ok()) << spec;
  }
  ~ScopedSchedule() { common::faultenv::Clear(); }
};

TEST(TenantStoreTest, FailedSealFsyncKeepsRowsActiveAndRetries) {
  auto options = SmallOptions(StoreDir("fault_sealfsync"));
  options.fsync_on_seal = true;  // seg.fsync only fires on the real path
  auto store = MustOpen(options);
  Fill(store.get(), 0, 9);
  {
    ScopedSchedule schedule("seg.fsync=enospc@1,limit=1");
    // The 10th row trips the seal, which fails on fsync; the rows must
    // stay buffered, not vanish with the unlinked partial segment.
    EXPECT_FALSE(store->Append(9.0, Row(9, "odd")).ok());
    EXPECT_EQ(store->num_segments(), 0u);
    EXPECT_EQ(store->active_rows(), 10u);
    // The next append retries the seal under a fresh seq and succeeds.
    ASSERT_TRUE(store->Append(10.0, Row(10, "even")).ok());
  }
  EXPECT_EQ(store->num_segments(), 1u);
  EXPECT_EQ(store->sealed_rows(), 11u);
  EXPECT_EQ(store->active_rows(), 0u);
}

TEST(TenantStoreTest, FailedSealWriteRecoversToTheLastSealedSegment) {
  std::string dir = StoreDir("fault_sealwrite");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 10);  // one cleanly sealed segment
    ASSERT_EQ(store->num_segments(), 1u);
    ScopedSchedule schedule("seg.write=torn@1,limit=1");
    Fill(store.get(), 10, 19);
    EXPECT_FALSE(store->Append(19.0, Row(19, "odd")).ok());  // torn seal
    EXPECT_EQ(store->num_segments(), 1u);
    EXPECT_EQ(store->active_rows(), 10u);
  }
  // A crash right after the failed seal: reopen finds only the segment
  // that was actually acked durable (the partial file was unlinked).
  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 1u);
  EXPECT_EQ(store->sealed_rows(), 10u);
  // History resumes exactly past the sealed high-water mark.
  EXPECT_FALSE(store->Append(9.0, Row(9, "odd")).ok());
  EXPECT_TRUE(store->Append(10.0, Row(10, "even")).ok());
}

// --- Zone-map pushdown (DESIGN.md §14) ---------------------------------

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Downgrades a v2 segment blob to v1: strip the zone footer (framed
/// block + 8-byte trailer) and patch the version word — byte-for-byte
/// what the pre-footer encoder wrote.
std::string MakeV1(const std::string& v2) {
  EXPECT_GE(v2.size(), 8u);
  uint32_t zone_len = 0;
  for (int i = 0; i < 4; ++i) {
    zone_len |= static_cast<uint32_t>(
                    static_cast<uint8_t>(v2[v2.size() - 8 + i]))
                << (8 * i);
  }
  std::string v1 = v2.substr(0, v2.size() - 8 - zone_len);
  v1[4] = 1;
  return v1;
}

TEST(TenantStoreTest, ManifestCarriesZoneMaps) {
  auto store = MustOpen(SmallOptions(StoreDir("zones")));
  Fill(store.get(), 0, 10);
  auto manifest = store->Manifest();
  ASSERT_EQ(manifest.size(), 1u);
  const ZoneMap& zones = manifest[0].zones;
  EXPECT_EQ(zones.rows, 10u);
  EXPECT_DOUBLE_EQ(zones.min_ts, 0.0);
  EXPECT_DOUBLE_EQ(zones.max_ts, 9.0);
  ASSERT_EQ(zones.attrs.size(), 2u);
  EXPECT_DOUBLE_EQ(zones.attrs[0].min, 0.0);
  EXPECT_DOUBLE_EQ(zones.attrs[0].max, 9.0);
  EXPECT_EQ(zones.attrs[0].non_nan_count, 10u);
  EXPECT_EQ(zones.attrs[0].finite_count, 10u);
  EXPECT_EQ(zones.attrs[1].non_nan_count, 10u);  // categorical: present
}

TEST(TenantStoreTest, PushdownPrunesSegmentsAndMatchesFullDecode) {
  auto store = MustOpen(SmallOptions(StoreDir("pushdown")));
  Fill(store.get(), 0, 50);  // 5 sealed segments, cpu == t
  // Time pruning alone: [25, 30) lives in exactly one segment.
  ScanOptions time_opts;
  time_opts.t0 = 25.0;
  time_opts.t1 = 30.0;
  ScanStats time_stats;
  auto window = store->ScanWithOptions(time_opts, &time_stats);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->num_rows(), 5u);
  EXPECT_EQ(time_stats.segments_total, 5u);
  EXPECT_EQ(time_stats.segments_skipped_time, 4u);
  EXPECT_EQ(time_stats.segments_decoded, 1u);
  // Attribute pruning: cpu in [35, 44] spans segments 4 and 5 only.
  ScanOptions zone_opts;
  zone_opts.bounds.push_back({"cpu", 35.0, 44.0});
  ScanStats zone_stats;
  auto bounded = store->ScanWithOptions(zone_opts, &zone_stats);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->num_rows(), 10u);
  EXPECT_EQ(zone_stats.segments_skipped_zone, 3u);
  EXPECT_EQ(zone_stats.segments_decoded, 2u);
  // Parity: the prune-free full decode returns the identical rows.
  ScanOptions full = zone_opts;
  full.prune = false;
  ScanStats full_stats;
  auto baseline = store->ScanWithOptions(full, &full_stats);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(full_stats.segments_decoded, 5u);
  EXPECT_EQ(full_stats.segments_skipped_zone, 0u);
  ASSERT_EQ(baseline->num_rows(), bounded->num_rows());
  for (size_t i = 0; i < baseline->num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(baseline->timestamp(i), bounded->timestamp(i));
    EXPECT_DOUBLE_EQ(baseline->column(0).numeric(i),
                     bounded->column(0).numeric(i));
  }
  // The cumulative pushdown counters moved.
  EXPECT_GE(store->scans_total(), 3u);
  EXPECT_GE(store->scan_segments_skipped(), 7u);
  // Unknown or categorical attributes are rejected, not silently ignored.
  ScanOptions bad;
  ScanStats sink;
  bad.bounds.push_back({"nope", 0.0, 1.0});
  EXPECT_FALSE(store->ScanWithOptions(bad, &sink).ok());
  bad.bounds = {{"mode", 0.0, 1.0}};
  EXPECT_FALSE(store->ScanWithOptions(bad, &sink).ok());
}

TEST(TenantStoreTest, MaxRowsCapsOutputAndTruncatedIsExact) {
  auto store = MustOpen(SmallOptions(StoreDir("cap")));
  Fill(store.get(), 0, 25);  // 2 sealed segments + 5 active rows
  ScanOptions opts;
  opts.max_rows = 7;
  ScanStats stats;
  auto r = store->ScanWithOptions(opts, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_rows(), 7u);
  EXPECT_DOUBLE_EQ(r->timestamp(6), 6.0);
  EXPECT_TRUE(stats.truncated);
  // Exactly as many matches as the cap: NOT truncated — the flag is
  // exact, never a guess.
  opts.max_rows = 25;
  r = store->ScanWithOptions(opts, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 25u);
  EXPECT_FALSE(stats.truncated);
  opts.max_rows = 24;
  r = store->ScanWithOptions(opts, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 24u);
  EXPECT_TRUE(stats.truncated);
}

TEST(TenantStoreTest, V1SegmentsAreUpgradedInPlaceDuringRecovery) {
  std::string dir = StoreDir("upgrade");
  std::vector<std::string> paths;
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 30);
    for (const auto& seg : store->Manifest()) paths.push_back(seg.path);
  }
  ASSERT_EQ(paths.size(), 3u);
  // Downgrade two of the three files to the footer-less v1 format.
  for (size_t i = 0; i < 2; ++i) {
    std::string v1 = MakeV1(ReadFileOrDie(paths[i]));
    WriteFileOrDie(paths[i], v1);
    EXPECT_EQ(ReadSegmentZoneMap(v1).status().code(),
              common::StatusCode::kNotFound);
  }
  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().segments_recovered, 3u);
  EXPECT_EQ(store->recovery().segments_upgraded, 2u);
  // The files on disk now carry a readable footer...
  for (const std::string& path : paths) {
    EXPECT_TRUE(ReadSegmentZoneMap(ReadFileOrDie(path)).ok()) << path;
  }
  // ...no row was lost, and the rebuilt zones drive pruning correctly.
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 30u);
  ScanOptions opts;
  opts.bounds.push_back({"cpu", 0.0, 5.0});
  ScanStats stats;
  auto pruned = store->ScanWithOptions(opts, &stats);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->num_rows(), 6u);
  EXPECT_EQ(stats.segments_skipped_zone, 2u);
  // The upgrade happened exactly once: a reopen finds nothing to do.
  auto again = MustOpen(SmallOptions(dir));
  EXPECT_EQ(again->recovery().segments_upgraded, 0u);
}

TEST(TenantStoreTest, ZeroRowSegmentFilesAreDroppedAtRecovery) {
  std::string dir = StoreDir("emptyseg");
  {
    auto store = MustOpen(SmallOptions(dir));
    Fill(store.get(), 0, 10);
  }
  // A crash artifact: an intact, CRC-valid segment holding zero rows.
  // Pre-fix it entered the manifest stamped min_ts = max_ts = 0.0,
  // poisoning time pruning and pinning age-based retention.
  std::string path = dir + "/seg-00000099.dbs";
  WriteFileOrDie(path, EncodeSegment(tsdata::Dataset(TestSchema())));
  auto store = MustOpen(SmallOptions(dir));
  EXPECT_EQ(store->recovery().empty_segments_dropped, 1u);
  EXPECT_EQ(store->recovery().segments_recovered, 1u);
  EXPECT_EQ(store->num_segments(), 1u);
  EXPECT_NE(::access(path.c_str(), F_OK), 0);  // deleted from disk
  // Appends resume from the real high-water mark, not a phantom t=0.
  EXPECT_TRUE(store->Append(10.0, Row(10, "even")).ok());
  auto all = store->ScanTail(1000);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->num_rows(), 11u);
}

TEST(TenantStoreTest, AppendsAreNotBlockedByASlowScan) {
  auto store = MustOpen(SmallOptions(StoreDir("noblock")));
  Fill(store.get(), 0, 40);  // 4 sealed segments
  // The scan's first segment read stalls 600 ms. Pre-fix, Scan held the
  // store lock across file I/O + decompression, so these appends queued
  // behind the stall; now they only touch the active segment.
  ScopedSchedule schedule("seg.read=stall@1,ms=600,limit=1");
  std::thread scanner([&store] {
    ScanOptions opts;
    ScanStats stats;
    auto r = store->ScanWithOptions(opts, &stats);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  // Let the scanner take its snapshot and block inside the stalled read.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto t0 = std::chrono::steady_clock::now();
  Fill(store.get(), 40, 45);  // 5 rows: no seal, no disk I/O
  double append_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  scanner.join();
  EXPECT_LT(append_ms, 300.0) << "appends blocked behind a stalled scan";
}

TEST(TenantStoreTest, ScanRetriesCleanlyWhenRetentionDeletesMidScan) {
  auto store = MustOpen(SmallOptions(StoreDir("race")));
  Fill(store.get(), 0, 50);  // 5 sealed segments
  // Stall the scan's first segment read long enough for retention to
  // unlink snapshotted segments underneath it.
  ScopedSchedule schedule("seg.read=stall@1,ms=400,limit=1");
  common::Status scan_status = common::Status::OK();
  ScanStats stats;
  std::thread scanner([&] {
    ScanOptions opts;
    auto r = store->ScanWithOptions(opts, &stats);
    scan_status = r.status();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  store->SetRetention(/*retain_bytes=*/1, /*retain_age_sec=*/0.0);
  Fill(store.get(), 50, 60);  // seal -> retention unlinks the old files
  scanner.join();
  // The scan retried against the new manifest instead of failing.
  ASSERT_TRUE(scan_status.ok()) << scan_status.ToString();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(store->scan_retries(), 1u);
}

TEST(TenantStoreTest, SegmentVanishingOutsideRetentionIsAnIoError) {
  auto store = MustOpen(SmallOptions(StoreDir("vanish")));
  Fill(store.get(), 0, 30);
  // Deleted by hand, not by retention: the generation check cannot
  // explain the hole, so this is real data loss, not a benign race.
  ASSERT_EQ(::unlink(store->Manifest()[0].path.c_str()), 0);
  ScanOptions opts;
  ScanStats stats;
  auto r = store->ScanWithOptions(opts, &stats);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace dbsherlock::store
