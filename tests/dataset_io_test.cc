#include "tsdata/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace dbsherlock::tsdata {
namespace {

Dataset SampleDataset() {
  Dataset d(Schema({{"latency", AttributeKind::kNumeric},
                    {"mode", AttributeKind::kCategorical}}));
  EXPECT_TRUE(d.AppendRow(0.0, {1.25, std::string("fast")}).ok());
  EXPECT_TRUE(d.AppendRow(1.0, {2.5, std::string("slow, very")}).ok());
  EXPECT_TRUE(d.AppendRow(2.0, {1e-9, std::string("fast")}).ok());
  return d;
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  Dataset original = SampleDataset();
  std::string csv = DatasetToCsv(original);
  auto parsed = DatasetFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Dataset& d = *parsed;
  ASSERT_EQ(d.num_rows(), 3u);
  EXPECT_TRUE(d.schema() == original.schema());
  EXPECT_DOUBLE_EQ(d.timestamp(1), 1.0);
  EXPECT_DOUBLE_EQ(d.column(0).numeric(2), 1e-9);
  const Column& mode = d.column(1);
  EXPECT_EQ(mode.CategoryName(mode.code(1)), "slow, very");
}

TEST(DatasetIoTest, HeaderMarksCategoricalColumns) {
  std::string csv = DatasetToCsv(SampleDataset());
  EXPECT_NE(csv.find("mode@cat"), std::string::npos);
  EXPECT_NE(csv.find("latency"), std::string::npos);
  EXPECT_EQ(csv.find("latency@cat"), std::string::npos);
}

TEST(DatasetIoTest, RejectsMissingTimestampColumn) {
  auto r = DatasetFromCsv("a,b\n1,2\n");
  EXPECT_FALSE(r.ok());
}

TEST(DatasetIoTest, RejectsNonNumericValueInNumericColumn) {
  auto r = DatasetFromCsv("timestamp,v\n0,hello\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kParseError);
}

TEST(DatasetIoTest, ParsesCategoricalSuffix) {
  auto r = DatasetFromCsv("timestamp,v@cat\n0,red\n1,blue\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->schema().attribute(0).name, "v");
  EXPECT_EQ(r->schema().attribute(0).kind, AttributeKind::kCategorical);
  EXPECT_EQ(r->column(0).num_categories(), 2u);
}

TEST(DatasetIoTest, EmptyDatasetRoundTrips) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  auto parsed = DatasetFromCsv(DatasetToCsv(d));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 0u);
  EXPECT_EQ(parsed->num_attributes(), 1u);
}

TEST(DatasetIoTest, FileRoundTrip) {
  Dataset original = SampleDataset();
  std::string path = testing::TempDir() + "/dbsherlock_ds_test.csv";
  ASSERT_TRUE(WriteDatasetFile(original, path).ok());
  auto r = ReadDatasetFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadDatasetFile("/no/such/file.csv").ok());
}

}  // namespace
}  // namespace dbsherlock::tsdata
