#include "core/predicate_generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

/// Builds a dataset with 200 rows: the abnormal window is [100, 150). The
/// per-attribute generators decide each row's value given (t, abnormal).
struct TestData {
  tsdata::Dataset dataset;
  tsdata::DiagnosisRegions regions;
};

template <typename F>
TestData MakeData(const std::vector<std::pair<std::string, F>>& attrs,
                  int rows = 200, double ab_start = 100, double ab_end = 150) {
  tsdata::Schema schema;
  for (const auto& [name, fn] : attrs) {
    EXPECT_TRUE(
        schema.AddAttribute({name, tsdata::AttributeKind::kNumeric}).ok());
  }
  TestData out{tsdata::Dataset(schema), {}};
  out.regions.abnormal.Add(ab_start, ab_end);
  for (int t = 0; t < rows; ++t) {
    bool abnormal = t >= ab_start && t < ab_end;
    std::vector<tsdata::Cell> cells;
    for (const auto& [name, fn] : attrs) {
      cells.emplace_back(fn(t, abnormal));
    }
    EXPECT_TRUE(out.dataset.AppendRow(t, cells).ok());
  }
  return out;
}

using Gen = std::function<double(int, bool)>;

TEST(PredicateGeneratorTest, FindsStepAttribute) {
  common::Pcg32 rng(1);
  TestData data = MakeData<Gen>({
      {"shifted",
       [&](int, bool ab) {
         return (ab ? 100.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
       }},
      {"flat", [&](int, bool) { return 50.0 + rng.NextGaussian(0.0, 2.0); }},
  });
  PredicateGenOptions options;
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, options);
  ASSERT_EQ(result.predicates.size(), 1u);
  const AttributeDiagnosis& diag = result.predicates[0];
  EXPECT_EQ(diag.predicate.attribute, "shifted");
  EXPECT_EQ(diag.predicate.type, PredicateType::kGreaterThan);
  // The threshold should fall between the two clusters.
  EXPECT_GT(diag.predicate.low, 20.0);
  EXPECT_LT(diag.predicate.low, 95.0);
  EXPECT_GT(diag.separation_power, 0.95);
  EXPECT_GT(diag.normalized_mean_diff, 0.5);
}

TEST(PredicateGeneratorTest, FindsDownwardShiftAsLessThan) {
  common::Pcg32 rng(2);
  TestData data = MakeData<Gen>({
      {"drops",
       [&](int, bool ab) {
         return (ab ? 5.0 : 80.0) + rng.NextGaussian(0.0, 2.0);
       }},
  });
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, {});
  ASSERT_EQ(result.predicates.size(), 1u);
  EXPECT_EQ(result.predicates[0].predicate.type, PredicateType::kLessThan);
}

TEST(PredicateGeneratorTest, ConstantAttributeYieldsNothing) {
  TestData data = MakeData<Gen>({
      {"constant", [](int, bool) { return 42.0; }},
  });
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, {});
  EXPECT_TRUE(result.predicates.empty());
}

TEST(PredicateGeneratorTest, ThetaFiltersSmallShifts) {
  common::Pcg32 rng(3);
  // Mean shift ~8% of the range: passes theta=0.05, fails theta=0.2.
  TestData data = MakeData<Gen>({
      {"small_shift",
       [&](int, bool ab) {
         return (ab ? 58.0 : 50.0) + rng.NextDouble(-50.0, 50.0);
       }},
  });
  PredicateGenOptions loose;
  loose.normalized_diff_threshold = 0.01;
  PredicateGenOptions strict;
  strict.normalized_diff_threshold = 0.2;
  // With theta=0.2 the attribute is always rejected.
  EXPECT_TRUE(
      GeneratePredicates(data.dataset, data.regions, strict).predicates.empty());
  // With a loose theta the threshold no longer rejects it (whether a
  // single clean block exists still depends on the noise).
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, loose);
  for (const auto& d : result.predicates) {
    EXPECT_GT(d.normalized_mean_diff, 0.01);
  }
}

TEST(PredicateGeneratorTest, EmptyRegionsGiveEmptyResult) {
  common::Pcg32 rng(4);
  TestData data = MakeData<Gen>({
      {"x",
       [&](int, bool ab) {
         return (ab ? 100.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
       }},
  });
  tsdata::DiagnosisRegions no_abnormal;  // nothing marked
  EXPECT_TRUE(GeneratePredicates(data.dataset, no_abnormal, {})
                  .predicates.empty());
}

TEST(PredicateGeneratorTest, CategoricalPredicateExtracted) {
  tsdata::Schema schema;
  ASSERT_TRUE(schema
                  .AddAttribute({"mode", tsdata::AttributeKind::kCategorical})
                  .ok());
  tsdata::Dataset d(schema);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool ab = t >= 100 && t < 150;
    ASSERT_TRUE(
        d.AppendRow(t, {std::string(ab ? "degraded" : "ok")}).ok());
  }
  PredicateGenResult result = GeneratePredicates(d, regions, {});
  ASSERT_EQ(result.predicates.size(), 1u);
  const Predicate& p = result.predicates[0].predicate;
  EXPECT_EQ(p.type, PredicateType::kInSet);
  ASSERT_EQ(p.categories.size(), 1u);
  EXPECT_EQ(p.categories[0], "degraded");
  EXPECT_DOUBLE_EQ(result.predicates[0].separation_power, 1.0);
}

TEST(PredicateGeneratorTest, ConstantCategoricalYieldsNothing) {
  tsdata::Schema schema;
  ASSERT_TRUE(schema
                  .AddAttribute({"mode", tsdata::AttributeKind::kCategorical})
                  .ok());
  tsdata::Dataset d(schema);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(d.AppendRow(t, {std::string("same")}).ok());
  }
  // The lone category has more normal than abnormal rows -> Normal label,
  // no predicate (invariants are never explanations, Section 2.4).
  EXPECT_TRUE(GeneratePredicates(d, regions, {}).predicates.empty());
}

TEST(PredicateGeneratorTest, NoisySpikesSurvivedByFiltering) {
  common::Pcg32 rng(5);
  // Normal values ~10 with occasional spikes to ~100 (hiccups); abnormal
  // values solidly ~100. Without the filtering step the hiccup partitions
  // would split the abnormal block.
  TestData data = MakeData<Gen>({
      {"noisy",
       [&](int t, bool ab) {
         if (ab) return 100.0 + rng.NextGaussian(0.0, 3.0);
         bool hiccup = (t % 37) == 5;
         return (hiccup ? 85.0 : 10.0) + rng.NextGaussian(0.0, 3.0);
       }},
  });
  PredicateGenOptions with_filtering;
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, with_filtering);
  ASSERT_EQ(result.predicates.size(), 1u);
  EXPECT_GT(result.predicates[0].separation_power, 0.9);
}

TEST(PredicateGeneratorTest, AblationWithoutStepsFindsLittle) {
  common::Pcg32 rng(6);
  TestData data = MakeData<Gen>({
      {"noisy",
       [&](int t, bool ab) {
         if (ab) return 100.0 + rng.NextGaussian(0.0, 5.0);
         bool hiccup = (t % 23) == 3;
         return (hiccup ? 90.0 : 10.0) + rng.NextGaussian(0.0, 5.0);
       }},
  });
  PredicateGenOptions none;
  none.enable_filtering = false;
  none.enable_gap_filling = false;
  // Without filtering + gap filling, the abnormal partitions are
  // interleaved with empties, so no single consecutive block exists.
  EXPECT_TRUE(
      GeneratePredicates(data.dataset, data.regions, none).predicates.empty());
}

TEST(PredicateGeneratorTest, ResultsSortedBySeparationPower) {
  common::Pcg32 rng(7);
  TestData data = MakeData<Gen>({
      {"weak",
       [&](int, bool ab) {
         return (ab ? 70.0 : 30.0) + rng.NextDouble(-35.0, 35.0);
       }},
      {"strong",
       [&](int, bool ab) { return (ab ? 100.0 : 0.0) + rng.NextGaussian(); }},
  });
  PredicateGenOptions options;
  options.normalized_diff_threshold = 0.05;
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, options);
  ASSERT_GE(result.predicates.size(), 1u);
  EXPECT_EQ(result.predicates[0].predicate.attribute, "strong");
  for (size_t i = 1; i < result.predicates.size(); ++i) {
    EXPECT_GE(result.predicates[i - 1].separation_power,
              result.predicates[i].separation_power);
  }
}

TEST(PredicateGeneratorTest, FindHelper) {
  common::Pcg32 rng(8);
  TestData data = MakeData<Gen>({
      {"x",
       [&](int, bool ab) {
         return (ab ? 100.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
       }},
  });
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, {});
  EXPECT_NE(result.Find("x"), nullptr);
  EXPECT_EQ(result.Find("y"), nullptr);
  EXPECT_EQ(result.PredicateList().size(), result.predicates.size());
}

// --- BuildFinalPartitionSpace ------------------------------------------------

TEST(BuildFinalSpaceTest, NumericSpaceFullyLabeled) {
  common::Pcg32 rng(9);
  TestData data = MakeData<Gen>({
      {"x",
       [&](int, bool ab) {
         return (ab ? 90.0 : 10.0) + rng.NextGaussian(0.0, 2.0);
       }},
  });
  tsdata::LabeledRows rows = SplitRows(data.dataset, data.regions);
  auto space = BuildFinalPartitionSpace(data.dataset, rows, 0, {});
  ASSERT_TRUE(space.has_value());
  // After gap filling no Empty partitions remain.
  EXPECT_EQ(space->CountWithLabel(PartitionLabel::kEmpty), 0u);
  EXPECT_GT(space->CountWithLabel(PartitionLabel::kAbnormal), 0u);
  EXPECT_GT(space->CountWithLabel(PartitionLabel::kNormal), 0u);
}

TEST(BuildFinalSpaceTest, ConstantColumnGivesNullopt) {
  TestData data = MakeData<Gen>({
      {"c", [](int, bool) { return 1.0; }},
  });
  tsdata::LabeledRows rows = SplitRows(data.dataset, data.regions);
  EXPECT_FALSE(BuildFinalPartitionSpace(data.dataset, rows, 0, {}).has_value());
}

TEST(PartitionSeparationPowerTest, MatchesLabeledSpace) {
  PartitionSpace space = PartitionSpace::Numeric(0.0, 100.0, 10);
  for (size_t j = 0; j < 5; ++j) space.set_label(j, PartitionLabel::kNormal);
  for (size_t j = 5; j < 10; ++j)
    space.set_label(j, PartitionLabel::kAbnormal);
  Predicate p{"x", PredicateType::kGreaterThan, 50.0, 0.0, {}};
  EXPECT_DOUBLE_EQ(PartitionSeparationPower(p, space), 1.0);
  Predicate q{"x", PredicateType::kGreaterThan, 80.0, 0.0, {}};
  EXPECT_DOUBLE_EQ(PartitionSeparationPower(q, space), 0.4);
}

// --- Property sweep: the generator recovers a planted shift across a grid
// of shift sizes and noise levels.
struct SweepParam {
  double shift;
  double noise;
};

class RecoverySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RecoverySweep, PlantedShiftRecovered) {
  SweepParam param = GetParam();
  common::Pcg32 rng(static_cast<uint64_t>(param.shift * 100 +
                                          param.noise * 10 + 1));
  TestData data = MakeData<Gen>({
      {"planted",
       [&](int, bool ab) {
         return (ab ? 50.0 + param.shift : 50.0) +
                rng.NextGaussian(0.0, param.noise);
       }},
  });
  PredicateGenOptions options;
  options.normalized_diff_threshold = 0.1;
  PredicateGenResult result =
      GeneratePredicates(data.dataset, data.regions, options);
  // Planted shifts at >= 5 sigma separate cleanly.
  ASSERT_EQ(result.predicates.size(), 1u)
      << "shift=" << param.shift << " noise=" << param.noise;
  EXPECT_EQ(result.predicates[0].predicate.type,
            PredicateType::kGreaterThan);
  EXPECT_GT(result.predicates[0].separation_power, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    ShiftsAndNoise, RecoverySweep,
    ::testing::Values(SweepParam{50.0, 2.0}, SweepParam{50.0, 5.0},
                      SweepParam{100.0, 2.0}, SweepParam{100.0, 10.0},
                      SweepParam{200.0, 20.0}, SweepParam{30.0, 3.0}));

}  // namespace
}  // namespace dbsherlock::core
