// Integration tests for the `dbsherlock` CLI: each subcommand is executed
// as a real subprocess against temp files, checking exit codes and output.
// The binary path comes from the DBSHERLOCK_CLI_PATH compile definition.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

RunResult RunCli(const std::string& args) {
  std::string command = std::string(DBSHERLOCK_CLI_PATH) + " " + args +
                        " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t n;
  while ((n = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string TempPath(const std::string& name) {
  // gtest_discover_tests runs every case in its own process, and ctest -j
  // runs those processes concurrently; the pid keeps one process's
  // SetUpTestSuite from rewriting a file another is mid-read on.
  return testing::TempDir() + "/dbsherlock_cli_" + std::to_string(getpid()) +
         "_" + name;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data_path_ = new std::string(TempPath("incident.csv"));
    models_path_ = new std::string(TempPath("models.json"));
    std::remove(models_path_->c_str());
    RunResult r = RunCli("simulate --anomaly lock_contention --seed 7 --out " +
                         *data_path_);
    ASSERT_EQ(r.exit_code, 0) << r.output;
  }

  static std::string* data_path_;
  static std::string* models_path_;
};

std::string* CliTest::data_path_ = nullptr;
std::string* CliTest::models_path_ = nullptr;

TEST_F(CliTest, NoArgsPrintsUsage) {
  RunResult r = RunCli("");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  RunResult r = RunCli("frobnicate");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, SimulateRejectsUnknownAnomaly) {
  RunResult r = RunCli("simulate --anomaly nonsense --out /dev/null");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("lock_contention"), std::string::npos);  // listed
}

TEST_F(CliTest, PlotRendersAsciiChart) {
  RunResult r = RunCli("plot --data " + *data_path_ +
                       " --attribute avg_latency_ms --abnormal 60:120");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("avg_latency_ms"), std::string::npos);
  EXPECT_NE(r.output.find('^'), std::string::npos);  // region markers
}

TEST_F(CliTest, PlotWritesSvg) {
  std::string svg_path = TempPath("chart.svg");
  RunResult r = RunCli("plot --data " + *data_path_ +
                       " --attribute throughput_tps --svg " + svg_path);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  FILE* f = std::fopen(svg_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char head[6] = {0};
  ASSERT_EQ(fread(head, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_EQ(std::string(head, 4), "<svg");
  std::remove(svg_path.c_str());
}

TEST_F(CliTest, DiagnoseFindsLockPredicates) {
  RunResult r =
      RunCli("diagnose --data " + *data_path_ + " --abnormal 60:120");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("Predicates:"), std::string::npos);
  EXPECT_NE(r.output.find("lock_wait"), std::string::npos);
}

TEST_F(CliTest, DiagnoseRejectsBadRegion) {
  RunResult r =
      RunCli("diagnose --data " + *data_path_ + " --abnormal 120:60");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, TeachThenModelsThenDiagnoseNamesCause) {
  RunResult teach = RunCli(
      "teach --data " + *data_path_ +
      " --abnormal 60:120 --cause \"Lock Contention\" --action "
      "\"spread hot rows\" --models " +
      *models_path_);
  ASSERT_EQ(teach.exit_code, 0) << teach.output;
  EXPECT_NE(teach.output.find("Stored causal model"), std::string::npos);

  RunResult models = RunCli("models --models " + *models_path_);
  EXPECT_EQ(models.exit_code, 0) << models.output;
  EXPECT_NE(models.output.find("Lock Contention"), std::string::npos);
  EXPECT_NE(models.output.find("spread hot rows"), std::string::npos);

  RunResult diagnose = RunCli("diagnose --data " + *data_path_ +
                              " --abnormal 60:120 --models " + *models_path_);
  EXPECT_EQ(diagnose.exit_code, 0) << diagnose.output;
  EXPECT_NE(diagnose.output.find("Likely causes:"), std::string::npos);
  EXPECT_NE(diagnose.output.find("Lock Contention"), std::string::npos);
}

TEST_F(CliTest, ReportWritesHtml) {
  std::string report_path = TempPath("report.html");
  RunResult r = RunCli("report --data " + *data_path_ +
                       " --abnormal 60:120 --out " + report_path +
                       " --title TestIncident");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  FILE* f = std::fopen(report_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  EXPECT_NE(contents.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(contents.find("TestIncident"), std::string::npos);
  std::remove(report_path.c_str());
}

TEST_F(CliTest, DetectRunsOnData) {
  RunResult r = RunCli("detect --data " + *data_path_);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // On a 180 s run with a 60 s anomaly the region exceeds the 20% cluster
  // cutoff, so "no anomaly" is the expected (and documented) answer.
  EXPECT_TRUE(r.output.find("No anomaly detected") != std::string::npos ||
              r.output.find("Detected abnormal") != std::string::npos);
}

TEST_F(CliTest, MissingDataFileFails) {
  RunResult r = RunCli("diagnose --data /no/such.csv --abnormal 1:2");
  EXPECT_EQ(r.exit_code, 7);  // kIoError (see README exit-code table)
  EXPECT_NE(r.output.find("error"), std::string::npos);
}

std::string WriteTempCsv(const std::string& name, const std::string& text) {
  std::string path = TempPath(name);
  FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  EXPECT_EQ(fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);
  return path;
}

TEST_F(CliTest, ExitCodesDistinguishFailureClasses) {
  // Non-numeric cell: parse error -> 8.
  std::string garbled =
      WriteTempCsv("garbled.csv", "timestamp,cpu\n0,fast\n");
  EXPECT_EQ(RunCli("detect --data " + garbled).exit_code, 8);
  std::remove(garbled.c_str());

  // Duplicate timestamps: invalid input data -> 3.
  std::string dup = WriteTempCsv("dup_ts.csv", "timestamp,cpu\n0,1\n0,2\n");
  RunResult r = RunCli("detect --data " + dup);
  EXPECT_EQ(r.exit_code, 3);
  EXPECT_NE(r.output.find("allow_unsorted"), std::string::npos);  // hint
  std::remove(dup.c_str());
}

TEST_F(CliTest, RepairAndQualityReportIngestCorruptTelemetry) {
  // Out-of-order rows plus a NaN cell: strict ingest refuses, --repair
  // (which implies --allow-unsorted) audits and fixes.
  std::string text = "timestamp,cpu\n";
  for (int t = 0; t < 30; ++t) {
    if (t == 10) {
      text += "12,0.5\n";  // out of order (belongs after 11)
    } else if (t == 20) {
      text += "20,nan\n";
    } else {
      text += std::to_string(t) + ",0.5\n";
    }
  }
  std::string path = WriteTempCsv("corrupt.csv", text);
  EXPECT_EQ(RunCli("detect --data " + path).exit_code, 3);

  RunResult r =
      RunCli("detect --data " + path + " --repair --quality-report");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("QualityReport:"), std::string::npos);
  EXPECT_NE(r.output.find("NOT monotonic"), std::string::npos);
  EXPECT_NE(r.output.find("repair:"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CliTest, SimulateInjectFaultsReportsCounts) {
  std::string out = TempPath("faulted.csv");
  RunResult r = RunCli(
      "simulate --anomaly lock_contention --seed 7 --inject-faults "
      "--fault-rate 0.1 --out " +
      out);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("faults:"), std::string::npos);

  // The corrupted file needs --repair (or --allow-unsorted) to come back.
  RunResult strict = RunCli("detect --data " + out);
  EXPECT_NE(strict.exit_code, 0);
  RunResult repaired = RunCli("detect --data " + out + " --repair");
  EXPECT_EQ(repaired.exit_code, 0) << repaired.output;
  std::remove(out.c_str());
}

}  // namespace
