// DQL semantic compiler + exact quantile resolution (DESIGN.md §16):
// ResolveQuantile must agree bit-for-bit with a naive full-sort order
// statistic while decoding strictly fewer segments than a full scan
// (zone-map bracketing), attribute aliasing must resolve user spellings
// onto schema names, and Compile must lower WHERE conjuncts onto the
// store's pushdown bounds with caret-diagnostic errors for the rest.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "common/random.h"
#include "query/compiler.h"
#include "query/parser.h"
#include "simulator/metric_schema.h"
#include "store/tenant_store.h"

namespace dbsherlock::query {
namespace {

using common::StatusCode;
using store::QuantileStats;
using store::TenantStore;
using tsdata::AttributeKind;
using tsdata::Schema;

Schema TestSchema() {
  return Schema({{"latency", AttributeKind::kNumeric},
                 {"cpu", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

std::string StoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_qcompile_" +
                    std::to_string(getpid()) + "_" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;
}

std::unique_ptr<TenantStore> MustOpen(TenantStore::Options options) {
  auto store = TenantStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TenantStore::Options SmallOptions(const std::string& dir, size_t seal_rows) {
  TenantStore::Options options;
  options.dir = dir;
  options.schema = TestSchema();
  options.seal_rows = seal_rows;
  options.fsync_on_seal = false;
  return options;
}

/// The ground truth ResolveQuantile must match: k-th smallest (1-based,
/// k = ceil(q*N), clamped to [1, N]) over every non-NaN stored value.
double NaiveQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  size_t n = values.size();
  size_t k = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (k < 1) k = 1;
  if (k > n) k = n;
  return values[k - 1];
}

TEST(ResolveQuantileTest, MatchesFullSortAcrossQs) {
  auto store = MustOpen(SmallOptions(StoreDir("qs"), 16));
  common::Pcg32 rng(11, 3);
  std::vector<double> latencies;
  for (int t = 0; t < 500; ++t) {
    double latency = rng.NextDouble(0.0, 100.0);
    latencies.push_back(latency);
    ASSERT_TRUE(store->Append(t, {latency, 40.0, "ok"}).ok());
  }
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    QuantileStats stats;
    auto got = store->ResolveQuantile("latency", q, &stats);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    EXPECT_EQ(*got, NaiveQuantile(latencies, q)) << "q=" << q;
    EXPECT_EQ(stats.values_total, 500u);
  }
}

TEST(ResolveQuantileTest, DecodesFewerSegmentsThanFullScan) {
  // Time-sorted latencies: each 16-row segment's zone covers a narrow
  // value band, so bracketing p99 should decode only segments straddling
  // the bracket — far fewer than all of them.
  auto store = MustOpen(SmallOptions(StoreDir("prune"), 16));
  for (int t = 0; t < 800; ++t) {
    ASSERT_TRUE(store->Append(t, {static_cast<double>(t), 40.0, "ok"}).ok());
  }
  ASSERT_TRUE(store->Seal().ok());
  QuantileStats stats;
  auto got = store->ResolveQuantile("latency", 0.99, &stats);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, 791.0);  // k = ceil(0.99*800) = 792 -> value 791
  EXPECT_EQ(stats.segments_total, 50u);
  EXPECT_LT(stats.segments_decoded, stats.segments_total);
  EXPECT_LE(stats.segments_decoded, 3u) << "bracketing barely pruned";
  EXPECT_EQ(stats.rank, 792u);
}

TEST(ResolveQuantileTest, FuzzParityWithNaNsAndActiveTail) {
  common::Pcg32 rng(0xD00D, 5);
  size_t iters = 30;
  for (size_t i = 0; i < iters; ++i) {
    auto store = MustOpen(
        SmallOptions(StoreDir("fuzz" + std::to_string(i)),
                     static_cast<size_t>(rng.NextInt(4, 40))));
    std::vector<double> clean;
    int rows = rng.NextInt(1, 400);
    for (int t = 0; t < rows; ++t) {
      double v;
      if (rng.NextInt(0, 9) == 0) {
        v = std::numeric_limits<double>::quiet_NaN();
      } else if (rng.NextInt(0, 3) == 0) {
        v = rng.NextInt(-5, 5);  // heavy ties
      } else {
        v = rng.NextDouble(-1e3, 1e3);
      }
      if (!std::isnan(v)) clean.push_back(v);
      ASSERT_TRUE(store->Append(t, {v, 1.0, "ok"}).ok());
    }
    double q = rng.NextDouble();
    QuantileStats stats;
    auto got = store->ResolveQuantile("latency", q, &stats);
    if (clean.empty()) {
      EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, NaiveQuantile(clean, q))
        << "iter " << i << " q=" << q << " rows=" << rows;
    EXPECT_EQ(stats.values_total, clean.size());
  }
}

TEST(ResolveQuantileTest, RejectsBadArguments) {
  auto store = MustOpen(SmallOptions(StoreDir("bad"), 16));
  ASSERT_TRUE(store->Append(0, {1.0, 2.0, "ok"}).ok());
  QuantileStats stats;
  EXPECT_EQ(store->ResolveQuantile("latency", -0.1, &stats).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->ResolveQuantile("latency", 1.1, &stats).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->ResolveQuantile("nosuch", 0.5, &stats).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store->ResolveQuantile("mode", 0.5, &stats).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Attribute resolution ------------------------------------------------

TEST(ResolveAttributeTest, ExactWinsThenAliasesThenSubstring) {
  // On a schema with a literal "latency", exact match wins.
  EXPECT_EQ(*ResolveAttribute(TestSchema(), "latency"), "latency");
  EXPECT_EQ(*ResolveAttribute(TestSchema(), "LATENCY"), "latency");

  // On the paper's simulator schema, the alias table maps the colloquial
  // names onto the real attributes.
  Schema sim = simulator::MetricSchema();
  EXPECT_EQ(*ResolveAttribute(sim, "latency"), "avg_latency_ms");
  EXPECT_EQ(*ResolveAttribute(sim, "cpu"), "os_cpu_usage");
  EXPECT_EQ(*ResolveAttribute(sim, "throughput"), "throughput_tps");
  EXPECT_EQ(*ResolveAttribute(sim, "tps"), "throughput_tps");
  EXPECT_EQ(*ResolveAttribute(sim, "iowait"), "os_cpu_iowait");
  // Unique substring resolves too.
  EXPECT_EQ(*ResolveAttribute(sim, "lock_waits"), "lock_waits");
  auto missing = ResolveAttribute(sim, "definitely_not_a_metric");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// --- Compile -------------------------------------------------------------

CompiledQuery MustCompile(const std::string& text,
                          const CompileContext& context) {
  auto parsed = Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  auto compiled = Compile(*parsed, text, context);
  EXPECT_TRUE(compiled.ok()) << compiled.status().message();
  return compiled.ok() ? *compiled : CompiledQuery{};
}

TEST(CompileTest, LowersComparisonsOntoClosedBounds) {
  Schema schema = TestSchema();
  CompileContext context;
  context.schema = &schema;
  CompiledQuery q = MustCompile(
      "EXPLAIN WHERE latency > 10 AND cpu <= 80 AND latency = 5 "
      "BETWEEN 0 100",
      context);
  ASSERT_EQ(q.conditions.size(), 3u);
  // Strict > lowers to the next representable double (closed [lo, hi]).
  EXPECT_EQ(q.conditions[0].bound.lo,
            std::nextafter(10.0, std::numeric_limits<double>::infinity()));
  EXPECT_EQ(q.conditions[0].bound.hi,
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(q.conditions[1].bound.hi, 80.0);
  EXPECT_EQ(q.conditions[2].bound.lo, 5.0);
  EXPECT_EQ(q.conditions[2].bound.hi, 5.0);
}

TEST(CompileTest, ResolvesPercentilesAgainstHistory) {
  auto store = MustOpen(SmallOptions(StoreDir("compile_p"), 16));
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(store->Append(t, {static_cast<double>(t), 40.0, "ok"}).ok());
  }
  Schema schema = TestSchema();
  CompileContext context;
  context.schema = &schema;
  context.history = store.get();
  CompiledQuery q =
      MustCompile("EXPLAIN WHERE latency > p50 BETWEEN 0 100", context);
  ASSERT_EQ(q.conditions.size(), 1u);
  EXPECT_EQ(q.conditions[0].threshold, 99.0);  // k = ceil(0.5*200) = 100
  EXPECT_EQ(q.percentiles_resolved, 1u);
  EXPECT_EQ(q.quantile_stats.values_total, 200u);
}

TEST(CompileTest, ErrorCodesAndCarets) {
  Schema schema = TestSchema();
  CompileContext context;
  context.schema = &schema;  // no history

  auto parse_then_compile = [&](const std::string& text) {
    auto parsed = Parse(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    return Compile(*parsed, text, context);
  };

  // Percentile without a history store.
  auto no_history =
      parse_then_compile("EXPLAIN WHERE latency > p99 BETWEEN 0 1");
  EXPECT_EQ(no_history.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(no_history.status().message().find('^'), std::string::npos);

  // Unknown attribute: NotFound with a caret under the attribute.
  auto unknown = parse_then_compile("EXPLAIN WHERE zorp > 1 BETWEEN 0 1");
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("zorp"), std::string::npos);

  // Categorical attribute cannot be compared numerically.
  auto categorical = parse_then_compile("EXPLAIN WHERE mode > 1 BETWEEN 0 1");
  EXPECT_EQ(categorical.status().code(), StatusCode::kInvalidArgument);
}

TEST(CompileTest, DescribePassesThrough) {
  Schema schema = TestSchema();
  CompileContext context;
  context.schema = &schema;
  CompiledQuery q = MustCompile("DESCRIBE", context);
  EXPECT_EQ(q.ast.kind, QueryKind::kDescribe);
  EXPECT_TRUE(q.conditions.empty());
}

}  // namespace
}  // namespace dbsherlock::query
