#include "baselines/perfxplain.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::baselines {
namespace {

struct TestData {
  tsdata::Dataset dataset;
  tsdata::DiagnosisRegions regions;
};

/// avg_latency_ms jumps with `culprit` during [100, 150); `bystander`
/// stays flat.
TestData MakeData(uint64_t seed) {
  tsdata::Dataset d(tsdata::Schema(
      {{"avg_latency_ms", tsdata::AttributeKind::kNumeric},
       {"culprit", tsdata::AttributeKind::kNumeric},
       {"bystander", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(seed);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool ab = t >= 100 && t < 150;
    double latency = (ab ? 100.0 : 10.0) + rng.NextGaussian(0.0, 1.0);
    double culprit = (ab ? 500.0 : 50.0) + rng.NextGaussian(0.0, 5.0);
    double bystander = 30.0 + rng.NextGaussian(0.0, 1.0);
    EXPECT_TRUE(d.AppendRow(t, {latency, culprit, bystander}).ok());
  }
  return {std::move(d), regions};
}

TEST(PerfXplainTest, LearnsCulpritPredicate) {
  TestData data = MakeData(1);
  PerfXplain px(PerfXplain::Options{});
  ASSERT_TRUE(px.Train(data.dataset, data.regions).ok());
  ASSERT_FALSE(px.predicates().empty());
  EXPECT_EQ(px.predicates()[0].attribute, "culprit");
  EXPECT_EQ(px.predicates()[0].relation, PerfXplain::Relation::kHigher);
}

TEST(PerfXplainTest, NeverPicksTheLatencyAttributeItself) {
  TestData data = MakeData(2);
  PerfXplain px(PerfXplain::Options{});
  ASSERT_TRUE(px.Train(data.dataset, data.regions).ok());
  for (const auto& p : px.predicates()) {
    EXPECT_NE(p.attribute, "avg_latency_ms");
  }
}

TEST(PerfXplainTest, FlagsAbnormalRows) {
  TestData train = MakeData(3);
  TestData test = MakeData(4);
  PerfXplain px(PerfXplain::Options{});
  ASSERT_TRUE(px.Train(train.dataset, train.regions).ok());
  std::vector<bool> flags = px.FlagRows(test.dataset);
  size_t tp = 0, fp = 0;
  for (size_t row = 0; row < flags.size(); ++row) {
    bool actual = test.regions.LabelOf(test.dataset.timestamp(row)) ==
                  tsdata::RowLabel::kAbnormal;
    if (flags[row] && actual) ++tp;
    if (flags[row] && !actual) ++fp;
  }
  EXPECT_GT(tp, 40u);  // most of the 50 abnormal rows
  EXPECT_LT(fp, 10u);
}

TEST(PerfXplainTest, TrainFailsWithoutLatencyAttribute) {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0, {1.0}).ok());
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(0, 1);
  PerfXplain px(PerfXplain::Options{});
  EXPECT_FALSE(px.Train(d, regions).ok());
}

TEST(PerfXplainTest, TrainFailsWithEmptyRegion) {
  TestData data = MakeData(5);
  tsdata::DiagnosisRegions empty;
  PerfXplain px(PerfXplain::Options{});
  EXPECT_FALSE(px.Train(data.dataset, empty).ok());
}

TEST(PerfXplainTest, TrainOnManyUsesAllDatasets) {
  TestData a = MakeData(6);
  TestData b = MakeData(7);
  PerfXplain px(PerfXplain::Options{});
  ASSERT_TRUE(px.TrainOnMany({{&a.dataset, &a.regions},
                              {&b.dataset, &b.regions}})
                  .ok());
  EXPECT_FALSE(px.predicates().empty());
  EXPECT_EQ(px.predicates()[0].attribute, "culprit");
}

TEST(PerfXplainTest, TrainOnManyRejectsEmptyList) {
  PerfXplain px(PerfXplain::Options{});
  EXPECT_FALSE(px.TrainOnMany({}).ok());
}

TEST(PerfXplainTest, RespectsNumPredicatesLimit) {
  TestData data = MakeData(8);
  PerfXplain::Options options;
  options.num_predicates = 1;
  PerfXplain px(options);
  ASSERT_TRUE(px.Train(data.dataset, data.regions).ok());
  EXPECT_LE(px.predicates().size(), 1u);
}

TEST(PerfXplainTest, FlagRowsEmptyModelFlagsNothing) {
  TestData data = MakeData(9);
  PerfXplain px(PerfXplain::Options{});
  std::vector<bool> flags = px.FlagRows(data.dataset);
  for (bool f : flags) EXPECT_FALSE(f);
}

TEST(PerfXplainTest, PredicateToString) {
  PerfXplain::PairPredicate p{"cpu", PerfXplain::Relation::kHigher};
  EXPECT_EQ(p.ToString(), "cpu = higher");
}

TEST(PerfXplainTest, DeterministicForSameSeed) {
  TestData data = MakeData(10);
  PerfXplain::Options options;
  options.seed = 99;
  PerfXplain a(options), b(options);
  ASSERT_TRUE(a.Train(data.dataset, data.regions).ok());
  ASSERT_TRUE(b.Train(data.dataset, data.regions).ok());
  ASSERT_EQ(a.predicates().size(), b.predicates().size());
  for (size_t i = 0; i < a.predicates().size(); ++i) {
    EXPECT_EQ(a.predicates()[i].attribute, b.predicates()[i].attribute);
    EXPECT_EQ(a.predicates()[i].relation, b.predicates()[i].relation);
  }
}

}  // namespace
}  // namespace dbsherlock::baselines
