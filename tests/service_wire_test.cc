// The dbsherlockd wire protocol: request/response line round-trips, the
// schema spec format, tenant-name validation, and a byte-mutation fuzz
// loop — a network-facing parser must never crash on hostile input.

#include "service/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/random.h"

namespace dbsherlock::service {
namespace {

tsdata::Schema WireSchema() {
  return tsdata::Schema({{"cpu", tsdata::AttributeKind::kNumeric},
                         {"mode", tsdata::AttributeKind::kCategorical}});
}

TEST(WireTest, TenantNamesAreRestricted) {
  EXPECT_TRUE(ValidTenantName("t0"));
  EXPECT_TRUE(ValidTenantName("prod.shard-3_replica"));
  EXPECT_FALSE(ValidTenantName(""));
  EXPECT_FALSE(ValidTenantName("has space"));
  EXPECT_FALSE(ValidTenantName("slash/y"));
  EXPECT_FALSE(ValidTenantName("newline\n"));
  EXPECT_FALSE(ValidTenantName(std::string(65, 'a')));  // > 64 bytes
  EXPECT_TRUE(ValidTenantName(std::string(64, 'a')));
}

TEST(WireTest, SchemaSpecRoundTrips) {
  tsdata::Schema schema = WireSchema();
  std::string spec = FormatSchemaSpec(schema);
  EXPECT_EQ(spec, "cpu:num,mode:cat");
  auto parsed = ParseSchemaSpec(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == schema);

  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("cpu").ok());
  EXPECT_FALSE(ParseSchemaSpec("cpu:float").ok());
  EXPECT_FALSE(ParseSchemaSpec("cpu:num,cpu:num").ok());  // duplicate
}

TEST(WireTest, ParsesHello) {
  auto request = ParseRequestLine("HELLO t0 cpu:num,mode:cat");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kHello);
  EXPECT_EQ(request->tenant, "t0");
  EXPECT_TRUE(request->schema == WireSchema());
}

TEST(WireTest, ParsesCsvAppend) {
  auto request = ParseRequestLine("APPEND t0 12.5 1.5,idle");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kAppend);
  EXPECT_EQ(request->tenant, "t0");
  EXPECT_EQ(request->timestamp, 12.5);
  EXPECT_FALSE(request->cells_typed);  // CSV cells await schema coercion
  ASSERT_EQ(request->raw_cells.size(), 2u);
  EXPECT_EQ(request->raw_cells[0], "1.5");
  EXPECT_EQ(request->raw_cells[1], "idle");
}

TEST(WireTest, ParsesJsonAppend) {
  auto request = ParseRequestLine(
      R"({"op":"append","tenant":"t0","ts":12.0,"cells":[1.5,"mixed"]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kAppend);
  EXPECT_EQ(request->timestamp, 12.0);
  EXPECT_TRUE(request->cells_typed);
  ASSERT_EQ(request->cells.size(), 2u);
  EXPECT_EQ(std::get<double>(request->cells[0]), 1.5);
  EXPECT_EQ(std::get<std::string>(request->cells[1]), "mixed");
}

TEST(WireTest, ParsesJsonHello) {
  auto request = ParseRequestLine(
      R"({"op":"hello","tenant":"t1","schema":"cpu:num,mode:cat"})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kHello);
  EXPECT_EQ(request->tenant, "t1");
  EXPECT_TRUE(request->schema == WireSchema());
}

TEST(WireTest, ParsesTeach) {
  auto request = ParseRequestLine(
      R"(TEACH {"cause":"Lock Contention","predicates":)"
      R"([{"attribute":"lock_wait","type":"gt","low":5}]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kTeach);
  EXPECT_EQ(request->model.cause, "Lock Contention");
  ASSERT_EQ(request->model.predicates.size(), 1u);
  EXPECT_EQ(request->model.predicates[0].attribute, "lock_wait");
}

TEST(WireTest, ParsesBareVerbs) {
  for (const auto& [line, op] :
       std::vector<std::pair<std::string, RequestOp>>{
           {"DIAGNOSES t0", RequestOp::kDiagnoses},
           {"FLUSH t0", RequestOp::kFlush},
           {"STATS", RequestOp::kStats},
           {"MODELS", RequestOp::kModels},
           {"PING", RequestOp::kPing},
           {"QUIT", RequestOp::kQuit},
           {"PING\r", RequestOp::kPing},  // trailing CR stripped
       }) {
    auto request = ParseRequestLine(line);
    ASSERT_TRUE(request.ok()) << line << ": " << request.status().ToString();
    EXPECT_EQ(request->op, op) << line;
  }
}

TEST(WireTest, ParsesQueryAndDiagnoseRange) {
  auto query = ParseRequestLine("QUERY t0 10.5 99");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->op, RequestOp::kQuery);
  EXPECT_EQ(query->tenant, "t0");
  EXPECT_DOUBLE_EQ(query->t0, 10.5);
  EXPECT_DOUBLE_EQ(query->t1, 99.0);

  auto range = ParseRequestLine("DIAGNOSE_RANGE prod -5 12.25\r");
  ASSERT_TRUE(range.ok()) << range.status().ToString();
  EXPECT_EQ(range->op, RequestOp::kDiagnoseRange);
  EXPECT_EQ(range->tenant, "prod");
  EXPECT_DOUBLE_EQ(range->t0, -5.0);
  EXPECT_DOUBLE_EQ(range->t1, 12.25);
}

TEST(WireTest, RejectsBadQueryRanges) {
  for (const std::string& line : {
           std::string("QUERY t0"),             // missing range
           std::string("QUERY t0 1"),           // missing t1
           std::string("QUERY t0 1 2 3"),       // trailing junk
           std::string("QUERY t0 x 2"),         // bad t0
           std::string("QUERY t0 1 y"),         // bad t1
           std::string("QUERY t0 5 5"),         // empty range
           std::string("QUERY t0 9 2"),         // inverted range
           std::string("QUERY bad!name 1 2"),   // invalid tenant
           std::string("DIAGNOSE_RANGE t0 5 5"),
           std::string("DIAGNOSE_RANGE t0 9 2"),
       }) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << line;
  }
}

TEST(WireTest, ParsesHelloRetainTrailer) {
  auto request =
      ParseRequestLine("HELLO t0 cpu:num,mode:cat RETAIN 1048576 3600");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kHello);
  EXPECT_TRUE(request->schema == WireSchema());
  EXPECT_TRUE(request->has_retain);
  EXPECT_EQ(request->retain_bytes, 1048576u);
  EXPECT_DOUBLE_EQ(request->retain_age_sec, 3600.0);

  auto plain = ParseRequestLine("HELLO t0 cpu:num,mode:cat");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_retain);
}

TEST(WireTest, RejectsBadRetainTrailer) {
  for (const std::string& line : {
           std::string("HELLO t0 cpu:num RETAIN"),          // missing args
           std::string("HELLO t0 cpu:num RETAIN 10"),       // missing age
           std::string("HELLO t0 cpu:num RETAIN 10 1 2"),   // extra
           std::string("HELLO t0 cpu:num RETAIN -1 0"),     // negative
           std::string("HELLO t0 cpu:num RETAIN 10 -2"),    // negative age
           std::string("HELLO t0 cpu:num RETAIN x 0"),      // garbage
           std::string("HELLO t0 cpu:num KEEP 10 0"),       // unknown word
       }) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << line;
  }
}

TEST(WireTest, ParsesJsonHelloRetain) {
  auto request = ParseRequestLine(
      R"({"op":"hello","tenant":"t1","schema":"cpu:num",)"
      R"("retain_bytes":2048,"retain_sec":60.5})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_TRUE(request->has_retain);
  EXPECT_EQ(request->retain_bytes, 2048u);
  EXPECT_DOUBLE_EQ(request->retain_age_sec, 60.5);

  EXPECT_FALSE(ParseRequestLine(
                   R"({"op":"hello","tenant":"t1","schema":"cpu:num",)"
                   R"("retain_bytes":-5})")
                   .ok());
}

TEST(WireTest, ParsesAppendSeqForIdempotentRetries) {
  auto request = ParseRequestLine("APPENDSEQ t0 42 12.5 1.5,idle");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kAppend);
  EXPECT_EQ(request->tenant, "t0");
  EXPECT_TRUE(request->has_client_seq);
  EXPECT_EQ(request->client_seq, 42u);
  EXPECT_EQ(request->timestamp, 12.5);
  ASSERT_EQ(request->raw_cells.size(), 2u);

  // Plain APPEND carries no sequence: the server cannot dedupe it.
  auto plain = ParseRequestLine("APPEND t0 12.5 1.5,idle");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->has_client_seq);
}

TEST(WireTest, ParsesJsonAppendSeq) {
  auto request = ParseRequestLine(
      R"({"op":"append","tenant":"t0","ts":1.0,"seq":7,"cells":[1.5,"a"]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_TRUE(request->has_client_seq);
  EXPECT_EQ(request->client_seq, 7u);
}

TEST(WireTest, RejectsBadAppendSeq) {
  for (const std::string& line : {
           std::string("APPENDSEQ t0 notanum 12.5 1.5,idle"),
           std::string("APPENDSEQ t0 -3 12.5 1.5,idle"),
           std::string("APPENDSEQ t0 42 12.5"),  // seq ate the cells
           std::string(
               R"({"op":"append","tenant":"t0","ts":1,"seq":-1,"cells":[1,"a"]})"),
           std::string(
               R"({"op":"append","tenant":"t0","ts":1,"seq":"x","cells":[1,"a"]})"),
       }) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << line;
  }
}

TEST(WireTest, ParsesHealth) {
  auto request = ParseRequestLine("HEALTH");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kHealth);
  // The JSON dialect is ingestion-only (hello/append): no health there.
  EXPECT_FALSE(ParseRequestLine(R"({"op":"health"})").ok());
}

TEST(WireTest, RejectsMalformedRequests) {
  for (const std::string& line : {
           std::string(""),
           std::string("BOGUS"),
           std::string("HELLO"),                       // missing args
           std::string("HELLO bad!name cpu:num"),      // invalid name
           std::string("HELLO t0 cpu:float"),          // bad kind
           std::string("APPEND t0 nan_nope 1"),        // bad timestamp
           std::string("APPEND t0"),                   // missing cells
           std::string("TEACH not-json"),
           std::string("{\"op\":\"launch\"}"),         // unknown JSON op
           std::string("{\"op\":\"append\"}"),         // missing fields
           std::string("{oops"),                       // broken JSON
           std::string("DIAGNOSES"),                   // missing tenant
       }) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << line;
  }
}

TEST(WireTest, ResponseLinesRoundTrip) {
  auto ok = ParseResponseLine(OkLine());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, Response::Kind::kOk);
  EXPECT_TRUE(ok->detail.empty());

  auto seq = ParseResponseLine(OkLine("41"));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->detail, "41");

  auto retry = ParseResponseLine(RetryAfterLine(20));
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->kind, Response::Kind::kRetryAfter);
  EXPECT_EQ(retry->retry_after_ms, 20);

  auto err = ParseResponseLine(
      ErrLine(common::Status::NotFound("tenant 'x'\nre-HELLO")));
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->kind, Response::Kind::kErr);
  EXPECT_EQ(err->error.code(), common::StatusCode::kNotFound);
  // The multi-line message survives intact (JSON-string encoded on the
  // wire so the response still occupies one line).
  EXPECT_EQ(err->error.message(), "tenant 'x'\nre-HELLO");
}

/// Regression: ErrLine used to flatten '\n' and '\r' to spaces, which
/// destroyed multi-line payloads like DQL caret diagnostics; messages
/// with colons and interior quotes were also at the mercy of ad-hoc
/// splitting. Every such message must now round-trip byte-exact, while
/// plain single-line messages stay verbatim on the wire (old clients
/// keep working).
TEST(WireTest, ErrDetailRoundTripsHostileMessages) {
  const std::string hostile[] = {
      "syntax error: expected BETWEEN after the WHERE conditions\n"
      "  EXPLAIN WHERE cpu > 1 RANK BY margin\n"
      "                        ^~~~",
      "a: b: c: nested: colons",
      "\"starts with a quote\"",
      "tab\there and \r carriage return",
      "trailing newline\n",
      "unicode ▁▂▃ sparkline and caret ^",
  };
  for (const std::string& message : hostile) {
    std::string line = ErrLine(common::Status::InvalidArgument(message));
    EXPECT_EQ(line.find('\n'), std::string::npos) << "not one line";
    EXPECT_EQ(line.find('\r'), std::string::npos) << "not one line";
    auto response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_EQ(response->kind, Response::Kind::kErr);
    EXPECT_EQ(response->error.code(), common::StatusCode::kInvalidArgument);
    EXPECT_EQ(response->error.message(), message) << line;
  }
  // Plain messages are not JSON-wrapped — byte-compatible with older
  // clients that read the tail verbatim.
  std::string plain = ErrLine(common::Status::NotFound("no tenant 't0'"));
  EXPECT_EQ(plain, "ERR NotFound no tenant 't0'");
}

TEST(WireTest, ParsesExplainQueryVerbatim) {
  auto request = ParseRequestLine(
      "EXPLAINQ t0 EXPLAIN WHERE latency > p99 AND cpu <= 80 "
      "BETWEEN 100 200 RANK BY confidence TOP 3");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->op, RequestOp::kExplainQuery);
  EXPECT_EQ(request->tenant, "t0");
  // The statement is everything after the tenant, verbatim — the DQL
  // parser owns its own tokenization (and its spans must line up).
  EXPECT_EQ(request->query_text,
            "EXPLAIN WHERE latency > p99 AND cpu <= 80 BETWEEN 100 200 "
            "RANK BY confidence TOP 3");

  EXPECT_FALSE(ParseRequestLine("EXPLAINQ t0").ok());        // no query
  EXPECT_FALSE(ParseRequestLine("EXPLAINQ t0   ").ok());     // blank query
  EXPECT_FALSE(ParseRequestLine("EXPLAINQ bad/name DESCRIBE").ok());
}

TEST(WireTest, RejectsMalformedResponses) {
  for (const std::string& line :
       {std::string(""), std::string("WAT"), std::string("RETRY_AFTER"),
        std::string("RETRY_AFTER soon")}) {
    EXPECT_FALSE(ParseResponseLine(line).ok()) << line;
  }
}

TEST(WireTest, UnknownErrCodeStillYieldsAFailure) {
  // The client is lenient about ERR payloads it does not recognize (a
  // newer server may grow codes): the response parses, but the error it
  // carries is never mistaken for success.
  for (const std::string& line :
       {std::string("ERR"), std::string("ERR Nonsense message")}) {
    auto response = ParseResponseLine(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_EQ(response->kind, Response::Kind::kErr) << line;
    EXPECT_FALSE(response->error.ok()) << line;
  }
}

/// Regression (field trimming): QUERY/DIAGNOSE_RANGE used to trim t1 but
/// not t0, so a tab (or doubled space) before t0 failed the parse. Every
/// fixed-arity field of every verb now tokenizes on runs of spaces and
/// tabs, with or without a trailing CRLF.
TEST(WireTest, FieldsTolerateTabsAndRepeatedSpacesEverywhere) {
  const std::vector<std::pair<std::string, RequestOp>> lines = {
      {"QUERY t0\t10.5 99", RequestOp::kQuery},          // tab before t0
      {"QUERY t0  10.5  99", RequestOp::kQuery},         // doubled spaces
      {"QUERY\t\tt0 10.5\t99\r", RequestOp::kQuery},     // verb + t1 + CR
      {"DIAGNOSE_RANGE  t0\t10.5   99", RequestOp::kDiagnoseRange},
      {"DIAGNOSE_RANGE t0 10.5\t99\r", RequestOp::kDiagnoseRange},
      {"HELLO\tt0\tcpu:num,mode:cat", RequestOp::kHello},
      {"HELLO t0  cpu:num,mode:cat\tRETAIN  10\t20", RequestOp::kHello},
      {"APPEND\tt0  12.5\t1.5,idle", RequestOp::kAppend},
      {"APPENDSEQ t0\t42  12.5 1.5,idle\r", RequestOp::kAppend},
      {"DIAGNOSES\tt0", RequestOp::kDiagnoses},
      {"FLUSH  t0\r", RequestOp::kFlush},
  };
  for (const auto& [line, op] : lines) {
    auto request = ParseRequestLine(line);
    ASSERT_TRUE(request.ok()) << line << ": " << request.status().ToString();
    EXPECT_EQ(request->op, op) << line;
    if (op == RequestOp::kQuery || op == RequestOp::kDiagnoseRange) {
      EXPECT_DOUBLE_EQ(request->t0, 10.5) << line;
      EXPECT_DOUBLE_EQ(request->t1, 99.0) << line;
    }
  }
}

TEST(WireTest, ParsesQueryWhereBounds) {
  auto request =
      ParseRequestLine("QUERY t0 1 9 WHERE cpu>=1.5; iops<=40 ;cpu<=9");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_EQ(request->bounds.size(), 3u);
  EXPECT_EQ(request->bounds[0].attribute, "cpu");
  EXPECT_DOUBLE_EQ(request->bounds[0].lo, 1.5);
  EXPECT_TRUE(std::isinf(request->bounds[0].hi));
  EXPECT_EQ(request->bounds[1].attribute, "iops");
  EXPECT_TRUE(std::isinf(request->bounds[1].lo));
  EXPECT_DOUBLE_EQ(request->bounds[1].hi, 40.0);
  EXPECT_EQ(request->bounds[2].attribute, "cpu");
  EXPECT_DOUBLE_EQ(request->bounds[2].hi, 9.0);

  // Negative values parse (the '-' must not be mistaken for an operator).
  auto negative = ParseRequestLine("QUERY t0 1 9 WHERE lat>=-2.5");
  ASSERT_TRUE(negative.ok()) << negative.status().ToString();
  ASSERT_EQ(negative->bounds.size(), 1u);
  EXPECT_DOUBLE_EQ(negative->bounds[0].lo, -2.5);

  // Empty clauses (a trailing ';') are tolerated, not operator errors.
  auto trailing = ParseRequestLine("QUERY t0 1 9 WHERE cpu>=1;;");
  ASSERT_TRUE(trailing.ok()) << trailing.status().ToString();
  EXPECT_EQ(trailing->bounds.size(), 1u);

  // No trailer: no bounds.
  auto plain = ParseRequestLine("QUERY t0 1 9");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->bounds.empty());
}

TEST(WireTest, RejectsBadWhereTrailers) {
  for (const std::string& line : {
           std::string("QUERY t0 1 9 WHERE"),             // no clauses
           std::string("QUERY t0 1 9 WHERE cpu=5"),       // bad operator
           std::string("QUERY t0 1 9 WHERE >=5"),         // missing attr
           std::string("QUERY t0 1 9 WHERE cpu>=nan"),    // NaN bound
           std::string("QUERY t0 1 9 WHERE cpu>=x"),      // non-numeric
           std::string("QUERY t0 1 9 WHERE ;;"),          // only empties
           std::string("QUERY t0 1 9 HAVING cpu>=1"),     // unknown keyword
           // DIAGNOSE_RANGE takes no trailer at all: its explanation must
           // cover the whole window, never a silently-filtered subset.
           std::string("DIAGNOSE_RANGE t0 1 9 WHERE cpu>=1"),
       }) {
    EXPECT_FALSE(ParseRequestLine(line).ok()) << line;
  }
}

/// Regression: kResourceExhausted (the DIAGNOSE_RANGE row-cap refusal)
/// must survive an ERR round-trip with its code intact — a client that
/// sees kInternal would retry a request that can never succeed.
TEST(WireTest, ResourceExhaustedErrRoundTripsItsCode) {
  auto response = ParseResponseLine(
      ErrLine(common::Status::ResourceExhausted("window has 9e9 rows")));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->kind, Response::Kind::kErr);
  EXPECT_EQ(response->error.code(), common::StatusCode::kResourceExhausted);
  EXPECT_NE(response->error.message().find("9e9 rows"), std::string::npos);
}

/// Fuzz: random byte mutations of valid request/response lines must yield
/// a parsed value or a clean error Status — never a crash or sanitizer
/// report (this runs under the ASan/UBSan and TSan sweeps).
TEST(WireTest, ByteMutationFuzzNeverCrashes) {
  const std::vector<std::string> bases = {
      "HELLO tenant0 cpu:num,mode:cat,iops:num",
      "APPEND tenant0 1754.25 0.5,idle,120",
      R"({"op":"append","tenant":"t0","ts":12.0,"cells":[1.5,"mixed"]})",
      R"(TEACH {"cause":"x","predicates":[{"attribute":"a","type":"gt",)"
      R"("low":5}]})",
      "OK 12",
      "RETRY_AFTER 20",
      "ERR NotFound tenant 'x' unknown",
  };
  common::Pcg32 fuzz_rng(0xd00d, 11);
  size_t parsed_count = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = bases[iter % bases.size()];
    size_t num_edits = 1 + fuzz_rng.NextBounded(4);
    for (size_t e = 0; e < num_edits && !mutated.empty(); ++e) {
      size_t pos =
          fuzz_rng.NextBounded(static_cast<uint32_t>(mutated.size()));
      switch (fuzz_rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(fuzz_rng.NextBounded(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        case 2:
          mutated.insert(pos, 1, mutated[pos]);
          break;
      }
    }
    if (ParseRequestLine(mutated).ok()) ++parsed_count;
    if (ParseResponseLine(mutated).ok()) ++parsed_count;
  }
  // Some mutations must survive (cell tweaks etc.), otherwise the fuzz
  // only exercises the error path.
  EXPECT_GT(parsed_count, 0u);
}

}  // namespace
}  // namespace dbsherlock::service
