#include "tsdata/align.h"

#include <gtest/gtest.h>

namespace dbsherlock::tsdata {
namespace {

RawCounterSeries Series(std::string name, Aggregation agg,
                        std::vector<RawSample> samples) {
  RawCounterSeries s;
  s.name = std::move(name);
  s.aggregation = agg;
  s.samples = std::move(samples);
  return s;
}

double Value(const Dataset& d, const std::string& attr, size_t row) {
  auto col = d.ColumnByName(attr);
  EXPECT_TRUE(col.ok());
  return (*col)->numeric(row);
}

TEST(AlignTest, MeanAggregationAveragesWithinInterval) {
  auto ds = AlignLogs(
      {Series("cpu", Aggregation::kMean,
              {{0.1, 10.0}, {0.6, 30.0}, {1.2, 50.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(Value(*ds, "cpu", 0), 20.0);  // mean of 10, 30
  EXPECT_DOUBLE_EQ(Value(*ds, "cpu", 1), 50.0);
}

TEST(AlignTest, MeanCarriesForwardThroughEmptyIntervals) {
  auto ds = AlignLogs(
      {Series("gauge", Aggregation::kMean, {{0.5, 42.0}, {3.5, 10.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(Value(*ds, "gauge", 1), 42.0);  // carried
  EXPECT_DOUBLE_EQ(Value(*ds, "gauge", 2), 42.0);  // carried
  EXPECT_DOUBLE_EQ(Value(*ds, "gauge", 3), 10.0);
}

TEST(AlignTest, SumAggregation) {
  auto ds = AlignLogs(
      {Series("bytes", Aggregation::kSum,
              {{0.1, 5.0}, {0.9, 7.0}, {2.5, 1.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "bytes", 0), 12.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "bytes", 1), 0.0);  // empty -> 0
  EXPECT_DOUBLE_EQ(Value(*ds, "bytes", 2), 1.0);
}

TEST(AlignTest, MaxAggregation) {
  auto ds = AlignLogs(
      {Series("peak", Aggregation::kMax, {{0.2, 3.0}, {0.8, 9.0}, {1.5, 2.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "peak", 0), 9.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "peak", 1), 2.0);
}

TEST(AlignTest, LastAggregationCarriesForward) {
  auto ds = AlignLogs(
      {Series("level", Aggregation::kLast,
              {{0.3, 5.0}, {0.7, 8.0}, {2.9, 1.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "level", 0), 8.0);  // last in interval
  EXPECT_DOUBLE_EQ(Value(*ds, "level", 1), 8.0);  // carried
  EXPECT_DOUBLE_EQ(Value(*ds, "level", 2), 1.0);
}

TEST(AlignTest, RateAggregationFromCumulativeCounter) {
  // Counter values 100, 160, 220 at seconds 0, 1, 2 -> rate 60/s.
  auto ds = AlignLogs(
      {Series("lock_waits", Aggregation::kRate,
              {{0.5, 100.0}, {1.5, 160.0}, {2.5, 220.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "lock_waits", 1), 60.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "lock_waits", 2), 60.0);
}

TEST(AlignTest, RateSurvivesCounterReset) {
  // Counter resets between 1.5 and 2.5 (server restart): the post-reset
  // value counts as the increase instead of a huge negative delta.
  auto ds = AlignLogs(
      {Series("c", Aggregation::kRate,
              {{0.5, 1000.0}, {1.5, 1100.0}, {2.5, 40.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "c", 1), 100.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "c", 2), 40.0);
}

TEST(AlignTest, UnsortedSamplesAreSorted) {
  auto ds = AlignLogs(
      {Series("x", Aggregation::kLast, {{2.5, 3.0}, {0.5, 1.0}, {1.5, 2.0}})},
      {}, {});
  ASSERT_TRUE(ds.ok());
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 0), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 1), 2.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 2), 3.0);
}

TEST(AlignTest, QueryLogAggregates) {
  std::vector<QueryLogEntry> log = {
      {0.1, 10.0, "SELECT"}, {0.4, 20.0, "SELECT"}, {0.8, 90.0, "UPDATE"},
      {1.2, 50.0, "SELECT"},
  };
  auto ds = AlignLogs({}, log, {});
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(Value(*ds, "throughput_tps", 0), 3.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 0), 40.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "select_count", 0), 2.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "update_count", 0), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "select_count", 1), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "update_count", 1), 0.0);
  // Tail latency attribute named from the quantile.
  EXPECT_TRUE(ds->schema().Contains("p99_latency_ms"));
}

TEST(AlignTest, CustomQuantileName) {
  AlignmentOptions options;
  options.latency_quantile = 0.5;
  auto ds = AlignLogs({}, {{0.1, 10.0, "Q"}}, {}, options);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->schema().Contains("p50_latency_ms"));
}

TEST(AlignTest, StateSeriesLastObservationCarriedForward) {
  RawStateSeries state;
  state.name = "flush_policy";
  state.samples = {{0.2, "adaptive"}, {2.7, "off"}};
  auto ds = AlignLogs(
      {Series("pad", Aggregation::kSum, {{0.0, 0.0}, {3.9, 0.0}})}, {},
      {state});
  ASSERT_TRUE(ds.ok());
  auto col = ds->ColumnByName("flush_policy");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->CategoryName((*col)->code(0)), "adaptive");
  EXPECT_EQ((*col)->CategoryName((*col)->code(1)), "adaptive");
  EXPECT_EQ((*col)->CategoryName((*col)->code(2)), "off");
  EXPECT_EQ((*col)->CategoryName((*col)->code(3)), "off");
}

TEST(AlignTest, ExplicitWindowClipsData) {
  AlignmentOptions options;
  options.start_time = 1.0;
  options.end_time = 3.0;
  auto ds = AlignLogs(
      {Series("x", Aggregation::kSum,
              {{0.5, 100.0}, {1.5, 1.0}, {2.5, 2.0}, {3.5, 100.0}})},
      {}, {}, options);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(ds->timestamp(0), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 0), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 1), 2.0);
}

TEST(AlignTest, CoarserInterval) {
  AlignmentOptions options;
  options.interval_sec = 5.0;
  auto ds = AlignLogs(
      {Series("x", Aggregation::kSum, {{0.0, 1.0}, {4.9, 1.0}, {5.1, 1.0}})},
      {}, {}, options);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 0), 2.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 1), 1.0);
}

TEST(AlignTest, RejectsBadInputs) {
  AlignmentOptions bad_interval;
  bad_interval.interval_sec = 0.0;
  EXPECT_FALSE(AlignLogs({Series("x", Aggregation::kSum, {{0, 1}})}, {}, {},
                         bad_interval)
                   .ok());
  // Duplicate names.
  EXPECT_FALSE(AlignLogs({Series("x", Aggregation::kSum, {{0, 1}}),
                          Series("x", Aggregation::kMean, {{0, 1}})},
                         {}, {})
                   .ok());
  // No data at all.
  EXPECT_FALSE(AlignLogs({}, {}, {}).ok());
  // Empty name.
  EXPECT_FALSE(
      AlignLogs({Series("", Aggregation::kSum, {{0, 1}})}, {}, {}).ok());
}

TEST(AlignTest, RatePreWindowSamplesAdvanceBaseline) {
  // Counter grows 100 -> 150 before the window opens at t=10. That
  // pre-window increase must not be billed to the first in-grid interval:
  // the baseline for the sample at t=10.5 is 150 (the last pre-window
  // observation), not 100 (the very first sample).
  AlignmentOptions options;
  options.start_time = 10.0;
  options.end_time = 13.0;
  auto ds = AlignLogs(
      {Series("c", Aggregation::kRate,
              {{9.0, 100.0}, {9.5, 150.0}, {10.5, 160.0}, {11.5, 170.0}})},
      {}, {}, options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(Value(*ds, "c", 0), 10.0);  // 160 - 150, not 160 - 100
  EXPECT_DOUBLE_EQ(Value(*ds, "c", 1), 10.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "c", 2), 0.0);
}

TEST(AlignTest, IdleIntervalsCarryLatencyAggregatesForward) {
  // Queries in seconds 0 and 3 only. The idle gap must not emit hard-zero
  // latency cells (a manufactured latency cliff); the last observed
  // aggregate carries forward, like every other gauge. Throughput and the
  // per-type counts still report a true 0 for the idle seconds.
  std::vector<QueryLogEntry> log = {
      {0.2, 40.0, "SELECT"}, {0.7, 60.0, "SELECT"}, {3.5, 90.0, "SELECT"},
  };
  auto ds = AlignLogs({}, log, {});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->num_rows(), 4u);
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 0), 50.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 1), 50.0);  // carried
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 2), 50.0);  // carried
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 3), 90.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "p99_latency_ms", 1),
                   Value(*ds, "p99_latency_ms", 0));  // carried, not 0
  EXPECT_DOUBLE_EQ(Value(*ds, "throughput_tps", 1), 0.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "select_count", 1), 0.0);
}

TEST(AlignTest, MixedCaseStatementTypesShareOneColumn) {
  // Columns are named ToLower(type) + "_count"; keying the counts by the
  // raw type made "SELECT"/"select" collide into a duplicate-attribute
  // error. They are one statement type and must share one column.
  std::vector<QueryLogEntry> log = {
      {0.2, 10.0, "SELECT"}, {0.6, 10.0, "select"}, {1.3, 10.0, "Select"},
      {1.7, 10.0, "UPDATE"},
  };
  auto ds = AlignLogs({}, log, {});
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_DOUBLE_EQ(Value(*ds, "select_count", 0), 2.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "select_count", 1), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "update_count", 1), 1.0);
}

TEST(AlignTest, NonAlignedEndClipsAllLayersAtGridExtent) {
  // end = 2.5 is not a step multiple: the grid rounds up to [0, 3). Both
  // the counter layer and the query-log layer must include samples in
  // [2.5, 3.0) — the query loop used to clip at the raw `end` while
  // counters clipped at the grid extent, so the two layers disagreed on
  // the last interval's contents.
  AlignmentOptions options;
  options.start_time = 0.0;
  options.end_time = 2.5;
  std::vector<QueryLogEntry> log = {
      {0.5, 10.0, "Q"}, {2.7, 30.0, "Q"},
  };
  auto ds = AlignLogs(
      {Series("x", Aggregation::kSum, {{0.5, 1.0}, {2.7, 5.0}})}, log, {},
      options);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  ASSERT_EQ(ds->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(Value(*ds, "x", 2), 5.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "throughput_tps", 2), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "q_count", 2), 1.0);
  EXPECT_DOUBLE_EQ(Value(*ds, "avg_latency_ms", 2), 30.0);
}

TEST(AlignTest, OutputFeedsDiagnosisDirectly) {
  // End-to-end: build a raw log with a planted anomaly, align it, and
  // check the dataset is diagnosable (timestamps regular, schema sane).
  std::vector<RawSample> cpu;
  std::vector<QueryLogEntry> queries;
  for (int t = 0; t < 120; ++t) {
    bool ab = t >= 60 && t < 90;
    cpu.push_back({t + 0.3, ab ? 95.0 : 35.0});
    cpu.push_back({t + 0.8, ab ? 93.0 : 38.0});
    queries.push_back({t + 0.5, ab ? 120.0 : 8.0, "SELECT"});
  }
  auto ds = AlignLogs({Series("os_cpu", Aggregation::kMean, cpu)}, queries,
                      {});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_rows(), 120u);
  for (size_t i = 1; i < ds->num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(ds->timestamp(i) - ds->timestamp(i - 1), 1.0);
  }
  EXPECT_GT(Value(*ds, "os_cpu", 70), 80.0);
  EXPECT_LT(Value(*ds, "os_cpu", 10), 50.0);
  EXPECT_GT(Value(*ds, "avg_latency_ms", 70), 100.0);
}

}  // namespace
}  // namespace dbsherlock::tsdata
