// Schedule-driven fault injection (common/faultenv.h): grammar errors,
// per-kind syscall semantics (EIO/ENOSPC/short/torn/stall/reset), seeded
// determinism, after/limit arming, wildcard sites, and the disabled
// pass-through contract.

#include "common/faultenv.h"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace faultenv = dbsherlock::common::faultenv;

namespace {

/// Every test leaves the process-wide schedule clean.
class FaultenvTest : public testing::Test {
 protected:
  void TearDown() override { faultenv::Clear(); }
};

/// A scratch file fd, closed and unlinked on destruction.
struct TempFd {
  TempFd() {
    path = testing::TempDir() + "/faultenv_XXXXXX";
    fd = ::mkstemp(path.data());
  }
  ~TempFd() {
    if (fd >= 0) ::close(fd);
    ::unlink(path.c_str());
  }
  std::string path;
  int fd = -1;
};

TEST_F(FaultenvTest, DisabledPassesThrough) {
  ASSERT_FALSE(faultenv::Enabled());
  TempFd file;
  ASSERT_GE(file.fd, 0);
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "abcd", 4), 4);
  EXPECT_EQ(faultenv::Fsync("wal.fsync", file.fd), 0);
  ::lseek(file.fd, 0, SEEK_SET);
  char buf[8] = {};
  EXPECT_EQ(faultenv::Read("wal.read", file.fd, buf, sizeof(buf)), 4);
  EXPECT_EQ(std::string(buf, 4), "abcd");
  EXPECT_EQ(faultenv::ActiveSpec(), "");
  EXPECT_EQ(faultenv::InjectedCount(), 0u);
}

TEST_F(FaultenvTest, EmptySpecClears) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=eio@1").ok());
  EXPECT_TRUE(faultenv::Enabled());
  ASSERT_TRUE(faultenv::InstallSchedule("").ok());
  EXPECT_FALSE(faultenv::Enabled());
}

TEST_F(FaultenvTest, ParseErrorsRejectTheWholeSchedule) {
  const char* bad[] = {
      "wal.write",                      // no '='
      "wal.write=frob@0.5",             // unknown kind
      "wal.write=eio",                  // no probability
      "wal.write=eio@1.5",              // probability outside [0,1]
      "wal.write=eio@nope",             // unparseable probability
      "wal.write=eio@0.5,ms",           // option without value
      "wal.write=eio@0.5,bogus=3",      // unknown option
      "wal.write=eio@0.5,limit=-2",     // negative option value
      "seed=x;wal.write=eio@1",         // bad seed
  };
  for (const char* spec : bad) {
    auto status = faultenv::InstallSchedule(spec);
    EXPECT_FALSE(status.ok()) << spec;
    EXPECT_FALSE(faultenv::Enabled()) << spec;
  }
}

TEST_F(FaultenvTest, EioFailsWithoutWriting) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=eio@1").ok());
  TempFd file;
  errno = 0;
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "abcd", 4), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(::lseek(file.fd, 0, SEEK_END), 0);  // nothing landed
  EXPECT_EQ(faultenv::InjectedCount(), 1u);
}

TEST_F(FaultenvTest, EnospcOnFsync) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.fsync=enospc@1").ok());
  TempFd file;
  errno = 0;
  EXPECT_EQ(faultenv::Fsync("wal.fsync", file.fd), -1);
  EXPECT_EQ(errno, ENOSPC);
}

TEST_F(FaultenvTest, TornWriteLeavesHalfTheBytes) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=torn@1,limit=1").ok());
  TempFd file;
  errno = 0;
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "abcdefgh", 8), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(::lseek(file.fd, 0, SEEK_END), 4);  // the torn tail
  // limit=1: the next write goes through untouched.
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "ijkl", 4), 4);
}

TEST_F(FaultenvTest, ShortWriteAndShortRead) {
  ASSERT_TRUE(faultenv::InstallSchedule("io.write=short@1;io.read=short@1")
                  .ok());
  TempFd file;
  EXPECT_EQ(faultenv::Write("io.write", file.fd, "abcdefgh", 8), 4);
  ::lseek(file.fd, 0, SEEK_SET);
  char buf[8] = {};
  EXPECT_EQ(faultenv::Read("io.read", file.fd, buf, sizeof(buf)), 1);
  EXPECT_EQ(buf[0], 'a');
}

TEST_F(FaultenvTest, ResetOnSocketsAndRefusedAtConnect) {
  ASSERT_TRUE(
      faultenv::InstallSchedule("srv.send=reset@1;cli.connect=reset@1")
          .ok());
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  errno = 0;
  EXPECT_EQ(faultenv::Send("srv.send", pair[0], "x", 1, 0), -1);
  EXPECT_EQ(errno, ECONNRESET);
  errno = 0;
  EXPECT_EQ(faultenv::Connect("cli.connect", pair[0], nullptr, 0), -1);
  EXPECT_EQ(errno, ECONNREFUSED);
  ::close(pair[0]);
  ::close(pair[1]);
}

TEST_F(FaultenvTest, AfterArmsLate) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=eio@1,after=2").ok());
  TempFd file;
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "a", 1), 1);
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "b", 1), 1);
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "c", 1), -1);
  EXPECT_EQ(errno, EIO);
}

TEST_F(FaultenvTest, LimitCapsInjections) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=eio@1,limit=2").ok());
  TempFd file;
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "a", 1), -1);
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "b", 1), -1);
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "c", 1), 1);
  EXPECT_EQ(faultenv::InjectedCount(), 2u);
}

TEST_F(FaultenvTest, WildcardMatchesPrefix) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.*=eio@1").ok());
  TempFd file;
  EXPECT_EQ(faultenv::Write("wal.write", file.fd, "a", 1), -1);
  EXPECT_EQ(faultenv::Fsync("wal.fsync", file.fd), -1);
  EXPECT_EQ(faultenv::Write("seg.write", file.fd, "a", 1), 1);
  ASSERT_TRUE(faultenv::InstallSchedule("*=eio@1").ok());
  EXPECT_EQ(faultenv::Write("anything.at.all", file.fd, "a", 1), -1);
}

TEST_F(FaultenvTest, SeededDecisionsAreDeterministic) {
  auto run = [](const std::string& spec) {
    EXPECT_TRUE(faultenv::InstallSchedule(spec).ok());
    TempFd file;
    std::vector<bool> injected;
    for (int i = 0; i < 64; ++i) {
      injected.push_back(faultenv::Write("wal.write", file.fd, "x", 1) < 0);
    }
    return injected;
  };
  std::vector<bool> a = run("seed=7;wal.write=eio@0.5");
  std::vector<bool> b = run("seed=7;wal.write=eio@0.5");
  std::vector<bool> c = run("seed=8;wal.write=eio@0.5");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  size_t hits = static_cast<size_t>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits, 16u);  // ~32 expected out of 64
  EXPECT_LT(hits, 48u);
}

TEST_F(FaultenvTest, StatsCountCallsAndInjections) {
  ASSERT_TRUE(faultenv::InstallSchedule("wal.write=eio@1,limit=1").ok());
  TempFd file;
  (void)faultenv::Write("wal.write", file.fd, "a", 1);
  (void)faultenv::Write("wal.write", file.fd, "b", 1);
  auto stats = faultenv::StatsJson();
  const dbsherlock::common::JsonValue* site = stats.Find("wal.write");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->GetNumber("calls").ValueOr(0), 2.0);
  EXPECT_EQ(site->GetNumber("injected").ValueOr(0), 1.0);
}

TEST_F(FaultenvTest, InstallFromEnvHonorsTheVariable) {
  ::setenv("DBSHERLOCK_FAULT_SCHEDULE", "wal.write=eio@1", 1);
  ASSERT_TRUE(faultenv::InstallFromEnv().ok());
  EXPECT_TRUE(faultenv::Enabled());
  EXPECT_EQ(faultenv::ActiveSpec(), "wal.write=eio@1");
  faultenv::Clear();
  ::setenv("DBSHERLOCK_FAULT_SCHEDULE", "wal.write=frob@1", 1);
  EXPECT_FALSE(faultenv::InstallFromEnv().ok());
  EXPECT_FALSE(faultenv::Enabled());
  ::unsetenv("DBSHERLOCK_FAULT_SCHEDULE");
}

}  // namespace
