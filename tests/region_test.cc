#include "tsdata/region.h"

#include <gtest/gtest.h>

namespace dbsherlock::tsdata {
namespace {

Dataset TinyDataset(int rows) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int t = 0; t < rows; ++t) {
    EXPECT_TRUE(d.AppendRow(t, {static_cast<double>(t)}).ok());
  }
  return d;
}

TEST(TimeRangeTest, HalfOpenSemantics) {
  TimeRange r{10.0, 20.0};
  EXPECT_TRUE(r.Contains(10.0));
  EXPECT_TRUE(r.Contains(19.999));
  EXPECT_FALSE(r.Contains(20.0));
  EXPECT_FALSE(r.Contains(9.999));
  EXPECT_DOUBLE_EQ(r.length(), 10.0);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE((TimeRange{5.0, 5.0}).valid());
}

TEST(RegionSpecTest, MultipleRanges) {
  RegionSpec spec;
  spec.Add(0.0, 5.0);
  spec.Add(10.0, 15.0);
  EXPECT_TRUE(spec.Contains(3.0));
  EXPECT_FALSE(spec.Contains(7.0));
  EXPECT_TRUE(spec.Contains(12.0));
  EXPECT_EQ(spec.ranges().size(), 2u);
}

TEST(RegionSpecTest, RowsIn) {
  Dataset d = TinyDataset(20);
  RegionSpec spec;
  spec.Add(5.0, 8.0);
  spec.Add(15.0, 17.0);
  EXPECT_EQ(spec.RowsIn(d), (std::vector<size_t>{5, 6, 7, 15, 16}));
}

TEST(RegionSpecTest, ScaledAroundCenterExtends) {
  RegionSpec spec;
  spec.Add(10.0, 20.0);
  RegionSpec wider = spec.ScaledAroundCenter(1.2);
  ASSERT_EQ(wider.ranges().size(), 1u);
  EXPECT_DOUBLE_EQ(wider.ranges()[0].start, 9.0);
  EXPECT_DOUBLE_EQ(wider.ranges()[0].end, 21.0);
}

TEST(RegionSpecTest, ScaledAroundCenterShrinks) {
  RegionSpec spec;
  spec.Add(10.0, 20.0);
  RegionSpec narrower = spec.ScaledAroundCenter(0.8);
  EXPECT_DOUBLE_EQ(narrower.ranges()[0].start, 11.0);
  EXPECT_DOUBLE_EQ(narrower.ranges()[0].end, 19.0);
}

TEST(DiagnosisRegionsTest, ImplicitNormal) {
  DiagnosisRegions regions;
  regions.abnormal.Add(5.0, 10.0);
  EXPECT_EQ(regions.LabelOf(7.0), RowLabel::kAbnormal);
  EXPECT_EQ(regions.LabelOf(2.0), RowLabel::kNormal);
  EXPECT_EQ(regions.LabelOf(50.0), RowLabel::kNormal);
}

TEST(DiagnosisRegionsTest, ExplicitNormalIgnoresRest) {
  DiagnosisRegions regions;
  regions.abnormal.Add(5.0, 10.0);
  regions.normal.Add(0.0, 3.0);
  EXPECT_EQ(regions.LabelOf(7.0), RowLabel::kAbnormal);
  EXPECT_EQ(regions.LabelOf(1.0), RowLabel::kNormal);
  EXPECT_EQ(regions.LabelOf(4.0), RowLabel::kIgnored);
  EXPECT_EQ(regions.LabelOf(12.0), RowLabel::kIgnored);
}

TEST(DiagnosisRegionsTest, AbnormalWinsOverlap) {
  DiagnosisRegions regions;
  regions.abnormal.Add(5.0, 10.0);
  regions.normal.Add(0.0, 20.0);
  EXPECT_EQ(regions.LabelOf(7.0), RowLabel::kAbnormal);
}

TEST(SplitRowsTest, PartitionsIndices) {
  Dataset d = TinyDataset(10);
  DiagnosisRegions regions;
  regions.abnormal.Add(3.0, 6.0);
  LabeledRows rows = SplitRows(d, regions);
  EXPECT_EQ(rows.abnormal, (std::vector<size_t>{3, 4, 5}));
  EXPECT_EQ(rows.normal.size(), 7u);
}

TEST(SplitRowsTest, WithExplicitNormal) {
  Dataset d = TinyDataset(10);
  DiagnosisRegions regions;
  regions.abnormal.Add(3.0, 6.0);
  regions.normal.Add(0.0, 2.0);
  LabeledRows rows = SplitRows(d, regions);
  EXPECT_EQ(rows.abnormal.size(), 3u);
  EXPECT_EQ(rows.normal, (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace dbsherlock::tsdata
