#include "core/causal_model.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace dbsherlock::core {
namespace {

Predicate Gt(const std::string& attr, double low) {
  return Predicate{attr, PredicateType::kGreaterThan, low, 0.0, {}};
}
Predicate Lt(const std::string& attr, double high) {
  return Predicate{attr, PredicateType::kLessThan, 0.0, high, {}};
}
Predicate Range(const std::string& attr, double low, double high) {
  return Predicate{attr, PredicateType::kRange, low, high, {}};
}
Predicate InSet(const std::string& attr, std::vector<std::string> cats) {
  return Predicate{attr, PredicateType::kInSet, 0.0, 0.0, std::move(cats)};
}

// --- MergePredicates ---------------------------------------------------------

TEST(MergePredicatesTest, GreaterThanWidensDownward) {
  auto m = MergePredicates(Gt("a", 10.0), Gt("a", 15.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, PredicateType::kGreaterThan);
  EXPECT_DOUBLE_EQ(m->low, 10.0);  // the paper's {A>10, A>15} -> A>10
}

TEST(MergePredicatesTest, LessThanWidensUpward) {
  auto m = MergePredicates(Lt("a", 30.0), Lt("a", 20.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, PredicateType::kLessThan);
  EXPECT_DOUBLE_EQ(m->high, 30.0);
}

TEST(MergePredicatesTest, RangesUnion) {
  auto m = MergePredicates(Range("a", 10.0, 20.0), Range("a", 15.0, 40.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, PredicateType::kRange);
  EXPECT_DOUBLE_EQ(m->low, 10.0);
  EXPECT_DOUBLE_EQ(m->high, 40.0);
}

TEST(MergePredicatesTest, GreaterWithRangeDropsUpperBound) {
  auto m = MergePredicates(Gt("a", 12.0), Range("a", 15.0, 40.0));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, PredicateType::kGreaterThan);
  EXPECT_DOUBLE_EQ(m->low, 12.0);
}

TEST(MergePredicatesTest, OppositeDirectionsInconsistent) {
  EXPECT_FALSE(MergePredicates(Gt("a", 10.0), Lt("a", 30.0)).has_value());
  EXPECT_FALSE(MergePredicates(Lt("a", 30.0), Gt("a", 10.0)).has_value());
}

TEST(MergePredicatesTest, DifferentAttributesRejected) {
  EXPECT_FALSE(MergePredicates(Gt("a", 1.0), Gt("b", 1.0)).has_value());
}

TEST(MergePredicatesTest, MixedKindsRejected) {
  EXPECT_FALSE(MergePredicates(Gt("a", 1.0), InSet("a", {"x"})).has_value());
}

TEST(MergePredicatesTest, CategoricalIntersects) {
  // The paper's example: {xx,yy,zz} merged with {xx,zz} -> {xx,zz}.
  auto m = MergePredicates(InSet("e", {"xx", "yy", "zz"}),
                           InSet("e", {"xx", "zz"}));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->categories, (std::vector<std::string>{"xx", "zz"}));
}

TEST(MergePredicatesTest, DisjointCategoriesInconsistent) {
  EXPECT_FALSE(
      MergePredicates(InSet("e", {"a"}), InSet("e", {"b"})).has_value());
}

// --- MergeCausalModels (the paper's Section 6.2 worked example) ---------------

TEST(MergeCausalModelsTest, PaperExample) {
  CausalModel m1{"cause",
                 {Gt("A", 10.0), Gt("B", 100.0), Gt("C", 20.0),
                  InSet("E", {"xx", "yy", "zz"})},
                 1};
  CausalModel m2{"cause",
                 {Gt("A", 15.0), Gt("C", 15.0), Lt("D", 250.0),
                  InSet("E", {"xx", "zz"})},
                 1};
  auto merged = MergeCausalModels(m1, m2);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->predicates.size(), 3u);  // A, C, E common
  EXPECT_EQ(merged->predicates[0].attribute, "A");
  EXPECT_DOUBLE_EQ(merged->predicates[0].low, 10.0);
  EXPECT_EQ(merged->predicates[1].attribute, "C");
  EXPECT_DOUBLE_EQ(merged->predicates[1].low, 15.0);
  EXPECT_EQ(merged->predicates[2].attribute, "E");
  EXPECT_EQ(merged->predicates[2].categories,
            (std::vector<std::string>{"xx", "zz"}));
  EXPECT_EQ(merged->num_sources, 2);
}

TEST(MergeCausalModelsTest, InconsistentAttributeDropped) {
  CausalModel m1{"cause", {Gt("A", 10.0), Gt("B", 5.0)}, 1};
  CausalModel m2{"cause", {Lt("A", 30.0), Gt("B", 2.0)}, 1};
  auto merged = MergeCausalModels(m1, m2);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->predicates.size(), 1u);
  EXPECT_EQ(merged->predicates[0].attribute, "B");
}

TEST(MergeCausalModelsTest, DifferentCausesFail) {
  CausalModel m1{"x", {}, 1};
  CausalModel m2{"y", {}, 1};
  EXPECT_FALSE(MergeCausalModels(m1, m2).ok());
}

// --- ModelConfidence -----------------------------------------------------------

struct ConfidenceData {
  tsdata::Dataset dataset;
  tsdata::LabeledRows rows;
};

ConfidenceData MakeConfidenceData(double abnormal_level, uint64_t seed) {
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric},
       {"y", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(seed);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool ab = t >= 100 && t < 150;
    double x = (ab ? abnormal_level : 10.0) + rng.NextGaussian(0.0, 2.0);
    double y = 50.0 + rng.NextGaussian(0.0, 2.0);
    EXPECT_TRUE(d.AppendRow(t, {x, y}).ok());
  }
  ConfidenceData out{std::move(d), {}};
  out.rows = SplitRows(out.dataset, regions);
  return out;
}

TEST(ModelConfidenceTest, MatchingModelScoresHigh) {
  ConfidenceData data = MakeConfidenceData(100.0, 3);
  // A boundary-adjacent predicate, as DBSherlock itself would extract.
  CausalModel model{"spike", {Gt("x", 90.0)}, 1};
  double conf =
      ModelConfidence(model, data.dataset, data.rows, PredicateGenOptions{});
  EXPECT_GT(conf, 70.0);
}

TEST(ModelConfidenceTest, MidGapThresholdStillScoresHigh) {
  // Confidence is measured on the *labeled* partition space (Eq. 3 uses
  // Section 4.2's labels): the gap between the clusters holds no tuples
  // and thus no partitions that could dilute a mid-gap threshold. Both a
  // boundary-adjacent and a mid-gap predicate separate perfectly.
  ConfidenceData data = MakeConfidenceData(100.0, 3);
  CausalModel tight{"spike", {Gt("x", 90.0)}, 1};
  CausalModel loose{"spike", {Gt("x", 50.0)}, 1};
  PredicateGenOptions options;
  EXPECT_GT(ModelConfidence(tight, data.dataset, data.rows, options), 80.0);
  EXPECT_GT(ModelConfidence(loose, data.dataset, data.rows, options), 80.0);
}

TEST(ModelConfidenceTest, SkewedAttributeUsesNormalAnchor) {
  // All normal values collapse into the first partition of a heavily
  // skewed range; abnormal ramp tuples share it, so no pure Normal
  // partition exists. The Section 4.4 anchor keeps confidence meaningful.
  tsdata::Dataset d(tsdata::Schema(
      {{"x", tsdata::AttributeKind::kNumeric}}));
  common::Pcg32 rng(42);
  tsdata::DiagnosisRegions regions;
  regions.abnormal.Add(100, 150);
  for (int t = 0; t < 200; ++t) {
    bool ab = t >= 100 && t < 150;
    // Normal: ~1. Abnormal: mostly 1e5, but the first ramp second is ~1
    // (shares the normal partition).
    double v = ab ? (t == 100 ? 1.0 : 1e5 + rng.NextGaussian(0.0, 100.0))
                  : 1.0 + 0.1 * rng.NextDouble();
    ASSERT_TRUE(d.AppendRow(t, {v}).ok());
  }
  tsdata::LabeledRows rows = SplitRows(d, regions);
  CausalModel model{"m", {Gt("x", 1000.0)}, 1};
  EXPECT_GT(ModelConfidence(model, d, rows, PredicateGenOptions{}), 80.0);
  CausalModel inverse{"m", {Lt("x", 500.0)}, 1};
  EXPECT_LT(ModelConfidence(inverse, d, rows, PredicateGenOptions{}), -50.0);
}

TEST(ModelConfidenceTest, OppositeModelScoresNegative) {
  ConfidenceData data = MakeConfidenceData(100.0, 4);
  CausalModel model{"inverse", {Lt("x", 50.0)}, 1};
  double conf =
      ModelConfidence(model, data.dataset, data.rows, PredicateGenOptions{});
  EXPECT_LT(conf, -50.0);
}

TEST(ModelConfidenceTest, IrrelevantAttributeContributesZero) {
  ConfidenceData data = MakeConfidenceData(100.0, 5);
  // One perfect predicate plus one on a missing attribute: the average
  // halves.
  CausalModel model{"m", {Gt("x", 50.0), Gt("missing", 1.0)}, 1};
  double both =
      ModelConfidence(model, data.dataset, data.rows, PredicateGenOptions{});
  CausalModel alone{"m", {Gt("x", 50.0)}, 1};
  double single =
      ModelConfidence(alone, data.dataset, data.rows, PredicateGenOptions{});
  EXPECT_NEAR(both, single / 2.0, 5.0);
}

TEST(ModelConfidenceTest, EmptyModelIsZero) {
  ConfidenceData data = MakeConfidenceData(100.0, 6);
  CausalModel model{"m", {}, 1};
  EXPECT_DOUBLE_EQ(
      ModelConfidence(model, data.dataset, data.rows, PredicateGenOptions{}),
      0.0);
}

TEST(ModelConfidenceTest, ThresholdsTransferAcrossLevels) {
  // A model learned at abnormal level 100 (boundary ~90) still fits data
  // whose anomaly sits at 140: the predicate keeps covering the abnormal
  // partitions, at some dilution from gap-filled Normals.
  ConfidenceData data = MakeConfidenceData(140.0, 7);
  CausalModel model{"spike", {Gt("x", 90.0)}, 1};
  EXPECT_GT(
      ModelConfidence(model, data.dataset, data.rows, PredicateGenOptions{}),
      50.0);
}

}  // namespace
}  // namespace dbsherlock::core
