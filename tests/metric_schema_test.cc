#include "simulator/metric_schema.h"

#include <gtest/gtest.h>

#include <set>

namespace dbsherlock::simulator {
namespace {

TEST(MetricSchemaTest, NamesUniqueAndNonEmpty) {
  const auto& names = NumericMetricNames();
  EXPECT_GT(names.size(), 40u);
  std::set<std::string> uniq(names.begin(), names.end());
  EXPECT_EQ(uniq.size(), names.size());
}

TEST(MetricSchemaTest, SchemaHasNumericsPlusTwoCategoricals) {
  tsdata::Schema schema = MetricSchema();
  EXPECT_EQ(schema.num_attributes(), NumNumericMetrics() + 2);
  EXPECT_EQ(schema.attribute(schema.num_attributes() - 2).name,
            "dominant_statement");
  EXPECT_EQ(schema.attribute(schema.num_attributes() - 2).kind,
            tsdata::AttributeKind::kCategorical);
  EXPECT_EQ(schema.attribute(schema.num_attributes() - 1).name,
            "server_profile");
}

TEST(MetricSchemaTest, DomainKnowledgeAttributesPresent) {
  // The four MySQL/Linux rules of Section 5 must resolve against the
  // emitted schema.
  tsdata::Schema schema = MetricSchema();
  for (const char* name :
       {"dbms_cpu_usage", "os_cpu_usage", "os_allocated_pages",
        "os_free_pages", "os_used_swap_kb", "os_free_swap_kb",
        "os_cpu_idle"}) {
    EXPECT_TRUE(schema.Contains(name)) << name;
  }
}

TEST(MetricSchemaTest, CellsMatchSchemaAndValues) {
  Metrics m;
  m.avg_latency_ms = 12.5;
  m.throughput_tps = 900.0;
  m.dominant_statement = "mixed";
  std::vector<tsdata::Cell> cells = MetricsToCells(m);
  ASSERT_EQ(cells.size(), NumNumericMetrics() + 2);
  EXPECT_DOUBLE_EQ(std::get<double>(cells[0]), 12.5);  // first field
  EXPECT_EQ(std::get<std::string>(cells[cells.size() - 2]), "mixed");
}

TEST(MetricSchemaTest, NumericValuesOrderMatchesNames) {
  Metrics m;
  m.avg_latency_ms = 1.0;
  m.log_pending_kb = 99.0;  // last declared metric
  std::vector<double> values = NumericMetricValues(m);
  ASSERT_EQ(values.size(), NumNumericMetrics());
  EXPECT_DOUBLE_EQ(values.front(), 1.0);
  EXPECT_DOUBLE_EQ(values.back(), 99.0);
  EXPECT_EQ(NumericMetricNames().front(), "avg_latency_ms");
  EXPECT_EQ(NumericMetricNames().back(), "log_pending_kb");
}

TEST(MetricSchemaTest, CellsAppendToDataset) {
  tsdata::Dataset d(MetricSchema());
  Metrics m;
  EXPECT_TRUE(d.AppendRow(0.0, MetricsToCells(m)).ok());
  EXPECT_EQ(d.num_rows(), 1u);
}

}  // namespace
}  // namespace dbsherlock::simulator
