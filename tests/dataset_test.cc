#include "tsdata/dataset.h"

#include <gtest/gtest.h>

namespace dbsherlock::tsdata {
namespace {

Schema TwoColumnSchema() {
  return Schema({{"latency", AttributeKind::kNumeric},
                 {"mode", AttributeKind::kCategorical}});
}

TEST(DatasetTest, AppendAndRead) {
  Dataset d(TwoColumnSchema());
  ASSERT_TRUE(d.AppendRow(0.0, {1.5, std::string("fast")}).ok());
  ASSERT_TRUE(d.AppendRow(1.0, {2.5, std::string("slow")}).ok());
  ASSERT_TRUE(d.AppendRow(2.0, {3.5, std::string("fast")}).ok());

  EXPECT_EQ(d.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(d.timestamp(1), 1.0);
  EXPECT_DOUBLE_EQ(d.column(0).numeric(2), 3.5);
  const Column& mode = d.column(1);
  EXPECT_EQ(mode.num_categories(), 2u);
  EXPECT_EQ(mode.CategoryName(mode.code(0)), "fast");
  EXPECT_EQ(mode.code(0), mode.code(2));
  EXPECT_NE(mode.code(0), mode.code(1));
}

TEST(DatasetTest, RejectsArityMismatch) {
  Dataset d(TwoColumnSchema());
  EXPECT_FALSE(d.AppendRow(0.0, {1.5}).ok());
  EXPECT_EQ(d.num_rows(), 0u);
}

TEST(DatasetTest, RejectsKindMismatch) {
  Dataset d(TwoColumnSchema());
  EXPECT_FALSE(d.AppendRow(0.0, {std::string("x"), std::string("y")}).ok());
  EXPECT_FALSE(d.AppendRow(0.0, {1.0, 2.0}).ok());
  EXPECT_EQ(d.num_rows(), 0u);
}

TEST(DatasetTest, RejectsDecreasingTimestamps) {
  Dataset d(TwoColumnSchema());
  ASSERT_TRUE(d.AppendRow(5.0, {1.0, std::string("a")}).ok());
  EXPECT_FALSE(d.AppendRow(4.0, {1.0, std::string("a")}).ok());
  // Equal timestamps are allowed (non-decreasing).
  EXPECT_TRUE(d.AppendRow(5.0, {1.0, std::string("a")}).ok());
}

TEST(DatasetTest, ColumnByName) {
  Dataset d(TwoColumnSchema());
  ASSERT_TRUE(d.AppendRow(0.0, {9.0, std::string("x")}).ok());
  auto col = d.ColumnByName("latency");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->numeric(0), 9.0);
  EXPECT_FALSE(d.ColumnByName("nope").ok());
}

TEST(DatasetTest, RowsInTimeRange) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(d.AppendRow(t, {static_cast<double>(t)}).ok());
  }
  std::vector<size_t> rows = d.RowsInTimeRange(3.0, 6.0);
  EXPECT_EQ(rows, (std::vector<size_t>{3, 4, 5}));
  EXPECT_TRUE(d.RowsInTimeRange(100.0, 200.0).empty());
}

TEST(DatasetTest, SliceCopiesRowsAndDictionaries) {
  Dataset d(TwoColumnSchema());
  ASSERT_TRUE(d.AppendRow(0.0, {1.0, std::string("a")}).ok());
  ASSERT_TRUE(d.AppendRow(1.0, {2.0, std::string("b")}).ok());
  ASSERT_TRUE(d.AppendRow(2.0, {3.0, std::string("a")}).ok());

  Dataset s = d.Slice(1, 3);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.timestamp(0), 1.0);
  EXPECT_DOUBLE_EQ(s.column(0).numeric(1), 3.0);
  const Column& mode = s.column(1);
  EXPECT_EQ(mode.CategoryName(mode.code(0)), "b");
  EXPECT_EQ(mode.CategoryName(mode.code(1)), "a");
}

TEST(DatasetTest, SliceClampsEnd) {
  Dataset d(Schema({{"v", AttributeKind::kNumeric}}));
  ASSERT_TRUE(d.AppendRow(0.0, {1.0}).ok());
  Dataset s = d.Slice(0, 100);
  EXPECT_EQ(s.num_rows(), 1u);
}

TEST(ColumnTest, CodeOfUnknownCategory) {
  Column c(AttributeKind::kCategorical);
  c.AppendCategorical("x");
  EXPECT_EQ(c.CodeOf("x"), 0);
  EXPECT_EQ(c.CodeOf("y"), -1);
}

}  // namespace
}  // namespace dbsherlock::tsdata
