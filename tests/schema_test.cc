#include "tsdata/schema.h"

#include <gtest/gtest.h>

namespace dbsherlock::tsdata {
namespace {

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute({"cpu", AttributeKind::kNumeric}).ok());
  ASSERT_TRUE(s.AddAttribute({"mode", AttributeKind::kCategorical}).ok());
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(*s.IndexOf("cpu"), 0u);
  EXPECT_EQ(*s.IndexOf("mode"), 1u);
  EXPECT_EQ(s.attribute(1).kind, AttributeKind::kCategorical);
  EXPECT_TRUE(s.Contains("cpu"));
  EXPECT_FALSE(s.Contains("disk"));
}

TEST(SchemaTest, RejectsDuplicates) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute({"cpu", AttributeKind::kNumeric}).ok());
  common::Status st = s.AddAttribute({"cpu", AttributeKind::kCategorical});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), common::StatusCode::kInvalidArgument);
  EXPECT_EQ(s.num_attributes(), 1u);
}

TEST(SchemaTest, LookupMissingFails) {
  Schema s;
  auto r = s.IndexOf("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kNotFound);
}

TEST(SchemaTest, VectorConstructor) {
  Schema s({{"a", AttributeKind::kNumeric}, {"b", AttributeKind::kNumeric}});
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(*s.IndexOf("b"), 1u);
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", AttributeKind::kNumeric}});
  Schema b({{"x", AttributeKind::kNumeric}});
  Schema c({{"x", AttributeKind::kCategorical}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SchemaTest, KindNames) {
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kNumeric), "numeric");
  EXPECT_STREQ(AttributeKindToString(AttributeKind::kCategorical),
               "categorical");
}

}  // namespace
}  // namespace dbsherlock::tsdata
