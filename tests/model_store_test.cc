// DurableModelStore: WAL + snapshot durability, compaction, and — the
// critical contract — crash recovery. The injected-crash tests simulate
// the process dying mid-WAL-append (a short write) and assert that every
// acknowledged Add survives a reopen and the torn tail is discarded
// exactly once.

#include "service/model_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/faultenv.h"
#include "common/metrics.h"

namespace dbsherlock::service {
namespace {

core::CausalModel MakeModel(const std::string& cause, double low) {
  core::CausalModel model;
  model.cause = cause;
  model.suggested_action = "check " + cause;
  model.predicates = {core::Predicate{
      "cpu", core::PredicateType::kGreaterThan, low, 0.0, {}}};
  return model;
}

/// Per-test store directory (gtest runs each case in its own process).
std::string StoreDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/dbsherlock_store_" +
                    std::to_string(getpid()) + "_" + name;
  std::remove((dir + "/snapshot.json").c_str());
  std::remove((dir + "/wal.log").c_str());
  return dir;
}

std::unique_ptr<DurableModelStore> MustOpen(
    DurableModelStore::Options options) {
  auto store = DurableModelStore::Open(std::move(options));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(*store);
}

TEST(ModelStoreTest, VolatileStoreServesWithoutTouchingDisk) {
  auto store = MustOpen({});  // empty dir = volatile
  ASSERT_TRUE(store->Add(MakeModel("c0", 1.0)).ok());
  ASSERT_TRUE(store->Add(MakeModel("c1", 2.0)).ok());
  EXPECT_EQ(store->num_models(), 2u);
  EXPECT_EQ(store->wal_records(), 0u);
  EXPECT_TRUE(store->Compact().ok());  // documented no-op
  EXPECT_EQ(store->SnapshotRepository().size(), 2u);
}

TEST(ModelStoreTest, RejectsEmptyCause) {
  auto store = MustOpen({});
  EXPECT_EQ(store->Add(MakeModel("", 1.0)).code(),
            common::StatusCode::kInvalidArgument);
  EXPECT_EQ(store->num_models(), 0u);
}

TEST(ModelStoreTest, ReopenReplaysEveryAckedAdd) {
  DurableModelStore::Options options;
  options.dir = StoreDir("roundtrip");
  {
    auto store = MustOpen(options);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store->Add(MakeModel("c" + std::to_string(i), i + 1.0)).ok());
    }
    // Same cause again: merges in memory, still one more WAL record.
    ASSERT_TRUE(store->Add(MakeModel("c0", 0.5)).ok());
    EXPECT_EQ(store->num_models(), 3u);
    EXPECT_EQ(store->wal_records(), 4u);
    EXPECT_EQ(store->next_seq(), 5u);
  }
  auto store = MustOpen(options);
  EXPECT_EQ(store->num_models(), 3u);
  EXPECT_EQ(store->recovery().snapshot_models, 0u);
  EXPECT_EQ(store->recovery().wal_records_applied, 4u);
  EXPECT_EQ(store->recovery().truncated_bytes, 0u);
  EXPECT_EQ(store->next_seq(), 5u);  // seq continues after the replay
  // The merge replayed through the same path: c0 has two sources.
  core::ModelRepository snapshot = store->SnapshotRepository();
  for (const core::CausalModel& model : snapshot.models()) {
    if (model.cause == "c0") {
      EXPECT_EQ(model.num_sources, 2);
    }
  }
}

/// The crash-recovery contract, end to end: acked Adds survive a death
/// mid-append; the torn tail is discarded exactly once.
TEST(ModelStoreTest, CrashMidAppendKeepsEveryAckedModel) {
  common::Counter* truncations = common::MetricsRegistry::Global().GetCounter(
      "model_store.recovery_truncations");
  uint64_t truncations0 = truncations->value();

  DurableModelStore::Options options;
  options.dir = StoreDir("crash");

  {  // Phase 1: three acknowledged Adds.
    auto store = MustOpen(options);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store->Add(MakeModel("c" + std::to_string(i), i + 1.0)).ok());
    }
  }

  {  // Phase 2: die 10 bytes into the fourth record (mid-header).
    DurableModelStore::Options crash = options;
    crash.fail_append_after_bytes = 10;
    auto store = MustOpen(crash);
    EXPECT_EQ(store->recovery().truncated_bytes, 0u);
    EXPECT_EQ(store->Add(MakeModel("c3", 4.0)).code(),
              common::StatusCode::kIoError);
    // The store is dead, not limping: later writes fail fast, the
    // in-memory repository was never touched by the failed Add.
    EXPECT_EQ(store->Add(MakeModel("c4", 5.0)).code(),
              common::StatusCode::kFailedPrecondition);
    EXPECT_EQ(store->num_models(), 3u);
  }

  {  // Phase 3: recovery finds the acked records, truncates the tear.
    auto store = MustOpen(options);
    EXPECT_EQ(store->num_models(), 3u);
    EXPECT_EQ(store->recovery().wal_records_applied, 3u);
    EXPECT_EQ(store->recovery().truncated_bytes, 10u);
    EXPECT_EQ(truncations->value(), truncations0 + 1);
    // The store works again: the interrupted model can be re-taught.
    ASSERT_TRUE(store->Add(MakeModel("c3", 4.0)).ok());
    EXPECT_EQ(store->num_models(), 4u);
  }

  {  // Phase 4: the tail was discarded exactly once; reopen is clean.
    auto store = MustOpen(options);
    EXPECT_EQ(store->num_models(), 4u);
    EXPECT_EQ(store->recovery().truncated_bytes, 0u);
    EXPECT_EQ(truncations->value(), truncations0 + 1);
  }
}

TEST(ModelStoreTest, CrashMidPayloadIsAlsoTornCleanly) {
  DurableModelStore::Options options;
  options.dir = StoreDir("crash_payload");
  {
    auto store = MustOpen(options);
    ASSERT_TRUE(store->Add(MakeModel("c0", 1.0)).ok());
  }
  {
    // 24 bytes = the full 16-byte header plus 8 payload bytes.
    DurableModelStore::Options crash = options;
    crash.fail_append_after_bytes = 24;
    auto store = MustOpen(crash);
    EXPECT_EQ(store->Add(MakeModel("c1", 2.0)).code(),
              common::StatusCode::kIoError);
  }
  auto store = MustOpen(options);
  EXPECT_EQ(store->num_models(), 1u);
  EXPECT_EQ(store->recovery().wal_records_applied, 1u);
  EXPECT_EQ(store->recovery().truncated_bytes, 24u);
}

TEST(ModelStoreTest, BitFlipInTailIsCaughtByChecksum) {
  DurableModelStore::Options options;
  options.dir = StoreDir("bitflip");
  {
    auto store = MustOpen(options);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          store->Add(MakeModel("c" + std::to_string(i), i + 1.0)).ok());
    }
  }
  // Flip one payload byte near the end of the last record.
  std::string wal = options.dir + "/wal.log";
  FILE* f = std::fopen(wal.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, -3, SEEK_END), 0);
  std::fputc(byte ^ 0x40, f);
  std::fclose(f);

  auto store = MustOpen(options);
  EXPECT_EQ(store->num_models(), 2u);  // the corrupt record is dropped
  EXPECT_EQ(store->recovery().wal_records_applied, 2u);
  EXPECT_GT(store->recovery().truncated_bytes, 0u);
}

TEST(ModelStoreTest, CompactionSnapshotsAndResetsTheWal) {
  DurableModelStore::Options options;
  options.dir = StoreDir("compact");
  options.compact_after_records = 4;
  {
    auto store = MustOpen(options);
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(
          store->Add(MakeModel("c" + std::to_string(i), i + 1.0)).ok());
    }
    EXPECT_EQ(store->compactions(), 1u);
    EXPECT_EQ(store->wal_records(), 0u);  // folded into snapshot.json
    ASSERT_TRUE(store->Add(MakeModel("extra", 9.0)).ok());
    EXPECT_EQ(store->wal_records(), 1u);
  }
  auto store = MustOpen(options);
  EXPECT_EQ(store->recovery().snapshot_models, 4u);
  EXPECT_EQ(store->recovery().wal_records_applied, 1u);
  EXPECT_EQ(store->num_models(), 5u);
}

TEST(ModelStoreTest, ExplicitCompactionSurvivesReopen) {
  DurableModelStore::Options options;
  options.dir = StoreDir("compact_explicit");
  {
    auto store = MustOpen(options);
    ASSERT_TRUE(store->Add(MakeModel("c0", 1.0)).ok());
    ASSERT_TRUE(store->Add(MakeModel("c1", 2.0)).ok());
    ASSERT_TRUE(store->Compact().ok());
    EXPECT_EQ(store->wal_records(), 0u);
  }
  auto store = MustOpen(options);
  EXPECT_EQ(store->recovery().snapshot_models, 2u);
  EXPECT_EQ(store->recovery().wal_records_applied, 0u);
  EXPECT_EQ(store->num_models(), 2u);
}

/// Installs a faultenv schedule for one test and clears it on exit, so a
/// failing assertion can't leak injected faults into later tests.
struct ScopedSchedule {
  explicit ScopedSchedule(const std::string& spec) {
    EXPECT_TRUE(common::faultenv::InstallSchedule(spec).ok()) << spec;
  }
  ~ScopedSchedule() { common::faultenv::Clear(); }
};

TEST(ModelStoreTest, InjectedEnospcFailsTheAddWithoutPoisoningTheStore) {
  DurableModelStore::Options options;
  options.dir = StoreDir("fault_enospc");
  auto store = MustOpen(options);
  ASSERT_TRUE(store->Add(MakeModel("before", 1.0)).ok());
  {
    ScopedSchedule schedule("wal.write=enospc@1,limit=1");
    EXPECT_FALSE(store->Add(MakeModel("lost", 2.0)).ok());
    // The failed append was unwound in-line: the store keeps serving.
    EXPECT_FALSE(store->failed());
    ASSERT_TRUE(store->Add(MakeModel("after", 3.0)).ok());
  }
  auto reopened = MustOpen(options);
  EXPECT_EQ(reopened->num_models(), 2u);
  // Nothing torn was left behind for recovery to clean up.
  EXPECT_EQ(reopened->recovery().truncated_bytes, 0u);
  EXPECT_EQ(reopened->SnapshotRepository().Find("lost"), nullptr);
}

TEST(ModelStoreTest, InjectedTornAppendIsTruncatedBeforeTheNextAdd) {
  DurableModelStore::Options options;
  options.dir = StoreDir("fault_torn");
  auto store = MustOpen(options);
  ASSERT_TRUE(store->Add(MakeModel("before", 1.0)).ok());
  {
    // Half the record lands, then EIO: the classic torn tail — but it
    // must be cut away immediately, not left for a reopen to find.
    ScopedSchedule schedule("wal.write=torn@1,limit=1");
    EXPECT_FALSE(store->Add(MakeModel("lost", 2.0)).ok());
    EXPECT_FALSE(store->failed());
    ASSERT_TRUE(store->Add(MakeModel("after", 3.0)).ok());
    EXPECT_EQ(store->num_models(), 2u);
  }
  auto reopened = MustOpen(options);
  EXPECT_EQ(reopened->num_models(), 2u);
  EXPECT_EQ(reopened->recovery().truncated_bytes, 0u);
  EXPECT_EQ(reopened->recovery().wal_records_applied, 2u);
}

TEST(ModelStoreTest, InjectedFsyncFailureDropsTheUnackedRecord) {
  DurableModelStore::Options options;
  options.dir = StoreDir("fault_fsync");
  auto store = MustOpen(options);
  ASSERT_TRUE(store->Add(MakeModel("before", 1.0)).ok());
  {
    // Bytes hit the page cache but fsync fails: the record was never
    // durable, so it must be unwound rather than acked on faith.
    ScopedSchedule schedule("wal.fsync=enospc@1,limit=1");
    EXPECT_FALSE(store->Add(MakeModel("lost", 2.0)).ok());
    EXPECT_FALSE(store->failed());
    ASSERT_TRUE(store->Add(MakeModel("after", 3.0)).ok());
  }
  auto reopened = MustOpen(options);
  EXPECT_EQ(reopened->num_models(), 2u);
  EXPECT_EQ(reopened->SnapshotRepository().Find("lost"), nullptr);
}

TEST(ModelStoreTest, CorruptSnapshotRefusesToOpen) {
  // The snapshot is written atomically (tmp + fsync + rename), so a
  // corrupt one means real damage: recovery must stop, not guess.
  DurableModelStore::Options options;
  options.dir = StoreDir("bad_snapshot");
  { MustOpen(options); }  // creates the directory
  FILE* f = std::fopen((options.dir + "/snapshot.json").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"version\": 1, \"last_seq\":", f);  // truncated JSON
  std::fclose(f);
  auto store = DurableModelStore::Open(options);
  EXPECT_FALSE(store.ok());
}

}  // namespace
}  // namespace dbsherlock::service
