#include "synthetic/sem.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/predicate_generator.h"

namespace dbsherlock::synthetic {
namespace {

TEST(SemTest, GraphIsAcyclicByConstruction) {
  common::Pcg32 rng(1);
  SemInstance inst = GenerateSemInstance({}, &rng);
  // Edges only go from lower to higher index.
  for (size_t i = 0; i < inst.adjacency.size(); ++i) {
    for (size_t j = 0; j <= i; ++j) {
      EXPECT_FALSE(inst.adjacency[i][j]);
    }
  }
}

TEST(SemTest, EffectVariableHasIncomingEdgeAndNoOutgoing) {
  common::Pcg32 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    SemInstance inst = GenerateSemInstance({}, &rng);
    size_t effect = inst.adjacency.size() - 1;
    bool incoming = false;
    for (size_t i = 0; i < effect; ++i) incoming |= inst.adjacency[i][effect];
    EXPECT_TRUE(incoming);
    for (size_t j = 0; j < inst.adjacency.size(); ++j) {
      EXPECT_FALSE(inst.adjacency[effect][j]);
    }
  }
}

TEST(SemTest, RootCausesAreRootsAndReachEffect) {
  common::Pcg32 rng(3);
  SemInstance inst = GenerateSemInstance({}, &rng);
  size_t effect = inst.adjacency.size() - 1;
  ASSERT_FALSE(inst.root_causes.empty());
  for (size_t rc : inst.root_causes) {
    for (size_t i = 0; i < inst.adjacency.size(); ++i) {
      EXPECT_FALSE(inst.adjacency[i][rc]) << "root cause has a parent";
    }
    EXPECT_TRUE(inst.Reachable(rc, effect));
  }
}

TEST(SemTest, DataDimensions) {
  SemOptions options;
  options.num_rows = 300;
  options.abnormal_rows = 30;
  common::Pcg32 rng(4);
  SemInstance inst = GenerateSemInstance(options, &rng);
  EXPECT_EQ(inst.data.num_rows(), 300u);
  EXPECT_EQ(inst.data.num_attributes(), options.num_variables);
  ASSERT_EQ(inst.regions.abnormal.ranges().size(), 1u);
  EXPECT_DOUBLE_EQ(inst.regions.abnormal.ranges()[0].length(), 30.0);
}

TEST(SemTest, RootCauseShiftsInAbnormalBlock) {
  common::Pcg32 rng(5);
  SemInstance inst = GenerateSemInstance({}, &rng);
  size_t rc = inst.root_causes[0];
  tsdata::LabeledRows rows = SplitRows(inst.data, inst.regions);
  double normal_sum = 0.0, abnormal_sum = 0.0;
  auto values = inst.data.column(rc).numeric_values();
  for (size_t row : rows.normal) normal_sum += values[row];
  for (size_t row : rows.abnormal) abnormal_sum += values[row];
  double normal_mean = normal_sum / static_cast<double>(rows.normal.size());
  double abnormal_mean =
      abnormal_sum / static_cast<double>(rows.abnormal.size());
  EXPECT_NEAR(normal_mean, 10.0, 3.0);
  EXPECT_NEAR(abnormal_mean, 100.0, 5.0);
}

TEST(SemTest, ExpectationsMatchReachability) {
  common::Pcg32 rng(6);
  SemInstance inst = GenerateSemInstance({}, &rng);
  for (const RuleExpectation& exp : inst.expectations) {
    // Recover the variable indices from the attribute names.
    size_t cause = 0, effect = 0;
    ASSERT_EQ(std::sscanf(exp.rule.cause_attribute.c_str(), "attr_%zu",
                          &cause),
              1);
    ASSERT_EQ(std::sscanf(exp.rule.effect_attribute.c_str(), "attr_%zu",
                          &effect),
              1);
    EXPECT_EQ(exp.should_prune, inst.Reachable(cause, effect));
  }
}

TEST(SemTest, KnowledgeRulesObeyConditions) {
  common::Pcg32 rng(7);
  SemInstance inst = GenerateSemInstance({}, &rng);
  // All rules were accepted by DomainKnowledge::AddRule, so no self or
  // reversed rules; causes are root-cause attributes.
  for (const core::DomainRule& rule : inst.knowledge.rules()) {
    EXPECT_NE(rule.cause_attribute, rule.effect_attribute);
    bool cause_is_root = false;
    for (size_t rc : inst.root_causes) {
      if (SemAttributeName(rc) == rule.cause_attribute) cause_is_root = true;
    }
    EXPECT_TRUE(cause_is_root);
  }
}

TEST(SemTest, ReachabilityBasics) {
  common::Pcg32 rng(8);
  SemInstance inst = GenerateSemInstance({}, &rng);
  EXPECT_TRUE(inst.Reachable(0, 0));  // reflexive by definition here
}

TEST(SemTest, PredicatesFoundOnRootCauses) {
  common::Pcg32 rng(9);
  SemInstance inst = GenerateSemInstance({}, &rng);
  core::PredicateGenResult result =
      core::GeneratePredicates(inst.data, inst.regions, {});
  // Every root cause shifts by ~9 sigma, so its predicate must be found.
  for (size_t rc : inst.root_causes) {
    EXPECT_NE(result.Find(SemAttributeName(rc)), nullptr)
        << SemAttributeName(rc);
  }
}

TEST(SemTest, DifferentSeedsDifferentGraphs) {
  common::Pcg32 rng1(10), rng2(11);
  SemInstance a = GenerateSemInstance({}, &rng1);
  SemInstance b = GenerateSemInstance({}, &rng2);
  EXPECT_NE(a.adjacency, b.adjacency);
}

}  // namespace
}  // namespace dbsherlock::synthetic
