// In-process tests for the dbsherlockd engine (service/service.h):
// tenancy, schema pinning, bounded-queue backpressure, the background
// diagnosis flow against the durable store, idle-LRU eviction, and
// Stop/Flush semantics. The TCP layer is covered by service_e2e_test.

#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"

namespace dbsherlock::service {
namespace {

using common::StatusCode;

tsdata::Schema TwoNumeric() {
  return tsdata::Schema({{"latency", tsdata::AttributeKind::kNumeric},
                         {"cpu", tsdata::AttributeKind::kNumeric}});
}

std::unique_ptr<DurableModelStore> VolatileStore() {
  auto store = DurableModelStore::Open({});
  EXPECT_TRUE(store.ok());
  return std::move(*store);
}

/// Appends one row, honoring backpressure by retrying until accepted.
void AppendBlocking(Service* service, const std::string& tenant, double ts,
                    std::vector<tsdata::Cell> cells) {
  for (;;) {
    auto outcome = service->Append(tenant, ts, cells);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->accepted) return;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(outcome->retry_after_ms));
  }
}

TEST(ServiceTest, HelloIsIdempotentButSchemaIsPinned) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  Service service(options);

  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  EXPECT_TRUE(service.Hello("t0", TwoNumeric()).ok());  // no-op
  tsdata::Schema other({{"latency", tsdata::AttributeKind::kNumeric}});
  EXPECT_EQ(service.Hello("t0", other).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.tenants().size(), 1u);
  service.Stop();
}

TEST(ServiceTest, AppendValidatesBeforeAcking) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());

  EXPECT_EQ(service.Append("ghost", 0.0, {1.0, 2.0}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(service.Append("t0", 0.0, {1.0}).status().code(),
            StatusCode::kInvalidArgument);  // arity
  EXPECT_EQ(
      service.Append("t0", 0.0, {1.0, std::string("fast")}).status().code(),
      StatusCode::kInvalidArgument);  // kind
  EXPECT_EQ(service
                .Append("t0", std::numeric_limits<double>::quiet_NaN(),
                        {1.0, 2.0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);  // non-finite timestamp
  EXPECT_EQ(service.total_acked(), 0u);
  service.Stop();
}

TEST(ServiceTest, BackpressureShedsButNeverLosesAckedRows) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  options.queue_capacity = 4;
  options.ingest_workers = 1;
  options.diagnosis_workers = 1;
  options.ingest_batch = 2;
  options.retry_after_ms = 1;
  options.process_delay_us = 2000;  // forced slow consumer
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());

  uint64_t acked = 0;
  uint64_t shed = 0;
  for (int i = 0; i < 120; ++i) {
    auto outcome =
        service.Append("t0", static_cast<double>(i), {10.0, 40.0});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    if (outcome->accepted) {
      ++acked;
      EXPECT_EQ(outcome->seq, acked);  // tenant-local ack sequence
    } else {
      ++shed;
      EXPECT_EQ(outcome->retry_after_ms, options.retry_after_ms);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_GT(shed, 0u) << "slow consumer never filled a 4-row queue?";
  EXPECT_GT(acked, 0u);
  EXPECT_EQ(service.total_acked(), acked);
  EXPECT_EQ(service.total_shed(), shed);

  // Every acked row reaches the monitor: shed rows were refused up front,
  // acked ones are never dropped.
  ASSERT_TRUE(service.Flush("t0").ok());
  common::JsonValue stats = service.StatsJson();
  const common::JsonValue* tenant = stats.Find("tenants")->Find("t0");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->GetNumber("acked").ValueOr(-1),
            static_cast<double>(acked));
  EXPECT_EQ(tenant->GetNumber("processed").ValueOr(-1),
            static_cast<double>(acked));
  EXPECT_EQ(tenant->GetNumber("queue_depth").ValueOr(-1), 0.0);
  service.Stop();
}

TEST(ServiceTest, DuplicateClientSeqIsAckedWithoutReingesting) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());

  auto first = service.Append("t0", 1.0, {1.0, 2.0}, 7u);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->accepted);
  EXPECT_FALSE(first->replayed);

  // The client's ack was lost and it resends the same sequence: the row
  // is acked again but never enqueued twice.
  auto retry = service.Append("t0", 1.0, {1.0, 2.0}, 7u);
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->accepted);
  EXPECT_TRUE(retry->replayed);
  EXPECT_EQ(retry->seq, first->seq);
  EXPECT_EQ(service.total_acked(), 1u);

  // Stale sequences below the high-water dedupe the same way.
  auto stale = service.Append("t0", 0.5, {1.0, 2.0}, 3u);
  ASSERT_TRUE(stale.ok());
  EXPECT_TRUE(stale->replayed);

  // A fresh sequence is new work, even with these rows still queued.
  auto next = service.Append("t0", 2.0, {1.0, 2.0}, 8u);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->accepted);
  EXPECT_FALSE(next->replayed);
  EXPECT_EQ(service.total_acked(), 2u);

  EXPECT_EQ(service.StatsJson().GetNumber("replayed").ValueOr(0), 2.0);

  // Sequence-less appends never dedupe: the caller opted out.
  auto blind = service.Append("t0", 3.0, {1.0, 2.0});
  ASSERT_TRUE(blind.ok());
  EXPECT_FALSE(blind->replayed);
  service.Stop();
}

TEST(ServiceTest, DiagnosesAnomalyAgainstTaughtModel) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());

  core::CausalModel model;
  model.cause = "CPU hog";
  model.suggested_action = "throttle the batch job";
  model.predicates = {
      core::Predicate{
          "cpu", core::PredicateType::kGreaterThan, 70.0, 0.0, {}},
      core::Predicate{
          "latency", core::PredicateType::kGreaterThan, 50.0, 0.0, {}}};
  ASSERT_TRUE(service.Teach(model).ok());
  EXPECT_EQ(store->num_models(), 1u);

  // 300 normal seconds, 40 abnormal, 110 normal again (same shape as the
  // streaming-monitor tests: the anomaly stays under the detector's 20%
  // small-cluster cutoff).
  common::Pcg32 rng(42);
  for (int t = 0; t < 450; ++t) {
    bool ab = t >= 300 && t < 340;
    double latency = (ab ? 90.0 : 10.0) + rng.NextGaussian(0.0, 1.5);
    double cpu = (ab ? 95.0 : 40.0) + rng.NextGaussian(0.0, 2.0);
    AppendBlocking(&service, "t0", t, {latency, cpu});
  }
  ASSERT_TRUE(service.Flush("t0").ok());
  EXPECT_GE(service.total_diagnoses(), 1u);

  auto diagnoses = service.DiagnosesJson("t0");
  ASSERT_TRUE(diagnoses.ok()) << diagnoses.status().ToString();
  const auto& list = diagnoses->as_array();
  ASSERT_GE(list.size(), 1u);
  const common::JsonValue& first = list.front();
  auto causes = first.GetArray("causes");
  ASSERT_TRUE(causes.ok());
  ASSERT_FALSE((*causes)->as_array().empty());
  EXPECT_EQ((*causes)->as_array().front().GetString("cause").ValueOr(""),
            "CPU hog");
  const common::JsonValue* region = first.Find("region");
  ASSERT_NE(region, nullptr);
  EXPECT_GE(region->GetNumber("start").ValueOr(0.0), 290.0);
  EXPECT_LE(region->GetNumber("start").ValueOr(0.0), 345.0);
  EXPECT_GE(first.GetNumber("latency_us").ValueOr(-1.0), 0.0);
  service.Stop();
}

TEST(ServiceTest, IdleTenantsAreEvictedLeastRecentlyUsed) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  options.tenants.max_tenants = 2;
  Service service(options);

  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  ASSERT_TRUE(service.Hello("t1", TwoNumeric()).ok());
  ASSERT_TRUE(service.Hello("t2", TwoNumeric()).ok());  // evicts idle t0
  EXPECT_EQ(service.tenants().size(), 2u);
  EXPECT_EQ(service.tenants().evictions(), 1u);
  EXPECT_EQ(service.Append("t0", 0.0, {1.0, 2.0}).status().code(),
            StatusCode::kNotFound);
  // The survivors still ingest, and an evicted tenant can re-HELLO.
  auto outcome = service.Append("t2", 0.0, {1.0, 2.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->accepted);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  service.Stop();
}

TEST(ServiceTest, StopDrainsAndRefusesLateWork) {
  auto store = VolatileStore();
  Service::Options options;
  options.store = store.get();
  Service service(options);
  ASSERT_TRUE(service.Hello("t0", TwoNumeric()).ok());
  for (int t = 0; t < 10; ++t) {
    AppendBlocking(&service, "t0", t, {10.0, 40.0});
  }
  service.Stop();
  service.Stop();  // idempotent

  EXPECT_EQ(service.Append("t0", 11.0, {10.0, 40.0}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Hello("t9", TwoNumeric()).code(),
            StatusCode::kFailedPrecondition);
  // Everything acked before Stop was drained through the monitor.
  common::JsonValue stats = service.StatsJson();
  const common::JsonValue* tenant = stats.Find("tenants")->Find("t0");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->GetNumber("processed").ValueOr(-1), 10.0);
}

TEST(ServiceTest, TeachWithoutStoreFailsCleanly) {
  Service::Options options;  // store intentionally absent
  Service service(options);
  core::CausalModel model;
  model.cause = "x";
  EXPECT_EQ(service.Teach(model).code(), StatusCode::kFailedPrecondition);
  service.Stop();
}

}  // namespace
}  // namespace dbsherlock::service
