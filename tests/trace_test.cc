#include "common/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/json.h"
#include "common/parallel.h"

namespace dbsherlock::common {
namespace {

/// Global allocation counter for the disabled-mode zero-allocation test.
/// Counts every operator-new in the binary; the test compares deltas
/// around a tight region, so unrelated allocations elsewhere don't matter.
std::atomic<uint64_t> g_allocations{0};

}  // namespace
}  // namespace dbsherlock::common

void* operator new(std::size_t size) {
  dbsherlock::common::g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace dbsherlock::common {
namespace {

/// Every test starts from a disabled, empty tracer and leaves it that way
/// (the tracer is process-global; leaking an enabled state would slow and
/// pollute sibling tests).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    TRACE_SPAN("should.not.appear");
    TRACE_SPAN("nor.this");
  }
  EXPECT_EQ(Tracer::Global().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TraceTest, DisabledSpanAllocatesNothing) {
  // The whole point of leaving TRACE_SPAN compiled into the hot path: a
  // span taken while tracing is off must not allocate (and, per
  // bench_trace_overhead, costs ~an atomic load).
  uint64_t before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    TRACE_SPAN("disabled.span");
  }
  uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST_F(TraceTest, RecordsNestedSpansWithDepths) {
  Tracer::Global().Enable(128);
  {
    TRACE_SPAN("outer");
    {
      TRACE_SPAN("inner");
    }
  }
  Tracer::Global().Disable();
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at destruction: inner finishes first.
  EXPECT_STREQ(events[0].label, "inner");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_STREQ(events[1].label, "outer");
  EXPECT_EQ(events[1].depth, 0u);
  // The inner span nests inside the outer one in time.
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].duration_us, events[1].duration_us);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  Tracer::Global().Enable(4);
  for (int i = 0; i < 10; ++i) {
    TRACE_SPAN("span");
  }
  EXPECT_EQ(Tracer::Global().events_recorded(), 10u);
  EXPECT_EQ(Tracer::Global().events_dropped(), 6u);
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first ordering survives the wrap.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_us, events[i - 1].start_us);
  }
}

TEST_F(TraceTest, ChromeExportIsValidJsonWithAllFields) {
  Tracer::Global().Enable(64);
  {
    TRACE_SPAN("pipeline.stage_a");
    TRACE_SPAN("pipeline.stage_b");
  }
  Tracer::Global().Disable();
  auto parsed = ParseJson(Tracer::Global().ExportChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);
  for (const JsonValue& e : events->as_array()) {
    EXPECT_TRUE(e.Find("name")->is_string());
    EXPECT_EQ(e.Find("ph")->as_string(), "X");
    EXPECT_TRUE(e.Find("ts")->is_number());
    EXPECT_TRUE(e.Find("dur")->is_number());
    EXPECT_TRUE(e.Find("tid")->is_number());
    EXPECT_GE(e.Find("dur")->as_number(), 0.0);
  }
}

TEST_F(TraceTest, SummaryAggregatesByLabel) {
  Tracer::Global().Enable(64);
  for (int i = 0; i < 3; ++i) {
    TRACE_SPAN("repeated.stage");
  }
  {
    TRACE_SPAN("single.stage");
  }
  Tracer::Global().Disable();
  JsonValue summary = Tracer::Global().SummaryJson();
  const JsonValue* repeated = summary.Find("repeated.stage");
  ASSERT_NE(repeated, nullptr);
  EXPECT_DOUBLE_EQ(repeated->Find("count")->as_number(), 3.0);
  EXPECT_GE(repeated->Find("total_us")->as_number(),
            repeated->Find("max_us")->as_number());
  std::string text = Tracer::Global().SummaryText();
  EXPECT_NE(text.find("repeated.stage"), std::string::npos);
  EXPECT_NE(text.find("single.stage"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSpansFromParallelForAllLand) {
  Tracer::Global().Enable(4096);
  constexpr size_t kSpans = 512;
  ParallelFor(
      kSpans,
      [](size_t) {
        TRACE_SPAN("parallel.worker_span");
      },
      4);
  Tracer::Global().Disable();
  // ParallelFor itself records a "parallel.for" span, so count by label.
  size_t worker_spans = 0;
  for (const TraceEvent& e : Tracer::Global().Snapshot()) {
    if (std::string(e.label) == "parallel.worker_span") ++worker_spans;
  }
  EXPECT_EQ(worker_spans, kSpans);
}

TEST_F(TraceTest, ReenableClearsPreviousRun) {
  Tracer::Global().Enable(16);
  {
    TRACE_SPAN("first.run");
  }
  Tracer::Global().Enable(16);
  EXPECT_EQ(Tracer::Global().events_recorded(), 0u);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

}  // namespace
}  // namespace dbsherlock::common
