// Bit-identical parity tests for the columnar SIMD kernels (DESIGN.md §12):
// every kernel is run under forced scalar / SSE2 / AVX2 and the results are
// compared bitwise (not approximately) — the lane discipline makes the
// stronger contract hold. Unsupported ISAs on the build host are skipped
// individually, so this test is meaningful on any machine.

#include "common/simd/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

namespace simd = dbsherlock::common::simd;

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Bitwise equality that treats all NaN payloads as distinct — the parity
/// contract is "same bits", not "same value class".
bool SameBits(double a, double b) {
  uint64_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::vector<simd::Isa> SupportedIsas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  if (simd::IsaSupported(simd::Isa::kSse2)) isas.push_back(simd::Isa::kSse2);
  if (simd::IsaSupported(simd::Isa::kAvx2)) isas.push_back(simd::Isa::kAvx2);
  return isas;
}

/// Test columns: a mix of smooth, hostile (NaN/±Inf/±0.0/denormal), empty,
/// and odd lengths so vector tails and masks are all exercised.
std::vector<std::vector<double>> TestColumns() {
  std::vector<std::vector<double>> cols;
  cols.push_back({});                     // empty
  cols.push_back({3.5});                  // single element
  cols.push_back({1.0, 2.0, 3.0});        // shorter than one vector
  cols.push_back({kNan, kNan, kNan});     // all masked
  cols.push_back({-0.0, 0.0, -0.0, 0.0, -0.0});  // signed-zero ties
  std::mt19937_64 rng(0xD85Eu);
  std::uniform_real_distribution<double> dist(-1e6, 1e6);
  for (size_t n : {4u, 7u, 8u, 64u, 513u, 1000u}) {
    std::vector<double> col(n);
    for (auto& v : col) v = dist(rng);
    // Sprinkle hostile values at deterministic positions.
    for (size_t i = 0; i < n; i += 13) col[i] = kNan;
    for (size_t i = 5; i < n; i += 29) col[i] = kInf;
    for (size_t i = 11; i < n; i += 31) col[i] = -kInf;
    for (size_t i = 3; i < n; i += 17) col[i] = -0.0;
    for (size_t i = 7; i < n; i += 23) col[i] = 5e-324;  // denormal
    cols.push_back(std::move(col));
  }
  return cols;
}

class SimdParityTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::SetActiveIsa(simd::BestSupportedIsa());
  }
};

TEST_F(SimdParityTest, ProfileSpanBitIdenticalAcrossIsas) {
  for (const auto& col : TestColumns()) {
    simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
    simd::SpanProfile ref = simd::ProfileSpan(col.data(), col.size());
    for (simd::Isa isa : SupportedIsas()) {
      simd::ScopedIsaOverride forced(isa);
      ASSERT_TRUE(forced.ok());
      simd::SpanProfile got = simd::ProfileSpan(col.data(), col.size());
      EXPECT_TRUE(SameBits(got.min, ref.min))
          << simd::IsaName(isa) << " min, n=" << col.size();
      EXPECT_TRUE(SameBits(got.max, ref.max))
          << simd::IsaName(isa) << " max, n=" << col.size();
      EXPECT_TRUE(SameBits(got.sum, ref.sum))
          << simd::IsaName(isa) << " sum, n=" << col.size();
      EXPECT_EQ(got.finite_count, ref.finite_count) << simd::IsaName(isa);
      EXPECT_EQ(got.non_finite_count, ref.non_finite_count)
          << simd::IsaName(isa);
    }
  }
}

TEST_F(SimdParityTest, ProfileSpanMatchesNaiveOnFiniteData) {
  std::vector<double> col = {4.0, -2.0, 9.0, 0.5, 7.25, -3.0, 1.0};
  simd::SpanProfile p = simd::ProfileSpan(col.data(), col.size());
  EXPECT_EQ(p.min, -3.0);
  EXPECT_EQ(p.max, 9.0);
  EXPECT_EQ(p.finite_count, 7u);
  EXPECT_EQ(p.non_finite_count, 0u);
  EXPECT_DOUBLE_EQ(p.sum, 16.75);
}

TEST_F(SimdParityTest, ProfileSpanAllMaskedLeavesDefaults) {
  std::vector<double> col = {kNan, kInf, -kInf, kNan, kNan};
  simd::SpanProfile p = simd::ProfileSpan(col.data(), col.size());
  EXPECT_EQ(p.finite_count, 0u);
  EXPECT_EQ(p.non_finite_count, 5u);
  EXPECT_EQ(p.min, 0.0);
  EXPECT_EQ(p.max, 0.0);
  EXPECT_EQ(p.sum, 0.0);
}

TEST_F(SimdParityTest, SumKernelsBitIdenticalAcrossIsas) {
  for (const auto& col : TestColumns()) {
    // Skip hostile columns for the unmasked sums: NaN/Inf propagate by
    // design, and NaN payload bits are not part of the parity contract.
    bool finite = true;
    for (double v : col) finite = finite && std::isfinite(v);
    if (!finite) continue;
    simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
    double ref_sum = simd::SumSpan(col.data(), col.size());
    double ref_ssd = simd::SumSquaredDiff(col.data(), col.size(), 41.5);
    for (simd::Isa isa : SupportedIsas()) {
      simd::ScopedIsaOverride forced(isa);
      ASSERT_TRUE(forced.ok());
      EXPECT_TRUE(SameBits(simd::SumSpan(col.data(), col.size()), ref_sum))
          << simd::IsaName(isa) << " n=" << col.size();
      EXPECT_TRUE(SameBits(
          simd::SumSquaredDiff(col.data(), col.size(), 41.5), ref_ssd))
          << simd::IsaName(isa) << " n=" << col.size();
    }
  }
}

TEST_F(SimdParityTest, CountMatchesAcrossIsasAndNaN) {
  using simd::CmpKind;
  for (const auto& col : TestColumns()) {
    for (CmpKind kind :
         {CmpKind::kLess, CmpKind::kGreaterEq, CmpKind::kInRange}) {
      simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
      uint64_t ref =
          simd::CountMatches(col.data(), col.size(), kind, -100.0, 250.5);
      // Independent oracle.
      uint64_t naive = 0;
      for (double v : col) {
        switch (kind) {
          case CmpKind::kLess:
            naive += v < 250.5 ? 1 : 0;
            break;
          case CmpKind::kGreaterEq:
            naive += v >= -100.0 ? 1 : 0;
            break;
          case CmpKind::kInRange:
            naive += (v >= -100.0 && v < 250.5) ? 1 : 0;
            break;
        }
      }
      EXPECT_EQ(ref, naive);
      for (simd::Isa isa : SupportedIsas()) {
        simd::ScopedIsaOverride forced(isa);
        ASSERT_TRUE(forced.ok());
        EXPECT_EQ(simd::CountMatches(col.data(), col.size(), kind, -100.0,
                                     250.5),
                  ref)
            << simd::IsaName(isa) << " n=" << col.size();
      }
    }
  }
}

TEST_F(SimdParityTest, NaNMatchesNoComparison) {
  std::vector<double> col = {kNan};
  using simd::CmpKind;
  for (CmpKind kind :
       {CmpKind::kLess, CmpKind::kGreaterEq, CmpKind::kInRange}) {
    for (simd::Isa isa : SupportedIsas()) {
      simd::ScopedIsaOverride forced(isa);
      EXPECT_EQ(simd::CountMatches(col.data(), col.size(), kind, -kInf, kInf),
                0u)
          << simd::IsaName(isa);
    }
  }
}

TEST_F(SimdParityTest, PartitionIndicesAcrossIsas) {
  for (const auto& col : TestColumns()) {
    std::vector<uint32_t> ref(col.size() + 1, 0xABABABABu);
    {
      simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
      simd::PartitionIndices(col.data(), col.size(), -5000.0, 37.25, 250,
                             ref.data());
    }
    EXPECT_EQ(ref.back(), 0xABABABABu);  // no overwrite past n
    for (size_t i = 0; i < col.size(); ++i) {
      if (!std::isfinite(col[i])) {
        EXPECT_EQ(ref[i], simd::kNoPartition);
      } else {
        EXPECT_LT(ref[i], 250u);
      }
    }
    for (simd::Isa isa : SupportedIsas()) {
      std::vector<uint32_t> got(col.size() + 1, 0xABABABABu);
      simd::ScopedIsaOverride forced(isa);
      ASSERT_TRUE(forced.ok());
      simd::PartitionIndices(col.data(), col.size(), -5000.0, 37.25, 250,
                             got.data());
      EXPECT_EQ(got, ref) << simd::IsaName(isa) << " n=" << col.size();
    }
  }
}

TEST_F(SimdParityTest, PartitionIndicesBoundaryCases) {
  const double min = 10.0, width = 2.0;
  const uint32_t parts = 4;
  std::vector<double> col = {9.0, 10.0, 10.5, 12.0, 17.9, 18.0, 1e300, kNan};
  std::vector<uint32_t> out(col.size());
  for (simd::Isa isa : SupportedIsas()) {
    simd::ScopedIsaOverride forced(isa);
    simd::PartitionIndices(col.data(), col.size(), min, width, parts,
                           out.data());
    EXPECT_EQ(out[0], 0u) << simd::IsaName(isa);  // below min
    EXPECT_EQ(out[1], 0u) << simd::IsaName(isa);  // at min
    EXPECT_EQ(out[2], 0u) << simd::IsaName(isa);
    EXPECT_EQ(out[3], 1u) << simd::IsaName(isa);
    EXPECT_EQ(out[4], 3u) << simd::IsaName(isa);
    EXPECT_EQ(out[5], 3u) << simd::IsaName(isa);  // clamped to last
    EXPECT_EQ(out[6], 3u) << simd::IsaName(isa);  // huge, clamped
    EXPECT_EQ(out[7], simd::kNoPartition) << simd::IsaName(isa);
  }
}

TEST_F(SimdParityTest, NormalizeSpanAcrossIsas) {
  for (const auto& col : TestColumns()) {
    std::vector<double> ref(col.size(), -7.0);
    {
      simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
      simd::NormalizeSpan(col.data(), col.size(), -1000.0, 2000.0, 0.25,
                          ref.data());
    }
    for (simd::Isa isa : SupportedIsas()) {
      std::vector<double> got(col.size(), -7.0);
      simd::ScopedIsaOverride forced(isa);
      ASSERT_TRUE(forced.ok());
      simd::NormalizeSpan(col.data(), col.size(), -1000.0, 2000.0, 0.25,
                          got.data());
      for (size_t i = 0; i < col.size(); ++i) {
        EXPECT_TRUE(SameBits(got[i], ref[i]))
            << simd::IsaName(isa) << " i=" << i << " n=" << col.size();
      }
    }
  }
}

TEST_F(SimdParityTest, NormalizeSpanDegenerateRange) {
  std::vector<double> col = {1.0, 5.0, kNan, -kInf, 5.0};
  std::vector<double> out(col.size(), -7.0);
  for (simd::Isa isa : SupportedIsas()) {
    simd::ScopedIsaOverride forced(isa);
    simd::NormalizeSpan(col.data(), col.size(), 5.0, 5.0, 0.5, out.data());
    EXPECT_EQ(out[0], 0.0) << simd::IsaName(isa);
    EXPECT_EQ(out[1], 0.0) << simd::IsaName(isa);
    EXPECT_EQ(out[2], 0.5) << simd::IsaName(isa);  // fill for NaN
    EXPECT_EQ(out[3], 0.5) << simd::IsaName(isa);  // fill for -inf
    EXPECT_EQ(out[4], 0.0) << simd::IsaName(isa);
  }
}

TEST_F(SimdParityTest, SquaredDistancesAcrossIsas) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> dist(-50.0, 50.0);
  for (size_t n : {1u, 3u, 4u, 9u, 64u, 257u}) {
    for (size_t dims : {0u, 1u, 2u, 5u}) {
      std::vector<std::vector<double>> cols(dims, std::vector<double>(n));
      std::vector<const double*> ptrs;
      for (auto& c : cols) {
        for (auto& v : c) v = dist(rng);
        ptrs.push_back(c.data());
      }
      const size_t p = n / 2;
      std::vector<double> ref(n, -1.0);
      {
        simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
        simd::SquaredDistancesToAll(ptrs.data(), dims, n, p, ref.data());
      }
      EXPECT_EQ(ref[p], 0.0);
      for (simd::Isa isa : SupportedIsas()) {
        std::vector<double> got(n, -1.0);
        simd::ScopedIsaOverride forced(isa);
        ASSERT_TRUE(forced.ok());
        simd::SquaredDistancesToAll(ptrs.data(), dims, n, p, got.data());
        for (size_t q = 0; q < n; ++q) {
          EXPECT_TRUE(SameBits(got[q], ref[q]))
              << simd::IsaName(isa) << " q=" << q << " n=" << n
              << " dims=" << dims;
        }
      }
    }
  }
}

TEST_F(SimdParityTest, UnalignedTailsStayBitIdentical) {
  // Offset views into one buffer: every alignment phase of the vector loop.
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> dist(-10.0, 10.0);
  std::vector<double> buf(256);
  for (auto& v : buf) v = dist(rng);
  buf[37] = kNan;
  for (size_t offset = 0; offset < 8; ++offset) {
    for (size_t n : {0u, 1u, 5u, 31u, 200u}) {
      const double* x = buf.data() + offset;
      simd::ScopedIsaOverride scalar(simd::Isa::kScalar);
      simd::SpanProfile ref = simd::ProfileSpan(x, n);
      for (simd::Isa isa : SupportedIsas()) {
        simd::ScopedIsaOverride forced(isa);
        simd::SpanProfile got = simd::ProfileSpan(x, n);
        EXPECT_TRUE(SameBits(got.sum, ref.sum))
            << simd::IsaName(isa) << " offset=" << offset << " n=" << n;
        EXPECT_TRUE(SameBits(got.min, ref.min));
        EXPECT_TRUE(SameBits(got.max, ref.max));
      }
    }
  }
}

TEST(SimdDispatchTest, IsaNamesRoundTrip) {
  using simd::Isa;
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    auto parsed = simd::ParseIsaName(simd::IsaName(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_EQ(simd::ParseIsaName("AVX2"), Isa::kAvx2);  // case-insensitive
  EXPECT_EQ(simd::ParseIsaName("neon"), std::nullopt);
  EXPECT_EQ(simd::ParseIsaName(""), std::nullopt);
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(simd::IsaSupported(simd::Isa::kScalar));
  EXPECT_TRUE(simd::SetActiveIsa(simd::Isa::kScalar));
  EXPECT_EQ(simd::ActiveIsa(), simd::Isa::kScalar);
  simd::SetActiveIsa(simd::BestSupportedIsa());
}

TEST(SimdDispatchTest, BestSupportedIsaIsSupportedAndOrdered) {
  simd::Isa best = simd::BestSupportedIsa();
  EXPECT_TRUE(simd::IsaSupported(best));
  if (simd::IsaSupported(simd::Isa::kAvx2)) {
    EXPECT_EQ(best, simd::Isa::kAvx2);
  } else if (simd::IsaSupported(simd::Isa::kSse2)) {
    EXPECT_EQ(best, simd::Isa::kSse2);
  }
}

TEST(SimdDispatchTest, UnsupportedOverrideRefusedWithoutChange) {
  simd::Isa before = simd::ActiveIsa();
  // At least one of these is supported everywhere; probe a fake stress by
  // checking the contract on whichever tier is missing, if any.
  for (simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2}) {
    if (simd::IsaSupported(isa)) continue;
    EXPECT_FALSE(simd::SetActiveIsa(isa));
    EXPECT_EQ(simd::ActiveIsa(), before);
    simd::ScopedIsaOverride guard(isa);
    EXPECT_FALSE(guard.ok());
    EXPECT_EQ(simd::ActiveIsa(), before);
  }
}

}  // namespace
