#include "core/explainer.h"

#include <gtest/gtest.h>

#include "simulator/dataset_gen.h"

namespace dbsherlock::core {
namespace {

simulator::GeneratedDataset Generate(simulator::AnomalyKind kind,
                                     uint64_t seed,
                                     double duration = 60.0) {
  simulator::DatasetGenOptions options;
  options.seed = seed;
  return simulator::GenerateAnomalyDataset(options, kind, duration);
}

TEST(ExplainerTest, DiagnoseProducesPredicates) {
  simulator::GeneratedDataset run =
      Generate(simulator::AnomalyKind::kNetworkCongestion, 100);
  Explainer sherlock;
  Explanation ex = sherlock.Diagnose(run.data, run.regions);
  ASSERT_FALSE(ex.predicates.empty());
  // Network congestion's signature attributes must be among the findings.
  bool saw_network = false;
  for (const auto& d : ex.predicates) {
    if (d.predicate.attribute == "net_send_kb" ||
        d.predicate.attribute == "net_recv_kb" ||
        d.predicate.attribute == "client_wait_time_ms") {
      saw_network = true;
    }
    EXPECT_GT(d.separation_power, 0.0);
  }
  EXPECT_TRUE(saw_network);
  // No causal models stored yet -> no causes offered.
  EXPECT_TRUE(ex.causes.empty());
}

TEST(ExplainerTest, PredicatesToStringJoinsWithAnd) {
  simulator::GeneratedDataset run =
      Generate(simulator::AnomalyKind::kCpuSaturation, 101);
  Explainer sherlock;
  Explanation ex = sherlock.Diagnose(run.data, run.regions);
  ASSERT_GE(ex.predicates.size(), 2u);
  std::string joined = ex.PredicatesToString();
  EXPECT_NE(joined.find(" AND "), std::string::npos);
}

TEST(ExplainerTest, DomainKnowledgePrunesCpuSecondarySymptom) {
  simulator::GeneratedDataset run =
      Generate(simulator::AnomalyKind::kPoorlyWrittenQuery, 102);
  Explainer::Options with;
  Explainer::Options without;
  without.apply_domain_knowledge = false;
  Explanation pruned = Explainer(with).Diagnose(run.data, run.regions);
  Explanation full = Explainer(without).Diagnose(run.data, run.regions);
  EXPECT_LE(pruned.predicates.size(), full.predicates.size());
  // The DBMS drives the CPU here, so os_cpu_usage is a secondary symptom
  // of dbms_cpu_usage and must be pruned when both were extracted.
  bool full_has_os_cpu = false, full_has_dbms_cpu = false;
  for (const auto& d : full.predicates) {
    if (d.predicate.attribute == "os_cpu_usage") full_has_os_cpu = true;
    if (d.predicate.attribute == "dbms_cpu_usage") full_has_dbms_cpu = true;
  }
  if (full_has_os_cpu && full_has_dbms_cpu) {
    for (const auto& d : pruned.predicates) {
      EXPECT_NE(d.predicate.attribute, "os_cpu_usage");
    }
  }
}

TEST(ExplainerTest, AcceptDiagnosisStoresModelAndRanksIt) {
  simulator::GeneratedDataset first =
      Generate(simulator::AnomalyKind::kLockContention, 103);
  Explainer sherlock;
  Explanation ex = sherlock.Diagnose(first.data, first.regions);
  ASSERT_FALSE(ex.predicates.empty());
  sherlock.AcceptDiagnosis("Lock Contention", ex);
  ASSERT_EQ(sherlock.repository().size(), 1u);

  simulator::GeneratedDataset second =
      Generate(simulator::AnomalyKind::kLockContention, 104, 45.0);
  Explanation again = sherlock.Diagnose(second.data, second.regions);
  ASSERT_FALSE(again.causes.empty());
  EXPECT_EQ(again.causes[0].cause, "Lock Contention");
  EXPECT_GT(again.causes[0].confidence, 20.0);
}

TEST(ExplainerTest, AcceptTwiceMergesModels) {
  Explainer sherlock;
  for (uint64_t seed : {105u, 106u}) {
    simulator::GeneratedDataset run =
        Generate(simulator::AnomalyKind::kDatabaseBackup, seed);
    Explanation ex = sherlock.Diagnose(run.data, run.regions);
    sherlock.AcceptDiagnosis("Database Backup", ex);
  }
  ASSERT_EQ(sherlock.repository().size(), 1u);
  EXPECT_EQ(sherlock.repository().models()[0].num_sources, 2);
}

TEST(ExplainerTest, LambdaThresholdHidesWeakCauses) {
  simulator::GeneratedDataset lock =
      Generate(simulator::AnomalyKind::kLockContention, 107);
  Explainer sherlock;
  Explanation ex = sherlock.Diagnose(lock.data, lock.regions);
  sherlock.AcceptDiagnosis("Lock Contention", ex);

  // Diagnose a very different anomaly: the lock model should not clear
  // a high confidence bar.
  simulator::GeneratedDataset cpu =
      Generate(simulator::AnomalyKind::kCpuSaturation, 108);
  Explainer::Options strict;
  strict.confidence_threshold = 95.0;
  Explainer strict_sherlock(strict);
  Explanation first = strict_sherlock.Diagnose(cpu.data, cpu.regions);
  strict_sherlock.AcceptDiagnosis("Lock Contention", ex);  // unrelated model
  Explanation result = strict_sherlock.Diagnose(cpu.data, cpu.regions);
  EXPECT_TRUE(result.causes.empty());
}

TEST(ExplainerTest, DiagnoseAutoFindsRegionAndExplains) {
  simulator::DatasetGenOptions options;
  options.seed = 109;
  options.normal_duration_sec = 600.0;  // long normal region for detection
  simulator::GeneratedDataset run = simulator::GenerateAnomalyDataset(
      options, simulator::AnomalyKind::kCpuSaturation, 60.0);
  Explainer sherlock;
  DetectionResult detected;
  Explanation ex = sherlock.DiagnoseAuto(run.data, &detected);
  ASSERT_FALSE(detected.abnormal_rows.empty());
  EXPECT_FALSE(ex.predicates.empty());
  // The detected region should overlap the true anomaly substantially.
  size_t inside = 0;
  for (size_t row : detected.abnormal_rows) {
    if (run.regions.abnormal.Contains(run.data.timestamp(row))) ++inside;
  }
  EXPECT_GT(static_cast<double>(inside) /
                static_cast<double>(detected.abnormal_rows.size()),
            0.6);
}

}  // namespace
}  // namespace dbsherlock::core
