#include "simulator/event_sim.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace dbsherlock::simulator {
namespace {

/// Means of one metric over [from, to) seconds.
template <typename Getter>
double AvgOver(const std::vector<EventMetrics>& rows, double from, double to,
               Getter getter) {
  std::vector<double> values;
  for (const EventMetrics& m : rows) {
    if (m.time_sec >= from && m.time_sec < to) values.push_back(getter(m));
  }
  return common::Mean(values);
}

AnomalyEvent Event(AnomalyKind kind, double start, double duration) {
  AnomalyEvent ev;
  ev.kind = kind;
  ev.start_sec = start;
  ev.duration_sec = duration;
  return ev;
}

TEST(EventSimTest, SteadyStateIsSane) {
  EventSimulator sim(EventSimConfig{}, 1);
  std::vector<EventMetrics> rows = sim.Run(30.0);
  ASSERT_EQ(rows.size(), 30u);
  // Skip the first 5 warm-up seconds.
  double tps = AvgOver(rows, 5, 30, [](auto& m) { return m.throughput_tps; });
  double latency =
      AvgOver(rows, 5, 30, [](auto& m) { return m.avg_latency_ms; });
  double cpu = AvgOver(rows, 5, 30, [](auto& m) { return m.cpu_util; });
  EXPECT_GT(tps, 300.0);
  EXPECT_LT(tps, 3000.0);
  EXPECT_GT(latency, 1.0);
  EXPECT_LT(latency, 50.0);
  EXPECT_GT(cpu, 0.05);
  EXPECT_LT(cpu, 0.95);
}

TEST(EventSimTest, DeterministicForSameSeed) {
  EventSimulator a(EventSimConfig{}, 7);
  EventSimulator b(EventSimConfig{}, 7);
  std::vector<EventMetrics> ra = a.Run(10.0);
  std::vector<EventMetrics> rb = b.Run(10.0);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].throughput_tps, rb[i].throughput_tps);
    EXPECT_DOUBLE_EQ(ra[i].avg_latency_ms, rb[i].avg_latency_ms);
  }
}

TEST(EventSimTest, RunIsRepeatableOnOneInstance) {
  EventSimulator sim(EventSimConfig{}, 9);
  std::vector<EventMetrics> first = sim.Run(5.0);
  std::vector<EventMetrics> second = sim.Run(5.0);
  EXPECT_EQ(first.size(), second.size());
  // The RNG stream continues, so values differ, but the run must stay
  // healthy (transactions flowing).
  EXPECT_GT(second.back().throughput_tps, 100.0);
}

// --- Cross-validation: the flow-level model's anomaly signatures emerge
// from first principles in the event-level engine.

TEST(EventSimTest, LockContentionProducesWaitStormAndCollapse) {
  EventSimulator sim(EventSimConfig{}, 11);
  std::vector<EventMetrics> rows =
      sim.Run(60.0, {Event(AnomalyKind::kLockContention, 30.0, 30.0)});
  double waits_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.lock_wait_time_ms; });
  double waits_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.lock_wait_time_ms; });
  EXPECT_GT(waits_anomaly, 10.0 * std::max(waits_normal, 1.0));

  double tps_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.throughput_tps; });
  double tps_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.throughput_tps; });
  EXPECT_LT(tps_anomaly, 0.8 * tps_normal);

  double lat_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.avg_latency_ms; });
  double lat_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.avg_latency_ms; });
  EXPECT_GT(lat_anomaly, 2.0 * lat_normal);
}

TEST(EventSimTest, CpuSaturationSqueezesThroughput) {
  EventSimConfig config;
  config.stmt_cpu_ms = 0.4;  // make CPU the primary resource
  EventSimulator sim(config, 13);
  std::vector<EventMetrics> rows =
      sim.Run(60.0, {Event(AnomalyKind::kCpuSaturation, 30.0, 30.0)});
  double lat_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.avg_latency_ms; });
  double lat_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.avg_latency_ms; });
  EXPECT_GT(lat_anomaly, 1.5 * lat_normal);
  double tps_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.throughput_tps; });
  double tps_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.throughput_tps; });
  EXPECT_LT(tps_anomaly, tps_normal);
}

TEST(EventSimTest, NetworkCongestionInflatesLatencyOnly) {
  EventSimulator sim(EventSimConfig{}, 17);
  std::vector<EventMetrics> rows =
      sim.Run(60.0, {Event(AnomalyKind::kNetworkCongestion, 30.0, 30.0)});
  double lat_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.avg_latency_ms; });
  EXPECT_GT(lat_anomaly, 250.0);  // dominated by the +300 ms RTT
  // Locks are NOT held across the client round trip, so no wait storm —
  // the property that distinguishes congestion from contention (and that
  // the flow model had to encode explicitly).
  double waits_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.lock_wait_time_ms; });
  double waits_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.lock_wait_time_ms; });
  EXPECT_LT(waits_anomaly, std::max(10.0 * waits_normal, 50.0));
  // CPU goes idle: the server starves while replies are in flight.
  double cpu_normal = AvgOver(rows, 5, 30, [](auto& m) { return m.cpu_util; });
  double cpu_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.cpu_util; });
  EXPECT_LT(cpu_anomaly, 0.7 * cpu_normal);
}

TEST(EventSimTest, IoSaturationDrivesDiskUtil) {
  EventSimulator sim(EventSimConfig{}, 19);
  std::vector<EventMetrics> rows =
      sim.Run(60.0, {Event(AnomalyKind::kIoSaturation, 30.0, 30.0)});
  double disk_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.disk_util; });
  double disk_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.disk_util; });
  EXPECT_GT(disk_anomaly, 2.0 * disk_normal);
  double lat_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.avg_latency_ms; });
  double lat_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.avg_latency_ms; });
  EXPECT_GT(lat_anomaly, lat_normal);
}

TEST(EventSimTest, WorkloadSpikeActivatesTerminals) {
  EventSimulator sim(EventSimConfig{}, 23);
  std::vector<EventMetrics> rows =
      sim.Run(60.0, {Event(AnomalyKind::kWorkloadSpike, 30.0, 30.0)});
  double tps_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.throughput_tps; });
  double tps_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.throughput_tps; });
  EXPECT_GT(tps_anomaly, 1.5 * tps_normal);
  double active_anomaly =
      AvgOver(rows, 40, 60, [](auto& m) { return m.active_transactions; });
  double active_normal =
      AvgOver(rows, 5, 30, [](auto& m) { return m.active_transactions; });
  EXPECT_GT(active_anomaly, active_normal);
}

TEST(EventSimTest, DatasetConversion) {
  EventSimulator sim(EventSimConfig{}, 29);
  std::vector<EventMetrics> rows = sim.Run(10.0);
  tsdata::Dataset d = EventMetricsToDataset(rows);
  EXPECT_EQ(d.num_rows(), rows.size());
  EXPECT_EQ(d.num_attributes(), 9u);
  auto col = d.ColumnByName("throughput_tps");
  ASSERT_TRUE(col.ok());
  EXPECT_DOUBLE_EQ((*col)->numeric(3), rows[3].throughput_tps);
  EXPECT_DOUBLE_EQ(d.timestamp(0), rows[0].time_sec);
}

TEST(EventSimTest, LockWaitAccountingConsistent) {
  // With a single lockable object and many terminals, every transaction
  // serializes: waits must be plentiful and wait time positive.
  EventSimConfig config;
  config.num_objects = 51;  // hot range [0,50) + one cold object
  config.num_hot_objects = 50;
  config.hot_access_fraction = 1.0;
  config.locks_per_txn = 1;
  EventSimulator sim(config, 31);
  std::vector<EventMetrics> rows = sim.Run(20.0);
  double waits = AvgOver(rows, 5, 20, [](auto& m) { return m.lock_waits; });
  EXPECT_GT(waits, 0.0);
}

}  // namespace
}  // namespace dbsherlock::simulator
