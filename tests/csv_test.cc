#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dbsherlock::common {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  auto r = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(r->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, NoHeaderMode) {
  auto r = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->header.empty());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  auto r = ParseCsv("name,desc\nx,\"a,b\"\ny,\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][1], "a,b");
  EXPECT_EQ(r->rows[1][1], "say \"hi\"");
}

TEST(CsvTest, QuotedNewlines) {
  auto r = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0], "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto r = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->header[1], "b");
  EXPECT_EQ(r->rows[0][1], "2");
}

TEST(CsvTest, MissingFinalNewline) {
  auto r = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  auto r = ParseCsv("a\n\"oops\n");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTest, EmptyDocument) {
  auto r = ParseCsv("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->header.empty());
  EXPECT_TRUE(r->rows.empty());
}

TEST(CsvTest, CustomDelimiter) {
  auto r = ParseCsv("a;b\n1;2\n", true, ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], "1");
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvTable table;
  table.header = {"k", "v"};
  table.rows = {{"plain", "with,comma"},
                {"quote\"inside", "multi\nline"}};
  std::string text = WriteCsv(table);
  auto parsed = ParseCsv(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"x"};
  table.rows = {{"1"}, {"2"}};
  std::string path = testing::TempDir() + "/dbsherlock_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto r = ReadCsvFile(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace dbsherlock::common
