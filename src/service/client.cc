#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/faultenv.h"
#include "common/random.h"
#include "common/strings.h"
#include "core/model_io.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

/// QUERY responses embed a CSV payload, so the client tolerates much
/// longer lines than the server's request guard.
constexpr size_t kMaxLine = 8 << 20;

/// Tracks one request's deadline. Inactive (limit_ms <= 0) never expires.
class Deadline {
 public:
  explicit Deadline(int limit_ms) : limit_ms_(limit_ms) {
    if (limit_ms_ > 0) start_ = std::chrono::steady_clock::now();
  }

  bool active() const { return limit_ms_ > 0; }

  /// Milliseconds left (clamped at 0), or -1 when inactive — the value
  /// poll(2) takes for "wait forever".
  int remaining_ms() const {
    if (!active()) return -1;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start_)
                       .count();
    return static_cast<int>(
        std::max<int64_t>(0, limit_ms_ - static_cast<int64_t>(elapsed)));
  }

  bool expired() const { return active() && remaining_ms() == 0; }

 private:
  int limit_ms_;
  std::chrono::steady_clock::time_point start_;
};

/// Waits for `events` on fd within the deadline. OK = ready;
/// DeadlineExceeded = the deadline ran out first.
Status WaitReady(int fd, short events, const Deadline& deadline,
                 const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    int rc = ::poll(&pfd, 1, deadline.remaining_ms());
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded the request deadline");
    }
    return Status::OK();
  }
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  flags = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::IoError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

int BackoffSleepMs(const RetryPolicy& policy, int attempt,
                   int server_hint_ms, double uniform01) {
  double base = std::max(1, server_hint_ms);
  // Geometric growth per consecutive retry, capped pre-jitter so the
  // jitter band stays centered under max_sleep_ms.
  double grown =
      base * std::pow(std::max(1.0, policy.backoff_factor),
                      static_cast<double>(std::max(0, attempt)));
  grown = std::min(grown, static_cast<double>(std::max(1, policy.max_sleep_ms)));
  // Uniform factor in [1-jitter, 1+jitter].
  double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  double factor = 1.0 - jitter + 2.0 * jitter * uniform01;
  return std::max(1, static_cast<int>(grown * factor));
}

Result<int> Client::OpenSocket(const std::string& host, int port,
                               const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }

  bool timed = options.connect_timeout_ms > 0;
  if (timed) {
    Status status = SetNonBlocking(fd, true);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
  }
  int rc = common::faultenv::Connect(
      "cli.connect", fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && !(timed && errno == EINPROGRESS)) {
    Status status(common::StatusCode::kIoError,
                  common::StrFormat("connect %s:%d: %s", host.c_str(), port,
                                    std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    // Non-blocking connect in flight: wait for writability, then read the
    // socket-level result.
    Deadline deadline(options.connect_timeout_ms);
    Status ready = WaitReady(fd, POLLOUT, deadline, "connect");
    if (ready.ok()) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        ready = Status(common::StatusCode::kIoError,
                       common::StrFormat("connect %s:%d: %s", host.c_str(),
                                         port,
                                         std::strerror(err != 0 ? err
                                                                : errno)));
      }
    }
    if (!ready.ok()) {
      ::close(fd);
      return ready;
    }
  }
  if (timed) {
    Status status = SetNonBlocking(fd, false);
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  return Connect(host, port, Options());
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                const Options& options) {
  auto fd = OpenSocket(host, port, options);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<Client>(new Client(*fd, host, port, options));
}

Status Client::Reconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
  auto fd = OpenSocket(host_, port_, options_);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::OK();
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> Client::Call(const std::string& line) {
  auto raw = CallRaw(line);
  if (!raw.ok()) return raw.status();
  return ParseResponseLine(*raw);
}

Result<std::string> Client::CallRaw(const std::string& line) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is disconnected; Reconnect()");
  }
  Deadline deadline(options_.deadline_ms);
  std::string out = line + "\n";
  size_t done = 0;
  while (done < out.size()) {
    if (deadline.active()) {
      DBSHERLOCK_RETURN_NOT_OK(WaitReady(fd_, POLLOUT, deadline, "send"));
    }
    ssize_t w = common::faultenv::Send("cli.send", fd_, out.data() + done,
                                       out.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!response.empty() && response.back() == '\r') response.pop_back();
      return response;
    }
    if (buffer_.size() > kMaxLine) {
      return Status::ParseError("response line too long");
    }
    if (deadline.active()) {
      DBSHERLOCK_RETURN_NOT_OK(WaitReady(fd_, POLLIN, deadline, "recv"));
    }
    char chunk[4096];
    ssize_t r = common::faultenv::Recv("cli.recv", fd_, chunk, sizeof(chunk),
                                       0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) {
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("server closed the connection");
    }
    buffer_.append(chunk, static_cast<size_t>(r));
  }
}

Status Client::ExpectOk(const Result<Response>& response) {
  if (!response.ok()) return response.status();
  switch (response->kind) {
    case Response::Kind::kOk:
      return Status::OK();
    case Response::Kind::kErr:
      return response->error;
    case Response::Kind::kRetryAfter:
      return Status::FailedPrecondition("unexpected RETRY_AFTER");
  }
  return Status::Internal("unhandled response kind");
}

Result<common::JsonValue> Client::ExpectJson(
    const Result<Response>& response) {
  if (!response.ok()) return response.status();
  if (response->kind == Response::Kind::kErr) return response->error;
  if (response->kind != Response::Kind::kOk) {
    return Status::FailedPrecondition("unexpected RETRY_AFTER");
  }
  return common::ParseJson(response->detail);
}

Status Client::Hello(const std::string& tenant,
                     const tsdata::Schema& schema) {
  return ExpectOk(
      Call("HELLO " + tenant + " " + FormatSchemaSpec(schema)));
}

Result<std::optional<double>> Client::HelloResume(
    const std::string& tenant, const tsdata::Schema& schema) {
  auto response = Call("HELLO " + tenant + " " + FormatSchemaSpec(schema));
  if (!response.ok()) return response.status();
  if (response->kind == Response::Kind::kErr) return response->error;
  if (response->kind != Response::Kind::kOk) {
    return Status::FailedPrecondition("unexpected RETRY_AFTER");
  }
  static constexpr char kTag[] = " last_ts ";
  size_t pos = response->detail.rfind(kTag);
  if (pos == std::string::npos) return std::optional<double>();
  auto value =
      common::ParseDouble(response->detail.substr(pos + sizeof(kTag) - 1));
  if (!value.ok()) return value.status();
  return std::optional<double>(*value);
}

Result<Response> Client::Append(const std::string& tenant, double timestamp,
                                const std::vector<tsdata::Cell>& cells) {
  std::string line =
      "APPEND " + tenant + " " + common::StrFormat("%.17g", timestamp) + " ";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += FormatCell(cells[i]);
  }
  return Call(line);
}

Result<Response> Client::AppendSeq(const std::string& tenant, uint64_t seq,
                                   double timestamp,
                                   const std::vector<tsdata::Cell>& cells) {
  std::string line = common::StrFormat(
      "APPENDSEQ %s %llu %.17g ", tenant.c_str(),
      static_cast<unsigned long long>(seq), timestamp);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += FormatCell(cells[i]);
  }
  return Call(line);
}

Status Client::AppendRetrying(const std::string& tenant, double timestamp,
                              const std::vector<tsdata::Cell>& cells,
                              const RetryPolicy& policy, size_t* retries) {
  common::Pcg32 rng(policy.seed, 77);
  int64_t slept_ms = 0;
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    auto response = Append(tenant, timestamp, cells);
    if (!response.ok()) return response.status();
    if (response->kind == Response::Kind::kOk) return Status::OK();
    if (response->kind == Response::Kind::kErr) return response->error;
    if (retries != nullptr) ++*retries;
    int sleep = BackoffSleepMs(policy, attempt, response->retry_after_ms,
                               rng.NextDouble());
    slept_ms += sleep;
    if (policy.backoff_budget_ms > 0 && slept_ms > policy.backoff_budget_ms) {
      return Status::DeadlineExceeded(
          "append backoff budget exhausted while shed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
  }
  return Status::FailedPrecondition(
      "append still shed after max_retries backoffs");
}

Status Client::AppendRetrying(const std::string& tenant, double timestamp,
                              const std::vector<tsdata::Cell>& cells,
                              int max_retries, size_t* retries) {
  // Legacy pacing: honor the server's hint (jittered, so a herd of shed
  // clients no longer retries in lockstep) with no growth and no budget —
  // max_retries alone bounds the loop, as it always did.
  RetryPolicy policy;
  policy.max_retries = max_retries;
  policy.backoff_factor = 1.0;
  policy.backoff_budget_ms = 0;
  return AppendRetrying(tenant, timestamp, cells, policy, retries);
}

Status Client::AppendSeqRetrying(const std::string& tenant, uint64_t seq,
                                 double timestamp,
                                 const std::vector<tsdata::Cell>& cells,
                                 const RetryPolicy& policy, size_t* retries,
                                 size_t* reconnects) {
  common::Pcg32 rng(policy.seed + seq, 77);
  int64_t slept_ms = 0;
  int backoffs = 0;
  auto sleep_or_give_up = [&](int server_hint_ms) -> Status {
    int sleep =
        BackoffSleepMs(policy, backoffs++, server_hint_ms, rng.NextDouble());
    slept_ms += sleep;
    if (policy.backoff_budget_ms > 0 && slept_ms > policy.backoff_budget_ms) {
      return Status::DeadlineExceeded(
          "append backoff budget exhausted for seq " +
          common::StrFormat("%llu", static_cast<unsigned long long>(seq)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep));
    return Status::OK();
  };
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    auto response = AppendSeq(tenant, seq, timestamp, cells);
    if (!response.ok()) {
      common::StatusCode code = response.status().code();
      if (code != common::StatusCode::kIoError &&
          code != common::StatusCode::kDeadlineExceeded) {
        return response.status();
      }
      // The connection died mid-exchange; the server may or may not have
      // applied the row. Reconnect and resend the same seq — if it landed,
      // the server replays the ack instead of double-ingesting.
      if (reconnects != nullptr) ++*reconnects;
      Status again = Reconnect();
      if (!again.ok()) {
        // Likely a restarting server: pace the reconnect attempts too.
        DBSHERLOCK_RETURN_NOT_OK(sleep_or_give_up(0));
      }
      continue;
    }
    if (response->kind == Response::Kind::kOk) return Status::OK();
    if (response->kind == Response::Kind::kErr) return response->error;
    if (retries != nullptr) ++*retries;
    DBSHERLOCK_RETURN_NOT_OK(sleep_or_give_up(response->retry_after_ms));
  }
  return Status::FailedPrecondition(
      "append still failing after max_retries attempts");
}

Status Client::Teach(const core::CausalModel& model) {
  return ExpectOk(Call("TEACH " + core::CausalModelToJson(model).Dump()));
}

Status Client::Flush(const std::string& tenant) {
  return ExpectOk(Call("FLUSH " + tenant));
}

Result<common::JsonValue> Client::Diagnoses(const std::string& tenant) {
  return ExpectJson(Call("DIAGNOSES " + tenant));
}

Result<common::JsonValue> Client::Query(const std::string& tenant, double t0,
                                        double t1,
                                        const std::string& where) {
  std::string line = common::StrFormat("QUERY %s %.17g %.17g",
                                       tenant.c_str(), t0, t1);
  if (!where.empty()) line += " WHERE " + where;
  return ExpectJson(Call(line));
}

Result<common::JsonValue> Client::DiagnoseRange(const std::string& tenant,
                                                double t0, double t1) {
  return ExpectJson(Call(common::StrFormat("DIAGNOSE_RANGE %s %.17g %.17g",
                                           tenant.c_str(), t0, t1)));
}

Result<common::JsonValue> Client::Explain(const std::string& tenant,
                                          const std::string& query) {
  return ExpectJson(Call("EXPLAINQ " + tenant + " " + query));
}

Result<common::JsonValue> Client::Stats() {
  return ExpectJson(Call("STATS"));
}

Result<common::JsonValue> Client::Models() {
  return ExpectJson(Call("MODELS"));
}

Result<common::JsonValue> Client::Health() {
  return ExpectJson(Call("HEALTH"));
}

Result<common::JsonValue> Client::ModelSync(uint64_t since_seq) {
  return ExpectJson(Call(common::StrFormat(
      "MODELSYNC %llu", static_cast<unsigned long long>(since_seq))));
}

Status Client::Ping() { return ExpectOk(Call("PING")); }

Status Client::Quit() { return ExpectOk(Call("QUIT")); }

}  // namespace dbsherlock::service
