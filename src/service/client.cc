#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/strings.h"
#include "core/model_io.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

/// QUERY responses embed a CSV payload, so the client tolerates much
/// longer lines than the server's request guard.
constexpr size_t kMaxLine = 8 << 20;

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(common::StatusCode::kIoError,
                  common::StrFormat("connect %s:%d: %s", host.c_str(), port,
                                    std::strerror(errno)));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Response> Client::Call(const std::string& line) {
  std::string out = line + "\n";
  size_t done = 0;
  while (done < out.size()) {
    ssize_t w = ::send(fd_, out.data() + done, out.size() - done,
                       MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string response = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return ParseResponseLine(response);
    }
    if (buffer_.size() > kMaxLine) {
      return Status::ParseError("response line too long");
    }
    char chunk[4096];
    ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) {
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::IoError("server closed the connection");
    }
    buffer_.append(chunk, static_cast<size_t>(r));
  }
}

Status Client::ExpectOk(const Result<Response>& response) {
  if (!response.ok()) return response.status();
  switch (response->kind) {
    case Response::Kind::kOk:
      return Status::OK();
    case Response::Kind::kErr:
      return response->error;
    case Response::Kind::kRetryAfter:
      return Status::FailedPrecondition("unexpected RETRY_AFTER");
  }
  return Status::Internal("unhandled response kind");
}

Result<common::JsonValue> Client::ExpectJson(
    const Result<Response>& response) {
  if (!response.ok()) return response.status();
  if (response->kind == Response::Kind::kErr) return response->error;
  if (response->kind != Response::Kind::kOk) {
    return Status::FailedPrecondition("unexpected RETRY_AFTER");
  }
  return common::ParseJson(response->detail);
}

Status Client::Hello(const std::string& tenant,
                     const tsdata::Schema& schema) {
  return ExpectOk(
      Call("HELLO " + tenant + " " + FormatSchemaSpec(schema)));
}

Result<Response> Client::Append(const std::string& tenant, double timestamp,
                                const std::vector<tsdata::Cell>& cells) {
  std::string line =
      "APPEND " + tenant + " " + common::StrFormat("%.17g", timestamp) + " ";
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += FormatCell(cells[i]);
  }
  return Call(line);
}

Status Client::AppendRetrying(const std::string& tenant, double timestamp,
                              const std::vector<tsdata::Cell>& cells,
                              int max_retries, size_t* retries) {
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    auto response = Append(tenant, timestamp, cells);
    if (!response.ok()) return response.status();
    if (response->kind == Response::Kind::kOk) return Status::OK();
    if (response->kind == Response::Kind::kErr) return response->error;
    if (retries != nullptr) ++*retries;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, response->retry_after_ms)));
  }
  return Status::FailedPrecondition(
      "append still shed after max_retries backoffs");
}

Status Client::Teach(const core::CausalModel& model) {
  return ExpectOk(Call("TEACH " + core::CausalModelToJson(model).Dump()));
}

Status Client::Flush(const std::string& tenant) {
  return ExpectOk(Call("FLUSH " + tenant));
}

Result<common::JsonValue> Client::Diagnoses(const std::string& tenant) {
  return ExpectJson(Call("DIAGNOSES " + tenant));
}

Result<common::JsonValue> Client::Query(const std::string& tenant, double t0,
                                        double t1) {
  return ExpectJson(Call(common::StrFormat("QUERY %s %.17g %.17g",
                                           tenant.c_str(), t0, t1)));
}

Result<common::JsonValue> Client::DiagnoseRange(const std::string& tenant,
                                                double t0, double t1) {
  return ExpectJson(Call(common::StrFormat("DIAGNOSE_RANGE %s %.17g %.17g",
                                           tenant.c_str(), t0, t1)));
}

Result<common::JsonValue> Client::Stats() {
  return ExpectJson(Call("STATS"));
}

Result<common::JsonValue> Client::Models() {
  return ExpectJson(Call("MODELS"));
}

Status Client::Ping() { return ExpectOk(Call("PING")); }

Status Client::Quit() { return ExpectOk(Call("QUIT")); }

}  // namespace dbsherlock::service
