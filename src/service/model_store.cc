#include "service/model_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/faultenv.h"
#include "common/json.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/model_io.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

constexpr int kSnapshotVersion = 1;
/// Hard cap on one WAL payload: a single causal model is kilobytes, so a
/// larger length field can only come from a torn/garbage header.
constexpr uint32_t kMaxPayload = 16u << 20;

void PutU32(uint8_t* out, uint32_t v) {
  out[0] = static_cast<uint8_t>(v);
  out[1] = static_cast<uint8_t>(v >> 8);
  out[2] = static_cast<uint8_t>(v >> 16);
  out[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
         static_cast<uint32_t>(in[2]) << 16 |
         static_cast<uint32_t>(in[3]) << 24;
}

uint64_t GetU64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(in[i]) << (8 * i);
  return v;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Writes all of `data` to `fd`, retrying short writes and EINTR. `site`
/// tags the write for fault injection (faultenv.h).
Status WriteAll(const char* site, int fd, const uint8_t* data, size_t n,
                const std::string& path) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = common::faultenv::Write(site, fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

/// Reflected CRC-32 (poly 0xEDB88320), the variant used by zlib/ethernet.
/// Table built on first use; reads after that are immutable.
uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

DurableModelStore::DurableModelStore(Options options)
    : options_(std::move(options)) {}

DurableModelStore::~DurableModelStore() {
  if (wal_fd_ >= 0) ::close(wal_fd_);
}

std::string DurableModelStore::SnapshotPath() const {
  return options_.dir + "/snapshot.json";
}

std::string DurableModelStore::WalPath() const {
  return options_.dir + "/wal.log";
}

Result<std::unique_ptr<DurableModelStore>> DurableModelStore::Open(
    Options options) {
  auto store =
      std::unique_ptr<DurableModelStore>(new DurableModelStore(options));
  if (!options.dir.empty()) {
    if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", options.dir);
    }
    std::unique_lock lock(store->mu_);
    DBSHERLOCK_RETURN_NOT_OK(store->RecoverLocked());
  }
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetGauge("model_store.models")
      ->Set(static_cast<double>(store->repo_.size()));
  return store;
}

Status DurableModelStore::RecoverLocked() {
  TRACE_SPAN("model_store.recover");
  auto& metrics = common::MetricsRegistry::Global();

  // 1) Snapshot, if one exists. A corrupt snapshot is a hard error: unlike
  // the WAL tail, its write was atomic (tmp + rename), so damage means the
  // operator should intervene rather than silently lose the whole store.
  {
    std::ifstream in(SnapshotPath(), std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      auto json = common::ParseJson(buffer.str());
      if (!json.ok()) return json.status();
      auto version = json->GetNumber("version");
      if (!version.ok()) return version.status();
      if (*version != static_cast<double>(kSnapshotVersion)) {
        return Status::ParseError(common::StrFormat(
            "unsupported snapshot version %g", *version));
      }
      auto last_seq = json->GetNumber("last_seq");
      if (!last_seq.ok()) return last_seq.status();
      if (*last_seq < 0 || *last_seq > 9e15) {
        return Status::ParseError("snapshot with implausible last_seq");
      }
      const common::JsonValue* repo_json = json->Find("repository");
      if (repo_json == nullptr) {
        return Status::ParseError("snapshot without repository");
      }
      auto repo = core::RepositoryFromJson(*repo_json);
      if (!repo.ok()) return repo.status();
      repo_ = std::move(*repo);
      snapshot_seq_ = static_cast<uint64_t>(*last_seq);
      next_seq_ = snapshot_seq_ + 1;
      recovery_.snapshot_models = repo_.size();
    }
  }

  // 2) WAL replay. Records with seq <= snapshot_seq_ are already folded
  // into the snapshot (the process can die between snapshot rename and WAL
  // truncation); replaying them again would double-merge, so skip.
  int fd = ::open(WalPath().c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", WalPath());
  wal_fd_ = fd;

  off_t good_end = 0;
  bool torn = false;
  for (;;) {
    uint8_t header[16];
    ssize_t r = ::pread(fd, header, sizeof(header), good_end);
    if (r < 0) return Errno("read", WalPath());
    if (r == 0) break;  // clean end of log
    if (r < static_cast<ssize_t>(sizeof(header))) {
      torn = true;  // short header: the append died mid-write
      break;
    }
    uint32_t len = GetU32(header);
    uint32_t crc = GetU32(header + 4);
    uint64_t seq = GetU64(header + 8);
    if (len == 0 || len > kMaxPayload) {
      torn = true;
      break;
    }
    std::string payload(len, '\0');
    r = ::pread(fd, payload.data(), len, good_end + 16);
    if (r < 0) return Errno("read", WalPath());
    if (r < static_cast<ssize_t>(len)) {
      torn = true;
      break;
    }
    // CRC covers seq + payload, exactly as AppendRecordLocked computed it.
    uint32_t actual = Crc32(header + 8, 8);
    actual = Crc32(reinterpret_cast<const uint8_t*>(payload.data()), len,
                   actual);
    if (actual != crc) {
      torn = true;
      break;
    }
    auto json = common::ParseJson(payload);
    if (!json.ok()) {
      torn = true;  // CRC can't catch a record torn before CRC was written
      break;
    }
    auto model = core::CausalModelFromJson(*json);
    if (!model.ok()) {
      torn = true;
      break;
    }
    if (seq > snapshot_seq_) {
      repo_.Add(std::move(*model));
      ++recovery_.wal_records_applied;
      ++wal_records_;
    } else {
      ++recovery_.wal_records_skipped;
    }
    if (seq >= next_seq_) next_seq_ = seq + 1;
    good_end += 16 + static_cast<off_t>(len);
  }

  if (torn) {
    struct stat st;
    if (::fstat(fd, &st) != 0) return Errno("stat", WalPath());
    recovery_.truncated_bytes =
        static_cast<uint64_t>(st.st_size - good_end);
    if (::ftruncate(fd, good_end) != 0) return Errno("truncate", WalPath());
    if (::fsync(fd) != 0) return Errno("fsync", WalPath());
    metrics.GetCounter("model_store.recovery_truncations")->Increment();
  }
  metrics.GetCounter("model_store.recovery_records_applied")
      ->Increment(recovery_.wal_records_applied);
  if (::lseek(fd, 0, SEEK_END) < 0) return Errno("seek", WalPath());
  return Status::OK();
}

Status DurableModelStore::AppendRecordLocked(const core::CausalModel& model) {
  std::string payload = core::CausalModelToJson(model).Dump();
  if (payload.size() > kMaxPayload) {
    return Status::InvalidArgument("causal model too large for WAL");
  }
  std::string record(16 + payload.size(), '\0');
  auto* bytes = reinterpret_cast<uint8_t*>(record.data());
  PutU32(bytes, static_cast<uint32_t>(payload.size()));
  PutU64(bytes + 8, next_seq_);
  std::memcpy(bytes + 16, payload.data(), payload.size());
  uint32_t crc = Crc32(bytes + 8, 8);
  crc = Crc32(bytes + 16, payload.size(), crc);
  PutU32(bytes + 4, crc);

  auto& metrics = common::MetricsRegistry::Global();
  size_t n = record.size();
  if (options_.fail_append_after_bytes < n) {
    // Injected crash: write a prefix, then behave as if the process died —
    // the fd stays as-is and every later write fails fast.
    (void)WriteAll("wal.write", wal_fd_, bytes,
                   options_.fail_append_after_bytes, WalPath());
    (void)::fsync(wal_fd_);
    failed_ = true;
    return Status::IoError("injected crash during WAL append");
  }
  // Where this record starts: a failed append must truncate back here, or
  // the torn bytes would sit in front of every later record and recovery
  // would stop at the tear — losing appends that WERE acked after it.
  off_t record_start = ::lseek(wal_fd_, 0, SEEK_CUR);
  if (record_start < 0) return Errno("seek", WalPath());
  Status status;
  {
    common::ScopedLatency timer(
        metrics.GetHistogram("model_store.wal_append_us"));
    status = WriteAll("wal.write", wal_fd_, bytes, n, WalPath());
  }
  if (status.ok() && options_.fsync_each_append) {
    common::ScopedLatency timer(
        metrics.GetHistogram("model_store.wal_fsync_us"));
    if (common::faultenv::Fsync("wal.fsync", wal_fd_) != 0) {
      status = Errno("fsync", WalPath());
    }
  }
  if (!status.ok()) {
    // Unwind the partial record so the WAL stays a clean prefix of acked
    // appends. Only if even the unwind fails does the store go sticky-
    // failed (the next Open re-runs torn-tail recovery).
    metrics.GetCounter("model_store.wal_append_errors")->Increment();
    if (::ftruncate(wal_fd_, record_start) != 0 ||
        ::lseek(wal_fd_, record_start, SEEK_SET) < 0) {
      failed_ = true;
      metrics.GetCounter("model_store.wal_failures")->Increment();
    }
    return status;
  }
  metrics.GetCounter("model_store.wal_appends")->Increment();
  ++next_seq_;
  ++wal_records_;
  return Status::OK();
}

Status DurableModelStore::Add(const core::CausalModel& model) {
  TRACE_SPAN("model_store.add");
  if (model.cause.empty()) {
    return Status::InvalidArgument("causal model with empty cause");
  }
  std::unique_lock lock(mu_);
  if (failed_) {
    return Status::FailedPrecondition("model store failed a previous write");
  }
  if (wal_fd_ >= 0) {
    DBSHERLOCK_RETURN_NOT_OK(AppendRecordLocked(model));
  } else {
    // Volatile store: no WAL record, but the sequence still advances —
    // MODELSYNC peers poll `last_seq = next_seq - 1` to learn there is
    // something new to pull, durable or not.
    ++next_seq_;
  }
  // In-memory merge happens only after durability: on any WAL error the
  // caller sees the failure and the repository is unchanged.
  repo_.Add(model);
  common::MetricsRegistry::Global().GetGauge("model_store.models")
      ->Set(static_cast<double>(repo_.size()));
  if (wal_fd_ >= 0 && wal_records_ >= options_.compact_after_records) {
    DBSHERLOCK_RETURN_NOT_OK(CompactLocked());
  }
  return Status::OK();
}

Status DurableModelStore::CompactLocked() {
  TRACE_SPAN("model_store.compact");
  // Write tmp -> fsync -> rename: the snapshot is either the old one or
  // the complete new one, never a partial file.
  common::JsonValue::Object doc;
  doc["version"] = kSnapshotVersion;
  doc["last_seq"] = static_cast<double>(next_seq_ - 1);
  doc["repository"] = core::RepositoryToJson(repo_);
  std::string text = common::JsonValue(std::move(doc)).Dump();

  std::string tmp = SnapshotPath() + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", tmp);
  Status write_status =
      WriteAll("snap.write", fd, reinterpret_cast<const uint8_t*>(text.data()),
               text.size(), tmp);
  if (write_status.ok() && common::faultenv::Fsync("snap.fsync", fd) != 0) {
    write_status = Errno("fsync", tmp);
  }
  ::close(fd);
  DBSHERLOCK_RETURN_NOT_OK(write_status);
  if (::rename(tmp.c_str(), SnapshotPath().c_str()) != 0) {
    return Errno("rename", tmp);
  }

  // The WAL is now redundant up to last_seq; if the process dies before
  // this truncate, recovery skips the duplicate records by seq.
  snapshot_seq_ = next_seq_ - 1;
  if (::ftruncate(wal_fd_, 0) != 0) return Errno("truncate", WalPath());
  if (::lseek(wal_fd_, 0, SEEK_SET) < 0) return Errno("seek", WalPath());
  if (::fsync(wal_fd_) != 0) return Errno("fsync", WalPath());
  wal_records_ = 0;
  ++compactions_;
  common::MetricsRegistry::Global()
      .GetCounter("model_store.compactions")
      ->Increment();
  return Status::OK();
}

Status DurableModelStore::Compact() {
  std::unique_lock lock(mu_);
  if (wal_fd_ < 0) return Status::OK();
  if (failed_) {
    return Status::FailedPrecondition("model store failed a previous write");
  }
  return CompactLocked();
}

std::vector<core::RankedCause> DurableModelStore::Rank(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    const core::PredicateGenOptions& options, double min_confidence) const {
  std::shared_lock lock(mu_);
  return repo_.Rank(dataset, rows, options, min_confidence);
}

core::ModelRepository DurableModelStore::SnapshotRepository() const {
  std::shared_lock lock(mu_);
  return repo_;
}

size_t DurableModelStore::num_models() const {
  std::shared_lock lock(mu_);
  return repo_.size();
}

uint64_t DurableModelStore::next_seq() const {
  std::shared_lock lock(mu_);
  return next_seq_;
}

size_t DurableModelStore::wal_records() const {
  std::shared_lock lock(mu_);
  return wal_records_;
}

}  // namespace dbsherlock::service
