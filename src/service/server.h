#ifndef DBSHERLOCK_SERVICE_SERVER_H_
#define DBSHERLOCK_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "common/status.h"
#include "service/service.h"
#include "service/wire.h"

namespace dbsherlock::service {

/// The TCP frontend of dbsherlockd: an accept loop plus one line-oriented
/// reader per connection, running on a private common::ThreadPool that
/// grows with the connection count. Each request line is parsed with
/// wire.h, dispatched into the Service, and answered with exactly one
/// response line. The server owns no diagnosis logic — backpressure and
/// queueing decisions all come from Service::Append.
class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the real one from port().
    int port = 0;
    /// Connections beyond this are refused (ERR + close) at accept time.
    size_t max_connections = 64;
    /// Slow-loris guard: a connection that sends nothing for this long is
    /// closed (its worker is a finite resource). 0 = wait forever.
    int idle_timeout_ms = 0;
    /// Per-connection line-buffer cap; a longer request line gets
    /// ERR ParseError and the connection is closed.
    size_t max_line_bytes = 1 << 20;
    /// The engine; required, not owned.
    Service* service = nullptr;
  };

  /// Binds, listens, and starts the accept loop.
  static common::Result<std::unique_ptr<Server>> Start(Options options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves Options::port == 0).
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, shuts down live connections, and waits for their
  /// handlers to finish. Does NOT stop the Service (its owner does).
  void Stop();

  size_t connections_handled() const { return connections_handled_.load(); }

 private:
  explicit Server(Options options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// One request line -> one response line (no trailing newline).
  /// Sets *quit on QUIT.
  std::string HandleLine(const std::string& line, bool* quit);

  Options options_;
  /// Atomic: AcceptLoop reads it per iteration while Stop() swaps in -1.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Handler tasks run here; grown to the live-connection count so a
  /// blocking reader never starves another connection.
  std::unique_ptr<common::ThreadPool> workers_;

  std::mutex conn_mu_;
  std::condition_variable conn_done_;
  std::set<int> conn_fds_;

  std::atomic<size_t> connections_handled_{0};
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_SERVER_H_
