#ifndef DBSHERLOCK_SERVICE_SERVER_H_
#define DBSHERLOCK_SERVICE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/parallel.h"
#include "common/status.h"
#include "fleet/event_loop.h"
#include "service/service.h"
#include "service/wire.h"

namespace dbsherlock::service {

/// How the server multiplexes connections (the --io-mode flag).
enum class IoMode {
  /// One blocking reader thread per connection (the original frontend).
  kThreads,
  /// One edge-triggered epoll loop thread for every connection
  /// (fleet::EventLoop); blocking verbs run on a fixed handler pool.
  /// Wire behavior is byte-identical to kThreads (the parity test).
  kEpoll,
};

/// The TCP frontend of dbsherlockd. Each request line is parsed with
/// wire.h, dispatched into the Service, and answered with exactly one
/// response line. The server owns no diagnosis logic — backpressure and
/// queueing decisions all come from Service::Append.
///
/// Two interchangeable I/O engines sit under the same dispatcher: the
/// original thread-per-connection accept loop, and the fleet event loop
/// (DESIGN.md §15) whose fan-in cost is one thread total plus a fixed
/// handler pool. In both modes, accepts past max_connections are shed
/// with a RETRY_AFTER line instead of growing threads without bound.
class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read the real one from port().
    int port = 0;
    /// Connections beyond this are shed (RETRY_AFTER + close) at accept.
    size_t max_connections = 64;
    /// Delay advertised on the accept-shed RETRY_AFTER line.
    int accept_retry_after_ms = 50;
    /// Slow-loris guard: a connection that sends nothing for this long is
    /// closed (its worker is a finite resource). 0 = wait forever.
    int idle_timeout_ms = 0;
    /// Per-connection line-buffer cap; a longer request line gets
    /// ERR ParseError and the connection is closed.
    size_t max_line_bytes = 1 << 20;
    /// Connection multiplexing engine.
    IoMode io_mode = IoMode::kThreads;
    /// kEpoll only: workers running blocking verbs off the loop thread.
    size_t handler_threads = 4;
    /// The engine; required, not owned.
    Service* service = nullptr;
  };

  /// Binds, listens, and starts the accept loop.
  static common::Result<std::unique_ptr<Server>> Start(Options options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (resolves Options::port == 0).
  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Stops accepting, shuts down live connections, and waits for their
  /// handlers to finish. Does NOT stop the Service (its owner does).
  void Stop();

  size_t connections_handled() const {
    if (loop_ != nullptr) return loop_->connections_handled();
    return connections_handled_.load();
  }

  /// Connections currently open — accurate in both modes: thread mode
  /// counts registered fds (a handler deregisters before closing), epoll
  /// mode counts loop-registered connections.
  size_t live_connections() const;

  /// Accepts shed with RETRY_AFTER past max_connections.
  uint64_t accepts_shed() const {
    if (loop_ != nullptr) return loop_->accepts_shed();
    return accepts_shed_.load();
  }

 private:
  explicit Server(Options options);

  common::Status StartEpoll();

  void AcceptLoop();
  void HandleConnection(int fd);
  /// One request line -> one response line (no trailing newline).
  /// Sets *quit on QUIT.
  std::string HandleLine(const std::string& line, bool* quit);
  /// True when `line` names a verb that may block (epoll mode offloads it
  /// to the handler pool instead of running it on the loop thread).
  static bool ShouldOffload(const std::string& line);

  Options options_;
  /// Atomic: AcceptLoop reads it per iteration while Stop() swaps in -1.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  /// Handler tasks run here; grown to the live-connection count so a
  /// blocking reader never starves another connection.
  std::unique_ptr<common::ThreadPool> workers_;

  mutable std::mutex conn_mu_;
  std::condition_variable conn_done_;
  std::set<int> conn_fds_;

  std::atomic<size_t> connections_handled_{0};
  std::atomic<uint64_t> accepts_shed_{0};

  /// Non-null iff io_mode == kEpoll; owns the listen socket then.
  std::unique_ptr<fleet::EventLoop> loop_;
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_SERVER_H_
