#include "service/tenant_manager.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace dbsherlock::service {

using common::Result;
using common::Status;

TenantManager::TenantManager(Options options)
    : options_(std::move(options)) {
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetGauge("service.tenants")->Set(0.0);
  metrics.GetCounter("service.tenant_evictions");
}

Result<std::shared_ptr<Tenant>> TenantManager::Hello(
    const std::string& name, const tsdata::Schema& schema,
    const std::optional<Retention>& retain) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("tenant schema must not be empty");
  }
  std::lock_guard lock(map_mu_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) {
    if (!(it->second->schema == schema)) {
      return Status::FailedPrecondition(
          "tenant '" + name + "' already registered with a different schema");
    }
    if (retain.has_value() && it->second->history != nullptr) {
      it->second->history->SetRetention(retain->bytes, retain->age_sec);
    }
    it->second->last_used.store(clock_.fetch_add(1) + 1,
                                std::memory_order_relaxed);
    return it->second;
  }

  auto tenant = std::make_shared<Tenant>(name);
  tenant->schema = schema;
  core::StreamingMonitor::Options monitor_options = options_.monitor;
  // The service diagnoses on its own worker pool; the drain thread must
  // never block on a full Diagnose. Metrics are labeled per tenant so
  // multi-tenant counters stay attributable (and the aggregate sum-safe).
  monitor_options.diagnose_inline = false;
  monitor_options.metric_label = name;
  tenant->monitor =
      std::make_unique<core::StreamingMonitor>(schema, monitor_options);
  if (!options_.store.dir.empty()) {
    // Tenant names are path-safe by ValidTenantName ([A-Za-z0-9_.-]).
    if (::mkdir(options_.store.dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + options_.store.dir + ": " +
                             std::strerror(errno));
    }
    store::TenantStore::Options store_options = options_.store;
    store_options.dir = options_.store.dir + "/" + name;
    store_options.schema = schema;
    if (retain.has_value()) {
      store_options.retain_bytes = retain->bytes;
      store_options.retain_age_sec = retain->age_sec;
    }
    auto history = store::TenantStore::Open(std::move(store_options));
    if (!history.ok()) return history.status();
    tenant->history = std::move(*history);
    // Restart continuity: refill the sliding window from stored history
    // so detection context (and STATS window size) survives the restart.
    auto tail = tenant->history->ScanTail(options_.monitor.window_rows);
    if (!tail.ok()) return tail.status();
    if (tail->num_rows() > 0) {
      DBSHERLOCK_RETURN_NOT_OK(tenant->monitor->Hydrate(*tail));
    }
  }
  tenant->last_used.store(clock_.fetch_add(1) + 1, std::memory_order_relaxed);
  tenants_[name] = tenant;
  EvictLocked();
  common::MetricsRegistry::Global().GetGauge("service.tenants")
      ->Set(static_cast<double>(tenants_.size()));
  return tenant;
}

Result<std::shared_ptr<Tenant>> TenantManager::Find(const std::string& name) {
  std::lock_guard lock(map_mu_);
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant '" + name +
                            "' (HELLO first, or it was evicted)");
  }
  it->second->last_used.store(clock_.fetch_add(1) + 1,
                              std::memory_order_relaxed);
  return it->second;
}

std::vector<std::string> TenantManager::Names() const {
  std::lock_guard lock(map_mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

size_t TenantManager::size() const {
  std::lock_guard lock(map_mu_);
  return tenants_.size();
}

void TenantManager::EvictLocked() {
  while (tenants_.size() > options_.max_tenants) {
    // Pick the least-recently-used tenant that is idle end to end. Anyone
    // mid-drain or mid-diagnosis is skipped: eviction must never yank a
    // monitor out from under the worker that owns it.
    std::shared_ptr<Tenant> victim;
    uint64_t oldest = UINT64_MAX;
    for (const auto& [name, tenant] : tenants_) {
      uint64_t used = tenant->last_used.load(std::memory_order_relaxed);
      if (used >= oldest) continue;
      bool idle;
      {
        std::lock_guard ingest_lock(tenant->mu);
        idle = tenant->queue.empty() && !tenant->scheduled &&
               tenant->in_process == 0;
      }
      if (idle) {
        std::lock_guard diag_lock(tenant->diag_mu);
        idle = tenant->diag_pending == 0 && tenant->diag_in_flight == 0;
      }
      if (idle) {
        victim = tenant;
        oldest = used;
      }
    }
    if (!victim) return;  // everyone is busy; overshoot the soft cap
    {
      std::lock_guard ingest_lock(victim->mu);
      victim->evicted = true;
    }
    tenants_.erase(victim->name);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    common::MetricsRegistry::Global()
        .GetCounter("service.tenant_evictions")
        ->Increment();
  }
}

}  // namespace dbsherlock::service
