#ifndef DBSHERLOCK_SERVICE_CLIENT_H_
#define DBSHERLOCK_SERVICE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/wire.h"

namespace dbsherlock::service {

/// How an AppendRetrying/AppendSeqRetrying loop paces its resends. The
/// server's RETRY_AFTER hint seeds each sleep; repeats grow it
/// geometrically, jitter de-synchronizes client herds (every shed client
/// sleeping exactly the advertised delay retries in lockstep and collides
/// again), and the budget bounds how long one row may stall the caller.
struct RetryPolicy {
  int max_retries = 1000;
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter].
  double jitter = 0.25;
  /// Geometric growth applied per consecutive retry of the same row.
  double backoff_factor = 1.5;
  /// Cap on one sleep, pre-jitter.
  int max_sleep_ms = 1000;
  /// Cap on the total time slept for one row; exceeded => give up with
  /// FailedPrecondition. <= 0 means unlimited.
  int backoff_budget_ms = 30000;
  /// Seed for the jitter RNG (deterministic in tests).
  uint64_t seed = 1;
};

/// Pure backoff computation (unit-testable without sockets): the sleep in
/// ms before retry number `attempt` (0-based) given the server's hint and
/// one uniform sample in [0, 1). Monotone in `attempt` pre-jitter, capped
/// at policy.max_sleep_ms, and never below 1.
int BackoffSleepMs(const RetryPolicy& policy, int attempt,
                   int server_hint_ms, double uniform01);

/// A blocking dbsherlockd client: one TCP connection, one request line per
/// Call, one response line back. Used by the `dbsherlock client`
/// subcommand, the replay benchmark, and the e2e tests. Not thread-safe;
/// open one client per thread.
class Client {
 public:
  struct Options {
    /// Give up on connect() after this long (0 = OS default, minutes).
    int connect_timeout_ms = 0;
    /// Per-request deadline: a Call that has not parsed its response line
    /// within this window fails with DeadlineExceeded instead of hanging
    /// on a stalled or half-dead server. 0 = wait forever.
    int deadline_ms = 0;
  };

  static common::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port);
  static common::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port, const Options& options);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one raw request line and parses the response line. Honors
  /// Options::deadline_ms across the whole send+receive exchange.
  common::Result<Response> Call(const std::string& line);

  /// Sends one raw request line and returns the raw response line
  /// verbatim (no parsing, no re-serialization) — the router's proxy
  /// path, which forwards whatever the shard said byte-for-byte.
  common::Result<std::string> CallRaw(const std::string& line);

  /// Drops and re-establishes the connection (same host/port/options).
  /// Any buffered partial response is discarded.
  common::Status Reconnect();

  // Typed helpers over Call. Each returns the server's ERR as a non-OK
  // Status; RETRY_AFTER surfaces in the Response for the caller to honor.
  common::Status Hello(const std::string& tenant,
                       const tsdata::Schema& schema);
  /// HELLO that also returns the tenant's durable high-water timestamp
  /// (the response's ` last_ts` detail). nullopt = no sealed history; an
  /// idempotent writer resends every row, otherwise only rows strictly
  /// after the returned timestamp.
  common::Result<std::optional<double>> HelloResume(
      const std::string& tenant, const tsdata::Schema& schema);
  common::Result<Response> Append(const std::string& tenant, double timestamp,
                                  const std::vector<tsdata::Cell>& cells);
  /// APPENDSEQ: append carrying a client idempotency sequence number, so
  /// a resend after a dropped connection cannot double-ingest.
  common::Result<Response> AppendSeq(const std::string& tenant, uint64_t seq,
                                     double timestamp,
                                     const std::vector<tsdata::Cell>& cells);
  /// Append that honors backpressure: on RETRY_AFTER sleeps per `policy`
  /// (jittered, capped, budgeted) and resends, up to policy.max_retries.
  /// `*retries` (optional) accumulates the number of RETRY_AFTER
  /// responses seen.
  common::Status AppendRetrying(const std::string& tenant, double timestamp,
                                const std::vector<tsdata::Cell>& cells,
                                const RetryPolicy& policy = {},
                                size_t* retries = nullptr);
  /// Legacy shape (max_retries only); pre-jitter behavior call sites keep
  /// compiling but now get jittered sleeps too.
  common::Status AppendRetrying(const std::string& tenant, double timestamp,
                                const std::vector<tsdata::Cell>& cells,
                                int max_retries, size_t* retries = nullptr);
  /// The chaos-hardened append: APPENDSEQ + backpressure pacing + on a
  /// dropped/reset/timed-out connection, reconnect and resend the same
  /// seq — the server replays the ack if the row already landed, so the
  /// row is ingested exactly once no matter where the failure hit.
  /// `*reconnects` (optional) counts connection re-establishments.
  common::Status AppendSeqRetrying(const std::string& tenant, uint64_t seq,
                                   double timestamp,
                                   const std::vector<tsdata::Cell>& cells,
                                   const RetryPolicy& policy = {},
                                   size_t* retries = nullptr,
                                   size_t* reconnects = nullptr);
  common::Status Teach(const core::CausalModel& model);
  common::Status Flush(const std::string& tenant);
  common::Result<common::JsonValue> Diagnoses(const std::string& tenant);
  /// History rows in [t0, t1) from the tenant's durable store (QUERY).
  /// `where` (optional) is a raw WHERE clause body like "cpu>=10;cpu<=90":
  /// ';'-separated conjunctive `attr>=v` / `attr<=v` terms the store can
  /// prune against with zone maps.
  common::Result<common::JsonValue> Query(const std::string& tenant,
                                          double t0, double t1,
                                          const std::string& where = "");
  /// Retrospective diagnosis of [t0, t1) (DIAGNOSE_RANGE).
  common::Result<common::JsonValue> DiagnoseRange(const std::string& tenant,
                                                  double t0, double t1);
  /// Runs one DQL statement (EXPLAINQ, DESIGN.md §16) and returns the
  /// incident-report JSON (includes a "markdown" field). A rejected
  /// statement's Status message carries the server's caret diagnostic.
  common::Result<common::JsonValue> Explain(const std::string& tenant,
                                            const std::string& query);
  common::Result<common::JsonValue> Stats();
  common::Result<common::JsonValue> Models();
  /// Replication pull (MODELSYNC): the shard's model corpus past
  /// `since_seq` as {"last_seq":N,"crc":C,"models":[...]}.
  common::Result<common::JsonValue> ModelSync(uint64_t since_seq);
  /// Degraded-mode state (HEALTH): {"state":"ok|degraded|draining",...}.
  common::Result<common::JsonValue> Health();
  common::Status Ping();
  /// Polite shutdown of this connection (QUIT).
  common::Status Quit();

 private:
  Client(int fd, std::string host, int port, Options options)
      : fd_(fd),
        host_(std::move(host)),
        port_(port),
        options_(options) {}

  /// Connects one socket per host_/port_/options_ (shared by Connect and
  /// Reconnect).
  static common::Result<int> OpenSocket(const std::string& host, int port,
                                        const Options& options);

  /// OK response or the ERR's Status.
  common::Status ExpectOk(const common::Result<Response>& response);
  /// OK detail parsed as JSON, or the ERR's Status.
  common::Result<common::JsonValue> ExpectJson(
      const common::Result<Response>& response);

  int fd_;
  std::string host_;
  int port_;
  Options options_;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_CLIENT_H_
