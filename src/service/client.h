#ifndef DBSHERLOCK_SERVICE_CLIENT_H_
#define DBSHERLOCK_SERVICE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "service/wire.h"

namespace dbsherlock::service {

/// A blocking dbsherlockd client: one TCP connection, one request line per
/// Call, one response line back. Used by the `dbsherlock client`
/// subcommand, the replay benchmark, and the e2e tests. Not thread-safe;
/// open one client per thread.
class Client {
 public:
  static common::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port);

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one raw request line and parses the response line.
  common::Result<Response> Call(const std::string& line);

  // Typed helpers over Call. Each returns the server's ERR as a non-OK
  // Status; RETRY_AFTER surfaces in the Response for the caller to honor.
  common::Status Hello(const std::string& tenant,
                       const tsdata::Schema& schema);
  common::Result<Response> Append(const std::string& tenant, double timestamp,
                                  const std::vector<tsdata::Cell>& cells);
  /// Append that honors backpressure: on RETRY_AFTER sleeps the advertised
  /// delay and resends, up to `max_retries`. `*retries` (optional)
  /// accumulates the number of RETRY_AFTER responses seen.
  common::Status AppendRetrying(const std::string& tenant, double timestamp,
                                const std::vector<tsdata::Cell>& cells,
                                int max_retries = 1000,
                                size_t* retries = nullptr);
  common::Status Teach(const core::CausalModel& model);
  common::Status Flush(const std::string& tenant);
  common::Result<common::JsonValue> Diagnoses(const std::string& tenant);
  /// History rows in [t0, t1) from the tenant's durable store (QUERY).
  common::Result<common::JsonValue> Query(const std::string& tenant,
                                          double t0, double t1);
  /// Retrospective diagnosis of [t0, t1) (DIAGNOSE_RANGE).
  common::Result<common::JsonValue> DiagnoseRange(const std::string& tenant,
                                                  double t0, double t1);
  common::Result<common::JsonValue> Stats();
  common::Result<common::JsonValue> Models();
  common::Status Ping();
  /// Polite shutdown of this connection (QUIT).
  common::Status Quit();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// OK response or the ERR's Status.
  common::Status ExpectOk(const common::Result<Response>& response);
  /// OK detail parsed as JSON, or the ERR's Status.
  common::Result<common::JsonValue> ExpectJson(
      const common::Result<Response>& response);

  int fd_;
  std::string buffer_;  // bytes read past the last response line
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_CLIENT_H_
