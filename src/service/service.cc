#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>

#include "common/faultenv.h"
#include "common/metrics.h"
#include "common/simd/simd.h"
#include "common/strings.h"
#include "common/trace.h"
#include "query/compiler.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/report.h"
#include "core/model_io.h"
#include "tsdata/dataset_io.h"
#include "tsdata/region.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

/// Pre-ack validation: a row is only acknowledged once we know the
/// monitor's Dataset::AppendRow cannot reject it for shape.
Status CheckCells(const tsdata::Schema& schema, double timestamp,
                  const std::vector<tsdata::Cell>& cells) {
  if (!std::isfinite(timestamp)) {
    return Status::InvalidArgument("non-finite timestamp");
  }
  if (cells.size() != schema.num_attributes()) {
    return Status::InvalidArgument(common::StrFormat(
        "row has %zu cells, schema has %zu attributes", cells.size(),
        schema.num_attributes()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    bool is_number = std::holds_alternative<double>(cells[i]);
    bool want_number =
        schema.attribute(i).kind == tsdata::AttributeKind::kNumeric;
    if (is_number != want_number) {
      return Status::InvalidArgument(
          "cell kind mismatch for attribute '" + schema.attribute(i).name +
          "'");
    }
  }
  return Status::OK();
}

}  // namespace

Service::Service(Options options)
    : options_(std::move(options)),
      tenants_([&] {
        TenantManager::Options t = options_.tenants;
        t.monitor.explainer = options_.explainer;
        return t;
      }()),
      explainer_(options_.explainer) {
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetCounter("service.rows_acked");
  metrics.GetCounter("service.rows_shed");
  metrics.GetCounter("service.alerts");
  metrics.GetCounter("service.diagnoses");
  metrics.GetCounter("service.diagnoses_deduped");
  metrics.GetHistogram("service.append_us");
  metrics.GetHistogram("service.diagnosis_us");
  metrics.GetHistogram("service.diagnosis_queue_wait_us");

  size_t ingest = std::max<size_t>(1, options_.ingest_workers);
  size_t diag = std::max<size_t>(1, options_.diagnosis_workers);
  ingest_threads_.reserve(ingest);
  diag_threads_.reserve(diag);
  for (size_t i = 0; i < ingest; ++i) {
    ingest_threads_.emplace_back([this] { IngestWorker(); });
  }
  for (size_t i = 0; i < diag; ++i) {
    diag_threads_.emplace_back([this] { DiagnosisWorker(); });
  }
}

Service::~Service() { Stop(); }

Status Service::Hello(
    const std::string& tenant, const tsdata::Schema& schema,
    const std::optional<TenantManager::Retention>& retain) {
  if (!accepting_.load()) {
    return Status::FailedPrecondition("service is stopping");
  }
  auto result = tenants_.Hello(tenant, schema, retain);
  if (!result.ok()) return result.status();
  return Status::OK();
}

Result<Service::AppendOutcome> Service::Append(
    const std::string& tenant, double timestamp,
    std::vector<tsdata::Cell> cells, std::optional<uint64_t> client_seq) {
  common::ScopedLatency timer(
      common::MetricsRegistry::Global().GetHistogram("service.append_us"));
  if (!accepting_.load()) {
    return Status::FailedPrecondition("service is stopping");
  }
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);
  DBSHERLOCK_RETURN_NOT_OK(CheckCells(t->schema, timestamp, cells));

  AppendOutcome outcome;
  bool must_schedule = false;
  {
    std::lock_guard lock(t->mu);
    if (t->evicted) {
      return Status::NotFound("tenant '" + tenant +
                              "' was evicted; HELLO again");
    }
    if (client_seq.has_value() && *client_seq <= t->last_client_seq) {
      // A retry of a row already applied (the ack got lost, not the row):
      // acknowledge again without re-ingesting.
      outcome.accepted = true;
      outcome.replayed = true;
      outcome.seq = t->acked;
      total_replayed_.fetch_add(1, std::memory_order_relaxed);
      common::MetricsRegistry::Global()
          .GetCounter("service.rows_replayed")
          ->Increment();
      return outcome;
    }
    if (t->queue.size() >= options_.queue_capacity) {
      ++t->shed;
      total_shed_.fetch_add(1, std::memory_order_relaxed);
      common::MetricsRegistry::Global()
          .GetCounter("service.rows_shed")
          ->Increment();
      outcome.accepted = false;
      outcome.retry_after_ms = options_.retry_after_ms;
      return outcome;
    }
    t->queue.push_back(PendingRow{timestamp, std::move(cells)});
    outcome.accepted = true;
    outcome.seq = ++t->acked;
    if (client_seq.has_value()) t->last_client_seq = *client_seq;
    common::MetricsRegistry::Global()
        .GetGauge("service.queue_depth." + t->name)
        ->Set(static_cast<double>(t->queue.size()));
    if (!t->scheduled) {
      // Whoever flips scheduled pushes to ready_ — the single-drainer
      // hand-off that keeps monitor access serialized.
      t->scheduled = true;
      must_schedule = true;
    }
  }
  total_acked_.fetch_add(1, std::memory_order_relaxed);
  common::MetricsRegistry::Global()
      .GetCounter("service.rows_acked")
      ->Increment();
  if (must_schedule) {
    std::lock_guard lock(ready_mu_);
    ready_.push_back(std::move(t));
    ready_cv_.notify_one();
  }
  return outcome;
}

Status Service::Teach(const core::CausalModel& model) {
  if (options_.store == nullptr) {
    return Status::FailedPrecondition("service has no model store");
  }
  Status status = options_.store->Add(model);
  // Only durability failures flip the health state; a malformed model is
  // the caller's problem, not the daemon's.
  if (status.code() == common::StatusCode::kIoError ||
      (status.code() == common::StatusCode::kFailedPrecondition &&
       options_.store->failed())) {
    NoteDurabilityError("model-store", status);
  } else if (status.ok()) {
    NoteDurabilityOk();
  }
  return status;
}

void Service::IngestWorker() {
  for (;;) {
    std::shared_ptr<Tenant> tenant;
    {
      std::unique_lock lock(ready_mu_);
      ready_cv_.wait(lock,
                     [this] { return stop_ingest_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stop requested and nothing queued
      tenant = std::move(ready_.front());
      ready_.pop_front();
    }
    DrainTenant(tenant);
  }
}

void Service::DrainTenant(const std::shared_ptr<Tenant>& tenant) {
  TRACE_SPAN("service.drain_tenant");
  auto& metrics = common::MetricsRegistry::Global();
  common::Gauge* depth =
      metrics.GetGauge("service.queue_depth." + tenant->name);
  for (;;) {
    std::vector<PendingRow> batch;
    {
      std::lock_guard lock(tenant->mu);
      size_t n = std::min(tenant->queue.size(), options_.ingest_batch);
      if (n == 0) {
        tenant->scheduled = false;
        tenant->drained.notify_all();
        return;
      }
      batch.reserve(n);
      std::move(tenant->queue.begin(), tenant->queue.begin() + n,
                std::back_inserter(batch));
      tenant->queue.erase(tenant->queue.begin(),
                          tenant->queue.begin() + n);
      tenant->in_process += n;
      depth->Set(static_cast<double>(tenant->queue.size()));
    }
    for (PendingRow& row : batch) {
      if (options_.process_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.process_delay_us));
      }
      // Safe without a lock: this worker holds the scheduled flag, so it
      // is the only thread touching the monitor.
      std::optional<core::StreamingMonitor::Alert> alert =
          tenant->monitor->Append(row.timestamp, row.cells);
      if (tenant->history != nullptr &&
          tenant->monitor->last_append_status().ok()) {
        // Tee monitor-accepted rows into the durable store; filtering on
        // the monitor's verdict keeps the store's strictly-increasing
        // timestamp invariant (late/duplicate rows were dropped above).
        Status persisted =
            tenant->history->Append(row.timestamp, row.cells);
        if (!persisted.ok()) {
          metrics.GetCounter("service.history_append_errors")->Increment();
          NoteDurabilityError(("history:" + tenant->name).c_str(),
                              persisted);
        } else {
          NoteDurabilityOk();
        }
      }
      if (alert.has_value()) {
        total_alerts_.fetch_add(1, std::memory_order_relaxed);
        metrics.GetCounter("service.alerts")->Increment();
        EnqueueDiagnosis(tenant, *alert, tenant->monitor->window());
      }
    }
    {
      std::lock_guard lock(tenant->mu);
      tenant->in_process -= batch.size();
      tenant->processed += batch.size();
      tenant->drained.notify_all();
    }
  }
}

void Service::EnqueueDiagnosis(const std::shared_ptr<Tenant>& tenant,
                               const core::StreamingMonitor::Alert& alert,
                               const tsdata::Dataset& window) {
  {
    std::lock_guard lock(tenant->diag_mu);
    if (alert.region.start < tenant->diag_covered_until) {
      // A job covering this span is already queued, running, or done;
      // diagnosing the overlap again would only duplicate the report.
      ++tenant->diag_deduped;
      total_deduped_.fetch_add(1, std::memory_order_relaxed);
      common::MetricsRegistry::Global()
          .GetCounter("service.diagnoses_deduped")
          ->Increment();
      return;
    }
    tenant->diag_covered_until =
        std::max(tenant->diag_covered_until, alert.region.end);
    ++tenant->diag_pending;
  }
  DiagnosisJob job;
  job.tenant = tenant;
  job.region = alert.region;
  job.raised_at = alert.raised_at;
  job.alert_us = common::Tracer::NowMicros();
  job.window = window;  // deep copy while the drain worker owns the monitor
  {
    std::lock_guard lock(diag_queue_mu_);
    diag_queue_.push_back(std::move(job));
    diag_cv_.notify_one();
  }
}

void Service::DiagnosisWorker() {
  std::unique_lock lock(diag_queue_mu_);
  for (;;) {
    // First job whose tenant is under its concurrency cap. Lock order:
    // diag_queue_mu_ (held) -> tenant->diag_mu, never the reverse.
    size_t pick = diag_queue_.size();
    for (size_t i = 0; i < diag_queue_.size(); ++i) {
      std::lock_guard tenant_lock(diag_queue_[i].tenant->diag_mu);
      if (diag_queue_[i].tenant->diag_in_flight <
          std::max<size_t>(1, options_.per_tenant_diagnosis_cap)) {
        pick = i;
        break;
      }
    }
    if (pick == diag_queue_.size()) {
      if (stop_diag_ && diag_queue_.empty()) return;
      // Either nothing queued or every job is capped; a completion or a
      // new job notifies.
      diag_cv_.wait(lock);
      continue;
    }
    DiagnosisJob job = std::move(diag_queue_[pick]);
    diag_queue_.erase(diag_queue_.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    {
      std::lock_guard tenant_lock(job.tenant->diag_mu);
      --job.tenant->diag_pending;
      ++job.tenant->diag_in_flight;
    }
    lock.unlock();
    RunDiagnosis(std::move(job));
    lock.lock();
  }
}

void Service::RunDiagnosis(DiagnosisJob job) {
  TRACE_SPAN("service.diagnose");
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetHistogram("service.diagnosis_queue_wait_us")
      ->Record(common::Tracer::NowMicros() - job.alert_us);

  core::Explanation explanation;
  {
    common::ScopedLatency timer(
        metrics.GetHistogram("service.diagnosis_us"));
    core::DetectionResult detection;
    detection.abnormal = tsdata::RegionSpec({job.region});
    tsdata::DiagnosisRegions regions = core::DetectionToRegions(
        detection, job.window, options_.explainer.detector_options);
    explanation = explainer_.Diagnose(job.window, regions);
    if (options_.store != nullptr) {
      tsdata::LabeledRows rows = tsdata::SplitRows(job.window, regions);
      explanation.causes =
          options_.store->Rank(job.window, rows,
                               options_.explainer.predicate_options,
                               options_.min_confidence);
    }
  }

  TenantDiagnosis result;
  result.region = job.region;
  result.explanation = std::move(explanation);
  result.latency_us = common::Tracer::NowMicros() - job.alert_us;
  {
    std::lock_guard lock(job.tenant->diag_mu);
    ++job.tenant->diag_completed;
    --job.tenant->diag_in_flight;
    job.tenant->diagnoses.push_back(std::move(result));
    job.tenant->diag_done.notify_all();
  }
  total_diagnoses_.fetch_add(1, std::memory_order_relaxed);
  metrics.GetCounter("service.diagnoses")->Increment();
  {
    // Wake workers parked on a capped tenant.
    std::lock_guard lock(diag_queue_mu_);
    diag_cv_.notify_all();
  }
}

Status Service::Flush(const std::string& tenant) {
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);
  {
    std::unique_lock lock(t->mu);
    t->drained.wait(lock, [&] {
      return t->queue.empty() && !t->scheduled && t->in_process == 0;
    });
  }
  {
    std::unique_lock lock(t->diag_mu);
    t->diag_done.wait(lock, [&] {
      return t->diag_pending == 0 && t->diag_in_flight == 0;
    });
  }
  return Status::OK();
}

Status Service::FlushAll() {
  for (const std::string& name : tenants_.Names()) {
    Status status = Flush(name);
    // A tenant evicted between Names() and Flush() is already idle.
    if (!status.ok() && status.code() != common::StatusCode::kNotFound) {
      return status;
    }
  }
  return Status::OK();
}

Result<common::JsonValue> Service::DiagnosesJson(const std::string& tenant) {
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);
  common::JsonValue::Array out;
  std::lock_guard lock(t->diag_mu);
  for (const TenantDiagnosis& d : t->diagnoses) {
    common::JsonValue::Object entry;
    common::JsonValue::Object region;
    region["start"] = d.region.start;
    region["end"] = d.region.end;
    entry["region"] = common::JsonValue(std::move(region));
    common::JsonValue::Array causes;
    for (const core::RankedCause& c : d.explanation.causes) {
      common::JsonValue::Object cause;
      cause["cause"] = c.cause;
      cause["confidence"] = c.confidence;
      if (!c.suggested_action.empty()) {
        cause["action"] = c.suggested_action;
      }
      causes.push_back(common::JsonValue(std::move(cause)));
    }
    entry["causes"] = common::JsonValue(std::move(causes));
    entry["predicates"] = d.explanation.PredicatesToString();
    entry["latency_us"] = d.latency_us;
    out.push_back(common::JsonValue(std::move(entry)));
  }
  return common::JsonValue(std::move(out));
}

namespace {

/// Scan-side observability for QUERY/DIAGNOSE_RANGE responses: how much
/// the zone maps pruned.
common::JsonValue ScanStatsJson(const store::ScanStats& stats) {
  common::JsonValue::Object scan;
  scan["segments"] = static_cast<double>(stats.segments_total);
  scan["segments_skipped_time"] =
      static_cast<double>(stats.segments_skipped_time);
  scan["segments_skipped_zone"] =
      static_cast<double>(stats.segments_skipped_zone);
  scan["segments_decoded"] = static_cast<double>(stats.segments_decoded);
  return common::JsonValue(std::move(scan));
}

}  // namespace

Result<common::JsonValue> Service::QueryJson(
    const std::string& tenant, double t0, double t1,
    const std::vector<store::AttributeBound>& bounds) {
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetCounter("service.queries")->Increment();
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);
  if (t->history == nullptr) {
    return Status::FailedPrecondition(
        "history store not configured (start dbsherlockd with --store-dir)");
  }
  store::ScanOptions scan;
  scan.t0 = t0;
  scan.t1 = t1;
  scan.bounds = bounds;
  scan.max_rows = options_.max_query_rows;
  store::ScanStats stats;
  auto scanned = t->history->ScanWithOptions(scan, &stats);
  if (!scanned.ok()) return scanned.status();

  common::JsonValue::Object out;
  out["tenant"] = tenant;
  out["t0"] = t0;
  out["t1"] = t1;
  if (stats.truncated) out["truncated"] = true;
  out["rows"] = static_cast<double>(scanned->num_rows());
  out["csv"] = tsdata::DatasetToCsv(*scanned);
  out["scan"] = ScanStatsJson(stats);
  return common::JsonValue(std::move(out));
}

Result<common::JsonValue> Service::DiagnoseRangeJson(
    const std::string& tenant, double t0, double t1) {
  TRACE_SPAN("service.diagnose_range");
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetCounter("service.range_diagnoses")->Increment();
  common::ScopedLatency timer(
      metrics.GetHistogram("service.range_diagnosis_us"));
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);
  if (t->history == nullptr) {
    return Status::FailedPrecondition(
        "history store not configured (start dbsherlockd with --store-dir)");
  }
  // The user designated [t0, t1) as abnormal (the paper's workflow); pad
  // the scan with surrounding context so predicate separation has normal
  // rows to compare against. The window is stitched incrementally from
  // the store's pushdown scan — segments outside the padded range are
  // never read — and the row cap stops a hostile range before it can
  // inflate the daemon's memory.
  double context = (t1 - t0) * std::max(0.0, options_.range_context_factor);
  store::ScanOptions scan;
  scan.t0 = t0 - context;
  scan.t1 = t1 + context;
  scan.max_rows = options_.max_range_rows;
  tsdata::Dataset window(t->history->schema());
  store::ScanVisitor visitor;
  visitor.on_chunk = [&](const tsdata::Dataset& chunk) -> Status {
    std::vector<tsdata::Cell> cells(chunk.num_attributes());
    for (size_t row = 0; row < chunk.num_rows(); ++row) {
      for (size_t i = 0; i < chunk.num_attributes(); ++i) {
        const tsdata::Column& column = chunk.column(i);
        if (column.kind() == tsdata::AttributeKind::kNumeric) {
          cells[i] = column.numeric(row);
        } else {
          cells[i] = column.CategoryName(column.code(row));
        }
      }
      DBSHERLOCK_RETURN_NOT_OK(
          window.AppendRowUnchecked(chunk.timestamp(row), cells));
    }
    return Status::OK();
  };
  visitor.on_reset = [&] { window = tsdata::Dataset(t->history->schema()); };
  store::ScanStats stats;
  DBSHERLOCK_RETURN_NOT_OK(t->history->ScanVisit(scan, visitor, &stats));
  if (stats.truncated) {
    metrics.GetCounter("service.range_diagnoses_capped")->Increment();
    return Status::ResourceExhausted(common::StrFormat(
        "range window holds more than %zu stored rows "
        "(--max-range-rows); narrow [t0, t1) or raise the cap",
        options_.max_range_rows));
  }
  size_t abnormal_rows = window.RowsInTimeRange(t0, t1).size();
  if (abnormal_rows == 0) {
    return Status::NotFound(common::StrFormat(
        "no stored rows in [%g, %g) for tenant %s", t0, t1,
        tenant.c_str()));
  }
  if (window.num_rows() == abnormal_rows) {
    return Status::FailedPrecondition(
        "no normal context rows around the region; widen retention or "
        "range_context_factor");
  }

  tsdata::DiagnosisRegions regions;
  regions.abnormal = tsdata::RegionSpec({tsdata::TimeRange{t0, t1}});
  core::Explanation explanation = explainer_.Diagnose(window, regions);
  if (options_.store != nullptr) {
    tsdata::LabeledRows rows = tsdata::SplitRows(window, regions);
    explanation.causes =
        options_.store->Rank(window, rows,
                             options_.explainer.predicate_options,
                             options_.min_confidence);
  }

  common::JsonValue::Object out;
  common::JsonValue::Object region;
  region["start"] = t0;
  region["end"] = t1;
  out["region"] = common::JsonValue(std::move(region));
  out["rows"] = static_cast<double>(window.num_rows());
  out["scan"] = ScanStatsJson(stats);
  common::JsonValue::Array causes;
  for (const core::RankedCause& c : explanation.causes) {
    common::JsonValue::Object cause;
    cause["cause"] = c.cause;
    cause["confidence"] = c.confidence;
    if (!c.suggested_action.empty()) cause["action"] = c.suggested_action;
    causes.push_back(common::JsonValue(std::move(cause)));
  }
  out["causes"] = common::JsonValue(std::move(causes));
  out["predicates"] = explanation.PredicatesToString();
  return common::JsonValue(std::move(out));
}

Result<common::JsonValue> Service::ExplainQueryJson(
    const std::string& tenant, const std::string& query_text) {
  TRACE_SPAN("service.explain_query");
  auto& metrics = common::MetricsRegistry::Global();
  metrics.GetCounter("service.explain_queries")->Increment();
  common::ScopedLatency timer(
      metrics.GetHistogram("service.explain_query_us"));
  auto found = tenants_.Find(tenant);
  if (!found.ok()) return found.status();
  std::shared_ptr<Tenant> t = std::move(*found);

  auto parsed = query::Parse(query_text);
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind == query::QueryKind::kDescribe &&
      !parsed->tenant.empty() && parsed->tenant != tenant) {
    return Status::InvalidArgument("DESCRIBE tenant '" + parsed->tenant +
                                   "' does not match the request tenant '" +
                                   tenant + "'");
  }

  query::CompileContext compile_context;
  compile_context.schema = &t->schema;
  compile_context.history = t->history.get();
  auto compiled = query::Compile(*parsed, query_text, compile_context);
  if (!compiled.ok()) return compiled.status();

  query::ExecutionContext exec_context;
  exec_context.schema = &t->schema;
  exec_context.history = t->history.get();
  exec_context.explainer = &explainer_;
  if (options_.store != nullptr) {
    // Rank against the fleet-wide durable corpus, not the explainer's
    // own (empty) repository — same path as background diagnoses.
    exec_context.rank = [this](const tsdata::Dataset& window,
                               const tsdata::DiagnosisRegions& regions) {
      tsdata::LabeledRows rows = tsdata::SplitRows(window, regions);
      return options_.store->Rank(window, rows,
                                  options_.explainer.predicate_options,
                                  options_.min_confidence);
    };
    exec_context.models = options_.store->num_models();
  }
  {
    std::lock_guard lock(t->diag_mu);
    exec_context.diagnoses = t->diag_completed;
  }

  query::ExecutorOptions exec_options;
  exec_options.max_rows = options_.max_range_rows;
  exec_options.range_context_factor =
      std::max(0.0, options_.range_context_factor);
  exec_options.detector = options_.explainer.detector_options;
  exec_options.parallelism = options_.explainer.predicate_options.parallelism;
  auto report = query::Execute(*compiled, exec_context, exec_options);
  if (!report.ok()) return report.status();
  report->tenant = tenant;

  common::JsonValue json = query::ReportToJson(*report);
  json.as_object()["markdown"] = query::RenderMarkdown(*report);
  return json;
}

void Service::NoteDurabilityError(const char* path,
                                  const common::Status& status) {
  std::lock_guard lock(health_mu_);
  if (health_state_ == HealthState::kDraining) return;
  if (health_state_ != HealthState::kDegraded) {
    health_state_ = HealthState::kDegraded;
    ++degraded_entries_;
    common::MetricsRegistry::Global()
        .GetCounter("service.degraded_entries")
        ->Increment();
  }
  health_reason_ = std::string(path) + ": " + status.ToString();
  common::MetricsRegistry::Global().GetGauge("service.degraded")->Set(1.0);
}

void Service::NoteDurabilityOk() {
  std::lock_guard lock(health_mu_);
  if (health_state_ != HealthState::kDegraded) return;
  health_state_ = HealthState::kOk;
  health_reason_.clear();
  common::MetricsRegistry::Global().GetGauge("service.degraded")->Set(0.0);
}

Service::HealthState Service::health() const {
  std::lock_guard lock(health_mu_);
  return health_state_;
}

common::JsonValue Service::HealthJson() const {
  std::lock_guard lock(health_mu_);
  common::JsonValue::Object out;
  switch (health_state_) {
    case HealthState::kOk:
      out["state"] = std::string("ok");
      break;
    case HealthState::kDegraded:
      out["state"] = std::string("degraded");
      break;
    case HealthState::kDraining:
      out["state"] = std::string("draining");
      break;
  }
  if (!health_reason_.empty()) out["reason"] = health_reason_;
  out["degraded_entries"] = static_cast<double>(degraded_entries_);
  return common::JsonValue(std::move(out));
}

common::JsonValue Service::StatsJson() const {
  common::JsonValue::Object out;
  // The kernel ISA the diagnosis engine dispatched to (DESIGN.md §12) —
  // lets an operator confirm what a given deployment actually runs.
  out["simd_isa"] = std::string(
      common::simd::IsaName(common::simd::ActiveIsa()));
  out["acked"] = static_cast<double>(total_acked_.load());
  out["shed"] = static_cast<double>(total_shed_.load());
  out["alerts"] = static_cast<double>(total_alerts_.load());
  out["diagnoses"] = static_cast<double>(total_diagnoses_.load());
  out["diagnoses_deduped"] = static_cast<double>(total_deduped_.load());
  out["replayed"] = static_cast<double>(total_replayed_.load());
  out["health"] = HealthJson();
  if (common::faultenv::Enabled()) {
    common::JsonValue::Object faults;
    faults["schedule"] = common::faultenv::ActiveSpec();
    faults["injected"] =
        static_cast<double>(common::faultenv::InjectedCount());
    faults["sites"] = common::faultenv::StatsJson();
    out["faultenv"] = common::JsonValue(std::move(faults));
  }
  auto& tenants = const_cast<TenantManager&>(tenants_);
  common::JsonValue::Object per_tenant;
  for (const std::string& name : tenants.Names()) {
    auto found = tenants.Find(name);
    if (!found.ok()) continue;
    const std::shared_ptr<Tenant>& t = *found;
    common::JsonValue::Object entry;
    {
      std::lock_guard lock(t->mu);
      entry["acked"] = static_cast<double>(t->acked);
      entry["processed"] = static_cast<double>(t->processed);
      entry["shed"] = static_cast<double>(t->shed);
      entry["queue_depth"] = static_cast<double>(t->queue.size());
    }
    {
      std::lock_guard lock(t->diag_mu);
      entry["diagnoses"] = static_cast<double>(t->diag_completed);
      entry["diagnoses_deduped"] = static_cast<double>(t->diag_deduped);
    }
    if (t->history != nullptr) {
      common::JsonValue::Object history;
      history["segments"] = static_cast<double>(t->history->num_segments());
      history["sealed_rows"] =
          static_cast<double>(t->history->sealed_rows());
      history["sealed_bytes"] =
          static_cast<double>(t->history->sealed_bytes());
      history["active_rows"] =
          static_cast<double>(t->history->active_rows());
      history["compression_ratio"] = t->history->compression_ratio();
      history["retention_deletes"] =
          static_cast<double>(t->history->retention_deletes());
      history["scans"] = static_cast<double>(t->history->scans_total());
      history["scan_segments_skipped"] =
          static_cast<double>(t->history->scan_segments_skipped());
      history["scan_segments_decoded"] =
          static_cast<double>(t->history->scan_segments_decoded());
      history["scan_retries"] =
          static_cast<double>(t->history->scan_retries());
      entry["history"] = common::JsonValue(std::move(history));
    }
    per_tenant[name] = common::JsonValue(std::move(entry));
  }
  out["tenants"] = common::JsonValue(std::move(per_tenant));
  out["evictions"] = static_cast<double>(tenants.evictions());
  if (options_.store != nullptr) {
    common::JsonValue::Object store;
    store["models"] = static_cast<double>(options_.store->num_models());
    store["wal_records"] =
        static_cast<double>(options_.store->wal_records());
    store["compactions"] =
        static_cast<double>(options_.store->compactions());
    out["store"] = common::JsonValue(std::move(store));
  }
  return common::JsonValue(std::move(out));
}

common::JsonValue Service::ModelsJson() const {
  if (options_.store == nullptr) {
    return common::JsonValue(common::JsonValue::Object{});
  }
  return core::RepositoryToJson(options_.store->SnapshotRepository());
}

common::JsonValue Service::ModelSyncJson(uint64_t since_seq) const {
  common::JsonValue::Object out;
  uint64_t last_seq = 0;
  common::JsonValue::Array models;
  if (options_.store != nullptr) {
    last_seq = options_.store->next_seq() - 1;
    if (last_seq > since_seq) {
      core::ModelRepository repo = options_.store->SnapshotRepository();
      models.reserve(repo.models().size());
      for (const core::CausalModel& model : repo.models()) {
        models.push_back(core::CausalModelToJson(model));
      }
    }
  }
  common::JsonValue models_json{std::move(models)};
  std::string text = models_json.Dump();
  out["last_seq"] = static_cast<double>(last_seq);
  out["crc"] = static_cast<double>(Crc32(text.data(), text.size()));
  out["models"] = std::move(models_json);
  return common::JsonValue(std::move(out));
}

void Service::Stop() {
  if (stopped_.exchange(true)) return;
  accepting_.store(false);
  {
    std::lock_guard lock(health_mu_);
    health_state_ = HealthState::kDraining;
    health_reason_.clear();
  }
  // Drain every acked row and in-flight diagnosis before the workers go:
  // Stop never discards acknowledged work.
  (void)FlushAll();
  {
    std::lock_guard lock(ready_mu_);
    stop_ingest_ = true;
    ready_cv_.notify_all();
  }
  for (std::thread& t : ingest_threads_) t.join();
  // Clean shutdown persists the active tail: only a hard kill can lose
  // unsealed rows.
  for (const std::string& name : tenants_.Names()) {
    auto found = tenants_.Find(name);
    if (found.ok() && (*found)->history != nullptr) {
      (void)(*found)->history->Seal();
    }
  }
  {
    std::lock_guard lock(diag_queue_mu_);
    stop_diag_ = true;
    diag_cv_.notify_all();
  }
  for (std::thread& t : diag_threads_) t.join();
}

}  // namespace dbsherlock::service
