#ifndef DBSHERLOCK_SERVICE_MODEL_STORE_H_
#define DBSHERLOCK_SERVICE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/model_repository.h"

namespace dbsherlock::service {

/// Reflected CRC-32 (poly 0xEDB88320, zlib variant). Shared by the WAL
/// record framing below and the MODELSYNC replication payload check, so
/// both ends of a model transfer agree on the checksum byte-for-byte.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Durability layer around core::ModelRepository: the causal knowledge the
/// service accumulates (Section 6 of the paper, "over the lifetime of a
/// database operation") must survive daemon restarts, and is shared by
/// every tenant. Writes go through an append-only write-ahead log and are
/// acknowledged only after the record is on disk; a periodic snapshot
/// compacts the log.
///
/// On-disk layout under Options::dir:
///   snapshot.json   {"version":1,"last_seq":N,"repository":{model_io doc}}
///   wal.log         a sequence of records, each:
///
///     offset  size  field
///     0       4     payload length `len` (uint32, little-endian)
///     4       4     CRC-32 (reflected, poly 0xEDB88320) of bytes [8, 16+len)
///     8       8     sequence number (uint64, little-endian, starts at 1)
///     16      len   payload: one causal model, compact model_io JSON
///
/// Recovery loads the snapshot (if any), then replays WAL records with
/// seq > snapshot.last_seq through ModelRepository::Add (the same merge
/// path as the original writes). A torn tail — short header, short
/// payload, CRC mismatch, or unparsable payload — ends replay: the file is
/// truncated back to the last good record exactly once and the daemon
/// continues; every previously acknowledged Add is still present because
/// acknowledgment happens only after a full record (and optional fsync)
/// hit the file.
class DurableModelStore {
 public:
  struct Options {
    /// Directory for snapshot.json + wal.log; created if missing (one
    /// level). Empty = volatile store: same API, nothing persisted.
    std::string dir;
    /// fsync the WAL after every Add (the durable-by-default contract).
    /// Benchmarks may disable it to measure the queueing path alone.
    bool fsync_each_append = true;
    /// Compact (snapshot + truncate WAL) after this many log records.
    size_t compact_after_records = 256;
    /// Test-only crash injection: when < SIZE_MAX, the next Add writes
    /// only this many bytes of its record, marks the store failed, and
    /// returns IoError — simulating the process dying mid-append.
    size_t fail_append_after_bytes = SIZE_MAX;
  };

  /// What recovery found; available via recovery() for tests/logs.
  struct RecoveryReport {
    size_t snapshot_models = 0;     // models loaded from snapshot.json
    size_t wal_records_applied = 0; // replayed (seq > snapshot.last_seq)
    size_t wal_records_skipped = 0; // already covered by the snapshot
    uint64_t truncated_bytes = 0;   // torn tail discarded from wal.log
  };

  /// Opens (and recovers) the store. Fails on unreadable/corrupt snapshot
  /// or an unwritable directory — but never on a torn WAL tail.
  static common::Result<std::unique_ptr<DurableModelStore>> Open(
      Options options);

  ~DurableModelStore();

  DurableModelStore(const DurableModelStore&) = delete;
  DurableModelStore& operator=(const DurableModelStore&) = delete;

  /// Appends the model to the WAL (fsync per Options), then merges it into
  /// the in-memory repository. Thread-safe. On IoError nothing was
  /// acknowledged and the in-memory state is unchanged.
  common::Status Add(const core::CausalModel& model);

  /// Ranks the stored causes against an anomaly (thread-safe, shared lock;
  /// see ModelRepository::Rank).
  std::vector<core::RankedCause> Rank(
      const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
      const core::PredicateGenOptions& options, double min_confidence) const;

  /// Copy of the current repository (MODELS responses, tests).
  core::ModelRepository SnapshotRepository() const;

  size_t num_models() const;
  uint64_t next_seq() const;
  size_t wal_records() const;
  uint64_t compactions() const { return compactions_; }
  /// True once a write failure could not be unwound (the WAL may hold a
  /// torn record); all further writes fail until the store is reopened.
  bool failed() const {
    std::shared_lock lock(mu_);
    return failed_;
  }
  const RecoveryReport& recovery() const { return recovery_; }
  const Options& options() const { return options_; }

  /// Forces a snapshot + WAL truncation now. No-op for volatile stores.
  common::Status Compact();

 private:
  explicit DurableModelStore(Options options);

  common::Status RecoverLocked();
  common::Status AppendRecordLocked(const core::CausalModel& model);
  common::Status CompactLocked();
  std::string SnapshotPath() const;
  std::string WalPath() const;

  Options options_;
  mutable std::shared_mutex mu_;
  core::ModelRepository repo_;
  uint64_t next_seq_ = 1;       // seq the next Add will write
  uint64_t snapshot_seq_ = 0;   // last seq folded into snapshot.json
  size_t wal_records_ = 0;      // live records in wal.log
  uint64_t compactions_ = 0;
  int wal_fd_ = -1;             // -1 for volatile stores
  bool failed_ = false;         // unrecoverable write failure; writes fail
  RecoveryReport recovery_;
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_MODEL_STORE_H_
