#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/faultenv.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

Status SendAll(int fd, const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t w = common::faultenv::Send(
        "srv.send", fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

Server::Server(Options options) : options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(Options options) {
  if (options.service == nullptr) {
    return Status::InvalidArgument("Server needs a Service");
  }
  auto server = std::unique_ptr<Server>(new Server(std::move(options)));

  if (server->options_.io_mode == IoMode::kEpoll) {
    DBSHERLOCK_RETURN_NOT_OK(server->StartEpoll());
    return server;
  }

  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (::inet_pton(AF_INET, server->options_.host.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " +
                                   server->options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status status(common::StatusCode::kIoError,
                  std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  server->listen_fd_ = fd;
  server->port_ = ntohs(addr.sin_port);
  // One warm worker up front; AcceptLoop grows the pool with the live
  // connection count.
  server->workers_ = std::make_unique<common::ThreadPool>(1);
  server->accept_thread_ = std::thread([srv = server.get()] {
    srv->AcceptLoop();
  });
  common::MetricsRegistry::Global().GetCounter("server.connections");
  return server;
}

Server::~Server() { Stop(); }

Status Server::StartEpoll() {
  fleet::EventLoop::Options loop_options;
  loop_options.host = options_.host;
  loop_options.port = options_.port;
  loop_options.max_connections = options_.max_connections;
  loop_options.max_line_bytes = options_.max_line_bytes;
  loop_options.idle_timeout_ms = options_.idle_timeout_ms;
  loop_options.handler_threads = options_.handler_threads;
  // The loop is protocol-agnostic; render its canned responses with the
  // same wire helpers the dispatcher uses so both modes stay
  // byte-identical on the wire.
  loop_options.shed_response = RetryAfterLine(options_.accept_retry_after_ms);
  loop_options.oversized_response =
      ErrLine(Status::ParseError("request line too long"));
  loop_options.handler = [this](const std::string& line, bool* quit) {
    return HandleLine(line, quit);
  };
  loop_options.offload = [](const std::string& line) {
    return ShouldOffload(line);
  };
  auto loop = fleet::EventLoop::Start(std::move(loop_options));
  if (!loop.ok()) return loop.status();
  loop_ = std::move(*loop);
  port_ = loop_->port();
  return Status::OK();
}

bool Server::ShouldOffload(const std::string& line) {
  // Inline (loop-thread) verbs must never block: PING/QUIT are trivial
  // and APPEND's bounded queue sheds instead of blocking. Everything
  // else — FLUSH waits on drains, TEACH fsyncs the WAL, HELLO may open a
  // history store, reads serialize JSON under locks — goes to the pool.
  if (line.empty()) return false;  // cheap parse error
  if (line[0] == '{') {
    // JSON append is inline; JSON hello (store I/O) is not.
    return line.find("\"op\":\"append\"") == std::string::npos;
  }
  size_t end = line.find_first_of(" \t\r");
  std::string_view verb(line.data(), end == std::string::npos ? line.size()
                                                              : end);
  return !(verb == "APPEND" || verb == "APPENDSEQ" || verb == "PING" ||
           verb == "QUIT");
}

size_t Server::live_connections() const {
  if (loop_ != nullptr) return loop_->live_connections();
  std::lock_guard lock(conn_mu_);
  return conn_fds_.size();
}

void Server::AcceptLoop() {
  for (;;) {
    int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // Stop() already claimed the fd
    int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd shut down by Stop (or fatal accept error)
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto& metrics = common::MetricsRegistry::Global();
    size_t live;
    {
      std::lock_guard lock(conn_mu_);
      if (conn_fds_.size() >= options_.max_connections) {
        // Shed with a retry hint instead of an opaque error: the client
        // backs off (BackoffSleepMs honors RETRY_AFTER) and no thread is
        // spent on a connection we cannot serve.
        (void)SendAll(fd,
                      RetryAfterLine(options_.accept_retry_after_ms) + "\n");
        ::close(fd);
        accepts_shed_.fetch_add(1, std::memory_order_relaxed);
        metrics.GetCounter("server.accepts_shed")->Increment();
        continue;
      }
      conn_fds_.insert(fd);
      live = conn_fds_.size();
    }
    connections_handled_.fetch_add(1, std::memory_order_relaxed);
    metrics.GetCounter("server.connections")->Increment();
    metrics.GetGauge("server.connections_live")
        ->Set(static_cast<double>(live));
    // Each live connection needs a dedicated worker: readers block in
    // recv, so the pool must match the connection count.
    workers_->EnsureAtLeast(live);
    workers_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  auto& metrics = common::MetricsRegistry::Global();
  if (options_.idle_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    ssize_t r = common::faultenv::Recv("srv.recv", fd, chunk, sizeof(chunk),
                                       0);
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The idle read timeout expired: a slow-loris peer (or one that
      // simply left) does not get to hold a worker forever.
      metrics.GetCounter("server.idle_timeouts")->Increment();
      break;
    }
    if (r <= 0) break;  // peer closed, error, or Stop's shutdown()
    buffer.append(chunk, static_cast<size_t>(r));
    size_t newline;
    while (!quit && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.size() > options_.max_line_bytes) {
        metrics.GetCounter("server.oversized_lines")->Increment();
        (void)SendAll(
            fd, ErrLine(Status::ParseError("request line too long")) + "\n");
        quit = true;
        break;
      }
      std::string response = HandleLine(line, &quit);
      if (!SendAll(fd, response + "\n").ok()) {
        quit = true;
        break;
      }
    }
    // A partial line past the cap can never complete into a valid
    // request; shed it before it eats the worker's memory.
    if (!quit && buffer.size() > options_.max_line_bytes) {
      metrics.GetCounter("server.oversized_lines")->Increment();
      (void)SendAll(
          fd, ErrLine(Status::ParseError("request line too long")) + "\n");
      break;
    }
  }
  // Deregister before close so Stop never shutdown()s a recycled fd, and
  // so the live gauge drops the moment the connection stops being served
  // (not when its thread is eventually joined).
  size_t live;
  {
    std::lock_guard lock(conn_mu_);
    conn_fds_.erase(fd);
    live = conn_fds_.size();
    conn_done_.notify_all();
  }
  metrics.GetGauge("server.connections_live")
      ->Set(static_cast<double>(live));
  ::close(fd);
}

std::string Server::HandleLine(const std::string& line, bool* quit) {
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) return ErrLine(parsed.status());
  Request& request = *parsed;
  Service& service = *options_.service;

  switch (request.op) {
    case RequestOp::kPing:
      return OkLine("pong");
    case RequestOp::kQuit:
      *quit = true;
      return OkLine("bye");
    case RequestOp::kHello: {
      std::optional<TenantManager::Retention> retain;
      if (request.has_retain) {
        retain = TenantManager::Retention{request.retain_bytes,
                                          request.retain_age_sec};
      }
      Status status = service.Hello(request.tenant, request.schema, retain);
      if (!status.ok()) return ErrLine(status);
      std::string detail = common::StrFormat(
          "tenant %s attrs %zu", request.tenant.c_str(),
          request.schema.num_attributes());
      // The durable high-water timestamp, when history exists: rows after
      // it did not survive a crash, so an idempotent writer resumes from
      // the first row strictly after this point.
      auto tenant = service.tenants().Find(request.tenant);
      if (tenant.ok() && (*tenant)->history != nullptr) {
        if (auto last = (*tenant)->history->durable_last_ts()) {
          detail += common::StrFormat(" last_ts %.17g", *last);
        }
      }
      return OkLine(detail);
    }
    case RequestOp::kAppend: {
      std::vector<tsdata::Cell> cells;
      if (request.cells_typed) {
        cells = std::move(request.cells);
      } else {
        // CSV cells are typed against the tenant's schema here (the wire
        // layer is schema-blind).
        auto tenant = service.tenants().Find(request.tenant);
        if (!tenant.ok()) return ErrLine(tenant.status());
        const tsdata::Schema& schema = (*tenant)->schema;
        if (request.raw_cells.size() != schema.num_attributes()) {
          return ErrLine(Status::InvalidArgument(common::StrFormat(
              "row has %zu cells, schema has %zu attributes",
              request.raw_cells.size(), schema.num_attributes())));
        }
        cells.reserve(request.raw_cells.size());
        for (size_t i = 0; i < request.raw_cells.size(); ++i) {
          if (schema.attribute(i).kind == tsdata::AttributeKind::kNumeric) {
            auto value = common::ParseDouble(request.raw_cells[i]);
            if (!value.ok()) return ErrLine(value.status());
            cells.emplace_back(*value);
          } else {
            cells.emplace_back(request.raw_cells[i]);
          }
        }
      }
      std::optional<uint64_t> client_seq;
      if (request.has_client_seq) client_seq = request.client_seq;
      auto outcome = service.Append(request.tenant, request.timestamp,
                                    std::move(cells), client_seq);
      if (!outcome.ok()) return ErrLine(outcome.status());
      if (!outcome->accepted) return RetryAfterLine(outcome->retry_after_ms);
      return OkLine(common::StrFormat(
          "%llu%s", static_cast<unsigned long long>(outcome->seq),
          outcome->replayed ? " replayed" : ""));
    }
    case RequestOp::kTeach: {
      Status status = service.Teach(request.model);
      if (!status.ok()) return ErrLine(status);
      return OkLine("taught " + request.model.cause);
    }
    case RequestOp::kFlush: {
      Status status = service.Flush(request.tenant);
      if (!status.ok()) return ErrLine(status);
      return OkLine("flushed");
    }
    case RequestOp::kDiagnoses: {
      auto diagnoses = service.DiagnosesJson(request.tenant);
      if (!diagnoses.ok()) return ErrLine(diagnoses.status());
      return OkLine(diagnoses->Dump());
    }
    case RequestOp::kQuery: {
      auto rows = service.QueryJson(request.tenant, request.t0, request.t1,
                                    request.bounds);
      if (!rows.ok()) return ErrLine(rows.status());
      return OkLine(rows->Dump());
    }
    case RequestOp::kDiagnoseRange: {
      auto diagnosis =
          service.DiagnoseRangeJson(request.tenant, request.t0, request.t1);
      if (!diagnosis.ok()) return ErrLine(diagnosis.status());
      return OkLine(diagnosis->Dump());
    }
    case RequestOp::kExplainQuery: {
      auto report =
          service.ExplainQueryJson(request.tenant, request.query_text);
      if (!report.ok()) return ErrLine(report.status());
      return OkLine(report->Dump());
    }
    case RequestOp::kStats:
      return OkLine(service.StatsJson().Dump());
    case RequestOp::kModels:
      return OkLine(service.ModelsJson().Dump());
    case RequestOp::kModelSync:
      return OkLine(service.ModelSyncJson(request.model_sync_since).Dump());
    case RequestOp::kHealth:
      return OkLine(service.HealthJson().Dump());
  }
  return ErrLine(Status::Internal("unhandled request op"));
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  if (loop_ != nullptr) {
    loop_->Stop();
    return;
  }
  // shutdown() pops AcceptLoop out of accept(); the fd is closed only
  // after the accept thread joins, so its number cannot be recycled
  // under a racing accept4().
  int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  // shutdown() unblocks every reader stuck in recv; each handler then
  // closes its own fd and deregisters.
  {
    std::unique_lock lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_done_.wait(lock, [this] { return conn_fds_.empty(); });
  }
  workers_.reset();  // joins handler threads
}

}  // namespace dbsherlock::service
