#include "service/wire.h"

#include <cmath>

#include "common/json.h"
#include "common/strings.h"
#include "core/model_io.h"

namespace dbsherlock::service {

namespace {

using common::Result;
using common::Status;

constexpr size_t kMaxTenantName = 64;

/// Splits "VERB rest" into the verb and the remainder (verb uppercase by
/// convention but matched case-sensitively: the protocol is machine
/// generated).
std::pair<std::string, std::string> SplitVerb(const std::string& line) {
  size_t space = line.find(' ');
  if (space == std::string::npos) return {line, ""};
  return {line.substr(0, space), line.substr(space + 1)};
}

bool IsFieldSpace(char c) { return c == ' ' || c == '\t'; }

/// Pops the next field off `*rest`: skips leading spaces/tabs, takes
/// characters up to the next run, and strips the remainder's leading
/// whitespace too. Every fixed-arity verb argument goes through this, so
/// tabs and repeated spaces parse the same as single spaces — in every
/// field position, not just the last one.
std::string NextField(std::string* rest) {
  size_t begin = 0;
  while (begin < rest->size() && IsFieldSpace((*rest)[begin])) ++begin;
  size_t end = begin;
  while (end < rest->size() && !IsFieldSpace((*rest)[end])) ++end;
  std::string field = rest->substr(begin, end - begin);
  while (end < rest->size() && IsFieldSpace((*rest)[end])) ++end;
  rest->erase(0, end);
  return field;
}

/// Parses QUERY's WHERE trailer: ';'-separated `attr>=v` / `attr<=v`
/// clauses, conjunctive. Whitespace around clauses is ignored.
Status ParseWhereClauses(const std::string& text,
                         std::vector<store::AttributeBound>* bounds) {
  for (const std::string& raw : common::Split(text, ';')) {
    std::string clause(common::Trim(raw));
    if (clause.empty()) continue;
    size_t ge = clause.find(">=");
    size_t le = clause.find("<=");
    size_t op = std::min(ge, le);
    if (op == std::string::npos || op == 0) {
      return Status::InvalidArgument(
          "bad WHERE clause '" + clause + "' (want attr>=v or attr<=v)");
    }
    store::AttributeBound bound;
    bound.attribute = std::string(common::Trim(clause.substr(0, op)));
    auto value =
        common::ParseDouble(std::string(common::Trim(clause.substr(op + 2))));
    if (!value.ok() || std::isnan(*value)) {
      return Status::InvalidArgument("bad WHERE value in '" + clause + "'");
    }
    if (op == ge) {
      bound.lo = *value;
    } else {
      bound.hi = *value;
    }
    bounds->push_back(std::move(bound));
  }
  if (bounds->empty()) {
    return Status::InvalidArgument("WHERE without clauses");
  }
  return Status::OK();
}

Result<Request> ParseJsonRequest(const std::string& line) {
  auto json = common::ParseJson(line);
  if (!json.ok()) return json.status();
  auto op = json->GetString("op");
  if (!op.ok()) return op.status();

  Request request;
  auto tenant = json->GetString("tenant");
  if (!tenant.ok()) return tenant.status();
  request.tenant = *tenant;
  if (!ValidTenantName(request.tenant)) {
    return Status::InvalidArgument("invalid tenant name: " + request.tenant);
  }

  if (*op == "hello") {
    request.op = RequestOp::kHello;
    auto spec = json->GetString("schema");
    if (!spec.ok()) return spec.status();
    auto schema = ParseSchemaSpec(*spec);
    if (!schema.ok()) return schema.status();
    request.schema = std::move(*schema);
    // Optional retention clause (either key arms it; missing key = 0 =
    // unlimited on that axis).
    const common::JsonValue* bytes = json->Find("retain_bytes");
    const common::JsonValue* age = json->Find("retain_sec");
    if (bytes != nullptr || age != nullptr) {
      if (bytes != nullptr) {
        if (!bytes->is_number() || bytes->as_number() < 0) {
          return Status::InvalidArgument(
              "retain_bytes must be a non-negative number");
        }
        request.retain_bytes = static_cast<uint64_t>(bytes->as_number());
      }
      if (age != nullptr) {
        if (!age->is_number() || age->as_number() < 0) {
          return Status::InvalidArgument(
              "retain_sec must be a non-negative number");
        }
        request.retain_age_sec = age->as_number();
      }
      request.has_retain = true;
    }
    return request;
  }
  if (*op == "append") {
    request.op = RequestOp::kAppend;
    auto ts = json->GetNumber("ts");
    if (!ts.ok()) return ts.status();
    request.timestamp = *ts;
    if (const common::JsonValue* seq = json->Find("seq")) {
      if (!seq->is_number() || seq->as_number() < 0 ||
          seq->as_number() > 9e15) {
        return Status::InvalidArgument(
            "append seq must be a non-negative number");
      }
      request.has_client_seq = true;
      request.client_seq = static_cast<uint64_t>(seq->as_number());
    }
    auto cells = json->GetArray("cells");
    if (!cells.ok()) return cells.status();
    request.cells_typed = true;
    for (const common::JsonValue& cell : (*cells)->as_array()) {
      if (cell.is_number()) {
        request.cells.emplace_back(cell.as_number());
      } else if (cell.is_string()) {
        request.cells.emplace_back(cell.as_string());
      } else {
        return Status::InvalidArgument(
            "append cells must be numbers or strings");
      }
    }
    return request;
  }
  return Status::InvalidArgument("unknown JSON op: " + *op);
}

}  // namespace

bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > kMaxTenantName) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string FormatSchemaSpec(const tsdata::Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    const tsdata::AttributeSpec& spec = schema.attribute(i);
    out += spec.name;
    out += spec.kind == tsdata::AttributeKind::kNumeric ? ":num" : ":cat";
  }
  return out;
}

Result<tsdata::Schema> ParseSchemaSpec(const std::string& spec) {
  if (spec.empty()) return Status::InvalidArgument("empty schema spec");
  std::vector<tsdata::AttributeSpec> attributes;
  for (const std::string& field : common::Split(spec, ',')) {
    size_t colon = field.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("bad schema field '" + field +
                                     "' (want name:num or name:cat)");
    }
    tsdata::AttributeSpec attr;
    attr.name = field.substr(0, colon);
    std::string kind = field.substr(colon + 1);
    if (kind == "num") {
      attr.kind = tsdata::AttributeKind::kNumeric;
    } else if (kind == "cat") {
      attr.kind = tsdata::AttributeKind::kCategorical;
    } else {
      return Status::InvalidArgument("unknown attribute kind '" + kind + "'");
    }
    attributes.push_back(std::move(attr));
  }
  // Schema's constructor asserts on duplicates; build through AddAttribute
  // to surface them as a Status instead.
  tsdata::Schema schema;
  for (tsdata::AttributeSpec& attr : attributes) {
    DBSHERLOCK_RETURN_NOT_OK(schema.AddAttribute(std::move(attr)));
  }
  return schema;
}

std::string FormatCell(const tsdata::Cell& cell) {
  if (const double* v = std::get_if<double>(&cell)) {
    return common::StrFormat("%.17g", *v);
  }
  return std::get<std::string>(cell);
}

Result<Request> ParseRequestLine(const std::string& line_in) {
  std::string line = line_in;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return Status::InvalidArgument("empty request line");
  if (line[0] == '{') return ParseJsonRequest(line);

  std::string rest = line;
  std::string verb = NextField(&rest);
  Request request;
  if (verb == "PING") {
    request.op = RequestOp::kPing;
    return request;
  }
  if (verb == "QUIT") {
    request.op = RequestOp::kQuit;
    return request;
  }
  if (verb == "STATS") {
    request.op = RequestOp::kStats;
    return request;
  }
  if (verb == "MODELS") {
    request.op = RequestOp::kModels;
    return request;
  }
  if (verb == "MODELSYNC") {
    request.op = RequestOp::kModelSync;
    std::string since_text = NextField(&rest);
    auto since = common::ParseInt64(since_text);
    if (!since.ok() || *since < 0) {
      return Status::InvalidArgument("bad MODELSYNC since_seq: " +
                                     since_text);
    }
    if (!rest.empty()) {
      return Status::InvalidArgument("MODELSYNC takes only a sequence "
                                     "number");
    }
    request.model_sync_since = static_cast<uint64_t>(*since);
    return request;
  }
  if (verb == "HEALTH") {
    request.op = RequestOp::kHealth;
    return request;
  }
  if (verb == "DIAGNOSES" || verb == "FLUSH") {
    request.op =
        verb == "FLUSH" ? RequestOp::kFlush : RequestOp::kDiagnoses;
    request.tenant = NextField(&rest);
    if (!ValidTenantName(request.tenant)) {
      return Status::InvalidArgument("invalid tenant name: " +
                                     request.tenant);
    }
    if (!rest.empty()) {
      return Status::InvalidArgument(verb + " takes only a tenant name");
    }
    return request;
  }
  if (verb == "HELLO") {
    request.op = RequestOp::kHello;
    request.tenant = NextField(&rest);
    if (!ValidTenantName(request.tenant)) {
      return Status::InvalidArgument("invalid tenant name: " +
                                     request.tenant);
    }
    std::string spec = NextField(&rest);
    auto schema = ParseSchemaSpec(spec);
    if (!schema.ok()) return schema.status();
    request.schema = std::move(*schema);
    if (!rest.empty()) {
      std::string keyword = NextField(&rest);
      std::string bytes_text = NextField(&rest);
      std::string age_text = NextField(&rest);
      if (keyword != "RETAIN" || bytes_text.empty() || age_text.empty() ||
          !rest.empty()) {
        return Status::InvalidArgument(
            "HELLO trailer must be 'RETAIN <bytes> <age_sec>'");
      }
      auto bytes = common::ParseInt64(bytes_text);
      if (!bytes.ok() || *bytes < 0) {
        return Status::InvalidArgument("bad RETAIN bytes: " + bytes_text);
      }
      auto age = common::ParseDouble(age_text);
      if (!age.ok() || *age < 0) {
        return Status::InvalidArgument("bad RETAIN age_sec: " + age_text);
      }
      request.has_retain = true;
      request.retain_bytes = static_cast<uint64_t>(*bytes);
      request.retain_age_sec = *age;
    }
    return request;
  }
  if (verb == "QUERY" || verb == "DIAGNOSE_RANGE") {
    request.op = verb == "QUERY" ? RequestOp::kQuery
                                 : RequestOp::kDiagnoseRange;
    request.tenant = NextField(&rest);
    if (!ValidTenantName(request.tenant)) {
      return Status::InvalidArgument("invalid tenant name: " +
                                     request.tenant);
    }
    auto t0 = common::ParseDouble(NextField(&rest));
    if (!t0.ok()) return t0.status();
    auto t1 = common::ParseDouble(NextField(&rest));
    if (!t1.ok()) return t1.status();
    if (!(*t0 < *t1)) {
      return Status::InvalidArgument(
          common::StrFormat("%s needs t0 < t1", verb.c_str()));
    }
    request.t0 = *t0;
    request.t1 = *t1;
    if (!rest.empty()) {
      std::string keyword = NextField(&rest);
      if (verb != "QUERY" || keyword != "WHERE") {
        return Status::InvalidArgument(verb + " trailer must be a QUERY "
                                       "WHERE clause");
      }
      DBSHERLOCK_RETURN_NOT_OK(ParseWhereClauses(rest, &request.bounds));
    }
    return request;
  }
  if (verb == "EXPLAINQ") {
    request.op = RequestOp::kExplainQuery;
    request.tenant = NextField(&rest);
    if (!ValidTenantName(request.tenant)) {
      return Status::InvalidArgument("invalid tenant name: " +
                                     request.tenant);
    }
    // The DQL statement is everything after the tenant, verbatim — its
    // own lexer handles whitespace, so no field tokenization here.
    if (common::Trim(rest).empty()) {
      return Status::InvalidArgument("EXPLAINQ without a query");
    }
    request.query_text = rest;
    return request;
  }
  if (verb == "APPEND" || verb == "APPENDSEQ") {
    request.op = RequestOp::kAppend;
    request.tenant = NextField(&rest);
    if (!ValidTenantName(request.tenant)) {
      return Status::InvalidArgument("invalid tenant name: " +
                                     request.tenant);
    }
    if (verb == "APPENDSEQ") {
      std::string seq_text = NextField(&rest);
      auto seq = common::ParseInt64(seq_text);
      if (!seq.ok() || *seq < 0) {
        return Status::InvalidArgument("bad APPENDSEQ seq: " + seq_text);
      }
      request.has_client_seq = true;
      request.client_seq = static_cast<uint64_t>(*seq);
    }
    auto ts = common::ParseDouble(NextField(&rest));
    if (!ts.ok()) return ts.status();
    request.timestamp = *ts;
    // The cell text is NOT field-tokenized: categorical cells may contain
    // spaces, so everything after the timestamp splits on ',' alone.
    if (rest.empty()) {
      return Status::InvalidArgument("APPEND without cells");
    }
    request.raw_cells = common::Split(rest, ',');
    return request;
  }
  if (verb == "TEACH") {
    request.op = RequestOp::kTeach;
    auto json = common::ParseJson(rest);
    if (!json.ok()) return json.status();
    auto model = core::CausalModelFromJson(*json);
    if (!model.ok()) return model.status();
    request.model = std::move(*model);
    return request;
  }
  return Status::InvalidArgument("unknown verb: " + verb);
}

std::string OkLine(const std::string& detail) {
  return detail.empty() ? "OK" : "OK " + detail;
}

std::string RetryAfterLine(int millis) {
  return common::StrFormat("RETRY_AFTER %d", millis);
}

std::string ErrLine(const Status& status) {
  // Responses are single lines. A message with embedded newlines (DQL
  // caret diagnostics cite the query across three lines) — or one that
  // starts with '"' and would be mistaken for the encoded form — travels
  // as a JSON string literal; everything else is passed through verbatim,
  // keeping the common case byte-identical to older servers.
  const std::string& message = status.message();
  bool needs_encoding = !message.empty() && message.front() == '"';
  for (char c : message) {
    if (c == '\n' || c == '\r') {
      needs_encoding = true;
      break;
    }
  }
  std::string body =
      needs_encoding ? common::JsonValue(message).Dump() : message;
  return std::string("ERR ") + common::StatusCodeToString(status.code()) +
         " " + body;
}

Result<Response> ParseResponseLine(const std::string& line_in) {
  std::string line = line_in;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  auto [verb, rest] = SplitVerb(line);
  Response response;
  if (verb == "OK") {
    response.kind = Response::Kind::kOk;
    response.detail = rest;
    return response;
  }
  if (verb == "RETRY_AFTER") {
    response.kind = Response::Kind::kRetryAfter;
    auto millis = common::ParseInt64(common::Trim(rest));
    if (!millis.ok() || *millis < 0) {
      return Status::ParseError("bad RETRY_AFTER delay: " + rest);
    }
    response.retry_after_ms = static_cast<int>(*millis);
    return response;
  }
  if (verb == "ERR") {
    response.kind = Response::Kind::kErr;
    auto [code_name, message] = SplitVerb(rest);
    // Reconstruct the StatusCode from its stable name; unknown names (a
    // newer server) degrade to kInternal rather than failing the parse.
    common::StatusCode code = common::StatusCode::kInternal;
    for (int c = 0; c <= static_cast<int>(common::StatusCode::kInternal);
         ++c) {
      auto candidate = static_cast<common::StatusCode>(c);
      if (code_name == common::StatusCodeToString(candidate)) {
        code = candidate;
        break;
      }
    }
    // A leading '"' marks a JSON-encoded message (multi-line diagnostics);
    // decode it back. A parse failure means the quote was literal text
    // from an old server — keep the raw message rather than failing.
    if (!message.empty() && message.front() == '"') {
      auto decoded = common::ParseJson(message);
      if (decoded.ok() && decoded->is_string()) {
        message = decoded->as_string();
      }
    }
    response.error = common::Status(code, message);
    return response;
  }
  return Status::ParseError("unrecognized response line: " + line);
}

}  // namespace dbsherlock::service
