#ifndef DBSHERLOCK_SERVICE_TENANT_MANAGER_H_
#define DBSHERLOCK_SERVICE_TENANT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/streaming_monitor.h"
#include "store/tenant_store.h"
#include "tsdata/dataset.h"
#include "tsdata/schema.h"

namespace dbsherlock::service {

/// One row accepted from a tenant but not yet run through its monitor.
struct PendingRow {
  double timestamp = 0.0;
  std::vector<tsdata::Cell> cells;
};

/// One completed background diagnosis for a tenant.
struct TenantDiagnosis {
  tsdata::TimeRange region;
  core::Explanation explanation;
  double latency_us = 0.0;  // detector-alert to diagnosis-finished
};

/// Per-tenant pipeline state. Locking discipline (service-wide):
///
///   `mu` guards the ingest side: queue, scheduled, in_process, the acked /
///   processed / shed counters, and `evicted`. `drained` signals queue
///   transitions for Flush.
///
///   `monitor` is NOT guarded by a lock; it is owned by whichever worker
///   holds the `scheduled` flag (the single-drainer invariant: exactly one
///   thread drains a tenant's queue at a time, so monitor access is
///   naturally serialized and TSan-clean via the mu hand-off).
///
///   `diag_mu` guards the diagnosis side: pending jobs, in-flight count,
///   dedup watermark, and completed diagnoses. `diag_done` signals
///   completions for Flush.
///
/// Order: a thread may hold at most one of {manager map lock, mu, diag_mu}
/// except two documented edges: the manager's map lock -> mu/diag_mu
/// (eviction idle check), and the service's dispatch-queue lock -> diag_mu
/// (job scan) — never the reverse of either.
struct Tenant {
  explicit Tenant(std::string name_in) : name(std::move(name_in)) {}

  const std::string name;
  tsdata::Schema schema;

  std::mutex mu;
  std::condition_variable drained;
  std::deque<PendingRow> queue;
  bool scheduled = false;   // a worker owns (or is about to own) the drain
  size_t in_process = 0;    // rows taken from queue, not yet appended
  uint64_t acked = 0;       // rows accepted into the queue (wire-acked)
  uint64_t processed = 0;   // rows run through the monitor
  uint64_t shed = 0;        // rows refused with RETRY_AFTER
  /// Highest client idempotency seq applied (APPENDSEQ); 0 = none yet.
  /// Guarded by mu. Per server incarnation — not persisted: across a
  /// restart, duplicate replays are dropped by the store's
  /// strictly-increasing-timestamp rule instead.
  uint64_t last_client_seq = 0;
  bool evicted = false;     // tombstone: manager dropped it; re-HELLO

  /// Created on HELLO with diagnose_inline = false and metric_label =
  /// tenant name. Single-drainer access only (see above).
  std::unique_ptr<core::StreamingMonitor> monitor;

  /// Durable telemetry history (nullptr when the service runs without a
  /// --store-dir). Internally synchronized: the drain worker appends,
  /// any thread may Scan — no Tenant lock is involved.
  std::unique_ptr<store::TenantStore> history;

  std::mutex diag_mu;
  std::condition_variable diag_done;
  size_t diag_pending = 0;       // jobs queued for this tenant
  size_t diag_in_flight = 0;     // jobs running on the worker pool
  double diag_covered_until = -1e300;  // dedup watermark (region end)
  uint64_t diag_deduped = 0;     // alerts skipped as overlapping
  uint64_t diag_completed = 0;
  std::vector<TenantDiagnosis> diagnoses;

  std::atomic<uint64_t> last_used{0};  // manager LRU tick
};

/// Owns the tenant map: one StreamingMonitor pipeline per tenant, created
/// on first HELLO and evicted least-recently-used — but only when idle —
/// once the cap is reached. Thread-safe.
class TenantManager {
 public:
  struct Options {
    /// Soft cap on live tenants. On overflow the least-recently-used
    /// *idle* tenant (empty queue, no drain scheduled, no diagnosis in
    /// flight) is evicted; if every tenant is busy the cap is allowed to
    /// overshoot rather than tearing down a pipeline mid-flight.
    size_t max_tenants = 64;
    /// Monitor shape applied to every tenant's pipeline.
    core::StreamingMonitor::Options monitor;
    /// History store template. `store.dir` is the ROOT directory; each
    /// tenant gets `<root>/<name>`. Empty dir = history disabled (the
    /// pre-store in-memory-only behavior).
    store::TenantStore::Options store;
  };

  /// Per-tenant retention override carried by HELLO's RETAIN clause.
  struct Retention {
    uint64_t bytes = 0;      // 0 = unlimited
    double age_sec = 0.0;    // 0 = unlimited
  };

  explicit TenantManager(Options options);

  /// Finds or creates the tenant. Creating builds its monitor from the
  /// manager's options (diagnosis forced out-of-band, metrics labeled by
  /// tenant name), opens its history store when one is configured —
  /// recovering sealed segments and re-hydrating the monitor window from
  /// the stored tail — and arms `retain` if given (a re-HELLO with a
  /// RETAIN clause re-arms it). A second HELLO with a different schema
  /// fails with FailedPrecondition; an identical one is an idempotent
  /// no-op.
  common::Result<std::shared_ptr<Tenant>> Hello(
      const std::string& name, const tsdata::Schema& schema,
      const std::optional<Retention>& retain = std::nullopt);

  /// The tenant, or NotFound. Bumps its LRU tick.
  common::Result<std::shared_ptr<Tenant>> Find(const std::string& name);

  /// Names of live tenants (sorted, for STATS).
  std::vector<std::string> Names() const;

  size_t size() const;
  uint64_t evictions() const { return evictions_.load(); }

 private:
  /// Called with map_mu_ held; evicts idle LRU tenants down to the cap.
  void EvictLocked();

  Options options_;
  mutable std::mutex map_mu_;
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::atomic<uint64_t> clock_{1};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_TENANT_MANAGER_H_
