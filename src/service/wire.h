#ifndef DBSHERLOCK_SERVICE_WIRE_H_
#define DBSHERLOCK_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/causal_model.h"
#include "store/tenant_store.h"
#include "tsdata/dataset.h"
#include "tsdata/schema.h"

namespace dbsherlock::service {

/// The dbsherlockd wire protocol: newline-delimited requests, one response
/// line per request, over a plain TCP stream. Two request encodings share
/// one dispatch path:
///
///   Text (space-separated verb + args, cells as CSV):
///     HELLO <tenant> <name:kind[,name:kind...]> [RETAIN <bytes> <age_sec>]
///                                                     kind: num | cat
///     APPEND <tenant> <timestamp> <cell[,cell...]>
///     APPENDSEQ <tenant> <seq> <timestamp> <cell[,cell...]>
///     TEACH <causal-model-json>                       (model_io format)
///     DIAGNOSES <tenant>
///     FLUSH <tenant>
///     QUERY <tenant> <t0> <t1> [WHERE <clause>[;<clause>...]]
///                                                     history rows [t0,t1)
///     DIAGNOSE_RANGE <tenant> <t0> <t1>               diagnose [t0,t1)
///     EXPLAINQ <tenant> <dql-statement>               DQL (DESIGN.md §16)
///     STATS
///     MODELS
///     MODELSYNC <since_seq>                           replication pull
///     HEALTH
///     PING
///     QUIT
///
///   JSON (a line starting with '{'; append/hello only — the ops a metrics
///   collector emits):
///     {"op":"append","tenant":"t0","ts":12.0,"cells":[1.5,"mixed"],
///      "seq":7}                                        (seq optional)
///     {"op":"hello","tenant":"t0","schema":"cpu:num,mode:cat",
///      "retain_bytes":1048576,"retain_sec":3600}       (retain_* optional)
///
/// APPENDSEQ (and JSON append with "seq") carries a client-chosen,
/// strictly-increasing sequence number per tenant. The server remembers
/// the highest seq it applied; a seq at or below that is acknowledged
/// without re-ingesting the row, which makes retries after a dropped
/// connection idempotent (the response may have been lost after the row
/// was applied). One writer per tenant is assumed. Seq state is per
/// server incarnation; across restarts, duplicate rows are dropped by the
/// strictly-increasing-timestamp rule instead.
///
/// HEALTH reports the daemon's degraded-mode state:
///     OK {"state":"ok|degraded|draining","reason":...}
///
/// MODELSYNC serves the shard's durable causal-model corpus to a peer
/// (DESIGN.md §15). `since_seq` is the highest store sequence number the
/// caller has already applied; the response is
///     OK {"last_seq":N,"crc":C,"models":[...]}
/// where `models` holds every model in model_io JSON form when the store
/// has advanced past `since_seq`, or is empty when the peer is already
/// current (last_seq <= since_seq). `crc` is CRC-32 over the serialized
/// `models` array text, so a pull torn by a mid-stream fault is detected
/// and discarded rather than half-applied. Apply is idempotent: receivers
/// skip models whose exact JSON they already hold, so mutual pulls
/// between peers converge instead of echoing models back and forth.
///
/// HELLO's optional RETAIN clause arms the tenant's history store
/// retention (0 = unlimited); QUERY/DIAGNOSE_RANGE read that store, so
/// they answer over regions that have long left the sliding window.
///
/// EXPLAINQ runs one DQL statement (src/query) against the tenant's
/// durable history: `EXPLAIN WHERE <attr> <op> <value|pN> [AND ...]
/// BETWEEN <t0> <t1> [RANK BY confidence|margin] [TOP k]`,
/// `EXPLAIN REGION <t0> <t1> ...`, or `DESCRIBE`. The statement is
/// everything after the tenant field, verbatim. The response is
/// OK <json> — the incident report object (ranked causes with margins,
/// predicates, warnings, sparkline context) including a "markdown"
/// rendering for humans.
///
/// QUERY's optional WHERE trailer pushes attribute bounds into the store
/// scan (zone maps prune whole segments, DESIGN.md §14). Each clause is
/// `<attr>>=<value>` or `<attr><=<value>` over a numeric attribute;
/// clauses are ';'-separated and conjunctive (rows must satisfy all).
///
/// Verb arguments are separated by runs of spaces and/or tabs — every
/// fixed-arity field is tokenized the same way, so "QUERY t0<TAB>1 2"
/// and "QUERY t0 1 2" parse identically. APPEND cell text is exempt:
/// everything after the timestamp is split on ',' only, so categorical
/// cells keep their interior spaces.
///
/// Responses:
///     OK [detail]            request applied
///     RETRY_AFTER <millis>   backpressure: tenant queue full, not acked —
///                            resend the same row after the given delay
///     ERR <Code> <message>   rejected; Code is a StatusCode name. A
///                            message with embedded newlines (e.g. a DQL
///                            caret diagnostic) or leading '"' travels as
///                            one JSON string literal so it survives the
///                            line protocol; clients detect the leading
///                            '"' and decode. Plain messages are unchanged.
///
/// Tenant names are restricted to [A-Za-z0-9_.-], at most 64 bytes, so
/// they embed safely in metric names and file paths.

enum class RequestOp {
  kHello,
  kAppend,
  kTeach,
  kDiagnoses,
  kFlush,
  kQuery,
  kDiagnoseRange,
  kExplainQuery,
  kStats,
  kModels,
  kModelSync,
  kHealth,
  kPing,
  kQuit,
};

/// One parsed request line. Cells arrive typed (JSON append: numbers and
/// strings) or as raw text fields (CSV append) that the service coerces
/// against the tenant's schema — the wire layer does not know schemas.
struct Request {
  RequestOp op = RequestOp::kPing;
  std::string tenant;                    // hello/append/diagnoses/flush
  tsdata::Schema schema;                 // hello
  double timestamp = 0.0;                // append
  bool has_client_seq = false;           // APPENDSEQ / JSON append "seq"
  uint64_t client_seq = 0;               // idempotency sequence number
  bool cells_typed = false;              // which cell field is populated
  std::vector<tsdata::Cell> cells;       // append (JSON path)
  std::vector<std::string> raw_cells;    // append (CSV path)
  core::CausalModel model;               // teach
  double t0 = 0.0;                       // query/diagnose_range, [t0, t1)
  double t1 = 0.0;
  std::vector<store::AttributeBound> bounds;  // query WHERE clauses
  std::string query_text;                // explainq: the DQL statement
  bool has_retain = false;               // hello RETAIN clause present
  uint64_t retain_bytes = 0;             // 0 = unlimited
  double retain_age_sec = 0.0;           // 0 = unlimited
  uint64_t model_sync_since = 0;         // modelsync: highest applied seq
};

/// Parses one request line (no trailing newline; a trailing '\r' is
/// stripped). Fails with InvalidArgument/ParseError on anything malformed.
common::Result<Request> ParseRequestLine(const std::string& line);

/// True when `name` is a valid tenant name (see header comment).
bool ValidTenantName(const std::string& name);

/// Schema wire form round-trip: "cpu:num,mode:cat".
std::string FormatSchemaSpec(const tsdata::Schema& schema);
common::Result<tsdata::Schema> ParseSchemaSpec(const std::string& spec);

/// Formats one cell for the CSV append path ("%.17g" doubles round-trip).
std::string FormatCell(const tsdata::Cell& cell);

/// Response lines (without the trailing newline).
std::string OkLine(const std::string& detail = "");
std::string RetryAfterLine(int millis);
std::string ErrLine(const common::Status& status);

/// Client-side view of a response line.
struct Response {
  enum class Kind { kOk, kRetryAfter, kErr };
  Kind kind = Kind::kOk;
  std::string detail;         // OK payload (may be empty)
  int retry_after_ms = 0;     // kRetryAfter
  common::Status error;       // kErr, reconstructed with its StatusCode
};

common::Result<Response> ParseResponseLine(const std::string& line);

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_WIRE_H_
