#ifndef DBSHERLOCK_SERVICE_SERVICE_H_
#define DBSHERLOCK_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "core/explainer.h"
#include "service/model_store.h"
#include "service/tenant_manager.h"

namespace dbsherlock::service {

/// The dbsherlockd engine, transport-free: multi-tenant ingestion with
/// bounded queues and explicit backpressure, background anomaly diagnosis
/// on a worker pool, and a shared durable causal-model store. The TCP
/// frontend (server.h) and in-process embedders (tests, the replay bench)
/// both talk to this class.
///
/// Data path: Append validates against the tenant schema and enqueues into
/// the tenant's bounded queue (full queue => not acked, RETRY_AFTER).
/// Ingest workers drain one tenant at a time (single-drainer invariant:
/// the tenant's `scheduled` flag hands monitor ownership to exactly one
/// worker), pushing rows through its StreamingMonitor. A detector alert
/// snapshots the window and enqueues a diagnosis job; diagnosis workers
/// run detector-region refinement + Explainer + durable-store ranking,
/// deduplicating overlapping regions and capping per-tenant concurrency.
class Service {
 public:
  struct Options {
    TenantManager::Options tenants;
    /// Worker threads draining tenant ingest queues.
    size_t ingest_workers = 2;
    /// Worker threads running diagnosis jobs.
    size_t diagnosis_workers = 2;
    /// Max diagnosis jobs in flight per tenant (overlap dedup usually
    /// keeps this moot; the cap bounds pathological alert storms).
    size_t per_tenant_diagnosis_cap = 1;
    /// Bounded ingest queue per tenant; a full queue sheds with
    /// RETRY_AFTER instead of buffering unboundedly.
    size_t queue_capacity = 1024;
    /// Delay clients are told to wait when shed.
    int retry_after_ms = 20;
    /// Rows a drain takes from the queue per monitor pass.
    size_t ingest_batch = 64;
    /// Diagnosis configuration (predicate generation, domain knowledge,
    /// detector shape for region refinement). Ranking uses the durable
    /// store, not the explainer's own repository.
    core::Explainer::Options explainer;
    /// The paper's lambda for ranked causes.
    double min_confidence = 20.0;
    /// Shared durable model store. Required; not owned.
    DurableModelStore* store = nullptr;
    /// Row cap on one QUERY response (the wire is line-oriented; a huge
    /// range comes back truncated with "truncated":true).
    size_t max_query_rows = 5000;
    /// Row cap on the DIAGNOSE_RANGE context window (region + padding).
    /// A window that would exceed this many stored rows is refused with
    /// ResourceExhausted instead of inflating it all into memory — one
    /// hostile range must not OOM the daemon. 0 = unlimited.
    size_t max_range_rows = 500000;
    /// DIAGNOSE_RANGE scans a context window this many region-lengths on
    /// each side of [t0,t1) so the explainer sees normal baseline rows
    /// (the paper's "rest of the window is normal" convention).
    double range_context_factor = 8.0;
    /// Test hook: microseconds of artificial work per appended row, to
    /// force a slow consumer for backpressure tests.
    int process_delay_us = 0;
  };

  /// Outcome of one Append: either acked (with the tenant's running ack
  /// sequence) or shed with a retry delay. Queueing errors (unknown
  /// tenant, schema mismatch) surface as the Result's Status instead.
  struct AppendOutcome {
    bool accepted = false;
    bool replayed = false;   // duplicate client_seq; acked, not re-ingested
    uint64_t seq = 0;        // tenant-local ack sequence when accepted
    int retry_after_ms = 0;  // when shed
  };

  /// Coarse service health for the HEALTH verb. `kDegraded` means a
  /// durability path (model-store WAL or a tenant history store) is
  /// failing: the daemon stays up and keeps diagnosing, but writes on the
  /// failing path are being lost or refused. The state clears itself when
  /// the same path succeeds again. `kDraining` is set once Stop begins.
  enum class HealthState { kOk, kDegraded, kDraining };

  explicit Service(Options options);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Registers (or idempotently re-greets) a tenant. `retain` carries
  /// HELLO's optional RETAIN clause through to the tenant's history store.
  common::Status Hello(
      const std::string& tenant, const tsdata::Schema& schema,
      const std::optional<TenantManager::Retention>& retain = std::nullopt);

  /// Enqueues one row for `tenant`. Cells must match the tenant schema
  /// (checked here, before acking). Never blocks on a full queue.
  /// `client_seq` (APPENDSEQ) makes the call idempotent: a seq at or
  /// below the highest already applied is acked as `replayed` without
  /// enqueueing the row again.
  common::Result<AppendOutcome> Append(
      const std::string& tenant, double timestamp,
      std::vector<tsdata::Cell> cells,
      std::optional<uint64_t> client_seq = std::nullopt);

  /// Adds a causal model to the shared durable store (the TEACH verb /
  /// pre-trained models).
  common::Status Teach(const core::CausalModel& model);

  /// Blocks until the tenant's queue is drained through the monitor and
  /// every enqueued diagnosis for it has completed.
  common::Status Flush(const std::string& tenant);

  /// Flush for every live tenant.
  common::Status FlushAll();

  /// Completed diagnoses for a tenant, as JSON (DIAGNOSES verb):
  /// [{"region":{start,end},"causes":[{cause,confidence,action}],
  ///   "predicates":"...","latency_us":n}].
  common::Result<common::JsonValue> DiagnosesJson(const std::string& tenant);

  /// History rows in [t0, t1) from the tenant's store (QUERY verb):
  /// {"tenant","t0","t1","rows",("truncated",)"csv","scan":{...}}.
  /// `bounds` (the WHERE clause) filters rows and prunes segments via
  /// zone maps. Fails with FailedPrecondition when the service runs
  /// without a store directory.
  common::Result<common::JsonValue> QueryJson(
      const std::string& tenant, double t0, double t1,
      const std::vector<store::AttributeBound>& bounds = {});

  /// Retrospective diagnosis of a user-designated abnormal region [t0, t1)
  /// (DIAGNOSE_RANGE verb) — the paper's workflow, but over the durable
  /// store, so the region may long have left the sliding window:
  /// {"region":{start,end},"rows","causes":[...],"predicates"}.
  common::Result<common::JsonValue> DiagnoseRangeJson(
      const std::string& tenant, double t0, double t1);

  /// Runs one DQL statement (EXPLAINQ verb, DESIGN.md §16): parse →
  /// compile (percentile thresholds resolved against the tenant's durable
  /// history via zone-map bracketing, WHERE lowered onto pushdown bounds)
  /// → execute under the --max-range-rows budget → incident report. The
  /// returned JSON is the report object plus a "markdown" rendering;
  /// parse/compile errors carry multi-line caret diagnostics in their
  /// Status message (the wire layer JSON-encodes those on ERR lines).
  common::Result<common::JsonValue> ExplainQueryJson(
      const std::string& tenant, const std::string& query_text);

  /// Service-wide counters (STATS verb).
  common::JsonValue StatsJson() const;

  /// Degraded-mode report (HEALTH verb):
  /// {"state":"ok|degraded|draining","reason":"...","degraded_entries":n}.
  common::JsonValue HealthJson() const;

  HealthState health() const;

  /// The shared store's repository as model_io JSON (MODELS verb).
  common::JsonValue ModelsJson() const;

  /// Replication pull response (MODELSYNC verb, DESIGN.md §15):
  /// {"last_seq":N,"crc":C,"models":[...]}. `models` holds the full
  /// corpus when the store has advanced past `since_seq` and is empty
  /// when the caller is current; `crc` is Crc32 over the compact dump of
  /// the models array so a torn transfer is detected before apply.
  common::JsonValue ModelSyncJson(uint64_t since_seq) const;

  /// Stops accepting, drains acked rows and in-flight diagnoses, joins
  /// workers. Idempotent; the destructor calls it.
  void Stop();

  TenantManager& tenants() { return tenants_; }
  const Options& options() const { return options_; }

  // Shed/ack accounting across all tenants (tests, STATS).
  uint64_t total_acked() const { return total_acked_.load(); }
  uint64_t total_shed() const { return total_shed_.load(); }
  uint64_t total_diagnoses() const { return total_diagnoses_.load(); }

 private:
  struct DiagnosisJob {
    std::shared_ptr<Tenant> tenant;
    tsdata::TimeRange region;
    double raised_at = 0.0;
    double alert_us = 0.0;      // when the alert fired (Tracer clock)
    tsdata::Dataset window;     // snapshot taken by the drain worker
  };

  void IngestWorker();
  void DiagnosisWorker();
  /// Durability-path outcome hooks behind the health state machine: an
  /// error flips ok -> degraded with `reason`; a success on the same kind
  /// of path flips degraded -> ok. Draining is terminal.
  void NoteDurabilityError(const char* path, const common::Status& status);
  void NoteDurabilityOk();
  /// Drains `tenant`'s queue (the caller owns its `scheduled` flag).
  void DrainTenant(const std::shared_ptr<Tenant>& tenant);
  void EnqueueDiagnosis(const std::shared_ptr<Tenant>& tenant,
                        const core::StreamingMonitor::Alert& alert,
                        const tsdata::Dataset& window);
  void RunDiagnosis(DiagnosisJob job);

  Options options_;
  TenantManager tenants_;
  core::Explainer explainer_;

  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopped_{false};

  // Tenants with non-empty queues awaiting a drain worker. A tenant is
  // here iff its `scheduled` flag is set (whoever flips it false->true
  // pushes; the drain worker clears it when the queue runs dry).
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::deque<std::shared_ptr<Tenant>> ready_;
  bool stop_ingest_ = false;

  // Diagnosis job queue. Lock order: diag_queue_mu_ -> tenant->diag_mu.
  std::mutex diag_queue_mu_;
  std::condition_variable diag_cv_;
  std::deque<DiagnosisJob> diag_queue_;
  bool stop_diag_ = false;

  std::vector<std::thread> ingest_threads_;
  std::vector<std::thread> diag_threads_;

  std::atomic<uint64_t> total_acked_{0};
  std::atomic<uint64_t> total_shed_{0};
  std::atomic<uint64_t> total_alerts_{0};
  std::atomic<uint64_t> total_diagnoses_{0};
  std::atomic<uint64_t> total_deduped_{0};
  std::atomic<uint64_t> total_replayed_{0};

  mutable std::mutex health_mu_;
  HealthState health_state_ = HealthState::kOk;
  std::string health_reason_;
  uint64_t degraded_entries_ = 0;  // ok -> degraded transitions
};

}  // namespace dbsherlock::service

#endif  // DBSHERLOCK_SERVICE_SERVICE_H_
