#ifndef DBSHERLOCK_TSDATA_DATA_QUALITY_H_
#define DBSHERLOCK_TSDATA_DATA_QUALITY_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::tsdata {

/// Knobs of the quality audit and the repair pass. Defaults are tuned for
/// per-second telemetry: a sensor reporting the identical float for eight
/// straight seconds is frozen, and a gap of up to five samples is short
/// enough that linear interpolation cannot invent an anomaly.
struct QualityOptions {
  /// A run of >= this many identical consecutive numeric values counts as
  /// a stuck ("frozen sensor") episode. 0 disables stuck detection.
  size_t stuck_run_threshold = 8;
  /// |value - median| > z * robust_std flags a spike outlier, where
  /// robust_std is the scaled median absolute deviation (1.4826 * MAD).
  /// Deliberately loose: anomalies ARE outliers; only wild glitches count.
  double outlier_zscore = 12.0;
  /// Repair: the longest run of bad (NaN/Inf) cells linear interpolation
  /// may bridge. Longer gaps stay NaN — masked, not invented — and the
  /// diagnosis engine degrades gracefully around them.
  size_t max_interpolate_gap = 5;
  /// Repair: the longest run of consecutive outlier cells (per the
  /// outlier_zscore rule) that may be masked as a collector glitch. Real
  /// anomalies hold their level for many consecutive samples, so long
  /// outlier runs are presumed genuine signal and left untouched; an
  /// isolated wild sample is a spike that would otherwise stretch min-max
  /// normalization and squash every real predicate below theta.
  ///
  /// OPT-IN (default 0 = off): genuine telemetry carries real transient
  /// hiccups that are statistically indistinguishable from injected
  /// spikes, so de-spiking clean data is lossy. The default keeps
  /// RepairDataset strictly invariant-restoring — a clean dataset
  /// round-trips bit-identically — and callers who want aggressive
  /// de-glitching (e.g. the CLI's --repair) set this to a small value
  /// like 2.
  size_t max_spike_run = 0;
  /// An attribute is usable when at least this fraction of its cells is
  /// finite; below it, diagnosis skips the attribute outright.
  double min_usable_fraction = 0.75;
};

/// Audit of one numeric attribute. Categorical attributes are audited only
/// for dictionary explosion (every value distinct = a freeform field that
/// slipped into the telemetry), reported via `distinct_fraction`.
struct AttributeQuality {
  std::string name;
  size_t rows = 0;
  size_t nan_count = 0;
  size_t inf_count = 0;
  /// Cells inside stuck runs of length >= stuck_run_threshold.
  size_t stuck_count = 0;
  size_t longest_stuck_run = 0;
  /// Finite cells farther than outlier_zscore robust stds from the median.
  size_t outlier_count = 0;
  /// Finite cells / rows (1.0 for categorical columns).
  double finite_fraction = 1.0;
  /// Distinct categories / rows (categorical only; 0 for numeric).
  double distinct_fraction = 0.0;
  /// finite_fraction >= QualityOptions::min_usable_fraction.
  bool usable = true;
};

/// Full audit of a Dataset: timestamp-stream health plus one
/// AttributeQuality per attribute (schema order).
struct QualityReport {
  size_t num_rows = 0;
  size_t duplicate_timestamps = 0;    // ts[i] == ts[i-1]
  size_t out_of_order_timestamps = 0; // ts[i] <  ts[i-1]
  size_t non_finite_timestamps = 0;
  bool timestamps_monotonic = true;
  std::vector<AttributeQuality> attributes;

  /// True when nothing at all was flagged (pristine telemetry).
  bool clean() const;
  /// Attributes with usable == false, in schema order.
  std::vector<std::string> UnusableAttributes() const;
  /// Human-readable multi-line summary (only flagged attributes listed).
  std::string ToString() const;
  /// Machine-readable form (the CLI's --quality-report output).
  common::JsonValue ToJson() const;
};

/// Audits `dataset` without modifying it. Never fails on data content —
/// hostile data is precisely the input it exists for — only on nonsensical
/// options (e.g. min_usable_fraction outside [0, 1]).
common::Result<QualityReport> AuditDataset(const Dataset& dataset,
                                           const QualityOptions& options = {});

/// What RepairDataset did, for logging and tests.
struct RepairSummary {
  size_t rows_dropped_non_finite_ts = 0;
  size_t rows_dropped_duplicate_ts = 0;
  /// Rows that moved relative to their neighbors when sorting by timestamp.
  size_t rows_reordered = 0;
  size_t cells_interpolated = 0;
  /// Inf cells masked to NaN before interpolation was attempted.
  size_t cells_masked_inf = 0;
  /// Isolated spike outliers (runs <= max_spike_run) masked to NaN.
  size_t cells_masked_spike = 0;
  /// Bad cells in gaps longer than max_interpolate_gap, left NaN.
  size_t cells_left_nan = 0;

  size_t total_changes() const {
    return rows_dropped_non_finite_ts + rows_dropped_duplicate_ts +
           rows_reordered + cells_interpolated + cells_masked_inf +
           cells_masked_spike + cells_left_nan;
  }
};

struct RepairedDataset {
  Dataset data;
  RepairSummary summary;
};

/// The repair pass restoring the invariants every consumer downstream of
/// ingest assumes: rows sorted by timestamp (stable sort), duplicate
/// timestamps deduplicated (first occurrence wins), non-finite timestamps
/// dropped, Inf cells masked to NaN, and NaN runs of up to
/// max_interpolate_gap cells bridged by linear interpolation between their
/// finite neighbors (held flat at the stream edges). Longer runs stay NaN.
/// A clean dataset round-trips bit-identically. Never throws; fails only
/// on invalid options.
common::Result<RepairedDataset> RepairDataset(
    const Dataset& dataset, const QualityOptions& options = {});

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_DATA_QUALITY_H_
