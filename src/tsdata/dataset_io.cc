#include "tsdata/dataset_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/csv.h"
#include "common/strings.h"

namespace dbsherlock::tsdata {

namespace {
constexpr char kCategoricalSuffix[] = "@cat";
constexpr char kTimestampColumn[] = "timestamp";

std::string FormatDouble(double v) {
  // Shortest representation that round-trips doubles.
  return common::StrFormat("%.17g", v);
}
}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  common::CsvTable table;
  table.header.push_back(kTimestampColumn);
  for (const auto& spec : dataset.schema().attributes()) {
    std::string name = spec.name;
    if (spec.kind == AttributeKind::kCategorical) name += kCategoricalSuffix;
    table.header.push_back(std::move(name));
  }
  table.rows.reserve(dataset.num_rows());
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    std::vector<std::string> fields;
    fields.reserve(dataset.num_attributes() + 1);
    fields.push_back(FormatDouble(dataset.timestamp(row)));
    for (size_t c = 0; c < dataset.num_attributes(); ++c) {
      const Column& col = dataset.column(c);
      if (col.kind() == AttributeKind::kNumeric) {
        fields.push_back(FormatDouble(col.numeric(row)));
      } else {
        fields.push_back(col.CategoryName(col.code(row)));
      }
    }
    table.rows.push_back(std::move(fields));
  }
  return common::WriteCsv(table);
}

common::Result<Dataset> DatasetFromCsv(const std::string& text,
                                       const DatasetCsvOptions& options) {
  // Tolerate a UTF-8 BOM (files exported from spreadsheet tools carry one).
  std::string_view body = text;
  if (body.size() >= 3 && body.substr(0, 3) == "\xEF\xBB\xBF") {
    body.remove_prefix(3);
  }
  auto parsed = common::ParseCsv(std::string(body));
  if (!parsed.ok()) return parsed.status();
  const common::CsvTable& table = *parsed;
  if (table.header.empty() || table.header[0] != kTimestampColumn) {
    return common::Status::ParseError(
        "dataset CSV must start with a 'timestamp' column");
  }

  Schema schema;
  for (size_t c = 1; c < table.header.size(); ++c) {
    std::string name = table.header[c];
    AttributeKind kind = AttributeKind::kNumeric;
    if (name.size() > 4 &&
        name.substr(name.size() - 4) == kCategoricalSuffix) {
      kind = AttributeKind::kCategorical;
      name = name.substr(0, name.size() - 4);
    }
    // Schema::AddAttribute rejects duplicate names (including a numeric
    // and an `@cat` column stripping to the same name). Surface the
    // column index so the header error is actionable.
    common::Status added = schema.AddAttribute({name, kind});
    if (!added.ok()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "column %zu: %s", c, added.message().c_str()));
    }
  }

  Dataset dataset(schema);
  double prev_ts = 0.0;
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& fields = table.rows[r];
    auto ts = common::ParseDouble(fields[0]);
    if (!ts.ok()) return ts.status();
    if (!options.allow_unsorted) {
      if (!std::isfinite(*ts)) {
        return common::Status::InvalidArgument(common::StrFormat(
            "row %zu: non-finite timestamp %s (pass allow_unsorted to "
            "ingest for repair)", r, fields[0].c_str()));
      }
      if (r > 0 && *ts <= prev_ts) {
        return common::Status::InvalidArgument(common::StrFormat(
            "row %zu: timestamp %.17g %s previous row's %.17g (pass "
            "allow_unsorted to ingest for repair)", r, *ts,
            *ts == prev_ts ? "duplicates" : "precedes", prev_ts));
      }
      prev_ts = *ts;
    }
    std::vector<Cell> cells;
    cells.reserve(fields.size() - 1);
    for (size_t c = 1; c < fields.size(); ++c) {
      if (schema.attribute(c - 1).kind == AttributeKind::kNumeric) {
        auto v = common::ParseDouble(fields[c]);
        if (!v.ok()) {
          return common::Status::ParseError(common::StrFormat(
              "row %zu, attribute '%s': %s", r,
              schema.attribute(c - 1).name.c_str(),
              v.status().message().c_str()));
        }
        cells.emplace_back(*v);
      } else {
        cells.emplace_back(fields[c]);
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(options.allow_unsorted
                                 ? dataset.AppendRowUnchecked(*ts, cells)
                                 : dataset.AppendRow(*ts, cells));
  }
  return dataset;
}

common::Status WriteDatasetFile(const Dataset& dataset,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return common::Status::IoError("cannot open for write: " + path);
  out << DatasetToCsv(dataset);
  if (!out) return common::Status::IoError("write failed: " + path);
  return common::Status::OK();
}

common::Result<Dataset> ReadDatasetFile(const std::string& path,
                                        const DatasetCsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DatasetFromCsv(buffer.str(), options);
}

}  // namespace dbsherlock::tsdata
