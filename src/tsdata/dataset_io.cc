#include "tsdata/dataset_io.h"

#include <fstream>
#include <sstream>

#include "common/csv.h"
#include "common/strings.h"

namespace dbsherlock::tsdata {

namespace {
constexpr char kCategoricalSuffix[] = "@cat";
constexpr char kTimestampColumn[] = "timestamp";

std::string FormatDouble(double v) {
  // Shortest representation that round-trips doubles.
  return common::StrFormat("%.17g", v);
}
}  // namespace

std::string DatasetToCsv(const Dataset& dataset) {
  common::CsvTable table;
  table.header.push_back(kTimestampColumn);
  for (const auto& spec : dataset.schema().attributes()) {
    std::string name = spec.name;
    if (spec.kind == AttributeKind::kCategorical) name += kCategoricalSuffix;
    table.header.push_back(std::move(name));
  }
  table.rows.reserve(dataset.num_rows());
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    std::vector<std::string> fields;
    fields.reserve(dataset.num_attributes() + 1);
    fields.push_back(FormatDouble(dataset.timestamp(row)));
    for (size_t c = 0; c < dataset.num_attributes(); ++c) {
      const Column& col = dataset.column(c);
      if (col.kind() == AttributeKind::kNumeric) {
        fields.push_back(FormatDouble(col.numeric(row)));
      } else {
        fields.push_back(col.CategoryName(col.code(row)));
      }
    }
    table.rows.push_back(std::move(fields));
  }
  return common::WriteCsv(table);
}

common::Result<Dataset> DatasetFromCsv(const std::string& text) {
  auto parsed = common::ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const common::CsvTable& table = *parsed;
  if (table.header.empty() || table.header[0] != kTimestampColumn) {
    return common::Status::ParseError(
        "dataset CSV must start with a 'timestamp' column");
  }

  Schema schema;
  for (size_t c = 1; c < table.header.size(); ++c) {
    std::string name = table.header[c];
    AttributeKind kind = AttributeKind::kNumeric;
    if (name.size() > 4 &&
        name.substr(name.size() - 4) == kCategoricalSuffix) {
      kind = AttributeKind::kCategorical;
      name = name.substr(0, name.size() - 4);
    }
    DBSHERLOCK_RETURN_NOT_OK(schema.AddAttribute({name, kind}));
  }

  Dataset dataset(schema);
  for (size_t r = 0; r < table.rows.size(); ++r) {
    const auto& fields = table.rows[r];
    auto ts = common::ParseDouble(fields[0]);
    if (!ts.ok()) return ts.status();
    std::vector<Cell> cells;
    cells.reserve(fields.size() - 1);
    for (size_t c = 1; c < fields.size(); ++c) {
      if (schema.attribute(c - 1).kind == AttributeKind::kNumeric) {
        auto v = common::ParseDouble(fields[c]);
        if (!v.ok()) {
          return common::Status::ParseError(common::StrFormat(
              "row %zu, attribute '%s': %s", r,
              schema.attribute(c - 1).name.c_str(),
              v.status().message().c_str()));
        }
        cells.emplace_back(*v);
      } else {
        cells.emplace_back(fields[c]);
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(dataset.AppendRow(*ts, cells));
  }
  return dataset;
}

common::Status WriteDatasetFile(const Dataset& dataset,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return common::Status::IoError("cannot open for write: " + path);
  out << DatasetToCsv(dataset);
  if (!out) return common::Status::IoError("write failed: " + path);
  return common::Status::OK();
}

common::Result<Dataset> ReadDatasetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DatasetFromCsv(buffer.str());
}

}  // namespace dbsherlock::tsdata
