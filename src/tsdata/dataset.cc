#include "tsdata/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace dbsherlock::tsdata {

void Column::AppendCategorical(const std::string& value) {
  auto it = dictionary_index_.find(value);
  int32_t code;
  if (it == dictionary_index_.end()) {
    code = static_cast<int32_t>(dictionary_.size());
    dictionary_.push_back(value);
    dictionary_index_.emplace(value, code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

int32_t Column::CodeOf(const std::string& value) const {
  auto it = dictionary_index_.find(value);
  return it == dictionary_index_.end() ? -1 : it->second;
}

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  for (size_t i = 0; i < schema_.num_attributes(); ++i) {
    columns_.emplace_back(schema_.attribute(i).kind);
  }
}

common::Status Dataset::AppendRow(double timestamp,
                                  const std::vector<Cell>& cells) {
  if (!timestamps_.empty() && timestamp < timestamps_.back()) {
    return common::Status::InvalidArgument(
        "timestamps must be non-decreasing");
  }
  return AppendRowUnchecked(timestamp, cells);
}

common::Status Dataset::AppendRowUnchecked(double timestamp,
                                           const std::vector<Cell>& cells) {
  if (cells.size() != schema_.num_attributes()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "row has %zu cells, schema has %zu attributes", cells.size(),
        schema_.num_attributes()));
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    AttributeKind kind = schema_.attribute(i).kind;
    if (kind == AttributeKind::kNumeric) {
      if (!std::holds_alternative<double>(cells[i])) {
        return common::Status::InvalidArgument(
            "expected numeric cell for attribute " + schema_.attribute(i).name);
      }
    } else if (!std::holds_alternative<std::string>(cells[i])) {
      return common::Status::InvalidArgument(
          "expected categorical cell for attribute " +
          schema_.attribute(i).name);
    }
  }
  // Validation passed; now mutate (keeps the dataset consistent on error).
  timestamps_.push_back(timestamp);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (columns_[i].kind() == AttributeKind::kNumeric) {
      columns_[i].AppendNumeric(std::get<double>(cells[i]));
    } else {
      columns_[i].AppendCategorical(std::get<std::string>(cells[i]));
    }
  }
  return common::Status::OK();
}

bool Dataset::TimestampsSorted() const {
  // NaN defeats std::is_sorted (every comparison is false), so check
  // explicitly: a NaN timestamp means the stream is NOT well ordered.
  for (size_t i = 0; i < timestamps_.size(); ++i) {
    if (std::isnan(timestamps_[i])) return false;
    if (i > 0 && timestamps_[i] < timestamps_[i - 1]) return false;
  }
  return true;
}

common::Result<const Column*> Dataset::ColumnByName(
    const std::string& name) const {
  auto idx = schema_.IndexOf(name);
  if (!idx.ok()) return idx.status();
  return &columns_[*idx];
}

std::vector<size_t> Dataset::RowsInTimeRange(double start, double end) const {
  std::vector<size_t> rows;
  if (!TimestampsSorted()) {
    // Corrupted (unsorted / NaN) timestamps: std::lower_bound requires a
    // partitioned range, so degrade to a linear scan. NaN timestamps fail
    // both comparisons and are excluded.
    for (size_t i = 0; i < timestamps_.size(); ++i) {
      if (timestamps_[i] >= start && timestamps_[i] < end) rows.push_back(i);
    }
    return rows;
  }
  auto lo = std::lower_bound(timestamps_.begin(), timestamps_.end(), start);
  for (auto it = lo; it != timestamps_.end() && *it < end; ++it) {
    rows.push_back(static_cast<size_t>(it - timestamps_.begin()));
  }
  return rows;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  Dataset out(schema_);
  end = std::min(end, num_rows());
  for (size_t row = begin; row < end; ++row) {
    out.timestamps_.push_back(timestamps_[row]);
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (columns_[c].kind() == AttributeKind::kNumeric) {
        out.columns_[c].AppendNumeric(columns_[c].numeric(row));
      } else {
        out.columns_[c].AppendCategorical(
            columns_[c].CategoryName(columns_[c].code(row)));
      }
    }
  }
  return out;
}

}  // namespace dbsherlock::tsdata
