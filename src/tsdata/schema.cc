#include "tsdata/schema.h"

namespace dbsherlock::tsdata {

const char* AttributeKindToString(AttributeKind kind) {
  switch (kind) {
    case AttributeKind::kNumeric:
      return "numeric";
    case AttributeKind::kCategorical:
      return "categorical";
  }
  return "unknown";
}

Schema::Schema(std::vector<AttributeSpec> attributes) {
  for (auto& spec : attributes) {
    // Duplicates are a programming error here; the fallible path is
    // AddAttribute. Last occurrence wins in the index, first in order.
    index_.emplace(spec.name, attributes_.size());
    attributes_.push_back(std::move(spec));
  }
}

common::Status Schema::AddAttribute(AttributeSpec spec) {
  if (index_.contains(spec.name)) {
    return common::Status::InvalidArgument("duplicate attribute: " +
                                           spec.name);
  }
  index_.emplace(spec.name, attributes_.size());
  attributes_.push_back(std::move(spec));
  return common::Status::OK();
}

common::Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return common::Status::NotFound("no attribute named: " + name);
  }
  return it->second;
}

}  // namespace dbsherlock::tsdata
