#ifndef DBSHERLOCK_TSDATA_SCHEMA_H_
#define DBSHERLOCK_TSDATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace dbsherlock::tsdata {

/// The two attribute families the paper distinguishes (Section 4): noisy
/// numeric statistics vs. low-cardinality categorical settings.
enum class AttributeKind {
  kNumeric,
  kCategorical,
};

const char* AttributeKindToString(AttributeKind kind);

/// Name + kind of one attribute (column) of the aligned statistics table.
struct AttributeSpec {
  std::string name;
  AttributeKind kind = AttributeKind::kNumeric;

  bool operator==(const AttributeSpec& other) const = default;
};

/// An ordered list of attributes with O(1) lookup by name. The timestamp is
/// not part of the schema; Dataset stores it separately (Section 2.1's
/// "(Timestamp, Attr1, ..., Attrk)" layout).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attributes);

  /// Appends an attribute. Fails on duplicate names.
  common::Status AddAttribute(AttributeSpec spec);

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }

  /// Index of the attribute with `name`, or error if absent.
  common::Result<size_t> IndexOf(const std::string& name) const;

  /// True if `name` exists.
  bool Contains(const std::string& name) const {
    return index_.contains(name);
  }

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }

 private:
  std::vector<AttributeSpec> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_SCHEMA_H_
