#ifndef DBSHERLOCK_TSDATA_DATASET_IO_H_
#define DBSHERLOCK_TSDATA_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::tsdata {

/// CSV serialization of a Dataset.
///
/// Layout: first column is `timestamp`; each remaining column is one
/// attribute. Categorical attribute names carry the suffix `@cat` in the
/// header so the kind round-trips without a sidecar schema file, mirroring
/// how dbseer distributes its datasets as plain aligned CSVs.
std::string DatasetToCsv(const Dataset& dataset);

/// Parses a Dataset from CSV text produced by DatasetToCsv (or any CSV with
/// a `timestamp` first column; columns whose values fail numeric parsing
/// are *not* auto-coerced — use the `@cat` suffix).
common::Result<Dataset> DatasetFromCsv(const std::string& text);

/// File wrappers.
common::Status WriteDatasetFile(const Dataset& dataset,
                                const std::string& path);
common::Result<Dataset> ReadDatasetFile(const std::string& path);

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_DATASET_IO_H_
