#ifndef DBSHERLOCK_TSDATA_DATASET_IO_H_
#define DBSHERLOCK_TSDATA_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::tsdata {

/// CSV serialization of a Dataset.
///
/// Layout: first column is `timestamp`; each remaining column is one
/// attribute. Categorical attribute names carry the suffix `@cat` in the
/// header so the kind round-trips without a sidecar schema file, mirroring
/// how dbseer distributes its datasets as plain aligned CSVs.
std::string DatasetToCsv(const Dataset& dataset);

/// Parsing options for hostile input. The default is strict: real
/// collectors are supposed to emit sorted, unique timestamps, and silently
/// accepting anything else corrupts every downstream time-range lookup.
struct DatasetCsvOptions {
  /// Accept duplicate, decreasing, and non-finite timestamps (the rows are
  /// kept verbatim, via AppendRowUnchecked). Pair with RepairDataset to
  /// restore the sorted-unique invariant before diagnosis.
  bool allow_unsorted = false;
};

/// Parses a Dataset from CSV text produced by DatasetToCsv (or any CSV with
/// a `timestamp` first column; columns whose values fail numeric parsing
/// are *not* auto-coerced — use the `@cat` suffix). A UTF-8 BOM before the
/// header is tolerated. Fails with InvalidArgument on duplicate column
/// names and — unless `options.allow_unsorted` — on duplicate, decreasing,
/// or non-finite timestamps. NaN/Inf *cell* literals parse into the
/// dataset as-is; the DataQuality pipeline decides their fate.
common::Result<Dataset> DatasetFromCsv(const std::string& text,
                                       const DatasetCsvOptions& options = {});

/// File wrappers.
common::Status WriteDatasetFile(const Dataset& dataset,
                                const std::string& path);
common::Result<Dataset> ReadDatasetFile(const std::string& path,
                                        const DatasetCsvOptions& options = {});

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_DATASET_IO_H_
