#include "tsdata/region.h"

namespace dbsherlock::tsdata {

std::vector<size_t> RegionSpec::RowsIn(const Dataset& dataset) const {
  std::vector<size_t> rows;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    if (Contains(dataset.timestamp(i))) rows.push_back(i);
  }
  return rows;
}

RegionSpec RegionSpec::ScaledAroundCenter(double factor) const {
  RegionSpec out;
  for (const auto& r : ranges_) {
    double center = 0.5 * (r.start + r.end);
    double half = 0.5 * r.length() * factor;
    out.Add(center - half, center + half);
  }
  return out;
}

LabeledRows SplitRows(const Dataset& dataset,
                      const DiagnosisRegions& regions) {
  LabeledRows out;
  for (size_t i = 0; i < dataset.num_rows(); ++i) {
    switch (regions.LabelOf(dataset.timestamp(i))) {
      case RowLabel::kAbnormal:
        out.abnormal.push_back(i);
        break;
      case RowLabel::kNormal:
        out.normal.push_back(i);
        break;
      case RowLabel::kIgnored:
        break;
    }
  }
  return out;
}

}  // namespace dbsherlock::tsdata
