#ifndef DBSHERLOCK_TSDATA_ALIGN_H_
#define DBSHERLOCK_TSDATA_ALIGN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tsdata/dataset.h"

namespace dbsherlock::tsdata {

/// Preprocessing (component (2) of the paper's Figure 2): DBSeer collects
/// raw, irregularly timestamped streams — OS counters from /proc, DBMS
/// status variables, and the timestamped query log — and summarizes them
/// into the aligned `(Timestamp, Attr1, ..., Attrk)` table at fixed
/// intervals (Section 2.1). This module implements that summarization.

/// One raw numeric observation.
struct RawSample {
  double timestamp = 0.0;
  double value = 0.0;
};

/// How a raw counter stream folds into one value per interval.
enum class Aggregation {
  kMean,  // gauge sampled repeatedly (CPU %): average; carries forward
          // through empty intervals (the sensor is slower than the grid)
  kSum,   // per-event increments (bytes in a burst): sum; 0 when empty
  kMax,   // high-watermark gauges: max; 0 when empty
  kLast,  // level sampled occasionally (dirty pages): last observation
          // carried forward
  kRate,  // cumulative counter (total lock waits): per-second delta,
          // robust to counter resets (negative deltas clamp to 0)
};

/// A raw numeric stream, e.g. one /proc field or one SHOW STATUS variable.
/// Samples may arrive unsorted and at any cadence.
struct RawCounterSeries {
  std::string name;
  Aggregation aggregation = Aggregation::kMean;
  std::vector<RawSample> samples;
};

/// A raw string-valued stream (configuration state, process phase).
/// Aligned by last-observation-carried-forward into a categorical
/// attribute.
struct RawStateSample {
  double timestamp = 0.0;
  std::string value;
};

struct RawStateSeries {
  std::string name;
  std::vector<RawStateSample> samples;
};

/// One executed statement from the timestamped query log (Section 2.1
/// (iii)): start time, duration and statement class.
struct QueryLogEntry {
  double start_time = 0.0;
  double duration_ms = 0.0;
  std::string statement_type;  // "SELECT", "UPDATE", ... (free-form)
};

struct AlignmentOptions {
  /// Grid step in seconds (the paper aligns at 1-second intervals).
  double interval_sec = 1.0;
  /// Grid boundaries; when start >= end both are derived from the data
  /// (floor of the earliest sample to a grid multiple, ceiling of the
  /// latest).
  double start_time = 0.0;
  double end_time = 0.0;
  /// Tail-latency quantile emitted for the query log (paper plots 99%).
  double latency_quantile = 0.99;
};

/// Summarizes and aligns raw streams into a Dataset.
///
/// Emitted attributes, in order:
///  * one numeric attribute per RawCounterSeries (same name);
///  * if `query_log` is non-empty: `throughput_tps`, `avg_latency_ms`,
///    `p<Q>_latency_ms`, plus one `<type>_count` numeric attribute per
///    distinct statement type (types lowercased at ingest — "SELECT" and
///    "select" are one type — and sorted alphabetically);
///  * one categorical attribute per RawStateSeries (same name).
///
/// Alignment contract:
///  * every layer clips samples against the grid extent
///    `start + interval * ceil((end - start) / interval)`, so when `end`
///    is not an interval multiple the final (partial) interval holds the
///    same data in every column;
///  * the latency aggregates are gauges: intervals with no queries carry
///    the last observed value forward (0 before any traffic), while
///    `throughput_tps` and the `<type>_count` columns report a true 0;
///  * kRate counters fold samples before the window into the cumulative
///    baseline, so pre-window counter growth never appears as a rate
///    spike in the first interval.
///
/// Fails on duplicate attribute names, a non-positive interval, or when
/// no input carries any data.
common::Result<Dataset> AlignLogs(
    const std::vector<RawCounterSeries>& counters,
    const std::vector<QueryLogEntry>& query_log,
    const std::vector<RawStateSeries>& states,
    const AlignmentOptions& options = {});

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_ALIGN_H_
