#include "tsdata/data_quality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/stats.h"
#include "common/strings.h"

namespace dbsherlock::tsdata {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

common::Status ValidateOptions(const QualityOptions& options) {
  if (options.min_usable_fraction < 0.0 ||
      options.min_usable_fraction > 1.0) {
    return common::Status::InvalidArgument(common::StrFormat(
        "min_usable_fraction must be in [0, 1], got %g",
        options.min_usable_fraction));
  }
  if (options.outlier_zscore <= 0.0) {
    return common::Status::InvalidArgument(common::StrFormat(
        "outlier_zscore must be positive, got %g", options.outlier_zscore));
  }
  return common::Status::OK();
}

/// Median of the finite values of `values` (copies); nullopt when none.
std::optional<double> FiniteMedian(std::span<const double> values) {
  std::vector<double> finite;
  finite.reserve(values.size());
  for (double v : values) {
    if (std::isfinite(v)) finite.push_back(v);
  }
  if (finite.empty()) return std::nullopt;
  return common::Median(finite);
}

AttributeQuality AuditNumericColumn(const std::string& name,
                                    std::span<const double> values,
                                    const QualityOptions& options) {
  AttributeQuality q;
  q.name = name;
  q.rows = values.size();
  if (values.empty()) return q;

  // One pass: NaN/Inf counts and stuck runs (runs of bit-identical finite
  // values; NaN != NaN, so a frozen-at-NaN sensor is already NaN-counted).
  size_t run = 1;
  auto close_run = [&](size_t length) {
    q.longest_stuck_run = std::max(q.longest_stuck_run, length);
    if (options.stuck_run_threshold > 0 &&
        length >= options.stuck_run_threshold) {
      q.stuck_count += length;
    }
  };
  for (size_t i = 0; i < values.size(); ++i) {
    double v = values[i];
    if (std::isnan(v)) {
      ++q.nan_count;
    } else if (std::isinf(v)) {
      ++q.inf_count;
    }
    if (i > 0) {
      if (values[i] == values[i - 1]) {
        ++run;
      } else {
        close_run(run);
        run = 1;
      }
    }
  }
  close_run(run);

  // Spike outliers via median +- z * 1.4826 * MAD over finite values.
  std::optional<double> median = FiniteMedian(values);
  if (median.has_value()) {
    std::vector<double> deviations;
    deviations.reserve(values.size());
    for (double v : values) {
      if (std::isfinite(v)) deviations.push_back(std::fabs(v - *median));
    }
    double mad = common::Median(deviations);
    double robust_std = 1.4826 * mad;
    if (robust_std > 0.0) {
      double cutoff = options.outlier_zscore * robust_std;
      for (double v : values) {
        if (std::isfinite(v) && std::fabs(v - *median) > cutoff) {
          ++q.outlier_count;
        }
      }
    }
  }

  size_t finite = q.rows - q.nan_count - q.inf_count;
  q.finite_fraction =
      static_cast<double>(finite) / static_cast<double>(q.rows);
  q.usable = q.finite_fraction >= options.min_usable_fraction;
  return q;
}

}  // namespace

bool QualityReport::clean() const {
  if (duplicate_timestamps > 0 || out_of_order_timestamps > 0 ||
      non_finite_timestamps > 0 || !timestamps_monotonic) {
    return false;
  }
  for (const AttributeQuality& q : attributes) {
    if (q.nan_count > 0 || q.inf_count > 0 || q.stuck_count > 0 ||
        q.outlier_count > 0 || !q.usable) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> QualityReport::UnusableAttributes() const {
  std::vector<std::string> out;
  for (const AttributeQuality& q : attributes) {
    if (!q.usable) out.push_back(q.name);
  }
  return out;
}

std::string QualityReport::ToString() const {
  std::string out = common::StrFormat(
      "QualityReport: %zu rows; timestamps %s (%zu dup, %zu out-of-order, "
      "%zu non-finite)\n",
      num_rows, timestamps_monotonic ? "monotonic" : "NOT monotonic",
      duplicate_timestamps, out_of_order_timestamps, non_finite_timestamps);
  for (const AttributeQuality& q : attributes) {
    if (q.nan_count == 0 && q.inf_count == 0 && q.stuck_count == 0 &&
        q.outlier_count == 0 && q.usable) {
      continue;
    }
    out += common::StrFormat(
        "  %-28s finite %.1f%%%s: %zu NaN, %zu Inf, %zu stuck (longest run "
        "%zu), %zu outliers\n",
        q.name.c_str(), 100.0 * q.finite_fraction,
        q.usable ? "" : " [UNUSABLE]", q.nan_count, q.inf_count,
        q.stuck_count, q.longest_stuck_run, q.outlier_count);
  }
  return out;
}

common::JsonValue QualityReport::ToJson() const {
  common::JsonValue::Object root;
  root["num_rows"] = static_cast<double>(num_rows);
  common::JsonValue::Object ts;
  ts["monotonic"] = timestamps_monotonic;
  ts["duplicates"] = static_cast<double>(duplicate_timestamps);
  ts["out_of_order"] = static_cast<double>(out_of_order_timestamps);
  ts["non_finite"] = static_cast<double>(non_finite_timestamps);
  root["timestamps"] = std::move(ts);
  common::JsonValue::Array attrs;
  for (const AttributeQuality& q : attributes) {
    common::JsonValue::Object a;
    a["name"] = q.name;
    a["rows"] = static_cast<double>(q.rows);
    a["nan"] = static_cast<double>(q.nan_count);
    a["inf"] = static_cast<double>(q.inf_count);
    a["stuck"] = static_cast<double>(q.stuck_count);
    a["longest_stuck_run"] = static_cast<double>(q.longest_stuck_run);
    a["outliers"] = static_cast<double>(q.outlier_count);
    a["finite_fraction"] = q.finite_fraction;
    a["distinct_fraction"] = q.distinct_fraction;
    a["usable"] = q.usable;
    attrs.push_back(std::move(a));
  }
  root["attributes"] = std::move(attrs);
  root["clean"] = clean();
  return common::JsonValue(std::move(root));
}

common::Result<QualityReport> AuditDataset(const Dataset& dataset,
                                           const QualityOptions& options) {
  DBSHERLOCK_RETURN_NOT_OK(ValidateOptions(options));
  QualityReport report;
  report.num_rows = dataset.num_rows();

  std::span<const double> ts = dataset.timestamps();
  for (size_t i = 0; i < ts.size(); ++i) {
    if (!std::isfinite(ts[i])) {
      ++report.non_finite_timestamps;
      report.timestamps_monotonic = false;
      continue;
    }
    if (i == 0 || !std::isfinite(ts[i - 1])) continue;
    if (ts[i] == ts[i - 1]) {
      ++report.duplicate_timestamps;
    } else if (ts[i] < ts[i - 1]) {
      ++report.out_of_order_timestamps;
      report.timestamps_monotonic = false;
    }
  }

  for (size_t attr = 0; attr < dataset.num_attributes(); ++attr) {
    const AttributeSpec& spec = dataset.schema().attribute(attr);
    const Column& col = dataset.column(attr);
    if (col.kind() == AttributeKind::kNumeric) {
      report.attributes.push_back(
          AuditNumericColumn(spec.name, col.numeric_values(), options));
    } else {
      AttributeQuality q;
      q.name = spec.name;
      q.rows = col.size();
      q.distinct_fraction =
          q.rows == 0 ? 0.0
                      : static_cast<double>(col.num_categories()) /
                            static_cast<double>(q.rows);
      report.attributes.push_back(std::move(q));
    }
  }
  return report;
}

common::Result<RepairedDataset> RepairDataset(const Dataset& dataset,
                                              const QualityOptions& options) {
  DBSHERLOCK_RETURN_NOT_OK(ValidateOptions(options));
  RepairedDataset out;
  out.data = Dataset(dataset.schema());

  // 1. Row selection and ordering: drop non-finite timestamps, stable-sort
  // the rest by timestamp, then drop exact duplicates (first kept — the
  // earliest-received reading is the one a live collector would have
  // stored first).
  std::vector<size_t> order;
  order.reserve(dataset.num_rows());
  for (size_t row = 0; row < dataset.num_rows(); ++row) {
    if (std::isfinite(dataset.timestamp(row))) {
      order.push_back(row);
    } else {
      ++out.summary.rows_dropped_non_finite_ts;
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return dataset.timestamp(a) < dataset.timestamp(b);
  });
  std::vector<size_t> kept;
  kept.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0 &&
        dataset.timestamp(order[i]) == dataset.timestamp(order[i - 1])) {
      ++out.summary.rows_dropped_duplicate_ts;
      continue;
    }
    kept.push_back(order[i]);
  }
  for (size_t i = 0; i < kept.size(); ++i) {
    // A row "moved" when its source index is out of order vs its neighbor.
    if (i > 0 && kept[i] < kept[i - 1]) ++out.summary.rows_reordered;
  }

  // 2. Materialize the selected rows in timestamp order.
  for (size_t row : kept) {
    std::vector<Cell> cells;
    cells.reserve(dataset.num_attributes());
    for (size_t c = 0; c < dataset.num_attributes(); ++c) {
      const Column& col = dataset.column(c);
      if (col.kind() == AttributeKind::kNumeric) {
        cells.emplace_back(col.numeric(row));
      } else {
        cells.emplace_back(col.CategoryName(col.code(row)));
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(
        out.data.AppendRow(dataset.timestamp(row), cells));
  }

  // 3. Per numeric column: mask Inf to NaN, then bridge short NaN runs by
  // linear interpolation between finite neighbors; edge runs hold the
  // nearest finite value. Runs longer than max_interpolate_gap stay NaN.
  for (size_t c = 0; c < out.data.num_attributes(); ++c) {
    Column* col = out.data.mutable_column(c);
    if (col->kind() != AttributeKind::kNumeric) continue;
    const size_t n = col->size();
    std::vector<double> values(col->numeric_values().begin(),
                               col->numeric_values().end());
    for (double& v : values) {
      if (std::isinf(v)) {
        v = kNan;
        ++out.summary.cells_masked_inf;
      }
    }

    // Spike masking: a run of at most max_spike_run consecutive extreme
    // outliers is a collector glitch — mask it so interpolation bridges
    // it. Longer outlier runs are genuine anomaly episodes (a real
    // saturation holds its level for many samples) and must survive
    // repair untouched; likewise a constant-noise column (MAD == 0) is
    // left alone rather than declaring every deviation a spike.
    if (options.max_spike_run > 0) {
      std::optional<double> median = FiniteMedian(values);
      if (median.has_value()) {
        std::vector<double> deviations;
        deviations.reserve(values.size());
        for (double v : values) {
          if (std::isfinite(v)) deviations.push_back(std::fabs(v - *median));
        }
        double robust_std = 1.4826 * common::Median(deviations);
        if (robust_std > 0.0) {
          double cutoff = options.outlier_zscore * robust_std;
          size_t r = 0;
          while (r < n) {
            if (!(std::isfinite(values[r]) &&
                  std::fabs(values[r] - *median) > cutoff)) {
              ++r;
              continue;
            }
            size_t end = r;
            while (end + 1 < n && std::isfinite(values[end + 1]) &&
                   std::fabs(values[end + 1] - *median) > cutoff) {
              ++end;
            }
            if (end - r + 1 <= options.max_spike_run) {
              for (size_t k = r; k <= end; ++k) {
                values[k] = kNan;
                ++out.summary.cells_masked_spike;
              }
            }
            r = end + 1;
          }
        }
      }
    }

    size_t i = 0;
    while (i < n) {
      if (!std::isnan(values[i])) {
        ++i;
        continue;
      }
      size_t j = i;
      while (j + 1 < n && std::isnan(values[j + 1])) ++j;
      size_t gap = j - i + 1;
      bool has_left = i > 0;
      bool has_right = j + 1 < n;
      if (gap > options.max_interpolate_gap || (!has_left && !has_right)) {
        out.summary.cells_left_nan += gap;
      } else if (has_left && has_right) {
        double lo = values[i - 1];
        double hi = values[j + 1];
        for (size_t k = i; k <= j; ++k) {
          double t = static_cast<double>(k - i + 1) /
                     static_cast<double>(gap + 1);
          values[k] = lo + (hi - lo) * t;
          ++out.summary.cells_interpolated;
        }
      } else {
        double fill = has_left ? values[i - 1] : values[j + 1];
        for (size_t k = i; k <= j; ++k) {
          values[k] = fill;
          ++out.summary.cells_interpolated;
        }
      }
      i = j + 1;
    }
    *col = Column(AttributeKind::kNumeric);
    for (double v : values) col->AppendNumeric(v);
  }
  return out;
}

}  // namespace dbsherlock::tsdata
