#ifndef DBSHERLOCK_TSDATA_REGION_H_
#define DBSHERLOCK_TSDATA_REGION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tsdata/dataset.h"

namespace dbsherlock::tsdata {

/// A half-open timestamp interval [start, end).
struct TimeRange {
  double start = 0.0;
  double end = 0.0;

  bool Contains(double t) const { return t >= start && t < end; }
  double length() const { return end - start; }
  bool valid() const { return end > start; }

  bool operator==(const TimeRange& other) const = default;
};

/// A union of time ranges, used for the user-selected abnormal (and
/// optionally normal) regions of Section 2.2.
class RegionSpec {
 public:
  RegionSpec() = default;
  explicit RegionSpec(std::vector<TimeRange> ranges)
      : ranges_(std::move(ranges)) {}

  void Add(TimeRange range) { ranges_.push_back(range); }
  void Add(double start, double end) { ranges_.push_back({start, end}); }

  bool empty() const { return ranges_.empty(); }
  const std::vector<TimeRange>& ranges() const { return ranges_; }

  bool Contains(double t) const {
    for (const auto& r : ranges_) {
      if (r.Contains(t)) return true;
    }
    return false;
  }

  /// Row indices of `dataset` whose timestamps fall inside any range.
  std::vector<size_t> RowsIn(const Dataset& dataset) const;

  /// Returns a copy with every range's boundaries scaled around its center
  /// by `factor` (e.g. 1.1 extends by 10%, 0.9 shrinks by 10%) — used by the
  /// robustness experiments of Appendix C.
  RegionSpec ScaledAroundCenter(double factor) const;

 private:
  std::vector<TimeRange> ranges_;
};

/// Per-row label derived from the user's selections. Rows outside both the
/// abnormal and (explicit) normal regions are ignored by the algorithm
/// (Section 4: "other tuples are ignored by DBSherlock").
enum class RowLabel {
  kNormal,
  kAbnormal,
  kIgnored,
};

/// The abnormal/normal region pair handed to the explainer. When `normal`
/// is empty, every row outside `abnormal` is implicitly normal
/// (Section 2.2).
struct DiagnosisRegions {
  RegionSpec abnormal;
  RegionSpec normal;  // Optional; empty means "rest of the data".

  RowLabel LabelOf(double timestamp) const {
    if (abnormal.Contains(timestamp)) return RowLabel::kAbnormal;
    if (normal.empty() || normal.Contains(timestamp)) return RowLabel::kNormal;
    return RowLabel::kIgnored;
  }
};

/// Splits `dataset` row indices by label.
struct LabeledRows {
  std::vector<size_t> abnormal;
  std::vector<size_t> normal;
};

LabeledRows SplitRows(const Dataset& dataset, const DiagnosisRegions& regions);

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_REGION_H_
