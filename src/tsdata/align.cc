#include "tsdata/align.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/stats.h"
#include "common/strings.h"

namespace dbsherlock::tsdata {

namespace {

/// Tracks the overall [min, max] timestamp across all inputs.
struct TimeExtent {
  double min = 0.0;
  double max = 0.0;
  bool any = false;

  void Fold(double t) {
    if (!any) {
      min = max = t;
      any = true;
    } else {
      min = std::min(min, t);
      max = std::max(max, t);
    }
  }
};

/// Index of the grid interval containing `t`; intervals are
/// [start + i*step, start + (i+1)*step).
size_t IntervalOf(double t, double start, double step, size_t num_intervals) {
  if (t <= start) return 0;
  size_t i = static_cast<size_t>((t - start) / step);
  return std::min(i, num_intervals - 1);
}

/// Aligns one counter stream onto the grid. `grid_end` is the grid extent
/// `start + step * num_intervals` (>= the requested end time when that is
/// not a step multiple); every input layer clips against it so all columns
/// agree on the last interval's contents.
std::vector<double> AlignCounter(const RawCounterSeries& series,
                                 double start, double step,
                                 size_t num_intervals, double grid_end) {
  // Sort a copy by timestamp (raw logs interleave writers).
  std::vector<RawSample> samples = series.samples;
  std::stable_sort(samples.begin(), samples.end(),
                   [](const RawSample& a, const RawSample& b) {
                     return a.timestamp < b.timestamp;
                   });

  std::vector<std::vector<double>> buckets(num_intervals);
  for (const RawSample& s : samples) {
    if (s.timestamp < start || s.timestamp >= grid_end) continue;
    buckets[IntervalOf(s.timestamp, start, step, num_intervals)].push_back(
        s.value);
  }

  std::vector<double> out(num_intervals, 0.0);
  double carried = 0.0;
  // kRate's cumulative baseline. Samples before the window never reach a
  // bucket, so fold them into the baseline here: the last pre-window
  // observation is the correct predecessor of the first in-grid sample.
  // Seeding from samples.front() alone lumped the whole pre-window counter
  // increase into the first in-grid interval as a spurious rate spike.
  double last_cumulative = samples.empty() ? 0.0 : samples.front().value;
  for (const RawSample& s : samples) {
    if (s.timestamp >= start) break;
    last_cumulative = s.value;
  }
  bool carried_valid = false;
  for (size_t i = 0; i < num_intervals; ++i) {
    const std::vector<double>& bucket = buckets[i];
    switch (series.aggregation) {
      case Aggregation::kMean:
        if (!bucket.empty()) {
          carried = common::Mean(bucket);
          carried_valid = true;
        }
        out[i] = carried_valid ? carried : 0.0;
        break;
      case Aggregation::kSum: {
        double sum = 0.0;
        for (double v : bucket) sum += v;
        out[i] = sum;
        break;
      }
      case Aggregation::kMax:
        out[i] = bucket.empty() ? 0.0 : common::Max(bucket);
        break;
      case Aggregation::kLast:
        if (!bucket.empty()) {
          carried = bucket.back();
          carried_valid = true;
        }
        out[i] = carried_valid ? carried : 0.0;
        break;
      case Aggregation::kRate: {
        // Per-second increase of a cumulative counter. A reset (negative
        // delta) counts the post-reset value as the increase.
        double delta = 0.0;
        for (double v : bucket) {
          double d = v - last_cumulative;
          delta += d >= 0.0 ? d : v;
          last_cumulative = v;
        }
        out[i] = delta / step;
        break;
      }
    }
  }
  return out;
}

}  // namespace

common::Result<Dataset> AlignLogs(
    const std::vector<RawCounterSeries>& counters,
    const std::vector<QueryLogEntry>& query_log,
    const std::vector<RawStateSeries>& states,
    const AlignmentOptions& options) {
  if (options.interval_sec <= 0.0) {
    return common::Status::InvalidArgument("interval must be positive");
  }

  // --- Validate names and find the time extent ---------------------------
  std::set<std::string> names;
  auto claim_name = [&](const std::string& name) -> common::Status {
    if (name.empty()) {
      return common::Status::InvalidArgument("empty attribute name");
    }
    if (!names.insert(name).second) {
      return common::Status::InvalidArgument("duplicate attribute: " + name);
    }
    return common::Status::OK();
  };

  TimeExtent extent;
  for (const RawCounterSeries& c : counters) {
    DBSHERLOCK_RETURN_NOT_OK(claim_name(c.name));
    for (const RawSample& s : c.samples) extent.Fold(s.timestamp);
  }
  for (const QueryLogEntry& q : query_log) extent.Fold(q.start_time);
  for (const RawStateSeries& st : states) {
    DBSHERLOCK_RETURN_NOT_OK(claim_name(st.name));
    for (const RawStateSample& s : st.samples) extent.Fold(s.timestamp);
  }
  if (!extent.any) {
    return common::Status::InvalidArgument("no input samples to align");
  }

  // --- Grid ----------------------------------------------------------------
  double step = options.interval_sec;
  double start = options.start_time;
  double end = options.end_time;
  if (start >= end) {
    start = std::floor(extent.min / step) * step;
    end = std::floor(extent.max / step) * step + step;
  }
  size_t num_intervals =
      static_cast<size_t>(std::llround(std::ceil((end - start) / step)));
  if (num_intervals == 0) {
    return common::Status::InvalidArgument("empty alignment window");
  }
  // The grid extent. When `end` is not a step multiple the last interval
  // extends past it; every layer (counters, query log, states) clips
  // against this one bound so they agree on that interval's contents.
  double grid_end = start + step * static_cast<double>(num_intervals);

  // --- Counter columns -------------------------------------------------------
  std::vector<std::vector<double>> counter_columns;
  counter_columns.reserve(counters.size());
  for (const RawCounterSeries& c : counters) {
    counter_columns.push_back(
        AlignCounter(c, start, step, num_intervals, grid_end));
  }

  // --- Query-log aggregates ----------------------------------------------
  bool have_queries = !query_log.empty();
  std::vector<std::vector<double>> latencies(num_intervals);
  // Keyed by the lowercased statement type: the emitted column is named
  // ToLower(type) + "_count", so "SELECT" and "select" must share one
  // bucket (raw keys made them collide into a duplicate-attribute error).
  std::map<std::string, std::vector<double>> type_counts;
  if (have_queries) {
    for (const QueryLogEntry& q : query_log) {
      type_counts.emplace(common::ToLower(q.statement_type),
                          std::vector<double>(num_intervals, 0.0));
    }
    for (const QueryLogEntry& q : query_log) {
      if (q.start_time < start || q.start_time >= grid_end) continue;
      size_t i = IntervalOf(q.start_time, start, step, num_intervals);
      latencies[i].push_back(q.duration_ms);
      type_counts[common::ToLower(q.statement_type)][i] += 1.0;
    }
  }

  // --- State columns -----------------------------------------------------
  struct AlignedState {
    const RawStateSeries* series;
    std::vector<std::string> values;  // per interval, LOCF
  };
  std::vector<AlignedState> state_columns;
  for (const RawStateSeries& st : states) {
    std::vector<RawStateSample> samples = st.samples;
    std::stable_sort(samples.begin(), samples.end(),
                     [](const RawStateSample& a, const RawStateSample& b) {
                       return a.timestamp < b.timestamp;
                     });
    AlignedState aligned{&st, std::vector<std::string>(num_intervals)};
    std::string current = samples.empty() ? "unknown" : samples.front().value;
    size_t next = 0;
    for (size_t i = 0; i < num_intervals; ++i) {
      double interval_end = start + step * static_cast<double>(i + 1);
      while (next < samples.size() && samples[next].timestamp < interval_end) {
        current = samples[next].value;
        ++next;
      }
      aligned.values[i] = current;
    }
    state_columns.push_back(std::move(aligned));
  }

  // --- Assemble the schema --------------------------------------------------
  Schema schema;
  for (const RawCounterSeries& c : counters) {
    DBSHERLOCK_RETURN_NOT_OK(
        schema.AddAttribute({c.name, AttributeKind::kNumeric}));
  }
  std::string quantile_name;
  if (have_queries) {
    DBSHERLOCK_RETURN_NOT_OK(
        schema.AddAttribute({"throughput_tps", AttributeKind::kNumeric}));
    DBSHERLOCK_RETURN_NOT_OK(
        schema.AddAttribute({"avg_latency_ms", AttributeKind::kNumeric}));
    quantile_name = common::StrFormat(
        "p%d_latency_ms",
        static_cast<int>(std::lround(options.latency_quantile * 100.0)));
    DBSHERLOCK_RETURN_NOT_OK(
        schema.AddAttribute({quantile_name, AttributeKind::kNumeric}));
    for (const auto& [type, counts] : type_counts) {
      // `type` is already lowercased at ingest (see type_counts above).
      DBSHERLOCK_RETURN_NOT_OK(
          schema.AddAttribute({type + "_count", AttributeKind::kNumeric}));
    }
  }
  for (const RawStateSeries& st : states) {
    DBSHERLOCK_RETURN_NOT_OK(
        schema.AddAttribute({st.name, AttributeKind::kCategorical}));
  }

  // --- Emit rows ----------------------------------------------------------
  Dataset dataset(schema);
  // Latency is a gauge: an idle interval has no observation, so the last
  // observed aggregate is carried forward (same contract as kMean/kLast
  // counters; 0 before any traffic). Emitting a hard 0 on idle seconds
  // manufactured a latency cliff that predicate generation latched onto.
  // Throughput stays 0 on idle intervals — that one really is a rate.
  double carried_avg_latency = 0.0;
  double carried_quantile_latency = 0.0;
  for (size_t i = 0; i < num_intervals; ++i) {
    std::vector<Cell> cells;
    cells.reserve(schema.num_attributes());
    for (const auto& column : counter_columns) cells.emplace_back(column[i]);
    if (have_queries) {
      cells.emplace_back(static_cast<double>(latencies[i].size()) / step);
      if (!latencies[i].empty()) {
        carried_avg_latency = common::Mean(latencies[i]);
        carried_quantile_latency =
            common::Quantile(latencies[i], options.latency_quantile);
      }
      cells.emplace_back(carried_avg_latency);
      cells.emplace_back(carried_quantile_latency);
      for (const auto& [type, counts] : type_counts) {
        cells.emplace_back(counts[i]);
      }
    }
    for (const AlignedState& st : state_columns) {
      cells.emplace_back(st.values[i]);
    }
    DBSHERLOCK_RETURN_NOT_OK(
        dataset.AppendRow(start + step * static_cast<double>(i), cells));
  }
  return dataset;
}

}  // namespace dbsherlock::tsdata
