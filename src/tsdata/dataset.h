#ifndef DBSHERLOCK_TSDATA_DATASET_H_
#define DBSHERLOCK_TSDATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/status.h"
#include "tsdata/schema.h"

namespace dbsherlock::tsdata {

/// A cell value used when building rows: a double for numeric attributes or
/// a string for categorical ones.
using Cell = std::variant<double, std::string>;

/// One column of a Dataset. Numeric columns store doubles; categorical
/// columns store dictionary codes plus the dictionary itself, so predicate
/// evaluation compares small integers.
class Column {
 public:
  explicit Column(AttributeKind kind) : kind_(kind) {}

  AttributeKind kind() const { return kind_; }
  size_t size() const {
    return kind_ == AttributeKind::kNumeric ? numeric_.size() : codes_.size();
  }

  // --- Numeric access -------------------------------------------------
  void AppendNumeric(double v) { numeric_.push_back(v); }
  double numeric(size_t row) const { return numeric_[row]; }
  std::span<const double> numeric_values() const { return numeric_; }

  // --- Categorical access ---------------------------------------------
  /// Appends a category value, interning it in the dictionary.
  void AppendCategorical(const std::string& value);
  int32_t code(size_t row) const { return codes_[row]; }
  std::span<const int32_t> codes() const { return codes_; }
  const std::string& CategoryName(int32_t code) const {
    return dictionary_[static_cast<size_t>(code)];
  }
  /// Number of distinct category values seen (|Unique(Attr)|).
  size_t num_categories() const { return dictionary_.size(); }
  /// Dictionary code for `value`, or -1 if the value was never seen.
  int32_t CodeOf(const std::string& value) const;

 private:
  AttributeKind kind_;
  std::vector<double> numeric_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dictionary_;
  std::unordered_map<std::string, int32_t> dictionary_index_;
};

/// The aligned statistics table DBSherlock operates on (Section 2.1): one
/// row per collection interval, `(Timestamp, Attr1, ..., Attrk)`, stored
/// column-wise. Timestamps are seconds and must be non-decreasing.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return timestamps_.size(); }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends one row. `cells` must match the schema arity and kinds.
  common::Status AppendRow(double timestamp, const std::vector<Cell>& cells);

  /// Appends one row without the non-decreasing-timestamp check (cells are
  /// still validated against the schema). This is the ingestion path for
  /// hostile telemetry — fault-injected streams and CSVs read with
  /// `allow_unsorted` — which RepairDataset later sorts and dedupes. Normal
  /// producers should use AppendRow.
  common::Status AppendRowUnchecked(double timestamp,
                                    const std::vector<Cell>& cells);

  /// True when timestamps are non-decreasing (the invariant every consumer
  /// past the repair pipeline may assume).
  bool TimestampsSorted() const;

  double timestamp(size_t row) const { return timestamps_[row]; }
  std::span<const double> timestamps() const { return timestamps_; }

  const Column& column(size_t attr) const { return columns_[attr]; }
  Column* mutable_column(size_t attr) { return &columns_[attr]; }

  /// Column lookup by attribute name.
  common::Result<const Column*> ColumnByName(const std::string& name) const;

  /// Row indices whose timestamp lies in [start, end).
  std::vector<size_t> RowsInTimeRange(double start, double end) const;

  /// Copies rows [begin, end) into a new dataset with the same schema.
  Dataset Slice(size_t begin, size_t end) const;

 private:
  Schema schema_;
  std::vector<double> timestamps_;
  std::vector<Column> columns_;
};

}  // namespace dbsherlock::tsdata

#endif  // DBSHERLOCK_TSDATA_DATASET_H_
