#ifndef DBSHERLOCK_CORE_STREAMING_MONITOR_H_
#define DBSHERLOCK_CORE_STREAMING_MONITOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "core/anomaly_detector.h"
#include "core/explainer.h"
#include "tsdata/dataset.h"

namespace dbsherlock::core {

/// Online monitoring: the paper's DBAs "constantly monitor their OLTP
/// workload"; this class packages Section 7's detector for that setting.
/// Telemetry rows stream in one per collection interval; the monitor keeps
/// a sliding window, periodically runs automatic anomaly detection over
/// it, and emits an alert — with the diagnosis — whenever a *new* anomaly
/// region appears (regions already alerted on are suppressed until they
/// end).
class StreamingMonitor {
 public:
  struct Options {
    /// Sliding window length in rows (the detector needs enough normal
    /// context; the paper's detection assumes the anomaly is < 20% of the
    /// window).
    size_t window_rows = 600;
    /// Detection cadence: run the detector every this many appended rows.
    size_t detect_every = 15;
    /// Minimum rows before the first detection.
    size_t warmup_rows = 120;
    AnomalyDetectorOptions detector;
    /// Diagnosis configuration for alerts (causal models may be preloaded
    /// into the monitor's explainer).
    Explainer::Options explainer;
    /// When false, Append stops after detection: the alert still carries
    /// the region (and raised_at) but its explanation stays empty, for
    /// callers that run diagnosis out-of-band on their own worker pool —
    /// the service's background diagnosis loop snapshots the window and
    /// diagnoses there instead of blocking the ingest thread.
    bool diagnose_inline = true;
    /// Optional per-instance metrics label. The process-wide
    /// `streaming_monitor.*` counters are always the sum over every
    /// monitor in the process (sum-safe: each event is counted exactly
    /// once there). When `metric_label` is non-empty, the same events are
    /// additionally mirrored into `streaming_monitor.instance.<label>.*`,
    /// a disjoint namespace, so multi-tenant deployments can tell
    /// instances apart without double-counting the aggregate.
    std::string metric_label;
  };

  /// One emitted alert: the detected region (in stream timestamps) and the
  /// explanation computed over the current window.
  struct Alert {
    tsdata::TimeRange region;
    Explanation explanation;
    /// Timestamp of the row whose arrival triggered the alert.
    double raised_at = 0.0;
  };

  explicit StreamingMonitor(const tsdata::Schema& schema, Options options);

  /// Appends one telemetry row; returns an alert when a new anomaly region
  /// is detected at this step (std::nullopt otherwise — including on
  /// append errors, which leave the monitor unchanged).
  ///
  /// Hostile-stream contract: a row with a non-finite timestamp, a
  /// timestamp equal to the newest buffered row (duplicate), or an earlier
  /// timestamp (late arrival) is DROPPED — never allowed to corrupt the
  /// window's ordering invariant — counted in the *_dropped() counters,
  /// and recorded in last_append_status(). Row content is still validated
  /// by Dataset::AppendRow (arity, cell kinds).
  std::optional<Alert> Append(double timestamp,
                              const std::vector<tsdata::Cell>& cells);

  /// Pre-fills the window from persisted history (restart rehydration from
  /// the tenant's store). Rows must be strictly increasing and newer than
  /// anything already buffered; the whole tail is rejected otherwise. No
  /// detection runs, and the hydrated span is marked already-alerted so a
  /// restart never re-raises alerts for anomalies that predate it. Only
  /// valid before live appends (window must still warm up normally
  /// afterwards if the tail is short).
  common::Status Hydrate(const tsdata::Dataset& tail);

  /// The explainer used for alert diagnoses (preload causal models here).
  Explainer& explainer() { return explainer_; }

  /// Rows currently buffered.
  size_t window_size() const { return window_.num_rows(); }
  /// The current sliding window (read-only). Thread contract: only the
  /// thread that owns Append may touch this — the service's drain worker
  /// snapshots it here when an alert fires, before handing the copy to the
  /// background diagnosis pool.
  const tsdata::Dataset& window() const { return window_; }
  /// Total rows ever appended.
  size_t rows_seen() const { return rows_seen_; }
  /// All alerts raised so far (most recent last).
  const std::vector<Alert>& alerts() const { return alerts_; }

  /// Dropped-row accounting (see Append's hostile-stream contract). These
  /// are the per-instance counts; the same events also increment the
  /// process-wide `streaming_monitor.*` counters in
  /// `common::MetricsRegistry`, which is what --metrics-out exports.
  size_t late_rows_dropped() const { return late_rows_dropped_; }
  size_t duplicate_rows_dropped() const { return duplicate_rows_dropped_; }
  size_t non_finite_rows_dropped() const { return non_finite_rows_dropped_; }
  /// Status of the most recent Append: OK when the row was accepted, an
  /// InvalidArgument describing why it was dropped otherwise.
  const common::Status& last_append_status() const {
    return last_append_status_;
  }

 private:
  /// Drops rows older than the window and re-bases storage.
  void TrimWindow();

  /// The per-instance labeled mirrors (all nullptr when Options::
  /// metric_label is empty). Aggregate counters live in the .cc.
  struct InstanceCounters {
    common::Counter* rows_appended = nullptr;
    common::Counter* rows_dropped_late = nullptr;
    common::Counter* rows_dropped_duplicate = nullptr;
    common::Counter* rows_dropped_non_finite = nullptr;
    common::Counter* detections_run = nullptr;
    common::Counter* alerts_raised = nullptr;
  };

  Options options_;
  InstanceCounters instance_;
  tsdata::Dataset window_;
  Explainer explainer_;
  size_t rows_seen_ = 0;
  size_t rows_since_detect_ = 0;
  size_t late_rows_dropped_ = 0;
  size_t duplicate_rows_dropped_ = 0;
  size_t non_finite_rows_dropped_ = 0;
  common::Status last_append_status_ = common::Status::OK();
  std::vector<Alert> alerts_;
  /// End timestamp of the most recently alerted region; regions starting
  /// before this are considered already reported.
  double alerted_until_ = -1e300;
};

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_STREAMING_MONITOR_H_
