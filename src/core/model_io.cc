#include "core/model_io.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace dbsherlock::core {

namespace {

using common::JsonValue;

constexpr int kFormatVersion = 1;

const char* PredicateTypeName(PredicateType type) {
  switch (type) {
    case PredicateType::kLessThan:
      return "lt";
    case PredicateType::kGreaterThan:
      return "gt";
    case PredicateType::kRange:
      return "range";
    case PredicateType::kInSet:
      return "in";
  }
  return "unknown";
}

common::Result<PredicateType> PredicateTypeFromName(const std::string& name) {
  if (name == "lt") return PredicateType::kLessThan;
  if (name == "gt") return PredicateType::kGreaterThan;
  if (name == "range") return PredicateType::kRange;
  if (name == "in") return PredicateType::kInSet;
  return common::Status::ParseError("unknown predicate type: " + name);
}

}  // namespace

JsonValue PredicateToJson(const Predicate& predicate) {
  JsonValue::Object out;
  out["attribute"] = predicate.attribute;
  out["type"] = PredicateTypeName(predicate.type);
  switch (predicate.type) {
    case PredicateType::kLessThan:
      out["high"] = predicate.high;
      break;
    case PredicateType::kGreaterThan:
      out["low"] = predicate.low;
      break;
    case PredicateType::kRange:
      out["low"] = predicate.low;
      out["high"] = predicate.high;
      break;
    case PredicateType::kInSet: {
      JsonValue::Array categories;
      for (const std::string& c : predicate.categories) {
        categories.emplace_back(c);
      }
      out["categories"] = JsonValue(std::move(categories));
      break;
    }
  }
  return JsonValue(std::move(out));
}

common::Result<Predicate> PredicateFromJson(const JsonValue& json) {
  Predicate pred;
  auto attribute = json.GetString("attribute");
  if (!attribute.ok()) return attribute.status();
  pred.attribute = *attribute;

  auto type_name = json.GetString("type");
  if (!type_name.ok()) return type_name.status();
  auto type = PredicateTypeFromName(*type_name);
  if (!type.ok()) return type.status();
  pred.type = *type;

  switch (pred.type) {
    case PredicateType::kLessThan: {
      auto high = json.GetNumber("high");
      if (!high.ok()) return high.status();
      pred.high = *high;
      break;
    }
    case PredicateType::kGreaterThan: {
      auto low = json.GetNumber("low");
      if (!low.ok()) return low.status();
      pred.low = *low;
      break;
    }
    case PredicateType::kRange: {
      auto low = json.GetNumber("low");
      if (!low.ok()) return low.status();
      auto high = json.GetNumber("high");
      if (!high.ok()) return high.status();
      pred.low = *low;
      pred.high = *high;
      // NaN bounds (never produced by a save, but reachable through
      // overflowing literals like 1e999 minus mutation) would make this
      // predicate silently unsatisfiable; treat as corruption.
      if (std::isnan(pred.low) || std::isnan(pred.high) ||
          pred.high < pred.low) {
        return common::Status::ParseError(
            "range predicate with invalid bounds: " + pred.attribute);
      }
      break;
    }
    case PredicateType::kInSet: {
      auto categories = json.GetArray("categories");
      if (!categories.ok()) return categories.status();
      for (const JsonValue& c : (*categories)->as_array()) {
        if (!c.is_string()) {
          return common::Status::ParseError(
              "non-string category in predicate: " + pred.attribute);
        }
        pred.categories.push_back(c.as_string());
      }
      if (pred.categories.empty()) {
        return common::Status::ParseError(
            "empty category set in predicate: " + pred.attribute);
      }
      break;
    }
  }
  return pred;
}

JsonValue CausalModelToJson(const CausalModel& model) {
  JsonValue::Object out;
  out["cause"] = model.cause;
  out["num_sources"] = model.num_sources;
  if (!model.suggested_action.empty()) {
    out["suggested_action"] = model.suggested_action;
  }
  JsonValue::Array predicates;
  for (const Predicate& p : model.predicates) {
    predicates.push_back(PredicateToJson(p));
  }
  out["predicates"] = JsonValue(std::move(predicates));
  return JsonValue(std::move(out));
}

common::Result<CausalModel> CausalModelFromJson(const JsonValue& json) {
  CausalModel model;
  auto cause = json.GetString("cause");
  if (!cause.ok()) return cause.status();
  model.cause = *cause;
  if (model.cause.empty()) {
    return common::Status::ParseError("causal model with empty cause");
  }

  // Hostile-input note: a bit-flipped file can carry any double here, and
  // double->int casts outside int's range are UB — clamp in double space
  // before converting (the count only feeds merge bookkeeping, so
  // saturating is fine).
  auto num_sources = json.GetNumber("num_sources");
  double sources = num_sources.ok() ? *num_sources : 1.0;
  if (!std::isfinite(sources) || sources < 1.0) sources = 1.0;
  if (sources > 1e9) sources = 1e9;
  model.num_sources = static_cast<int>(sources);

  const JsonValue* action = json.Find("suggested_action");
  if (action != nullptr && action->is_string()) {
    model.suggested_action = action->as_string();
  }

  auto predicates = json.GetArray("predicates");
  if (!predicates.ok()) return predicates.status();
  for (const JsonValue& pj : (*predicates)->as_array()) {
    auto pred = PredicateFromJson(pj);
    if (!pred.ok()) return pred.status();
    model.predicates.push_back(std::move(*pred));
  }
  return model;
}

JsonValue RepositoryToJson(const ModelRepository& repository) {
  JsonValue::Object out;
  out["version"] = kFormatVersion;
  JsonValue::Array models;
  for (const CausalModel& m : repository.models()) {
    models.push_back(CausalModelToJson(m));
  }
  out["models"] = JsonValue(std::move(models));
  return JsonValue(std::move(out));
}

common::Result<ModelRepository> RepositoryFromJson(const JsonValue& json) {
  // Compare in double space: casting an arbitrary (possibly huge or
  // non-integral) version number to int first would be UB on hostile
  // files; the format check itself needs no integer conversion.
  auto version = json.GetNumber("version");
  if (!version.ok()) return version.status();
  if (*version != static_cast<double>(kFormatVersion)) {
    return common::Status::ParseError(common::StrFormat(
        "unsupported model file version %g", *version));
  }
  auto models = json.GetArray("models");
  if (!models.ok()) return models.status();

  ModelRepository repo;
  for (const JsonValue& mj : (*models)->as_array()) {
    auto model = CausalModelFromJson(mj);
    if (!model.ok()) return model.status();
    // AddUnmerged preserves the stored state verbatim; merging already
    // happened before the save.
    repo.AddUnmerged(std::move(*model));
  }
  return repo;
}

common::Status SaveRepository(const ModelRepository& repository,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return common::Status::IoError("cannot open for write: " + path);
  out << RepositoryToJson(repository).Dump(/*indent=*/2) << "\n";
  if (!out) return common::Status::IoError("write failed: " + path);
  return common::Status::OK();
}

common::Result<ModelRepository> LoadRepository(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return common::Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto json = common::ParseJson(buffer.str());
  if (!json.ok()) return json.status();
  return RepositoryFromJson(*json);
}

}  // namespace dbsherlock::core
