#ifndef DBSHERLOCK_CORE_DOMAIN_KNOWLEDGE_H_
#define DBSHERLOCK_CORE_DOMAIN_KNOWLEDGE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/predicate_generator.h"
#include "tsdata/dataset.h"

namespace dbsherlock::core {

/// One domain-knowledge rule `cause -> effect` (Section 5): when predicates
/// are extracted on both attributes, the effect's predicate is likely a
/// secondary symptom of the cause's.
struct DomainRule {
  std::string cause_attribute;
  std::string effect_attribute;

  bool operator==(const DomainRule& other) const = default;
};

/// Parameters of the mutual-information independence test that validates a
/// rule before pruning (Section 5).
struct IndependenceTestOptions {
  /// kappa_t: attributes with independence factor below this are considered
  /// independent, so the rule is NOT applied.
  double kappa_threshold = 0.15;
  /// gamma: equi-width bins per numeric attribute for the joint histogram.
  size_t bins = 100;
};

/// A set of attribute-semantics rules with the paper's validity conditions:
/// a rule and its reverse cannot coexist, and self-rules are rejected.
class DomainKnowledge {
 public:
  DomainKnowledge() = default;

  /// Adds a rule; rejects duplicates, self-rules and reversed rules
  /// (condition (ii) of Section 5).
  common::Status AddRule(DomainRule rule);

  const std::vector<DomainRule>& rules() const { return rules_; }
  bool empty() const { return rules_.empty(); }

  /// The four rules the paper uses for MySQL on Linux, mapped onto this
  /// repository's metric names:
  ///   dbms_cpu_usage -> os_cpu_usage      (subset relationship)
  ///   os_allocated_pages -> os_free_pages (complement)
  ///   os_used_swap_kb -> os_free_swap_kb  (complement)
  ///   os_cpu_usage -> os_cpu_idle         (complement)
  static DomainKnowledge MySqlLinuxDefaults();

  /// Computes the independence factor kappa between two attributes of
  /// `dataset` (Section 5): numeric attributes are discretized with
  /// `options.bins` equi-width bins; categorical attributes use one bin per
  /// category. Returns 0 when either attribute is missing.
  static double ComputeKappa(const tsdata::Dataset& dataset,
                             const std::string& attr_a,
                             const std::string& attr_b,
                             const IndependenceTestOptions& options);

  /// Prunes secondary symptoms from `diagnoses`: for each rule
  /// `i -> j` whose two attributes both carry extracted predicates, the
  /// effect predicate j is removed iff the attributes FAIL the independence
  /// test (kappa >= kappa_t), i.e. the data supports the dependence the
  /// rule asserts. Returns the surviving diagnoses in their input order.
  std::vector<AttributeDiagnosis> PruneSecondarySymptoms(
      const tsdata::Dataset& dataset,
      std::vector<AttributeDiagnosis> diagnoses,
      const IndependenceTestOptions& options) const;

 private:
  std::vector<DomainRule> rules_;
};

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_DOMAIN_KNOWLEDGE_H_
