#include "core/model_repository.h"

#include <algorithm>
#include <map>
#include <span>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"
#include "core/partition_cache.h"

namespace dbsherlock::core {

void ModelRepository::Add(CausalModel model) {
  for (CausalModel& existing : models_) {
    if (existing.cause != model.cause) continue;
    auto merged = MergeCausalModels(existing, model);
    // Causes match, so MergeCausalModels cannot fail here.
    if (merged.ok() && !merged->predicates.empty()) {
      existing = std::move(*merged);
    } else {
      // Nothing survived the merge: the anomaly instances were too
      // different. Keep the newer model rather than an empty shell.
      existing = std::move(model);
    }
    return;
  }
  models_.push_back(std::move(model));
}

void ModelRepository::AddUnmerged(CausalModel model) {
  models_.push_back(std::move(model));
}

const CausalModel* ModelRepository::Find(const std::string& cause) const {
  for (const CausalModel& m : models_) {
    if (m.cause == cause) return &m;
  }
  return nullptr;
}

std::vector<RankedCause> ModelRepository::Rank(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    const PredicateGenOptions& options, double min_confidence) const {
  // One partition-space build per referenced attribute for the whole
  // ranking (historically one per model per predicate), then models score
  // in parallel against the read-only cache. The best-per-cause fold stays
  // serial in model order, so results match the serial path exactly.
  TRACE_SPAN("repository.rank");
  static common::Counter* scored =
      common::MetricsRegistry::Global().GetCounter("repository.models_scored");
  PartitionSpaceCache cache(dataset, rows, options);
  cache.Prepare(std::span<const CausalModel>(models_));
  std::vector<double> confidences;
  {
    TRACE_SPAN("repository.score_models");
    confidences = common::ParallelMap(
        models_.size(),
        [&](size_t i) { return ModelConfidence(models_[i], cache); },
        options.parallelism);
  }
  scored->Increment(models_.size());

  std::map<std::string, std::pair<double, const CausalModel*>> best;
  for (size_t i = 0; i < models_.size(); ++i) {
    const CausalModel& m = models_[i];
    double confidence = confidences[i];
    auto it = best.find(m.cause);
    if (it == best.end() || confidence > it->second.first) {
      best[m.cause] = {confidence, &m};
    }
  }
  std::vector<RankedCause> ranked;
  for (const auto& [cause, entry] : best) {
    if (entry.first > min_confidence) {
      ranked.push_back({cause, entry.first, entry.second->suggested_action});
    }
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedCause& a, const RankedCause& b) {
                     return a.confidence > b.confidence;
                   });
  return ranked;
}

}  // namespace dbsherlock::core
