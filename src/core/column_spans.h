#ifndef DBSHERLOCK_CORE_COLUMN_SPANS_H_
#define DBSHERLOCK_CORE_COLUMN_SPANS_H_

// Contiguous-run decomposition of diagnosis row sets (DESIGN.md §12).
//
// LabeledRows lists row indices one by one, but the lists come from time
// ranges and are therefore (nearly always) a handful of contiguous runs.
// The batch kernel paths exploit that: decompose the index lists into runs
// ONCE per diagnosis, then every attribute sweep, partition labeling and
// separation-power count walks `values + run.begin` as a contiguous column
// span through the SIMD kernels instead of gathering row by row.
//
// A DiagnosisRuns is built once (GeneratePredicates, PartitionSpaceCache::
// Prepare, ModelConfidence) and shared across all attributes/models of that
// diagnosis; the column_spans.runs_built / column_spans.runs_reused
// counters make the reuse rate observable (tools/dbsherlock metrics).

#include <cstddef>
#include <span>
#include <vector>

#include "tsdata/region.h"

namespace dbsherlock::core {

/// A maximal run of consecutive row indices [begin, end).
struct RowRun {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Decomposes a sorted index list into maximal contiguous runs. Indices
/// out of order start a new run (correct, just not fast).
std::vector<RowRun> ContiguousRuns(const std::vector<size_t>& rows);

/// The run decomposition of one diagnosis' labeled rows.
struct DiagnosisRuns {
  std::vector<RowRun> abnormal;
  std::vector<RowRun> normal;

  /// Total rows per region (the separation-power denominators).
  size_t abnormal_rows = 0;
  size_t normal_rows = 0;
};

/// Builds the run decomposition (increments column_spans.runs_built).
DiagnosisRuns BuildDiagnosisRuns(const tsdata::LabeledRows& rows);

/// Call once per consumer that reuses an already-built DiagnosisRuns
/// instead of re-deriving it (increments column_spans.runs_reused).
void NoteDiagnosisRunsReused();

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_COLUMN_SPANS_H_
