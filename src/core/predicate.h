#ifndef DBSHERLOCK_CORE_PREDICATE_H_
#define DBSHERLOCK_CORE_PREDICATE_H_

#include <string>
#include <vector>

#include "core/column_spans.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// The predicate shapes of Section 3: `Attr < x`, `Attr > x`,
/// `x < Attr < y` for numeric attributes and `Attr IN {c1, ..., cl}` for
/// categorical ones. DBSherlock returns a conjunct of these to the user.
enum class PredicateType {
  kLessThan,     // value <  high
  kGreaterThan,  // value >= low (displayed as ">")
  kRange,        // low <= value < high
  kInSet,        // categorical value in `categories`
};

/// One simple predicate over a single attribute. Predicates are portable
/// across datasets: they refer to attributes by name and to categories by
/// string value, so a predicate extracted from one dataset can be evaluated
/// on another (needed for causal-model confidence, Section 6.1).
struct Predicate {
  std::string attribute;
  PredicateType type = PredicateType::kGreaterThan;
  /// Numeric boundaries. kLessThan uses `high` only, kGreaterThan `low`
  /// only, kRange both (low <= v < high).
  double low = 0.0;
  double high = 0.0;
  /// Category values for kInSet.
  std::vector<std::string> categories;

  bool is_numeric() const { return type != PredicateType::kInSet; }

  /// Evaluates on a numeric value (numeric predicates only).
  bool MatchesNumeric(double value) const;

  /// Evaluates on a category value (kInSet only).
  bool MatchesCategory(const std::string& value) const;

  /// Evaluates against row `row` of `dataset`. Returns false when the
  /// attribute is missing or of the wrong kind.
  bool MatchesRow(const tsdata::Dataset& dataset, size_t row) const;

  /// Human-readable form, e.g. "os_cpu_usage > 72.4" or
  /// "dominant_statement IN {scan}".
  std::string ToString() const;
};

/// The separation power of Eq. (1): the fraction of abnormal tuples
/// satisfying the predicate minus the fraction of normal tuples satisfying
/// it. Ranges in [-1, 1]; higher separates better.
double SeparationPower(const Predicate& predicate,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows);

/// Batch fast path of Eq. (1): resolves the attribute once (the row-at-a-
/// time form re-hashes the schema per row) and counts each contiguous run
/// of diagnosis rows with the dispatched CountMatches kernel. Numeric
/// predicates only take this path; kInSet falls back to the row loop.
/// Matches the row-at-a-time result exactly (NaN cells match nothing in
/// both forms).
double SeparationPower(const Predicate& predicate,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows,
                       const DiagnosisRuns& runs);

/// Evaluates a conjunct of predicates on one row (all must match). An empty
/// conjunct matches nothing (a diagnosis with no predicates flags no rows).
bool ConjunctMatchesRow(const std::vector<Predicate>& predicates,
                        const tsdata::Dataset& dataset, size_t row);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_PREDICATE_H_
