#include "core/domain_knowledge.h"

#include <algorithm>
#include <unordered_set>

#include "common/stats.h"

namespace dbsherlock::core {

common::Status DomainKnowledge::AddRule(DomainRule rule) {
  if (rule.cause_attribute == rule.effect_attribute) {
    return common::Status::InvalidArgument(
        "self-rule not allowed: " + rule.cause_attribute);
  }
  for (const DomainRule& existing : rules_) {
    if (existing == rule) {
      return common::Status::InvalidArgument(
          "duplicate rule: " + rule.cause_attribute + " -> " +
          rule.effect_attribute);
    }
    if (existing.cause_attribute == rule.effect_attribute &&
        existing.effect_attribute == rule.cause_attribute) {
      return common::Status::InvalidArgument(
          "reversed rule already exists: " + rule.effect_attribute + " -> " +
          rule.cause_attribute);
    }
  }
  rules_.push_back(std::move(rule));
  return common::Status::OK();
}

DomainKnowledge DomainKnowledge::MySqlLinuxDefaults() {
  DomainKnowledge dk;
  (void)dk.AddRule({"dbms_cpu_usage", "os_cpu_usage"});
  (void)dk.AddRule({"os_allocated_pages", "os_free_pages"});
  (void)dk.AddRule({"os_used_swap_kb", "os_free_swap_kb"});
  (void)dk.AddRule({"os_cpu_usage", "os_cpu_idle"});
  return dk;
}

namespace {

/// Column values as doubles for the joint histogram: numeric values
/// directly, categorical dictionary codes otherwise.
std::vector<double> ColumnAsDoubles(const tsdata::Column& col) {
  std::vector<double> out;
  out.reserve(col.size());
  if (col.kind() == tsdata::AttributeKind::kNumeric) {
    auto values = col.numeric_values();
    out.assign(values.begin(), values.end());
  } else {
    for (size_t i = 0; i < col.size(); ++i) {
      out.push_back(static_cast<double>(col.code(i)));
    }
  }
  return out;
}

size_t BinsFor(const tsdata::Column& col, size_t numeric_bins) {
  if (col.kind() == tsdata::AttributeKind::kNumeric) return numeric_bins;
  return std::max<size_t>(col.num_categories(), 1);
}

}  // namespace

double DomainKnowledge::ComputeKappa(const tsdata::Dataset& dataset,
                                     const std::string& attr_a,
                                     const std::string& attr_b,
                                     const IndependenceTestOptions& options) {
  auto col_a = dataset.ColumnByName(attr_a);
  auto col_b = dataset.ColumnByName(attr_b);
  if (!col_a.ok() || !col_b.ok()) return 0.0;

  std::vector<double> xs = ColumnAsDoubles(**col_a);
  std::vector<double> ys = ColumnAsDoubles(**col_b);
  if (xs.size() != ys.size() || xs.empty()) return 0.0;

  common::JointHistogram hist(
      common::Min(xs), common::Max(xs), BinsFor(**col_a, options.bins),
      common::Min(ys), common::Max(ys), BinsFor(**col_b, options.bins));
  for (size_t i = 0; i < xs.size(); ++i) hist.Add(xs[i], ys[i]);
  return hist.IndependenceFactor();
}

std::vector<AttributeDiagnosis> DomainKnowledge::PruneSecondarySymptoms(
    const tsdata::Dataset& dataset, std::vector<AttributeDiagnosis> diagnoses,
    const IndependenceTestOptions& options) const {
  if (rules_.empty() || diagnoses.empty()) return diagnoses;

  std::unordered_set<std::string> extracted;
  for (const auto& d : diagnoses) extracted.insert(d.predicate.attribute);

  std::unordered_set<std::string> pruned;
  for (const DomainRule& rule : rules_) {
    if (!extracted.contains(rule.cause_attribute) ||
        !extracted.contains(rule.effect_attribute)) {
      continue;
    }
    double kappa = ComputeKappa(dataset, rule.cause_attribute,
                                rule.effect_attribute, options);
    // kappa >= threshold: the attributes are dependent in this data, so the
    // rule holds and the effect predicate is a secondary symptom.
    if (kappa >= options.kappa_threshold) {
      pruned.insert(rule.effect_attribute);
    }
  }
  if (pruned.empty()) return diagnoses;

  std::vector<AttributeDiagnosis> out;
  out.reserve(diagnoses.size());
  for (auto& d : diagnoses) {
    if (!pruned.contains(d.predicate.attribute)) out.push_back(std::move(d));
  }
  return out;
}

}  // namespace dbsherlock::core
