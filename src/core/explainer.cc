#include "core/explainer.h"

#include "common/metrics.h"
#include "common/trace.h"

namespace dbsherlock::core {

std::string Explanation::PredicatesToString() const {
  std::string out;
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (i > 0) out += " AND ";
    out += predicates[i].predicate.ToString();
  }
  return out;
}

std::string Explanation::WarningsToString() const {
  std::string out;
  for (const DataQualityWarning& w : warnings) {
    out += w.attribute + ": " + w.reason + "\n";
  }
  return out;
}

Explanation Explainer::Diagnose(const tsdata::Dataset& dataset,
                                const tsdata::DiagnosisRegions& regions) const {
  TRACE_SPAN("explainer.diagnose");
  static common::Counter* diagnoses =
      common::MetricsRegistry::Global().GetCounter("explainer.diagnoses");
  static common::LatencyHistogram* latency =
      common::MetricsRegistry::Global().GetHistogram("explainer.diagnose_us");
  diagnoses->Increment();
  common::ScopedLatency timer(latency);

  Explanation out;
  // One row split feeds both predicate generation and model ranking
  // (historically each re-derived it from the regions).
  tsdata::LabeledRows rows = SplitRows(dataset, regions);
  PredicateGenResult generated =
      GeneratePredicates(dataset, rows, options_.predicate_options);
  out.predicates = std::move(generated.predicates);
  out.warnings = std::move(generated.warnings);

  if (options_.apply_domain_knowledge && !options_.domain_knowledge.empty()) {
    TRACE_SPAN("explainer.domain_knowledge_pruning");
    out.predicates = options_.domain_knowledge.PruneSecondarySymptoms(
        dataset, std::move(out.predicates), options_.independence_options);
  }

  if (!repository_.empty()) {
    TRACE_SPAN("explainer.model_matching");
    out.causes = repository_.Rank(dataset, rows, options_.predicate_options,
                                  options_.confidence_threshold);
  }
  return out;
}

Explanation Explainer::DiagnoseAuto(const tsdata::Dataset& dataset,
                                    DetectionResult* detected) const {
  TRACE_SPAN("explainer.diagnose_auto");
  DetectionResult detection =
      DetectAnomalies(dataset, options_.detector_options);
  if (detected != nullptr) *detected = detection;
  return Diagnose(
      dataset, DetectionToRegions(detection, dataset,
                                  options_.detector_options));
}

void Explainer::AcceptDiagnosis(const std::string& cause,
                                const Explanation& explanation,
                                const std::string& action) {
  CausalModel model;
  model.cause = cause;
  model.suggested_action = action;
  for (const AttributeDiagnosis& d : explanation.predicates) {
    model.predicates.push_back(d.predicate);
  }
  repository_.Add(std::move(model));
}

}  // namespace dbsherlock::core
