#ifndef DBSHERLOCK_CORE_PREDICATE_GENERATOR_H_
#define DBSHERLOCK_CORE_PREDICATE_GENERATOR_H_

#include <optional>
#include <span>
#include <vector>

#include "core/partition_space.h"
#include "core/predicate.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// Tuning parameters of the predicate-generation algorithm (Algorithm 1).
/// Defaults follow the paper's Appendix D experiment configuration
/// {R, delta, theta} = {250, 10, 0.2}; Section 4.1's R=1000 default is
/// available by just setting num_partitions.
struct PredicateGenOptions {
  /// R: number of equi-width partitions for numeric attributes.
  size_t num_partitions = 250;
  /// theta: minimum |mu_A - mu_N| of the min-max-normalized attribute for a
  /// predicate to be extracted (Section 4.5).
  double normalized_diff_threshold = 0.2;
  /// delta: anomaly distance multiplier for gap filling (Section 4.4).
  double anomaly_distance_multiplier = 10.0;
  /// Ablation switches for Table 6 (Appendix D): disable the Partition
  /// Filtering and/or Filling-the-Gaps steps.
  bool enable_filtering = true;
  bool enable_gap_filling = true;
  /// Degree of parallelism for the per-attribute loop here and the
  /// per-model loop in ModelRepository::Rank: 0 = one lane per hardware
  /// thread, 1 = exact serial path, N = N lanes. Results are identical for
  /// every value (ordered merge; see common/parallel.h).
  size_t parallelism = 0;
  /// Graceful-degradation threshold: a numeric attribute whose fraction of
  /// finite values over the diagnosis rows falls below this is skipped
  /// (with a DataQualityWarning) instead of fed garbage-in to the
  /// partition machinery. 0 disables the gate (NaN/Inf cells are still
  /// excluded from every statistic).
  double min_attribute_quality = 0.75;
  /// Route the numeric column sweeps (profile, partition labeling,
  /// separation power) through the dispatched SIMD kernels over contiguous
  /// runs of diagnosis rows (DESIGN.md §12). false = the historical
  /// row-at-a-time path, kept for A/B parity checks and as the benchmark
  /// baseline. Predicates and labels are identical either way; region sums
  /// may differ in the last float bits (lane-disciplined vs sequential
  /// accumulation).
  bool use_batch_kernels = true;
};

/// A per-attribute trust note attached to a diagnosis: the engine either
/// skipped the attribute entirely or computed around bad cells. Hostile
/// telemetry must never silently shape an explanation.
struct DataQualityWarning {
  std::string attribute;
  /// Human-readable reason ("skipped: 61.0% of diagnosis rows non-finite").
  std::string reason;
  /// Fraction of the attribute's diagnosis-row cells that were non-finite.
  double bad_fraction = 0.0;
  /// True when the attribute was excluded from diagnosis; false when it
  /// was used but with bad cells masked out of its statistics.
  bool skipped = false;
};

/// Single-pass statistics of one numeric attribute over the diagnosis rows
/// (abnormal ∪ normal; ignored rows never shape the partition space,
/// Section 4). One sweep feeds everything downstream that used to rescan
/// the column: the partition-space range, the theta normalization check of
/// Section 4.5, and the gap-filling normal anchor of Section 4.4.
///
/// NaN/Inf cells never enter min/max or the region sums; they are counted
/// in `non_finite_count` so callers can gate on quality(). On pristine
/// telemetry the profile is bit-identical to the historical all-cells one.
struct AttributeProfile {
  double min = 0.0;
  double max = 0.0;
  double abnormal_sum = 0.0;
  double normal_sum = 0.0;
  /// Finite cells per region (the denominators of the region means).
  size_t abnormal_count = 0;
  size_t normal_count = 0;
  /// NaN/Inf cells across both regions.
  size_t non_finite_count = 0;
  /// False when no finite value was seen (min/max are then meaningless).
  bool valid = false;

  double abnormal_mean() const {
    return abnormal_count == 0
               ? 0.0
               : abnormal_sum / static_cast<double>(abnormal_count);
  }
  double normal_mean() const {
    return normal_count == 0 ? 0.0
                             : normal_sum / static_cast<double>(normal_count);
  }
  /// Fraction of diagnosis-row cells that were finite; 1.0 when no rows.
  double quality() const {
    size_t total = abnormal_count + normal_count + non_finite_count;
    return total == 0 ? 1.0
                      : static_cast<double>(abnormal_count + normal_count) /
                            static_cast<double>(total);
  }
};

/// Computes the profile in one pass (abnormal rows first, then normal, so
/// floating-point accumulation order matches the historical per-pass code).
AttributeProfile ProfileAttribute(std::span<const double> values,
                                  const tsdata::LabeledRows& rows);

/// Batch form: profiles each contiguous run of diagnosis rows with the
/// dispatched ProfileSpan kernel and combines the per-run results
/// (abnormal runs first, then normal). min/max/counts match the
/// row-at-a-time form exactly; the sums follow the kernels' lane
/// discipline, so their last bits may differ from the sequential fold.
AttributeProfile ProfileAttribute(std::span<const double> values,
                                  const DiagnosisRuns& runs);

/// One extracted predicate plus its quality measures.
struct AttributeDiagnosis {
  Predicate predicate;
  /// Eq. (1) separation power over the input tuples.
  double separation_power = 0.0;
  /// Separation power over the final partition space (the quantity averaged
  /// by causal-model confidence, Eq. (3)).
  double partition_separation_power = 0.0;
  /// d = |mu_A - mu_N| of the normalized attribute (numeric; 0 otherwise).
  double normalized_mean_diff = 0.0;
};

/// Output of the generator: the conjunct of candidate predicates, in
/// descending separation-power order, plus the data-quality warnings
/// accumulated while computing them (attribute order).
struct PredicateGenResult {
  std::vector<AttributeDiagnosis> predicates;
  std::vector<DataQualityWarning> warnings;

  /// Convenience: just the predicates.
  std::vector<Predicate> PredicateList() const;
  /// The diagnosis for `attribute`, if one was extracted.
  const AttributeDiagnosis* Find(const std::string& attribute) const;
};

/// Runs Algorithm 1 over every attribute of `dataset` and returns the
/// extracted predicates. Returns an empty result when either region holds
/// no rows.
PredicateGenResult GeneratePredicates(const tsdata::Dataset& dataset,
                                      const tsdata::DiagnosisRegions& regions,
                                      const PredicateGenOptions& options);

/// As above, over rows the caller already split (spares the extra
/// SplitRows sweep when the caller needs the labeled rows anyway — see
/// Explainer::Diagnose, which also feeds them to ModelRepository::Rank).
PredicateGenResult GeneratePredicates(const tsdata::Dataset& dataset,
                                      const tsdata::LabeledRows& rows,
                                      const PredicateGenOptions& options);

/// Builds the final labeled partition space (label -> filter -> fill) for
/// one attribute, as used by predicate extraction. Returns std::nullopt for
/// constant numeric attributes or when either region holds no rows.
/// `profile`, when supplied, must be ProfileAttribute() of this attribute's
/// values over `rows`; it spares the extra column sweeps (numeric only).
std::optional<PartitionSpace> BuildFinalPartitionSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const AttributeProfile* profile = nullptr,
    const DiagnosisRuns* runs = nullptr);

/// Builds the *labeled-only* partition space (Section 4.2's labeling, no
/// filtering or gap filling) for one attribute. This is the space Eq. (3)
/// measures causal-model confidence over: only partitions that actually
/// hold purely-normal or purely-abnormal tuples count, which keeps
/// confidence meaningful even for very small abnormal regions (Appendix
/// C's two-second anomalies) and for anomaly instances whose absolute
/// levels differ from the training instance. Returns std::nullopt for
/// constant numeric attributes or when either region holds no rows.
/// `profile` as for BuildFinalPartitionSpace.
std::optional<PartitionSpace> BuildLabeledPartitionSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const AttributeProfile* profile = nullptr,
    const DiagnosisRuns* runs = nullptr);

/// Separation power of `predicate` measured over a labeled partition space
/// (fraction of Abnormal partitions satisfied minus fraction of Normal
/// partitions satisfied; numeric partitions are tested at their midpoint).
double PartitionSeparationPower(const Predicate& predicate,
                                const PartitionSpace& space);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_PREDICATE_GENERATOR_H_
