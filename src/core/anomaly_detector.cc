#include "core/anomaly_detector.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/simd/simd.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/dbscan.h"

namespace dbsherlock::core {

double PotentialPower(std::span<const double> normalized_values,
                      size_t window) {
  if (window == 0 || normalized_values.size() < window) return 0.0;
  double overall = common::Median(normalized_values);
  std::vector<double> window_medians =
      common::SlidingMedian(normalized_values, window);
  double best = 0.0;
  for (double m : window_medians) {
    best = std::max(best, std::fabs(overall - m));
  }
  return best;
}

DetectionResult DetectAnomalies(const tsdata::Dataset& dataset,
                                const AnomalyDetectorOptions& options) {
  TRACE_SPAN("detect.anomalies");
  static common::Counter* runs =
      common::MetricsRegistry::Global().GetCounter("detect.runs");
  static common::LatencyHistogram* latency =
      common::MetricsRegistry::Global().GetHistogram("detect.run_us");
  runs->Increment();
  common::ScopedLatency timer(latency);

  DetectionResult result;
  const size_t n = dataset.num_rows();
  if (n == 0) return result;

  // 1. Normalize numeric attributes and keep the high-potential ones.
  // Normalization is over finite cells only (NaN in Median/sort is
  // undefined behavior); non-finite cells become the column's normalized
  // finite median — the one value that can neither create a window-median
  // excursion nor pull DBSCAN distances. Columns with too few finite cells
  // are excluded outright. On all-finite input this path is bit-identical
  // to plain common::MinMaxNormalize.
  std::vector<std::vector<double>> selected_columns;
  {
    TRACE_SPAN("detect.feature_selection");
    for (size_t attr = 0; attr < dataset.num_attributes(); ++attr) {
      const tsdata::Column& col = dataset.column(attr);
      if (col.kind() != tsdata::AttributeKind::kNumeric) continue;
      std::span<const double> values = col.numeric_values();
      std::vector<double> finite;
      finite.reserve(values.size());
      for (double v : values) {
        if (std::isfinite(v)) finite.push_back(v);
      }
      double quality = values.empty()
                           ? 1.0
                           : static_cast<double>(finite.size()) /
                                 static_cast<double>(values.size());
      if (finite.empty() || (options.min_attribute_quality > 0.0 &&
                             quality < options.min_attribute_quality)) {
        result.skipped_attributes.push_back(
            dataset.schema().attribute(attr).name);
        continue;
      }
      double lo = common::Min(finite);
      double hi = common::Max(finite);
      double fill = common::MinMaxNormalize(common::Median(finite), lo, hi);
      std::vector<double> normalized(values.size());
      if (options.use_batch_kernels) {
        // Same arithmetic per cell as the scalar loop below (the kernel
        // wrapper owns the degenerate-range case), one vector sweep.
        common::simd::NormalizeSpan(values.data(), values.size(), lo, hi,
                                    fill, normalized.data());
      } else {
        for (size_t i = 0; i < values.size(); ++i) {
          normalized[i] = std::isfinite(values[i])
                              ? common::MinMaxNormalize(values[i], lo, hi)
                              : fill;
        }
      }
      if (PotentialPower(normalized, options.window) >
          options.potential_power_threshold) {
        result.selected_attributes.push_back(
            dataset.schema().attribute(attr).name);
        selected_columns.push_back(std::move(normalized));
      }
    }
  }
  if (selected_columns.empty()) return result;

  // 2. Feature vectors over the selected attributes. The batch path keeps
  // the columns as-is (they are already dimension-major, the layout the
  // distance kernel streams); the legacy path gathers row-major points.
  PointColumns columns;
  std::vector<std::vector<double>> points;
  if (options.use_batch_kernels) {
    for (const auto& colvals : selected_columns) {
      columns.columns.push_back(colvals.data());
    }
    columns.num_points = n;
  } else {
    points.resize(n);
    for (size_t row = 0; row < n; ++row) {
      points[row].reserve(selected_columns.size());
      for (const auto& colvals : selected_columns) {
        points[row].push_back(colvals[row]);
      }
    }
  }

  // 3. eps from the k-dist heuristic; cluster.
  std::vector<double> kdist;
  {
    TRACE_SPAN("detect.kdist_epsilon");
    kdist = options.use_batch_kernels ? KDistances(columns, options.min_pts)
                                      : KDistances(points, options.min_pts);
  }
  double max_kdist = kdist.empty()
                         ? 0.0
                         : *std::max_element(kdist.begin(), kdist.end());
  result.epsilon = max_kdist / options.eps_divisor;
  if (result.epsilon <= 0.0) return result;
  DbscanResult clusters;
  {
    TRACE_SPAN("detect.dbscan");
    clusters = options.use_batch_kernels
                   ? Dbscan(columns, result.epsilon, options.min_pts)
                   : Dbscan(points, result.epsilon, options.min_pts);
  }

  // 4. Rows in clusters smaller than cluster_fraction of the data are the
  // detected anomaly (abnormal regions are assumed comparatively small).
  TRACE_SPAN("detect.postprocess");  // covers steps 4-6
  std::vector<size_t> sizes = clusters.ClusterSizes();
  double cutoff = options.cluster_fraction * static_cast<double>(n);
  for (size_t row = 0; row < n; ++row) {
    int c = clusters.cluster_of[row];
    if (c >= 0 && static_cast<double>(sizes[static_cast<size_t>(c)]) < cutoff) {
      result.abnormal_rows.push_back(row);
    }
  }

  // 5. Contiguous runs of flagged rows become time ranges. Each row covers
  // [t, t + collection interval); infer the interval from the data.
  double interval = 1.0;
  if (n >= 2) interval = dataset.timestamp(1) - dataset.timestamp(0);
  if (!std::isfinite(interval) || interval <= 0.0) interval = 1.0;
  std::vector<tsdata::TimeRange> ranges;
  size_t i = 0;
  while (i < result.abnormal_rows.size()) {
    size_t j = i;
    while (j + 1 < result.abnormal_rows.size() &&
           result.abnormal_rows[j + 1] == result.abnormal_rows[j] + 1) {
      ++j;
    }
    ranges.push_back({dataset.timestamp(result.abnormal_rows[i]),
                      dataset.timestamp(result.abnormal_rows[j]) + interval});
    i = j + 1;
  }

  // 6. Post-process: bridge small gaps (one anomaly briefly dipping toward
  // normal is still one anomaly), then drop isolated fragments (transient
  // hiccups flagged by the clustering).
  std::vector<tsdata::TimeRange> merged;
  for (const tsdata::TimeRange& range : ranges) {
    if (!merged.empty() &&
        range.start - merged.back().end <= options.merge_gap_sec) {
      merged.back().end = range.end;
    } else {
      merged.push_back(range);
    }
  }
  for (const tsdata::TimeRange& range : merged) {
    if (range.length() >= options.min_region_sec) {
      result.abnormal.Add(range);
    }
  }
  // Keep the row list consistent with the reported region (rows whose
  // fragment was dropped are no longer part of the detection).
  std::erase_if(result.abnormal_rows, [&](size_t row) {
    return !result.abnormal.Contains(dataset.timestamp(row));
  });
  return result;
}

tsdata::DiagnosisRegions DetectionToRegions(
    const DetectionResult& detection, const tsdata::Dataset& dataset,
    const AnomalyDetectorOptions& options) {
  tsdata::DiagnosisRegions regions;
  regions.abnormal = detection.abnormal;
  if (detection.abnormal.empty() || dataset.num_rows() == 0 ||
      options.boundary_guard_sec <= 0.0) {
    return regions;  // implicit normal = everything else
  }
  // Explicit normal = complement of the abnormal ranges expanded by the
  // guard; the guard band itself is ignored by the explainer.
  double t0 = dataset.timestamp(0);
  double t1 = dataset.timestamp(dataset.num_rows() - 1) + 1.0;
  std::vector<tsdata::TimeRange> expanded;
  for (const tsdata::TimeRange& r : detection.abnormal.ranges()) {
    expanded.push_back({r.start - options.boundary_guard_sec,
                        r.end + options.boundary_guard_sec});
  }
  std::sort(expanded.begin(), expanded.end(),
            [](const tsdata::TimeRange& a, const tsdata::TimeRange& b) {
              return a.start < b.start;
            });
  double cursor = t0;
  for (const tsdata::TimeRange& r : expanded) {
    if (r.start > cursor) regions.normal.Add(cursor, r.start);
    cursor = std::max(cursor, r.end);
  }
  if (cursor < t1) regions.normal.Add(cursor, t1);
  return regions;
}

}  // namespace dbsherlock::core
