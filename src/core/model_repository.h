#ifndef DBSHERLOCK_CORE_MODEL_REPOSITORY_H_
#define DBSHERLOCK_CORE_MODEL_REPOSITORY_H_

#include <string>
#include <vector>

#include "core/causal_model.h"

namespace dbsherlock::core {

/// A cause together with the confidence its model achieved on the anomaly
/// under diagnosis, and any remediation the DBA recorded previously.
struct RankedCause {
  std::string cause;
  double confidence = 0.0;  // percentage, Eq. (3)
  std::string suggested_action;
};

/// Stores the causal models accumulated from past diagnoses (Section 6).
/// Models added for a cause that already has one are merged into it
/// (Section 6.2), so the repository holds at most one model per cause.
class ModelRepository {
 public:
  ModelRepository() = default;

  /// Adds `model`. If a model with the same cause exists, the two are
  /// merged; if the merge leaves no predicates, the *new* model replaces
  /// the old one (a degenerate merge carries no information).
  void Add(CausalModel model);

  /// Adds `model` without merging (keeps multiple models per cause);
  /// used by experiments that compare single vs merged models.
  void AddUnmerged(CausalModel model);

  size_t size() const { return models_.size(); }
  bool empty() const { return models_.empty(); }
  const std::vector<CausalModel>& models() const { return models_; }

  /// The model for `cause`, or nullptr.
  const CausalModel* Find(const std::string& cause) const;

  /// Computes every model's confidence for the given anomaly and returns
  /// causes in decreasing confidence order, keeping only those above
  /// `min_confidence` (the paper's lambda, default 20%). When multiple
  /// unmerged models share a cause, the cause's confidence is the maximum
  /// over its models.
  std::vector<RankedCause> Rank(const tsdata::Dataset& dataset,
                                const tsdata::LabeledRows& rows,
                                const PredicateGenOptions& options,
                                double min_confidence) const;

 private:
  std::vector<CausalModel> models_;
};

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_MODEL_REPOSITORY_H_
