#include "core/partition_cache.h"

#include <algorithm>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/trace.h"

namespace dbsherlock::core {

namespace {

/// Cache-wide counters; instruments live in the process registry, so the
/// pointers are fetched once and shared by every cache instance.
struct CacheMetrics {
  common::Counter* hits;
  common::Counter* misses;
  common::Counter* entries_built;
  common::Counter* evictions;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      common::MetricsRegistry& reg = common::MetricsRegistry::Global();
      return CacheMetrics{reg.GetCounter("partition_cache.hits"),
                          reg.GetCounter("partition_cache.misses"),
                          reg.GetCounter("partition_cache.entries_built"),
                          reg.GetCounter("partition_cache.evictions")};
    }();
    return metrics;
  }
};

}  // namespace

std::optional<PartitionSpace> BuildConfidenceSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const DiagnosisRuns* runs) {
  if (rows.abnormal.empty() || rows.normal.empty()) return std::nullopt;
  const tsdata::Column& col = dataset.column(attr_index);
  if (col.kind() != tsdata::AttributeKind::kNumeric) {
    return BuildLabeledPartitionSpace(dataset, rows, attr_index, options,
                                      nullptr, runs);
  }
  AttributeProfile profile =
      runs != nullptr ? ProfileAttribute(col.numeric_values(), *runs)
                      : ProfileAttribute(col.numeric_values(), rows);
  // Same degradation gate as predicate generation: an attribute too
  // corrupted to trust contributes 0 to every model's confidence rather
  // than a separation power computed from mostly-missing data.
  if (options.min_attribute_quality > 0.0 &&
      profile.quality() < options.min_attribute_quality) {
    return std::nullopt;
  }
  std::optional<PartitionSpace> space = BuildLabeledPartitionSpace(
      dataset, rows, attr_index, options, &profile, runs);
  if (space.has_value()) {
    PlantNormalAnchorIfNeeded(&*space, profile.normal_mean());
  }
  return space;
}

PartitionSpaceCache::~PartitionSpaceCache() {
  CacheMetrics::Get().evictions->Increment(spaces_.size());
}

void PartitionSpaceCache::Prepare(std::span<const CausalModel> models) {
  TRACE_SPAN("partition_cache.prepare");
  // Distinct resolvable attribute indices, in first-reference order.
  std::vector<size_t> attrs;
  for (const CausalModel& model : models) {
    for (const Predicate& pred : model.predicates) {
      auto attr = dataset_.schema().IndexOf(pred.attribute);
      if (!attr.ok()) continue;
      if (spaces_.find(*attr) != spaces_.end()) continue;
      if (std::find(attrs.begin(), attrs.end(), *attr) != attrs.end()) {
        continue;
      }
      attrs.push_back(*attr);
    }
  }
  // One run decomposition shared by every attribute's sweeps (the batch
  // kernels then stream contiguous column spans; see core/column_spans.h).
  std::optional<DiagnosisRuns> runs;
  if (options_.use_batch_kernels) {
    runs = BuildDiagnosisRuns(rows_);
  }
  std::vector<std::optional<PartitionSpace>> built = common::ParallelMap(
      attrs.size(),
      [&](size_t i) {
        if (runs.has_value()) NoteDiagnosisRunsReused();
        return BuildConfidenceSpace(dataset_, rows_, attrs[i], options_,
                                    runs.has_value() ? &*runs : nullptr);
      },
      options_.parallelism);
  for (size_t i = 0; i < attrs.size(); ++i) {
    spaces_.emplace(attrs[i], std::move(built[i]));
  }
  CacheMetrics::Get().entries_built->Increment(attrs.size());
}

const std::optional<PartitionSpace>* PartitionSpaceCache::Find(
    const std::string& attribute) const {
  auto attr = dataset_.schema().IndexOf(attribute);
  if (!attr.ok()) {
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  auto it = spaces_.find(*attr);
  if (it == spaces_.end()) {
    CacheMetrics::Get().misses->Increment();
    return nullptr;
  }
  CacheMetrics::Get().hits->Increment();
  return &it->second;
}

double ModelConfidence(const CausalModel& model,
                       const PartitionSpaceCache& cache) {
  if (model.predicates.empty()) return 0.0;
  double total = 0.0;
  for (const Predicate& pred : model.predicates) {
    const std::optional<PartitionSpace>* space = cache.Find(pred.attribute);
    if (space == nullptr || !space->has_value()) continue;  // contributes 0
    total += PartitionSeparationPower(pred, **space);
  }
  return 100.0 * total / static_cast<double>(model.predicates.size());
}

}  // namespace dbsherlock::core
