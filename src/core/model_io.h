#ifndef DBSHERLOCK_CORE_MODEL_IO_H_
#define DBSHERLOCK_CORE_MODEL_IO_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "core/model_repository.h"

namespace dbsherlock::core {

/// JSON persistence for causal models, so the knowledge a DBA builds up
/// through diagnoses (Section 6 of the paper) survives process restarts —
/// the natural companion to the paper's workflow where models accumulate
/// "over the lifetime of a database operation".
///
/// Format (stable; see tests/model_io_test.cc for a golden document):
/// {
///   "version": 1,
///   "models": [
///     {
///       "cause": "Log Rotation",
///       "num_sources": 3,
///       "suggested_action": "enable adaptive flushing",
///       "predicates": [
///         {"attribute": "cpu_wait", "type": "gt", "low": 50.0},
///         {"attribute": "latency_ms", "type": "range",
///          "low": 100.0, "high": 900.0},
///         {"attribute": "mode", "type": "in", "categories": ["a","b"]}
///       ]
///     }
///   ]
/// }

/// Serializers.
common::JsonValue PredicateToJson(const Predicate& predicate);
common::JsonValue CausalModelToJson(const CausalModel& model);
common::JsonValue RepositoryToJson(const ModelRepository& repository);

/// Deserializers; fail with ParseError on malformed or unknown content.
common::Result<Predicate> PredicateFromJson(const common::JsonValue& json);
common::Result<CausalModel> CausalModelFromJson(
    const common::JsonValue& json);
common::Result<ModelRepository> RepositoryFromJson(
    const common::JsonValue& json);

/// File convenience wrappers (pretty-printed JSON).
common::Status SaveRepository(const ModelRepository& repository,
                              const std::string& path);
common::Result<ModelRepository> LoadRepository(const std::string& path);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_MODEL_IO_H_
