#ifndef DBSHERLOCK_CORE_CAUSAL_MODEL_H_
#define DBSHERLOCK_CORE_CAUSAL_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "core/predicate.h"
#include "core/predicate_generator.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// A causal model (Section 6): a user-labeled cause variable plus the
/// effect predicates that were active when the cause was diagnosed — the
/// simplified Halpern-Pearl structure of Figure 6.
struct CausalModel {
  std::string cause;
  std::vector<Predicate> predicates;
  /// How many diagnosed datasets contributed (1 for a fresh model; grows
  /// when models are merged).
  int num_sources = 1;
  /// Optional remediation note recorded by the DBA when the cause was
  /// confirmed ("throttle tenant X", "re-enable adaptive flushing", ...).
  /// The paper's conclusion names storing DBA actions for future
  /// occurrences as planned future work; this field implements it. On
  /// merge, the most recently recorded non-empty action wins.
  std::string suggested_action;
};

/// Computes the confidence of `model` for the anomaly described by
/// (dataset, rows) — Eq. (3): the average separation power of the model's
/// effect predicates measured over the *partition space* of the current
/// data (not the raw tuples, to damp noise). Returned as a percentage in
/// [-100, 100]. Predicates whose attribute is missing from the dataset (or
/// constant in it) contribute zero. When scoring many models against the
/// same anomaly, prefer the PartitionSpaceCache overload (partition_cache.h)
/// that ModelRepository::Rank uses — it labels each attribute's space once
/// for the whole repository instead of once per model.
double ModelConfidence(const CausalModel& model,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows,
                       const PredicateGenOptions& options);

/// Merges two predicates on the same attribute (Section 6.2): numeric
/// boundaries widen to include both ({A>10, A>15} -> A>10); predicates with
/// conflicting directions are inconsistent and yield nullopt; categorical
/// sets intersect ({xx,yy,zz} ∩ {xx,zz} -> {xx,zz}, per the paper's
/// example), yielding nullopt when the intersection is empty.
std::optional<Predicate> MergePredicates(const Predicate& a,
                                         const Predicate& b);

/// Merges two causal models with the same cause (Section 6.2): keeps only
/// attributes common to both, merging their predicates; attributes whose
/// predicates are inconsistent are dropped. Returns an error when the
/// causes differ.
common::Result<CausalModel> MergeCausalModels(const CausalModel& a,
                                              const CausalModel& b);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_CAUSAL_MODEL_H_
