#include "core/predicate_generator.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/simd/simd.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/trace.h"

namespace dbsherlock::core {

namespace {

/// Builds the predicate for a single abnormal block (Section 4.5). Returns
/// nullopt when the block spans the whole space (no direction).
std::optional<Predicate> PredicateFromBlock(const PartitionSpace& space,
                                            const AbnormalBlock& block,
                                            const std::string& attribute) {
  bool at_left = block.first == 0;
  bool at_right = block.last + 1 == space.size();
  if (at_left && at_right) return std::nullopt;
  Predicate pred;
  pred.attribute = attribute;
  if (at_left) {
    pred.type = PredicateType::kLessThan;
    pred.high = space.upper_bound(block.last);
  } else if (at_right) {
    pred.type = PredicateType::kGreaterThan;
    pred.low = space.lower_bound(block.first);
  } else {
    pred.type = PredicateType::kRange;
    pred.low = space.lower_bound(block.first);
    pred.high = space.upper_bound(block.last);
  }
  return pred;
}

/// Per-attribute result: at most one extracted predicate and at most one
/// data-quality warning (an attribute can be skipped-with-warning,
/// diagnosed-with-warning, diagnosed clean, or silently uninformative).
struct AttributeOutcome {
  std::optional<AttributeDiagnosis> diagnosis;
  std::optional<DataQualityWarning> warning;
};

DataQualityWarning MakeQualityWarning(const std::string& attribute,
                                      const AttributeProfile& profile,
                                      bool skipped) {
  DataQualityWarning warning;
  warning.attribute = attribute;
  warning.bad_fraction = 1.0 - profile.quality();
  warning.skipped = skipped;
  warning.reason = common::StrFormat(
      "%s: %.1f%% of diagnosis rows non-finite",
      skipped ? "skipped" : "used with bad cells masked",
      100.0 * warning.bad_fraction);
  return warning;
}

/// Algorithm 1 for one attribute: the fused sweep (ProfileAttribute) feeds
/// the theta check, the partition-space range, and the gap anchor, so the
/// column is scanned once where the serial historical code scanned it three
/// times. Degradation contract: an attribute too corrupted to trust
/// (quality below min_attribute_quality) is skipped with a warning rather
/// than allowed to emit a garbage predicate; an attribute with some bad
/// cells is diagnosed over its finite cells only, and says so.
AttributeOutcome DiagnoseAttribute(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr, const PredicateGenOptions& options,
    const DiagnosisRuns* runs) {
  const tsdata::AttributeSpec& spec = dataset.schema().attribute(attr);
  const tsdata::Column& col = dataset.column(attr);
  AttributeOutcome out;

  std::optional<Predicate> pred;
  std::optional<PartitionSpace> space;
  double normalized_diff = 0.0;

  if (col.kind() == tsdata::AttributeKind::kNumeric) {
    std::span<const double> values = col.numeric_values();
    AttributeProfile profile;
    {
      TRACE_SPAN("predgen.profile_sweep");
      profile = runs != nullptr ? ProfileAttribute(values, *runs)
                                : ProfileAttribute(values, rows);
    }
    if (profile.non_finite_count > 0) {
      bool skip = options.min_attribute_quality > 0.0 &&
                  profile.quality() < options.min_attribute_quality;
      out.warning = MakeQualityWarning(spec.name, profile, skip);
      if (skip) {
        static common::Counter* skipped =
            common::MetricsRegistry::Global().GetCounter(
                "predgen.attributes_skipped_quality");
        skipped->Increment();
        return out;
      }
    }
    if (!profile.valid || profile.max <= profile.min) return out;

    // Normalization + thresholding (Section 4.5): the attribute must move
    // its normalized mean by more than theta between the two regions.
    double mu_a = common::MinMaxNormalize(profile.abnormal_mean(), profile.min,
                                          profile.max);
    double mu_n = common::MinMaxNormalize(profile.normal_mean(), profile.min,
                                          profile.max);
    normalized_diff = std::fabs(mu_a - mu_n);
    if (normalized_diff <= options.normalized_diff_threshold) {
      return out;
    }

    {
      TRACE_SPAN("predgen.partition_space");
      space = BuildFinalPartitionSpace(dataset, rows, attr, options, &profile,
                                      runs);
    }
    if (!space.has_value()) return out;
    std::optional<AbnormalBlock> block = SingleAbnormalBlock(*space);
    if (!block.has_value()) return out;
    pred = PredicateFromBlock(*space, *block, spec.name);
  } else {
    space = BuildFinalPartitionSpace(dataset, rows, attr, options, nullptr,
                                     runs);
    if (!space.has_value()) return out;
    // Categorical: collect every Abnormal partition's category.
    Predicate p;
    p.attribute = spec.name;
    p.type = PredicateType::kInSet;
    for (size_t j = 0; j < space->size(); ++j) {
      if (space->label(j) == PartitionLabel::kAbnormal) {
        p.categories.push_back(space->category(j));
      }
    }
    if (!p.categories.empty()) pred = std::move(p);
  }

  if (!pred.has_value()) return out;
  AttributeDiagnosis diag;
  diag.predicate = std::move(*pred);
  diag.separation_power =
      runs != nullptr ? SeparationPower(diag.predicate, dataset, rows, *runs)
                      : SeparationPower(diag.predicate, dataset, rows);
  diag.partition_separation_power =
      PartitionSeparationPower(diag.predicate, *space);
  diag.normalized_mean_diff = normalized_diff;
  out.diagnosis = std::move(diag);
  return out;
}

}  // namespace

AttributeProfile ProfileAttribute(std::span<const double> values,
                                  const tsdata::LabeledRows& rows) {
  AttributeProfile profile;
  bool first = true;
  // NaN/Inf cells are excluded from min/max and the sums; on finite input
  // the fold is bit-identical to the historical all-cells one.
  auto fold = [&](size_t row, double* sum, size_t* count) {
    double v = values[row];
    if (!std::isfinite(v)) {
      ++profile.non_finite_count;
      return;
    }
    if (first) {
      profile.min = profile.max = v;
      first = false;
    } else {
      profile.min = std::min(profile.min, v);
      profile.max = std::max(profile.max, v);
    }
    *sum += v;
    ++*count;
  };
  for (size_t row : rows.abnormal) {
    fold(row, &profile.abnormal_sum, &profile.abnormal_count);
  }
  for (size_t row : rows.normal) {
    fold(row, &profile.normal_sum, &profile.normal_count);
  }
  profile.valid = !first;
  return profile;
}

AttributeProfile ProfileAttribute(std::span<const double> values,
                                  const DiagnosisRuns& runs) {
  namespace simd = common::simd;
  AttributeProfile profile;
  bool first = true;
  auto fold = [&](const std::vector<RowRun>& region_runs, double* sum,
                  size_t* count) {
    for (const RowRun& run : region_runs) {
      simd::SpanProfile p =
          simd::ProfileSpan(values.data() + run.begin, run.size());
      profile.non_finite_count += p.non_finite_count;
      *sum += p.sum;
      *count += p.finite_count;
      if (p.finite_count == 0) continue;
      if (first) {
        profile.min = p.min;
        profile.max = p.max;
        first = false;
      } else {
        profile.min = std::min(profile.min, p.min);
        profile.max = std::max(profile.max, p.max);
      }
    }
  };
  fold(runs.abnormal, &profile.abnormal_sum, &profile.abnormal_count);
  fold(runs.normal, &profile.normal_sum, &profile.normal_count);
  profile.valid = !first;
  return profile;
}

std::vector<Predicate> PredicateGenResult::PredicateList() const {
  std::vector<Predicate> out;
  out.reserve(predicates.size());
  for (const auto& d : predicates) out.push_back(d.predicate);
  return out;
}

const AttributeDiagnosis* PredicateGenResult::Find(
    const std::string& attribute) const {
  for (const auto& d : predicates) {
    if (d.predicate.attribute == attribute) return &d;
  }
  return nullptr;
}

std::optional<PartitionSpace> BuildLabeledPartitionSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const AttributeProfile* profile, const DiagnosisRuns* runs) {
  if (rows.abnormal.empty() || rows.normal.empty()) return std::nullopt;
  const tsdata::Column& col = dataset.column(attr_index);

  if (col.kind() == tsdata::AttributeKind::kNumeric) {
    std::span<const double> values = col.numeric_values();
    AttributeProfile local;
    if (profile == nullptr) {
      local = runs != nullptr ? ProfileAttribute(values, *runs)
                              : ProfileAttribute(values, rows);
      profile = &local;
    }
    if (!profile->valid || profile->max <= profile->min) return std::nullopt;

    PartitionSpace space = PartitionSpace::Numeric(profile->min, profile->max,
                                                   options.num_partitions);
    if (runs != nullptr) {
      LabelNumericPartitions(values, *runs, &space);
    } else {
      LabelNumericPartitions(values, rows, &space);
    }
    return space;
  }

  // Categorical: one partition per distinct value (Section 4.2; filtering
  // and gap filling never apply to categorical data).
  std::vector<std::string> categories;
  categories.reserve(col.num_categories());
  for (size_t c = 0; c < col.num_categories(); ++c) {
    categories.push_back(col.CategoryName(static_cast<int32_t>(c)));
  }
  if (categories.empty()) return std::nullopt;
  PartitionSpace space = PartitionSpace::Categorical(std::move(categories));
  if (runs != nullptr) {
    LabelCategoricalPartitions(col.codes(), *runs, &space);
  } else {
    LabelCategoricalPartitions(col.codes(), rows, &space);
  }
  return space;
}

std::optional<PartitionSpace> BuildFinalPartitionSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const AttributeProfile* profile, const DiagnosisRuns* runs) {
  std::optional<PartitionSpace> space = BuildLabeledPartitionSpace(
      dataset, rows, attr_index, options, profile, runs);
  if (!space.has_value() || !space->is_numeric()) return space;

  TRACE_SPAN("predgen.filter_gap_fill");
  if (options.enable_filtering) FilterPartitions(&*space);
  if (options.enable_gap_filling) {
    double anchor;
    if (profile != nullptr) {
      anchor = profile->normal_mean();
    } else {
      const tsdata::Column& col = dataset.column(attr_index);
      AttributeProfile local =
          runs != nullptr ? ProfileAttribute(col.numeric_values(), *runs)
                          : ProfileAttribute(col.numeric_values(), rows);
      anchor = local.normal_mean();
    }
    FillPartitionGaps(&*space, options.anomaly_distance_multiplier, anchor);
  }
  return space;
}

double PartitionSeparationPower(const Predicate& predicate,
                                const PartitionSpace& space) {
  size_t abnormal_total = 0;
  size_t abnormal_hits = 0;
  size_t normal_total = 0;
  size_t normal_hits = 0;
  for (size_t j = 0; j < space.size(); ++j) {
    PartitionLabel label = space.label(j);
    if (label == PartitionLabel::kEmpty) continue;
    bool hit = space.is_numeric()
                   ? predicate.MatchesNumeric(space.mid_value(j))
                   : predicate.MatchesCategory(space.category(j));
    if (label == PartitionLabel::kAbnormal) {
      ++abnormal_total;
      if (hit) ++abnormal_hits;
    } else {
      ++normal_total;
      if (hit) ++normal_hits;
    }
  }
  if (abnormal_total == 0 || normal_total == 0) return 0.0;
  return static_cast<double>(abnormal_hits) /
             static_cast<double>(abnormal_total) -
         static_cast<double>(normal_hits) / static_cast<double>(normal_total);
}

PredicateGenResult GeneratePredicates(const tsdata::Dataset& dataset,
                                      const tsdata::DiagnosisRegions& regions,
                                      const PredicateGenOptions& options) {
  return GeneratePredicates(dataset, SplitRows(dataset, regions), options);
}

PredicateGenResult GeneratePredicates(const tsdata::Dataset& dataset,
                                      const tsdata::LabeledRows& rows,
                                      const PredicateGenOptions& options) {
  TRACE_SPAN("explainer.predicate_generation");
  static common::Counter* emitted =
      common::MetricsRegistry::Global().GetCounter(
          "predgen.predicates_emitted");
  PredicateGenResult result;
  if (rows.abnormal.empty() || rows.normal.empty()) return result;

  // The run decomposition is hoisted out of the attribute loop: every
  // attribute's profile/labeling/separation sweep shares it (the kernels
  // then stream each run as one contiguous column span).
  std::optional<DiagnosisRuns> runs;
  if (options.use_batch_kernels) {
    runs = BuildDiagnosisRuns(rows);
  }

  // Attributes are independent (Section 4 treats each in isolation), so the
  // loop fans out; merging in attribute order keeps the output identical to
  // the serial path.
  std::vector<AttributeOutcome> per_attr = common::ParallelMap(
      dataset.num_attributes(),
      [&](size_t attr) {
        if (runs.has_value()) NoteDiagnosisRunsReused();
        return DiagnoseAttribute(dataset, rows, attr, options,
                                 runs.has_value() ? &*runs : nullptr);
      },
      options.parallelism);
  for (AttributeOutcome& outcome : per_attr) {
    if (outcome.diagnosis.has_value()) {
      result.predicates.push_back(std::move(*outcome.diagnosis));
    }
    if (outcome.warning.has_value()) {
      result.warnings.push_back(std::move(*outcome.warning));
    }
  }

  std::stable_sort(result.predicates.begin(), result.predicates.end(),
                   [](const AttributeDiagnosis& a, const AttributeDiagnosis& b) {
                     return a.separation_power > b.separation_power;
                   });
  emitted->Increment(result.predicates.size());
  return result;
}

}  // namespace dbsherlock::core
