#ifndef DBSHERLOCK_CORE_PARTITION_SPACE_H_
#define DBSHERLOCK_CORE_PARTITION_SPACE_H_

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/column_spans.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// Label of one partition (Section 4.2).
enum class PartitionLabel {
  kEmpty,
  kNormal,
  kAbnormal,
};

/// A discretized attribute domain plus its per-partition labels — the
/// "partition space" of Section 4.1. Numeric spaces use R equi-width
/// partitions over [min, max]; categorical spaces use one partition per
/// distinct category value.
class PartitionSpace {
 public:
  /// Builds an unlabeled numeric space with `num_partitions` equi-width
  /// partitions covering [min_value, max_value].
  static PartitionSpace Numeric(double min_value, double max_value,
                                size_t num_partitions);

  /// Builds an unlabeled categorical space with one partition per entry of
  /// `categories` (partition j represents categories[j]).
  static PartitionSpace Categorical(std::vector<std::string> categories);

  bool is_numeric() const { return is_numeric_; }
  size_t size() const { return labels_.size(); }

  PartitionLabel label(size_t j) const { return labels_[j]; }
  void set_label(size_t j, PartitionLabel l) { labels_[j] = l; }
  const std::vector<PartitionLabel>& labels() const { return labels_; }

  /// Numeric partition boundaries: Pj covers [lower_bound(j),
  /// upper_bound(j)), except the last partition which also includes max.
  double lower_bound(size_t j) const;
  double upper_bound(size_t j) const;
  double mid_value(size_t j) const;
  double min_value() const { return min_value_; }
  double max_value() const { return max_value_; }
  /// Equi-width partition width (numeric spaces; 1.0 when degenerate).
  double width() const { return width_; }

  /// Partition index containing `value` (numeric spaces; clamps to edges).
  size_t PartitionOf(double value) const;

  const std::string& category(size_t j) const { return categories_[j]; }
  const std::vector<std::string>& categories() const { return categories_; }

  size_t CountWithLabel(PartitionLabel l) const;

 private:
  PartitionSpace() = default;

  bool is_numeric_ = true;
  double min_value_ = 0.0;
  double max_value_ = 0.0;
  double width_ = 1.0;
  std::vector<PartitionLabel> labels_;
  std::vector<std::string> categories_;  // categorical only
};

/// Labels a numeric partition space from the attribute's values and the
/// user's regions (Section 4.2): a partition is Abnormal when every tuple
/// in it is abnormal, Normal when every tuple is normal, Empty otherwise
/// (no tuples, mixed tuples, or only ignored tuples).
void LabelNumericPartitions(std::span<const double> values,
                            const tsdata::LabeledRows& rows,
                            PartitionSpace* space);

/// Batch form of LabelNumericPartitions: each contiguous run of diagnosis
/// rows goes through the dispatched PartitionIndices kernel (one division
/// per cell, vectorized, non-finite cells yielding the skip sentinel)
/// before the label votes are tallied. Produces identical labels to the
/// row-at-a-time form.
void LabelNumericPartitions(std::span<const double> values,
                            const DiagnosisRuns& runs, PartitionSpace* space);

/// Labels a categorical partition space by majority count: Abnormal when
/// strictly more abnormal than normal tuples carry the category, Normal
/// when strictly fewer, Empty on ties (Section 4.2).
void LabelCategoricalPartitions(std::span<const int32_t> codes,
                                const tsdata::LabeledRows& rows,
                                PartitionSpace* space);

/// Batch form of LabelCategoricalPartitions: tallies each contiguous run of
/// diagnosis rows as one sequential sweep over the codes column instead of
/// gathering row by row. Produces identical labels to the row-at-a-time
/// form (integer counts are exact).
void LabelCategoricalPartitions(std::span<const int32_t> codes,
                                const DiagnosisRuns& runs,
                                PartitionSpace* space);

/// The filtering step of Section 4.3 (numeric only): simultaneously blanks
/// every partition whose label differs from either of its nearest non-Empty
/// neighbors (using pre-filter labels for all decisions). A space with a
/// single non-Empty partition is left untouched ("we deem it significant").
void FilterPartitions(PartitionSpace* space);

/// The skewed-attribute special case shared by gap filling (Section 4.4)
/// and causal-model confidence (Eq. (3)): when a numeric space has Abnormal
/// partitions but no Normal one — every normal tuple shares its partition
/// with abnormal ramp tuples — the partition containing `anchor` (the
/// attribute's mean over normal-region rows) is forced to Normal so the
/// predicate direction stays judgeable. Returns true when a label was
/// planted; no-op (false) on categorical or empty spaces or when a Normal
/// partition already exists.
bool PlantNormalAnchorIfNeeded(PartitionSpace* space, double anchor);

/// The gap-filling step of Section 4.4 (numeric only): every Empty
/// partition takes the label of its nearest non-Empty neighbor, with the
/// distance to an Abnormal neighbor multiplied by `delta` (the anomaly
/// distance multiplier; delta > 1 biases toward Normal). `normal_anchor`
/// handles the all-Abnormal special case: when the space has no Normal
/// partition but at least one Abnormal one, the partition containing the
/// anchor value (the attribute's mean over normal-region tuples) is forced
/// to Normal before filling.
void FillPartitionGaps(PartitionSpace* space, double delta,
                       std::optional<double> normal_anchor);

/// A maximal run [first, last] of consecutive Abnormal partitions.
struct AbnormalBlock {
  size_t first = 0;
  size_t last = 0;
};

/// Returns the block of Abnormal partitions if they form exactly one
/// consecutive run (the extraction precondition of Section 4.5);
/// std::nullopt when there are none or they are discontiguous.
std::optional<AbnormalBlock> SingleAbnormalBlock(const PartitionSpace& space);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_PARTITION_SPACE_H_
