#ifndef DBSHERLOCK_CORE_EXPLAINER_H_
#define DBSHERLOCK_CORE_EXPLAINER_H_

#include <string>
#include <vector>

#include "core/anomaly_detector.h"
#include "core/domain_knowledge.h"
#include "core/model_repository.h"
#include "core/predicate_generator.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// What DBSherlock shows the user for one inquiry (Section 2.3): the
/// explanatory predicates (after optional secondary-symptom pruning) and,
/// when causal models fit well enough, the ranked likely causes.
struct Explanation {
  std::vector<AttributeDiagnosis> predicates;
  std::vector<RankedCause> causes;  // above lambda, descending confidence
  /// Per-attribute trust notes from predicate generation: attributes
  /// skipped for bad data, or diagnosed with bad cells masked. Surfaced so
  /// the DBA knows which metrics the explanation could not rely on.
  std::vector<DataQualityWarning> warnings;

  /// Convenience: the conjunct as a display string.
  std::string PredicatesToString() const;
  /// Display form of the warnings, one line each; empty when none.
  std::string WarningsToString() const;
};

/// The top-level DBSherlock facade, tying together predicate generation
/// (Section 4), domain knowledge (Section 5), causal models (Section 6) and
/// automatic anomaly detection (Section 7).
///
/// Typical workflow (mirrors Figure 2):
///   Explainer sherlock(Explainer::Options{});
///   Explanation ex = sherlock.Diagnose(dataset, regions);
///   ... user inspects ex.predicates / ex.causes, identifies the cause ...
///   sherlock.AcceptDiagnosis("Log Rotation", ex);   // feedback step 6
class Explainer {
 public:
  struct Options {
    PredicateGenOptions predicate_options;
    /// lambda: minimum confidence (percent) for a cause to be shown.
    double confidence_threshold = 20.0;
    /// Secondary-symptom pruning (Section 5); on by default with the
    /// MySQL/Linux rules, matching the paper's main configuration.
    bool apply_domain_knowledge = true;
    DomainKnowledge domain_knowledge = DomainKnowledge::MySqlLinuxDefaults();
    IndependenceTestOptions independence_options;
    /// Automatic anomaly detection parameters (DiagnoseAuto).
    AnomalyDetectorOptions detector_options;
  };

  Explainer() : Explainer(Options{}) {}
  explicit Explainer(Options options) : options_(std::move(options)) {}

  const Options& options() const { return options_; }

  /// Diagnoses a user-specified anomaly: generates predicates, prunes
  /// secondary symptoms, and ranks the stored causal models.
  Explanation Diagnose(const tsdata::Dataset& dataset,
                       const tsdata::DiagnosisRegions& regions) const;

  /// Diagnoses with automatic anomaly detection (Section 7): the abnormal
  /// region is found by the detector; everything else is treated as normal.
  /// `detected` (optional) receives the detector output.
  Explanation DiagnoseAuto(const tsdata::Dataset& dataset,
                           DetectionResult* detected = nullptr) const;

  /// Step 6 of the workflow: the user confirms the actual cause; the shown
  /// predicates become a causal model for future inquiries (merged into any
  /// existing model of the same cause). `action`, if non-empty, records the
  /// remediation the DBA applied; it is surfaced with future rankings of
  /// this cause (the paper's future-work item on storing DBA actions).
  void AcceptDiagnosis(const std::string& cause,
                       const Explanation& explanation,
                       const std::string& action = "");

  ModelRepository& repository() { return repository_; }
  const ModelRepository& repository() const { return repository_; }

 private:
  Options options_;
  ModelRepository repository_;
};

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_EXPLAINER_H_
