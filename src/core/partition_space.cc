#include "core/partition_space.h"

#include <algorithm>
#include <cmath>

#include "common/simd/simd.h"

namespace dbsherlock::core {

PartitionSpace PartitionSpace::Numeric(double min_value, double max_value,
                                       size_t num_partitions) {
  PartitionSpace space;
  space.is_numeric_ = true;
  space.min_value_ = min_value;
  space.max_value_ = max_value;
  if (num_partitions == 0) num_partitions = 1;
  space.labels_.assign(num_partitions, PartitionLabel::kEmpty);
  space.width_ =
      (max_value - min_value) / static_cast<double>(num_partitions);
  if (space.width_ <= 0.0) space.width_ = 1.0;
  return space;
}

PartitionSpace PartitionSpace::Categorical(
    std::vector<std::string> categories) {
  PartitionSpace space;
  space.is_numeric_ = false;
  space.labels_.assign(categories.size(), PartitionLabel::kEmpty);
  space.categories_ = std::move(categories);
  return space;
}

double PartitionSpace::lower_bound(size_t j) const {
  return min_value_ + width_ * static_cast<double>(j);
}

double PartitionSpace::upper_bound(size_t j) const {
  return min_value_ + width_ * static_cast<double>(j + 1);
}

double PartitionSpace::mid_value(size_t j) const {
  return min_value_ + width_ * (static_cast<double>(j) + 0.5);
}

size_t PartitionSpace::PartitionOf(double value) const {
  // NaN would make the size_t cast below undefined behavior; clamp hostile
  // values to the first partition (callers are expected to have filtered
  // non-finite cells already — this is the last line of defense).
  if (labels_.empty() || std::isnan(value) || value <= min_value_) return 0;
  size_t j = static_cast<size_t>(
      std::min((value - min_value_) / width_,
               static_cast<double>(labels_.size() - 1)));
  return std::min(j, labels_.size() - 1);
}

size_t PartitionSpace::CountWithLabel(PartitionLabel l) const {
  return static_cast<size_t>(
      std::count(labels_.begin(), labels_.end(), l));
}

void LabelNumericPartitions(std::span<const double> values,
                            const tsdata::LabeledRows& rows,
                            PartitionSpace* space) {
  std::vector<uint32_t> abnormal_count(space->size(), 0);
  std::vector<uint32_t> normal_count(space->size(), 0);
  // Non-finite cells vote for no partition: a NaN-poisoned row must not
  // label partition 0 (or +-Inf's clamped edge) abnormal/normal.
  for (size_t row : rows.abnormal) {
    if (!std::isfinite(values[row])) continue;
    ++abnormal_count[space->PartitionOf(values[row])];
  }
  for (size_t row : rows.normal) {
    if (!std::isfinite(values[row])) continue;
    ++normal_count[space->PartitionOf(values[row])];
  }
  for (size_t j = 0; j < space->size(); ++j) {
    if (abnormal_count[j] > 0 && normal_count[j] == 0) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (normal_count[j] > 0 && abnormal_count[j] == 0) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void LabelNumericPartitions(std::span<const double> values,
                            const DiagnosisRuns& runs,
                            PartitionSpace* space) {
  const size_t num = space->size();
  // Four interleaved sub-histograms per region: smooth telemetry lands
  // consecutive cells in the same partition, and a single count array would
  // serialize those increments on the store-to-load dependency. Integer
  // counts are exact, so the labels stay ISA-independent.
  std::vector<uint32_t> abnormal_count(4 * num, 0);
  std::vector<uint32_t> normal_count(4 * num, 0);
  std::vector<uint32_t> indices;
  auto tally = [&](const std::vector<RowRun>& region_runs,
                   std::vector<uint32_t>* counts) {
    uint32_t* c0 = counts->data();
    uint32_t* c1 = c0 + num;
    uint32_t* c2 = c1 + num;
    uint32_t* c3 = c2 + num;
    for (const RowRun& run : region_runs) {
      indices.resize(run.size());
      common::simd::PartitionIndices(
          values.data() + run.begin, run.size(), space->min_value(),
          space->width(), static_cast<uint32_t>(num), indices.data());
      // Non-finite cells voted for no partition (see kNoPartition).
      constexpr uint32_t kNone = common::simd::kNoPartition;
      size_t m = indices.size();
      size_t i = 0;
      for (; i + 4 <= m; i += 4) {
        uint32_t i0 = indices[i];
        uint32_t i1 = indices[i + 1];
        uint32_t i2 = indices[i + 2];
        uint32_t i3 = indices[i + 3];
        if (i0 != kNone) ++c0[i0];
        if (i1 != kNone) ++c1[i1];
        if (i2 != kNone) ++c2[i2];
        if (i3 != kNone) ++c3[i3];
      }
      for (; i < m; ++i) {
        if (indices[i] != kNone) ++c0[indices[i]];
      }
    }
  };
  tally(runs.abnormal, &abnormal_count);
  tally(runs.normal, &normal_count);
  for (size_t j = 0; j < num; ++j) {
    uint32_t a = abnormal_count[j] + abnormal_count[num + j] +
                 abnormal_count[2 * num + j] + abnormal_count[3 * num + j];
    uint32_t nc = normal_count[j] + normal_count[num + j] +
                  normal_count[2 * num + j] + normal_count[3 * num + j];
    if (a > 0 && nc == 0) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (nc > 0 && a == 0) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void LabelCategoricalPartitions(std::span<const int32_t> codes,
                                const tsdata::LabeledRows& rows,
                                PartitionSpace* space) {
  std::vector<uint32_t> abnormal_count(space->size(), 0);
  std::vector<uint32_t> normal_count(space->size(), 0);
  for (size_t row : rows.abnormal) {
    ++abnormal_count[static_cast<size_t>(codes[row])];
  }
  for (size_t row : rows.normal) {
    ++normal_count[static_cast<size_t>(codes[row])];
  }
  for (size_t j = 0; j < space->size(); ++j) {
    if (abnormal_count[j] > normal_count[j]) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (normal_count[j] > abnormal_count[j]) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void LabelCategoricalPartitions(std::span<const int32_t> codes,
                                const DiagnosisRuns& runs,
                                PartitionSpace* space) {
  const size_t num = space->size();
  // Same interleaved sub-histogram trick as the numeric runs overload:
  // consecutive rows usually carry the same category code, and one count
  // array would serialize the increments on a store-to-load dependency.
  std::vector<uint32_t> abnormal_count(4 * num, 0);
  std::vector<uint32_t> normal_count(4 * num, 0);
  auto tally = [&](const std::vector<RowRun>& region_runs,
                   std::vector<uint32_t>* counts) {
    uint32_t* c0 = counts->data();
    uint32_t* c1 = c0 + num;
    uint32_t* c2 = c1 + num;
    uint32_t* c3 = c2 + num;
    for (const RowRun& run : region_runs) {
      const int32_t* p = codes.data() + run.begin;
      size_t m = run.size();
      size_t i = 0;
      for (; i + 4 <= m; i += 4) {
        ++c0[static_cast<size_t>(p[i])];
        ++c1[static_cast<size_t>(p[i + 1])];
        ++c2[static_cast<size_t>(p[i + 2])];
        ++c3[static_cast<size_t>(p[i + 3])];
      }
      for (; i < m; ++i) ++c0[static_cast<size_t>(p[i])];
    }
  };
  tally(runs.abnormal, &abnormal_count);
  tally(runs.normal, &normal_count);
  for (size_t j = 0; j < num; ++j) {
    uint32_t a = abnormal_count[j] + abnormal_count[num + j] +
                 abnormal_count[2 * num + j] + abnormal_count[3 * num + j];
    uint32_t nc = normal_count[j] + normal_count[num + j] +
                  normal_count[2 * num + j] + normal_count[3 * num + j];
    if (a > nc) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (nc > a) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void FilterPartitions(PartitionSpace* space) {
  // Indices of non-Empty partitions, in order.
  std::vector<size_t> non_empty;
  for (size_t j = 0; j < space->size(); ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) non_empty.push_back(j);
  }
  // A lone Normal/Abnormal partition is deemed significant (Section 4.3).
  if (non_empty.size() <= 1) return;

  // Decide simultaneously from the pre-filter labels (the paper's
  // non-incremental rule, which keeps end partitions alive in Fig. 5's
  // scenarios 2 and 3).
  std::vector<size_t> to_blank;
  for (size_t k = 0; k < non_empty.size(); ++k) {
    size_t j = non_empty[k];
    PartitionLabel mine = space->label(j);
    bool differs = false;
    if (k > 0 && space->label(non_empty[k - 1]) != mine) differs = true;
    if (k + 1 < non_empty.size() && space->label(non_empty[k + 1]) != mine) {
      differs = true;
    }
    if (differs) to_blank.push_back(j);
  }
  for (size_t j : to_blank) space->set_label(j, PartitionLabel::kEmpty);
}

bool PlantNormalAnchorIfNeeded(PartitionSpace* space, double anchor) {
  if (!space->is_numeric() || space->size() == 0) return false;
  if (space->CountWithLabel(PartitionLabel::kNormal) > 0) return false;
  if (space->CountWithLabel(PartitionLabel::kAbnormal) == 0) return false;
  space->set_label(space->PartitionOf(anchor), PartitionLabel::kNormal);
  return true;
}

void FillPartitionGaps(PartitionSpace* space, double delta,
                       std::optional<double> normal_anchor) {
  size_t n = space->size();
  if (n == 0) return;

  bool has_normal = space->CountWithLabel(PartitionLabel::kNormal) > 0;
  bool has_abnormal = space->CountWithLabel(PartitionLabel::kAbnormal) > 0;
  if (!has_abnormal && !has_normal) return;  // nothing to anchor on

  // Special case (Section 4.4): only Abnormal partitions survived the
  // filter. Plant a Normal partition at the average normal-region value so
  // the predicate direction is determined.
  if (normal_anchor.has_value()) {
    PlantNormalAnchorIfNeeded(space, *normal_anchor);
  }

  // Nearest non-Empty partition to the left/right of each position, based
  // on the post-filter labels (filling is a single simultaneous pass).
  std::vector<ptrdiff_t> left(n, -1);
  std::vector<ptrdiff_t> right(n, -1);
  ptrdiff_t last = -1;
  for (size_t j = 0; j < n; ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) last = static_cast<ptrdiff_t>(j);
    left[j] = last;
  }
  last = -1;
  for (size_t j = n; j-- > 0;) {
    if (space->label(j) != PartitionLabel::kEmpty) last = static_cast<ptrdiff_t>(j);
    right[j] = last;
  }

  std::vector<PartitionLabel> result(space->labels());
  for (size_t j = 0; j < n; ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) continue;
    ptrdiff_t l = left[j];
    ptrdiff_t r = right[j];
    if (l < 0 && r < 0) continue;  // unreachable: guarded above
    if (l < 0) {
      result[j] = space->label(static_cast<size_t>(r));
      continue;
    }
    if (r < 0) {
      result[j] = space->label(static_cast<size_t>(l));
      continue;
    }
    PartitionLabel ll = space->label(static_cast<size_t>(l));
    PartitionLabel rl = space->label(static_cast<size_t>(r));
    if (ll == rl) {
      result[j] = ll;
      continue;
    }
    // Effective distances: the Abnormal side is pushed `delta` times
    // farther away (delta > 1 => more specific predicates).
    double dist_l = static_cast<double>(static_cast<ptrdiff_t>(j) - l);
    double dist_r = static_cast<double>(r - static_cast<ptrdiff_t>(j));
    if (ll == PartitionLabel::kAbnormal) dist_l *= delta;
    if (rl == PartitionLabel::kAbnormal) dist_r *= delta;
    if (dist_l < dist_r) {
      result[j] = ll;
    } else if (dist_r < dist_l) {
      result[j] = rl;
    } else {
      // Tie: prefer Normal (consistent with delta's bias direction).
      result[j] = ll == PartitionLabel::kNormal ? ll : rl;
    }
  }
  for (size_t j = 0; j < n; ++j) space->set_label(j, result[j]);
}

std::optional<AbnormalBlock> SingleAbnormalBlock(
    const PartitionSpace& space) {
  std::optional<AbnormalBlock> block;
  bool in_run = false;
  for (size_t j = 0; j < space.size(); ++j) {
    if (space.label(j) == PartitionLabel::kAbnormal) {
      if (!in_run) {
        if (block.has_value()) return std::nullopt;  // second run
        block = AbnormalBlock{j, j};
        in_run = true;
      } else {
        block->last = j;
      }
    } else {
      in_run = false;
    }
  }
  return block;
}

}  // namespace dbsherlock::core
