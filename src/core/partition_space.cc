#include "core/partition_space.h"

#include <algorithm>
#include <cmath>

namespace dbsherlock::core {

PartitionSpace PartitionSpace::Numeric(double min_value, double max_value,
                                       size_t num_partitions) {
  PartitionSpace space;
  space.is_numeric_ = true;
  space.min_value_ = min_value;
  space.max_value_ = max_value;
  if (num_partitions == 0) num_partitions = 1;
  space.labels_.assign(num_partitions, PartitionLabel::kEmpty);
  space.width_ =
      (max_value - min_value) / static_cast<double>(num_partitions);
  if (space.width_ <= 0.0) space.width_ = 1.0;
  return space;
}

PartitionSpace PartitionSpace::Categorical(
    std::vector<std::string> categories) {
  PartitionSpace space;
  space.is_numeric_ = false;
  space.labels_.assign(categories.size(), PartitionLabel::kEmpty);
  space.categories_ = std::move(categories);
  return space;
}

double PartitionSpace::lower_bound(size_t j) const {
  return min_value_ + width_ * static_cast<double>(j);
}

double PartitionSpace::upper_bound(size_t j) const {
  return min_value_ + width_ * static_cast<double>(j + 1);
}

double PartitionSpace::mid_value(size_t j) const {
  return min_value_ + width_ * (static_cast<double>(j) + 0.5);
}

size_t PartitionSpace::PartitionOf(double value) const {
  // NaN would make the size_t cast below undefined behavior; clamp hostile
  // values to the first partition (callers are expected to have filtered
  // non-finite cells already — this is the last line of defense).
  if (labels_.empty() || std::isnan(value) || value <= min_value_) return 0;
  size_t j = static_cast<size_t>(
      std::min((value - min_value_) / width_,
               static_cast<double>(labels_.size() - 1)));
  return std::min(j, labels_.size() - 1);
}

size_t PartitionSpace::CountWithLabel(PartitionLabel l) const {
  return static_cast<size_t>(
      std::count(labels_.begin(), labels_.end(), l));
}

void LabelNumericPartitions(std::span<const double> values,
                            const tsdata::LabeledRows& rows,
                            PartitionSpace* space) {
  std::vector<uint32_t> abnormal_count(space->size(), 0);
  std::vector<uint32_t> normal_count(space->size(), 0);
  // Non-finite cells vote for no partition: a NaN-poisoned row must not
  // label partition 0 (or +-Inf's clamped edge) abnormal/normal.
  for (size_t row : rows.abnormal) {
    if (!std::isfinite(values[row])) continue;
    ++abnormal_count[space->PartitionOf(values[row])];
  }
  for (size_t row : rows.normal) {
    if (!std::isfinite(values[row])) continue;
    ++normal_count[space->PartitionOf(values[row])];
  }
  for (size_t j = 0; j < space->size(); ++j) {
    if (abnormal_count[j] > 0 && normal_count[j] == 0) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (normal_count[j] > 0 && abnormal_count[j] == 0) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void LabelCategoricalPartitions(std::span<const int32_t> codes,
                                const tsdata::LabeledRows& rows,
                                PartitionSpace* space) {
  std::vector<uint32_t> abnormal_count(space->size(), 0);
  std::vector<uint32_t> normal_count(space->size(), 0);
  for (size_t row : rows.abnormal) {
    ++abnormal_count[static_cast<size_t>(codes[row])];
  }
  for (size_t row : rows.normal) {
    ++normal_count[static_cast<size_t>(codes[row])];
  }
  for (size_t j = 0; j < space->size(); ++j) {
    if (abnormal_count[j] > normal_count[j]) {
      space->set_label(j, PartitionLabel::kAbnormal);
    } else if (normal_count[j] > abnormal_count[j]) {
      space->set_label(j, PartitionLabel::kNormal);
    } else {
      space->set_label(j, PartitionLabel::kEmpty);
    }
  }
}

void FilterPartitions(PartitionSpace* space) {
  // Indices of non-Empty partitions, in order.
  std::vector<size_t> non_empty;
  for (size_t j = 0; j < space->size(); ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) non_empty.push_back(j);
  }
  // A lone Normal/Abnormal partition is deemed significant (Section 4.3).
  if (non_empty.size() <= 1) return;

  // Decide simultaneously from the pre-filter labels (the paper's
  // non-incremental rule, which keeps end partitions alive in Fig. 5's
  // scenarios 2 and 3).
  std::vector<size_t> to_blank;
  for (size_t k = 0; k < non_empty.size(); ++k) {
    size_t j = non_empty[k];
    PartitionLabel mine = space->label(j);
    bool differs = false;
    if (k > 0 && space->label(non_empty[k - 1]) != mine) differs = true;
    if (k + 1 < non_empty.size() && space->label(non_empty[k + 1]) != mine) {
      differs = true;
    }
    if (differs) to_blank.push_back(j);
  }
  for (size_t j : to_blank) space->set_label(j, PartitionLabel::kEmpty);
}

bool PlantNormalAnchorIfNeeded(PartitionSpace* space, double anchor) {
  if (!space->is_numeric() || space->size() == 0) return false;
  if (space->CountWithLabel(PartitionLabel::kNormal) > 0) return false;
  if (space->CountWithLabel(PartitionLabel::kAbnormal) == 0) return false;
  space->set_label(space->PartitionOf(anchor), PartitionLabel::kNormal);
  return true;
}

void FillPartitionGaps(PartitionSpace* space, double delta,
                       std::optional<double> normal_anchor) {
  size_t n = space->size();
  if (n == 0) return;

  bool has_normal = space->CountWithLabel(PartitionLabel::kNormal) > 0;
  bool has_abnormal = space->CountWithLabel(PartitionLabel::kAbnormal) > 0;
  if (!has_abnormal && !has_normal) return;  // nothing to anchor on

  // Special case (Section 4.4): only Abnormal partitions survived the
  // filter. Plant a Normal partition at the average normal-region value so
  // the predicate direction is determined.
  if (normal_anchor.has_value()) {
    PlantNormalAnchorIfNeeded(space, *normal_anchor);
  }

  // Nearest non-Empty partition to the left/right of each position, based
  // on the post-filter labels (filling is a single simultaneous pass).
  std::vector<ptrdiff_t> left(n, -1);
  std::vector<ptrdiff_t> right(n, -1);
  ptrdiff_t last = -1;
  for (size_t j = 0; j < n; ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) last = static_cast<ptrdiff_t>(j);
    left[j] = last;
  }
  last = -1;
  for (size_t j = n; j-- > 0;) {
    if (space->label(j) != PartitionLabel::kEmpty) last = static_cast<ptrdiff_t>(j);
    right[j] = last;
  }

  std::vector<PartitionLabel> result(space->labels());
  for (size_t j = 0; j < n; ++j) {
    if (space->label(j) != PartitionLabel::kEmpty) continue;
    ptrdiff_t l = left[j];
    ptrdiff_t r = right[j];
    if (l < 0 && r < 0) continue;  // unreachable: guarded above
    if (l < 0) {
      result[j] = space->label(static_cast<size_t>(r));
      continue;
    }
    if (r < 0) {
      result[j] = space->label(static_cast<size_t>(l));
      continue;
    }
    PartitionLabel ll = space->label(static_cast<size_t>(l));
    PartitionLabel rl = space->label(static_cast<size_t>(r));
    if (ll == rl) {
      result[j] = ll;
      continue;
    }
    // Effective distances: the Abnormal side is pushed `delta` times
    // farther away (delta > 1 => more specific predicates).
    double dist_l = static_cast<double>(static_cast<ptrdiff_t>(j) - l);
    double dist_r = static_cast<double>(r - static_cast<ptrdiff_t>(j));
    if (ll == PartitionLabel::kAbnormal) dist_l *= delta;
    if (rl == PartitionLabel::kAbnormal) dist_r *= delta;
    if (dist_l < dist_r) {
      result[j] = ll;
    } else if (dist_r < dist_l) {
      result[j] = rl;
    } else {
      // Tie: prefer Normal (consistent with delta's bias direction).
      result[j] = ll == PartitionLabel::kNormal ? ll : rl;
    }
  }
  for (size_t j = 0; j < n; ++j) space->set_label(j, result[j]);
}

std::optional<AbnormalBlock> SingleAbnormalBlock(
    const PartitionSpace& space) {
  std::optional<AbnormalBlock> block;
  bool in_run = false;
  for (size_t j = 0; j < space.size(); ++j) {
    if (space.label(j) == PartitionLabel::kAbnormal) {
      if (!in_run) {
        if (block.has_value()) return std::nullopt;  // second run
        block = AbnormalBlock{j, j};
        in_run = true;
      } else {
        block->last = j;
      }
    } else {
      in_run = false;
    }
  }
  return block;
}

}  // namespace dbsherlock::core
