#include "core/streaming_monitor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace dbsherlock::core {

namespace {

/// Registry-backed monitor accounting: the process-wide totals exported by
/// --metrics-out. The per-instance counters on the class remain the
/// per-monitor view (tests and callers compare instances); these are the
/// aggregate a serving stack scrapes.
struct MonitorMetrics {
  common::Counter* rows_appended;
  common::Counter* rows_dropped_late;
  common::Counter* rows_dropped_duplicate;
  common::Counter* rows_dropped_non_finite;
  common::Counter* detections_run;
  common::Counter* alerts_raised;

  static const MonitorMetrics& Get() {
    static const MonitorMetrics metrics = [] {
      common::MetricsRegistry& reg = common::MetricsRegistry::Global();
      return MonitorMetrics{
          reg.GetCounter("streaming_monitor.rows_appended"),
          reg.GetCounter("streaming_monitor.rows_dropped_late"),
          reg.GetCounter("streaming_monitor.rows_dropped_duplicate"),
          reg.GetCounter("streaming_monitor.rows_dropped_non_finite"),
          reg.GetCounter("streaming_monitor.detections_run"),
          reg.GetCounter("streaming_monitor.alerts_raised")};
    }();
    return metrics;
  }
};

/// Increments an aggregate counter and, when present, its per-instance
/// labeled mirror (two disjoint registry namespaces; see Options).
void Bump(common::Counter* aggregate, common::Counter* instance) {
  aggregate->Increment();
  if (instance != nullptr) instance->Increment();
}

}  // namespace

StreamingMonitor::StreamingMonitor(const tsdata::Schema& schema,
                                   Options options)
    : options_(std::move(options)),
      window_(schema),
      explainer_(options_.explainer) {
  if (!options_.metric_label.empty()) {
    common::MetricsRegistry& reg = common::MetricsRegistry::Global();
    const std::string prefix =
        "streaming_monitor.instance." + options_.metric_label + ".";
    instance_.rows_appended = reg.GetCounter(prefix + "rows_appended");
    instance_.rows_dropped_late = reg.GetCounter(prefix + "rows_dropped_late");
    instance_.rows_dropped_duplicate =
        reg.GetCounter(prefix + "rows_dropped_duplicate");
    instance_.rows_dropped_non_finite =
        reg.GetCounter(prefix + "rows_dropped_non_finite");
    instance_.detections_run = reg.GetCounter(prefix + "detections_run");
    instance_.alerts_raised = reg.GetCounter(prefix + "alerts_raised");
  }
}

void StreamingMonitor::TrimWindow() {
  // Hysteresis: trimming copies the window, so let it overshoot by a chunk
  // and cut back in one go (amortized O(1) per appended row).
  constexpr size_t kSlack = 64;
  if (window_.num_rows() <= options_.window_rows + kSlack) return;
  size_t drop = window_.num_rows() - options_.window_rows;
  window_ = window_.Slice(drop, window_.num_rows());
}

common::Status StreamingMonitor::Hydrate(const tsdata::Dataset& tail) {
  if (!(tail.schema() == window_.schema())) {
    return common::Status::InvalidArgument(
        "hydration tail schema does not match the monitor schema");
  }
  if (!tail.TimestampsSorted()) {
    return common::Status::InvalidArgument(
        "hydration tail timestamps are not sorted");
  }
  double newest = window_.num_rows() > 0
                      ? window_.timestamp(window_.num_rows() - 1)
                      : -std::numeric_limits<double>::infinity();
  std::vector<tsdata::Cell> cells(tail.num_attributes());
  for (size_t row = 0; row < tail.num_rows(); ++row) {
    double ts = tail.timestamp(row);
    if (!std::isfinite(ts) || !(ts > newest)) {
      return common::Status::InvalidArgument(common::StrFormat(
          "hydration row %zu timestamp %g is not after %g", row, ts,
          newest));
    }
    for (size_t i = 0; i < tail.num_attributes(); ++i) {
      const tsdata::Column& column = tail.column(i);
      if (column.kind() == tsdata::AttributeKind::kNumeric) {
        cells[i] = column.numeric(row);
      } else {
        cells[i] = column.CategoryName(column.code(row));
      }
    }
    DBSHERLOCK_RETURN_NOT_OK(window_.AppendRow(ts, cells));
    newest = ts;
    ++rows_seen_;
  }
  TrimWindow();
  // History was already monitored before the restart: anything in the
  // hydrated span must not re-alert.
  if (window_.num_rows() > 0) {
    alerted_until_ =
        std::max(alerted_until_, window_.timestamp(window_.num_rows() - 1));
  }
  return common::Status::OK();
}

std::optional<StreamingMonitor::Alert> StreamingMonitor::Append(
    double timestamp, const std::vector<tsdata::Cell>& cells) {
  // Timestamp triage before touching the window: Dataset::AppendRow would
  // accept a NaN timestamp (NaN < back is false) and a duplicate, either of
  // which corrupts the window ordering the detector depends on.
  if (!std::isfinite(timestamp)) {
    ++non_finite_rows_dropped_;
    Bump(MonitorMetrics::Get().rows_dropped_non_finite,
         instance_.rows_dropped_non_finite);
    last_append_status_ = common::Status::InvalidArgument(
        "dropped row with non-finite timestamp");
    return std::nullopt;
  }
  if (window_.num_rows() > 0) {
    double last = window_.timestamp(window_.num_rows() - 1);
    if (timestamp == last) {
      ++duplicate_rows_dropped_;
      Bump(MonitorMetrics::Get().rows_dropped_duplicate,
           instance_.rows_dropped_duplicate);
      last_append_status_ = common::Status::InvalidArgument(
          common::StrFormat("dropped duplicate row at timestamp %g",
                            timestamp));
      return std::nullopt;
    }
    if (timestamp < last) {
      ++late_rows_dropped_;
      Bump(MonitorMetrics::Get().rows_dropped_late,
           instance_.rows_dropped_late);
      last_append_status_ = common::Status::InvalidArgument(
          common::StrFormat("dropped late row: timestamp %g < newest %g",
                            timestamp, last));
      return std::nullopt;
    }
  }
  last_append_status_ = window_.AppendRow(timestamp, cells);
  if (!last_append_status_.ok()) return std::nullopt;
  ++rows_seen_;
  ++rows_since_detect_;
  Bump(MonitorMetrics::Get().rows_appended, instance_.rows_appended);
  TrimWindow();

  if (rows_seen_ < options_.warmup_rows ||
      rows_since_detect_ < options_.detect_every) {
    return std::nullopt;
  }
  rows_since_detect_ = 0;

  TRACE_SPAN("streaming_monitor.detect_and_diagnose");
  Bump(MonitorMetrics::Get().detections_run, instance_.detections_run);
  DetectionResult detection = DetectAnomalies(window_, options_.detector);
  if (detection.abnormal.empty()) return std::nullopt;

  // Report only regions not already alerted on; among the new ones, take
  // the most recent (the live incident).
  const tsdata::TimeRange* fresh = nullptr;
  for (const tsdata::TimeRange& range : detection.abnormal.ranges()) {
    if (range.start > alerted_until_) {
      if (fresh == nullptr || range.start > fresh->start) fresh = &range;
    }
  }
  if (fresh == nullptr) return std::nullopt;

  Alert alert;
  alert.region = *fresh;
  alert.raised_at = timestamp;
  if (options_.diagnose_inline) {
    DetectionResult narrowed = detection;
    narrowed.abnormal = tsdata::RegionSpec({*fresh});
    alert.explanation = explainer_.Diagnose(
        window_,
        DetectionToRegions(narrowed, window_, options_.detector));
  }
  alerted_until_ = fresh->end;
  alerts_.push_back(alert);
  Bump(MonitorMetrics::Get().alerts_raised, instance_.alerts_raised);
  return alert;
}

}  // namespace dbsherlock::core
