#ifndef DBSHERLOCK_CORE_PARTITION_CACHE_H_
#define DBSHERLOCK_CORE_PARTITION_CACHE_H_

#include <optional>
#include <span>
#include <unordered_map>

#include "core/causal_model.h"
#include "core/partition_space.h"
#include "core/predicate_generator.h"
#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// The labeled partition spaces Eq. (3) confidence is measured over, keyed
/// by attribute index and shared across every causal model of one
/// ModelRepository::Rank call. Without it, ranking labels the identical
/// space once per (model, predicate) — quadratic in repository size for
/// merged repositories whose models reference overlapping attributes; with
/// it, each attribute is profiled and labeled exactly once per inquiry.
///
/// Lifetime and invalidation: a cache is valid only for one (dataset, row
/// split, options) triple, all of which are immutable during a diagnosis,
/// so the cache lives at most for one Rank call and is never invalidated —
/// it is simply discarded. Entries include the skewed-attribute normal
/// anchor (PlantNormalAnchorIfNeeded), i.e. they are exactly the spaces
/// historical ModelConfidence built per model.
///
/// Threading: Prepare() builds all entries (fanning out over attributes);
/// afterwards the cache is read-only, so concurrent Find()/Get() from the
/// parallel model-scoring loop need no locks.
class PartitionSpaceCache {
 public:
  PartitionSpaceCache(const tsdata::Dataset& dataset,
                      const tsdata::LabeledRows& rows,
                      const PredicateGenOptions& options)
      : dataset_(dataset), rows_(rows), options_(options) {}

  /// Counts the discarded entries as `partition_cache.evictions` (this
  /// cache never evicts mid-inquiry; entries die with the Rank call).
  ~PartitionSpaceCache();

  PartitionSpaceCache(const PartitionSpaceCache&) = delete;
  PartitionSpaceCache& operator=(const PartitionSpaceCache&) = delete;

  /// Builds the space of every attribute referenced by any predicate of any
  /// model in `models`, in parallel (options.parallelism lanes). Attributes
  /// missing from the dataset's schema are skipped (their predicates later
  /// contribute zero confidence, as before).
  void Prepare(std::span<const CausalModel> models);

  /// The cached space for the attribute named by `attribute`, or nullptr
  /// when the attribute is unknown to the schema or was not Prepare()d.
  /// The pointee is nullopt for attributes with no buildable space
  /// (constant numeric columns, empty regions).
  const std::optional<PartitionSpace>* Find(const std::string& attribute) const;

  const tsdata::Dataset& dataset() const { return dataset_; }
  const tsdata::LabeledRows& rows() const { return rows_; }
  const PredicateGenOptions& options() const { return options_; }

 private:
  const tsdata::Dataset& dataset_;
  const tsdata::LabeledRows& rows_;
  const PredicateGenOptions& options_;
  std::unordered_map<size_t, std::optional<PartitionSpace>> spaces_;
};

/// One attribute's confidence space (the space Eq. (3) measures separation
/// power over): the labeled-only partition space of
/// BuildLabeledPartitionSpace plus, for heavily skewed numeric attributes,
/// the planted normal anchor (PlantNormalAnchorIfNeeded). One fused
/// profile sweep feeds both the space range and the anchor mean. Shared by
/// PartitionSpaceCache::Prepare and the cache-free ModelConfidence path.
/// `runs`, when supplied, must be BuildDiagnosisRuns(rows); it routes the
/// sweeps through the batch kernels and is shared across the attributes of
/// one inquiry (nullptr = row-at-a-time path).
std::optional<PartitionSpace> BuildConfidenceSpace(
    const tsdata::Dataset& dataset, const tsdata::LabeledRows& rows,
    size_t attr_index, const PredicateGenOptions& options,
    const DiagnosisRuns* runs = nullptr);

/// Eq. (3) confidence of `model` against the anomaly captured by `cache`
/// (see ModelConfidence in causal_model.h), reading every partition space
/// from the cache. `cache` must already be Prepare()d with a model set that
/// covers `model`; safe to call concurrently for different models.
double ModelConfidence(const CausalModel& model,
                       const PartitionSpaceCache& cache);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_PARTITION_CACHE_H_
