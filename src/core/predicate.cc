#include "core/predicate.h"

#include <algorithm>

#include "common/simd/simd.h"
#include "common/strings.h"

namespace dbsherlock::core {

namespace {

/// CountMatches arguments equivalent to MatchesNumeric for a numeric
/// predicate shape.
struct NumericCmp {
  common::simd::CmpKind kind;
  double lo;
  double hi;
};

NumericCmp CmpOf(const Predicate& p) {
  switch (p.type) {
    case PredicateType::kLessThan:
      return {common::simd::CmpKind::kLess, 0.0, p.high};
    case PredicateType::kGreaterThan:
      return {common::simd::CmpKind::kGreaterEq, p.low, 0.0};
    case PredicateType::kRange:
    case PredicateType::kInSet:
      break;
  }
  return {common::simd::CmpKind::kInRange, p.low, p.high};
}

uint64_t CountRunMatches(const Predicate& p, std::span<const double> values,
                         const std::vector<RowRun>& runs) {
  NumericCmp cmp = CmpOf(p);
  uint64_t hits = 0;
  for (const RowRun& run : runs) {
    hits += common::simd::CountMatches(values.data() + run.begin, run.size(),
                                       cmp.kind, cmp.lo, cmp.hi);
  }
  return hits;
}

}  // namespace

bool Predicate::MatchesNumeric(double value) const {
  switch (type) {
    case PredicateType::kLessThan:
      return value < high;
    case PredicateType::kGreaterThan:
      return value >= low;
    case PredicateType::kRange:
      return value >= low && value < high;
    case PredicateType::kInSet:
      return false;
  }
  return false;
}

bool Predicate::MatchesCategory(const std::string& value) const {
  if (type != PredicateType::kInSet) return false;
  return std::find(categories.begin(), categories.end(), value) !=
         categories.end();
}

bool Predicate::MatchesRow(const tsdata::Dataset& dataset, size_t row) const {
  auto idx = dataset.schema().IndexOf(attribute);
  if (!idx.ok()) return false;
  const tsdata::Column& col = dataset.column(*idx);
  if (is_numeric()) {
    if (col.kind() != tsdata::AttributeKind::kNumeric) return false;
    return MatchesNumeric(col.numeric(row));
  }
  if (col.kind() != tsdata::AttributeKind::kCategorical) return false;
  return MatchesCategory(col.CategoryName(col.code(row)));
}

std::string Predicate::ToString() const {
  switch (type) {
    case PredicateType::kLessThan:
      return common::StrFormat("%s < %.4g", attribute.c_str(), high);
    case PredicateType::kGreaterThan:
      return common::StrFormat("%s > %.4g", attribute.c_str(), low);
    case PredicateType::kRange:
      return common::StrFormat("%.4g < %s < %.4g", low, attribute.c_str(),
                               high);
    case PredicateType::kInSet: {
      std::string out = attribute + " IN {";
      for (size_t i = 0; i < categories.size(); ++i) {
        if (i > 0) out += ", ";
        out += categories[i];
      }
      out += "}";
      return out;
    }
  }
  return attribute + " <invalid>";
}

double SeparationPower(const Predicate& predicate,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows) {
  if (rows.abnormal.empty() || rows.normal.empty()) return 0.0;
  size_t abnormal_hits = 0;
  for (size_t row : rows.abnormal) {
    if (predicate.MatchesRow(dataset, row)) ++abnormal_hits;
  }
  size_t normal_hits = 0;
  for (size_t row : rows.normal) {
    if (predicate.MatchesRow(dataset, row)) ++normal_hits;
  }
  return static_cast<double>(abnormal_hits) /
             static_cast<double>(rows.abnormal.size()) -
         static_cast<double>(normal_hits) /
             static_cast<double>(rows.normal.size());
}

double SeparationPower(const Predicate& predicate,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows,
                       const DiagnosisRuns& runs) {
  if (rows.abnormal.empty() || rows.normal.empty()) return 0.0;
  if (!predicate.is_numeric()) {
    return SeparationPower(predicate, dataset, rows);
  }
  auto idx = dataset.schema().IndexOf(predicate.attribute);
  if (!idx.ok()) return 0.0;  // MatchesRow answers false for every row
  const tsdata::Column& col = dataset.column(*idx);
  if (col.kind() != tsdata::AttributeKind::kNumeric) return 0.0;
  std::span<const double> values = col.numeric_values();
  uint64_t abnormal_hits = CountRunMatches(predicate, values, runs.abnormal);
  uint64_t normal_hits = CountRunMatches(predicate, values, runs.normal);
  return static_cast<double>(abnormal_hits) /
             static_cast<double>(rows.abnormal.size()) -
         static_cast<double>(normal_hits) /
             static_cast<double>(rows.normal.size());
}

bool ConjunctMatchesRow(const std::vector<Predicate>& predicates,
                        const tsdata::Dataset& dataset, size_t row) {
  if (predicates.empty()) return false;
  for (const Predicate& p : predicates) {
    if (!p.MatchesRow(dataset, row)) return false;
  }
  return true;
}

}  // namespace dbsherlock::core
