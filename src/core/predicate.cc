#include "core/predicate.h"

#include <algorithm>

#include "common/strings.h"

namespace dbsherlock::core {

bool Predicate::MatchesNumeric(double value) const {
  switch (type) {
    case PredicateType::kLessThan:
      return value < high;
    case PredicateType::kGreaterThan:
      return value >= low;
    case PredicateType::kRange:
      return value >= low && value < high;
    case PredicateType::kInSet:
      return false;
  }
  return false;
}

bool Predicate::MatchesCategory(const std::string& value) const {
  if (type != PredicateType::kInSet) return false;
  return std::find(categories.begin(), categories.end(), value) !=
         categories.end();
}

bool Predicate::MatchesRow(const tsdata::Dataset& dataset, size_t row) const {
  auto idx = dataset.schema().IndexOf(attribute);
  if (!idx.ok()) return false;
  const tsdata::Column& col = dataset.column(*idx);
  if (is_numeric()) {
    if (col.kind() != tsdata::AttributeKind::kNumeric) return false;
    return MatchesNumeric(col.numeric(row));
  }
  if (col.kind() != tsdata::AttributeKind::kCategorical) return false;
  return MatchesCategory(col.CategoryName(col.code(row)));
}

std::string Predicate::ToString() const {
  switch (type) {
    case PredicateType::kLessThan:
      return common::StrFormat("%s < %.4g", attribute.c_str(), high);
    case PredicateType::kGreaterThan:
      return common::StrFormat("%s > %.4g", attribute.c_str(), low);
    case PredicateType::kRange:
      return common::StrFormat("%.4g < %s < %.4g", low, attribute.c_str(),
                               high);
    case PredicateType::kInSet: {
      std::string out = attribute + " IN {";
      for (size_t i = 0; i < categories.size(); ++i) {
        if (i > 0) out += ", ";
        out += categories[i];
      }
      out += "}";
      return out;
    }
  }
  return attribute + " <invalid>";
}

double SeparationPower(const Predicate& predicate,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows) {
  if (rows.abnormal.empty() || rows.normal.empty()) return 0.0;
  size_t abnormal_hits = 0;
  for (size_t row : rows.abnormal) {
    if (predicate.MatchesRow(dataset, row)) ++abnormal_hits;
  }
  size_t normal_hits = 0;
  for (size_t row : rows.normal) {
    if (predicate.MatchesRow(dataset, row)) ++normal_hits;
  }
  return static_cast<double>(abnormal_hits) /
             static_cast<double>(rows.abnormal.size()) -
         static_cast<double>(normal_hits) /
             static_cast<double>(rows.normal.size());
}

bool ConjunctMatchesRow(const std::vector<Predicate>& predicates,
                        const tsdata::Dataset& dataset, size_t row) {
  if (predicates.empty()) return false;
  for (const Predicate& p : predicates) {
    if (!p.MatchesRow(dataset, row)) return false;
  }
  return true;
}

}  // namespace dbsherlock::core
