#ifndef DBSHERLOCK_CORE_ANOMALY_DETECTOR_H_
#define DBSHERLOCK_CORE_ANOMALY_DETECTOR_H_

#include <string>
#include <vector>

#include "tsdata/dataset.h"
#include "tsdata/region.h"

namespace dbsherlock::core {

/// Parameters of the automatic anomaly detector (Section 7). The paper
/// uses tau = 20, PPt = 0.3, minPts = 3, eps = max(Lk)/4, and reports
/// clusters smaller than 20% of the data as abnormal. This repository's
/// defaults keep tau/minPts/cluster rule but calibrate PPt = 0.45 and
/// eps = max(Lk)/2 — our simulated telemetry carries heavier-tailed
/// transient hiccups than the paper's testbed, which both push more
/// slow-drift attributes past PPt = 0.3 and inflate per-point k-distances.
/// The paper's exact values are one assignment away.
struct AnomalyDetectorOptions {
  size_t window = 20;                       // tau
  double potential_power_threshold = 0.45;  // PPt (paper: 0.3)
  int min_pts = 3;
  double eps_divisor = 2.0;       // eps = max(k-dist) / eps_divisor (paper: 4)
  double cluster_fraction = 0.2;  // small-cluster cutoff
  /// Region post-processing: detected ranges separated by at most this
  /// many seconds merge into one (an anomaly briefly dipping back toward
  /// normal is still one anomaly), and merged ranges shorter than
  /// `min_region_sec` are dropped as isolated hiccups.
  double merge_gap_sec = 4.0;
  double min_region_sec = 3.0;
  /// When converting a detection into diagnosis regions, rows within this
  /// many seconds of a detected boundary are ignored rather than treated
  /// as normal: the detector finds the anomaly's core, and trusting its
  /// exact edges would mislabel onset/offset ramp rows (Section 2.2's
  /// explicit-normal-region mechanism makes this possible).
  double boundary_guard_sec = 8.0;
  /// Graceful degradation: a numeric attribute with a lower fraction of
  /// finite cells than this is excluded from feature selection outright
  /// (reported in DetectionResult::skipped_attributes). Attributes above
  /// the threshold still participate, with each non-finite cell replaced by
  /// the column's normalized finite median so it can neither form nor break
  /// a cluster. 0 disables the gate.
  double min_attribute_quality = 0.75;
  /// Route normalization and the DBSCAN distance sweeps through the
  /// dispatched SIMD kernels over the dimension-major column layout
  /// (DESIGN.md §12). false = the historical row-major path. Detections
  /// are identical either way (same arithmetic per point pair).
  bool use_batch_kernels = true;
};

/// Output of automatic detection: the abnormal region (contiguous runs of
/// flagged rows), the flagged row indices, and diagnostics about the run.
struct DetectionResult {
  tsdata::RegionSpec abnormal;
  std::vector<size_t> abnormal_rows;
  /// Attributes whose potential power exceeded PPt (the features used).
  std::vector<std::string> selected_attributes;
  /// Attributes excluded for data quality (finite fraction below
  /// AnomalyDetectorOptions::min_attribute_quality), schema order.
  std::vector<std::string> skipped_attributes;
  double epsilon = 0.0;
};

/// Potential power of one normalized series (Eq. (4)): the largest absolute
/// difference between the overall median and any sliding-window median of
/// size `window`. Returns 0 when the series is shorter than the window.
double PotentialPower(std::span<const double> normalized_values,
                      size_t window);

/// Runs the full Section 7 pipeline: normalize each numeric attribute,
/// keep those with potential power above PPt, cluster the selected feature
/// vectors with DBSCAN (eps from the k-dist rule), and return the rows of
/// every cluster smaller than `cluster_fraction` of the data.
DetectionResult DetectAnomalies(const tsdata::Dataset& dataset,
                                const AnomalyDetectorOptions& options);

/// Converts a detection into the regions handed to the explainer: the
/// detected ranges become the abnormal region, and everything farther than
/// `boundary_guard_sec` from them becomes the explicit normal region (rows
/// inside the guard band are ignored — the detector's edges are fuzzy).
tsdata::DiagnosisRegions DetectionToRegions(
    const DetectionResult& detection, const tsdata::Dataset& dataset,
    const AnomalyDetectorOptions& options);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_ANOMALY_DETECTOR_H_
