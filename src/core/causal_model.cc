#include "core/causal_model.h"

#include <algorithm>

#include "core/partition_cache.h"

namespace dbsherlock::core {

double ModelConfidence(const CausalModel& model,
                       const tsdata::Dataset& dataset,
                       const tsdata::LabeledRows& rows,
                       const PredicateGenOptions& options) {
  // Cache-free path for one-off scoring: builds each predicate's space
  // directly (BuildConfidenceSpace fuses the range/anchor sweeps).
  // Repository ranking shares one PartitionSpaceCache across all models
  // instead (see ModelRepository::Rank).
  if (model.predicates.empty()) return 0.0;
  // One run decomposition shared by every predicate's column sweeps.
  std::optional<DiagnosisRuns> runs;
  if (options.use_batch_kernels) {
    runs = BuildDiagnosisRuns(rows);
  }
  double total = 0.0;
  for (const Predicate& pred : model.predicates) {
    auto attr = dataset.schema().IndexOf(pred.attribute);
    if (!attr.ok()) continue;  // contributes 0
    if (runs.has_value()) NoteDiagnosisRunsReused();
    std::optional<PartitionSpace> space = BuildConfidenceSpace(
        dataset, rows, *attr, options, runs.has_value() ? &*runs : nullptr);
    if (!space.has_value()) continue;
    total += PartitionSeparationPower(pred, *space);
  }
  return 100.0 * total / static_cast<double>(model.predicates.size());
}

namespace {

/// Widened numeric merge; assumes both predicates are numeric and on the
/// same attribute. Returns nullopt for conflicting directions.
std::optional<Predicate> MergeNumeric(const Predicate& a,
                                      const Predicate& b) {
  bool a_has_low = a.type != PredicateType::kLessThan;
  bool a_has_high = a.type != PredicateType::kGreaterThan;
  bool b_has_low = b.type != PredicateType::kLessThan;
  bool b_has_high = b.type != PredicateType::kGreaterThan;

  // A pure > merged with a pure < points in opposite directions.
  if ((a.type == PredicateType::kGreaterThan &&
       b.type == PredicateType::kLessThan) ||
      (a.type == PredicateType::kLessThan &&
       b.type == PredicateType::kGreaterThan)) {
    return std::nullopt;
  }

  Predicate out;
  out.attribute = a.attribute;
  // The merged predicate must include both regions: keep a bound only when
  // both sides constrain that direction, and widen it.
  bool has_low = a_has_low && b_has_low;
  bool has_high = a_has_high && b_has_high;
  if (has_low && has_high) {
    out.type = PredicateType::kRange;
    out.low = std::min(a.low, b.low);
    out.high = std::max(a.high, b.high);
  } else if (has_low) {
    out.type = PredicateType::kGreaterThan;
    out.low = std::min(a.low, b.low);
  } else if (has_high) {
    out.type = PredicateType::kLessThan;
    out.high = std::max(a.high, b.high);
  } else {
    return std::nullopt;  // unconstrained in both directions
  }
  return out;
}

std::optional<Predicate> MergeCategorical(const Predicate& a,
                                          const Predicate& b) {
  Predicate out;
  out.attribute = a.attribute;
  out.type = PredicateType::kInSet;
  for (const std::string& c : a.categories) {
    if (std::find(b.categories.begin(), b.categories.end(), c) !=
        b.categories.end()) {
      out.categories.push_back(c);
    }
  }
  if (out.categories.empty()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<Predicate> MergePredicates(const Predicate& a,
                                         const Predicate& b) {
  if (a.attribute != b.attribute) return std::nullopt;
  if (a.is_numeric() != b.is_numeric()) return std::nullopt;
  return a.is_numeric() ? MergeNumeric(a, b) : MergeCategorical(a, b);
}

common::Result<CausalModel> MergeCausalModels(const CausalModel& a,
                                              const CausalModel& b) {
  if (a.cause != b.cause) {
    return common::Status::InvalidArgument(
        "cannot merge causal models with different causes: '" + a.cause +
        "' vs '" + b.cause + "'");
  }
  CausalModel merged;
  merged.cause = a.cause;
  merged.num_sources = a.num_sources + b.num_sources;
  merged.suggested_action =
      !b.suggested_action.empty() ? b.suggested_action : a.suggested_action;
  for (const Predicate& pa : a.predicates) {
    for (const Predicate& pb : b.predicates) {
      if (pa.attribute != pb.attribute) continue;
      std::optional<Predicate> m = MergePredicates(pa, pb);
      if (m.has_value()) merged.predicates.push_back(std::move(*m));
      break;  // at most one predicate per attribute per model
    }
  }
  return merged;
}

}  // namespace dbsherlock::core
