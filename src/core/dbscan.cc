#include "core/dbscan.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/simd/simd.h"

namespace dbsherlock::core {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

std::vector<size_t> Neighbors(const std::vector<std::vector<double>>& points,
                              size_t p, double eps_sq) {
  std::vector<size_t> out;
  for (size_t q = 0; q < points.size(); ++q) {
    if (q != p && SquaredDistance(points[p], points[q]) <= eps_sq) {
      out.push_back(q);
    }
  }
  return out;
}

}  // namespace

std::vector<size_t> DbscanResult::ClusterSizes() const {
  std::vector<size_t> sizes(static_cast<size_t>(num_clusters), 0);
  for (int c : cluster_of) {
    if (c >= 0) ++sizes[static_cast<size_t>(c)];
  }
  return sizes;
}

DbscanResult Dbscan(const std::vector<std::vector<double>>& points,
                    double eps, int min_pts) {
  DbscanResult result;
  const size_t n = points.size();
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  result.cluster_of.assign(n, kUnvisited);
  double eps_sq = eps * eps;
  int cluster = 0;

  for (size_t p = 0; p < n; ++p) {
    if (result.cluster_of[p] != kUnvisited) continue;
    std::vector<size_t> seeds = Neighbors(points, p, eps_sq);
    // A core point has at least min_pts points in its eps-ball, itself
    // included.
    if (static_cast<int>(seeds.size()) + 1 < min_pts) {
      result.cluster_of[p] = kNoise;
      continue;
    }
    result.cluster_of[p] = cluster;
    std::deque<size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      size_t q = queue.front();
      queue.pop_front();
      if (result.cluster_of[q] == kNoise) {
        result.cluster_of[q] = cluster;  // border point
      }
      if (result.cluster_of[q] != kUnvisited) continue;
      result.cluster_of[q] = cluster;
      std::vector<size_t> q_neighbors = Neighbors(points, q, eps_sq);
      if (static_cast<int>(q_neighbors.size()) + 1 >= min_pts) {
        for (size_t r : q_neighbors) queue.push_back(r);
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  return result;
}

std::vector<double> KDistances(const std::vector<std::vector<double>>& points,
                               int k) {
  const size_t n = points.size();
  std::vector<double> out(n, 0.0);
  if (k <= 0) return out;
  for (size_t p = 0; p < n; ++p) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (size_t q = 0; q < n; ++q) {
      if (q != p) dists.push_back(SquaredDistance(points[p], points[q]));
    }
    if (dists.empty()) continue;
    size_t rank = std::min<size_t>(static_cast<size_t>(k) - 1,
                                   dists.size() - 1);
    std::nth_element(dists.begin(), dists.begin() + rank, dists.end());
    out[p] = std::sqrt(dists[rank]);
  }
  return out;
}

namespace {

/// Batch neighbor query: one kernel sweep fills `dist_sq` with point p's
/// squared distances to every point, then the eps-ball is read off the
/// buffer (self excluded by index, exactly like the row-major form).
std::vector<size_t> NeighborsColumns(const PointColumns& points, size_t p,
                                     double eps_sq,
                                     std::vector<double>* dist_sq) {
  common::simd::SquaredDistancesToAll(points.columns.data(), points.dims(),
                                      points.num_points, p, dist_sq->data());
  std::vector<size_t> out;
  for (size_t q = 0; q < points.num_points; ++q) {
    if (q != p && (*dist_sq)[q] <= eps_sq) out.push_back(q);
  }
  return out;
}

}  // namespace

DbscanResult Dbscan(const PointColumns& points, double eps, int min_pts) {
  DbscanResult result;
  const size_t n = points.num_points;
  constexpr int kUnvisited = -2;
  constexpr int kNoise = -1;
  result.cluster_of.assign(n, kUnvisited);
  double eps_sq = eps * eps;
  int cluster = 0;
  std::vector<double> dist_sq(n, 0.0);

  for (size_t p = 0; p < n; ++p) {
    if (result.cluster_of[p] != kUnvisited) continue;
    std::vector<size_t> seeds = NeighborsColumns(points, p, eps_sq, &dist_sq);
    if (static_cast<int>(seeds.size()) + 1 < min_pts) {
      result.cluster_of[p] = kNoise;
      continue;
    }
    result.cluster_of[p] = cluster;
    std::deque<size_t> queue(seeds.begin(), seeds.end());
    while (!queue.empty()) {
      size_t q = queue.front();
      queue.pop_front();
      if (result.cluster_of[q] == kNoise) {
        result.cluster_of[q] = cluster;  // border point
      }
      if (result.cluster_of[q] != kUnvisited) continue;
      result.cluster_of[q] = cluster;
      std::vector<size_t> q_neighbors =
          NeighborsColumns(points, q, eps_sq, &dist_sq);
      if (static_cast<int>(q_neighbors.size()) + 1 >= min_pts) {
        for (size_t r : q_neighbors) queue.push_back(r);
      }
    }
    ++cluster;
  }
  result.num_clusters = cluster;
  return result;
}

std::vector<double> KDistances(const PointColumns& points, int k) {
  const size_t n = points.num_points;
  std::vector<double> out(n, 0.0);
  if (k <= 0 || n == 0) return out;
  std::vector<double> dist_sq(n, 0.0);
  std::vector<double> dists;
  for (size_t p = 0; p < n; ++p) {
    common::simd::SquaredDistancesToAll(points.columns.data(), points.dims(),
                                        n, p, dist_sq.data());
    dists.clear();
    dists.reserve(n - 1);
    // Self is excluded by index (its computed distance is exactly 0, but
    // dropping it by value would also drop genuine duplicate points and
    // shift the k-dist rank).
    for (size_t q = 0; q < n; ++q) {
      if (q != p) dists.push_back(dist_sq[q]);
    }
    if (dists.empty()) continue;
    size_t rank = std::min<size_t>(static_cast<size_t>(k) - 1,
                                   dists.size() - 1);
    std::nth_element(dists.begin(), dists.begin() + rank, dists.end());
    out[p] = std::sqrt(dists[rank]);
  }
  return out;
}

}  // namespace dbsherlock::core
