#include "core/column_spans.h"

#include "common/metrics.h"

namespace dbsherlock::core {

std::vector<RowRun> ContiguousRuns(const std::vector<size_t>& rows) {
  std::vector<RowRun> runs;
  size_t i = 0;
  while (i < rows.size()) {
    size_t j = i + 1;
    while (j < rows.size() && rows[j] == rows[j - 1] + 1) ++j;
    runs.push_back(RowRun{rows[i], rows[j - 1] + 1});
    i = j;
  }
  return runs;
}

DiagnosisRuns BuildDiagnosisRuns(const tsdata::LabeledRows& rows) {
  static common::Counter* built = common::MetricsRegistry::Global().GetCounter(
      "column_spans.runs_built");
  built->Increment();
  DiagnosisRuns runs;
  runs.abnormal = ContiguousRuns(rows.abnormal);
  runs.normal = ContiguousRuns(rows.normal);
  runs.abnormal_rows = rows.abnormal.size();
  runs.normal_rows = rows.normal.size();
  return runs;
}

void NoteDiagnosisRunsReused() {
  static common::Counter* reused =
      common::MetricsRegistry::Global().GetCounter(
          "column_spans.runs_reused");
  reused->Increment();
}

}  // namespace dbsherlock::core
