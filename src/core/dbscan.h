#ifndef DBSHERLOCK_CORE_DBSCAN_H_
#define DBSHERLOCK_CORE_DBSCAN_H_

#include <cstddef>
#include <vector>

namespace dbsherlock::core {

/// Result of a DBSCAN run: cluster id per point (-1 for noise) and the
/// number of clusters found.
struct DbscanResult {
  std::vector<int> cluster_of;  // -1 = noise
  int num_clusters = 0;

  /// Sizes of each cluster, indexed by cluster id.
  std::vector<size_t> ClusterSizes() const;
};

/// Density-based clustering (Ester et al., KDD'96), Euclidean metric,
/// O(n^2) neighbor search — ample for the per-dataset row counts DBSherlock
/// handles. `points` is row-major: points[i] is the i-th point; all points
/// must share the same dimension.
DbscanResult Dbscan(const std::vector<std::vector<double>>& points,
                    double eps, int min_pts);

/// Distance of each point to its k-th nearest *other* neighbor — the
/// k-dist list the paper uses to pick epsilon (eps = max(Lk) / 4).
std::vector<double> KDistances(const std::vector<std::vector<double>>& points,
                               int k);

/// Dimension-major view of a point set: columns[k][q] is coordinate k of
/// point q, each column `num_points` long. This is the layout the anomaly
/// detector already holds its selected attributes in, and the layout the
/// dispatched SquaredDistancesToAll kernel streams — no per-point gather.
struct PointColumns {
  std::vector<const double*> columns;
  size_t num_points = 0;

  size_t dims() const { return columns.size(); }
};

/// Batch forms over the dimension-major layout: one kernel sweep computes
/// a query point's distances to all points. Same arithmetic per point pair
/// (coordinates accumulate in dimension order) as the row-major forms, so
/// clusterings are identical.
DbscanResult Dbscan(const PointColumns& points, double eps, int min_pts);
std::vector<double> KDistances(const PointColumns& points, int k);

}  // namespace dbsherlock::core

#endif  // DBSHERLOCK_CORE_DBSCAN_H_
