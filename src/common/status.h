#ifndef DBSHERLOCK_COMMON_STATUS_H_
#define DBSHERLOCK_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dbsherlock::common {

/// Error categories used across the library. Kept deliberately small; the
/// human-readable message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kDeadlineExceeded,
  kResourceExhausted,
  kInternal,
};

/// Returns a short stable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled after the Status idiom used
/// by Arrow and RocksDB. The library does not use exceptions; every fallible
/// operation returns a Status (or a Result<T>, below).
///
/// Status is cheap to copy in the OK case (no allocation) and carries a
/// message string otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. On success holds a T; on failure holds the
/// error Status. Accessing the value of a failed Result aborts (assert), so
/// callers must check ok() first — mirroring arrow::Result usage.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define DBSHERLOCK_RETURN_NOT_OK(expr)                  \
  do {                                                  \
    ::dbsherlock::common::Status _st = (expr);          \
    if (!_st.ok()) return _st;                          \
  } while (false)

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_STATUS_H_
