#ifndef DBSHERLOCK_COMMON_STRINGS_H_
#define DBSHERLOCK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dbsherlock::common {

/// Splits `input` on `delim`, keeping empty fields. "a,,b" -> {"a","","b"}.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a double; rejects trailing garbage ("1.5x" fails).
Result<double> ParseDouble(std::string_view text);

/// Parses a signed 64-bit integer; rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view text);

/// Returns true if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_STRINGS_H_
