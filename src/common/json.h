#ifndef DBSHERLOCK_COMMON_JSON_H_
#define DBSHERLOCK_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dbsherlock::common {

/// A minimal JSON document model sufficient for persisting DBSherlock's
/// causal models and diagnosis sessions: null, bool, double, string,
/// array, object. Parsing is strict (RFC 8259 subset: no comments, no
/// trailing commas); serialization escapes control characters and emits
/// numbers with round-trip precision.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// std::map keeps object keys ordered, so serialization is canonical.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}  // NOLINT
  JsonValue(int n) : type_(Type::kNumber), number_(n) {}  // NOLINT
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o)  // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (asserts in debug builds, undefined reads otherwise — check type()).
  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const { return array_; }
  Array& as_array() { return array_; }
  const Object& as_object() const { return object_; }
  Object& as_object() { return object_; }

  /// Object member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience typed getters with error reporting, for deserializers.
  Result<double> GetNumber(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<const JsonValue*> GetArray(const std::string& key) const;

  /// Serializes to a compact JSON string ("indent" < 0) or pretty-prints
  /// with the given indent width.
  std::string Dump(int indent = -1) const;

  bool operator==(const JsonValue& other) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a JSON document. Fails with ParseError (including position info)
/// on malformed input or trailing garbage.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_JSON_H_
