#include "common/json.h"

#include <cmath>

#include "common/strings.h"

namespace dbsherlock::common {

namespace {

/// Recursive-descent parser over a text span with position tracking.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    DBSHERLOCK_RETURN_NOT_OK(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrFormat("%s (at byte %zu)", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(StrFormat("expected '%c'", c));
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out) {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Status status;
    switch (text_[pos_]) {
      case '{':
        status = ParseObject(out);
        break;
      case '[':
        status = ParseArray(out);
        break;
      case '"': {
        std::string s;
        status = ParseString(&s);
        if (status.ok()) *out = JsonValue(std::move(s));
        break;
      }
      case 't':
        status = ParseLiteral("true", JsonValue(true), out);
        break;
      case 'f':
        status = ParseLiteral("false", JsonValue(false), out);
        break;
      case 'n':
        status = ParseLiteral("null", JsonValue(), out);
        break;
      default:
        status = ParseNumber(out);
        break;
    }
    --depth_;
    return status;
  }

  Status ParseLiteral(const char* literal, JsonValue value, JsonValue* out) {
    size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      return Error("invalid literal");
    }
    pos_ += len;
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    auto parsed = ParseDouble(text_.substr(start, pos_ - start));
    if (!parsed.ok()) return Error("invalid number");
    *out = JsonValue(*parsed);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    DBSHERLOCK_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // passed through as two 3-byte sequences, which round-trips).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    DBSHERLOCK_RETURN_NOT_OK(Expect('['));
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue(std::move(items));
      return Status::OK();
    }
    for (;;) {
      JsonValue item;
      DBSHERLOCK_RETURN_NOT_OK(ParseValue(&item));
      items.push_back(std::move(item));
      SkipWhitespace();
      if (Consume(']')) break;
      DBSHERLOCK_RETURN_NOT_OK(Expect(','));
    }
    *out = JsonValue(std::move(items));
    return Status::OK();
  }

  Status ParseObject(JsonValue* out) {
    DBSHERLOCK_RETURN_NOT_OK(Expect('{'));
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue(std::move(members));
      return Status::OK();
    }
    for (;;) {
      SkipWhitespace();
      std::string key;
      DBSHERLOCK_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      DBSHERLOCK_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      DBSHERLOCK_RETURN_NOT_OK(ParseValue(&value));
      members[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume('}')) break;
      DBSHERLOCK_RETURN_NOT_OK(Expect(','));
    }
    *out = JsonValue(std::move(members));
    return Status::OK();
  }

  static constexpr int kMaxDepth = 128;
  const std::string& text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

void AppendEscaped(const std::string& s, std::string* out) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void AppendNumber(double n, std::string* out) {
  if (std::isfinite(n)) {
    // Integral values print without a fraction; others round-trip.
    if (n == std::floor(n) && std::fabs(n) < 1e15) {
      *out += StrFormat("%.0f", n);
    } else {
      *out += StrFormat("%.17g", n);
    }
  } else {
    *out += "null";  // JSON has no NaN/Inf
  }
}

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

Result<double> JsonValue::GetNumber(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) {
    return Status::ParseError("missing or non-numeric field: " + key);
  }
  return v->as_number();
}

Result<std::string> JsonValue::GetString(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::ParseError("missing or non-string field: " + key);
  }
  return v->as_string();
}

Result<const JsonValue*> JsonValue::GetArray(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing or non-array field: " + key);
  }
  return v;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    *out += '\n';
    out->append(static_cast<size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += indent < 0 ? "," : ",";
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) *out += ",";
        first = false;
        newline(depth + 1);
        AppendEscaped(key, out);
        *out += indent < 0 ? ":" : ": ";
        value.DumpTo(out, indent, depth + 1);
      }
      newline(depth);
      *out += '}';
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace dbsherlock::common
