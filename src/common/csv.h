#ifndef DBSHERLOCK_COMMON_CSV_H_
#define DBSHERLOCK_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dbsherlock::common {

/// A parsed CSV document: a header row plus data rows. Parsing supports
/// RFC-4180-style double-quoted fields with embedded delimiters, quotes
/// ("" escape) and newlines.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. When `has_header` is false, the first row goes into
/// `rows` and `header` is left empty. Fails if any row has a different
/// field count than the first row.
Result<CsvTable> ParseCsv(const std::string& text, bool has_header = true,
                          char delim = ',');

/// Reads and parses a CSV file.
Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header = true,
                             char delim = ',');

/// Serializes a table to CSV text, quoting fields when needed.
std::string WriteCsv(const CsvTable& table, char delim = ',');

/// Writes a table to a file.
Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char delim = ',');

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_CSV_H_
