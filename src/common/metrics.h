#ifndef DBSHERLOCK_COMMON_METRICS_H_
#define DBSHERLOCK_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"

namespace dbsherlock::common {

/// Process-wide metrics for the diagnosis pipeline: named monotonic
/// counters, gauges, and fixed-bucket latency histograms, exportable as a
/// JSON snapshot (CLI --metrics-out, run_benchmarks.sh --with-metrics).
/// Unlike the Tracer there is no off switch: every instrument is a relaxed
/// atomic, cheap enough to stay live permanently.
///
/// Naming convention (DESIGN.md §9): `subsystem.metric`, lowercase with
/// underscores; histograms of durations end in `_us`. Instruments are
/// created on first GetCounter/GetGauge/GetHistogram and live forever —
/// call sites cache the returned pointer (function-local static or
/// member), so steady-state updates never touch the registry lock.

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (window sizes, queue depths).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Atomic add (CAS loop: atomic<double>::fetch_add is not portable
  /// before GCC 10's full P0020 support, and this is never hot).
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for latency-like values. Bucket i counts values
/// v with upper_bounds[i-1] < v <= upper_bounds[i]; one extra overflow
/// bucket catches everything above the last bound. Bounds are fixed at
/// construction, so concurrent Record calls only touch atomics.
class LatencyHistogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit LatencyHistogram(std::vector<double> upper_bounds);

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// num_buckets() == upper_bounds().size() + 1 (the overflow bucket).
  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  const std::vector<double>& upper_bounds() const { return bounds_; }

  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> bucket_storage_;
  std::span<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket edges for `_us` histograms: decade steps from 10µs to
/// 10s, covering everything from one predicate check to a full diagnosis.
const std::vector<double>& DefaultLatencyBoundsUs();

class MetricsRegistry {
 public:
  /// The process-wide registry. Never destroyed, like Tracer::Global.
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument. The pointer is stable for the
  /// process lifetime. Requesting an existing name with a different
  /// instrument type returns nullptr rather than aliasing storage.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `upper_bounds` is only used on first creation (empty = the default
  /// `_us` bounds); later calls return the existing histogram as-is.
  LatencyHistogram* GetHistogram(const std::string& name,
                                 std::vector<double> upper_bounds = {});

  /// {"counters":{name:value}, "gauges":{name:value},
  ///  "histograms":{name:{count,sum,mean,buckets:[{le,count}...]}}}.
  JsonValue SnapshotJson() const;
  /// Flat `name value` lines, counters then gauges then histogram means.
  std::string SnapshotText() const;

  /// Zeroes every instrument (tests and benchmark harnesses; instruments
  /// stay registered and pointers stay valid).
  void ResetAll();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// RAII timer recording its scope's wall time, in microseconds, into a
/// histogram on destruction. Pass nullptr to make it inert.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHistogram* histogram);
  ~ScopedLatency();

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  LatencyHistogram* histogram_;
  double start_us_ = 0.0;
};

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_METRICS_H_
