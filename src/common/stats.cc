#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/simd/simd.h"

namespace dbsherlock::common {

namespace {

double EntropyOfCounts(const std::vector<uint64_t>& counts, uint64_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (uint64_t c : counts) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

}  // namespace

double Mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  // Dispatched kernel; NaN/Inf propagate exactly like a plain loop.
  return simd::SumSpan(xs.data(), xs.size()) /
         static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  double m = Mean(xs);
  return simd::SumSquaredDiff(xs.data(), xs.size(), m) /
         static_cast<double>(xs.size());
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> tmp(xs.begin(), xs.end());
  size_t mid = tmp.size() / 2;
  std::nth_element(tmp.begin(), tmp.begin() + mid, tmp.end());
  double hi = tmp[mid];
  if (tmp.size() % 2 == 1) return hi;
  double lo = *std::max_element(tmp.begin(), tmp.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> tmp(xs.begin(), xs.end());
  std::sort(tmp.begin(), tmp.end());
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(tmp.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, tmp.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return tmp[lo] * (1.0 - frac) + tmp[hi] * frac;
}

double Min(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double MinMaxNormalize(double value, double min, double max) {
  double range = max - min;
  if (range <= 0.0) return 0.0;
  return (value - min) / range;
}

std::vector<double> MinMaxNormalize(std::span<const double> xs) {
  std::vector<double> out(xs.size());
  if (xs.empty()) return out;
  double lo = Min(xs);
  double hi = Max(xs);
  for (size_t i = 0; i < xs.size(); ++i) {
    out[i] = MinMaxNormalize(xs[i], lo, hi);
  }
  return out;
}

std::vector<double> SlidingMedian(std::span<const double> xs, size_t w) {
  std::vector<double> out;
  if (w == 0 || xs.size() < w) return out;
  out.reserve(xs.size() - w + 1);
  // Windows here are short (the paper uses tau = 20), so re-computing the
  // median per window is fine: O(n * w log w) with tiny constants.
  for (size_t i = 0; i + w <= xs.size(); ++i) {
    out.push_back(Median(xs.subspan(i, w)));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {
  width_ = (hi_ - lo_) / static_cast<double>(counts_.size());
  if (width_ <= 0.0) width_ = 1.0;
}

size_t Histogram::BinOf(double value) const {
  if (value <= lo_) return 0;
  size_t bin = static_cast<size_t>((value - lo_) / width_);
  return std::min(bin, counts_.size() - 1);
}

void Histogram::Add(double value) {
  ++counts_[BinOf(value)];
  ++total_;
}

double Histogram::Entropy() const { return EntropyOfCounts(counts_, total_); }

JointHistogram::JointHistogram(double lo_x, double hi_x, size_t bins_x,
                               double lo_y, double hi_y, size_t bins_y)
    : lo_x_(lo_x),
      hi_x_(hi_x),
      lo_y_(lo_y),
      hi_y_(hi_y),
      bins_x_(bins_x == 0 ? 1 : bins_x),
      bins_y_(bins_y == 0 ? 1 : bins_y),
      counts_(bins_x_ * bins_y_, 0) {
  width_x_ = (hi_x_ - lo_x_) / static_cast<double>(bins_x_);
  if (width_x_ <= 0.0) width_x_ = 1.0;
  width_y_ = (hi_y_ - lo_y_) / static_cast<double>(bins_y_);
  if (width_y_ <= 0.0) width_y_ = 1.0;
}

size_t JointHistogram::BinX(double x) const {
  if (x <= lo_x_) return 0;
  return std::min(static_cast<size_t>((x - lo_x_) / width_x_), bins_x_ - 1);
}

size_t JointHistogram::BinY(double y) const {
  if (y <= lo_y_) return 0;
  return std::min(static_cast<size_t>((y - lo_y_) / width_y_), bins_y_ - 1);
}

void JointHistogram::Add(double x, double y) {
  ++counts_[BinX(x) * bins_y_ + BinY(y)];
  ++total_;
}

double JointHistogram::EntropyX() const {
  std::vector<uint64_t> marginal(bins_x_, 0);
  for (size_t i = 0; i < bins_x_; ++i) {
    for (size_t j = 0; j < bins_y_; ++j) marginal[i] += counts_[i * bins_y_ + j];
  }
  return EntropyOfCounts(marginal, total_);
}

double JointHistogram::EntropyY() const {
  std::vector<uint64_t> marginal(bins_y_, 0);
  for (size_t i = 0; i < bins_x_; ++i) {
    for (size_t j = 0; j < bins_y_; ++j) marginal[j] += counts_[i * bins_y_ + j];
  }
  return EntropyOfCounts(marginal, total_);
}

double JointHistogram::EntropyJoint() const {
  return EntropyOfCounts(counts_, total_);
}

double JointHistogram::MutualInformation() const {
  double mi = EntropyX() + EntropyY() - EntropyJoint();
  return mi < 0.0 ? 0.0 : mi;
}

double JointHistogram::IndependenceFactor() const {
  double hx = EntropyX();
  double hy = EntropyY();
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  double mi = MutualInformation();
  double kappa = (mi * mi) / (hx * hy);
  return std::clamp(kappa, 0.0, 1.0);
}

double IndependenceFactor(std::span<const double> xs,
                          std::span<const double> ys, size_t bins) {
  if (xs.size() != ys.size() || xs.empty()) return 0.0;
  JointHistogram jh(Min(xs), Max(xs), bins, Min(ys), Max(ys), bins);
  for (size_t i = 0; i < xs.size(); ++i) jh.Add(xs[i], ys[i]);
  return jh.IndependenceFactor();
}

void BinaryClassificationCounts::Add(bool predicted, bool actual) {
  if (predicted && actual) {
    ++true_positives;
  } else if (predicted && !actual) {
    ++false_positives;
  } else if (!predicted && actual) {
    ++false_negatives;
  } else {
    ++true_negatives;
  }
}

double BinaryClassificationCounts::Precision() const {
  uint64_t denom = true_positives + false_positives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryClassificationCounts::Recall() const {
  uint64_t denom = true_positives + false_negatives;
  return denom == 0 ? 0.0
                    : static_cast<double>(true_positives) /
                          static_cast<double>(denom);
}

double BinaryClassificationCounts::F1() const {
  double p = Precision();
  double r = Recall();
  return (p + r) <= 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

}  // namespace dbsherlock::common
