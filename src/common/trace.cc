#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/strings.h"

namespace dbsherlock::common {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point TracerEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

/// Per-thread state for ScopedSpan: a dense thread id (Chrome's viewer
/// groups rows by tid, so small ids beat hashed std::thread::id values)
/// and the current nesting depth.
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local uint32_t tls_span_depth = 0;

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: see header
  return *tracer;
}

double Tracer::NowMicros() {
  return std::chrono::duration<double, std::micro>(Clock::now() -
                                                   TracerEpoch())
      .count();
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  recorded_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void Tracer::Record(const char* label, uint32_t depth, double start_us,
                    double duration_us) {
  if (!enabled()) return;
  TraceEvent event;
  event.label = label;
  event.thread_id = ThisThreadId();
  event.depth = depth;
  event.start_us = start_us;
  event.duration_us = duration_us;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;  // Record before any Enable
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

size_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

size_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_ - ring_.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  JsonValue::Array trace_events;
  trace_events.reserve(events.size());
  for (const TraceEvent& e : events) {
    JsonValue::Object obj;
    obj["name"] = JsonValue(std::string(e.label));
    obj["ph"] = JsonValue("X");  // complete event: ts + dur
    obj["ts"] = JsonValue(e.start_us);
    obj["dur"] = JsonValue(e.duration_us);
    obj["pid"] = JsonValue(0);
    obj["tid"] = JsonValue(static_cast<double>(e.thread_id));
    JsonValue::Object args;
    args["depth"] = JsonValue(static_cast<double>(e.depth));
    obj["args"] = JsonValue(std::move(args));
    trace_events.push_back(JsonValue(std::move(obj)));
  }
  JsonValue::Object root;
  root["traceEvents"] = JsonValue(std::move(trace_events));
  root["displayTimeUnit"] = JsonValue("ms");
  return JsonValue(std::move(root)).Dump(1);
}

namespace {

struct LabelStats {
  size_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;
};

std::map<std::string, LabelStats> AggregateByLabel(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, LabelStats> by_label;
  for (const TraceEvent& e : events) {
    LabelStats& s = by_label[e.label];
    ++s.count;
    s.total_us += e.duration_us;
    s.max_us = std::max(s.max_us, e.duration_us);
  }
  return by_label;
}

}  // namespace

std::string Tracer::SummaryText() const {
  std::map<std::string, LabelStats> by_label = AggregateByLabel(Snapshot());
  std::vector<std::pair<std::string, LabelStats>> rows(by_label.begin(),
                                                       by_label.end());
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.total_us > b.second.total_us;
                   });
  std::string out = StrFormat("%-42s %10s %12s %12s %12s\n", "span", "count",
                              "total_ms", "mean_us", "max_us");
  for (const auto& [label, s] : rows) {
    out += StrFormat("%-42s %10zu %12.3f %12.1f %12.1f\n", label.c_str(),
                     s.count, s.total_us / 1000.0,
                     s.total_us / static_cast<double>(s.count), s.max_us);
  }
  return out;
}

JsonValue Tracer::SummaryJson() const {
  std::map<std::string, LabelStats> by_label = AggregateByLabel(Snapshot());
  JsonValue::Object root;
  for (const auto& [label, s] : by_label) {
    JsonValue::Object row;
    row["count"] = JsonValue(static_cast<double>(s.count));
    row["total_us"] = JsonValue(s.total_us);
    row["mean_us"] = JsonValue(s.total_us / static_cast<double>(s.count));
    row["max_us"] = JsonValue(s.max_us);
    root[label] = JsonValue(std::move(row));
  }
  return JsonValue(std::move(root));
}

ScopedSpan::ScopedSpan(const char* label) : label_(nullptr) {
  if (!Tracer::Global().enabled()) return;  // inert: no clock read, no alloc
  label_ = label;
  depth_ = tls_span_depth++;
  start_us_ = Tracer::NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (label_ == nullptr) return;
  double end_us = Tracer::NowMicros();
  --tls_span_depth;
  Tracer::Global().Record(label_, depth_, start_us_, end_us - start_us_);
}

}  // namespace dbsherlock::common
