#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace dbsherlock::common {

namespace {

/// Incremental RFC-4180 field splitter over the whole document so quoted
/// newlines are handled correctly.
Status SplitRecords(const std::string& text, char delim,
                    std::vector<std::vector<std::string>>* records) {
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
  };
  auto end_row = [&]() {
    end_field();
    records->push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      row_has_content = true;
    } else if (c == delim) {
      end_field();
      row_has_content = true;
    } else if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      // CRLF line ending: the '\r' is part of the terminator, not data.
      // (A '\r' inside a quoted field never reaches this branch.)
      continue;
    } else if (c == '\n') {
      if (row_has_content || !field.empty() || !current.empty()) end_row();
    } else {
      field += c;
      row_has_content = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted CSV field");
  if (row_has_content || !field.empty() || !current.empty()) end_row();
  return Status::OK();
}

bool NeedsQuoting(const std::string& field, char delim) {
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& field, char delim, std::string* out) {
  if (!NeedsQuoting(field, delim)) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

}  // namespace

Result<CsvTable> ParseCsv(const std::string& text, bool has_header,
                          char delim) {
  std::vector<std::vector<std::string>> records;
  DBSHERLOCK_RETURN_NOT_OK(SplitRecords(text, delim, &records));
  CsvTable table;
  if (records.empty()) return table;

  size_t width = records.front().size();
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].size() != width) {
      return Status::ParseError(StrFormat(
          "CSV row %zu has %zu fields, expected %zu", i, records[i].size(),
          width));
    }
  }

  size_t first_data = 0;
  if (has_header) {
    table.header = std::move(records.front());
    first_data = 1;
  }
  for (size_t i = first_data; i < records.size(); ++i) {
    table.rows.push_back(std::move(records[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path, bool has_header,
                             char delim) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), has_header, delim);
}

std::string WriteCsv(const CsvTable& table, char delim) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    // A row whose only field is empty must be quoted: a bare blank line
    // would be indistinguishable from no row at all.
    if (row.size() == 1 && row[0].empty()) {
      out += "\"\"\n";
      return;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += delim;
      AppendField(row[i], delim, &out);
    }
    out += '\n';
  };
  if (!table.header.empty()) write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

Status WriteCsvFile(const CsvTable& table, const std::string& path,
                    char delim) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open file for write: " + path);
  out << WriteCsv(table, delim);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace dbsherlock::common
