#ifndef DBSHERLOCK_COMMON_TRACE_H_
#define DBSHERLOCK_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace dbsherlock::common {

/// Low-overhead scoped-span tracing for the diagnosis pipeline. The
/// process-wide Tracer is OFF by default: a span taken while tracing is
/// disabled costs one relaxed atomic load and allocates nothing, so the
/// TRACE_SPAN instrumentation can stay compiled into the hot path
/// permanently (bench_trace_overhead keeps that claim honest). When
/// enabled, finished spans land in a fixed-capacity ring buffer — tracing
/// a long run overwrites the oldest spans rather than growing without
/// bound — and can be exported as Chrome trace-event JSON (load the file
/// at chrome://tracing or https://ui.perfetto.dev) or aggregated into a
/// flat per-label text summary.
///
/// Span taxonomy (DESIGN.md §9): labels are `subsystem.stage`, e.g.
/// `explainer.predicate_generation` or `detect.dbscan`; nesting depth is
/// tracked per thread and exported so a flame view reconstructs the call
/// structure.

/// One finished span. Timestamps are microseconds since the tracer
/// epoch (process start), durations in microseconds.
struct TraceEvent {
  const char* label = "";  // must point at a string literal (see ScopedSpan)
  uint32_t thread_id = 0;  // small dense id, not the OS tid
  uint32_t depth = 0;      // nesting depth on its thread, 0 = outermost
  double start_us = 0.0;
  double duration_us = 0.0;
};

class Tracer {
 public:
  /// The process-wide tracer used by TRACE_SPAN. Never destroyed (leaked
  /// like ThreadPool::Global) so spans on late-exiting threads stay safe.
  static Tracer& Global();

  /// Microseconds since the tracer epoch on the steady clock.
  static double NowMicros();

  /// Starts recording into a ring of `capacity` spans. Re-enabling with a
  /// different capacity resizes and clears the ring.
  void Enable(size_t capacity = 1 << 16);
  /// Stops recording; the buffered spans remain exportable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all buffered spans (keeps the enabled state and capacity).
  void Clear();

  /// Appends one finished span (called by ScopedSpan; dropped when
  /// disabled). `label` must outlive the tracer — pass a string literal.
  void Record(const char* label, uint32_t depth, double start_us,
              double duration_us);

  /// Spans accepted since the last Clear/Enable (including any that have
  /// since been overwritten), and how many were overwritten.
  size_t events_recorded() const;
  size_t events_dropped() const;

  /// The buffered spans, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
  std::string ExportChromeJson() const;

  /// Per-label aggregate (count, total, mean, max), descending by total
  /// time — the quick "where did Diagnose spend its time" view.
  std::string SummaryText() const;
  /// The same aggregate as JSON (label -> {count,total_us,mean_us,max_us}),
  /// for embedding into benchmark result files.
  JsonValue SummaryJson() const;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_ = 0;
  size_t head_ = 0;      // next slot to write
  size_t recorded_ = 0;  // total accepted since Enable/Clear
};

/// RAII span: records [construction, destruction) onto the global tracer
/// under `label`. `label` must be a string literal (it is stored by
/// pointer; the disabled path must not allocate). When tracing is disabled
/// at construction the span is inert.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* label);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* label_;  // nullptr when inert
  double start_us_ = 0.0;
  uint32_t depth_ = 0;
};

#define DBSHERLOCK_TRACE_CONCAT_INNER(a, b) a##b
#define DBSHERLOCK_TRACE_CONCAT(a, b) DBSHERLOCK_TRACE_CONCAT_INNER(a, b)

/// Traces the rest of the enclosing scope as one span. Usage:
///   TRACE_SPAN("explainer.predicate_generation");
#define TRACE_SPAN(label)                      \
  ::dbsherlock::common::ScopedSpan DBSHERLOCK_TRACE_CONCAT( \
      dbsherlock_trace_span_, __LINE__)(label)

}  // namespace dbsherlock::common

#endif  // DBSHERLOCK_COMMON_TRACE_H_
