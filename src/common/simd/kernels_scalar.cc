// Scalar kernel implementations — the exact-parity reference every SIMD
// path must match bit-for-bit. Reductions follow the 8-lane discipline
// documented in simd.h; element-wise kernels apply the same IEEE ops per
// element as the vector code.

#include <cmath>
#include <limits>

#include "common/simd/kernel_table.h"

namespace dbsherlock::common::simd::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline double ReduceSum8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

inline double ReduceMin8(const double* m) {
  return MinPd(MinPd(MinPd(m[0], m[1]), MinPd(m[2], m[3])),
               MinPd(MinPd(m[4], m[5]), MinPd(m[6], m[7])));
}

inline double ReduceMax8(const double* m) {
  return MaxPd(MaxPd(MaxPd(m[0], m[1]), MaxPd(m[2], m[3])),
               MaxPd(MaxPd(m[4], m[5]), MaxPd(m[6], m[7])));
}

SpanProfile ProfileSpanScalar(const double* x, size_t n) {
  double sums[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  double mins[8] = {kInf, kInf, kInf, kInf, kInf, kInf, kInf, kInf};
  double maxs[8] = {-kInf, -kInf, -kInf, -kInf, -kInf, -kInf, -kInf, -kInf};
  uint64_t finite = 0;
  for (size_t i = 0; i < n; ++i) {
    double v = x[i];
    bool f = std::isfinite(v);
    size_t lane = i & 7;
    sums[lane] += f ? v : 0.0;
    mins[lane] = MinPd(mins[lane], f ? v : kInf);
    maxs[lane] = MaxPd(maxs[lane], f ? v : -kInf);
    finite += f ? 1 : 0;
  }
  SpanProfile out;
  out.sum = ReduceSum8(sums);
  out.finite_count = finite;
  out.non_finite_count = n - finite;
  if (finite > 0) {
    out.min = ReduceMin8(mins);
    out.max = ReduceMax8(maxs);
  }
  return out;
}

double SumSpanScalar(const double* x, size_t n) {
  double sums[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) sums[i & 7] += x[i];
  return ReduceSum8(sums);
}

double SumSquaredDiffScalar(const double* x, size_t n, double center) {
  double sums[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    double d = x[i] - center;
    sums[i & 7] += d * d;
  }
  return ReduceSum8(sums);
}

uint64_t CountMatchesScalar(const double* x, size_t n, CmpKind kind,
                            double lo, double hi) {
  uint64_t count = 0;
  switch (kind) {
    case CmpKind::kLess:
      for (size_t i = 0; i < n; ++i) count += x[i] < hi ? 1 : 0;
      break;
    case CmpKind::kGreaterEq:
      for (size_t i = 0; i < n; ++i) count += x[i] >= lo ? 1 : 0;
      break;
    case CmpKind::kInRange:
      for (size_t i = 0; i < n; ++i) {
        count += (x[i] >= lo && x[i] < hi) ? 1 : 0;
      }
      break;
  }
  return count;
}

void PartitionIndicesScalar(const double* x, size_t n, double min_value,
                            double width, uint32_t num_partitions,
                            uint32_t* out) {
  const double last = static_cast<double>(num_partitions - 1);
  for (size_t i = 0; i < n; ++i) {
    double v = x[i];
    if (!std::isfinite(v)) {
      out[i] = kNoPartition;
    } else if (v <= min_value) {
      out[i] = 0;
    } else {
      double q = (v - min_value) / width;
      out[i] = static_cast<uint32_t>(MinPd(q, last));
    }
  }
}

void NormalizeSpanScalar(const double* x, size_t n, double lo, double hi,
                         double fill, double* out) {
  const double range = hi - lo;
  for (size_t i = 0; i < n; ++i) {
    double v = x[i];
    out[i] = std::isfinite(v) ? (v - lo) / range : fill;
  }
}

void SquaredDistancesToAllScalar(const double* const* cols, size_t num_cols,
                                 size_t n, size_t p, double* out) {
  for (size_t q = 0; q < n; ++q) {
    double acc = 0.0;
    for (size_t k = 0; k < num_cols; ++k) {
      double d = cols[k][q] - cols[k][p];
      acc += d * d;
    }
    out[q] = acc;
  }
}

}  // namespace

const KernelTable& ScalarTable() {
  static const KernelTable table = {
      ProfileSpanScalar,       SumSpanScalar,
      SumSquaredDiffScalar,    CountMatchesScalar,
      PartitionIndicesScalar,  NormalizeSpanScalar,
      SquaredDistancesToAllScalar,
  };
  return table;
}

}  // namespace dbsherlock::common::simd::detail
