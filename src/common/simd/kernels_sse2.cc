// SSE2 kernel implementations. Reductions process eight elements per
// iteration across four XMM registers, so the logical 8-lane discipline
// (simd.h) is the natural register layout: lanes (2k, 2k+1) live in
// register k. Bit-identical to the scalar reference by construction.
//
// On non-x86 builds this TU degrades to forwarding the scalar table; the
// dispatcher never selects it there (Sse2KernelsCompiled() == false).

#include "common/simd/kernel_table.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <bit>
#include <cmath>
#include <limits>

namespace dbsherlock::common::simd::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m128d AbsPd(__m128d v) {
  const __m128d abs_mask =
      _mm_castsi128_pd(_mm_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  return _mm_and_pd(v, abs_mask);
}

/// All-ones where the lane is finite (|v| < inf; NaN compares false).
inline __m128d FiniteMask(__m128d v) {
  return _mm_cmplt_pd(AbsPd(v), _mm_set1_pd(kInf));
}

/// mask ? a : b, with mask all-ones/all-zeros per lane.
inline __m128d BlendPd(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

inline double ReduceSum8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

inline double ReduceMin8(const double* m) {
  return MinPd(MinPd(MinPd(m[0], m[1]), MinPd(m[2], m[3])),
               MinPd(MinPd(m[4], m[5]), MinPd(m[6], m[7])));
}

inline double ReduceMax8(const double* m) {
  return MaxPd(MaxPd(MaxPd(m[0], m[1]), MaxPd(m[2], m[3])),
               MaxPd(MaxPd(m[4], m[5]), MaxPd(m[6], m[7])));
}

SpanProfile ProfileSpanSse2(const double* x, size_t n) {
  const __m128d inf = _mm_set1_pd(kInf);
  const __m128d ninf = _mm_set1_pd(-kInf);
  __m128d sum[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  __m128d mn[4] = {inf, inf, inf, inf};
  __m128d mx[4] = {ninf, ninf, ninf, ninf};
  uint64_t finite = 0;
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    unsigned bits = 0;
    for (size_t r = 0; r < 4; ++r) {
      __m128d v = _mm_loadu_pd(x + i + 2 * r);
      __m128d f = FiniteMask(v);
      sum[r] = _mm_add_pd(sum[r], _mm_and_pd(f, v));
      mn[r] = _mm_min_pd(mn[r], BlendPd(f, v, inf));
      mx[r] = _mm_max_pd(mx[r], BlendPd(f, v, ninf));
      bits |= static_cast<unsigned>(_mm_movemask_pd(f)) << (2 * r);
    }
    finite += static_cast<uint64_t>(std::popcount(bits));
  }
  double sums[8], mins[8], maxs[8];
  for (size_t r = 0; r < 4; ++r) {
    _mm_storeu_pd(sums + 2 * r, sum[r]);
    _mm_storeu_pd(mins + 2 * r, mn[r]);
    _mm_storeu_pd(maxs + 2 * r, mx[r]);
  }
  for (size_t i = n8; i < n; ++i) {
    double v = x[i];
    bool f = std::isfinite(v);
    size_t lane = i & 7;
    sums[lane] += f ? v : 0.0;
    mins[lane] = MinPd(mins[lane], f ? v : kInf);
    maxs[lane] = MaxPd(maxs[lane], f ? v : -kInf);
    finite += f ? 1 : 0;
  }
  SpanProfile out;
  out.sum = ReduceSum8(sums);
  out.finite_count = finite;
  out.non_finite_count = n - finite;
  if (finite > 0) {
    out.min = ReduceMin8(mins);
    out.max = ReduceMax8(maxs);
  }
  return out;
}

double SumSpanSse2(const double* x, size_t n) {
  __m128d sum[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t r = 0; r < 4; ++r) {
      sum[r] = _mm_add_pd(sum[r], _mm_loadu_pd(x + i + 2 * r));
    }
  }
  double sums[8];
  for (size_t r = 0; r < 4; ++r) _mm_storeu_pd(sums + 2 * r, sum[r]);
  for (size_t i = n8; i < n; ++i) sums[i & 7] += x[i];
  return ReduceSum8(sums);
}

double SumSquaredDiffSse2(const double* x, size_t n, double center) {
  const __m128d c = _mm_set1_pd(center);
  __m128d sum[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                    _mm_setzero_pd()};
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t r = 0; r < 4; ++r) {
      __m128d d = _mm_sub_pd(_mm_loadu_pd(x + i + 2 * r), c);
      sum[r] = _mm_add_pd(sum[r], _mm_mul_pd(d, d));
    }
  }
  double sums[8];
  for (size_t r = 0; r < 4; ++r) _mm_storeu_pd(sums + 2 * r, sum[r]);
  for (size_t i = n8; i < n; ++i) {
    double d = x[i] - center;
    sums[i & 7] += d * d;
  }
  return ReduceSum8(sums);
}

uint64_t CountMatchesSse2(const double* x, size_t n, CmpKind kind, double lo,
                          double hi) {
  const __m128d lov = _mm_set1_pd(lo);
  const __m128d hiv = _mm_set1_pd(hi);
  auto mask_of = [&](__m128d v) -> __m128d {
    switch (kind) {
      case CmpKind::kLess:
        return _mm_cmplt_pd(v, hiv);
      case CmpKind::kGreaterEq:
        return _mm_cmpge_pd(v, lov);
      case CmpKind::kInRange:
        return _mm_and_pd(_mm_cmpge_pd(v, lov), _mm_cmplt_pd(v, hiv));
    }
    return _mm_setzero_pd();
  };
  uint64_t count = 0;
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    unsigned bits =
        static_cast<unsigned>(_mm_movemask_pd(mask_of(_mm_loadu_pd(x + i)))) |
        (static_cast<unsigned>(
             _mm_movemask_pd(mask_of(_mm_loadu_pd(x + i + 2))))
         << 2);
    count += static_cast<uint64_t>(std::popcount(bits));
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    switch (kind) {
      case CmpKind::kLess:
        count += v < hi ? 1 : 0;
        break;
      case CmpKind::kGreaterEq:
        count += v >= lo ? 1 : 0;
        break;
      case CmpKind::kInRange:
        count += (v >= lo && v < hi) ? 1 : 0;
        break;
    }
  }
  return count;
}

/// Narrows two 64-bit-lane masks into one 4x32-bit-lane mask
/// [m01.lane0, m01.lane1, m23.lane0, m23.lane1].
inline __m128i NarrowMasks(__m128d m01, __m128d m23) {
  __m128i a = _mm_shuffle_epi32(_mm_castpd_si128(m01), _MM_SHUFFLE(0, 0, 2, 0));
  __m128i b = _mm_shuffle_epi32(_mm_castpd_si128(m23), _MM_SHUFFLE(0, 0, 2, 0));
  return _mm_unpacklo_epi64(a, b);
}

void PartitionIndicesSse2(const double* x, size_t n, double min_value,
                          double width, uint32_t num_partitions,
                          uint32_t* out) {
  const double last = static_cast<double>(num_partitions - 1);
  const __m128d minv = _mm_set1_pd(min_value);
  const __m128d widthv = _mm_set1_pd(width);
  const __m128d lastv = _mm_set1_pd(last);
  const __m128i ones = _mm_set1_epi32(-1);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m128d v01 = _mm_loadu_pd(x + i);
    __m128d v23 = _mm_loadu_pd(x + i + 2);
    __m128d f01 = FiniteMask(v01);
    __m128d f23 = FiniteMask(v23);
    __m128d le01 = _mm_cmple_pd(v01, minv);
    __m128d le23 = _mm_cmple_pd(v23, minv);
    // (v - min) / width, clamped to the last partition. MINPD returns the
    // second operand on NaN input, so hostile lanes clamp instead of
    // poisoning the conversion; the finite mask overrides them below.
    __m128d q01 =
        _mm_min_pd(_mm_div_pd(_mm_sub_pd(v01, minv), widthv), lastv);
    __m128d q23 =
        _mm_min_pd(_mm_div_pd(_mm_sub_pd(v23, minv), widthv), lastv);
    __m128i idx =
        _mm_unpacklo_epi64(_mm_cvttpd_epi32(q01), _mm_cvttpd_epi32(q23));
    __m128i le32 = NarrowMasks(le01, le23);
    __m128i f32 = NarrowMasks(f01, f23);
    idx = _mm_andnot_si128(le32, idx);                 // v <= min -> 0
    idx = _mm_or_si128(_mm_and_si128(f32, idx),        // finite -> idx
                       _mm_andnot_si128(f32, ones));   // else kNoPartition
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    if (!std::isfinite(v)) {
      out[i] = kNoPartition;
    } else if (v <= min_value) {
      out[i] = 0;
    } else {
      out[i] = static_cast<uint32_t>(MinPd((v - min_value) / width, last));
    }
  }
}

void NormalizeSpanSse2(const double* x, size_t n, double lo, double hi,
                       double fill, double* out) {
  const double range = hi - lo;
  const __m128d lov = _mm_set1_pd(lo);
  const __m128d rangev = _mm_set1_pd(range);
  const __m128d fillv = _mm_set1_pd(fill);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m128d v01 = _mm_loadu_pd(x + i);
    __m128d v23 = _mm_loadu_pd(x + i + 2);
    __m128d r01 = _mm_div_pd(_mm_sub_pd(v01, lov), rangev);
    __m128d r23 = _mm_div_pd(_mm_sub_pd(v23, lov), rangev);
    _mm_storeu_pd(out + i, BlendPd(FiniteMask(v01), r01, fillv));
    _mm_storeu_pd(out + i + 2, BlendPd(FiniteMask(v23), r23, fillv));
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    out[i] = std::isfinite(v) ? (v - lo) / range : fill;
  }
}

void SquaredDistancesToAllSse2(const double* const* cols, size_t num_cols,
                               size_t n, size_t p, double* out) {
  const size_t n4 = n & ~size_t{3};
  for (size_t q = 0; q < n4; q += 4) {
    __m128d acc01 = _mm_setzero_pd(), acc23 = _mm_setzero_pd();
    for (size_t k = 0; k < num_cols; ++k) {
      const __m128d pk = _mm_set1_pd(cols[k][p]);
      __m128d d01 = _mm_sub_pd(_mm_loadu_pd(cols[k] + q), pk);
      __m128d d23 = _mm_sub_pd(_mm_loadu_pd(cols[k] + q + 2), pk);
      acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
      acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    }
    _mm_storeu_pd(out + q, acc01);
    _mm_storeu_pd(out + q + 2, acc23);
  }
  for (size_t q = n4; q < n; ++q) {
    double acc = 0.0;
    for (size_t k = 0; k < num_cols; ++k) {
      double d = cols[k][q] - cols[k][p];
      acc += d * d;
    }
    out[q] = acc;
  }
}

}  // namespace

const KernelTable& Sse2Table() {
  static const KernelTable table = {
      ProfileSpanSse2,       SumSpanSse2,
      SumSquaredDiffSse2,    CountMatchesSse2,
      PartitionIndicesSse2,  NormalizeSpanSse2,
      SquaredDistancesToAllSse2,
  };
  return table;
}

bool Sse2KernelsCompiled() { return true; }

}  // namespace dbsherlock::common::simd::detail

#else  // !defined(__SSE2__)

namespace dbsherlock::common::simd::detail {

const KernelTable& Sse2Table() { return ScalarTable(); }
bool Sse2KernelsCompiled() { return false; }

}  // namespace dbsherlock::common::simd::detail

#endif
