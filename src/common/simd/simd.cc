// Runtime ISA dispatch for the columnar kernels. The active table is
// resolved once on first use — CPUID pick, optionally overridden by
// DBSHERLOCK_FORCE_ISA (clamped to what the host supports) — and swapped
// atomically so tests can force an ISA between runs.

#include "common/simd/simd.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/simd/kernel_table.h"

namespace dbsherlock::common::simd {

namespace {

using detail::KernelTable;

bool CpuHasSse2() {
#if defined(__x86_64__) || defined(_M_X64)
  // SSE2 is architecturally guaranteed on x86-64.
  return true;
#elif defined(__i386__)
  return __builtin_cpu_supports("sse2");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const KernelTable& TableFor(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return detail::Avx2Table();
    case Isa::kSse2:
      return detail::Sse2Table();
    case Isa::kScalar:
      break;
  }
  return detail::ScalarTable();
}

struct Dispatch {
  std::atomic<const KernelTable*> table;
  std::atomic<int> isa;
};

/// Resolves the startup ISA: best supported, clamped down if
/// DBSHERLOCK_FORCE_ISA asks for something this host/build can't run.
Isa ResolveStartupIsa() {
  Isa picked = BestSupportedIsa();
  const char* force = std::getenv("DBSHERLOCK_FORCE_ISA");
  if (force != nullptr && force[0] != '\0') {
    std::optional<Isa> requested = ParseIsaName(force);
    if (!requested.has_value()) {
      std::fprintf(stderr,
                   "dbsherlock: ignoring unknown DBSHERLOCK_FORCE_ISA=%s "
                   "(expected scalar|sse2|avx2); using %s\n",
                   force, IsaName(picked));
    } else if (!IsaSupported(*requested)) {
      std::fprintf(stderr,
                   "dbsherlock: DBSHERLOCK_FORCE_ISA=%s not supported on "
                   "this host/build; clamping to %s\n",
                   force, IsaName(picked));
    } else {
      picked = *requested;
    }
  }
  return picked;
}

Dispatch& ActiveDispatch() {
  static Dispatch dispatch = [] {
    Isa isa = ResolveStartupIsa();
    return Dispatch{{&TableFor(isa)}, {static_cast<int>(isa)}};
  }();
  return dispatch;
}

inline const KernelTable& Active() {
  return *ActiveDispatch().table.load(std::memory_order_acquire);
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<Isa> ParseIsaName(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "scalar") return Isa::kScalar;
  if (lower == "sse2") return Isa::kSse2;
  if (lower == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
      return detail::Sse2KernelsCompiled() && CpuHasSse2();
    case Isa::kAvx2:
      return detail::Avx2KernelsCompiled() && CpuHasAvx2();
  }
  return false;
}

Isa BestSupportedIsa() {
  if (IsaSupported(Isa::kAvx2)) return Isa::kAvx2;
  if (IsaSupported(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

Isa ActiveIsa() {
  return static_cast<Isa>(
      ActiveDispatch().isa.load(std::memory_order_acquire));
}

bool SetActiveIsa(Isa isa) {
  if (!IsaSupported(isa)) return false;
  Dispatch& dispatch = ActiveDispatch();
  dispatch.table.store(&TableFor(isa), std::memory_order_release);
  dispatch.isa.store(static_cast<int>(isa), std::memory_order_release);
  return true;
}

SpanProfile ProfileSpan(const double* x, size_t n) {
  return Active().profile_span(x, n);
}

double SumSpan(const double* x, size_t n) { return Active().sum_span(x, n); }

double SumSquaredDiff(const double* x, size_t n, double center) {
  return Active().sum_squared_diff(x, n, center);
}

uint64_t CountMatches(const double* x, size_t n, CmpKind kind, double lo,
                      double hi) {
  return Active().count_matches(x, n, kind, lo, hi);
}

void PartitionIndices(const double* x, size_t n, double min_value,
                      double width, uint32_t num_partitions, uint32_t* out) {
  Active().partition_indices(x, n, min_value, width, num_partitions, out);
}

void NormalizeSpan(const double* x, size_t n, double lo, double hi,
                   double fill, double* out) {
  if (hi - lo > 0.0) {
    Active().normalize_span(x, n, lo, hi, fill, out);
    return;
  }
  // Degenerate range: stats.h maps every finite value to 0 (and keeps the
  // fill for non-finite cells). Handled here so the per-ISA kernels can
  // divide unconditionally.
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::isfinite(x[i]) ? 0.0 : fill;
  }
}

void SquaredDistancesToAll(const double* const* cols, size_t num_cols,
                           size_t n, size_t p, double* out) {
  Active().squared_distances_to_all(cols, num_cols, n, p, out);
}

}  // namespace dbsherlock::common::simd
