#ifndef DBSHERLOCK_COMMON_SIMD_SIMD_H_
#define DBSHERLOCK_COMMON_SIMD_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace dbsherlock::common::simd {

// ---------------------------------------------------------------------------
// Runtime ISA dispatch (DESIGN.md §12).
//
// Every kernel below has three implementations — scalar, SSE2, AVX2 — that
// produce bit-identical results (see the lane discipline note), selected
// once per process from CPUID. Release builds carry no -march flags; the
// AVX2 translation unit alone is compiled with -mavx2 and is only reachable
// through the dispatch table after the CPU check.
//
// Override order: DBSHERLOCK_FORCE_ISA=scalar|sse2|avx2 in the environment
// (clamped to the best supported ISA with a one-line stderr warning if the
// host can't run the request), then ScopedIsaOverride/SetActiveIsa for
// tests and benchmarks.
// ---------------------------------------------------------------------------

enum class Isa : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Display name: "scalar", "sse2", "avx2".
const char* IsaName(Isa isa);

/// Parses an IsaName (case-insensitive); nullopt for anything else.
std::optional<Isa> ParseIsaName(const std::string& name);

/// True when this build AND this CPU can execute `isa` kernels. kScalar is
/// always supported.
bool IsaSupported(Isa isa);

/// The best ISA this host supports (what dispatch picks absent overrides).
Isa BestSupportedIsa();

/// The ISA the kernel wrappers currently route to. Resolved on first use
/// (CPUID + DBSHERLOCK_FORCE_ISA); stable afterwards unless overridden.
Isa ActiveIsa();

/// Points the dispatch table at `isa`. Returns false (and changes nothing)
/// when the ISA is unsupported on this host/build. Not meant for concurrent
/// use with in-flight kernels — tests and benchmarks call it between runs.
bool SetActiveIsa(Isa isa);

/// RAII ISA override for tests/benchmarks; restores the previous ISA.
class ScopedIsaOverride {
 public:
  explicit ScopedIsaOverride(Isa isa) : previous_(ActiveIsa()) {
    ok_ = SetActiveIsa(isa);
  }
  ~ScopedIsaOverride() { SetActiveIsa(previous_); }
  ScopedIsaOverride(const ScopedIsaOverride&) = delete;
  ScopedIsaOverride& operator=(const ScopedIsaOverride&) = delete;
  /// False when the requested ISA was unsupported (no change was made).
  bool ok() const { return ok_; }

 private:
  Isa previous_;
  bool ok_ = false;
};

// ---------------------------------------------------------------------------
// Kernels.
//
// All kernels operate on contiguous column spans (`const double* + length`)
// and are NaN-mask aware: non-finite cells never contaminate mins, sums or
// counts (PR 2's quality-gating contract).
//
// Lane discipline (why scalar == SSE2 == AVX2 bitwise): reductions are
// defined over eight logical lanes; element i belongs to lane i mod 8.
// (Eight, not four: two independent accumulator registers per YMM kind
// keep the ADDPD latency chain from bounding throughput.) Sums accumulate
// per lane in element order (masked cells contribute +0.0) and the lanes
// reduce as ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). Min/max fold per lane
// with the x86 MINPD/MAXPD operation a < b ? a : b (returns b on ties, so
// even the ±0.0 edge matches) and reduce in the same fixed tree. The scalar
// implementation follows the identical discipline, so every ISA rounds the
// exact same intermediate values. Element-wise kernels are trivially
// identical (same IEEE ops per element; FP contraction is disabled in the
// SIMD translation units).
// ---------------------------------------------------------------------------

/// One-pass span statistics over finite cells.
struct SpanProfile {
  double min = 0.0;  // over finite cells; meaningless when finite_count == 0
  double max = 0.0;
  double sum = 0.0;  // lane-disciplined masked sum of finite cells
  uint64_t finite_count = 0;
  uint64_t non_finite_count = 0;
};

/// min/max/sum/finite-fraction of x[0, n) in one sweep.
SpanProfile ProfileSpan(const double* x, size_t n);

/// Lane-disciplined unmasked sum (NaN/Inf propagate, like a plain loop).
double SumSpan(const double* x, size_t n);

/// Lane-disciplined unmasked sum of (x[i] - center)^2.
double SumSquaredDiff(const double* x, size_t n, double center);

/// Predicate comparison shapes, matching core::Predicate numeric semantics
/// (NaN matches nothing).
enum class CmpKind : int {
  kLess = 0,       // v < hi
  kGreaterEq = 1,  // v >= lo
  kInRange = 2,    // v >= lo && v < hi
};

/// Number of elements of x[0, n) satisfying the comparison.
uint64_t CountMatches(const double* x, size_t n, CmpKind kind, double lo,
                      double hi);

/// PartitionIndices writes this for non-finite cells (they vote for no
/// partition; callers skip the sentinel).
inline constexpr uint32_t kNoPartition = 0xFFFFFFFFu;

/// Equi-width partition index per cell, replicating
/// core::PartitionSpace::PartitionOf for finite cells:
///   v <= min_value        -> 0
///   otherwise             -> min(trunc((v - min_value) / width),
///                              num_partitions - 1)
/// Non-finite cells get kNoPartition. Requires num_partitions >= 1 and
/// width > 0.
void PartitionIndices(const double* x, size_t n, double min_value,
                      double width, uint32_t num_partitions, uint32_t* out);

/// Min-max normalization with NaN fill:
///   out[i] = finite(x[i]) ? (x[i] - lo) / (hi - lo) : fill
/// When hi - lo <= 0 every finite cell maps to 0.0 (stats.h contract) and
/// non-finite cells still map to fill.
void NormalizeSpan(const double* x, size_t n, double lo, double hi,
                   double fill, double* out);

/// Squared Euclidean distances from point p to every point, over a
/// dimension-major layout: cols[k][q] is coordinate k of point q.
///   out[q] = sum_k (cols[k][q] - cols[k][p])^2,  k ascending
/// (out[p] computes to exactly 0). `num_cols` may be 0 (out zeroed).
void SquaredDistancesToAll(const double* const* cols, size_t num_cols,
                           size_t n, size_t p, double* out);

}  // namespace dbsherlock::common::simd

#endif  // DBSHERLOCK_COMMON_SIMD_SIMD_H_
