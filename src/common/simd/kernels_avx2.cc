// AVX2 kernel implementations — two YMM registers hold the eight logical
// lanes of the reduction discipline (simd.h) directly (lanes 0-3 in the
// first, 4-7 in the second), giving each reduction two independent ADDPD
// dependency chains. This TU is the only
// one compiled with -mavx2 (see src/common/CMakeLists.txt); it is reached
// exclusively through the dispatch table after the runtime CPUID check, so
// release builds stay runnable on non-AVX2 hosts. FP contraction is off for
// this TU: no FMA may creep in and change rounding vs the scalar reference.
//
// When the toolchain can't build AVX2 (non-x86), this TU degrades to
// forwarding the scalar table and Avx2KernelsCompiled() reports false.

#include "common/simd/kernel_table.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>
#include <cmath>
#include <limits>

namespace dbsherlock::common::simd::detail {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

inline __m256d AbsPd(__m256d v) {
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
  return _mm256_and_pd(v, abs_mask);
}

/// All-ones where the lane is finite (|v| < inf; NaN compares false).
inline __m256d FiniteMask(__m256d v) {
  return _mm256_cmp_pd(AbsPd(v), _mm256_set1_pd(kInf), _CMP_LT_OQ);
}

/// Reduces two 4-lane accumulator registers exactly like the scalar
/// 8-lane fold: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)), with MinPd/MaxPd
/// mirrors for min/max.
inline void StoreLanes8(double* lanes, __m256d lo, __m256d hi) {
  _mm256_storeu_pd(lanes, lo);
  _mm256_storeu_pd(lanes + 4, hi);
}

inline double ReduceSum8(const double* s) {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

inline double ReduceMin8(const double* m) {
  return MinPd(MinPd(MinPd(m[0], m[1]), MinPd(m[2], m[3])),
               MinPd(MinPd(m[4], m[5]), MinPd(m[6], m[7])));
}

inline double ReduceMax8(const double* m) {
  return MaxPd(MaxPd(MaxPd(m[0], m[1]), MaxPd(m[2], m[3])),
               MaxPd(MaxPd(m[4], m[5]), MaxPd(m[6], m[7])));
}

/// The general masked sweep: correct for any mix of finite and non-finite
/// cells (non-finite contributes +0.0 to the sum and identity values to
/// min/max).
SpanProfile ProfileSpanAvx2Masked(const double* x, size_t n) {
  const __m256d inf = _mm256_set1_pd(kInf);
  const __m256d ninf = _mm256_set1_pd(-kInf);
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  __m256d mn0 = inf, mn1 = inf;
  __m256d mx0 = ninf, mx1 = ninf;
  uint64_t finite = 0;
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    __m256d v0 = _mm256_loadu_pd(x + i);
    __m256d v1 = _mm256_loadu_pd(x + i + 4);
    __m256d f0 = FiniteMask(v0);
    __m256d f1 = FiniteMask(v1);
    sum0 = _mm256_add_pd(sum0, _mm256_and_pd(f0, v0));
    sum1 = _mm256_add_pd(sum1, _mm256_and_pd(f1, v1));
    mn0 = _mm256_min_pd(mn0, _mm256_blendv_pd(inf, v0, f0));
    mn1 = _mm256_min_pd(mn1, _mm256_blendv_pd(inf, v1, f1));
    mx0 = _mm256_max_pd(mx0, _mm256_blendv_pd(ninf, v0, f0));
    mx1 = _mm256_max_pd(mx1, _mm256_blendv_pd(ninf, v1, f1));
    finite += static_cast<uint64_t>(
        std::popcount(static_cast<unsigned>(_mm256_movemask_pd(f0)) |
                      (static_cast<unsigned>(_mm256_movemask_pd(f1)) << 4)));
  }
  double sums[8], mins[8], maxs[8];
  StoreLanes8(sums, sum0, sum1);
  StoreLanes8(mins, mn0, mn1);
  StoreLanes8(maxs, mx0, mx1);
  for (size_t i = n8; i < n; ++i) {
    double v = x[i];
    bool f = std::isfinite(v);
    size_t lane = i & 7;
    sums[lane] += f ? v : 0.0;
    mins[lane] = MinPd(mins[lane], f ? v : kInf);
    maxs[lane] = MaxPd(maxs[lane], f ? v : -kInf);
    finite += f ? 1 : 0;
  }
  SpanProfile out;
  out.sum = ReduceSum8(sums);
  out.finite_count = finite;
  out.non_finite_count = n - finite;
  if (finite > 0) {
    out.min = ReduceMin8(mins);
    out.max = ReduceMax8(maxs);
  }
  return out;
}

SpanProfile ProfileSpanAvx2(const double* x, size_t n) {
  // Fast path for the common all-finite span: plain add/min/max — no
  // blending, no per-iteration finiteness test. On clean cells the masked
  // ops degenerate to exactly these instructions (and-with-all-ones,
  // blend-keeping-v), so the result is bit-identical to the masked sweep.
  // Dirt is detected through the sums: a NaN input sticks in its lane sum
  // forever, and +-Inf either sticks or collapses to NaN, so any non-finite
  // input leaves its lane sum non-finite at the end. The converse false
  // positive — finite data overflowing the sum to Inf — merely takes the
  // masked recompute, which reproduces the identical overflow.
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  __m256d mn0 = _mm256_set1_pd(kInf), mn1 = _mm256_set1_pd(kInf);
  __m256d mx0 = _mm256_set1_pd(-kInf), mx1 = _mm256_set1_pd(-kInf);
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    __m256d v0 = _mm256_loadu_pd(x + i);
    __m256d v1 = _mm256_loadu_pd(x + i + 4);
    sum0 = _mm256_add_pd(sum0, v0);
    sum1 = _mm256_add_pd(sum1, v1);
    mn0 = _mm256_min_pd(mn0, v0);
    mn1 = _mm256_min_pd(mn1, v1);
    mx0 = _mm256_max_pd(mx0, v0);
    mx1 = _mm256_max_pd(mx1, v1);
  }
  if ((_mm256_movemask_pd(FiniteMask(sum0)) &
       _mm256_movemask_pd(FiniteMask(sum1))) != 0xF) {
    return ProfileSpanAvx2Masked(x, n);
  }
  uint64_t finite = n8;
  double sums[8], mins[8], maxs[8];
  StoreLanes8(sums, sum0, sum1);
  StoreLanes8(mins, mn0, mn1);
  StoreLanes8(maxs, mx0, mx1);
  for (size_t i = n8; i < n; ++i) {
    double v = x[i];
    bool f = std::isfinite(v);
    size_t lane = i & 7;
    sums[lane] += f ? v : 0.0;
    mins[lane] = MinPd(mins[lane], f ? v : kInf);
    maxs[lane] = MaxPd(maxs[lane], f ? v : -kInf);
    finite += f ? 1 : 0;
  }
  SpanProfile out;
  out.sum = ReduceSum8(sums);
  out.finite_count = finite;
  out.non_finite_count = n - finite;
  if (finite > 0) {
    out.min = ReduceMin8(mins);
    out.max = ReduceMax8(maxs);
  }
  return out;
}

double SumSpanAvx2(const double* x, size_t n) {
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    sum0 = _mm256_add_pd(sum0, _mm256_loadu_pd(x + i));
    sum1 = _mm256_add_pd(sum1, _mm256_loadu_pd(x + i + 4));
  }
  double sums[8];
  StoreLanes8(sums, sum0, sum1);
  for (size_t i = n8; i < n; ++i) sums[i & 7] += x[i];
  return ReduceSum8(sums);
}

double SumSquaredDiffAvx2(const double* x, size_t n, double center) {
  const __m256d c = _mm256_set1_pd(center);
  __m256d sum0 = _mm256_setzero_pd(), sum1 = _mm256_setzero_pd();
  const size_t n8 = n & ~size_t{7};
  for (size_t i = 0; i < n8; i += 8) {
    __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(x + i), c);
    __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), c);
    sum0 = _mm256_add_pd(sum0, _mm256_mul_pd(d0, d0));
    sum1 = _mm256_add_pd(sum1, _mm256_mul_pd(d1, d1));
  }
  double sums[8];
  StoreLanes8(sums, sum0, sum1);
  for (size_t i = n8; i < n; ++i) {
    double d = x[i] - center;
    sums[i & 7] += d * d;
  }
  return ReduceSum8(sums);
}

uint64_t CountMatchesAvx2(const double* x, size_t n, CmpKind kind, double lo,
                          double hi) {
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d hiv = _mm256_set1_pd(hi);
  auto mask_of = [&](__m256d v) -> __m256d {
    switch (kind) {
      case CmpKind::kLess:
        return _mm256_cmp_pd(v, hiv, _CMP_LT_OQ);
      case CmpKind::kGreaterEq:
        return _mm256_cmp_pd(v, lov, _CMP_GE_OQ);
      case CmpKind::kInRange:
        return _mm256_and_pd(_mm256_cmp_pd(v, lov, _CMP_GE_OQ),
                             _mm256_cmp_pd(v, hiv, _CMP_LT_OQ));
    }
    return _mm256_setzero_pd();
  };
  uint64_t count = 0;
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    count += static_cast<uint64_t>(std::popcount(static_cast<unsigned>(
        _mm256_movemask_pd(mask_of(_mm256_loadu_pd(x + i))))));
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    switch (kind) {
      case CmpKind::kLess:
        count += v < hi ? 1 : 0;
        break;
      case CmpKind::kGreaterEq:
        count += v >= lo ? 1 : 0;
        break;
      case CmpKind::kInRange:
        count += (v >= lo && v < hi) ? 1 : 0;
        break;
    }
  }
  return count;
}

/// Narrows a 4x64-bit lane mask to a 4x32-bit lane mask (low dword of each
/// 64-bit lane; the mask lanes are all-ones/all-zeros so any dword works).
inline __m128i NarrowMask(__m256d m) {
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(m), pick));
}

void PartitionIndicesAvx2(const double* x, size_t n, double min_value,
                          double width, uint32_t num_partitions,
                          uint32_t* out) {
  const double last = static_cast<double>(num_partitions - 1);
  const __m256d minv = _mm256_set1_pd(min_value);
  const __m256d widthv = _mm256_set1_pd(width);
  const __m256d lastv = _mm256_set1_pd(last);
  const __m128i ones = _mm_set1_epi32(-1);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    __m256d f = FiniteMask(v);
    __m256d le = _mm256_cmp_pd(v, minv, _CMP_LE_OQ);
    // (v - min) / width clamped to the last partition; MINPD's
    // second-operand-on-NaN rule keeps hostile lanes convertible (they are
    // overridden by the finite mask below anyway).
    __m256d q = _mm256_min_pd(
        _mm256_div_pd(_mm256_sub_pd(v, minv), widthv), lastv);
    __m128i idx = _mm256_cvttpd_epi32(q);
    __m128i le32 = NarrowMask(le);
    __m128i f32 = NarrowMask(f);
    idx = _mm_andnot_si128(le32, idx);                // v <= min -> 0
    idx = _mm_or_si128(_mm_and_si128(f32, idx),       // finite -> idx
                       _mm_andnot_si128(f32, ones));  // else kNoPartition
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    if (!std::isfinite(v)) {
      out[i] = kNoPartition;
    } else if (v <= min_value) {
      out[i] = 0;
    } else {
      out[i] = static_cast<uint32_t>(MinPd((v - min_value) / width, last));
    }
  }
}

void NormalizeSpanAvx2(const double* x, size_t n, double lo, double hi,
                       double fill, double* out) {
  const double range = hi - lo;
  const __m256d lov = _mm256_set1_pd(lo);
  const __m256d rangev = _mm256_set1_pd(range);
  const __m256d fillv = _mm256_set1_pd(fill);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    __m256d v = _mm256_loadu_pd(x + i);
    __m256d r = _mm256_div_pd(_mm256_sub_pd(v, lov), rangev);
    _mm256_storeu_pd(out + i, _mm256_blendv_pd(fillv, r, FiniteMask(v)));
  }
  for (size_t i = n4; i < n; ++i) {
    double v = x[i];
    out[i] = std::isfinite(v) ? (v - lo) / range : fill;
  }
}

void SquaredDistancesToAllAvx2(const double* const* cols, size_t num_cols,
                               size_t n, size_t p, double* out) {
  const size_t n4 = n & ~size_t{3};
  for (size_t q = 0; q < n4; q += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (size_t k = 0; k < num_cols; ++k) {
      __m256d d = _mm256_sub_pd(_mm256_loadu_pd(cols[k] + q),
                                _mm256_set1_pd(cols[k][p]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
    }
    _mm256_storeu_pd(out + q, acc);
  }
  for (size_t q = n4; q < n; ++q) {
    double acc = 0.0;
    for (size_t k = 0; k < num_cols; ++k) {
      double d = cols[k][q] - cols[k][p];
      acc += d * d;
    }
    out[q] = acc;
  }
}

}  // namespace

const KernelTable& Avx2Table() {
  static const KernelTable table = {
      ProfileSpanAvx2,       SumSpanAvx2,
      SumSquaredDiffAvx2,    CountMatchesAvx2,
      PartitionIndicesAvx2,  NormalizeSpanAvx2,
      SquaredDistancesToAllAvx2,
  };
  return table;
}

bool Avx2KernelsCompiled() { return true; }

}  // namespace dbsherlock::common::simd::detail

#else  // !defined(__AVX2__)

namespace dbsherlock::common::simd::detail {

const KernelTable& Avx2Table() { return ScalarTable(); }
bool Avx2KernelsCompiled() { return false; }

}  // namespace dbsherlock::common::simd::detail

#endif
