#ifndef DBSHERLOCK_COMMON_SIMD_KERNEL_TABLE_H_
#define DBSHERLOCK_COMMON_SIMD_KERNEL_TABLE_H_

// Internal to the simd layer: the per-ISA entry points and the dispatch
// table shape. Each ISA's translation unit defines one table; dispatch
// (simd.cc) selects one at startup. Not for inclusion outside src/common/
// simd/.

#include "common/simd/simd.h"

namespace dbsherlock::common::simd::detail {

struct KernelTable {
  SpanProfile (*profile_span)(const double*, size_t);
  double (*sum_span)(const double*, size_t);
  double (*sum_squared_diff)(const double*, size_t, double);
  uint64_t (*count_matches)(const double*, size_t, CmpKind, double, double);
  void (*partition_indices)(const double*, size_t, double, double, uint32_t,
                            uint32_t*);
  // Only called with hi - lo > 0; the degenerate range is handled by the
  // public wrapper.
  void (*normalize_span)(const double*, size_t, double, double, double,
                         double*);
  void (*squared_distances_to_all)(const double* const*, size_t, size_t,
                                   size_t, double*);
};

/// The scalar table (always available; also the tail/reference semantics).
const KernelTable& ScalarTable();

/// The SSE2 table, or the scalar table when this build has no SSE2 TU.
const KernelTable& Sse2Table();
bool Sse2KernelsCompiled();

/// The AVX2 table, or the scalar table when this build has no AVX2 TU.
const KernelTable& Avx2Table();
bool Avx2KernelsCompiled();

// Shared scalar helpers, usable from the SIMD TUs for tails. MinPd/MaxPd
// mirror the x86 MINPD/MAXPD semantics (return b on ties and unordered) so
// scalar lane folds round identically to the vector ones.
inline double MinPd(double a, double b) { return a < b ? a : b; }
inline double MaxPd(double a, double b) { return a > b ? a : b; }

}  // namespace dbsherlock::common::simd::detail

#endif  // DBSHERLOCK_COMMON_SIMD_KERNEL_TABLE_H_
