#include "common/random.h"

#include <cmath>
#include <numbers>

namespace dbsherlock::common {

uint32_t Pcg32::NextBounded(uint32_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling: discard the biased tail of the 32-bit range.
  uint32_t threshold = (-bound) % bound;
  for (;;) {
    uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextGaussian() {
  // Box-Muller transform. u1 is nudged away from 0 to keep log() finite.
  double u1 = NextDouble();
  if (u1 < 1e-12) u1 = 1e-12;
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

int Pcg32::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    double v = NextGaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  // Knuth's multiplicative method.
  double limit = std::exp(-mean);
  double prod = NextDouble();
  int n = 0;
  while (prod > limit) {
    ++n;
    prod *= NextDouble();
  }
  return n;
}

std::vector<size_t> Pcg32::SampleIndices(size_t n, size_t k) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(&all);
  if (k < n) all.resize(k);
  return all;
}

}  // namespace dbsherlock::common
