#include "common/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "common/trace.h"

namespace dbsherlock::common {

LatencyHistogram::LatencyHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  bucket_storage_ =
      std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  buckets_ = std::span<std::atomic<uint64_t>>(bucket_storage_.get(),
                                              bounds_.size() + 1);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::Record(double value) {
  // Bucket i holds bounds[i-1] < v <= bounds[i]; NaN goes to overflow.
  size_t i = std::isnan(value)
                 ? bounds_.size()
                 : static_cast<size_t>(std::lower_bound(bounds_.begin(),
                                                        bounds_.end(),
                                                        value) -
                                       bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBoundsUs() {
  static const std::vector<double> bounds = {10.0,   100.0,   1e3, 1e4,
                                             1e5,    1e6,     1e7};
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.contains(name) || histograms_.contains(name)) return nullptr;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.contains(name) || histograms_.contains(name)) return nullptr;
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.contains(name) || gauges_.contains(name)) return nullptr;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = DefaultLatencyBoundsUs();
    it = histograms_
             .emplace(name, std::make_unique<LatencyHistogram>(
                                std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

JsonValue MetricsRegistry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue::Object counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = JsonValue(static_cast<double>(c->value()));
  }
  JsonValue::Object gauges;
  for (const auto& [name, g] : gauges_) {
    gauges[name] = JsonValue(g->value());
  }
  JsonValue::Object histograms;
  for (const auto& [name, h] : histograms_) {
    JsonValue::Object entry;
    entry["count"] = JsonValue(static_cast<double>(h->count()));
    entry["sum"] = JsonValue(h->sum());
    entry["mean"] = JsonValue(h->mean());
    JsonValue::Array buckets;
    for (size_t i = 0; i < h->num_buckets(); ++i) {
      JsonValue::Object bucket;
      bucket["le"] = i < h->upper_bounds().size()
                         ? JsonValue(h->upper_bounds()[i])
                         : JsonValue("inf");
      bucket["count"] = JsonValue(static_cast<double>(h->bucket_count(i)));
      buckets.push_back(JsonValue(std::move(bucket)));
    }
    entry["buckets"] = JsonValue(std::move(buckets));
    histograms[name] = JsonValue(std::move(entry));
  }
  JsonValue::Object root;
  root["counters"] = JsonValue(std::move(counters));
  root["gauges"] = JsonValue(std::move(gauges));
  root["histograms"] = JsonValue(std::move(histograms));
  return JsonValue(std::move(root));
}

std::string MetricsRegistry::SnapshotText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%-48s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%-48s %g\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    out += StrFormat("%-48s count=%llu mean=%.1f\n", name.c_str(),
                     static_cast<unsigned long long>(h->count()), h->mean());
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

ScopedLatency::ScopedLatency(LatencyHistogram* histogram)
    : histogram_(histogram) {
  if (histogram_ != nullptr) start_us_ = Tracer::NowMicros();
}

ScopedLatency::~ScopedLatency() {
  if (histogram_ != nullptr) {
    histogram_->Record(Tracer::NowMicros() - start_us_);
  }
}

}  // namespace dbsherlock::common
